// Overload-protection subsystem tests: the MemoryTracker global account,
// QueryGuard forwarding into it, the AdmissionController's queue/shed/
// deadline/shutdown behaviour, the scheduler's session-fair dispatch
// queue, and the end-to-end Database wiring (shed queries audited as
// "shed", hard memory limits aborting queries fail-closed, memory
// pressure degrading Non-Truman checks per policy).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/memory_tracker.h"
#include "common/query_guard.h"
#include "core/database.h"
#include "exec/admission.h"
#include "exec/scheduler.h"
#include "storage/table_data.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using common::DegradePolicy;
using common::FaultInjector;
using common::MemoryTracker;
using common::QueryGuard;
using common::QueryLimits;
using core::Database;
using core::DatabaseOptions;
using core::EnforcementMode;
using core::SessionContext;
using exec::AdmissionController;
using exec::AdmissionOptions;
using exec::AdmissionRequest;
using exec::AdmissionTicket;
using exec::FairTaskQueue;
using exec::RetryAfterHintMs;
using exec::ShedPolicy;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

MemoryTracker::Limits Limits(uint64_t soft, uint64_t hard) {
  MemoryTracker::Limits l;
  l.soft_limit_bytes = soft;
  l.hard_limit_bytes = hard;
  return l;
}

// ---------------------------------------------------------------------------
// MemoryTracker
// ---------------------------------------------------------------------------

TEST(MemoryTrackerTest, ChargeReleaseAndHighWater) {
  MemoryTracker tracker;
  EXPECT_TRUE(tracker.Charge(100).ok());
  EXPECT_TRUE(tracker.Charge(50).ok());
  EXPECT_EQ(tracker.used(), 150u);
  tracker.Release(60);
  EXPECT_EQ(tracker.used(), 90u);
  EXPECT_EQ(tracker.high_water(), 150u);
  tracker.Release(90);
  EXPECT_EQ(tracker.used(), 0u);
  EXPECT_EQ(tracker.high_water(), 150u);
  EXPECT_EQ(tracker.charges_denied(), 0u);
  EXPECT_FALSE(tracker.overloaded());
}

TEST(MemoryTrackerTest, HardLimitDeniesAndRollsBack) {
  MemoryTracker tracker(Limits(0, 100));
  EXPECT_TRUE(tracker.Charge(80).ok());
  Status denied = tracker.Charge(21);
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted);
  // Nothing from the denied charge sticks.
  EXPECT_EQ(tracker.used(), 80u);
  EXPECT_EQ(tracker.charges_denied(), 1u);
  // Exactly at the limit is allowed.
  EXPECT_TRUE(tracker.Charge(20).ok());
  EXPECT_EQ(tracker.used(), 100u);
}

TEST(MemoryTrackerTest, SoftLimitFlagsOverload) {
  MemoryTracker tracker(Limits(100, 0));
  EXPECT_TRUE(tracker.Charge(100).ok());
  EXPECT_FALSE(tracker.overloaded());
  EXPECT_TRUE(tracker.Charge(1).ok());  // soft limit never fails the charge
  EXPECT_TRUE(tracker.overloaded());
  tracker.Release(1);
  EXPECT_FALSE(tracker.overloaded());
}

TEST(MemoryTrackerTest, FaultSiteMemoryCharge) {
  if (!FaultInjector::compiled_in()) {
    GTEST_SKIP() << "fault sites not compiled into this build";
  }
  FaultInjector::Instance().Reset();
  MemoryTracker tracker;
  FaultInjector::Instance().FailOnHit("memory.charge");
  Status injected = tracker.Charge(10);
  EXPECT_FALSE(injected.ok());
  EXPECT_EQ(tracker.used(), 0u);
  EXPECT_EQ(tracker.charges_denied(), 1u);
  EXPECT_TRUE(tracker.Charge(10).ok());
  FaultInjector::Instance().Reset();
}

// ---------------------------------------------------------------------------
// QueryGuard -> MemoryTracker forwarding
// ---------------------------------------------------------------------------

TEST(GuardTrackerTest, ForwardsAndReleasesOnDestruction) {
  MemoryTracker tracker;
  {
    QueryGuard guard;
    guard.set_memory_tracker(&tracker);
    EXPECT_TRUE(guard.ChargeBytes(1000).ok());
    EXPECT_EQ(tracker.used(), 1000u);
  }
  EXPECT_EQ(tracker.used(), 0u);
  EXPECT_EQ(tracker.high_water(), 1000u);
}

TEST(GuardTrackerTest, ChildInheritsTrackerAndReleasesOwnCharges) {
  MemoryTracker tracker;
  QueryGuard parent;
  parent.set_memory_tracker(&tracker);
  EXPECT_TRUE(parent.ChargeBytes(100).ok());
  {
    QueryGuard child(QueryLimits{}, &parent);
    EXPECT_TRUE(child.ChargeBytes(50).ok());
    EXPECT_EQ(tracker.used(), 150u);
  }
  // The child's charge drains with the child; the parent's survives.
  EXPECT_EQ(tracker.used(), 100u);
}

TEST(GuardTrackerTest, TrackerHardLimitSurfacesAsResourceExhausted) {
  MemoryTracker tracker(Limits(0, 100));
  QueryGuard guard;  // per-query budget unlimited
  guard.set_memory_tracker(&tracker);
  EXPECT_TRUE(guard.ChargeBytes(100).ok());
  EXPECT_EQ(guard.ChargeBytes(1).code(), StatusCode::kResourceExhausted);
  // The denied charge is in neither account.
  EXPECT_EQ(tracker.used(), 100u);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionTest, UnlimitedAdmitsImmediately) {
  AdmissionController ac(AdmissionOptions{});
  std::vector<AdmissionTicket> tickets(8);
  for (auto& t : tickets) {
    EXPECT_TRUE(ac.Admit(AdmissionRequest{}, &t).ok());
    EXPECT_TRUE(t.held());
  }
  EXPECT_EQ(ac.admitted(), 8u);
  EXPECT_EQ(ac.running(), 8u);
  tickets.clear();
  EXPECT_EQ(ac.running(), 0u);
}

TEST(AdmissionTest, QueueGrantsFifoWhenSlotFrees) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  AdmissionController ac(opts);
  AdmissionTicket first;
  ASSERT_TRUE(ac.Admit(AdmissionRequest{}, &first).ok());

  Status queued_status;
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    AdmissionTicket t;
    queued_status = ac.Admit(AdmissionRequest{}, &t);
    admitted.store(true);
  });
  while (ac.queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(admitted.load());
  first.Release();
  waiter.join();
  EXPECT_TRUE(queued_status.ok());
  EXPECT_EQ(ac.admitted(), 2u);
  EXPECT_EQ(ac.queue_depth_high_water(), 1u);
}

TEST(AdmissionTest, FullQueueShedsNewestWithRetryAfter) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 0;
  AdmissionController ac(opts);
  AdmissionTicket first;
  ASSERT_TRUE(ac.Admit(AdmissionRequest{}, &first).ok());
  AdmissionTicket second;
  Status shed = ac.Admit(AdmissionRequest{}, &second);
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_FALSE(second.held());
  EXPECT_GE(RetryAfterHintMs(shed), 1);
  EXPECT_EQ(ac.shed_queue_full(), 1u);
}

TEST(AdmissionTest, ShedByCostEvictsPriciestWaiter) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  opts.shed_policy = ShedPolicy::kShedByCost;
  AdmissionController ac(opts);
  AdmissionTicket slot;
  ASSERT_TRUE(ac.Admit(AdmissionRequest{}, &slot).ok());

  Status expensive_status;
  std::thread expensive([&] {
    AdmissionRequest req;
    req.cost = 1000.0;
    AdmissionTicket t;
    expensive_status = ac.Admit(req, &t);
  });
  while (ac.queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A cheaper arrival evicts the queued expensive query and takes its
  // place in line.
  Status cheap_status;
  std::atomic<bool> cheap_admitted{false};
  std::thread cheap([&] {
    AdmissionRequest req;
    req.cost = 1.0;
    AdmissionTicket t;
    cheap_status = ac.Admit(req, &t);
    cheap_admitted.store(true);
  });
  expensive.join();
  EXPECT_EQ(expensive_status.code(), StatusCode::kOverloaded);
  EXPECT_GE(RetryAfterHintMs(expensive_status), 1);
  EXPECT_EQ(ac.shed_queue_full(), 1u);
  EXPECT_FALSE(cheap_admitted.load());
  slot.Release();
  cheap.join();
  EXPECT_TRUE(cheap_status.ok());

  // An arrival pricier than every waiter is itself shed.
  AdmissionTicket hold;
  ASSERT_TRUE(ac.Admit(AdmissionRequest{}, &hold).ok());
  Status mid_status;
  std::thread mid([&] {
    AdmissionRequest req;
    req.cost = 10.0;
    AdmissionTicket t;
    mid_status = ac.Admit(req, &t);
  });
  while (ac.queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  AdmissionRequest pricier;
  pricier.cost = 100.0;
  AdmissionTicket t2;
  Status self_shed = ac.Admit(pricier, &t2);
  EXPECT_EQ(self_shed.code(), StatusCode::kOverloaded);
  hold.Release();
  mid.join();
  EXPECT_TRUE(mid_status.ok());
}

TEST(AdmissionTest, ExpiredDeadlineRejectedBeforeWork) {
  AdmissionController ac(AdmissionOptions{});
  AdmissionRequest req;
  req.deadline = std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1);
  AdmissionTicket t;
  Status s = ac.Admit(req, &t);
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(ac.rejected_deadline(), 1u);
  EXPECT_EQ(ac.admitted(), 0u);
}

TEST(AdmissionTest, DeadlineExpiresWhileQueued) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  AdmissionController ac(opts);
  AdmissionTicket slot;
  ASSERT_TRUE(ac.Admit(AdmissionRequest{}, &slot).ok());
  AdmissionRequest req;
  req.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  AdmissionTicket t;
  Status s = ac.Admit(req, &t);
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(ac.rejected_deadline(), 1u);
  // The expired waiter left a tombstone, not a queue slot.
  slot.Release();
  AdmissionTicket next;
  EXPECT_TRUE(ac.Admit(AdmissionRequest{}, &next).ok());
}

TEST(AdmissionTest, CancelledGuardLeavesQueue) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  AdmissionController ac(opts);
  AdmissionTicket slot;
  ASSERT_TRUE(ac.Admit(AdmissionRequest{}, &slot).ok());
  QueryGuard guard;
  Status queued_status;
  std::thread waiter([&] {
    AdmissionRequest req;
    req.guard = &guard;
    AdmissionTicket t;
    queued_status = ac.Admit(req, &t);
  });
  while (ac.queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  guard.Cancel();
  waiter.join();
  EXPECT_EQ(queued_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(ac.cancelled(), 1u);
}

TEST(AdmissionTest, ShutdownDrainsWaitersWithCancelled) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  AdmissionController ac(opts);
  AdmissionTicket slot;
  ASSERT_TRUE(ac.Admit(AdmissionRequest{}, &slot).ok());
  Status queued_status;
  std::thread waiter([&] {
    AdmissionTicket t;
    queued_status = ac.Admit(AdmissionRequest{}, &t);
  });
  while (ac.queue_depth() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ac.Shutdown();
  waiter.join();
  EXPECT_EQ(queued_status.code(), StatusCode::kCancelled);
  EXPECT_GE(ac.cancelled(), 1u);
  // Admission after shutdown fails the same way.
  AdmissionTicket t;
  EXPECT_EQ(ac.Admit(AdmissionRequest{}, &t).code(), StatusCode::kCancelled);
}

TEST(AdmissionTest, MemoryPressureShedsArrivals) {
  MemoryTracker tracker(Limits(100, 0));
  AdmissionController ac(AdmissionOptions{}, &tracker);
  ASSERT_TRUE(tracker.Charge(200).ok());
  AdmissionTicket t;
  Status shed = ac.Admit(AdmissionRequest{}, &t);
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_GE(RetryAfterHintMs(shed), 1);
  EXPECT_EQ(ac.shed_memory(), 1u);
  // Pressure drains -> arrivals flow again.
  tracker.Release(150);
  EXPECT_TRUE(ac.Admit(AdmissionRequest{}, &t).ok());
}

TEST(AdmissionTest, RetryAfterHintParsing) {
  EXPECT_EQ(RetryAfterHintMs(Status::Overloaded(
                "server overloaded (queue full); retry after 42ms")),
            42);
  EXPECT_EQ(RetryAfterHintMs(Status::Overloaded("no hint here")), -1);
  EXPECT_EQ(RetryAfterHintMs(Status::OK()), -1);
}

TEST(AdmissionTest, EnqueueFaultSite) {
  if (!FaultInjector::compiled_in()) {
    GTEST_SKIP() << "fault sites not compiled into this build";
  }
  FaultInjector::Instance().Reset();
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  AdmissionController ac(opts);
  AdmissionTicket slot;
  ASSERT_TRUE(ac.Admit(AdmissionRequest{}, &slot).ok());
  FaultInjector::Instance().FailOnHit("admission.enqueue");
  AdmissionTicket t;
  Status s = ac.Admit(AdmissionRequest{}, &t);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_GE(FaultInjector::Instance().HitCount("admission.enqueue"), 1u);
  FaultInjector::Instance().Reset();
}

TEST(AdmissionTest, EnvQueueOverride) {
  ASSERT_EQ(setenv("FGAC_ADMISSION_QUEUE", "7", /*overwrite=*/1), 0);
  AdmissionOptions opts;
  opts.max_queue = 64;
  EXPECT_EQ(opts.Resolved().max_queue, 7u);
  unsetenv("FGAC_ADMISSION_QUEUE");
  EXPECT_EQ(opts.Resolved().max_queue, 64u);
}

// ---------------------------------------------------------------------------
// FairTaskQueue (scheduler session fairness)
// ---------------------------------------------------------------------------

TEST(FairTaskQueueTest, WeightedRoundRobinPattern) {
  FairTaskQueue q;
  std::vector<std::string> order;
  for (int i = 1; i <= 8; ++i) {
    q.Push(/*session=*/1, /*weight=*/1,
           [&order, i] { order.push_back("a" + std::to_string(i)); });
  }
  for (int i = 1; i <= 8; ++i) {
    q.Push(/*session=*/2, /*weight=*/3,
           [&order, i] { order.push_back("b" + std::to_string(i)); });
  }
  EXPECT_EQ(q.size(), 16u);
  EXPECT_EQ(q.sessions_active(), 2u);
  std::function<void()> task;
  while (q.Pop(&task)) task();
  const std::vector<std::string> expected = {
      "a1", "b1", "b2", "b3", "a2", "b4", "b5", "b6",
      "a3", "b7", "b8", "a4", "a5", "a6", "a7", "a8"};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.sessions_active(), 0u);
}

TEST(FairTaskQueueTest, SessionRejoinsRotationAfterDraining) {
  FairTaskQueue q;
  int runs = 0;
  q.Push(7, 1, [&] { ++runs; });
  std::function<void()> task;
  ASSERT_TRUE(q.Pop(&task));
  task();
  EXPECT_FALSE(q.Pop(&task));
  q.Push(7, 1, [&] { ++runs; });
  ASSERT_TRUE(q.Pop(&task));
  task();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(q.sessions_active(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end Database wiring
// ---------------------------------------------------------------------------

TEST(OverloadEndToEndTest, ShedQueryIsAuditedAsShed) {
  DatabaseOptions opts;
  opts.admission.max_concurrent = 1;
  opts.admission.max_queue = 0;
  Database db(opts);
  SetupUniversity(&db);

  // Occupy the single admission slot so the next SELECT is shed.
  AdmissionTicket slot;
  ASSERT_TRUE(db.admission().Admit(AdmissionRequest{}, &slot).ok());
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  auto shed = db.Execute("select name from students", admin);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded);
  EXPECT_GE(RetryAfterHintMs(shed.status()), 1);

  db.audit_log().Flush();
  auto events = db.audit_log().SnapshotRetained();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().verdict, "shed");
  EXPECT_EQ(events.back().status, "overloaded");

  // Capacity frees -> same query succeeds.
  slot.Release();
  auto ok = db.Execute("select name from students", admin);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(OverloadEndToEndTest, HardMemoryLimitAbortsQuery) {
  DatabaseOptions opts;
  opts.memory.hard_limit_bytes = 1024;
  Database db(opts);
  ASSERT_TRUE(db.ExecuteScript("create table big (a varchar not null "
                               "primary key, b varchar not null)")
                  .ok());
  // Direct storage writes (like the benches) so loading itself never scans.
  std::vector<Row> rows;
  for (int i = 0; i < 512; ++i) {
    rows.push_back({Value::String("k" + std::to_string(i)),
                    Value::String("payload")});
  }
  db.state().GetMutableTable("big")->InsertRows(std::move(rows));

  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  auto r = db.Execute("select b from big", admin);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(db.memory_tracker().charges_denied(), 1u);
  // The denied snapshot charge must not leak into the account.
  EXPECT_LE(db.memory_tracker().used(), 1024u);
}

TEST(OverloadEndToEndTest, SoftMemoryLimitShedsArrivals) {
  DatabaseOptions opts;
  opts.memory.soft_limit_bytes = 1;  // any resident snapshot trips it
  Database db(opts);
  SetupUniversity(&db);
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  // First query admits (nothing resident yet) and leaves the columnar
  // snapshot charged past the soft limit...
  auto first = db.Execute("select name from students", admin);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(db.memory_tracker().overloaded());
  // ...so the next arrival is shed with a retry-after hint.
  auto second = db.Execute("select name from students", admin);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kOverloaded);
  EXPECT_GE(RetryAfterHintMs(second.status()), 1);
  EXPECT_GE(db.admission().shed_memory(), 1u);
}

TEST(OverloadEndToEndTest, MemoryPressureDegradesNonTrumanToTruman) {
  DatabaseOptions opts;
  // The whole-check memo budget: the first expansion pass blows it, so a
  // Non-Truman check exhausts memory instead of finishing.
  opts.validity.check_max_memory_bytes = 64;
  opts.enable_validity_cache = false;
  Database db(opts);
  SetupUniversity(&db);
  CreateUniversityViews(&db);
  ASSERT_TRUE(db.ExecuteScript("grant select on mygrades to 11").ok());
  ASSERT_TRUE(db.catalog().SetTrumanView("grades", "mygrades").ok());

  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);

  // A strictly-stronger selection than the view: goal-directed search
  // cannot prove it at seed time, so the subsumption proof needs memo
  // expansion — which is exactly what the budget denies.
  const std::string q =
      "select grade from grades where student-id = '11' and grade > 3.0";

  // Without a degrade policy the blown budget fails closed.
  auto rejected = db.Execute(q, ctx);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // With DegradePolicy::kTruman the same pressure degrades to the
  // (filtered) Truman answer instead.
  QueryLimits limits;
  limits.degrade_policy = DegradePolicy::kTruman;
  ctx.set_query_limits(limits);
  auto degraded = db.Execute(q, ctx);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded.value().degraded_to_truman);
  // Truman slice: user 11's own grades above 3.0 (4.0 and 3.5).
  EXPECT_EQ(degraded.value().relation.num_rows(), 2u);
}

TEST(OverloadEndToEndTest, MetricsExportContainsOverloadGauges) {
  Database db;
  SetupUniversity(&db);
  std::string json = db.ExportMetricsJson();
  for (const char* key :
       {"memory.used", "memory.high_water", "memory.charges_denied",
        "admission.admitted", "admission.queue_depth", "admission.running",
        "admission.shed_queue_full", "admission.shed_memory",
        "scheduler.fair_queue_depth", "scheduler.fair_sessions_active"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing gauge " << key;
  }
}

TEST(OverloadEndToEndTest, SessionWeightClampsAndParallelQueriesRun) {
  SessionContext ctx("11");
  EXPECT_EQ(ctx.scheduler_weight(), 1u);
  ctx.set_scheduler_weight(0);  // 0 clamps to 1: a session is never starved
  EXPECT_EQ(ctx.scheduler_weight(), 1u);
  ctx.set_scheduler_weight(4);
  EXPECT_EQ(ctx.scheduler_weight(), 4u);

  // A weighted session's parallel plan routes through the fair queue and
  // still produces exact results.
  Database db;
  SetupUniversity(&db);
  ctx.set_mode(EnforcementMode::kNone);
  ctx.set_exec_parallelism(4);
  auto r = db.Execute(
      "select name from students where type = 'fulltime'", ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().relation.num_rows(), 2u);
}

}  // namespace
}  // namespace fgac
