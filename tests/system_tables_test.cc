// Tests for the FGAC-governed observability catalog: the fgac_audit /
// fgac_spans system tables bootstrapped by every Database, the per-user
// authorization views that let a session read its OWN audit rows (granted
// to public, installed as the Truman policy views), the _all views for
// admin and auditor principals, and the read-only enforcement over the
// fgac_ namespace. The audit log is exercised through real mixed
// workloads: accepted, rejected and degraded statements all land as rows.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/query_guard.h"
#include "core/database.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::MustQuery;
using fgac::testing::MustQueryAdmin;
using fgac::testing::SetupUniversity;

class SystemTablesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ASSERT_TRUE(db_.ExecuteScript("grant select on mygrades to 11;"
                                  "grant select on mygrades to 12")
                    .ok());
  }

  static SessionContext Student(const std::string& id, EnforcementMode mode) {
    SessionContext ctx(id);
    ctx.set_mode(mode);
    return ctx;
  }

  /// Runs one accepted and one rejected statement as each of users 11, 12.
  void RunMixedWorkload() {
    for (const char* user : {"11", "12"}) {
      SessionContext ctx = Student(user, EnforcementMode::kNonTruman);
      auto ok = db_.Execute(
          "select grade from grades where student-id = '" +
              std::string(user) + "'",
          ctx);
      ASSERT_TRUE(ok.ok()) << ok.status().ToString();
      auto rejected = db_.Execute("select * from grades", ctx);
      ASSERT_FALSE(rejected.ok());
      EXPECT_EQ(rejected.status().code(), StatusCode::kNotAuthorized);
    }
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------------

TEST_F(SystemTablesTest, BootstrapCreatesTablesViewsAndGrants) {
  EXPECT_NE(db_.catalog().GetTable("fgac_audit"), nullptr);
  EXPECT_NE(db_.catalog().GetTable("fgac_spans"), nullptr);
  for (const char* view : {"fgac_my_audit", "fgac_my_spans", "fgac_audit_all",
                           "fgac_spans_all"}) {
    EXPECT_NE(db_.catalog().GetView(view), nullptr) << view;
  }
}

// ---------------------------------------------------------------------------
// Self-governed access: own rows vs. all rows
// ---------------------------------------------------------------------------

TEST_F(SystemTablesTest, TrumanSelectSeesOnlyOwnAuditRows) {
  RunMixedWorkload();
  // A bare `select * from fgac_audit` in Truman mode is transparently
  // narrowed to the session user's own events via fgac_my_audit.
  SessionContext ctx = Student("11", EnforcementMode::kTruman);
  auto r = db_.Execute("select user_name, verdict from fgac_audit", ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r.value().relation.num_rows(), 2u);
  std::set<std::string> verdicts;
  for (const Row& row : r.value().relation.rows()) {
    EXPECT_EQ(row[0], Value::String("11"));
    verdicts.insert(row[1].string_value());
  }
  // Both the accepted and the rejected statement left a row.
  EXPECT_TRUE(verdicts.count("unconditional") || verdicts.count("conditional"))
      << "no accepted-statement row";
  EXPECT_EQ(verdicts.count("rejected"), 1u);
}

TEST_F(SystemTablesTest, NonTrumanSelfScopedAuditQueryIsValid) {
  RunMixedWorkload();
  // fgac_my_audit instantiates to `user_name = '12'` for this session, so
  // the explicitly self-scoped query is authorized by containment.
  SessionContext ctx = Student("12", EnforcementMode::kNonTruman);
  auto r = db_.Execute(
      "select user_name, statement from fgac_audit where user_name = '12'",
      ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r.value().relation.num_rows(), 2u);
  for (const Row& row : r.value().relation.rows()) {
    EXPECT_EQ(row[0], Value::String("12"));
  }
  // The same session asking for ANOTHER user's audit rows is rejected —
  // and that rejection is itself audited.
  auto peek = db_.Execute(
      "select * from fgac_audit where user_name = '11'", ctx);
  ASSERT_FALSE(peek.ok());
  EXPECT_EQ(peek.status().code(), StatusCode::kNotAuthorized);
}

TEST_F(SystemTablesTest, AdminAndAuditorSeeAllRows) {
  RunMixedWorkload();
  storage::Relation all =
      MustQueryAdmin(&db_, "select user_name from fgac_audit");
  std::set<std::string> users;
  for (const Row& row : all.rows()) users.insert(row[0].string_value());
  EXPECT_TRUE(users.count("11"));
  EXPECT_TRUE(users.count("12"));

  // The dedicated auditor principal reads everything through the granted
  // _all view, without being admin.
  SessionContext auditor = Student("auditor", EnforcementMode::kNonTruman);
  auto r = db_.Execute("select user_name from fgac_audit_all", auditor);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<std::string> seen;
  for (const Row& row : r.value().relation.rows())
    seen.insert(row[0].string_value());
  EXPECT_TRUE(seen.count("11"));
  EXPECT_TRUE(seen.count("12"));

  // An ordinary user holds no grant on the _all view.
  SessionContext ctx = Student("11", EnforcementMode::kNonTruman);
  auto denied = db_.Execute("select * from fgac_audit_all", ctx);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kNotAuthorized);
}

// ---------------------------------------------------------------------------
// Row content
// ---------------------------------------------------------------------------

TEST_F(SystemTablesTest, AuditRowsCarryVerdictStatusAndHash) {
  SessionContext ctx = Student("11", EnforcementMode::kNonTruman);
  const std::string q = "select grade from grades where student-id = '11'";
  ASSERT_TRUE(db_.Execute(q, ctx).ok());
  ASSERT_TRUE(db_.Execute(q, ctx).ok());  // second run: validity cache hit
  auto rejected = db_.Execute("select * from grades", ctx);
  ASSERT_FALSE(rejected.ok());

  storage::Relation rows = MustQueryAdmin(
      &db_,
      "select statement, verdict, status, error, statement_hash, from_cache,"
      " rows_out, session_id from fgac_audit where user_name = '11'");
  ASSERT_EQ(rows.num_rows(), 3u);
  const Row& first = rows.rows()[0];
  const Row& second = rows.rows()[1];
  const Row& third = rows.rows()[2];

  EXPECT_EQ(first[0], Value::String(q));
  EXPECT_EQ(first[2], Value::String("ok"));
  EXPECT_EQ(first[3], Value::String(""));
  EXPECT_EQ(first[5], Value::Bool(false));
  EXPECT_EQ(first[6], Value::Int(2));  // alice has two grades

  // Same statement, same 16-char hash; the second run came from the cache.
  EXPECT_EQ(second[4], first[4]);
  EXPECT_EQ(first[4].string_value().size(), 16u);
  EXPECT_EQ(second[5], Value::Bool(true));

  EXPECT_EQ(third[1], Value::String("rejected"));
  EXPECT_EQ(third[2], Value::String("not_authorized"));
  EXPECT_FALSE(third[3].string_value().empty());
  // All three statements ran in one session.
  EXPECT_EQ(first[7], third[7]);
}

TEST_F(SystemTablesTest, DegradedStatementIsAuditedAsDegradation) {
  SessionContext ctx = Student("11", EnforcementMode::kNonTruman);
  db_.options().validity.check_timeout = std::chrono::microseconds(1);
  common::QueryLimits limits;
  limits.degrade_policy = common::DegradePolicy::kTruman;
  ctx.set_query_limits(limits);
  auto r = db_.Execute("select grade from grades where student-id = '11'",
                       ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r.value().degraded_to_truman);
  db_.options().validity.check_timeout = std::chrono::microseconds(0);

  storage::Relation rows = MustQueryAdmin(
      &db_, "select verdict from fgac_audit where user_name = '11'");
  ASSERT_EQ(rows.num_rows(), 1u);
  EXPECT_EQ(rows.rows()[0][0], Value::String("degraded_to_truman"));
}

TEST_F(SystemTablesTest, ParseFailuresAreAuditedToo) {
  SessionContext ctx = Student("11", EnforcementMode::kNonTruman);
  auto r = db_.Execute("selec oops", ctx);
  ASSERT_FALSE(r.ok());
  storage::Relation rows = MustQueryAdmin(
      &db_,
      "select statement, verdict from fgac_audit where user_name = '11'");
  ASSERT_EQ(rows.num_rows(), 1u);
  EXPECT_EQ(rows.rows()[0][0], Value::String("selec oops"));
  EXPECT_EQ(rows.rows()[0][1], Value::String("error"));
}

TEST_F(SystemTablesTest, SpansTableServesTracedStatements) {
  SessionContext ctx = Student("11", EnforcementMode::kNonTruman);
  ctx.set_trace(true);
  ctx.set_trace_id(4242);
  ASSERT_TRUE(
      db_.Execute("select grade from grades where student-id = '11'", ctx)
          .ok());
  storage::Relation spans = MustQueryAdmin(
      &db_,
      "select span_name, user_name from fgac_spans where trace_id = 4242");
  ASSERT_GE(spans.num_rows(), 3u);
  std::set<std::string> names;
  for (const Row& row : spans.rows()) {
    names.insert(row[0].string_value());
    EXPECT_EQ(row[1], Value::String("11"));
  }
  EXPECT_TRUE(names.count("query"));
  EXPECT_TRUE(names.count("validity.check"));
  EXPECT_TRUE(names.count("exec"));

  // The span tree correlates with the audit row through trace_id.
  storage::Relation audit = MustQueryAdmin(
      &db_, "select trace_id from fgac_audit where user_name = '11'");
  ASSERT_EQ(audit.num_rows(), 1u);
  EXPECT_EQ(audit.rows()[0][0], Value::Int(4242));

  // Per-user span visibility mirrors the audit table: Truman-mode users
  // see their own spans only.
  SessionContext other = Student("12", EnforcementMode::kTruman);
  auto own = db_.Execute("select user_name from fgac_spans", other);
  ASSERT_TRUE(own.ok()) << own.status().ToString();
  for (const Row& row : own.value().relation.rows()) {
    EXPECT_EQ(row[0], Value::String("12"));
  }
}

TEST_F(SystemTablesTest, AuditTableSeesEventsFromTheSameSessionPromptly) {
  // The row materialized for a SELECT over fgac_audit must already include
  // the statement executed IMMEDIATELY before it (the refresh path flushes
  // the ring synchronously — no waiting for the background cadence).
  SessionContext ctx = Student("11", EnforcementMode::kNonTruman);
  ASSERT_TRUE(
      db_.Execute("select grade from grades where student-id = '11'", ctx)
          .ok());
  storage::Relation rows = MustQueryAdmin(
      &db_, "select statement from fgac_audit where user_name = '11'");
  ASSERT_EQ(rows.num_rows(), 1u);
}

// ---------------------------------------------------------------------------
// Read-only enforcement
// ---------------------------------------------------------------------------

TEST_F(SystemTablesTest, SystemTablesRejectAllMutation) {
  const char* mutations[] = {
      "insert into fgac_audit values (1)",
      "update fgac_audit set user_name = 'x' where seq = 1",
      "delete from fgac_audit",
      "drop table fgac_audit",
      "drop view fgac_my_audit",
      "drop table fgac_spans",
  };
  for (const char* sql : mutations) {
    auto r = db_.ExecuteAsAdmin(sql);
    ASSERT_FALSE(r.ok()) << sql;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << sql;
  }
  // The reserved namespace also rejects new user objects.
  auto create = db_.ExecuteAsAdmin("create table fgac_mine (a int)");
  ASSERT_FALSE(create.ok());
  auto view = db_.ExecuteAsAdmin(
      "create view fgac_v as select * from students");
  ASSERT_FALSE(view.ok());
}

}  // namespace
}  // namespace fgac
