// Cost model and best-plan extraction unit tests.

#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "algebra/binder.h"
#include "algebra/normalize.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace fgac::optimizer {
namespace {

using algebra::PlanKind;
using algebra::PlanPtr;
using fgac::testing::SetupUniversity;

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override { SetupUniversity(&db_); }

  PlanPtr Bind(const std::string& sql) {
    auto stmt = sql::Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok());
    algebra::Binder binder(db_.catalog(), {});
    auto plan = binder.BindSelect(*stmt.value());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? plan.value() : nullptr;
  }

  core::Database db_;
};

TEST_F(OptimizerTest, SelectivityHeuristics) {
  auto eq = algebra::NormalizeScalar(algebra::MakeBinaryScalar(
      sql::BinOp::kEq, algebra::MakeColumn(0),
      algebra::MakeLiteralScalar(Value::Int(1))));
  auto lt = algebra::NormalizeScalar(algebra::MakeBinaryScalar(
      sql::BinOp::kLt, algebra::MakeColumn(0),
      algebra::MakeLiteralScalar(Value::Int(1))));
  EXPECT_LT(PredicateSelectivity({eq}), PredicateSelectivity({lt}));
  EXPECT_LT(PredicateSelectivity({eq, lt}), PredicateSelectivity({eq}));
  // Never zero (guards against degenerate plans dominating).
  EXPECT_GT(PredicateSelectivity({eq, eq, eq, eq, eq, eq, eq, eq, eq, eq}),
            0.0);
}

TEST_F(OptimizerTest, StatsInfluenceJoinOrder) {
  // With `students` tiny and `grades` huge, the cheapest hash join builds
  // on the smaller input; flipping the stats should flip the chosen build
  // side (the right child is the build side in our executor).
  PlanPtr plan = Bind(
      "select * from students, grades "
      "where students.student-id = grades.student-id");
  ExpandOptions options;
  auto side_of = [](const PlanPtr& p, auto&& self) -> std::string {
    if (p->kind == PlanKind::kJoin && !p->predicates.empty()) {
      // Find the deepest Get of the right (build) subtree.
      PlanPtr cur = p->children[1];
      while (!cur->children.empty()) cur = cur->children[0];
      return cur->table;
    }
    for (const PlanPtr& c : p->children) {
      std::string r = self(c, self);
      if (!r.empty()) return r;
    }
    return "";
  };
  auto big_grades = Optimize(plan, options, [](const std::string& t) {
    return t == "grades" ? 100000.0 : 10.0;
  });
  auto big_students = Optimize(plan, options, [](const std::string& t) {
    return t == "students" ? 100000.0 : 10.0;
  });
  ASSERT_TRUE(big_grades.ok());
  ASSERT_TRUE(big_students.ok());
  std::string build_a = side_of(big_grades.value().plan, side_of);
  std::string build_b = side_of(big_students.value().plan, side_of);
  EXPECT_NE(build_a, build_b)
      << "stats change did not change the join orientation\n"
      << algebra::PlanToString(big_grades.value().plan)
      << algebra::PlanToString(big_students.value().plan);
}

TEST_F(OptimizerTest, EstimatesArePopulated) {
  auto result = Optimize(Bind("select * from grades where grade = 4.0"),
                         ExpandOptions{},
                         [](const std::string&) { return 500.0; });
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().estimated_cost, 0.0);
  EXPECT_GT(result.value().estimated_rows, 0.0);
  EXPECT_LT(result.value().estimated_rows, 500.0);  // filter reduces
  EXPECT_GT(result.value().memo_exprs, 0u);
}

TEST_F(OptimizerTest, SortAndLimitSurviveOptimization) {
  auto result = Optimize(
      Bind("select grade from grades order by grade desc limit 2"),
      ExpandOptions{}, [](const std::string&) { return 100.0; });
  ASSERT_TRUE(result.ok());
  // Limit must stay the root; Sort below it.
  EXPECT_EQ(result.value().plan->kind, PlanKind::kLimit);
  EXPECT_EQ(result.value().plan->children[0]->kind, PlanKind::kSort);
}

TEST_F(OptimizerTest, PlanPrinterMentionsEveryOperator) {
  PlanPtr plan = Bind(
      "select distinct course-id, count(*) from grades "
      "group by course-id order by 1 limit 5");
  std::string text = algebra::PlanToString(plan);
  for (const char* token : {"Limit", "Sort", "Distinct", "Aggregate", "Get"}) {
    EXPECT_NE(text.find(token), std::string::npos) << text;
  }
}

TEST_F(OptimizerTest, MemoDumpRendersValidityMarks) {
  Memo memo;
  GroupId g = memo.InsertPlan(Bind("select * from grades"));
  memo.MarkValidU(g);
  std::string dump = memo.ToString();
  EXPECT_NE(dump.find("[valid-U]"), std::string::npos) << dump;
  EXPECT_NE(dump.find("Get(grades)"), std::string::npos);
}

}  // namespace
}  // namespace fgac::optimizer
