// Fault-injection-driven tests: error paths that are unreachable from SQL
// alone. Each test arms a named site compiled into the engine (storage
// rebuild, hash-join build, validity probes, thread-pool dispatch, morsel
// claims) and asserts the failure unwinds as a clean Status — no crash, no
// hang, no half-written state.
//
// Sites exist only when NDEBUG is undefined (Debug / sanitizer builds) or
// the build sets -DFGAC_FAULT_INJECTION=ON; elsewhere the whole suite
// skips.

#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using common::FaultInjector;
using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FaultInjector::compiled_in()) {
      GTEST_SKIP() << "fault-injection sites not compiled into this build";
    }
    FaultInjector::Instance().Reset();
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ASSERT_TRUE(db_.ExecuteScript("grant select on costudentgrades to 11;"
                                  "grant select on myregistrations to 11")
                    .ok());
  }

  void TearDown() override {
    if (FaultInjector::compiled_in()) FaultInjector::Instance().Reset();
  }

  static SessionContext Admin() {
    SessionContext ctx("admin");
    ctx.set_mode(EnforcementMode::kNone);
    return ctx;
  }

  void GrowStudents(size_t n) {
    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rows.push_back({Value::String("s" + std::to_string(i + 100)),
                      Value::String("name"), Value::String("fulltime")});
    }
    db_.state().GetMutableTable("students")->InsertRows(std::move(rows));
  }

  Database db_;
};

TEST_F(FaultInjectionTest, InjectorIsDeterministic) {
  auto& fi = FaultInjector::Instance();
  auto run = [&fi] {
    fi.Reset();
    fi.FailWithProbability("det.site", 0.5, /*seed=*/42);
    std::vector<bool> pattern;
    for (int i = 0; i < 32; ++i) pattern.push_back(!fi.Hit("det.site").ok());
    return pattern;
  };
  EXPECT_EQ(run(), run());

  fi.Reset();
  fi.FailOnHit("nth.site", /*nth=*/3);
  EXPECT_TRUE(fi.Hit("nth.site").ok());
  EXPECT_TRUE(fi.Hit("nth.site").ok());
  EXPECT_FALSE(fi.Hit("nth.site").ok());
  // Fires once, then disarms.
  EXPECT_TRUE(fi.Hit("nth.site").ok());
  EXPECT_EQ(fi.HitCount("nth.site"), 4u);
}

TEST_F(FaultInjectionTest, StorageRebuildFailureIsRetryable) {
  // A failed columnar-snapshot rebuild must surface as a clean error and
  // leave the snapshot dirty, so the next scan rebuilds successfully —
  // not serve a half-built snapshot.
  FaultInjector::Instance().FailOnHit("storage.rebuild");
  auto broken = db_.Execute("select * from students", Admin());
  ASSERT_FALSE(broken.ok());
  EXPECT_NE(broken.status().message().find("fault injected"),
            std::string::npos);
  auto retried = db_.Execute("select * from students", Admin());
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value().relation.num_rows(), 4u);
}

TEST_F(FaultInjectionTest, HashJoinBuildFailurePropagates) {
  FaultInjector::Instance().FailOnHit("exec.hash_join.build");
  auto r = db_.Execute(
      "select g.grade from grades g, students s "
      "where g.student-id = s.student-id",
      Admin());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("fault injected"), std::string::npos);
  // The table is intact afterwards.
  auto again = db_.Execute("select * from grades", Admin());
  EXPECT_TRUE(again.ok());
}

TEST_F(FaultInjectionTest, FailedValidityProbeFailsClosed) {
  // Example 4.4: conditional validity hinges on C3 database probes. A
  // probe that dies mid-flight counts as EMPTY, so the query is rejected —
  // an infrastructure fault must narrow access, never widen it.
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  const std::string q = "select * from grades where course-id = 'cs101'";
  db_.options().enable_validity_cache = false;

  auto healthy = db_.Execute(q, ctx);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();

  FaultInjector::Instance().FailWithProbability("validity.probe", 1.0,
                                                /*seed=*/1);
  auto faulted = db_.Execute(q, ctx);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kNotAuthorized);

  FaultInjector::Instance().Disarm("validity.probe");
  auto recovered = db_.Execute(q, ctx);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

TEST_F(FaultInjectionTest, ThreadPoolDispatchFailureJoinsAllWorkers) {
  GrowStudents(20000);
  FaultInjector::Instance().FailOnHit("threadpool.dispatch");
  SessionContext ctx = Admin();
  ctx.set_exec_parallelism(4);
  // One worker's dispatch fails; the others must observe the shared abort,
  // drain, and join — returning here at all proves no worker was leaked.
  auto r = db_.Execute("select * from students", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("fault injected"), std::string::npos);
  auto again = db_.Execute("select * from students", ctx);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(FaultInjectionTest, CallbackCancelsAtExactMorselBoundary) {
  // OnHit turns a site into a deterministic trigger: cancel the session
  // the moment the 8th morsel is claimed — no sleeps, no racing clocks.
  GrowStudents(20000);
  auto token = std::make_shared<std::atomic<bool>>(false);
  FaultInjector::Instance().OnHit(
      "parallel.morsel", [token] { token->store(true); }, /*nth=*/8);
  SessionContext ctx = Admin();
  ctx.set_exec_parallelism(4);
  ctx.set_cancel_token(token);
  auto r = db_.Execute("select * from students", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_GE(FaultInjector::Instance().HitCount("parallel.morsel"), 8u);
}

TEST_F(FaultInjectionTest, MorselClaimFailureDrainsPeers) {
  GrowStudents(20000);
  FaultInjector::Instance().FailOnHit("parallel.morsel", /*nth=*/5);
  SessionContext ctx = Admin();
  ctx.set_exec_parallelism(4);
  auto r = db_.Execute("select * from students", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("fault injected"), std::string::npos);
}

TEST_F(FaultInjectionTest, FailedProbeLandsInAuditLogAndTrace) {
  // Observability must capture the failure path, not only happy paths: a
  // validity probe killed mid-flight has to show up in the statement's
  // audit event (fail-closed rejection) AND in its span tree.
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  ctx.set_trace(true);
  ctx.set_trace_id(1001);
  db_.options().enable_validity_cache = false;
  FaultInjector::Instance().FailWithProbability("validity.probe", 1.0,
                                                /*seed=*/1);
  auto r = db_.Execute("select * from grades where course-id = 'cs101'", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);

  db_.audit_log().Flush();
  std::vector<common::AuditEvent> tail = db_.audit_log().SnapshotRetained();
  ASSERT_FALSE(tail.empty());
  const common::AuditEvent& ev = tail.back();
  EXPECT_EQ(ev.user, "11");
  EXPECT_EQ(ev.verdict, "rejected");
  EXPECT_EQ(ev.status, "not_authorized");
  EXPECT_FALSE(ev.error.empty());
  EXPECT_EQ(ev.trace_id, 1001u);

  bool saw_validity_span = false;
  for (const common::TraceSpan& s : db_.tracer().Snapshot()) {
    if (s.trace_id != 1001u) continue;
    if (s.name == "validity.check" || s.name == "validity.probe_batch") {
      saw_validity_span = true;
    }
    EXPECT_NE(s.name, "exec") << "rejected query must not reach execution";
  }
  EXPECT_TRUE(saw_validity_span);
}

TEST_F(FaultInjectionTest, MorselFaultLandsInAuditLogAndWorkerSpans) {
  GrowStudents(20000);
  FaultInjector::Instance().FailOnHit("parallel.morsel", /*nth=*/5);
  SessionContext ctx = Admin();
  ctx.set_exec_parallelism(4);
  ctx.set_trace(true);
  ctx.set_trace_id(1002);
  auto r = db_.Execute("select * from students", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("fault injected"), std::string::npos);

  db_.audit_log().Flush();
  std::vector<common::AuditEvent> tail = db_.audit_log().SnapshotRetained();
  ASSERT_FALSE(tail.empty());
  const common::AuditEvent& ev = tail.back();
  // The verdict records the enforcement decision (an unenforced admin
  // statement); the failure itself lands in status/error.
  EXPECT_EQ(ev.verdict, "none");
  EXPECT_NE(ev.status, "ok");
  EXPECT_NE(ev.error.find("fault injected"), std::string::npos);
  EXPECT_EQ(ev.trace_id, 1002u);

  // Every worker recorded its span on the way down — including the one
  // that hit the fault, whose detail carries the error.
  size_t workers = 0;
  bool saw_error_detail = false;
  for (const common::TraceSpan& s : db_.tracer().Snapshot()) {
    if (s.trace_id != 1002u || s.name != "exec.worker") continue;
    ++workers;
    if (s.detail.find("error=") != std::string::npos) saw_error_detail = true;
  }
  EXPECT_EQ(workers, 4u);
  EXPECT_TRUE(saw_error_detail);
}

TEST_F(FaultInjectionTest, ProbabilisticFaultStormNeverHangs) {
  // Sustained 30% failure across every site: queries fail or succeed, but
  // the engine always returns and later recovers completely.
  GrowStudents(4000);
  auto& fi = FaultInjector::Instance();
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  db_.options().enable_validity_cache = false;
  const char* sites[] = {"storage.rebuild", "exec.hash_join.build",
                         "validity.probe", "threadpool.dispatch",
                         "parallel.morsel"};
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (const char* site : sites) fi.FailWithProbability(site, 0.3, seed);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SessionContext run = ctx;
      run.set_exec_parallelism(threads);
      auto r =
          db_.Execute("select * from grades where course-id = 'cs101'", run);
      if (!r.ok()) EXPECT_FALSE(r.status().message().empty());
    }
  }
  fi.Reset();
  auto recovered =
      db_.Execute("select * from grades where course-id = 'cs101'", ctx);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

}  // namespace
}  // namespace fgac
