// Status / Result / string-utility unit tests.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace fgac {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotAuthorized("nope");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotAuthorized);
  EXPECT_EQ(s.message(), "nope");
  EXPECT_EQ(s.ToString(), "NotAuthorized: nope");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kConstraintViolation),
               "ConstraintViolation");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::ParseError("x"), Status::ParseError("x"));
  EXPECT_FALSE(Status::ParseError("x") == Status::BindError("x"));
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_TRUE(ok.status().ok());
  Result<int> err = Half(3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Chain(int v) {
  FGAC_ASSIGN_OR_RETURN(int h, Half(v));
  FGAC_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Chain(20).ok());
  EXPECT_EQ(Chain(20).value(), 5);
  EXPECT_FALSE(Chain(10).ok());  // 5 is odd at the second step
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StringsTest, ToLowerAndEquals) {
  EXPECT_EQ(ToLower("AbC-9"), "abc-9");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "sELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("view:mygrades", "view:"));
  EXPECT_FALSE(StartsWith("vi", "view:"));
}

// ---------------------------------------------------------------------------
// JSON escaping — shared by metrics export, the validity trace and the
// audit sink. Statement text is attacker-controlled, so the escaper must
// yield a valid JSON string literal for ANY byte sequence.
// ---------------------------------------------------------------------------

// True iff `s` is a well-formed JSON string literal body: no raw control
// characters or quotes, every backslash starts a legal escape, and the
// bytes outside escapes are valid UTF-8.
bool IsValidJsonStringBody(const std::string& s) {
  for (size_t i = 0; i < s.size();) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c < 0x20 || c == '"') return false;
    if (c == '\\') {
      if (i + 1 >= s.size()) return false;
      char e = s[i + 1];
      if (e == 'u') {
        if (i + 5 >= s.size()) return false;
        for (size_t k = i + 2; k < i + 6; ++k) {
          if (!std::isxdigit(static_cast<unsigned char>(s[k]))) return false;
        }
        i += 6;
        continue;
      }
      if (std::string("\"\\/bfnrt").find(e) == std::string::npos) return false;
      i += 2;
      continue;
    }
    if (c < 0x80) {
      ++i;
      continue;
    }
    // Multi-byte UTF-8: count and verify continuation bytes.
    int extra = (c & 0xE0) == 0xC0 ? 1 : (c & 0xF0) == 0xE0 ? 2
                : (c & 0xF8) == 0xF0                        ? 3
                                                            : -1;
    if (extra < 0 || i + extra >= s.size()) return false;
    for (int k = 1; k <= extra; ++k) {
      if ((static_cast<unsigned char>(s[i + k]) & 0xC0) != 0x80) return false;
    }
    i += 1 + extra;
  }
  return true;
}

TEST(JsonEscapeTest, CommonEscapes) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("line\nbreak\ttab\rret"),
            "\"line\\nbreak\\ttab\\rret\"");
  EXPECT_EQ(JsonQuote(std::string_view("\b\f", 2)), "\"\\b\\f\"");
  EXPECT_EQ(JsonQuote(""), "\"\"");
}

TEST(JsonEscapeTest, ControlCharactersBecomeUnicodeEscapes) {
  std::string all;
  for (int c = 1; c < 0x20; ++c) all.push_back(static_cast<char>(c));
  std::string quoted = JsonQuote(all);
  EXPECT_TRUE(IsValidJsonStringBody(quoted.substr(1, quoted.size() - 2)));
  EXPECT_NE(quoted.find("\\u0001"), std::string::npos);
  EXPECT_NE(quoted.find("\\u001f"), std::string::npos);
  // NUL embedded mid-string must not truncate.
  std::string with_nul("a\0b", 3);
  EXPECT_EQ(JsonQuote(with_nul), "\"a\\u0000b\"");
}

TEST(JsonEscapeTest, ValidUtf8PassesThroughUnchanged) {
  const std::string utf8 = "caf\xc3\xa9 \xe4\xb8\xad\xe6\x96\x87 \xf0\x9f\x98\x80";
  EXPECT_EQ(JsonQuote(utf8), "\"" + utf8 + "\"");
}

TEST(JsonEscapeTest, InvalidUtf8IsReplacedNotEmitted) {
  // Lone continuation byte, truncated 3-byte sequence, overlong-looking
  // lead with no continuation, stray 0xFF: all must come out as U+FFFD
  // (EF BF BD), never as the raw invalid byte.
  const char* cases[] = {"\x80", "\xe4\xb8", "\xc3", "\xff\xfe",
                         "ok\x80still ok"};
  for (const char* raw : cases) {
    std::string quoted = JsonQuote(raw);
    std::string body = quoted.substr(1, quoted.size() - 2);
    EXPECT_TRUE(IsValidJsonStringBody(body)) << "input: " << raw;
    EXPECT_NE(body.find("\xef\xbf\xbd"), std::string::npos)
        << "input: " << raw;
  }
  EXPECT_EQ(JsonQuote("ok\x80still ok"), "\"ok\xef\xbf\xbdstill ok\"");
}

TEST(JsonEscapeTest, FuzzEveryByteValueAndRandomishBlends) {
  // Every single byte value alone...
  for (int b = 0; b < 256; ++b) {
    std::string input(1, static_cast<char>(b));
    std::string quoted = JsonQuote(input);
    ASSERT_GE(quoted.size(), 2u);
    EXPECT_EQ(quoted.front(), '"');
    EXPECT_EQ(quoted.back(), '"');
    EXPECT_TRUE(IsValidJsonStringBody(quoted.substr(1, quoted.size() - 2)))
        << "byte " << b;
  }
  // ...and deterministic pseudo-random byte soup, in varying lengths.
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (int len = 1; len <= 64; ++len) {
    std::string input;
    for (int i = 0; i < len; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      input.push_back(static_cast<char>(state >> 56));
    }
    std::string quoted = JsonQuote(input);
    EXPECT_TRUE(IsValidJsonStringBody(quoted.substr(1, quoted.size() - 2)))
        << "len " << len;
  }
}

TEST(JsonEscapeTest, AppendDoesNotDisturbExistingOutput) {
  std::string out = "{\"k\":\"";
  AppendJsonEscaped(&out, "v\"1");
  out += "\"}";
  EXPECT_EQ(out, "{\"k\":\"v\\\"1\"}");
}

}  // namespace
}  // namespace fgac
