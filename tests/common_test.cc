// Status / Result / string-utility unit tests.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace fgac {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotAuthorized("nope");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotAuthorized);
  EXPECT_EQ(s.message(), "nope");
  EXPECT_EQ(s.ToString(), "NotAuthorized: nope");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kConstraintViolation),
               "ConstraintViolation");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::ParseError("x"), Status::ParseError("x"));
  EXPECT_FALSE(Status::ParseError("x") == Status::BindError("x"));
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_TRUE(ok.status().ok());
  Result<int> err = Half(3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Chain(int v) {
  FGAC_ASSIGN_OR_RETURN(int h, Half(v));
  FGAC_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Chain(20).ok());
  EXPECT_EQ(Chain(20).value(), 5);
  EXPECT_FALSE(Chain(10).ok());  // 5 is odd at the second step
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StringsTest, ToLowerAndEquals) {
  EXPECT_EQ(ToLower("AbC-9"), "abc-9");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "sELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("view:mygrades", "view:"));
  EXPECT_FALSE(StartsWith("vi", "view:"));
}

}  // namespace
}  // namespace fgac
