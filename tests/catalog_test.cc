#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace fgac::catalog {
namespace {

TableSchema MakeStudents() {
  TableSchema schema("students", {{"student-id", TypeId::kString, true},
                                  {"name", TypeId::kString, false},
                                  {"type", TypeId::kString, false}});
  schema.set_primary_key({0});
  return schema;
}

TEST(CatalogTest, AddAndLookupTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeStudents()).ok());
  EXPECT_TRUE(catalog.HasTable("students"));
  const TableSchema* schema = catalog.GetTable("students");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->num_columns(), 3u);
  EXPECT_EQ(schema->FindColumn("name"), 1u);
  EXPECT_FALSE(schema->FindColumn("nosuch").has_value());
  EXPECT_TRUE(schema->has_primary_key());
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeStudents()).ok());
  Status s = catalog.AddTable(MakeStudents());
  EXPECT_EQ(s.code(), StatusCode::kCatalogError);
}

TEST(CatalogTest, ViewNameCollidesWithTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeStudents()).ok());
  ViewDefinition view;
  view.name = "students";
  EXPECT_FALSE(catalog.AddView(std::move(view)).ok());
}

TEST(CatalogTest, DropTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeStudents()).ok());
  EXPECT_TRUE(catalog.DropTable("students").ok());
  EXPECT_FALSE(catalog.HasTable("students"));
  EXPECT_FALSE(catalog.DropTable("students").ok());
}

TEST(CatalogTest, ConstraintValidatesColumns) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeStudents()).ok());
  TableSchema reg("registered", {{"student-id", TypeId::kString, true},
                                 {"course-id", TypeId::kString, true}});
  ASSERT_TRUE(catalog.AddTable(std::move(reg)).ok());

  InclusionDependency good;
  good.name = "esr";
  good.src_table = "students";
  good.src_columns = {"student-id"};
  good.dst_table = "registered";
  good.dst_columns = {"student-id"};
  EXPECT_TRUE(catalog.AddConstraint(good).ok());

  InclusionDependency bad = good;
  bad.src_columns = {"nosuch"};
  EXPECT_FALSE(catalog.AddConstraint(bad).ok());

  InclusionDependency bad2 = good;
  bad2.dst_table = "nosuch";
  EXPECT_FALSE(catalog.AddConstraint(bad2).ok());

  EXPECT_EQ(catalog.ConstraintsFrom("students").size(), 1u);
  EXPECT_TRUE(catalog.ConstraintsFrom("registered").empty());
}

TEST(CatalogTest, GrantsResolveThroughRoles) {
  Catalog catalog;
  ViewDefinition v1;
  v1.name = "v1";
  v1.is_authorization = true;
  ASSERT_TRUE(catalog.AddView(std::move(v1)).ok());
  ViewDefinition v2;
  v2.name = "v2";
  v2.is_authorization = true;
  ASSERT_TRUE(catalog.AddView(std::move(v2)).ok());

  ASSERT_TRUE(catalog.GrantView("v1", "teacher_role").ok());
  ASSERT_TRUE(catalog.GrantRole("teacher_role", "alice").ok());
  ASSERT_TRUE(catalog.GrantView("v2", "alice").ok());

  auto views = catalog.AvailableViews("alice");
  EXPECT_EQ(views.size(), 2u);
  EXPECT_EQ(catalog.AvailableViews("bob").size(), 0u);
}

TEST(CatalogTest, NestedRolesAndCycles) {
  Catalog catalog;
  ViewDefinition v;
  v.name = "v";
  ASSERT_TRUE(catalog.AddView(std::move(v)).ok());
  ASSERT_TRUE(catalog.GrantView("v", "r1").ok());
  ASSERT_TRUE(catalog.GrantRole("r1", "r2").ok());
  ASSERT_TRUE(catalog.GrantRole("r2", "r1").ok());  // cycle must not hang
  ASSERT_TRUE(catalog.GrantRole("r2", "user").ok());
  EXPECT_EQ(catalog.AvailableViews("user").size(), 1u);
}

TEST(CatalogTest, PublicGrantsVisibleToEveryone) {
  Catalog catalog;
  ViewDefinition v;
  v.name = "v";
  ASSERT_TRUE(catalog.AddView(std::move(v)).ok());
  ASSERT_TRUE(catalog.GrantView("v", "public").ok());
  EXPECT_EQ(catalog.AvailableViews("anyone").size(), 1u);
}

TEST(CatalogTest, GrantUnknownViewFails) {
  Catalog catalog;
  EXPECT_FALSE(catalog.GrantView("nosuch", "alice").ok());
}

TEST(CatalogTest, TrumanViewRegistry) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(MakeStudents()).ok());
  ViewDefinition v;
  v.name = "students_policy";
  ASSERT_TRUE(catalog.AddView(std::move(v)).ok());
  EXPECT_TRUE(catalog.TrumanViewFor("students").empty());
  ASSERT_TRUE(catalog.SetTrumanView("students", "students_policy").ok());
  EXPECT_EQ(catalog.TrumanViewFor("students"), "students_policy");
  EXPECT_FALSE(catalog.SetTrumanView("nosuch", "students_policy").ok());
  EXPECT_FALSE(catalog.SetTrumanView("students", "nosuch").ok());
}

TEST(TypeTest, ValueFitsAndCoerces) {
  EXPECT_TRUE(ValueFitsType(Value::Int(1), TypeId::kInt64));
  EXPECT_FALSE(ValueFitsType(Value::String("x"), TypeId::kInt64));
  EXPECT_TRUE(ValueFitsType(Value::Int(1), TypeId::kDouble));
  EXPECT_TRUE(ValueFitsType(Value::Null(), TypeId::kBool));
  Value coerced = CoerceToType(Value::Int(3), TypeId::kDouble);
  EXPECT_TRUE(coerced.is_double());
  EXPECT_DOUBLE_EQ(coerced.double_value(), 3.0);
}

}  // namespace
}  // namespace fgac::catalog
