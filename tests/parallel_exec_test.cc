// Tests for the morsel-driven parallel execution layer: the thread pool,
// ParallelExecutePlan vs the serial engines on generated and hand-written
// queries at several thread counts, morsel coverage, and the serial
// fallback for non-parallelizable shapes.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <vector>

#include "algebra/binder.h"
#include "algebra/reference_eval.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "core/database.h"
#include "exec/executor.h"
#include "exec/parallel.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "storage/relation.h"
#include "storage/table_data.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using common::ThreadPool;
using fgac::testing::QueryGenerator;
using fgac::testing::SortedRowsToString;

TEST(ThreadPoolTest, RunAllCompletesEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
  // Reusable after a batch.
  std::vector<std::function<void()>> more;
  for (int i = 0; i < 7; ++i) more.push_back([&counter] { counter.fetch_add(1); });
  pool.RunAll(std::move(more));
  EXPECT_EQ(counter.load(), 107);
}

TEST(ThreadPoolTest, RunAllWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.RunAll({});  // must not hang
}

TEST(ThreadPoolTest, SubmitRunsDetachedTask) {
  ThreadPool pool(1);
  std::promise<int> done;
  pool.Submit([&done] { done.set_value(42); });
  EXPECT_EQ(done.get_future().get(), 42);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.RunAll({[&counter] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 1);
}

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small NULL-heavy university fixture (mirrors exec_chunk_test so the
    // query generator sweeps identical territory) plus a larger fact/dim
    // pair seeded directly into storage so scans span multiple morsels.
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      create table students (
        student-id varchar not null primary key,
        name varchar,
        type varchar
      );
      create table courses (
        course-id varchar not null primary key,
        name varchar
      );
      create table registered (
        student-id varchar not null,
        course-id varchar not null,
        primary key (student-id, course-id)
      );
      create table grades (
        student-id varchar not null,
        course-id varchar not null,
        grade double,
        primary key (student-id, course-id)
      );
      insert into students values
        ('11', 'alice', 'fulltime'),
        ('12', 'bob', 'fulltime'),
        ('13', 'carol', 'parttime'),
        ('14', 'dave', 'parttime'),
        ('15', null, 'fulltime'),
        ('16', 'frank', null),
        ('17', null, null);
      insert into courses values
        ('cs101', 'intro programming'),
        ('cs202', 'databases'),
        ('ee150', null);
      insert into registered values
        ('11', 'cs101'), ('11', 'cs202'), ('12', 'cs101'), ('12', 'ee150'),
        ('13', 'cs202'), ('15', 'cs101'), ('16', 'ee150'), ('17', 'cs202');
      insert into grades values
        ('11', 'cs101', 4.0),
        ('12', 'cs101', 3.0),
        ('11', 'cs202', 3.5),
        ('13', 'cs202', 2.0),
        ('15', 'cs101', null),
        ('16', 'ee150', null),
        ('17', 'cs202', null);
      create table fact (k varchar not null, v double, tag varchar);
      create table dim (k varchar not null primary key, label varchar);
    )sql")
                    .ok());

    // kFactRows > 4 * kMorselSize so a 4-thread scan has morsels to fight
    // over. Values are integral doubles: SUM/AVG stay exact and thus
    // order-independent across partitions.
    std::vector<Row> fact_rows;
    fact_rows.reserve(kFactRows);
    for (size_t i = 0; i < kFactRows; ++i) {
      Row r;
      r.push_back(Value::String("k" + std::to_string(i % 64)));
      if (i % 97 == 0) {
        r.push_back(Value::Null());
      } else {
        r.push_back(Value::Double(static_cast<double>(i % 100)));
      }
      r.push_back(Value::String("t" + std::to_string(i % 3)));
      fact_rows.push_back(std::move(r));
    }
    db_.state().GetMutableTable("fact")->InsertRows(std::move(fact_rows));

    std::vector<Row> dim_rows;
    for (int i = 0; i < 64; ++i) {
      dim_rows.push_back({Value::String("k" + std::to_string(i)),
                          Value::String("label" + std::to_string(i))});
    }
    db_.state().GetMutableTable("dim")->InsertRows(std::move(dim_rows));
  }

  algebra::PlanPtr MustBind(const std::string& sql) {
    auto stmt = sql::Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    algebra::Binder binder(db_.catalog(), {});
    auto plan = binder.BindSelect(*stmt.value());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << "\nsql: " << sql;
    return plan.value();
  }

  // The binder leaves join predicates in a Select above a cross join; the
  // optimizer's pushdown turns them into equi-join keys, which is what the
  // shared-build parallel hash join keys off. Optimize like Database does.
  algebra::PlanPtr Optimized(const algebra::PlanPtr& plan) {
    auto row_count = [this](const std::string& table) -> double {
      const storage::TableData* t = db_.state().GetTable(table);
      return t != nullptr ? static_cast<double>(t->num_rows()) : 0.0;
    };
    auto best = optimizer::Optimize(plan, optimizer::ExpandOptions{}, row_count);
    EXPECT_TRUE(best.ok()) << best.status().ToString();
    return best.ok() ? best.value().plan : plan;
  }

  void ExpectParallelMatchesSerial(const std::string& sql,
                                   bool expect_parallel) {
    algebra::PlanPtr plan = Optimized(MustBind(sql));
    EXPECT_EQ(exec::IsParallelizable(plan, db_.state()), expect_parallel)
        << "sql: " << sql;
    auto serial = exec::ExecutePlan(plan, db_.state());
    ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\nsql: " << sql;
    for (size_t threads : {2u, 4u}) {
      auto parallel = exec::ParallelExecutePlan(plan, db_.state(), threads);
      ASSERT_TRUE(parallel.ok())
          << parallel.status().ToString() << "\nsql: " << sql;
      ASSERT_TRUE(parallel.value().MultisetEquals(serial.value()))
          << "mismatch at " << threads << " threads\nsql: " << sql
          << "\nserial:\n" << SortedRowsToString(serial.value())
          << "parallel:\n" << SortedRowsToString(parallel.value());
    }
  }

  static constexpr size_t kFactRows = 5000;
  core::Database db_;
};

// The headline differential: the 1200-query generator sweep, each query
// executed through ParallelExecutePlan at 1, 2 and 4 threads and compared
// against the row-at-a-time reference evaluator.
TEST_F(ParallelExecTest, GeneratedQueriesAgreeAcrossThreadCounts) {
  int executed = 0;
  for (uint32_t seed = 1; seed <= 30; ++seed) {
    QueryGenerator gen(seed);
    for (int i = 0; i < 40; ++i) {
      std::string sql = gen.NextQuery();
      auto stmt = sql::Parser::ParseSelect(sql);
      ASSERT_TRUE(stmt.ok()) << stmt.status().ToString() << "\nsql: " << sql;
      algebra::Binder binder(db_.catalog(), {});
      auto plan = binder.BindSelect(*stmt.value());
      if (!plan.ok()) {
        // The generator can produce ambiguous references; skip those.
        ASSERT_EQ(plan.status().code(), StatusCode::kBindError)
            << plan.status().ToString() << "\nsql: " << sql;
        continue;
      }
      auto reference = algebra::ReferenceEval(plan.value(), db_.state());
      ASSERT_TRUE(reference.ok())
          << reference.status().ToString() << "\nsql: " << sql;
      for (size_t threads : {1u, 2u, 4u}) {
        auto parallel =
            exec::ParallelExecutePlan(plan.value(), db_.state(), threads);
        ASSERT_TRUE(parallel.ok())
            << parallel.status().ToString() << "\nsql: " << sql;
        ASSERT_TRUE(parallel.value().MultisetEquals(reference.value()))
            << "engine mismatch at " << threads << " threads\nsql: " << sql
            << "\nreference:\n" << SortedRowsToString(reference.value())
            << "parallel:\n" << SortedRowsToString(parallel.value());
      }
      // Optimized plans carry equi-keys on join nodes, so this leg is what
      // actually routes generated joins through the shared-build parallel
      // hash join (raw bound plans fall back to serial for joins).
      algebra::PlanPtr best = Optimized(plan.value());
      auto opt_parallel = exec::ParallelExecutePlan(best, db_.state(), 4);
      ASSERT_TRUE(opt_parallel.ok())
          << opt_parallel.status().ToString() << "\nsql: " << sql;
      ASSERT_TRUE(opt_parallel.value().MultisetEquals(reference.value()))
          << "optimized-plan mismatch\nsql: " << sql
          << "\nreference:\n" << SortedRowsToString(reference.value())
          << "parallel:\n" << SortedRowsToString(opt_parallel.value());
      ++executed;
    }
  }
  EXPECT_GE(executed, 1000) << "generator rejected too many queries";
}

// Multi-morsel shapes over the 5000-row fact table: every parallelized
// operator (morsel scan, filter, project, shared-build join, partial
// aggregation, distinct, sort) against the serial engine.
TEST_F(ParallelExecTest, LargeTableShapesMatchSerial) {
  const char* kQueries[] = {
      "select k, v from fact where v >= 50.0",
      "select k, v, tag from fact where tag = 't1' and v < 25.0",
      "select f.k, d.label, f.v from fact f, dim d "
      "where f.k = d.k and f.v < 10.0",
      "select k, count(*), min(v), max(v) from fact group by k",
      "select count(*) from fact",
      "select count(v) from fact",
      "select sum(v), avg(v) from fact",
      "select tag, sum(v) from fact group by tag",
      "select distinct tag from fact",
      "select distinct k from fact where v is null",
      "select k, v from fact where v > 95.0 order by 1",
      "select count(distinct k) from fact",
  };
  for (const char* sql : kQueries) {
    ExpectParallelMatchesSerial(sql, /*expect_parallel=*/true);
  }
}

// A morsel claimed by one thread must never be seen by another: total
// coverage comes out exactly once. COUNT(*) at several thread counts is a
// direct witness (any double- or under-scan shifts the count).
TEST_F(ParallelExecTest, MorselScanCoversEveryRowExactlyOnce) {
  algebra::PlanPtr plan = MustBind("select count(*) from fact");
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    auto r = exec::ParallelExecutePlan(plan, db_.state(), threads);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.value().num_rows(), 1u);
    EXPECT_EQ(r.value().rows()[0][0],
              Value::Int(static_cast<int64_t>(kFactRows)))
        << "at " << threads << " threads";
  }
}

// Shapes the parallel executor must hand to the serial engine untouched.
TEST_F(ParallelExecTest, SerialFallbackShapes) {
  // VALUES source: nothing to fan out.
  ExpectParallelMatchesSerial("select 1", /*expect_parallel=*/false);
  // LIMIT root: inherently serial early-out.
  algebra::PlanPtr limited = MustBind("select k from fact limit 10");
  EXPECT_FALSE(exec::IsParallelizable(limited, db_.state()));
  auto serial = exec::ExecutePlan(limited, db_.state());
  auto parallel = exec::ParallelExecutePlan(limited, db_.state(), 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(parallel.value().MultisetEquals(serial.value()));
}

// Errors must surface identically: a predicate that divides by zero on
// some row fails the query regardless of which thread hits the row.
TEST_F(ParallelExecTest, RuntimeErrorsSurfaceFromWorkerThreads) {
  algebra::PlanPtr plan = MustBind("select k from fact where v / 0 > 1.0");
  auto serial = exec::ExecutePlan(plan, db_.state());
  ASSERT_FALSE(serial.ok());
  for (size_t threads : {2u, 4u}) {
    auto parallel = exec::ParallelExecutePlan(plan, db_.state(), threads);
    ASSERT_FALSE(parallel.ok()) << "at " << threads << " threads";
    EXPECT_EQ(parallel.status().code(), serial.status().code());
  }
}

// End-to-end through the Database facade: the parallelism option and the
// per-session override must not change any result.
TEST_F(ParallelExecTest, DatabaseParallelismKnobPreservesResults) {
  const std::string sql = "select k, count(*), sum(v) from fact group by k";
  auto serial = db_.ExecuteAsAdmin(sql);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  db_.options().parallelism = 4;
  auto parallel = db_.ExecuteAsAdmin(sql);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_TRUE(
      parallel.value().relation.MultisetEquals(serial.value().relation));

  // Session override takes precedence over the database default.
  db_.options().parallelism = 1;
  core::SessionContext ctx("admin");
  ctx.set_mode(core::EnforcementMode::kNone);
  ctx.set_exec_parallelism(4);
  auto overridden = db_.Execute(sql, ctx);
  ASSERT_TRUE(overridden.ok()) << overridden.status().ToString();
  EXPECT_TRUE(
      overridden.value().relation.MultisetEquals(serial.value().relation));
}

}  // namespace
}  // namespace fgac
