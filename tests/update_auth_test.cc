// Update authorization (paper Section 4.4): INSERT/UPDATE/DELETE checked
// tuple-by-tuple against parameterized predicates.

#include "core/update_auth.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::SetupUniversity;

class UpdateAuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    // The paper's two Section 4.4 rules, granted to everyone:
    //   1. a student may register herself,
    //   2. a student may update her own name (standing in for `address`).
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      authorize insert on registered
        where registered.student-id = $user-id;
      authorize update on students (name)
        where old(students.student-id) = $user-id;
      authorize delete on registered
        where registered.student-id = $user-id;
    )sql")
                    .ok());
  }

  SessionContext Student(const std::string& id) {
    SessionContext ctx(id);
    ctx.set_mode(EnforcementMode::kNonTruman);
    return ctx;
  }

  Database db_;
};

TEST_F(UpdateAuthTest, InsertOwnRegistrationAllowed) {
  auto r = db_.Execute("insert into registered values ('11', 'ee150')",
                       Student("11"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().affected_rows, 1);
}

TEST_F(UpdateAuthTest, InsertOthersRegistrationDenied) {
  auto r = db_.Execute("insert into registered values ('12', 'ee150')",
                       Student("11"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);
}

TEST_F(UpdateAuthTest, MultiRowInsertAllOrNothing) {
  auto r = db_.Execute(
      "insert into registered values ('11', 'ee150'), ('12', 'ee150')",
      Student("11"));
  ASSERT_FALSE(r.ok());
  // Nothing was applied.
  auto count = fgac::testing::MustQueryAdmin(
      &db_, "select count(*) from registered where course-id = 'ee150'");
  EXPECT_EQ(count.rows()[0][0], Value::Int(1));  // only bob's original row
}

TEST_F(UpdateAuthTest, UpdateOwnNameAllowed) {
  auto r = db_.Execute("update students set name = 'alicia' "
                       "where student-id = '11'",
                       Student("11"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().affected_rows, 1);
  auto rel = fgac::testing::MustQueryAdmin(
      &db_, "select name from students where student-id = '11'");
  EXPECT_EQ(rel.rows()[0][0], Value::String("alicia"));
}

TEST_F(UpdateAuthTest, UpdateOtherStudentsNameDenied) {
  auto r = db_.Execute("update students set name = 'hacked' "
                       "where student-id = '12'",
                       Student("11"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);
}

TEST_F(UpdateAuthTest, UpdateUncoveredColumnDenied) {
  // The rule covers only (name); changing `type` is not authorized.
  auto r = db_.Execute("update students set type = 'fulltime' "
                       "where student-id = '11'",
                       Student("11"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);
}

TEST_F(UpdateAuthTest, WideUpdateTouchingOthersDenied) {
  // WHERE-less update touches other students' tuples: denied per-tuple.
  auto r = db_.Execute("update students set name = 'x'", Student("11"));
  ASSERT_FALSE(r.ok());
}

TEST_F(UpdateAuthTest, DeleteOwnRegistrationAllowed) {
  auto r = db_.Execute("delete from registered where student-id = '11' "
                       "and course-id = 'cs202'",
                       Student("11"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().affected_rows, 1);
}

TEST_F(UpdateAuthTest, DeleteOthersRegistrationDenied) {
  auto r = db_.Execute("delete from registered where student-id = '12'",
                       Student("11"));
  ASSERT_FALSE(r.ok());
}

TEST_F(UpdateAuthTest, NoApplicableRuleDenies) {
  auto r = db_.Execute("insert into courses values ('cs303', 'os')",
                       Student("11"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);
}

TEST_F(UpdateAuthTest, AdminModeBypassesRules) {
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  EXPECT_TRUE(
      db_.Execute("insert into courses values ('cs303', 'os')", admin).ok());
}

TEST_F(UpdateAuthTest, GranteeScopedRule) {
  // A rule granted to a specific principal applies only to them.
  ASSERT_TRUE(db_.ExecuteScript("authorize insert on courses to registrar")
                  .ok());
  EXPECT_TRUE(db_.Execute("insert into courses values ('cs404', 'ai')",
                          Student("registrar"))
                  .ok());
  EXPECT_FALSE(db_.Execute("insert into courses values ('cs505', 'ml')",
                           Student("11"))
                   .ok());
}

TEST_F(UpdateAuthTest, DirectAuthorizerApi) {
  SessionContext ctx = Student("11");
  core::UpdateAuthorizer authorizer(db_.catalog(), ctx);
  Row own = {Value::String("11"), Value::String("ee150")};
  Row other = {Value::String("12"), Value::String("ee150")};
  EXPECT_TRUE(authorizer.CheckInsert("registered", own).value());
  EXPECT_FALSE(authorizer.CheckInsert("registered", other).value());
  EXPECT_TRUE(authorizer.CheckDelete("registered", own).value());
  Row old_s = {Value::String("11"), Value::String("alice"),
               Value::String("fulltime")};
  Row new_s = {Value::String("11"), Value::String("ali"),
               Value::String("fulltime")};
  EXPECT_TRUE(
      authorizer.CheckUpdate("students", old_s, new_s, {"name"}).value());
  EXPECT_FALSE(
      authorizer.CheckUpdate("students", old_s, new_s, {"name", "type"})
          .value());
}

// Constraint enforcement on the DML path (admin mode).
class DmlConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override { SetupUniversity(&db_); }
  Database db_;
};

TEST_F(DmlConstraintTest, PrimaryKeyDuplicateRejected) {
  auto r = db_.ExecuteAsAdmin("insert into students values "
                              "('11', 'clone', 'fulltime')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(DmlConstraintTest, NotNullRejected) {
  auto r = db_.ExecuteAsAdmin("insert into students values "
                              "('15', null, 'fulltime')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(DmlConstraintTest, ForeignKeyRejected) {
  auto r = db_.ExecuteAsAdmin("insert into registered values "
                              "('99', 'cs101')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(DmlConstraintTest, TypeMismatchRejected) {
  auto r = db_.ExecuteAsAdmin("insert into grades values ('11', 'ee150', 'A')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(DmlConstraintTest, IntCoercesIntoDoubleColumn) {
  EXPECT_TRUE(
      db_.ExecuteAsAdmin("insert into grades values ('12', 'ee150', 3)").ok());
  auto rel = fgac::testing::MustQueryAdmin(
      &db_, "select grade from grades where course-id = 'ee150'");
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_TRUE(rel.rows()[0][0].is_double());
}

TEST_F(DmlConstraintTest, UpdateEvaluatesAgainstOldRow) {
  ASSERT_TRUE(db_.ExecuteAsAdmin("update grades set grade = grade + 0.5 "
                                 "where student-id = '13'")
                  .ok());
  auto rel = fgac::testing::MustQueryAdmin(
      &db_, "select grade from grades where student-id = '13'");
  EXPECT_EQ(rel.rows()[0][0], Value::Double(2.5));
}

TEST_F(DmlConstraintTest, DeleteWithPredicate) {
  auto r = db_.ExecuteAsAdmin("delete from grades where grade < 3.0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().affected_rows, 1);
  EXPECT_EQ(fgac::testing::MustQueryAdmin(&db_, "select count(*) from grades")
                .rows()[0][0],
            Value::Int(3));
}

TEST_F(DmlConstraintTest, VerifyConstraintsDetectsViolation) {
  EXPECT_TRUE(db_.VerifyConstraints().ok());
  // Declared dependency that the data violates (dave isn't registered).
  ASSERT_TRUE(db_.ExecuteAsAdmin("create inclusion dependency esr "
                                 "on students (student-id) "
                                 "references registered (student-id)")
                  .ok());
  Status s = db_.VerifyConstraints();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
}

}  // namespace
}  // namespace fgac
