// End-to-end tests of the query guardrail subsystem: deadlines,
// cooperative cancellation, row/memory budgets, the Truman degradation
// policy for blown validity budgets, the bounded validity cache, and
// adversarial inputs that previously had unbounded cost. The invariant
// throughout: the engine never hangs and never crashes — every outcome is
// a clean Status (kTimeout / kCancelled / kResourceExhausted) or an
// answer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/query_guard.h"
#include "core/database.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using common::DegradePolicy;
using common::QueryGuard;
using common::QueryLimits;
using core::Database;
using core::DatabaseOptions;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

// ---------------------------------------------------------------------------
// QueryGuard unit behaviour
// ---------------------------------------------------------------------------

TEST(QueryGuardTest, UnlimitedGuardAlwaysPasses) {
  QueryGuard guard;
  EXPECT_TRUE(guard.Check().ok());
  EXPECT_TRUE(guard.ChargeRows(1u << 20).ok());
  EXPECT_TRUE(guard.ChargeBytes(1ull << 40).ok());
}

TEST(QueryGuardTest, ExpiredDeadlineIsSticky) {
  QueryLimits limits;
  limits.timeout = std::chrono::microseconds(1);
  QueryGuard guard(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  Status first = guard.Check();
  EXPECT_EQ(first.code(), StatusCode::kTimeout);
  // Sticky: stays failed on every later check.
  EXPECT_EQ(guard.Check().code(), StatusCode::kTimeout);
  EXPECT_EQ(guard.ChargeRows(1).code(), StatusCode::kTimeout);
}

TEST(QueryGuardTest, RowAndByteBudgets) {
  QueryLimits limits;
  limits.max_rows = 10;
  limits.max_memory_bytes = 100;
  QueryGuard guard(limits);
  EXPECT_TRUE(guard.ChargeRows(10).ok());
  EXPECT_EQ(guard.ChargeRows(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(guard.rows_charged(), 11u);
  QueryGuard bytes_guard(limits);
  EXPECT_TRUE(bytes_guard.ChargeBytes(100).ok());
  EXPECT_EQ(bytes_guard.ChargeBytes(1).code(),
            StatusCode::kResourceExhausted);
}

TEST(QueryGuardTest, CancelObservedFromAnyHandle) {
  QueryGuard guard;
  EXPECT_FALSE(guard.cancelled());
  guard.Cancel();
  EXPECT_TRUE(guard.cancelled());
  EXPECT_EQ(guard.Check().code(), StatusCode::kCancelled);
}

TEST(QueryGuardTest, ExternalTokenCancels) {
  auto token = std::make_shared<std::atomic<bool>>(false);
  QueryGuard guard;
  guard.AttachExternalCancel(token);
  EXPECT_TRUE(guard.Check().ok());
  token->store(true);
  EXPECT_EQ(guard.Check().code(), StatusCode::kCancelled);
}

TEST(QueryGuardTest, ChildInheritsCancellationButNotBudgets) {
  QueryLimits parent_limits;
  parent_limits.max_rows = 5;
  QueryGuard parent(parent_limits);
  QueryLimits child_limits;
  child_limits.max_rows = 100;
  QueryGuard child(child_limits, &parent);
  // Separate budgets: the child can charge past the parent's row cap.
  EXPECT_TRUE(child.ChargeRows(50).ok());
  EXPECT_EQ(parent.rows_charged(), 0u);
  // Inherited cancellation: cancelling the parent trips the child.
  parent.Cancel();
  EXPECT_EQ(child.Check().code(), StatusCode::kCancelled);
}

TEST(QueryGuardTest, ChildNeverOutlivesParentDeadline) {
  QueryLimits parent_limits;
  parent_limits.timeout = std::chrono::microseconds(1);
  QueryGuard parent(parent_limits);
  QueryGuard child(QueryLimits{}, &parent);  // child asks for no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(child.Check().code(), StatusCode::kTimeout);
}

// ---------------------------------------------------------------------------
// Execution guardrails, serial and parallel
// ---------------------------------------------------------------------------

class GuardrailsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ASSERT_TRUE(db_.ExecuteScript("grant select on mygrades to 11;"
                                  "grant select on costudentgrades to 11;"
                                  "grant select on myregistrations to 11")
                    .ok());
    // Truman policy for the degradation path: grades filters to own rows.
    ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "mygrades").ok());
  }

  // A session that runs plans directly (no validity test) so execution
  // guardrails are exercised in isolation.
  static SessionContext Unchecked(QueryLimits limits) {
    SessionContext ctx("11");
    ctx.set_mode(EnforcementMode::kNone);
    ctx.set_query_limits(limits);
    return ctx;
  }

  static SessionContext NonTruman(const std::string& user) {
    SessionContext ctx(user);
    ctx.set_mode(EnforcementMode::kNonTruman);
    return ctx;
  }

  // Grows `students` to `n` synthetic rows so parallel scans have morsels
  // to fight over (direct storage writes, like the benches).
  void GrowStudents(size_t n) {
    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rows.push_back({Value::String("s" + std::to_string(i + 100)),
                      Value::String("name"), Value::String("fulltime")});
    }
    db_.state().GetMutableTable("students")->InsertRows(std::move(rows));
  }

  Database db_;
};

TEST_F(GuardrailsTest, ExpiredDeadlineFailsSerialQuery) {
  QueryLimits limits;
  limits.timeout = std::chrono::microseconds(1);
  auto r = db_.Execute("select * from students", Unchecked(limits));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(GuardrailsTest, ExpiredDeadlineFailsParallelQuery) {
  GrowStudents(20000);
  QueryLimits limits;
  limits.timeout = std::chrono::microseconds(1);
  SessionContext ctx = Unchecked(limits);
  ctx.set_exec_parallelism(4);
  auto r = db_.Execute("select * from students", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(GuardrailsTest, OneRowBudgetFailsScan) {
  QueryLimits limits;
  limits.max_rows = 1;
  auto r = db_.Execute("select * from students", Unchecked(limits));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GuardrailsTest, RowBudgetBoundsJoinFanOut) {
  // The join's output rows count against the budget too — a small scan
  // with a multiplicative join cannot dodge the work bound.
  GrowStudents(4000);
  QueryLimits limits;
  // Scans charge ~4k rows; the 4004 x 5 cross product charges ~20k.
  limits.max_rows = 10000;
  auto r = db_.Execute(
      "select s.name from students s, registered r", Unchecked(limits));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GuardrailsTest, MemoryBudgetFailsHashJoinBuild) {
  QueryLimits limits;
  limits.max_memory_bytes = 1;
  auto r = db_.Execute(
      "select g.grade from grades g, students s "
      "where g.student-id = s.student-id",
      Unchecked(limits));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GuardrailsTest, MemoryBudgetFailsSortAndDistinct) {
  QueryLimits limits;
  limits.max_memory_bytes = 1;
  auto sorted =
      db_.Execute("select name from students order by name", Unchecked(limits));
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.status().code(), StatusCode::kResourceExhausted);
  auto distinct =
      db_.Execute("select distinct type from students", Unchecked(limits));
  ASSERT_FALSE(distinct.ok());
  EXPECT_EQ(distinct.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GuardrailsTest, PreCancelledTokenFailsImmediately) {
  auto token = std::make_shared<std::atomic<bool>>(true);
  SessionContext ctx = Unchecked(QueryLimits{});
  ctx.set_cancel_token(token);
  auto r = db_.Execute("select * from students", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardrailsTest, MidExecutionCancelOfParallelPlan) {
  // A 4-thread cross join large enough to outlast the canceller by orders
  // of magnitude; the flip lands mid-execution and every morsel worker
  // must observe it, drain and join (the test would hang otherwise).
  GrowStudents(8000);
  auto token = std::make_shared<std::atomic<bool>>(false);
  SessionContext ctx = Unchecked(QueryLimits{});
  ctx.set_cancel_token(token);
  ctx.set_exec_parallelism(4);
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token->store(true);
  });
  auto r = db_.Execute("select a.name from students a, students b", ctx);
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // The session (and its token) are reusable for the next statement.
  token->store(false);
  auto again = db_.Execute("select name from students where student-id = '11'",
                           ctx);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

// ---------------------------------------------------------------------------
// Validity-check budgets and the Truman degradation policy
// ---------------------------------------------------------------------------

TEST_F(GuardrailsTest, ValidityTimeoutRejectsByDefault) {
  db_.options().validity.check_timeout = std::chrono::microseconds(1);
  auto r = db_.Execute("select grade from grades where student-id = '11'",
                       NonTruman("11"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(GuardrailsTest, ValidityTimeoutDegradesToTrumanWhenAsked) {
  db_.options().validity.check_timeout = std::chrono::microseconds(1);
  QueryLimits limits;
  limits.degrade_policy = DegradePolicy::kTruman;
  SessionContext ctx = NonTruman("11");
  ctx.set_query_limits(limits);
  auto r = db_.Execute("select grade from grades where student-id = '11'", ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded_to_truman);
  EXPECT_NE(r.value().validity.reason.find("degraded"), std::string::npos);
  // The Truman answer equals the view slice — here the user's own grades.
  EXPECT_EQ(r.value().relation.num_rows(), 2u);
}

TEST_F(GuardrailsTest, DegradedAnswerIsFilteredNotLiteral) {
  // The whole reason the paper prefers the Non-Truman model: under Truman
  // semantics this query silently reports the average of the *visible*
  // grades. The degraded answer must carry the filtered flag so the caller
  // knows it is not the literal answer.
  db_.options().validity.check_timeout = std::chrono::microseconds(1);
  QueryLimits limits;
  limits.degrade_policy = DegradePolicy::kTruman;
  SessionContext ctx = NonTruman("11");
  ctx.set_query_limits(limits);
  auto r = db_.Execute("select avg(grade) from grades", ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded_to_truman);
  // avg over user 11's own grades (4.0, 3.5), not the table's four rows.
  EXPECT_EQ(r.value().relation.rows()[0][0], Value::Double(3.75));
}

TEST_F(GuardrailsTest, ProbeBudgetExhaustionRejects) {
  // Example 4.4's conditional query needs a first batch of >= 2 C3
  // database probes before any verdict exists; a budget of 1 therefore
  // trips with no verdict in hand and must reject. (A budget tripping
  // AFTER the root is proven valid keeps the verdict — tested below by
  // LateProbeTripKeepsEarlierVerdict.)
  SessionContext ctx = NonTruman("11");
  const std::string q = "select * from grades where course-id = 'cs101'";
  auto unlimited = db_.CheckQueryValidity(q, ctx);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  ASSERT_TRUE(unlimited.value().valid);
  ASSERT_GE(unlimited.value().c3_probes, 2u);

  db_.options().validity.max_total_probes = 1;
  db_.options().enable_validity_cache = false;
  auto r = db_.Execute(q, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GuardrailsTest, LateProbeTripKeepsEarlierVerdict) {
  // The scenario's verdict lands after 2 of its 4 probes; tripping the
  // budget on the later (exploratory) batches must NOT revoke an already
  // established acceptance.
  SessionContext ctx = NonTruman("11");
  const std::string q = "select * from grades where course-id = 'cs101'";
  db_.options().validity.max_total_probes = 2;
  db_.options().enable_validity_cache = false;
  auto r = db_.Execute(q, ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().degraded_to_truman);
}

TEST_F(GuardrailsTest, ProbeBudgetExhaustionDegradesToTruman) {
  SessionContext ctx = NonTruman("11");
  const std::string q = "select * from grades where course-id = 'cs101'";
  db_.options().validity.max_total_probes = 1;
  db_.options().enable_validity_cache = false;
  QueryLimits limits;
  limits.degrade_policy = DegradePolicy::kTruman;
  ctx.set_query_limits(limits);
  auto r = db_.Execute(q, ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded_to_truman);
  // Truman-filtered grades for cs101: only the user's own row.
  EXPECT_EQ(r.value().relation.num_rows(), 1u);
}

TEST_F(GuardrailsTest, CancellationNeverDegrades) {
  // kCancelled is a user request to stop, not a budget problem: it must
  // propagate even under DegradePolicy::kTruman.
  db_.options().enable_validity_cache = false;
  auto token = std::make_shared<std::atomic<bool>>(true);
  QueryLimits limits;
  limits.degrade_policy = DegradePolicy::kTruman;
  SessionContext ctx = NonTruman("11");
  ctx.set_query_limits(limits);
  ctx.set_cancel_token(token);
  auto r = db_.Execute("select grade from grades where student-id = '11'", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(GuardrailsTest, DegradedVerdictIsNeverCached) {
  db_.options().validity.check_timeout = std::chrono::microseconds(1);
  QueryLimits limits;
  limits.degrade_policy = DegradePolicy::kTruman;
  SessionContext ctx = NonTruman("11");
  ctx.set_query_limits(limits);
  const std::string q = "select grade from grades where student-id = '11'";
  ASSERT_TRUE(db_.Execute(q, ctx).ok());
  // Lifting the budget must yield a real verdict, not a cached degrade.
  db_.options().validity.check_timeout = std::chrono::microseconds(0);
  ctx.clear_query_limits();
  auto r = db_.Execute(q, ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().degraded_to_truman);
  EXPECT_TRUE(r.value().validity.valid);
}

// ---------------------------------------------------------------------------
// Bounded validity cache
// ---------------------------------------------------------------------------

TEST_F(GuardrailsTest, ValidityCacheEvictsAtCapacity) {
  DatabaseOptions options;
  options.validity_cache_capacity = 4;
  Database db(std::move(options));
  SetupUniversity(&db);
  CreateUniversityViews(&db);
  ASSERT_TRUE(db.ExecuteScript("grant select on mygrades to 11").ok());
  SessionContext ctx = NonTruman("11");
  // Distinct constants fingerprint differently: adversarial unique-query
  // traffic cycles the cache instead of growing it without bound.
  for (int i = 0; i < 20; ++i) {
    auto r = db.Execute("select grade from grades where student-id = '11' "
                            "and grade > " +
                            std::to_string(i),
                        ctx);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_LE(db.validity_cache().size(), 4u);
  EXPECT_EQ(db.validity_cache().max_entries(), 4u);
  EXPECT_GE(db.validity_cache().evictions(), 16u);
}

TEST(ValidityCacheLruTest, RecentlyUsedEntrySurvivesEviction) {
  core::ValidityCache cache(2);
  core::ValidityReport report;
  report.valid = true;
  report.unconditional = true;
  cache.Insert("u", 1, 1, 1, 1, report);
  cache.Insert("u", 2, 1, 1, 1, report);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup("u", 1, 1, 1, 1, nullptr));
  cache.Insert("u", 3, 1, 1, 1, report);
  EXPECT_TRUE(cache.Lookup("u", 1, 1, 1, 1, nullptr));
  EXPECT_FALSE(cache.Lookup("u", 2, 1, 1, 1, nullptr));
  EXPECT_TRUE(cache.Lookup("u", 3, 1, 1, 1, nullptr));
  EXPECT_EQ(cache.evictions(), 1u);
}

// ---------------------------------------------------------------------------
// Adversarial inputs
// ---------------------------------------------------------------------------

TEST_F(GuardrailsTest, DeeplyNestedExpressionIsHandled) {
  // A 400-deep parenthesized arithmetic tower: parser, binder, normalizer
  // and evaluator must all either answer or fail cleanly.
  std::string expr = "1";
  for (int i = 0; i < 400; ++i) expr = "(" + expr + " + 1)";
  auto r = db_.ExecuteAsAdmin("select " + expr);
  if (r.ok()) {
    EXPECT_EQ(r.value().relation.rows()[0][0], Value::Int(401));
  } else {
    EXPECT_FALSE(r.status().message().empty());
  }
}

TEST_F(GuardrailsTest, HugeInListIsHandled) {
  std::string in_list = "'x0'";
  for (int i = 1; i < 5000; ++i) in_list += ",'x" + std::to_string(i) + "'";
  auto r = db_.ExecuteAsAdmin(
      "select name from students where student-id in (" + in_list + ")");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().relation.num_rows(), 0u);
}

TEST_F(GuardrailsTest, GuardrailSweepNeverCrashes) {
  // Every (query, limit) combination must produce an answer or one of the
  // three guard codes — nothing else, and never a hang.
  GrowStudents(3000);
  const std::string queries[] = {
      "select * from students",
      "select a.name from students a, students b",
      "select type, count(*) from students group by type",
      "select distinct name from students order by name",
  };
  QueryLimits sweeps[4];
  sweeps[0].timeout = std::chrono::microseconds(1);
  sweeps[1].max_rows = 1;
  sweeps[2].max_memory_bytes = 16;
  sweeps[3].timeout = std::chrono::milliseconds(50);  // may or may not trip
  for (const std::string& q : queries) {
    for (const QueryLimits& limits : sweeps) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        SessionContext ctx = Unchecked(limits);
        ctx.set_exec_parallelism(threads);
        auto r = db_.Execute(q, ctx);
        if (!r.ok()) {
          StatusCode code = r.status().code();
          EXPECT_TRUE(code == StatusCode::kTimeout ||
                      code == StatusCode::kCancelled ||
                      code == StatusCode::kResourceExhausted)
              << q << " -> " << r.status().ToString();
        }
      }
    }
  }
}

}  // namespace
}  // namespace fgac
