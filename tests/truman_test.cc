// The Truman model (Section 3) and its Section 3.3 pitfalls, contrasted
// with the Non-Truman model on the same data.

#include "core/truman.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::MustQuery;
using fgac::testing::SetupUniversity;

class TrumanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    // Truman policy: everyone sees only their own grades; the other tables
    // are unrestricted.
    ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "mygrades").ok());
  }

  SessionContext Truman(const std::string& user) {
    SessionContext ctx(user);
    ctx.set_mode(EnforcementMode::kTruman);
    return ctx;
  }

  Database db_;
};

TEST_F(TrumanTest, RestrictsRowsTransparently) {
  auto rel = MustQuery(&db_, "select * from grades", Truman("11"));
  EXPECT_EQ(rel.num_rows(), 2u);  // only student 11's grades
}

TEST_F(TrumanTest, DifferentUsersSeeDifferentSlices) {
  EXPECT_EQ(MustQuery(&db_, "select * from grades", Truman("12")).num_rows(),
            1u);
  EXPECT_EQ(MustQuery(&db_, "select * from grades", Truman("13")).num_rows(),
            1u);
  EXPECT_EQ(MustQuery(&db_, "select * from grades", Truman("99")).num_rows(),
            0u);
}

TEST_F(TrumanTest, Section33MisleadingAverage) {
  // The paper's flagship pitfall: under Truman, "select avg(grade) from
  // grades" silently returns the USER'S average (3.75 for student 11)
  // rather than the true average (3.125) — a misleading answer, "giving
  // her an impression that her average grade is the same as the overall
  // average grade".
  auto rel = MustQuery(&db_, "select avg(grade) from grades", Truman("11"));
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::Double(3.75));

  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  auto truth = MustQuery(&db_, "select avg(grade) from grades", admin);
  EXPECT_EQ(truth.rows()[0][0], Value::Double(3.125));
}

TEST_F(TrumanTest, NonTrumanRejectsInsteadOfMisleading) {
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  auto r = db_.Execute("select avg(grade) from grades", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);
}

TEST_F(TrumanTest, Section33SecondPitfallMissedView) {
  // "if the user ... is unaware of the view AvgGrades, she will write the
  // query on the base relation [and] get misleading results in spite of
  // having the correct authorizations": under Truman the per-course average
  // for cs101 collapses to the user's own grade.
  auto rel = MustQuery(
      &db_, "select avg(grade) from grades where course-id = 'cs101'",
      Truman("11"));
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::Double(4.0));  // own grade only

  // Non-Truman with AvgGrades granted returns the true answer.
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on avggrades to 11").ok());
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  auto nt = MustQuery(
      &db_, "select avg(grade) from grades where course-id = 'cs101'", ctx);
  ASSERT_EQ(nt.num_rows(), 1u);
  EXPECT_EQ(nt.rows()[0][0], Value::Double(3.5));
}

TEST_F(TrumanTest, JoinViewPolicyIntroducesRedundantJoin) {
  // Policy via a joining view (costudentgrades): the Truman-rewritten query
  // drags the registered table into every grades scan — Section 3.3's
  // redundant-join overhead, reproduced structurally here and measured in
  // bench_truman_overhead.
  ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "costudentgrades").ok());
  SessionContext ctx = Truman("11");
  auto stmt = sql::Parser::ParseSelect(
      "select grade from grades, registered "
      "where grades.student-id = registered.student-id");
  ASSERT_TRUE(stmt.ok());
  auto plan = db_.BindQuery(*stmt.value(), ctx);
  ASSERT_TRUE(plan.ok());
  auto rewritten = core::TrumanRewrite(plan.value(), db_.catalog(), ctx);
  ASSERT_TRUE(rewritten.ok());
  // Count Get(registered) occurrences: 1 in the original, 2 after rewrite.
  std::function<int(const algebra::PlanPtr&)> count_reg =
      [&](const algebra::PlanPtr& p) -> int {
    int n = (p->kind == algebra::PlanKind::kGet && p->table == "registered")
                ? 1
                : 0;
    for (const auto& c : p->children) n += count_reg(c);
    return n;
  };
  EXPECT_EQ(count_reg(plan.value()), 1);
  EXPECT_EQ(count_reg(rewritten.value()), 2);
}

TEST_F(TrumanTest, TablesWithoutPolicyAreUnrestricted) {
  auto rel = MustQuery(&db_, "select * from students", Truman("11"));
  EXPECT_EQ(rel.num_rows(), 4u);
}

TEST_F(TrumanTest, RewriteIsIdempotentOnPolicyFreePlans) {
  SessionContext ctx = Truman("11");
  auto stmt = sql::Parser::ParseSelect("select * from students");
  ASSERT_TRUE(stmt.ok());
  auto plan = db_.BindQuery(*stmt.value(), ctx);
  ASSERT_TRUE(plan.ok());
  auto rewritten = core::TrumanRewrite(plan.value(), db_.catalog(), ctx);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value(), plan.value());  // same node, untouched
}

TEST_F(TrumanTest, AccessPatternViewRejectedAsPolicy) {
  ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "singlegrade").ok());
  SessionContext ctx = Truman("11");
  auto r = db_.Execute("select * from grades", ctx);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace fgac
