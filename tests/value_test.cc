#include "common/value.h"

#include <gtest/gtest.h>

namespace fgac {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  // NULL < BOOL < numeric < STRING.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::String(""));
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3), Value::Double(3.5));
  EXPECT_LT(Value::Double(2.5), Value::Int(3));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
}

TEST(ValueTest, ToStringRendersSqlLiterals) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::String("o'brien").ToString(), "'o''brien'");
}

TEST(ValueTest, ThreeValuedComparisons) {
  EXPECT_EQ(SqlEq(Value::Null(), Value::Int(1)), std::nullopt);
  EXPECT_EQ(SqlEq(Value::Int(1), Value::Int(1)), std::optional<bool>(true));
  EXPECT_EQ(SqlLt(Value::Int(1), Value::Null()), std::nullopt);
}

TEST(ValueTest, ThreeValuedLogic) {
  std::optional<bool> t = true, f = false, u = std::nullopt;
  EXPECT_EQ(SqlAnd(t, u), u);
  EXPECT_EQ(SqlAnd(f, u), f);
  EXPECT_EQ(SqlOr(t, u), t);
  EXPECT_EQ(SqlOr(f, u), u);
  EXPECT_EQ(SqlNot(u), u);
  EXPECT_EQ(SqlNot(t), f);
}

TEST(ValueTest, RowHashEquality) {
  Row a = {Value::Int(1), Value::String("x")};
  Row b = {Value::Double(1.0), Value::String("x")};
  Row c = {Value::Int(2), Value::String("x")};
  EXPECT_TRUE(RowEq()(a, b));
  EXPECT_EQ(RowHash()(a), RowHash()(b));
  EXPECT_FALSE(RowEq()(a, c));
}

}  // namespace
}  // namespace fgac
