// Property tests: on randomly generated queries, the physical executor,
// the reference evaluator, and every optimizer-chosen plan must agree.

#include <gtest/gtest.h>

#include "algebra/binder.h"
#include "algebra/reference_eval.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using fgac::testing::QueryGenerator;
using fgac::testing::SetupUniversity;
using fgac::testing::SortedRowsToString;

class ExecPropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    // Extra rows so predicates hit interesting cases. (NULL-heavy data is
    // covered by the nullable-schema differential in exec_chunk_test.cc —
    // the university schema here is NOT NULL throughout.)
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      insert into students values ('15', 'eve', 'fulltime');
      insert into registered values ('15', 'cs101'), ('14', 'cs202');
      insert into grades values ('15', 'cs101', 1.0), ('14', 'cs202', 3.0);
    )sql")
                    .ok());
  }

  core::Database db_;
};

TEST_P(ExecPropertyTest, PhysicalMatchesReferenceAndOptimizedPlans) {
  QueryGenerator gen(GetParam());
  int executed = 0;
  for (int i = 0; i < 40; ++i) {
    std::string sql = gen.NextQuery();
    auto stmt = sql::Parser::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString() << "\nsql: " << sql;
    algebra::Binder binder(db_.catalog(), {});
    auto plan = binder.BindSelect(*stmt.value());
    if (!plan.ok()) {
      // The generator can produce ambiguous references; skip those.
      ASSERT_EQ(plan.status().code(), StatusCode::kBindError)
          << plan.status().ToString() << "\nsql: " << sql;
      continue;
    }
    auto reference = algebra::ReferenceEval(plan.value(), db_.state());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString()
                                << "\nsql: " << sql;

    auto physical = exec::ExecutePlan(plan.value(), db_.state());
    ASSERT_TRUE(physical.ok()) << physical.status().ToString()
                               << "\nsql: " << sql;
    EXPECT_TRUE(physical.value().MultisetEquals(reference.value()))
        << "executor mismatch\nsql: " << sql << "\nreference:\n"
        << SortedRowsToString(reference.value()) << "physical:\n"
        << SortedRowsToString(physical.value());

    optimizer::ExpandOptions options;
    options.max_exprs = 5000;
    auto best = optimizer::Optimize(plan.value(), options,
                                    [](const std::string&) { return 10.0; });
    ASSERT_TRUE(best.ok()) << best.status().ToString() << "\nsql: " << sql;
    auto optimized = exec::ExecutePlan(best.value().plan, db_.state());
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    EXPECT_TRUE(optimized.value().MultisetEquals(reference.value()))
        << "optimizer mismatch\nsql: " << sql << "\nchosen plan:\n"
        << algebra::PlanToString(best.value().plan) << "reference:\n"
        << SortedRowsToString(reference.value()) << "optimized:\n"
        << SortedRowsToString(optimized.value());
    ++executed;
  }
  EXPECT_GT(executed, 10);  // the generator must mostly produce bindable SQL
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecPropertyTest,
                         ::testing::Range(1u, 17u));

}  // namespace
}  // namespace fgac
