// End-to-end reproduction of every worked example in the paper, each as a
// test: Section 1 (MyGrades), Section 2 (Co-studentGrades, SingleGrade),
// Section 3.3 (Truman pitfalls), Examples 4.1-4.4 (validity and conditional
// validity), Examples 5.1-5.5 (inference rules U3/C3), Section 5.6.2's
// known-incomplete case, and Section 6 (access patterns, dependent joins).

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using core::ValidityReport;
using fgac::testing::CreateUniversityViews;
using fgac::testing::MustQuery;
using fgac::testing::MustQueryAdmin;
using fgac::testing::SetupUniversity;

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
  }

  SessionContext Student(const std::string& id) {
    SessionContext ctx(id);
    ctx.set_mode(EnforcementMode::kNonTruman);
    return ctx;
  }

  void Grant(const std::string& view, const std::string& user) {
    auto r = db_.ExecuteAsAdmin("grant select on " + view + " to " + user);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  ValidityReport MustCheck(const std::string& sql, const SessionContext& ctx) {
    auto r = db_.CheckQueryValidity(sql, ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nsql: " << sql;
    return r.ok() ? r.value() : ValidityReport{};
  }

  void ExpectValid(const std::string& sql, const SessionContext& ctx,
                   bool expect_unconditional) {
    ValidityReport report = MustCheck(sql, ctx);
    EXPECT_TRUE(report.valid) << "expected VALID: " << sql
                              << "\nreason: " << report.reason;
    if (report.valid) {
      EXPECT_EQ(report.unconditional, expect_unconditional)
          << sql << " (justification: " << report.justification << ")";
    }
  }

  void ExpectInvalid(const std::string& sql, const SessionContext& ctx) {
    ValidityReport report = MustCheck(sql, ctx);
    EXPECT_FALSE(report.valid) << "expected INVALID: " << sql
                               << "\njustification: " << report.justification;
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// Section 1 / Example 4.1 — MyGrades.
// ---------------------------------------------------------------------------

TEST_F(PaperExamplesTest, MyGradesOwnRowsValid) {
  Grant("mygrades", "11");
  SessionContext ctx = Student("11");
  ExpectValid("select * from grades where student-id = '11'", ctx, true);
  ExpectValid("select grade from grades where student-id = '11'", ctx, true);
}

TEST_F(PaperExamplesTest, MyGradesSelectionRefinementValid) {
  // Section 5.2's second example: selection + projection on the view.
  Grant("mygrades", "11");
  SessionContext ctx = Student("11");
  ExpectValid(
      "select course-id from grades where student-id = '11' and grade = 4.0",
      ctx, true);
}

TEST_F(PaperExamplesTest, Example41OwnAverageValid) {
  Grant("mygrades", "11");
  SessionContext ctx = Student("11");
  ExpectValid("select avg(grade) from grades where student-id = '11'", ctx,
              true);
}

TEST_F(PaperExamplesTest, OtherStudentsRowsInvalid) {
  Grant("mygrades", "11");
  SessionContext ctx = Student("11");
  ExpectInvalid("select * from grades where student-id = '12'", ctx);
  ExpectInvalid("select * from grades", ctx);
  // Section 3.3's pitfall query: the overall average is NOT derivable from
  // MyGrades; the Non-Truman model must reject it rather than mislead.
  ExpectInvalid("select avg(grade) from grades", ctx);
}

TEST_F(PaperExamplesTest, RejectedQueryReturnsNotAuthorized) {
  Grant("mygrades", "11");
  SessionContext ctx = Student("11");
  auto r = db_.Execute("select avg(grade) from grades", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);
}

TEST_F(PaperExamplesTest, AcceptedQueryRunsUnmodified) {
  Grant("mygrades", "11");
  SessionContext ctx = Student("11");
  auto rel = MustQuery(&db_, "select avg(grade) from grades "
                             "where student-id = '11'", ctx);
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::Double(3.75));  // (4.0 + 3.5) / 2
}

// ---------------------------------------------------------------------------
// Example 4.1 (second half) — AvgGrades aggregation view.
// ---------------------------------------------------------------------------

TEST_F(PaperExamplesTest, Example41AvgGradesView) {
  Grant("avggrades", "11");
  SessionContext ctx = Student("11");
  // q1 is rewritable using only AvgGrades => unconditionally valid.
  ExpectValid("select avg(grade) from grades where course-id = 'cs101'", ctx,
              true);
  ExpectValid("select course-id, avg(grade) from grades group by course-id",
              ctx, true);
  // Raw grades stay invisible.
  ExpectInvalid("select grade from grades where course-id = 'cs101'", ctx);
  ExpectInvalid("select min(grade) from grades where course-id = 'cs101'", ctx);
}

TEST_F(PaperExamplesTest, AvgGradesExecutesCorrectly) {
  Grant("avggrades", "11");
  SessionContext ctx = Student("11");
  auto rel = MustQuery(
      &db_, "select avg(grade) from grades where course-id = 'cs101'", ctx);
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::Double(3.5));
}

// ---------------------------------------------------------------------------
// Example 4.2 — LCAvgGrades (enrollment threshold): conditional validity.
// ---------------------------------------------------------------------------

TEST_F(PaperExamplesTest, Example42LargeCourseConditionallyValid) {
  Grant("lcavggrades", "11");
  SessionContext ctx = Student("11");
  // cs101 has 2 graded students (>= threshold 2): the view visibly contains
  // it, so the query is conditionally valid in this state.
  ValidityReport report =
      MustCheck("select avg(grade) from grades where course-id = 'cs101'", ctx);
  EXPECT_TRUE(report.valid) << report.reason;
  EXPECT_FALSE(report.unconditional);
}

TEST_F(PaperExamplesTest, Example42SmallCourseRejected) {
  Grant("lcavggrades", "11");
  SessionContext ctx = Student("11");
  // ee150 has no grades at all and cs303 doesn't exist; neither appears in
  // the view, so the state gives no license.
  ExpectInvalid("select avg(grade) from grades where course-id = 'ee150'", ctx);
}

TEST_F(PaperExamplesTest, Example42ValidityTracksState) {
  Grant("lcavggrades", "11");
  SessionContext ctx = Student("11");
  const std::string q =
      "select avg(grade) from grades where course-id = 'ee150'";
  ExpectInvalid(q, ctx);
  // Two ee150 grades arrive: the course crosses the threshold and the same
  // query becomes conditionally valid — validity depends on the state
  // (Definition 4.3).
  ASSERT_TRUE(db_.ExecuteScript("insert into grades values "
                                "('12', 'ee150', 3.0), ('11', 'ee150', 2.5)")
                  .ok());
  // (11, ee150) isn't a registration; keep referential sanity for FKs only.
  ValidityReport report = MustCheck(q, ctx);
  EXPECT_TRUE(report.valid) << report.reason;
  EXPECT_FALSE(report.unconditional);
}

// ---------------------------------------------------------------------------
// Examples 4.3 / 4.4 / 5.5 — Co-studentGrades: rule C3a/C3b.
// ---------------------------------------------------------------------------

TEST_F(PaperExamplesTest, Example43OnlyCoStudentGradesRejected) {
  // With no way to know her own registrations, accepting the query would
  // leak registration status (Example 4.3's trap); it must be rejected.
  Grant("costudentgrades", "11");
  SessionContext ctx = Student("11");
  ExpectInvalid("select * from grades where course-id = 'cs101'", ctx);
}

TEST_F(PaperExamplesTest, Example44RegisteredCourseConditionallyValid) {
  Grant("costudentgrades", "11");
  Grant("myregistrations", "11");
  SessionContext ctx = Student("11");
  // Student 11 is registered for cs101 and may know it: C3a/C3b fire.
  ValidityReport report =
      MustCheck("select * from grades where course-id = 'cs101'", ctx);
  EXPECT_TRUE(report.valid) << report.reason;
  EXPECT_FALSE(report.unconditional);
  // Execution returns ALL cs101 grades (the query runs unmodified).
  auto rel = MustQuery(
      &db_, "select * from grades where course-id = 'cs101' order by 1", ctx);
  EXPECT_EQ(rel.num_rows(), 2u);
}

TEST_F(PaperExamplesTest, Example44UnregisteredCourseRejected) {
  Grant("costudentgrades", "11");
  Grant("myregistrations", "11");
  SessionContext ctx = Student("11");
  // ee150: student 11 is not registered; the remainder probe is empty.
  ExpectInvalid("select * from grades where course-id = 'ee150'", ctx);
}

TEST_F(PaperExamplesTest, Example44RegisteredButUngradedCourseAccepted) {
  // Student 12 is registered for ee150, which has no grades yet. The
  // registration is visible (v_r non-empty), so the query is conditionally
  // valid even though its answer is empty — acceptance leaks nothing the
  // user could not already see (Example 4.3's discussion).
  Grant("costudentgrades", "12");
  Grant("myregistrations", "12");
  SessionContext ctx = Student("12");
  ValidityReport report =
      MustCheck("select * from grades where course-id = 'ee150'", ctx);
  EXPECT_TRUE(report.valid) << report.reason;
  auto rel =
      MustQuery(&db_, "select * from grades where course-id = 'ee150'", ctx);
  EXPECT_EQ(rel.num_rows(), 0u);
}

TEST_F(PaperExamplesTest, Example55DistinctDroppedViaPrimaryKey) {
  // Example 5.5 ends: "Since the Grades table has a primary key, the
  // distinct keyword can be dropped." Both forms must be accepted.
  Grant("costudentgrades", "11");
  Grant("myregistrations", "11");
  SessionContext ctx = Student("11");
  ExpectValid("select distinct * from grades where course-id = 'cs101'", ctx,
              false);
  ExpectValid("select * from grades where course-id = 'cs101'", ctx, false);
}

// ---------------------------------------------------------------------------
// Examples 5.1 / 5.2 — RegStudents + inclusion dependency: rule U3a.
// ---------------------------------------------------------------------------

class U3ExamplesTest : public PaperExamplesTest {
 protected:
  void SetUp() override {
    PaperExamplesTest::SetUp();
    // Make every student registered (dave was not).
    ASSERT_TRUE(
        db_.ExecuteScript("insert into registered values ('14', 'ee150');"
                          "create inclusion dependency every_student_registered "
                          "on students (student-id) "
                          "references registered (student-id)")
            .ok());
  }
};

TEST_F(U3ExamplesTest, Example51DistinctProjectionOfCoreValid) {
  Grant("regstudents", "11");
  SessionContext ctx = Student("11");
  ExpectValid("select distinct name, type from students", ctx, true);
}

TEST_F(U3ExamplesTest, Example51WithoutDistinctInvalid) {
  // "a modified version of q with the keyword distinct dropped is not
  // multiset equivalent ... we cannot infer the validity" (Example 5.1):
  // multiplicities of students are not recoverable from RegStudents.
  Grant("regstudents", "11");
  SessionContext ctx = Student("11");
  ExpectInvalid("select name, type from students", ctx);
}

TEST_F(U3ExamplesTest, WithoutConstraintInvalid) {
  // Same query, fresh database without the inclusion dependency: U3a must
  // not fire.
  Database db2;
  fgac::testing::SetupUniversity(&db2);
  fgac::testing::CreateUniversityViews(&db2);
  ASSERT_TRUE(db2.ExecuteAsAdmin("grant select on regstudents to 11").ok());
  SessionContext ctx = Student("11");
  auto report = db2.CheckQueryValidity("select distinct name, type from students",
                                       ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().valid);
}

TEST_F(U3ExamplesTest, Example53FilteredCoreViaConditionalDependency) {
  // Integrity constraint: all full-time students register for something.
  ASSERT_TRUE(db_.ExecuteScript(
                     "create inclusion dependency fulltime_registered "
                     "on students (student-id) where type = 'fulltime' "
                     "references registered (student-id)")
                  .ok());
  Grant("regstudents", "11");
  SessionContext ctx = Student("11");
  ExpectValid(
      "select distinct name from students where students.type = 'fulltime'",
      ctx, true);
  // But part-time students are not covered by that constraint alone...
  // (every_student_registered exists in this fixture, so use a fresh DB.)
  Database db2;
  fgac::testing::SetupUniversity(&db2);
  fgac::testing::CreateUniversityViews(&db2);
  ASSERT_TRUE(db2.ExecuteScript(
                     "create inclusion dependency fulltime_registered "
                     "on students (student-id) where type = 'fulltime' "
                     "references registered (student-id);"
                     "grant select on regstudents to 11")
                  .ok());
  auto report = db2.CheckQueryValidity(
      "select distinct name from students where students.type = 'parttime'",
      ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().valid);
}

TEST_F(U3ExamplesTest, Example54JoinIntroduction) {
  // FeesPaid: anyone who has paid fees must be registered. The view
  // exposes the registered students (including ids), fees are visible, and
  // the constraint lets U3a validate the join of students and feespaid.
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    create table feespaid (student-id varchar not null primary key);
    insert into feespaid values ('11'), ('12');
    create inclusion dependency feespaid_registered
      on feespaid (student-id) references registered (student-id);
    create authorization view regstudentsfull as
      select students.*, registered.course-id
      from registered, students
      where students.student-id = registered.student-id;
    create authorization view allfees as select * from feespaid;
  )sql")
                  .ok());
  Grant("regstudentsfull", "11");
  Grant("allfees", "11");
  SessionContext ctx = Student("11");
  ExpectValid(
      "select distinct name from students, feespaid "
      "where students.student-id = feespaid.student-id",
      ctx, true);
}

// ---------------------------------------------------------------------------
// Section 5.6.2 — documented incompleteness.
// ---------------------------------------------------------------------------

TEST_F(PaperExamplesTest, Section562RedundantJoinFutureWork) {
  // Given views A⋈B and B⋈C, the query A⋈B⋈C is only rewritable by the
  // redundant decomposition (A⋈B)⋈(B⋈C), which Volcano does not generate:
  // "Extending the algorithm to handle such cases is a topic of future
  // work" (Section 5.6.2). We implement that extension (keyed-middle
  // redundant join decomposition) and verify BOTH behaviours: acceptance
  // with the extension, the paper's rejection without it.
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    create authorization view reg_grades as
      select registered.*, grades.* from registered, grades
      where registered.student-id = grades.student-id
        and registered.course-id = grades.course-id;
    create authorization view grades_courses as
      select grades.*, courses.* from grades, courses
      where grades.course-id = courses.course-id;
  )sql")
                  .ok());
  Grant("reg_grades", "11");
  Grant("grades_courses", "11");
  SessionContext ctx = Student("11");
  const std::string q =
      "select registered.student-id, courses.name "
      "from registered, grades, courses "
      "where registered.student-id = grades.student-id "
      "and registered.course-id = grades.course-id "
      "and grades.course-id = courses.course-id";

  // With the future-work extension (default): accepted.
  auto report = db_.CheckQueryValidity(q, ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().valid) << report.value().reason;

  // With the extension disabled: the paper's published behaviour — a
  // sound but incomplete rejection (Section 5.5/5.6.2).
  db_.options().validity.enable_redundant_join_decomposition = false;
  auto published = db_.CheckQueryValidity(q, ctx);
  ASSERT_TRUE(published.ok());
  EXPECT_FALSE(published.value().valid);
  db_.options().validity.enable_redundant_join_decomposition = true;
}

// ---------------------------------------------------------------------------
// Section 2 / 6 — access-pattern views and dependent joins.
// ---------------------------------------------------------------------------

TEST_F(PaperExamplesTest, SingleGradeAccessPattern) {
  Grant("singlegrade", "secretary");
  SessionContext ctx = Student("secretary");
  // Any single student's grades are visible by supplying the id...
  ExpectValid("select * from grades where student-id = '12'", ctx, true);
  ExpectValid("select grade from grades where student-id = '13'", ctx, true);
  // ...but the full table is not ("preventing her from getting a list of
  // all students").
  ExpectInvalid("select * from grades", ctx);
  ExpectInvalid("select count(*) from grades", ctx);
}

TEST_F(PaperExamplesTest, DependentJoinWithAccessPatternView) {
  // Section 6: r ⋈ s is valid when r is valid and s is covered by an
  // access-pattern view keyed on the join column.
  ASSERT_TRUE(db_.ExecuteScript(
                     "create authorization view studentbyid as "
                     "select * from students where student-id = $$sid")
                  .ok());
  Grant("mygrades", "11");
  Grant("studentbyid", "11");
  SessionContext ctx = Student("11");
  ExpectValid(
      "select students.name, grades.grade from grades, students "
      "where grades.student-id = students.student-id "
      "and grades.student-id = '11'",
      ctx, true);
}

// ---------------------------------------------------------------------------
// Section 4.1 — grants are required.
// ---------------------------------------------------------------------------

TEST_F(PaperExamplesTest, UngrantedViewsDoNotTestify) {
  // mygrades exists but was never granted to student 12.
  SessionContext ctx = Student("12");
  ExpectInvalid("select * from grades where student-id = '12'", ctx);
}

TEST_F(PaperExamplesTest, GrantViaRole) {
  // RBAC composes with authorization views (Section 7).
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to studentrole").ok());
  db_.catalog().GrantRole("studentrole", "12");
  SessionContext ctx = Student("12");
  ExpectValid("select * from grades where student-id = '12'", ctx, true);
}

}  // namespace
}  // namespace fgac
