// Tests for the pipeline scheduler layer: DAG ordering and first-error-wins
// cancellation in PipelineScheduler, work stealing in the shared pool,
// inter-query interleaving of two sessions' pipelines on one pool, deadline
// trips mid-DAG, scheduler fault sites, validity probes as scheduler tasks,
// and a multi-client differential sweep against serial execution.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/query_guard.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/database.h"
#include "exec/scheduler.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using common::FaultInjector;
using common::QueryLimits;
using common::ThreadPool;
using common::TraceSpan;
using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using exec::PipelineScheduler;
using exec::PipelineTaskSet;
using fgac::testing::CreateUniversityViews;
using fgac::testing::MustQuery;
using fgac::testing::SetupUniversity;
using fgac::testing::SortedRowsToString;

// ---------------------------------------------------------------------------
// PipelineScheduler unit behaviour
// ---------------------------------------------------------------------------

TEST(PipelineSchedulerTest, DependenciesCompleteBeforeDependentsStart) {
  PipelineScheduler& sched = PipelineScheduler::Shared();
  const uint64_t dags0 = sched.dags_executed();
  const uint64_t tasks0 = sched.tasks_dispatched();
  const uint64_t done0 = sched.pipelines_completed();

  std::atomic<int> builds_done{0};
  std::atomic<int> scans_done{0};
  std::atomic<bool> order_ok{true};
  std::vector<PipelineTaskSet> sets(3);
  // Two independent "build" pipelines...
  for (size_t s = 0; s < 2; ++s) {
    sets[s].tasks.push_back([&builds_done](size_t) {
      builds_done.fetch_add(1);
      return Status::OK();
    });
  }
  // ...gating a 4-task "scan" pipeline.
  sets[2].deps = {0, 1};
  for (size_t t = 0; t < 4; ++t) {
    sets[2].tasks.push_back([&builds_done, &scans_done, &order_ok](size_t) {
      if (builds_done.load() != 2) order_ok.store(false);
      scans_done.fetch_add(1);
      return Status::OK();
    });
  }
  Status st = sched.RunDag(std::move(sets), nullptr, nullptr);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(order_ok.load()) << "a scan task started before its builds";
  EXPECT_EQ(builds_done.load(), 2);
  EXPECT_EQ(scans_done.load(), 4);
  EXPECT_EQ(sched.dags_executed(), dags0 + 1);
  EXPECT_EQ(sched.tasks_dispatched(), tasks0 + 6);
  EXPECT_EQ(sched.pipelines_completed(), done0 + 3);
}

TEST(PipelineSchedulerTest, RejectsNonTopologicalDag) {
  std::vector<PipelineTaskSet> sets(2);
  sets[0].deps = {1};  // forward edge: not topological
  sets[0].tasks.push_back([](size_t) { return Status::OK(); });
  sets[1].tasks.push_back([](size_t) { return Status::OK(); });
  Status st =
      PipelineScheduler::Shared().RunDag(std::move(sets), nullptr, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("topological"), std::string::npos);
}

TEST(PipelineSchedulerTest, FirstErrorCancelsDependentsWithoutStartingThem) {
  PipelineScheduler& sched = PipelineScheduler::Shared();
  const uint64_t cancelled0 = sched.pipelines_cancelled();

  std::atomic<bool> dependent_ran{false};
  std::vector<PipelineTaskSet> sets(2);
  sets[0].tasks.push_back(
      [](size_t) { return Status::ExecutionError("boom0"); });
  sets[1].deps = {0};
  sets[1].tasks.push_back([&dependent_ran](size_t) {
    dependent_ran.store(true);
    return Status::OK();
  });
  std::vector<char> started;
  Status st = sched.RunDag(std::move(sets), nullptr, nullptr, &started);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("boom0"), std::string::npos);
  EXPECT_FALSE(dependent_ran.load())
      << "a dependent of a failed pipeline must never start";
  ASSERT_EQ(started.size(), 2u);
  EXPECT_EQ(started[0], 1);
  EXPECT_EQ(started[1], 0);
  EXPECT_GE(sched.pipelines_cancelled(), cancelled0 + 1);
}

TEST(PipelineSchedulerTest, TrippedGuardCancelsDependentsMidDag) {
  // A dead guard stops every task at the scheduler's pre-task check (no
  // task body runs), aborts the DAG, and dependent pipelines are cancelled
  // without ever starting.
  PipelineScheduler& sched = PipelineScheduler::Shared();
  const uint64_t cancelled0 = sched.pipelines_cancelled();

  QueryLimits limits;
  limits.timeout = std::chrono::microseconds(1);
  common::QueryGuard guard(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::atomic<int> bodies{0};
  std::vector<PipelineTaskSet> sets(2);
  for (size_t t = 0; t < 4; ++t) {
    sets[0].tasks.push_back([&bodies](size_t) {
      bodies.fetch_add(1);
      return Status::OK();
    });
  }
  sets[1].deps = {0};
  sets[1].tasks.push_back([&bodies](size_t) {
    bodies.fetch_add(1);
    return Status::OK();
  });
  std::vector<char> started;
  Status st = sched.RunDag(std::move(sets), &guard, nullptr, &started);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_EQ(bodies.load(), 0);
  ASSERT_EQ(started.size(), 2u);
  EXPECT_EQ(started[0], 1);  // dispatched, every task failed its guard check
  EXPECT_EQ(started[1], 0);  // released after the abort: cancelled
  EXPECT_GE(sched.pipelines_cancelled(), cancelled0 + 1);
}

// ---------------------------------------------------------------------------
// Work-stealing pool
// ---------------------------------------------------------------------------

TEST(WorkStealingTest, IdlePeersStealFromABusyWorkersQueue) {
  ThreadPool& pool = ThreadPool::Shared();
  ASSERT_GE(pool.num_threads(), 4u);
  const uint64_t stolen0 = pool.tasks_stolen();

  // A task submitted from a pool worker lands on that worker's own deque.
  // The submitter then stalls, so its backlog can only finish if idle
  // peers steal it.
  std::atomic<int> done{0};
  constexpr int kBacklog = 8;
  std::mutex mu;
  std::condition_variable cv;
  pool.Submit([&] {
    for (int i = 0; i < kBacklog; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        if (done.fetch_add(1) + 1 == kBacklog) {
          std::lock_guard<std::mutex> lock(mu);
          cv.notify_all();
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done.load() == kBacklog; }));
  EXPECT_GE(pool.tasks_stolen(), stolen0 + 1)
      << "the stalled submitter's backlog was not stolen by idle peers";
}

// ---------------------------------------------------------------------------
// End-to-end through the Database facade
// ---------------------------------------------------------------------------

class PipelineExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (FaultInjector::compiled_in()) FaultInjector::Instance().Reset();
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ASSERT_TRUE(db_.ExecuteScript("grant select on mygrades to 11;"
                                  "grant select on costudentgrades to 11;"
                                  "grant select on myregistrations to 11;"
                                  "grant select on mygrades to 12")
                    .ok());
  }

  void TearDown() override {
    if (FaultInjector::compiled_in()) FaultInjector::Instance().Reset();
  }

  static SessionContext Admin() {
    SessionContext ctx("admin");
    ctx.set_mode(EnforcementMode::kNone);
    return ctx;
  }

  static SessionContext NonTruman(const std::string& user) {
    SessionContext ctx(user);
    ctx.set_mode(EnforcementMode::kNonTruman);
    return ctx;
  }

  // Grows `students` to `n` synthetic rows so scan pipelines have morsels
  // to fight over (direct storage writes, like the benches).
  void GrowStudents(size_t n) {
    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      rows.push_back({Value::String("s" + std::to_string(i + 100)),
                      Value::String("name"), Value::String("fulltime")});
    }
    db_.state().GetMutableTable("students")->InsertRows(std::move(rows));
  }

  Database db_;
};

// The tentpole acceptance test: two queries from different sessions must
// demonstrably interleave on the one shared pool — some of their scan-task
// spans overlap in wall time.
TEST_F(PipelineExecTest, TwoSessionsPipelinesInterleaveOnSharedPool) {
  GrowStudents(60000);
  db_.options().parallelism = 2;
  const std::string sql =
      "select type, count(*) from students where name = 'name' group by type";

  bool overlapped = false;
  for (int attempt = 0; attempt < 8 && !overlapped; ++attempt) {
    db_.tracer().Clear();
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    auto client = [&](uint64_t trace_id) {
      SessionContext ctx("admin");
      ctx.set_mode(EnforcementMode::kNone);
      ctx.set_trace(true);
      ctx.set_trace_id(trace_id);
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      auto r = db_.Execute(sql, ctx);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    };
    std::thread a(client, 9001), b(client, 9002);
    while (ready.load() != 2) std::this_thread::yield();
    go.store(true);
    a.join();
    b.join();

    // Any pair of task spans from the two traces overlapping in time is
    // proof the two queries shared the pool rather than running back to
    // back.
    std::vector<TraceSpan> spans = db_.tracer().Snapshot();
    std::vector<const TraceSpan*> first, second;
    for (const TraceSpan& s : spans) {
      if (s.name != "exec.worker") continue;
      if (s.trace_id == 9001) first.push_back(&s);
      if (s.trace_id == 9002) second.push_back(&s);
    }
    EXPECT_FALSE(first.empty());
    EXPECT_FALSE(second.empty());
    for (const TraceSpan* x : first) {
      for (const TraceSpan* y : second) {
        int64_t lo = std::max(x->start_us, y->start_us);
        int64_t hi = std::min(x->start_us + static_cast<int64_t>(x->dur_us),
                              y->start_us + static_cast<int64_t>(y->dur_us));
        if (lo < hi) overlapped = true;
      }
    }
  }
  EXPECT_TRUE(overlapped)
      << "no overlapping scan-task spans across 8 attempts: queries are "
         "serializing instead of sharing the pool";
}

// An expired deadline surfaces as a clean kTimeout from the parallel
// aggregate path, and the next statement on the same database is healthy
// (no sticky scheduler or pool state).
TEST_F(PipelineExecTest, ExpiredDeadlineFailsParallelAggregateCleanly) {
  GrowStudents(20000);
  QueryLimits limits;
  limits.timeout = std::chrono::microseconds(1);
  SessionContext ctx = Admin();
  ctx.set_exec_parallelism(4);
  ctx.set_query_limits(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto r = db_.Execute("select type, count(*) from students group by type",
                       ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);

  SessionContext healthy = Admin();
  healthy.set_exec_parallelism(4);
  auto again =
      db_.Execute("select type, count(*) from students group by type", healthy);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

// A cancel token flipped at an exact morsel boundary — while the scan
// pipeline is mid-flight — must abort the DAG and cancel the dependent
// merge pipeline without starting it, observable as pipelines_cancelled
// advancing.
TEST_F(PipelineExecTest, CancelMidScanCancelsDependentMergePipeline) {
  if (!FaultInjector::compiled_in()) {
    GTEST_SKIP() << "fault-injection sites not compiled into this build";
  }
  GrowStudents(20000);
  PipelineScheduler& sched = PipelineScheduler::Shared();
  const uint64_t cancelled0 = sched.pipelines_cancelled();

  auto token = std::make_shared<std::atomic<bool>>(false);
  FaultInjector::Instance().OnHit(
      "parallel.morsel", [token] { token->store(true); }, /*nth=*/2);
  SessionContext ctx = Admin();
  ctx.set_exec_parallelism(4);
  ctx.set_cancel_token(token);
  // Aggregate root: scan pipeline -> merge pipeline. The token trips after
  // the second claimed morsel, every later scan task fails its guard
  // check, and the merge must be cancelled rather than run on garbage
  // partials.
  auto r = db_.Execute("select type, count(*) from students group by type",
                       ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_GE(sched.pipelines_cancelled(), cancelled0 + 1)
      << "the merge pipeline should have been cancelled, never started";

  FaultInjector::Instance().Reset();
  SessionContext healthy = Admin();
  healthy.set_exec_parallelism(4);
  auto again =
      db_.Execute("select type, count(*) from students group by type", healthy);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(PipelineExecTest, SchedulerDispatchFaultFailsQueryCleanly) {
  if (!FaultInjector::compiled_in()) {
    GTEST_SKIP() << "fault-injection sites not compiled into this build";
  }
  GrowStudents(20000);
  SessionContext ctx = Admin();
  ctx.set_exec_parallelism(4);

  FaultInjector::Instance().FailOnHit("scheduler.dispatch");
  auto r = db_.Execute("select * from students", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("fault injected"), std::string::npos);

  FaultInjector::Instance().Reset();
  FaultInjector::Instance().FailOnHit("pipeline.run", /*nth=*/3);
  auto r2 = db_.Execute("select * from students", ctx);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("fault injected"), std::string::npos);

  FaultInjector::Instance().Reset();
  auto recovered = db_.Execute("select * from students", ctx);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

// Validity probes are first-class pipeline work: a multi-probe batch with
// probe_parallelism > 1 must run as scheduler tasks even when query
// execution itself is serial.
TEST_F(PipelineExecTest, ValidityProbeBatchesRunAsSchedulerTasks) {
  db_.options().parallelism = 1;
  db_.options().validity.probe_parallelism = 4;
  db_.options().enable_validity_cache = false;
  PipelineScheduler& sched = PipelineScheduler::Shared();
  const uint64_t dags0 = sched.dags_executed();
  const uint64_t tasks0 = sched.tasks_dispatched();

  // Example 4.4's conditional query: its first C3 batch has >= 2 probes
  // (see guardrails_test.ProbeBudgetExhaustionRejects).
  auto report = db_.CheckQueryValidity(
      "select * from grades where course-id = 'cs101'", NonTruman("11"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().valid);
  ASSERT_GE(report.value().c3_probes, 2u);
  EXPECT_GE(sched.dags_executed(), dags0 + 1)
      << "probe batch did not go through the pipeline scheduler";
  EXPECT_GE(sched.tasks_dispatched(), tasks0 + 2);
}

// Closed-loop differential sweep: concurrent clients with distinct
// enforcement modes and plans, every result compared against the serial
// answer computed up front. FGAC_STRESS_REPEAT scales the iteration count
// (CI's high-contention TSan config sets it to 20).
TEST_F(PipelineExecTest, ConcurrentClientsMatchSerialResults) {
  GrowStudents(8000);
  db_.options().parallelism = 4;

  struct Client {
    std::string user;
    EnforcementMode mode;
    std::string sql;
    std::string expect;
  };
  std::vector<Client> clients = {
      {"admin", EnforcementMode::kNone,
       "select type, count(*) from students group by type", ""},
      {"admin", EnforcementMode::kNone,
       "select g.grade, s.name from grades g, students s "
       "where g.student-id = s.student-id",
       ""},
      {"admin", EnforcementMode::kNone,
       "select distinct type from students", ""},
      {"11", EnforcementMode::kNonTruman, "select * from mygrades", ""},
      {"12", EnforcementMode::kNonTruman, "select * from mygrades", ""},
      {"admin", EnforcementMode::kNone,
       "select name from students where type = 'parttime' order by 1", ""},
      {"admin", EnforcementMode::kNone, "select count(*) from students", ""},
      {"11", EnforcementMode::kNonTruman,
       "select * from grades where course-id = 'cs101'", ""},
  };
  for (Client& c : clients) {
    SessionContext ctx(c.user);
    ctx.set_mode(c.mode);
    ctx.set_exec_parallelism(1);
    c.expect = SortedRowsToString(MustQuery(&db_, c.sql, ctx));
    ASSERT_FALSE(c.expect.empty()) << c.sql;
  }

  int repeat = 3;
  if (const char* env = std::getenv("FGAC_STRESS_REPEAT")) {
    repeat = std::max(1, std::atoi(env));
  }
  std::atomic<int> mismatches{0};
  auto run_client = [&](const Client& c) {
    for (int i = 0; i < repeat; ++i) {
      SessionContext ctx(c.user);
      ctx.set_mode(c.mode);
      ctx.set_exec_parallelism(4);
      auto r = db_.Execute(c.sql, ctx);
      if (!r.ok()) {
        ADD_FAILURE() << r.status().ToString() << "\nsql: " << c.sql;
        mismatches.fetch_add(1);
        return;
      }
      if (SortedRowsToString(r.value().relation) != c.expect) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (const Client& c : clients) threads.emplace_back(run_client, c);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace fgac
