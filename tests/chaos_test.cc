// Chaos sweep (overload protection under fire): an 8-client differential
// workload against a database with admission limits, a global memory
// budget and every fault-injection site armed at low probability. The
// invariants are the robustness contract of the engine:
//   - no hangs (ctest timeout), no crashes;
//   - every query either returns the exact reference answer or fails
//     closed with a clean, expected Status code;
//   - every shed query produced an audit event with verdict "shed";
//   - the global memory account drains back to the resident snapshot
//     footprint once the storm passes (no leaks).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/database.h"
#include "exec/admission.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using common::FaultInjector;
using core::Database;
using core::DatabaseOptions;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;
using fgac::testing::SortedRowsToString;

struct ChaosQuery {
  std::string sql;
  EnforcementMode mode;
  std::string user;
  /// Sorted-row rendering of the fault-free answer (filled in setup).
  std::string expected;
};

bool FailClosedCode(StatusCode code) {
  switch (code) {
    case StatusCode::kTimeout:
    case StatusCode::kCancelled:
    case StatusCode::kResourceExhausted:
    case StatusCode::kOverloaded:
    case StatusCode::kNotAuthorized:   // probe failures fail closed
    case StatusCode::kInternal:        // injected faults surface as internal
    case StatusCode::kExecutionError:
      return true;
    default:
      return false;
  }
}

TEST(ChaosTest, EightClientSweepFailsClosedOnly) {
  DatabaseOptions opts;
  opts.parallelism = 4;  // exercise the DAG/pipeline fault sites
  opts.admission.max_concurrent = 2;
  opts.admission.max_queue = 2;
  // Generous enough that the resident snapshots fit, tight enough that
  // concurrent transient state occasionally trips it.
  opts.memory.hard_limit_bytes = 1u << 14;
  // The sweep must be able to account every shed: size the audit ring so
  // nothing is dropped.
  opts.audit.ring_capacity = 1u << 14;
  opts.audit.retain_events = 1u << 15;
  fgac::testing::ApplyNightlyArtifactOptions(&opts, "chaos_test");
  Database db(opts);
  SetupUniversity(&db);
  CreateUniversityViews(&db);
  ASSERT_TRUE(db.ExecuteScript("grant select on mygrades to 11;"
                               "grant select on costudentgrades to 11;"
                               "grant select on myregistrations to 11")
                  .ok());
  ASSERT_TRUE(db.catalog().SetTrumanView("grades", "mygrades").ok());

  std::vector<ChaosQuery> queries = {
      {"select name from students where type = 'fulltime'",
       EnforcementMode::kNone, "admin", ""},
      {"select s.name, r.course-id from students s, registered r "
       "where s.student-id = r.student-id",
       EnforcementMode::kNone, "admin", ""},
      {"select course-id, avg(grade) from grades group by course-id",
       EnforcementMode::kNone, "admin", ""},
      {"select grade from grades where student-id = '11'",
       EnforcementMode::kNonTruman, "11", ""},
      {"select student-id, course-id from registered "
       "where student-id = '11'",
       EnforcementMode::kNonTruman, "11", ""},
  };
  auto make_ctx = [](const ChaosQuery& q, uint32_t weight) {
    SessionContext ctx(q.user);
    ctx.set_mode(q.mode);
    ctx.set_scheduler_weight(weight);
    return ctx;
  };
  // Reference pass, single-threaded and fault-free: the answers every
  // chaos-run success must reproduce bit-for-bit.
  for (ChaosQuery& q : queries) {
    auto r = db.Execute(q.sql, make_ctx(q, 1));
    ASSERT_TRUE(r.ok()) << q.sql << ": " << r.status().ToString();
    q.expected = SortedRowsToString(r.value().relation);
  }

  FaultInjector::Instance().Reset();
  if (FaultInjector::compiled_in()) {
    uint64_t seed = 12345;
    for (const char* site :
         {"scheduler.dispatch", "threadpool.dispatch", "pipeline.run",
          "parallel.morsel", "storage.rebuild", "exec.hash_join.build",
          "validity.probe", "memory.charge", "admission.enqueue"}) {
      FaultInjector::Instance().FailWithProbability(site, 0.02, seed++);
    }
  }

  constexpr int kClients = 8;
  constexpr int kItersPerClient = 25;
  std::atomic<uint64_t> sheds{0};
  std::atomic<uint64_t> successes{0};
  std::mutex failures_mu;
  std::vector<std::string> failures;
  auto note_failure = [&](std::string msg) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(msg));
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kItersPerClient; ++i) {
        const ChaosQuery& q = queries[(c + i) % queries.size()];
        SessionContext ctx =
            make_ctx(q, static_cast<uint32_t>(c % 3 + 1));
        auto r = db.Execute(q.sql, ctx);
        if (r.ok()) {
          successes.fetch_add(1);
          std::string got = SortedRowsToString(r.value().relation);
          if (got != q.expected) {
            note_failure("wrong answer for '" + q.sql + "':\n got " + got +
                         "\n want " + q.expected);
          }
        } else {
          StatusCode code = r.status().code();
          if (code == StatusCode::kOverloaded) sheds.fetch_add(1);
          if (!FailClosedCode(code)) {
            note_failure("unexpected failure code for '" + q.sql +
                         "': " + r.status().ToString());
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  FaultInjector::Instance().Reset();

  for (const std::string& f : failures) ADD_FAILURE() << f;

  // Every shed query must have left an audit record with verdict "shed";
  // nothing may have been dropped (the ring was sized for the sweep).
  db.audit_log().Flush();
  ASSERT_EQ(db.audit_log().events_dropped(), 0u);
  uint64_t shed_events = 0;
  for (const auto& ev : db.audit_log().SnapshotRetained()) {
    if (ev.verdict == "shed") ++shed_events;
  }
  EXPECT_EQ(shed_events, sheds.load());

  // Quiesced, fault-free: a clean pass re-materializes any snapshot a
  // fault left dirty and every query answers exactly again.
  for (const ChaosQuery& q : queries) {
    auto r = db.Execute(q.sql, make_ctx(q, 1));
    ASSERT_TRUE(r.ok()) << q.sql << ": " << r.status().ToString();
    EXPECT_EQ(SortedRowsToString(r.value().relation), q.expected) << q.sql;
  }
  // The memory account is back to the resident snapshot footprint: a
  // second clean pass neither grows nor shrinks it (transient execution
  // state fully drained, nothing leaked).
  uint64_t resident = db.memory_tracker().used();
  EXPECT_LE(resident, db.memory_tracker().high_water());
  for (const ChaosQuery& q : queries) {
    auto r = db.Execute(q.sql, make_ctx(q, 1));
    ASSERT_TRUE(r.ok()) << q.sql << ": " << r.status().ToString();
  }
  EXPECT_EQ(db.memory_tracker().used(), resident);

  // The sweep must actually have exercised the engine, not just shed
  // everything at the door.
  EXPECT_GT(successes.load(), 0u);

  fgac::testing::DumpMetricsArtifact(&db, "chaos_test");
}

}  // namespace
}  // namespace fgac
