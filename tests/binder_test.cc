#include "algebra/binder.h"

#include <gtest/gtest.h>

#include "algebra/plan_hash.h"
#include "algebra/reference_eval.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace fgac::algebra {
namespace {

using fgac::testing::SetupUniversity;

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override { SetupUniversity(&db_); }

  Result<PlanPtr> Bind(const std::string& sql,
                       Binder::Options options = {}) {
    auto stmt = sql::Parser::ParseSelect(sql);
    if (!stmt.ok()) return stmt.status();
    Binder binder(db_.catalog(), std::move(options));
    return binder.BindSelect(*stmt.value());
  }

  PlanPtr MustBind(const std::string& sql, Binder::Options options = {}) {
    auto plan = Bind(sql, std::move(options));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << "\nsql: " << sql;
    return plan.ok() ? plan.value() : nullptr;
  }

  core::Database db_;
};

TEST_F(BinderTest, SimpleScan) {
  PlanPtr plan = MustBind("select * from students");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PlanKind::kGet);
  EXPECT_EQ(OutputArity(*plan), 3u);
}

TEST_F(BinderTest, ProjectionNamesAndAliases) {
  PlanPtr plan = MustBind("select name as n, student-id from students");
  auto names = OutputNames(*plan);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "n");
  EXPECT_EQ(names[1], "student-id");
}

TEST_F(BinderTest, UnknownColumnFails) {
  auto plan = Bind("select nosuch from students");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownTableFails) {
  EXPECT_FALSE(Bind("select * from nosuch").ok());
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  auto plan = Bind(
      "select student-id from grades, registered");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, QualifierDisambiguates) {
  EXPECT_NE(MustBind("select grades.student-id from grades, registered"),
            nullptr);
}

TEST_F(BinderTest, SelfJoinWithAliases) {
  PlanPtr plan = MustBind(
      "select a.grade, b.grade from grades a, grades b "
      "where a.student-id = b.student-id");
  ASSERT_NE(plan, nullptr);
}

TEST_F(BinderTest, CommaJoinAndExplicitJoinBindIdentically) {
  // The binder canonicalizes both syntaxes to the same plan (ON conjuncts
  // are hoisted), so they fingerprint identically.
  PlanPtr a = MustBind(
      "select g.grade from grades g, registered r "
      "where g.student-id = r.student-id and r.course-id = 'cs101'");
  PlanPtr b = MustBind(
      "select g.grade from grades g join registered r "
      "on g.student-id = r.student-id where r.course-id = 'cs101'");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(PlanEquals(a, b));
  EXPECT_EQ(PlanFingerprint(a), PlanFingerprint(b));
}

TEST_F(BinderTest, PredicateOrderDoesNotMatter) {
  PlanPtr a = MustBind("select * from grades where grade = 4.0 "
                       "and course-id = 'cs101'");
  PlanPtr b = MustBind("select * from grades where course-id = 'cs101' "
                       "and grade = 4.0");
  EXPECT_TRUE(PlanEquals(a, b));
}

TEST_F(BinderTest, ComparisonDirectionNormalized) {
  PlanPtr a = MustBind("select * from grades where grade > 3");
  PlanPtr b = MustBind("select * from grades where 3 < grade");
  EXPECT_TRUE(PlanEquals(a, b));
}

TEST_F(BinderTest, ParamsSubstituted) {
  Binder::Options options;
  options.params["user-id"] = Value::String("11");
  PlanPtr plan =
      MustBind("select * from grades where student-id = $user-id", options);
  ASSERT_NE(plan, nullptr);
  PlanPtr expect = MustBind("select * from grades where student-id = '11'");
  EXPECT_TRUE(PlanEquals(plan, expect));
}

TEST_F(BinderTest, UnboundParamFails) {
  auto plan = Bind("select * from grades where student-id = $user-id");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("$user-id"), std::string::npos);
}

TEST_F(BinderTest, AccessParamsRequireOptIn) {
  EXPECT_FALSE(Bind("select * from grades where student-id = $$1").ok());
  Binder::Options options;
  options.allow_access_params = true;
  EXPECT_NE(MustBind("select * from grades where student-id = $$1", options),
            nullptr);
}

TEST_F(BinderTest, ViewExpansion) {
  ASSERT_TRUE(db_.ExecuteScript("create view cs101grades as "
                                "select * from grades "
                                "where course-id = 'cs101'")
                  .ok());
  PlanPtr via_view = MustBind("select grade from cs101grades");
  PlanPtr direct =
      MustBind("select grade from grades where course-id = 'cs101'");
  EXPECT_TRUE(PlanEquals(via_view, direct));
}

TEST_F(BinderTest, ViewColumnsAddressableThroughAlias) {
  ASSERT_TRUE(db_.ExecuteScript("create view g2 as "
                                "select student-id as sid, grade from grades")
                  .ok());
  PlanPtr plan = MustBind("select v.sid from g2 v where v.grade = 4.0");
  ASSERT_NE(plan, nullptr);
  auto rel = ReferenceEval(plan, db_.state());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().num_rows(), 1u);
}

TEST_F(BinderTest, AggregateBinding) {
  PlanPtr plan = MustBind(
      "select course-id, avg(grade) from grades group by course-id");
  // Aggregate wrapped by the (identity-collapsed) projection.
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, PlanKind::kAggregate);
  EXPECT_EQ(plan->group_by.size(), 1u);
  EXPECT_EQ(plan->aggs.size(), 1u);
  EXPECT_EQ(plan->aggs[0].func, AggFunc::kAvg);
}

TEST_F(BinderTest, NonGroupedColumnInSelectFails) {
  auto plan = Bind("select name, count(*) from students");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(BinderTest, AggregateInWhereFails) {
  EXPECT_FALSE(Bind("select * from grades where avg(grade) > 3").ok());
}

TEST_F(BinderTest, NestedAggregateFails) {
  EXPECT_FALSE(Bind("select avg(count(*)) from grades").ok());
}

TEST_F(BinderTest, GroupExprReuseInSelect) {
  // The group-by expression may be reused (structurally) in the output.
  PlanPtr plan = MustBind(
      "select course-id, count(*) from grades group by course-id "
      "having min(grade) >= 2.0");
  ASSERT_NE(plan, nullptr);
}

TEST_F(BinderTest, HavingWithoutGroupBy) {
  PlanPtr plan =
      MustBind("select count(*) from grades having count(*) > 100");
  ASSERT_NE(plan, nullptr);
  auto rel = ReferenceEval(plan, db_.state());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().num_rows(), 0u);
}

TEST_F(BinderTest, OrderByUnknownNameFails) {
  EXPECT_FALSE(Bind("select name from students order by nosuch").ok());
}

TEST_F(BinderTest, OrderByPositionOutOfRangeFails) {
  EXPECT_FALSE(Bind("select name from students order by 2").ok());
}

TEST_F(BinderTest, BindOverTable) {
  const catalog::TableSchema* schema = db_.catalog().GetTable("grades");
  auto expr = sql::Parser::ParseExpression("grade >= 3.0 and course-id = 'x'");
  ASSERT_TRUE(expr.ok());
  auto scalar = Binder::BindOverTable(expr.value(), *schema);
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  Row row = {Value::String("11"), Value::String("x"), Value::Double(3.5)};
  auto pass = EvalPredicate(scalar.value(), row);
  ASSERT_TRUE(pass.ok());
  EXPECT_TRUE(pass.value());
}

TEST_F(BinderTest, BindUpdatePredicateImages) {
  const catalog::TableSchema* schema = db_.catalog().GetTable("students");
  auto expr = sql::Parser::ParseExpression(
      "old(students.student-id) = $user-id and new(students.type) = 'parttime'");
  ASSERT_TRUE(expr.ok());
  std::map<std::string, Value> params = {{"user-id", Value::String("11")}};
  auto scalar = Binder::BindUpdatePredicate(
      expr.value(), *schema, Binder::UpdateImage::kUpdate, params);
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  Row combined = {Value::String("11"), Value::String("alice"),
                  Value::String("fulltime"),  // old image
                  Value::String("11"), Value::String("alice"),
                  Value::String("parttime")};  // new image
  auto pass = EvalPredicate(scalar.value(), combined);
  ASSERT_TRUE(pass.ok());
  EXPECT_TRUE(pass.value());
}

TEST_F(BinderTest, OldInInsertPredicateFails) {
  const catalog::TableSchema* schema = db_.catalog().GetTable("students");
  auto expr = sql::Parser::ParseExpression("old(student-id) = '1'");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(Binder::BindUpdatePredicate(expr.value(), *schema,
                                           Binder::UpdateImage::kInsert, {})
                   .ok());
}

}  // namespace
}  // namespace fgac::algebra
