// Tests for end-to-end query tracing: the Tracer span collector (bounded
// retention, Chrome-trace export), the RAII ScopedSpan helpers, and the
// spans the engine emits for a traced statement — query / validity.check /
// rule firings / probe batches / exec — including per-worker spans from
// the morsel-driven parallel executor. The TSan job runs this file.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using common::RecordInstantSpan;
using common::ScopedSpan;
using common::TraceContext;
using common::Tracer;
using common::TraceSpan;
using core::Database;
using core::DatabaseOptions;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

std::vector<TraceSpan> SpansNamed(const std::vector<TraceSpan>& spans,
                                  const std::string& name) {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

bool HasSpanWithPrefix(const std::vector<TraceSpan>& spans,
                       const std::string& prefix) {
  for (const TraceSpan& s : spans) {
    if (s.name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tracer primitive
// ---------------------------------------------------------------------------

TEST(TracerTest, RecordsAndSnapshotsInOrder) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    TraceSpan s;
    s.trace_id = 7;
    s.span_id = tracer.NewSpanId();
    s.name = "span-" + std::to_string(i);
    tracer.Record(std::move(s));
  }
  EXPECT_EQ(tracer.spans_recorded(), 3u);
  EXPECT_EQ(tracer.spans_dropped(), 0u);
  std::vector<TraceSpan> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "span-0");
  EXPECT_EQ(snap[2].name, "span-2");
  // Ids handed out by one tracer never collide.
  EXPECT_NE(snap[0].span_id, snap[1].span_id);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, BoundedRetentionEvictsOldestAndCounts) {
  Tracer tracer(/*retain_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan s;
    s.name = "span-" + std::to_string(i);
    tracer.Record(std::move(s));
  }
  EXPECT_EQ(tracer.spans_recorded(), 10u);
  EXPECT_EQ(tracer.spans_dropped(), 6u);
  std::vector<TraceSpan> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().name, "span-6");  // newest 4 retained
  EXPECT_EQ(snap.back().name, "span-9");
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer tracer;
  TraceSpan s;
  s.trace_id = 1;
  s.span_id = 2;
  s.name = "query";
  s.detail = "mode=\"x\"";  // must be escaped in the export
  s.user = "u1";
  s.start_us = 10;
  s.dur_us = 5;
  s.thread_id = 3;
  tracer.Record(std::move(s));
  std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("\\\"x\\\""), std::string::npos);  // escaped detail
  EXPECT_EQ(json.find("mode=\"x\""), std::string::npos);  // raw quote gone
}

TEST(TracerTest, ConcurrentRecordsAreAllAccounted) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  Tracer tracer(/*retain_spans=*/1000);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan s;
        s.name = "w";
        tracer.Record(std::move(s));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(tracer.spans_recorded() , uint64_t{kThreads * kPerThread});
  EXPECT_EQ(tracer.spans_recorded() - tracer.spans_dropped(),
            tracer.Snapshot().size());
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

TEST(ScopedSpanTest, NullContextIsANoOpEverywhere) {
  ScopedSpan span(nullptr, "ignored");
  EXPECT_FALSE(span.active());
  span.set_detail("ignored too");
  TraceContext child = span.ChildContext();
  EXPECT_FALSE(child.active());
  RecordInstantSpan(nullptr, "ignored", "detail");
  TraceContext inactive;  // default: no tracer
  RecordInstantSpan(&inactive, "ignored", "detail");
  ScopedSpan span2(&inactive, "ignored");
  EXPECT_FALSE(span2.active());
}

TEST(ScopedSpanTest, RecordsOnDestructionWithParentLinkage) {
  Tracer tracer;
  TraceContext root;
  root.tracer = &tracer;
  root.trace_id = tracer.NewTraceId();
  root.user = "u1";
  uint64_t outer_id = 0;
  {
    ScopedSpan outer(&root, "outer");
    ASSERT_TRUE(outer.active());
    outer_id = outer.span_id();
    TraceContext child_ctx = outer.ChildContext();
    {
      ScopedSpan inner(&child_ctx, "inner");
      inner.set_detail("d");
    }
    // Children record before parents: inner is already visible.
    EXPECT_EQ(tracer.Snapshot().size(), 1u);
  }
  std::vector<TraceSpan> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "inner");
  EXPECT_EQ(snap[1].name, "outer");
  EXPECT_EQ(snap[0].parent_id, outer_id);
  EXPECT_EQ(snap[1].parent_id, 0u);  // root
  EXPECT_EQ(snap[0].trace_id, root.trace_id);
  EXPECT_EQ(snap[1].trace_id, root.trace_id);
  EXPECT_EQ(snap[0].user, "u1");
  EXPECT_EQ(snap[0].detail, "d");
  // The parent's interval covers the child's.
  EXPECT_LE(snap[1].start_us, snap[0].start_us);
  EXPECT_GE(snap[1].start_us + snap[1].dur_us,
            snap[0].start_us + snap[0].dur_us);
}

// ---------------------------------------------------------------------------
// End-to-end: spans emitted by a traced statement
// ---------------------------------------------------------------------------

class DatabaseTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  }

  Database db_;
};

TEST_F(DatabaseTraceTest, UntracedStatementsRecordNothing) {
  SessionContext ctx("11");
  ASSERT_TRUE(
      db_.Execute("select grade from grades where student-id = '11'", ctx)
          .ok());
  EXPECT_EQ(db_.tracer().spans_recorded(), 0u);
}

TEST_F(DatabaseTraceTest, TracedNonTrumanSelectEmitsFullSpanTree) {
  SessionContext ctx("11");
  ctx.set_trace(true);
  ctx.set_trace_id(777);  // pinned for correlation with the audit row
  ASSERT_TRUE(
      db_.Execute("select grade from grades where student-id = '11'", ctx)
          .ok());
  std::vector<TraceSpan> spans = db_.tracer().Snapshot();
  ASSERT_FALSE(spans.empty());
  for (const TraceSpan& s : spans) {
    EXPECT_EQ(s.trace_id, 777u) << s.name;
    EXPECT_EQ(s.user, "11") << s.name;
  }
  std::vector<TraceSpan> query = SpansNamed(spans, "query");
  ASSERT_EQ(query.size(), 1u);
  EXPECT_EQ(query[0].parent_id, 0u);
  EXPECT_NE(query[0].detail.find("mode=non-truman"), std::string::npos);
  std::vector<TraceSpan> validity = SpansNamed(spans, "validity.check");
  ASSERT_EQ(validity.size(), 1u);
  EXPECT_EQ(validity[0].parent_id, query[0].span_id);
  // The validity verdict is justified by rule firings, each an instant span
  // nested under validity.check.
  ASSERT_TRUE(HasSpanWithPrefix(spans, "rule."));
  for (const TraceSpan& s : spans) {
    if (s.name.rfind("rule.", 0) == 0) {
      EXPECT_EQ(s.parent_id, validity[0].span_id);
      EXPECT_EQ(s.dur_us, 0);  // instant
    }
  }
  std::vector<TraceSpan> exec = SpansNamed(spans, "exec");
  ASSERT_EQ(exec.size(), 1u);
  EXPECT_EQ(exec[0].parent_id, query[0].span_id);
  ASSERT_EQ(SpansNamed(spans, "exec.serial").size(), 1u);
}

TEST_F(DatabaseTraceTest, FreshTraceIdPerStatementWhenUnpinned) {
  SessionContext ctx("11");
  ctx.set_trace(true);  // trace_id stays 0: one fresh id per statement
  const std::string q = "select grade from grades where student-id = '11'";
  ASSERT_TRUE(db_.Execute(q, ctx).ok());
  ASSERT_TRUE(db_.Execute(q, ctx).ok());
  std::vector<TraceSpan> query =
      SpansNamed(db_.tracer().Snapshot(), "query");
  ASSERT_EQ(query.size(), 2u);
  EXPECT_NE(query[0].trace_id, 0u);
  EXPECT_NE(query[0].trace_id, query[1].trace_id);
}

TEST_F(DatabaseTraceTest, TrumanRewriteSpanAppearsInTrumanMode) {
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kTruman);
  ctx.set_trace(true);
  ASSERT_TRUE(db_.Execute("select grade from grades", ctx).ok());
  std::vector<TraceSpan> spans = db_.tracer().Snapshot();
  EXPECT_EQ(SpansNamed(spans, "truman.rewrite").size(), 1u);
  EXPECT_TRUE(SpansNamed(spans, "validity.check").empty());
}

TEST_F(DatabaseTraceTest, RejectedQueryStillLeavesItsSpans) {
  SessionContext ctx("11");
  ctx.set_trace(true);
  auto r = db_.Execute("select * from grades", ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);
  std::vector<TraceSpan> spans = db_.tracer().Snapshot();
  // The query and validity spans were recorded on the way out; no exec
  // span, because the statement never reached execution.
  EXPECT_EQ(SpansNamed(spans, "query").size(), 1u);
  EXPECT_EQ(SpansNamed(spans, "validity.check").size(), 1u);
  EXPECT_TRUE(SpansNamed(spans, "exec").empty());
}

TEST_F(DatabaseTraceTest, ParallelExecutionEmitsPerWorkerSpans) {
  // Grow students so the morsel scheduler actually fans out.
  std::vector<Row> rows;
  for (int i = 0; i < 20000; ++i) {
    rows.push_back({Value::String("s" + std::to_string(i + 100)),
                    Value::String("name"), Value::String("fulltime")});
  }
  db_.state().GetMutableTable("students")->InsertRows(std::move(rows));
  SessionContext ctx("admin");
  ctx.set_mode(EnforcementMode::kNone);
  ctx.set_exec_parallelism(4);
  ctx.set_trace(true);
  ctx.set_trace_id(99);
  ASSERT_TRUE(db_.Execute("select * from students", ctx).ok());
  std::vector<TraceSpan> spans = db_.tracer().Snapshot();
  std::vector<TraceSpan> workers = SpansNamed(spans, "exec.worker");
  ASSERT_EQ(workers.size(), 4u);
  std::vector<TraceSpan> exec = SpansNamed(spans, "exec");
  ASSERT_EQ(exec.size(), 1u);
  for (const TraceSpan& w : workers) {
    EXPECT_EQ(w.trace_id, 99u);
    EXPECT_NE(w.detail.find("worker="), std::string::npos);
  }
  // Serial fallback was not taken.
  EXPECT_TRUE(SpansNamed(spans, "exec.serial").empty());
}

TEST_F(DatabaseTraceTest, ExportTraceJsonIsLoadableChromeTrace) {
  SessionContext ctx("11");
  ctx.set_trace(true);
  ASSERT_TRUE(
      db_.Execute("select grade from grades where student-id = '11'", ctx)
          .ok());
  std::string json = db_.ExportTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"fgac\""), std::string::npos);
}

}  // namespace
}  // namespace fgac
