#include "storage/database_state.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/chunk.h"
#include "storage/relation.h"

namespace fgac::storage {
namespace {

Row R(int64_t a, const std::string& b) {
  return {Value::Int(a), Value::String(b)};
}

TEST(RelationTest, MultisetEqualityIgnoresOrder) {
  Relation a({"x", "y"});
  a.AddRow(R(1, "a"));
  a.AddRow(R(2, "b"));
  Relation b({"u", "v"});  // names irrelevant
  b.AddRow(R(2, "b"));
  b.AddRow(R(1, "a"));
  EXPECT_TRUE(a.MultisetEquals(b));
}

TEST(RelationTest, MultisetEqualityCountsDuplicates) {
  Relation a({"x"});
  a.AddRow({Value::Int(1)});
  a.AddRow({Value::Int(1)});
  Relation b({"x"});
  b.AddRow({Value::Int(1)});
  EXPECT_FALSE(a.MultisetEquals(b));
  b.AddRow({Value::Int(1)});
  EXPECT_TRUE(a.MultisetEquals(b));
}

TEST(RelationTest, SortedRowsDeterministic) {
  Relation a({"x", "y"});
  a.AddRow(R(2, "b"));
  a.AddRow(R(1, "z"));
  a.AddRow(R(1, "a"));
  auto sorted = a.SortedRows();
  EXPECT_EQ(sorted[0][0], Value::Int(1));
  EXPECT_EQ(sorted[0][1], Value::String("a"));
  EXPECT_EQ(sorted[2][0], Value::Int(2));
}

TEST(RelationTest, ToStringRendersTable) {
  Relation a({"x", "name"});
  a.AddRow(R(1, "alice"));
  std::string s = a.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("'alice'"), std::string::npos);
  EXPECT_NE(s.find("(1 rows)"), std::string::npos);
}

TEST(TableDataTest, InsertAndErase) {
  TableData t(2);
  t.Insert(R(1, "a"));
  t.Insert(R(2, "b"));
  t.Insert(R(3, "c"));
  t.EraseIndices({0, 2});
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], Value::Int(2));
}

TEST(TableDataTest, EraseEmptyIsNoop) {
  TableData t(2);
  t.Insert(R(1, "a"));
  t.EraseIndices({});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableDataTest, EveryMutationBumpsVersion) {
  TableData t(2);
  uint64_t v = t.version();
  t.Insert(R(1, "a"));
  EXPECT_GT(t.version(), v);
  v = t.version();
  t.InsertRows({R(2, "b"), R(3, "c")});
  EXPECT_GT(t.version(), v);
  v = t.version();
  t.UpdateRow(0, R(9, "z"));
  EXPECT_GT(t.version(), v);
  v = t.version();
  t.EraseIndices({1});
  EXPECT_GT(t.version(), v);
  v = t.version();
  t.ReplaceAllRows({R(5, "e")});
  EXPECT_GT(t.version(), v);
  // A mutation after a scan (which rebuilds the columnar snapshot) still
  // bumps — the cached-verdict staleness bug was exactly a write path that
  // skipped this counter.
  exec::DataChunk chunk;
  Result<size_t> scanned = t.ScanChunk(0, 100, &chunk);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(*scanned, 1u);
  v = t.version();
  t.EraseIndices({0});
  EXPECT_GT(t.version(), v);
}

TEST(TableDataTest, ScanChunkIsSafeFromConcurrentReaders) {
  // Regression for the lazy columnar-rebuild race: many threads hit a dirty
  // table at once; the double-checked rebuild must hand every one of them a
  // consistent snapshot. Run under TSan in CI to catch the data race.
  constexpr size_t kRows = 4096;
  constexpr size_t kThreads = 8;
  TableData t(2);
  std::vector<Row> rows;
  for (size_t i = 0; i < kRows; ++i)
    rows.push_back(R(static_cast<int64_t>(i), "r"));
  t.InsertRows(std::move(rows));  // leaves the columnar snapshot dirty

  std::atomic<size_t> total{0};
  std::atomic<bool> torn{0};
  std::vector<std::thread> threads;
  for (size_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&t, &total, &torn] {
      size_t seen = 0;
      exec::DataChunk chunk;
      for (size_t start = 0; start < kRows; start += 512) {
        Result<size_t> scanned = t.ScanChunk(start, 512, &chunk);
        if (!scanned.ok()) {
          torn.store(true);
          break;
        }
        size_t n = *scanned;
        seen += n;
        for (size_t i = 0; i < n; ++i) {
          if (chunk.GetRow(i)[0] != Value::Int(static_cast<int64_t>(start + i)))
            torn.store(true);
        }
      }
      total.fetch_add(seen);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), kRows * kThreads);
  EXPECT_FALSE(torn.load());
}

TEST(DatabaseStateTest, DataVersionCoversAllTablesAndDrops) {
  DatabaseState state;
  ASSERT_TRUE(state.CreateTable("a", 2).ok());
  ASSERT_TRUE(state.CreateTable("b", 2).ok());
  uint64_t v0 = state.DataVersion();
  state.GetMutableTable("a")->Insert(R(1, "x"));
  uint64_t v1 = state.DataVersion();
  EXPECT_GT(v1, v0);
  state.GetMutableTable("b")->InsertRows({R(2, "y"), R(3, "z")});
  uint64_t v2 = state.DataVersion();
  EXPECT_GT(v2, v1);
  // Dropping a table must not let the aggregate version move backwards
  // (a lower version would resurrect stale cached verdicts).
  ASSERT_TRUE(state.DropTable("b").ok());
  EXPECT_GE(state.DataVersion(), v2);
}

TEST(DatabaseStateTest, CreateDropAndLookup) {
  DatabaseState state;
  ASSERT_TRUE(state.CreateTable("t", 2).ok());
  EXPECT_FALSE(state.CreateTable("t", 2).ok());
  EXPECT_TRUE(state.HasTable("t"));
  EXPECT_NE(state.GetTable("t"), nullptr);
  EXPECT_EQ(state.GetTable("nosuch"), nullptr);
  ASSERT_TRUE(state.DropTable("t").ok());
  EXPECT_FALSE(state.HasTable("t"));
}

TEST(DatabaseStateTest, CloneIsDeep) {
  DatabaseState state;
  ASSERT_TRUE(state.CreateTable("t", 2).ok());
  state.GetMutableTable("t")->Insert(R(1, "a"));
  DatabaseState copy = state.Clone();
  copy.GetMutableTable("t")->Insert(R(2, "b"));
  EXPECT_EQ(state.GetTable("t")->num_rows(), 1u);
  EXPECT_EQ(copy.GetTable("t")->num_rows(), 2u);
  EXPECT_EQ(state.TotalRows(), 1u);
}

}  // namespace
}  // namespace fgac::storage
