#include "storage/database_state.h"

#include <gtest/gtest.h>

#include "storage/relation.h"

namespace fgac::storage {
namespace {

Row R(int64_t a, const std::string& b) {
  return {Value::Int(a), Value::String(b)};
}

TEST(RelationTest, MultisetEqualityIgnoresOrder) {
  Relation a({"x", "y"});
  a.AddRow(R(1, "a"));
  a.AddRow(R(2, "b"));
  Relation b({"u", "v"});  // names irrelevant
  b.AddRow(R(2, "b"));
  b.AddRow(R(1, "a"));
  EXPECT_TRUE(a.MultisetEquals(b));
}

TEST(RelationTest, MultisetEqualityCountsDuplicates) {
  Relation a({"x"});
  a.AddRow({Value::Int(1)});
  a.AddRow({Value::Int(1)});
  Relation b({"x"});
  b.AddRow({Value::Int(1)});
  EXPECT_FALSE(a.MultisetEquals(b));
  b.AddRow({Value::Int(1)});
  EXPECT_TRUE(a.MultisetEquals(b));
}

TEST(RelationTest, SortedRowsDeterministic) {
  Relation a({"x", "y"});
  a.AddRow(R(2, "b"));
  a.AddRow(R(1, "z"));
  a.AddRow(R(1, "a"));
  auto sorted = a.SortedRows();
  EXPECT_EQ(sorted[0][0], Value::Int(1));
  EXPECT_EQ(sorted[0][1], Value::String("a"));
  EXPECT_EQ(sorted[2][0], Value::Int(2));
}

TEST(RelationTest, ToStringRendersTable) {
  Relation a({"x", "name"});
  a.AddRow(R(1, "alice"));
  std::string s = a.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("'alice'"), std::string::npos);
  EXPECT_NE(s.find("(1 rows)"), std::string::npos);
}

TEST(TableDataTest, InsertAndErase) {
  TableData t(2);
  t.Insert(R(1, "a"));
  t.Insert(R(2, "b"));
  t.Insert(R(3, "c"));
  t.EraseIndices({0, 2});
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], Value::Int(2));
}

TEST(TableDataTest, EraseEmptyIsNoop) {
  TableData t(2);
  t.Insert(R(1, "a"));
  t.EraseIndices({});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(DatabaseStateTest, CreateDropAndLookup) {
  DatabaseState state;
  ASSERT_TRUE(state.CreateTable("t", 2).ok());
  EXPECT_FALSE(state.CreateTable("t", 2).ok());
  EXPECT_TRUE(state.HasTable("t"));
  EXPECT_NE(state.GetTable("t"), nullptr);
  EXPECT_EQ(state.GetTable("nosuch"), nullptr);
  ASSERT_TRUE(state.DropTable("t").ok());
  EXPECT_FALSE(state.HasTable("t"));
}

TEST(DatabaseStateTest, CloneIsDeep) {
  DatabaseState state;
  ASSERT_TRUE(state.CreateTable("t", 2).ok());
  state.GetMutableTable("t")->Insert(R(1, "a"));
  DatabaseState copy = state.Clone();
  copy.GetMutableTable("t")->Insert(R(2, "b"));
  EXPECT_EQ(state.GetTable("t")->num_rows(), 1u);
  EXPECT_EQ(copy.GetTable("t")->num_rows(), 2u);
  EXPECT_EQ(state.TotalRows(), 1u);
}

}  // namespace
}  // namespace fgac::storage
