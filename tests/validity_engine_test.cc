// Direct tests of the ValidityChecker API: option toggles, diagnostics,
// constraint visibility, pruning behaviour, and engine lifecycle.

#include "core/validity.h"

#include <gtest/gtest.h>

#include "algebra/binder.h"
#include "core/auth_view.h"
#include "core/view_pruning.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::InstantiatedView;
using core::SessionContext;
using core::ValidityChecker;
using core::ValidityOptions;
using core::ValidityReport;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

class ValidityEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ctx_ = SessionContext("11");
  }

  algebra::PlanPtr Bind(const std::string& sql) {
    auto stmt = sql::Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto plan = db_.BindQuery(*stmt.value(), ctx_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? plan.value() : nullptr;
  }

  std::vector<InstantiatedView> Views(std::initializer_list<const char*> names) {
    std::vector<InstantiatedView> out;
    for (const char* name : names) {
      auto view = core::InstantiateView(db_.catalog(),
                                        *db_.catalog().GetView(name), ctx_);
      EXPECT_TRUE(view.ok()) << view.status().ToString();
      if (view.ok()) out.push_back(std::move(view).value());
    }
    return out;
  }

  ValidityReport Check(const std::string& sql,
                       std::initializer_list<const char*> views,
                       ValidityOptions options = {}) {
    ValidityChecker checker(db_.catalog(), &db_.state(), options);
    auto report = checker.Check(Bind(sql), Views(views));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report.value() : ValidityReport{};
  }

  Database db_;
  SessionContext ctx_{"11"};
};

TEST_F(ValidityEngineTest, CheckerIsSingleUse) {
  ValidityChecker checker(db_.catalog(), &db_.state(), {});
  auto views = Views({"mygrades"});
  ASSERT_TRUE(checker.Check(Bind("select * from grades"), views).ok());
  auto second = checker.Check(Bind("select * from grades"), views);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ValidityEngineTest, ReportDiagnosticsPopulated) {
  ValidityReport report =
      Check("select grade from grades where student-id = '11'", {"mygrades"});
  EXPECT_TRUE(report.valid);
  EXPECT_TRUE(report.unconditional);
  EXPECT_GT(report.memo_groups, 0u);
  EXPECT_GT(report.memo_exprs, 0u);
  EXPECT_EQ(report.views_considered, 1u);
  EXPECT_FALSE(report.justification.empty());
}

TEST_F(ValidityEngineTest, RejectionReportsReason) {
  ValidityReport report = Check("select * from grades", {"mygrades"});
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.reason.find("authorization view"), std::string::npos);
}

TEST_F(ValidityEngineTest, NoViewsMeansOnlyConstantsValid) {
  ValidityReport report = Check("select * from grades", {});
  EXPECT_FALSE(report.valid);
  // A pure constant query carries no information and is always valid.
  ValidityReport constant = Check("select 1 + 1", {});
  EXPECT_TRUE(constant.valid);
  EXPECT_TRUE(constant.unconditional);
}

TEST_F(ValidityEngineTest, ConditionalRulesNeedDatabaseState) {
  // Without a state, C3 cannot probe: the Example 4.4 query is rejected.
  ValidityChecker checker(db_.catalog(), /*state=*/nullptr, {});
  auto report = checker.Check(Bind("select * from grades "
                                   "where course-id = 'cs101'"),
                              Views({"costudentgrades", "myregistrations"}));
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().valid);
}

TEST_F(ValidityEngineTest, ConditionalRulesCanBeDisabled) {
  ValidityOptions options;
  options.enable_conditional_rules = false;
  ValidityReport report = Check("select * from grades where course-id = 'cs101'",
                                {"costudentgrades", "myregistrations"}, options);
  EXPECT_FALSE(report.valid);
}

TEST_F(ValidityEngineTest, C3ProbesAreCounted) {
  ValidityReport report = Check("select * from grades where course-id = 'cs101'",
                                {"costudentgrades", "myregistrations"});
  EXPECT_TRUE(report.valid);
  EXPECT_GT(report.c3_probes, 0u);
}

TEST_F(ValidityEngineTest, AccessPatternsCanBeDisabled) {
  ValidityOptions options;
  options.enable_access_patterns = false;
  ValidityReport report = Check("select * from grades where student-id = '12'",
                                {"singlegrade"}, options);
  EXPECT_FALSE(report.valid);
  ValidityReport enabled =
      Check("select * from grades where student-id = '12'", {"singlegrade"});
  EXPECT_TRUE(enabled.valid);
}

TEST_F(ValidityEngineTest, InvisibleConstraintDoesNotTestify) {
  // Section 4.2: integrity constraints the user may not know must not be
  // used, lest acceptance leak their existence.
  ASSERT_TRUE(db_.ExecuteScript("insert into registered values ('14', 'ee150');"
                                "create inclusion dependency esr "
                                "on students (student-id) "
                                "references registered (student-id)")
                  .ok());
  const std::string q = "select distinct name, type from students";
  ValidityReport visible = Check(q, {"regstudents"});
  EXPECT_TRUE(visible.valid);

  // Hide the constraint and re-check: U3a must not fire.
  for (auto& dep :
       const_cast<std::vector<catalog::InclusionDependency>&>(
           db_.catalog().constraints())) {
    if (dep.name == "esr") dep.visible_to_users = false;
  }
  ValidityReport hidden = Check(q, {"regstudents"});
  EXPECT_FALSE(hidden.valid);
}

TEST_F(ValidityEngineTest, PruningFollowsConstraintsBackward) {
  // Regression: the reachability closure used to follow inclusion
  // dependencies only src→dst. With emp.id ⊆ dept.id declared, a view over
  // emp can testify for a query over dept (U3 joins dept back against emp
  // through the dependency), so pruning the emp view loses sound proofs.
  ASSERT_TRUE(db_.ExecuteScript(
                     "create table emp (id int not null primary key);"
                     "create table dept (id int not null primary key);"
                     "create inclusion dependency emp_dept on emp (id) "
                     "references dept (id);"
                     "create authorization view myemp as select * from emp")
                  .ok());
  auto views = Views({"myemp"});
  auto kept = core::PruneViews(views, Bind("select * from dept"),
                               /*complex_rules_enabled=*/true, &db_.catalog());
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0]->name, "myemp");
}

TEST_F(ValidityEngineTest, ReportCountsCreatedNotLiveMemoSize) {
  // chain3 fixture: bt0 ⋈ bt1 ⋈ bt2 provable from a pairwise view plus a
  // whole-table view. Expansion merges many groups, so the created counts
  // (the work the search performed) must exceed the post-pruning live memo
  // size — and the report must pin the created counts, not the live ones.
  ASSERT_TRUE(db_.ExecuteScript(
                     "create table bt0 (k int not null primary key, v int);"
                     "create table bt1 (k int not null primary key, v int);"
                     "create table bt2 (k int not null primary key, v int);"
                     "create authorization view pair01 as "
                     "select * from bt0, bt1 where bt0.k = bt1.k;"
                     "create authorization view all2 as select * from bt2")
                  .ok());
  // Exhaustive mode: full saturation guarantees unification actually
  // merges groups, so created and live counts must diverge.
  ValidityOptions options;
  options.goal_directed_search = false;
  ValidityChecker checker(db_.catalog(), &db_.state(), options);
  auto report = checker.Check(Bind("select * from bt0, bt1, bt2 "
                                   "where bt0.k = bt1.k and bt1.k = bt2.k"),
                              Views({"pair01", "all2"}));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().valid);
  const optimizer::Memo& memo = checker.memo_for_testing();
  EXPECT_EQ(report.value().memo_groups, memo.num_groups());
  EXPECT_EQ(report.value().memo_exprs, memo.num_exprs());
  // The pin has teeth only if unification actually killed something.
  EXPECT_GT(memo.num_exprs(), memo.num_live_exprs());
}

TEST_F(ValidityEngineTest, GoalDirectedStopsWithZeroExpansionOnVerbatimView) {
  // The query IS an authorization view: hash-cons unification alone proves
  // the root, so the goal-directed search must not expand at all.
  ValidityReport report =
      Check("select * from grades where student-id = '11'", {"mygrades"});
  EXPECT_TRUE(report.valid);
  EXPECT_TRUE(report.unconditional);
  EXPECT_EQ(report.expansion_passes, 0u);
}

TEST_F(ValidityEngineTest, GoalDirectedFastRejectsUnprovableQuery) {
  // No view is marked anywhere, so no inference rule can ever produce a
  // mark: the goal-directed search rejects without expanding.
  ValidityReport report = Check("select * from grades", {});
  EXPECT_FALSE(report.valid);
  EXPECT_EQ(report.expansion_passes, 0u);

  // The exhaustive reference still expands (and still rejects).
  ValidityOptions exhaustive;
  exhaustive.goal_directed_search = false;
  ValidityReport full = Check("select * from grades", {}, exhaustive);
  EXPECT_FALSE(full.valid);
  EXPECT_GT(full.expansion_passes, 0u);
}

TEST_F(ValidityEngineTest, PruningKeepsConstraintConnectedViews) {
  // A registration view matters for a grades query when a grades view
  // joins registered (closure through views).
  auto views = Views({"costudentgrades", "myregistrations", "avggrades"});
  auto kept = core::PruneViews(views, Bind("select * from grades "
                                           "where course-id = 'cs101'"),
                               /*complex_rules_enabled=*/true, &db_.catalog());
  EXPECT_EQ(kept.size(), 3u);
}

TEST_F(ValidityEngineTest, PruningDropsDisconnectedViews) {
  ASSERT_TRUE(db_.ExecuteScript(
                     "create table audit (id int not null primary key);"
                     "create authorization view auditview as "
                     "select * from audit")
                  .ok());
  auto views = Views({"mygrades", "auditview"});
  auto kept =
      core::PruneViews(views, Bind("select * from grades"),
                       /*complex_rules_enabled=*/true, &db_.catalog());
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0]->name, "mygrades");
}

TEST_F(ValidityEngineTest, BasicModePruningRequiresSubset) {
  auto views = Views({"mygrades", "costudentgrades"});
  // Query over grades only: in basic mode costudentgrades (grades ⋈
  // registered) cannot unify with any subexpression, so it is pruned.
  auto kept = core::PruneViews(views, Bind("select * from grades"),
                               /*complex_rules_enabled=*/false, &db_.catalog());
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0]->name, "mygrades");
}

TEST_F(ValidityEngineTest, PruningCanBeDisabled) {
  ValidityOptions options;
  options.prune_views = false;
  ValidityReport report =
      Check("select grade from grades where student-id = '11'",
            {"mygrades", "myregistrations"}, options);
  EXPECT_TRUE(report.valid);
  EXPECT_EQ(report.views_pruned, 0u);
}

TEST_F(ValidityEngineTest, ExpansionBudgetBoundsWork) {
  ValidityOptions options;
  options.expand.max_exprs = 40;  // absurdly tight
  // Soundness is preserved under any budget: the simple U1 case still
  // passes (views inserted and marked regardless of expansion).
  ValidityReport report =
      Check("select * from grades where student-id = '11'", {"mygrades"},
            options);
  EXPECT_TRUE(report.valid);
}

TEST_F(ValidityEngineTest, OrderByAndLimitCompose) {
  // U2: sort/limit over a valid query is valid (information-monotone ops).
  ValidityReport report =
      Check("select grade from grades where student-id = '11' "
            "order by grade desc limit 1",
            {"mygrades"});
  EXPECT_TRUE(report.valid);
  EXPECT_TRUE(report.unconditional);
}

TEST_F(ValidityEngineTest, InstantiationFailsOnMissingParameter) {
  // A view using $time cannot instantiate without the session parameter.
  ASSERT_TRUE(db_.ExecuteScript("create authorization view timed as "
                                "select * from grades where grade = $clock")
                  .ok());
  auto view = core::InstantiateView(db_.catalog(),
                                    *db_.catalog().GetView("timed"), ctx_);
  ASSERT_FALSE(view.ok());
  SessionContext with_param("11");
  with_param.SetParam("clock", Value::Double(4.0));
  EXPECT_TRUE(core::InstantiateView(db_.catalog(),
                                    *db_.catalog().GetView("timed"), with_param)
                  .ok());
}

TEST_F(ValidityEngineTest, MultipleViewsJointlyTestify) {
  // Neither view alone suffices; together they do (U2 over a join).
  ASSERT_TRUE(db_.ExecuteScript(
                     "create authorization view just_students as "
                     "select * from students;"
                     "create authorization view just_courses as "
                     "select * from courses")
                  .ok());
  EXPECT_FALSE(
      Check("select students.name, courses.name from students, courses",
            {"just_students"})
          .valid);
  EXPECT_TRUE(
      Check("select students.name, courses.name from students, courses",
            {"just_students", "just_courses"})
          .valid);
}

}  // namespace
}  // namespace fgac
