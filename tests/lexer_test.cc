#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace fgac::sql {
namespace {

std::vector<Token> MustLex(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? tokens.value() : std::vector<Token>();
}

TEST(LexerTest, KeywordsAndIdentifiersLowercased) {
  auto tokens = MustLex("SELECT Grades FROM MyTable");
  ASSERT_EQ(tokens.size(), 5u);  // incl. EOF
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "grades");
  EXPECT_EQ(tokens[3].text, "mytable");
}

TEST(LexerTest, HyphenatedIdentifiers) {
  // The paper's schema style: student-id is one identifier...
  auto tokens = MustLex("student-id");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "student-id");
  // ...but spaced subtraction still lexes as three tokens.
  tokens = MustLex("a - b");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kMinus);
}

TEST(LexerTest, NumbersIntDoubleExponent) {
  auto tokens = MustLex("42 3.5 1e3 2.5e-1");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDoubleLit);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDoubleLit);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.25);
}

TEST(LexerTest, StringLiteralsWithEscapedQuote) {
  auto tokens = MustLex("'o''brien'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLit);
  EXPECT_EQ(tokens[0].text, "o'brien");
}

TEST(LexerTest, Parameters) {
  auto tokens = MustLex("$user-id $$1x");
  EXPECT_EQ(tokens[0].kind, TokenKind::kParam);
  EXPECT_EQ(tokens[0].text, "user-id");
  EXPECT_EQ(tokens[1].kind, TokenKind::kAccessParam);
  EXPECT_EQ(tokens[1].text, "1x");
}

TEST(LexerTest, DollarParamStartingWithDigit) {
  auto tokens = MustLex("$$1");
  EXPECT_EQ(tokens[0].kind, TokenKind::kAccessParam);
  EXPECT_EQ(tokens[0].text, "1");
}

TEST(LexerTest, OperatorsAndPunct) {
  auto tokens = MustLex("<> <= >= != = < > ( ) , . ; * + / %");
  EXPECT_EQ(tokens[0].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[1].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[4].kind, TokenKind::kEq);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = MustLex("select -- line comment\n 1 /* block\ncomment */ + 2");
  // select, 1, +, 2, eof
  ASSERT_EQ(tokens.size(), 5u);
}

TEST(LexerTest, ErrorsCarryPosition) {
  Lexer lexer("select @");
  Result<std::vector<Token>> r = lexer.Tokenize();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(LexerTest, UnterminatedString) {
  Lexer lexer("'abc");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, QuotedIdentifier) {
  auto tokens = MustLex("\"My Table\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "my table");
}

}  // namespace
}  // namespace fgac::sql
