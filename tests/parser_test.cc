#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/printer.h"

namespace fgac::sql {
namespace {

std::shared_ptr<const SelectStmt> MustSelect(const std::string& text) {
  Result<std::shared_ptr<const SelectStmt>> r = Parser::ParseSelect(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
  return r.ok() ? r.value() : nullptr;
}

StmtPtr MustStmt(const std::string& text) {
  Result<StmtPtr> r = Parser::ParseStatement(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(ParserTest, SimpleSelect) {
  auto s = MustSelect("select a, b from t where a = 1");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->items.size(), 2u);
  EXPECT_EQ(s->from.size(), 1u);
  ASSERT_NE(s->where, nullptr);
  EXPECT_EQ(s->where->kind, ExprKind::kBinary);
}

TEST(ParserTest, SelectStarAndQualifiedStar) {
  auto s = MustSelect("select *, t.* from t");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->items[0].is_star);
  EXPECT_TRUE(s->items[1].is_star);
  EXPECT_EQ(s->items[1].star_qualifier, "t");
}

TEST(ParserTest, DistinctGroupHavingOrderLimit) {
  auto s = MustSelect(
      "select distinct course-id, avg(grade) as g from grades "
      "group by course-id having count(*) >= 2 order by g desc limit 5");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->distinct);
  EXPECT_EQ(s->group_by.size(), 1u);
  ASSERT_NE(s->having, nullptr);
  EXPECT_EQ(s->order_by.size(), 1u);
  EXPECT_TRUE(s->order_by[0].descending);
  EXPECT_EQ(s->limit, 5);
  EXPECT_EQ(s->items[1].alias, "g");
}

TEST(ParserTest, ExplicitJoin) {
  auto s = MustSelect(
      "select * from a join b on a.x = b.y inner join c on b.z = c.w");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->from.size(), 1u);
  EXPECT_EQ(s->from[0]->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(s->from[0]->join_left->kind, TableRef::Kind::kJoin);
}

TEST(ParserTest, CommaJoinWithAliases) {
  auto s = MustSelect("select g.grade from grades g, registered as r");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->from.size(), 2u);
  EXPECT_EQ(s->from[0]->alias, "g");
  EXPECT_EQ(s->from[1]->alias, "r");
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = Parser::ParseExpression("a + b * c = d or e and not f");
  ASSERT_TRUE(e.ok());
  // Top is OR.
  EXPECT_EQ(e.value()->bin_op, BinOp::kOr);
  EXPECT_EQ(e.value()->right->bin_op, BinOp::kAnd);
  // a + (b*c)
  EXPECT_EQ(e.value()->left->left->bin_op, BinOp::kAdd);
  EXPECT_EQ(e.value()->left->left->right->bin_op, BinOp::kMul);
}

TEST(ParserTest, InBetweenLikeIsNull) {
  EXPECT_TRUE(Parser::ParseExpression("x in (1, 2, 3)").ok());
  EXPECT_TRUE(Parser::ParseExpression("x not in (1)").ok());
  EXPECT_TRUE(Parser::ParseExpression("x between 1 and 10").ok());
  EXPECT_TRUE(Parser::ParseExpression("name like 'a%'").ok());
  EXPECT_TRUE(Parser::ParseExpression("x is null").ok());
  EXPECT_TRUE(Parser::ParseExpression("x is not null").ok());
}

TEST(ParserTest, Parameters) {
  auto e = Parser::ParseExpression("student-id = $user-id");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->right->kind, ExprKind::kParam);
  EXPECT_EQ(e.value()->right->param_name, "user-id");
  e = Parser::ParseExpression("student-id = $$1");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->right->kind, ExprKind::kAccessParam);
}

TEST(ParserTest, CreateTableWithConstraints) {
  auto stmt = MustStmt(R"(
    create table grades (
      student-id varchar not null references students,
      course-id varchar not null,
      grade double,
      primary key (student-id, course-id),
      foreign key (course-id) references courses (course-id)
    ))");
  ASSERT_NE(stmt, nullptr);
  auto* ct = static_cast<const CreateTableStmt*>(stmt.get());
  EXPECT_EQ(ct->columns.size(), 3u);
  EXPECT_EQ(ct->primary_key.size(), 2u);
  EXPECT_EQ(ct->foreign_keys.size(), 2u);
}

TEST(ParserTest, CreateAuthorizationView) {
  auto stmt = MustStmt(
      "create authorization view mygrades as "
      "select * from grades where student-id = $user-id");
  ASSERT_NE(stmt, nullptr);
  auto* cv = static_cast<const CreateViewStmt*>(stmt.get());
  EXPECT_TRUE(cv->authorization);
  EXPECT_EQ(cv->name, "mygrades");
}

TEST(ParserTest, CreateInclusionDependency) {
  auto stmt = MustStmt(
      "create inclusion dependency ft_reg on students (student-id) "
      "where type = 'fulltime' references registered (student-id)");
  ASSERT_NE(stmt, nullptr);
  auto* ci = static_cast<const CreateInclusionStmt*>(stmt.get());
  EXPECT_EQ(ci->src_table, "students");
  ASSERT_NE(ci->src_where, nullptr);
  EXPECT_EQ(ci->dst_table, "registered");
}

TEST(ParserTest, DmlStatements) {
  EXPECT_NE(MustStmt("insert into t values (1, 'a'), (2, 'b')"), nullptr);
  EXPECT_NE(MustStmt("insert into t (a, b) values (1, 2)"), nullptr);
  EXPECT_NE(MustStmt("update t set a = a + 1 where b = 2"), nullptr);
  EXPECT_NE(MustStmt("delete from t where a = 1"), nullptr);
}

TEST(ParserTest, GrantAndAuthorize) {
  EXPECT_NE(MustStmt("grant select on mygrades to alice"), nullptr);
  auto stmt = MustStmt(
      "authorize update on students (address) "
      "where old(students.student-id) = $user-id to alice");
  ASSERT_NE(stmt, nullptr);
  auto* a = static_cast<const AuthorizeStmt*>(stmt.get());
  EXPECT_EQ(a->op, AuthorizeStmt::Op::kUpdate);
  EXPECT_EQ(a->columns.size(), 1u);
  EXPECT_EQ(a->grantee, "alice");
}

TEST(ParserTest, PreparedStatements) {
  auto stmt = MustStmt("prepare q as select grade from grades "
                       "where course-id = $1 and student-id = $user-id");
  ASSERT_NE(stmt, nullptr);
  auto* p = static_cast<const PrepareStmt*>(stmt.get());
  EXPECT_EQ(p->kind(), StmtKind::kPrepare);
  EXPECT_EQ(p->name, "q");
  ASSERT_NE(p->select, nullptr);

  auto exec = MustStmt("execute q ('cs101', 2)");
  ASSERT_NE(exec, nullptr);
  auto* e = static_cast<const ExecuteStmt*>(exec.get());
  EXPECT_EQ(e->name, "q");
  EXPECT_EQ(e->args.size(), 2u);
  // No-argument EXECUTE omits the parens.
  auto* e0 = static_cast<const ExecuteStmt*>(MustStmt("execute q").get());
  EXPECT_EQ(e0->args.size(), 0u);

  auto* d = static_cast<const DeallocateStmt*>(
      MustStmt("deallocate q").get());
  EXPECT_EQ(d->name, "q");
  auto* all = static_cast<const DeallocateStmt*>(
      MustStmt("deallocate all").get());
  EXPECT_TRUE(all->name.empty());

  EXPECT_FALSE(Parser::ParseStatement("prepare q select 1").ok());
  EXPECT_FALSE(Parser::ParseStatement("prepare as select 1").ok());
  EXPECT_FALSE(Parser::ParseStatement("execute q (1,").ok());
  EXPECT_FALSE(Parser::ParseStatement("deallocate").ok());
}

TEST(ParserTest, ExplainExecuteComposesWithPreparedStatements) {
  auto stmt = MustStmt("explain analyze execute q ('cs101', 2)");
  ASSERT_NE(stmt, nullptr);
  auto* ex = static_cast<const ExplainStmt*>(stmt.get());
  EXPECT_EQ(ex->kind(), StmtKind::kExplain);
  EXPECT_TRUE(ex->analyze);
  EXPECT_EQ(ex->select, nullptr);
  ASSERT_NE(ex->execute, nullptr);
  EXPECT_EQ(ex->execute->name, "q");
  EXPECT_EQ(ex->execute->args.size(), 2u);
  // The printed form re-parses to the same statement.
  std::string printed = StmtToSql(*stmt);
  EXPECT_EQ(printed, "EXPLAIN ANALYZE EXECUTE q ('cs101', 2)");
  auto again = MustStmt(printed);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(StmtToSql(*again), printed);

  auto plain_stmt = MustStmt("explain execute q");
  ASSERT_NE(plain_stmt, nullptr);
  auto* plain = static_cast<const ExplainStmt*>(plain_stmt.get());
  EXPECT_FALSE(plain->analyze);
  ASSERT_NE(plain->execute, nullptr);
  EXPECT_EQ(plain->execute->args.size(), 0u);
  EXPECT_EQ(StmtToSql(*plain), "EXPLAIN EXECUTE q");

  EXPECT_FALSE(Parser::ParseStatement("explain analyze execute").ok());
  EXPECT_FALSE(Parser::ParseStatement("explain execute q (1,").ok());
}

TEST(ParserTest, RejectsNestedSubqueries) {
  // The paper's Section 5 assumption, surfaced as NotImplemented.
  auto r = Parser::ParseStatement("select * from (select * from t)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
  r = Parser::ParseStatement("select * from t where x in (select y from u)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
}

TEST(ParserTest, SyntaxErrorsReported) {
  EXPECT_FALSE(Parser::ParseStatement("select from where").ok());
  EXPECT_FALSE(Parser::ParseStatement("selec 1").ok());
  EXPECT_FALSE(Parser::ParseStatement("select 1 extra_garbage, ,").ok());
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto r = Parser::ParseScript("select 1; select 2;; select 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ParserRoundTripTest, PrinterOutputReparses) {
  const char* queries[] = {
      "select a, b from t where a = 1 and b <> 'x'",
      "select distinct course-id, avg(grade) from grades group by course-id "
      "having count(*) >= 2 order by 1 desc limit 3",
      "select * from a join b on a.x = b.y where a.z in (1, 2)",
      "select count(*) from t where x between 1 and 5 or name like 'a%'",
  };
  for (const char* q : queries) {
    auto first = MustSelect(q);
    ASSERT_NE(first, nullptr);
    std::string printed = SelectToSql(*first);
    auto second = MustSelect(printed);
    ASSERT_NE(second, nullptr) << "printed form: " << printed;
    EXPECT_EQ(printed, SelectToSql(*second)) << "unstable print: " << printed;
  }
}

}  // namespace
}  // namespace fgac::sql
