// End-to-end storyline: a semester at the university, exercising DDL,
// policies, grants/revokes, all three enforcement modes, conditional
// validity tracking data changes, deny-style negation views (paper
// Section 7), and the monotonicity of validity in the granted view set.

#include <gtest/gtest.h>

#include "core/auth_view.h"
#include "core/database.h"
#include "sql/parser.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

SessionContext NonTruman(const std::string& user) {
  SessionContext ctx(user);
  ctx.set_mode(EnforcementMode::kNonTruman);
  return ctx;
}

TEST(IntegrationTest, SemesterStoryline) {
  Database db;
  SetupUniversity(&db);
  CreateUniversityViews(&db);
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    grant select on mygrades to student_role;
    grant select on costudentgrades to student_role;
    grant select on myregistrations to student_role;
    authorize insert on registered
      where registered.student-id = $user-id to student_role;
    authorize delete on registered
      where registered.student-id = $user-id to student_role;
  )sql")
                  .ok());
  db.catalog().GrantRole("student_role", "11");
  db.catalog().GrantRole("student_role", "12");

  SessionContext alice = NonTruman("11");
  SessionContext bob = NonTruman("12");

  // Week 1: alice can see her grades, bob his (disjoint slices).
  auto a = db.Execute("select grade from grades where student-id = '11'", alice);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().relation.num_rows(), 2u);
  auto b = db.Execute("select grade from grades where student-id = '12'", bob);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().relation.num_rows(), 1u);
  // Cross-access rejected both ways.
  EXPECT_FALSE(
      db.Execute("select grade from grades where student-id = '12'", alice)
          .ok());
  EXPECT_FALSE(
      db.Execute("select grade from grades where student-id = '11'", bob).ok());

  // Week 2: alice registers for ee150 herself (Section 4.4) — and the
  // previously invalid "all ee150 grades" query becomes conditionally
  // valid because her registration is now visible.
  const std::string ee150 = "select * from grades where course-id = 'ee150'";
  EXPECT_FALSE(db.Execute(ee150, alice).ok());
  ASSERT_TRUE(
      db.Execute("insert into registered values ('11', 'ee150')", alice).ok());
  auto after = db.Execute(ee150, alice);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after.value().validity.unconditional);

  // Week 3: she drops the course; the permission disappears with the data.
  ASSERT_TRUE(db.Execute("delete from registered where student-id = '11' "
                         "and course-id = 'ee150'",
                         alice)
                  .ok());
  EXPECT_FALSE(db.Execute(ee150, alice).ok());

  // Finals: the registrar revokes the co-student view from the role; only
  // own-grade access remains.
  ASSERT_TRUE(
      db.ExecuteAsAdmin("revoke select on costudentgrades from student_role")
          .ok());
  EXPECT_FALSE(
      db.Execute("select * from grades where course-id = 'cs101'", alice).ok());
  EXPECT_TRUE(
      db.Execute("select grade from grades where student-id = '11'", alice)
          .ok());
}

TEST(IntegrationTest, DenySemanticsViaNegationView) {
  // Paper Section 7: "It is straightforward to create authorization views
  // with negation conditions to implement (and generalize) deny-lists."
  Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    create table documents (
      doc-id varchar not null primary key,
      level varchar not null,
      body varchar not null);
    insert into documents values
      ('d1', 'public', 'hello'), ('d2', 'secret', 'xyz'),
      ('d3', 'public', 'world');
    create authorization view nonsecret as
      select * from documents where level <> 'secret';
    grant select on nonsecret to reader;
  )sql")
                  .ok());
  SessionContext reader = NonTruman("reader");
  // Anything implying the deny predicate passes...
  auto ok = db.Execute(
      "select body from documents where level = 'public'", reader);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().relation.num_rows(), 2u);
  EXPECT_TRUE(
      db.Execute("select * from documents where level <> 'secret'", reader)
          .ok());
  // ...while the denied slice, and the whole table, are rejected.
  EXPECT_FALSE(
      db.Execute("select body from documents where level = 'secret'", reader)
          .ok());
  EXPECT_FALSE(db.Execute("select count(*) from documents", reader).ok());
}

TEST(IntegrationTest, ValidityIsMonotoneInGrantedViews) {
  // Granting MORE views can only widen the accepted set: any query valid
  // under a subset of the views stays valid under the full set.
  Database db;
  SetupUniversity(&db);
  CreateUniversityViews(&db);
  SessionContext ctx = NonTruman("11");
  auto all_views = core::InstantiateAvailableViews(db.catalog(), ctx);
  // (No grants yet — instantiate explicitly.)
  std::vector<core::InstantiatedView> views;
  for (const char* name :
       {"mygrades", "myregistrations", "avggrades", "regstudents"}) {
    auto v = core::InstantiateView(db.catalog(), *db.catalog().GetView(name),
                                   ctx);
    ASSERT_TRUE(v.ok());
    views.push_back(std::move(v).value());
  }
  fgac::testing::QueryGenerator gen(99);
  int compared = 0;
  for (int i = 0; i < 20; ++i) {
    std::string sql = gen.NextQuery();
    auto stmt = sql::Parser::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok());
    auto plan = db.BindQuery(*stmt.value(), ctx);
    if (!plan.ok()) continue;
    // Subset: first two views. Full: all four.
    std::vector<core::InstantiatedView> subset(views.begin(),
                                               views.begin() + 2);
    core::ValidityChecker c1(db.catalog(), &db.state(), {});
    core::ValidityChecker c2(db.catalog(), &db.state(), {});
    auto r1 = c1.Check(plan.value(), subset);
    auto r2 = c2.Check(plan.value(), views);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    if (r1.value().valid) {
      EXPECT_TRUE(r2.value().valid)
          << "granting more views lost validity for: " << sql;
    }
    ++compared;
  }
  EXPECT_GT(compared, 10);
}

TEST(IntegrationTest, TrumanAndNonTrumanAgreeOnFullyAuthorizedQueries) {
  // When the policy view IS the whole table, all three modes agree.
  Database db;
  SetupUniversity(&db);
  ASSERT_TRUE(db.ExecuteScript("create authorization view allgrades as "
                               "select * from grades;"
                               "grant select on allgrades to 11")
                  .ok());
  ASSERT_TRUE(db.catalog().SetTrumanView("grades", "allgrades").ok());
  const std::string q = "select avg(grade) from grades";
  Value answers[3];
  int i = 0;
  for (EnforcementMode mode :
       {EnforcementMode::kNone, EnforcementMode::kTruman,
        EnforcementMode::kNonTruman}) {
    SessionContext ctx("11");
    ctx.set_mode(mode);
    auto r = db.Execute(q, ctx);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    answers[i++] = r.value().relation.rows()[0][0];
  }
  EXPECT_EQ(answers[0], answers[1]);
  EXPECT_EQ(answers[1], answers[2]);
}

}  // namespace
}  // namespace fgac
