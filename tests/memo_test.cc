#include "optimizer/memo.h"

#include <gtest/gtest.h>

#include "algebra/normalize.h"
#include "algebra/plan_hash.h"
#include "algebra/reference_eval.h"

namespace fgac::optimizer {
namespace {

using algebra::MakeColumn;
using algebra::MakeGet;
using algebra::MakeJoin;
using algebra::MakeLiteralScalar;
using algebra::MakeSelect;
using algebra::PlanKind;
using algebra::PlanPtr;
using algebra::ScalarPtr;

ScalarPtr EqLit(int slot, int64_t v) {
  return algebra::NormalizeScalar(algebra::MakeBinaryScalar(
      sql::BinOp::kEq, MakeColumn(slot), MakeLiteralScalar(Value::Int(v))));
}

PlanPtr Table(const std::string& name) { return MakeGet(name, {"a", "b"}); }

TEST(MemoTest, IdenticalPlansUnify) {
  Memo memo;
  GroupId g1 = memo.InsertPlan(MakeSelect({EqLit(0, 1)}, Table("t")));
  GroupId g2 = memo.InsertPlan(MakeSelect({EqLit(0, 1)}, Table("t")));
  EXPECT_EQ(memo.Find(g1), memo.Find(g2));
  EXPECT_EQ(memo.num_live_groups(), 2u);  // Get(t) and the Select
}

TEST(MemoTest, DifferentPlansDistinct) {
  Memo memo;
  GroupId g1 = memo.InsertPlan(MakeSelect({EqLit(0, 1)}, Table("t")));
  GroupId g2 = memo.InsertPlan(MakeSelect({EqLit(0, 2)}, Table("t")));
  EXPECT_NE(memo.Find(g1), memo.Find(g2));
}

TEST(MemoTest, SharedSubexpressionsShareGroups) {
  Memo memo;
  PlanPtr t = Table("t");
  memo.InsertPlan(MakeSelect({EqLit(0, 1)}, t));
  memo.InsertPlan(MakeSelect({EqLit(1, 2)}, t));
  // Groups: Get(t), two selects.
  EXPECT_EQ(memo.num_live_groups(), 3u);
}

TEST(MemoTest, InsertIntoTargetGroupMerges) {
  Memo memo;
  GroupId g1 = memo.InsertPlan(MakeSelect({EqLit(0, 1)}, Table("t")));
  GroupId g2 = memo.InsertPlan(MakeSelect({EqLit(0, 2)}, Table("u")));
  ASSERT_NE(memo.Find(g1), memo.Find(g2));
  // Claim the two are equivalent by inserting g2's expression into g1.
  MemoExpr dup;
  dup.kind = PlanKind::kSelect;
  dup.predicates = {EqLit(0, 2)};
  dup.children = {memo.InsertPlan(Table("u"))};
  memo.InsertExpr(std::move(dup), g1);
  EXPECT_EQ(memo.Find(g1), memo.Find(g2));
}

TEST(MemoTest, CongruenceClosureCascades) {
  // If groups A and B merge, parents Select(P, A) and Select(P, B) must
  // merge too.
  Memo memo;
  GroupId ta = memo.InsertPlan(Table("t"));
  GroupId tb = memo.InsertPlan(Table("u"));
  GroupId pa = memo.InsertPlan(MakeSelect({EqLit(0, 1)}, Table("t")));
  GroupId pb = memo.InsertPlan(MakeSelect({EqLit(0, 1)}, Table("u")));
  ASSERT_NE(memo.Find(pa), memo.Find(pb));
  memo.Unify(ta, tb);
  EXPECT_EQ(memo.Find(pa), memo.Find(pb));
}

TEST(MemoTest, ValidityMarks) {
  Memo memo;
  GroupId g = memo.InsertPlan(Table("t"));
  EXPECT_FALSE(memo.IsValidU(g));
  EXPECT_FALSE(memo.IsValidC(g));
  memo.MarkValidC(g);
  EXPECT_TRUE(memo.IsValidC(g));
  EXPECT_FALSE(memo.IsValidU(g));
  memo.MarkValidU(g);
  EXPECT_TRUE(memo.IsValidU(g));  // C1: U implies C
}

TEST(MemoTest, MergePreservesValidity) {
  Memo memo;
  GroupId g1 = memo.InsertPlan(Table("t"));
  GroupId g2 = memo.InsertPlan(Table("u"));
  memo.MarkValidU(g2);
  memo.Unify(g1, g2);
  EXPECT_TRUE(memo.IsValidU(g1));
}

TEST(MemoTest, TrivialSelectCollapses) {
  Memo memo;
  GroupId t = memo.InsertPlan(Table("t"));
  MemoExpr empty_select;
  empty_select.kind = PlanKind::kSelect;
  empty_select.children = {t};
  GroupId g = memo.InsertExpr(std::move(empty_select));
  EXPECT_EQ(memo.Find(g), memo.Find(t));
}

TEST(MemoTest, IdentityProjectCollapses) {
  Memo memo;
  GroupId t = memo.InsertPlan(Table("t"));
  MemoExpr ident;
  ident.kind = PlanKind::kProject;
  ident.exprs = {MakeColumn(0), MakeColumn(1)};
  ident.children = {t};
  GroupId g = memo.InsertExpr(std::move(ident));
  EXPECT_EQ(memo.Find(g), memo.Find(t));
}

TEST(MemoTest, ParentsOf) {
  Memo memo;
  GroupId t = memo.InsertPlan(Table("t"));
  memo.InsertPlan(MakeSelect({EqLit(0, 1)}, Table("t")));
  memo.InsertPlan(MakeSelect({EqLit(0, 2)}, Table("t")));
  EXPECT_EQ(memo.ParentsOf(t).size(), 2u);
}

TEST(MemoTest, AnyPlanRoundTrips) {
  Memo memo;
  PlanPtr plan = MakeSelect({EqLit(0, 1)},
                            MakeJoin({EqLit(1, 2)}, Table("t"), Table("u")));
  GroupId g = memo.InsertPlan(plan);
  auto out = memo.AnyPlan(g);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(algebra::PlanEquals(plan, out.value()));
}

TEST(MemoTest, CountPlansSingle) {
  Memo memo;
  GroupId g = memo.InsertPlan(MakeSelect({EqLit(0, 1)}, Table("t")));
  EXPECT_DOUBLE_EQ(memo.CountPlans(g), 1.0);
}

TEST(MemoTest, CountPlansMultipliesAlternatives) {
  Memo memo;
  GroupId t = memo.InsertPlan(Table("t"));
  GroupId u = memo.InsertPlan(Table("u"));
  // A group with two alternative join expressions over (t, u).
  MemoExpr j1;
  j1.kind = PlanKind::kJoin;
  j1.children = {t, u};
  GroupId g = memo.InsertExpr(std::move(j1));
  MemoExpr j2;
  j2.kind = PlanKind::kJoin;
  j2.predicates = {EqLit(0, 1)};
  j2.children = {t, u};
  memo.InsertExpr(std::move(j2), g);
  EXPECT_DOUBLE_EQ(memo.CountPlans(g), 2.0);
}

}  // namespace
}  // namespace fgac::optimizer
