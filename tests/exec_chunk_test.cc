// Unit tests for the vectorized execution primitives (ColumnVector /
// DataChunk) plus a large cross-engine differential property test: the
// batch executor must agree with the row-at-a-time reference evaluator on
// 1000+ generated queries over NULL-heavy data.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/binder.h"
#include "algebra/reference_eval.h"
#include "common/value.h"
#include "core/database.h"
#include "exec/chunk.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "storage/relation.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using exec::ColumnVector;
using exec::DataChunk;
using exec::Selection;
using fgac::testing::QueryGenerator;
using fgac::testing::SortedRowsToString;

TEST(ColumnVectorTest, TypedAppendAndAccess) {
  ColumnVector col;
  EXPECT_EQ(col.tag(), ColumnVector::Tag::kUntyped);
  col.AppendInt(7);
  col.AppendInt(-3);
  EXPECT_EQ(col.tag(), ColumnVector::Tag::kInt);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_TRUE(col.AllValid());
  EXPECT_EQ(col.IntAt(0), 7);
  EXPECT_EQ(col.IntAt(1), -3);
  EXPECT_EQ(col.GetValue(1), Value::Int(-3));
  EXPECT_EQ(col.KindAt(0), Value::Kind::kInt);
}

TEST(ColumnVectorTest, NullMaskKeepsTypedArraysAligned) {
  ColumnVector col;
  col.AppendInt(1);
  col.AppendNull();
  col.AppendInt(3);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.AllValid());
  EXPECT_TRUE(col.IsValid(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.IsValid(2));
  // The placeholder at position 1 must not shift later entries.
  EXPECT_EQ(col.IntAt(2), 3);
  EXPECT_EQ(col.GetValue(1), Value::Null());
  EXPECT_EQ(col.KindAt(1), Value::Kind::kNull);
}

TEST(ColumnVectorTest, DegenerifiesOnKindMix) {
  ColumnVector col;
  col.AppendInt(42);
  col.AppendString("hi");
  EXPECT_EQ(col.tag(), ColumnVector::Tag::kGeneric);
  EXPECT_EQ(col.GetValue(0), Value::Int(42));
  EXPECT_EQ(col.GetValue(1), Value::String("hi"));
}

TEST(ColumnVectorTest, AppendRangeCopiesValuesAndValidity) {
  ColumnVector src;
  src.AppendDouble(1.5);
  src.AppendNull();
  src.AppendDouble(2.5);
  src.AppendDouble(3.5);

  ColumnVector dst;
  dst.AppendRange(src, 1, 3);  // null, 2.5, 3.5
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_TRUE(dst.IsNull(0));
  EXPECT_EQ(dst.GetValue(1), Value::Double(2.5));
  EXPECT_EQ(dst.GetValue(2), Value::Double(3.5));

  // Range append onto a column with a conflicting tag must degenerify,
  // not corrupt.
  ColumnVector mixed;
  mixed.AppendString("s");
  mixed.AppendRange(src, 0, 2);
  ASSERT_EQ(mixed.size(), 3u);
  EXPECT_EQ(mixed.GetValue(0), Value::String("s"));
  EXPECT_EQ(mixed.GetValue(1), Value::Double(1.5));
  EXPECT_TRUE(mixed.IsNull(2));
}

TEST(ColumnVectorTest, AppendSelectedGathers) {
  ColumnVector src;
  for (int i = 0; i < 6; ++i) src.AppendInt(i * 10);
  Selection sel = {5, 0, 3};
  ColumnVector dst;
  dst.AppendSelected(src, sel);
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.IntAt(0), 50);
  EXPECT_EQ(dst.IntAt(1), 0);
  EXPECT_EQ(dst.IntAt(2), 30);
}

TEST(ColumnVectorTest, TruncateMaintainsNullCount) {
  ColumnVector col;
  col.AppendInt(1);
  col.AppendNull();
  col.AppendNull();
  col.Truncate(2);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_FALSE(col.AllValid());
  col.Truncate(1);
  EXPECT_TRUE(col.AllValid());
}

TEST(DataChunkTest, RowRoundTripWithNulls) {
  DataChunk chunk(3);
  chunk.AppendRow({Value::String("a"), Value::Null(), Value::Double(4.0)});
  chunk.AppendRow({Value::String("b"), Value::Int(2), Value::Null()});
  ASSERT_EQ(chunk.size(), 2u);
  Row r0 = chunk.GetRow(0);
  EXPECT_EQ(r0[0], Value::String("a"));
  EXPECT_EQ(r0[1], Value::Null());
  EXPECT_EQ(r0[2], Value::Double(4.0));
  Row r1 = chunk.GetRow(1);
  EXPECT_EQ(r1[1], Value::Int(2));
  EXPECT_EQ(r1[2], Value::Null());
}

TEST(DataChunkTest, ZeroColumnChunkCarriesCardinality) {
  DataChunk chunk(0);
  chunk.SetCardinality(5);
  EXPECT_EQ(chunk.size(), 5u);
  EXPECT_EQ(chunk.num_columns(), 0u);
  chunk.Reset(0);
  EXPECT_TRUE(chunk.empty());
}

TEST(DataChunkTest, AppendSelectedGathersRows) {
  DataChunk src(2);
  for (int i = 0; i < 4; ++i) {
    src.AppendRow({Value::Int(i), Value::String(std::to_string(i))});
  }
  DataChunk dst(2);
  dst.AppendSelected(src, {3, 1});
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.GetRow(0)[0], Value::Int(3));
  EXPECT_EQ(dst.GetRow(1)[1], Value::String("1"));
}

class ExecChunkQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The paper's university tables are NOT NULL throughout, so this
    // fixture builds a nullable mirror of the same schema (same table and
    // column names — QueryGenerator works unchanged) and loads NULL-heavy
    // data: 3VL must behave identically in both engines.
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      create table students (
        student-id varchar not null primary key,
        name varchar,
        type varchar
      );
      create table courses (
        course-id varchar not null primary key,
        name varchar
      );
      create table registered (
        student-id varchar not null,
        course-id varchar not null,
        primary key (student-id, course-id)
      );
      create table grades (
        student-id varchar not null,
        course-id varchar not null,
        grade double,
        primary key (student-id, course-id)
      );
      insert into students values
        ('11', 'alice', 'fulltime'),
        ('12', 'bob', 'fulltime'),
        ('13', 'carol', 'parttime'),
        ('14', 'dave', 'parttime'),
        ('15', null, 'fulltime'),
        ('16', 'frank', null),
        ('17', null, null);
      insert into courses values
        ('cs101', 'intro programming'),
        ('cs202', 'databases'),
        ('ee150', null);
      insert into registered values
        ('11', 'cs101'), ('11', 'cs202'), ('12', 'cs101'), ('12', 'ee150'),
        ('13', 'cs202'), ('15', 'cs101'), ('16', 'ee150'), ('17', 'cs202');
      insert into grades values
        ('11', 'cs101', 4.0),
        ('12', 'cs101', 3.0),
        ('11', 'cs202', 3.5),
        ('13', 'cs202', 2.0),
        ('15', 'cs101', null),
        ('16', 'ee150', null),
        ('17', 'cs202', null);
    )sql")
                    .ok());
  }

  algebra::PlanPtr MustBind(const std::string& sql) {
    auto stmt = sql::Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    algebra::Binder binder(db_.catalog(), {});
    auto plan = binder.BindSelect(*stmt.value());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.value();
  }

  core::Database db_;
};

// Satellite regression for the ScanOp borrowed-pointer contract: a drained
// physical tree must be re-Open()able and produce identical results, and
// Next() past exhaustion must keep returning false with an empty chunk.
TEST_F(ExecChunkQueryTest, ReopeningDrainedPlanReplaysResults) {
  algebra::PlanPtr plan = MustBind(
      "select s.student-id, g.grade from students s, grades g "
      "where s.student-id = g.student-id");
  auto root = exec::BuildPhysicalPlan(plan, db_.state());
  ASSERT_TRUE(root.ok()) << root.status().ToString();

  auto drain = [&]() {
    std::vector<Row> rows;
    DataChunk chunk;
    while (true) {
      auto more = root.value()->Next(chunk);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.value()) break;
      EXPECT_FALSE(chunk.empty());
      for (size_t i = 0; i < chunk.size(); ++i) rows.push_back(chunk.GetRow(i));
    }
    return rows;
  };

  ASSERT_TRUE(root.value()->Open().ok());
  std::vector<Row> first = drain();
  EXPECT_FALSE(first.empty());

  // Past exhaustion: still false, still empty.
  DataChunk chunk;
  auto more = root.value()->Next(chunk);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
  EXPECT_TRUE(chunk.empty());

  // Re-open and drain again: the borrow of table storage is still live, so
  // the replay must match exactly.
  ASSERT_TRUE(root.value()->Open().ok());
  std::vector<Row> second = drain();

  storage::Relation a({"sid", "grade"});
  storage::Relation b({"sid", "grade"});
  for (Row& r : first) a.AddRow(std::move(r));
  for (Row& r : second) b.AddRow(std::move(r));
  EXPECT_TRUE(a.MultisetEquals(b))
      << "first:\n" << SortedRowsToString(a)
      << "second:\n" << SortedRowsToString(b);
}

TEST_F(ExecChunkQueryTest, NullComparisonsMatchReference) {
  // Hand-picked 3VL shapes: NULL-valued filters, IS NULL, NULL in
  // aggregates, NULL join keys.
  const char* kQueries[] = {
      "select name from students where name = 'frank'",
      "select student-id from students where name <> 'alice'",
      "select student-id from students where name is null",
      "select student-id from students where type is not null",
      "select student-id, grade from grades where grade >= 3.0",
      "select student-id from grades where grade is null",
      "select count(grade), count(*) from grades",
      "select course-id, min(grade), max(grade) from grades group by course-id",
      "select s.name, g.grade from students s, grades g "
      "where s.name = g.student-id",
      "select student-id from students where name in ('frank', 'alice')",
      "select student-id from students where not (name = 'frank')",
      "select distinct grade from grades",
  };
  for (const char* sql : kQueries) {
    algebra::PlanPtr plan = MustBind(sql);
    auto reference = algebra::ReferenceEval(plan, db_.state());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString()
                                << "\nsql: " << sql;
    auto physical = exec::ExecutePlan(plan, db_.state());
    ASSERT_TRUE(physical.ok()) << physical.status().ToString()
                               << "\nsql: " << sql;
    EXPECT_TRUE(physical.value().MultisetEquals(reference.value()))
        << "mismatch\nsql: " << sql << "\nreference:\n"
        << SortedRowsToString(reference.value()) << "physical:\n"
        << SortedRowsToString(physical.value());
  }
}

// The headline differential property: 1000+ generated queries over the
// NULL-heavy dataset, vectorized executor vs reference evaluator.
TEST_F(ExecChunkQueryTest, DifferentialVsReferenceOnGeneratedQueries) {
  int executed = 0;
  for (uint32_t seed = 1; seed <= 30; ++seed) {
    QueryGenerator gen(seed);
    for (int i = 0; i < 40; ++i) {
      std::string sql = gen.NextQuery();
      auto stmt = sql::Parser::ParseSelect(sql);
      ASSERT_TRUE(stmt.ok()) << stmt.status().ToString() << "\nsql: " << sql;
      algebra::Binder binder(db_.catalog(), {});
      auto plan = binder.BindSelect(*stmt.value());
      if (!plan.ok()) {
        // The generator can produce ambiguous references; skip those.
        ASSERT_EQ(plan.status().code(), StatusCode::kBindError)
            << plan.status().ToString() << "\nsql: " << sql;
        continue;
      }
      auto reference = algebra::ReferenceEval(plan.value(), db_.state());
      ASSERT_TRUE(reference.ok()) << reference.status().ToString()
                                  << "\nsql: " << sql;
      auto physical = exec::ExecutePlan(plan.value(), db_.state());
      ASSERT_TRUE(physical.ok()) << physical.status().ToString()
                                 << "\nsql: " << sql;
      ASSERT_TRUE(physical.value().MultisetEquals(reference.value()))
          << "engine mismatch\nsql: " << sql << "\nreference:\n"
          << SortedRowsToString(reference.value()) << "physical:\n"
          << SortedRowsToString(physical.value());
      ++executed;
    }
  }
  EXPECT_GE(executed, 1000) << "generator rejected too many queries";
}

}  // namespace
}  // namespace fgac
