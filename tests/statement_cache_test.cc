// StatementCache unit coverage (sharding, LRU, fail-closed invalidation,
// fingerprint-collision tiebreaks) plus the end-to-end policy-epoch
// regression tests: a cached verdict or rewrite must never outlive a
// change to the policy state it was computed under.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/plan.h"
#include "core/database.h"
#include "core/session_context.h"
#include "core/statement_cache.h"
#include "server/connection_manager.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using core::StatementCache;
using core::ValidityReport;
using server::ConnectionManager;
using testing::CreateUniversityViews;
using testing::SetupUniversity;
using testing::SortedRowsToString;

ValidityReport Accepted(bool unconditional) {
  ValidityReport r;
  r.valid = true;
  r.unconditional = unconditional;
  return r;
}

algebra::PlanPtr TrivialPlan() { return algebra::MakeGet("t", {"a"}); }

TEST(StatementCacheTest, TrumanPlanHitAfterInsert) {
  StatementCache cache;
  std::string user = "u", text = "select a from t";
  StatementCache::Key key{user, 7, text, 1, 1};
  EXPECT_EQ(cache.LookupTrumanPlan(key, 1), nullptr);
  cache.InsertTrumanPlan(key, 1, TrivialPlan());
  EXPECT_NE(cache.LookupTrumanPlan(key, 1), nullptr);
  // A different session-parameter fingerprint is a different rewrite.
  EXPECT_EQ(cache.LookupTrumanPlan(key, 2), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(StatementCacheTest, KeyedByPrincipal) {
  StatementCache cache;
  std::string alice = "alice", bob = "bob", text = "select a from t";
  StatementCache::Key ka{alice, 7, text, 1, 1};
  StatementCache::Key kb{bob, 7, text, 1, 1};
  cache.InsertTrumanPlan(ka, 1, TrivialPlan());
  EXPECT_EQ(cache.LookupTrumanPlan(kb, 1), nullptr);
  EXPECT_NE(cache.LookupTrumanPlan(ka, 1), nullptr);
}

TEST(StatementCacheTest, CatalogVersionAndPolicyEpochFailClosed) {
  StatementCache cache;
  std::string user = "u", text = "select a from t";
  StatementCache::Key key{user, 7, text, 1, 1};
  cache.InsertTrumanPlan(key, 1, TrivialPlan());
  cache.InsertVerdict(key, 9, 1, Accepted(true));
  // Catalog moved: the whole entry (plans AND verdicts) is discarded.
  StatementCache::Key newer_catalog{user, 7, text, 2, 1};
  EXPECT_EQ(cache.LookupTrumanPlan(newer_catalog, 1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GE(cache.invalidations(), 1u);
  // Same for a policy-epoch bump, even with the catalog version equal.
  cache.InsertVerdict(key, 9, 1, Accepted(true));
  StatementCache::Key newer_policy{user, 7, text, 1, 2};
  ValidityReport out;
  EXPECT_FALSE(cache.LookupVerdict(newer_policy, 9, 1, &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(StatementCacheTest, TextMismatchIsAMissNeverAWrongReuse) {
  StatementCache cache;
  // Same (user, stmt_fp) — a forced fingerprint collision between two
  // distinct statements. The stored text disagrees, so the second
  // statement must miss rather than inherit the first one's plans.
  std::string user = "u";
  std::string text1 = "select a from t", text2 = "select b from t";
  StatementCache::Key k1{user, 7, text1, 1, 1};
  StatementCache::Key k2{user, 7, text2, 1, 1};
  cache.InsertTrumanPlan(k1, 1, TrivialPlan());
  EXPECT_EQ(cache.LookupTrumanPlan(k2, 1), nullptr);
  EXPECT_GE(cache.collisions(), 1u);
  // Inserting under the colliding key restarts the entry for the new text.
  cache.InsertTrumanPlan(k2, 1, TrivialPlan());
  EXPECT_NE(cache.LookupTrumanPlan(k2, 1), nullptr);
  EXPECT_EQ(cache.LookupTrumanPlan(k1, 1), nullptr);
}

TEST(StatementCacheTest, VerdictDataVersionRule) {
  StatementCache cache;
  std::string user = "u", text = "select a from t";
  StatementCache::Key key{user, 7, text, 1, 1};
  cache.InsertVerdict(key, 1, /*data_version=*/5, Accepted(true));
  cache.InsertVerdict(key, 2, /*data_version=*/5, Accepted(false));
  ValidityReport rejected;
  rejected.valid = false;
  cache.InsertVerdict(key, 3, /*data_version=*/5, rejected);
  ValidityReport out;
  // Data moved to version 6: only the unconditional acceptance survives.
  EXPECT_TRUE(cache.LookupVerdict(key, 1, 6, &out));
  EXPECT_FALSE(cache.LookupVerdict(key, 2, 6, &out));
  EXPECT_FALSE(cache.LookupVerdict(key, 3, 6, &out));
}

TEST(StatementCacheTest, ProbeBudgetExhaustedVerdictsAreNotCached) {
  StatementCache cache;
  std::string user = "u", text = "select a from t";
  StatementCache::Key key{user, 7, text, 1, 1};
  ValidityReport budget = Accepted(true);
  budget.probe_budget_exhausted = true;
  cache.InsertVerdict(key, 1, 1, budget);
  ValidityReport out;
  EXPECT_FALSE(cache.LookupVerdict(key, 1, 1, &out));
}

TEST(StatementCacheTest, LruEvictionBoundsEntries) {
  // One shard's worth of capacity. Keys land in different shards, so size
  // can exceed max/kShards transiently — but never the configured total.
  StatementCache cache(/*max_entries=*/StatementCache::kShards);
  std::string user = "u", text = "q";
  for (uint64_t fp = 0; fp < 4 * StatementCache::kShards; ++fp) {
    StatementCache::Key key{user, fp, text, 1, 1};
    cache.InsertTrumanPlan(key, 1, TrivialPlan());
  }
  EXPECT_LE(cache.size(), StatementCache::kShards);
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(StatementCacheTest, VariantMapsAreBounded) {
  StatementCache cache;
  std::string user = "u", text = "q";
  StatementCache::Key key{user, 7, text, 1, 1};
  for (uint64_t fp = 0; fp < 4 * StatementCache::kMaxVariants; ++fp) {
    cache.InsertVerdict(key, fp, 1, Accepted(true));
    cache.InsertTrumanPlan(key, fp, TrivialPlan());
  }
  EXPECT_EQ(cache.size(), 1u);  // still one entry, variants bounded inside
}

// --- End-to-end policy-epoch regression tests -----------------------------

class PolicyEpochTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ASSERT_TRUE(db_.ExecuteScript("grant select on mygrades to 11").ok());
  }
  Database db_;
};

// The ISSUE's regression scenario: a Non-Truman verdict cached for a
// prepared statement must be re-checked — and the query rejected — after
// the principal's authorization is narrowed. A stale "valid" here would be
// an authorization bypass.
TEST_F(PolicyEpochTest, CachedVerdictDiesWhenAuthorizationNarrows) {
  ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kNonTruman);
  ASSERT_TRUE(s->Execute("prepare q as select grade from grades "
                         "where student-id = $user-id "
                         "and course-id = $1")
                  .ok());
  auto first = s->Execute("execute q ('cs101')");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = s->Execute("execute q ('cs101')");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().validity_from_cache);  // the verdict IS cached

  // Narrow the principal's authorization: revoke the only view that made
  // the query answerable.
  ASSERT_TRUE(db_.ExecuteAsAdmin("revoke select on mygrades from 11").ok());

  // The cached verdict must not be honored: the epoch moved, the check
  // re-runs, and the query is now rejected.
  auto after = s->Execute("execute q ('cs101')");
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNotAuthorized);

  // Re-granting restores access (and proves the rejection wasn't sticky).
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  auto restored = s->Execute("execute q ('cs101')");
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
}

// Same property for the Truman side: a cached rewritten plan must be
// rebuilt when the table's Truman policy binding changes.
TEST_F(PolicyEpochTest, CachedTrumanPlanDiesWhenPolicyChanges) {
  ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "mygrades").ok());
  ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kTruman);
  ASSERT_TRUE(s->Execute("prepare q as select grade from grades "
                         "where course-id = $1")
                  .ok());
  auto r = s->Execute("execute q ('cs101')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().relation.num_rows(), 1u);  // own cs101 grade

  // Rebind the policy to a view that exposes nothing.
  ASSERT_TRUE(
      db_.ExecuteAsAdmin("create authorization view nothing as "
                         "select student-id, course-id, grade from grades "
                         "where student-id = 'nobody'")
          .ok());
  ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "nothing").ok());

  auto after = s->Execute("execute q ('cs101')");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().relation.num_rows(), 0u);
}

// Ad-hoc (non-prepared) Non-Truman queries go through ValidityCache; the
// epoch must gate those too.
TEST_F(PolicyEpochTest, AdHocVerdictCacheRespectsEpoch) {
  const char* sql =
      "select grade from grades where student-id = $user-id";
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  ASSERT_TRUE(db_.Execute(sql, ctx).ok());
  auto cached = db_.Execute(sql, ctx);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.value().validity_from_cache);
  ASSERT_TRUE(db_.ExecuteAsAdmin("revoke select on mygrades from 11").ok());
  auto after = db_.Execute(sql, ctx);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNotAuthorized);
}

}  // namespace
}  // namespace fgac
