// Differential sweep: the goal-directed (demand-driven, dominance-pruned)
// validity search must agree with the exhaustive breadth-first reference on
// every generated query — the goal-directed mode only skips work that
// cannot change the verdict, so any divergence is a bug in its frontier,
// pruning or join-gating logic.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using core::ValidityReport;
using fgac::testing::CreateUniversityViews;
using fgac::testing::QueryGenerator;
using fgac::testing::SetupUniversity;

void SetupDatabase(Database* db, bool goal_directed, size_t parallelism) {
  SetupUniversity(db);
  CreateUniversityViews(db);
  for (const char* grant :
       {"grant select on mygrades to 11", "grant select on costudentgrades to 11",
        "grant select on myregistrations to 11",
        "grant select on regstudents to 11", "grant select on avggrades to 11"}) {
    ASSERT_TRUE(db->ExecuteAsAdmin(grant).ok()) << grant;
  }
  db->options().parallelism = parallelism;
  db->options().validity.goal_directed_search = goal_directed;
  // Every query must be derived from scratch in both engines.
  db->options().enable_validity_cache = false;
}

std::string Describe(const Result<ValidityReport>& r) {
  if (!r.ok()) return "error: " + r.status().ToString();
  if (!r.value().valid) return "rejected: " + r.value().reason;
  return std::string(r.value().unconditional ? "unconditional" : "conditional") +
         " via " + r.value().justification;
}

/// Runs `num_queries` generated queries through a goal-directed and an
/// exhaustive engine over identical databases and asserts verdict equality.
void RunSweep(size_t parallelism, size_t num_queries, uint32_t seed) {
  Database goal_db;
  Database full_db;
  SetupDatabase(&goal_db, /*goal_directed=*/true, parallelism);
  SetupDatabase(&full_db, /*goal_directed=*/false, parallelism);

  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);

  QueryGenerator gen(seed);
  size_t accepted = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    const std::string q = gen.NextQuery();
    auto goal = goal_db.CheckQueryValidity(q, ctx);
    auto full = full_db.CheckQueryValidity(q, ctx);
    ASSERT_EQ(goal.ok(), full.ok())
        << "query #" << i << ": " << q << "\n  goal-directed: "
        << Describe(goal) << "\n  exhaustive:    " << Describe(full);
    if (!goal.ok()) continue;
    ASSERT_EQ(goal.value().valid, full.value().valid)
        << "query #" << i << ": " << q << "\n  goal-directed: "
        << Describe(goal) << "\n  exhaustive:    " << Describe(full);
    ASSERT_EQ(goal.value().unconditional, full.value().unconditional)
        << "query #" << i << ": " << q << "\n  goal-directed: "
        << Describe(goal) << "\n  exhaustive:    " << Describe(full);
    if (goal.value().valid) ++accepted;
  }
  // The sweep only has teeth when both outcomes occur.
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, num_queries);
}

TEST(ValidityDifferentialTest, SerialProbesAgree) {
  RunSweep(/*parallelism=*/1, /*num_queries=*/500, /*seed=*/20260808);
}

TEST(ValidityDifferentialTest, PipelinedProbesAgree) {
  RunSweep(/*parallelism=*/4, /*num_queries=*/500, /*seed=*/8082026);
}

TEST(ValidityDifferentialTest, LowExpansionBudgetNeverAcceptsUnsoundly) {
  // CI (Debug leg) runs this with FGAC_DIFF_LOW_BUDGET=1: under a starved
  // expansion budget the goal-directed engine may reject more, but any
  // query it accepts must also be accepted by the unstarved exhaustive
  // reference — budget pressure must never manufacture a proof.
  if (std::getenv("FGAC_DIFF_LOW_BUDGET") == nullptr) {
    GTEST_SKIP() << "set FGAC_DIFF_LOW_BUDGET=1 to run the starved sweep";
  }
  Database goal_db;
  Database full_db;
  SetupDatabase(&goal_db, /*goal_directed=*/true, /*parallelism=*/1);
  SetupDatabase(&full_db, /*goal_directed=*/false, /*parallelism=*/1);
  goal_db.options().validity.expand.max_exprs = 500;
  goal_db.options().validity.expand.max_passes = 2;

  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  QueryGenerator gen(424242);
  for (size_t i = 0; i < 300; ++i) {
    const std::string q = gen.NextQuery();
    auto goal = goal_db.CheckQueryValidity(q, ctx);
    if (!goal.ok() || !goal.value().valid) continue;
    auto full = full_db.CheckQueryValidity(q, ctx);
    ASSERT_TRUE(full.ok() && full.value().valid)
        << "starved goal-directed engine accepted query #" << i << ": " << q
        << "\n  exhaustive reference: " << Describe(full);
  }
}

}  // namespace
}  // namespace fgac
