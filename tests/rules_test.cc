#include "optimizer/rules.h"

#include <gtest/gtest.h>

#include "algebra/binder.h"
#include "algebra/plan_hash.h"
#include "algebra/reference_eval.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace fgac::optimizer {
namespace {

using algebra::PlanPtr;
using fgac::testing::SetupUniversity;

class RulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    options_.table_pk_slots = [this](const std::string& t) -> std::vector<int> {
      const catalog::TableSchema* s = db_.catalog().GetTable(t);
      std::vector<int> out;
      if (s != nullptr) {
        for (size_t i : s->primary_key()) out.push_back(static_cast<int>(i));
      }
      return out;
    };
  }

  PlanPtr Bind(const std::string& sql) {
    auto stmt = sql::Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    algebra::Binder binder(db_.catalog(), {});
    auto plan = binder.BindSelect(*stmt.value());
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? plan.value() : nullptr;
  }

  /// Expands `sql`'s plan and checks every extractable alternative plan in
  /// the root group computes the same multiset as the original.
  void CheckExpansionPreservesSemantics(const std::string& sql) {
    PlanPtr plan = Bind(sql);
    ASSERT_NE(plan, nullptr);
    auto expected = algebra::ReferenceEval(plan, db_.state());
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    Memo memo;
    GroupId root = memo.InsertPlan(plan);
    ExpandMemo(&memo, options_);
    root = memo.Find(root);

    // Sample alternatives: extract the best plan under several cost models
    // (to pick different shapes) plus AnyPlan.
    std::vector<PlanPtr> alternatives;
    auto any = memo.AnyPlan(root);
    ASSERT_TRUE(any.ok());
    alternatives.push_back(any.value());
    for (double bias : {1.0, 1000.0}) {
      auto best = ExtractBestPlan(
          memo, root, [bias](const std::string& t) {
            return t == "grades" ? bias : 10.0;
          });
      ASSERT_TRUE(best.ok()) << best.status().ToString();
      alternatives.push_back(best.value().plan);
    }
    for (const PlanPtr& alt : alternatives) {
      auto got = algebra::ReferenceEval(alt, db_.state());
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_TRUE(got.value().MultisetEquals(expected.value()))
          << "sql: " << sql << "\nalternative:\n"
          << algebra::PlanToString(alt);
    }
  }

  core::Database db_;
  ExpandOptions options_;
};

TEST_F(RulesTest, SelectPushdownCreatesJoin) {
  PlanPtr plan = Bind(
      "select * from grades, registered "
      "where grades.student-id = registered.student-id "
      "and grades.grade >= 3.0");
  Memo memo;
  GroupId root = memo.InsertPlan(plan);
  ExpandMemo(&memo, options_);
  // The root group should contain a Join alternative with a predicate.
  bool found_join = false;
  for (ExprId eid : memo.GroupExprs(memo.Find(root))) {
    if (memo.expr(eid).kind == algebra::PlanKind::kJoin &&
        !memo.expr(eid).predicates.empty()) {
      found_join = true;
    }
  }
  EXPECT_TRUE(found_join) << memo.ToString();
}

TEST_F(RulesTest, TwoWayJoinSemantics) {
  CheckExpansionPreservesSemantics(
      "select students.name, grades.grade from students, grades "
      "where students.student-id = grades.student-id and grades.grade > 2.5");
}

TEST_F(RulesTest, ThreeWayJoinSemantics) {
  CheckExpansionPreservesSemantics(
      "select s.name, c.name from students s, courses c, grades g "
      "where s.student-id = g.student-id and c.course-id = g.course-id");
}

TEST_F(RulesTest, AggregateRollupSemantics) {
  CheckExpansionPreservesSemantics(
      "select avg(grade) from grades where course-id = 'cs101'");
}

TEST_F(RulesTest, SelectThroughAggregateSemantics) {
  CheckExpansionPreservesSemantics(
      "select course-id, count(*) from grades group by course-id "
      "having count(*) >= 1");
}

TEST_F(RulesTest, DistinctSemantics) {
  CheckExpansionPreservesSemantics(
      "select distinct type from students where name <> 'zzz'");
}

TEST_F(RulesTest, JoinAssociativityGeneratesAlternatives) {
  PlanPtr plan = Bind(
      "select * from students s, registered r, courses c "
      "where s.student-id = r.student-id and r.course-id = c.course-id");
  Memo memo;
  GroupId root = memo.InsertPlan(plan);
  ExpandMemo(&memo, options_);
  // Figure 1's point: the expanded DAG represents multiple join orders.
  EXPECT_GT(memo.CountPlans(memo.Find(root)), 1.0) << memo.ToString();
}

TEST_F(RulesTest, ExpansionReachesFixpoint) {
  PlanPtr plan = Bind(
      "select * from students s, registered r "
      "where s.student-id = r.student-id");
  Memo memo;
  memo.InsertPlan(plan);
  ExpandStats stats = ExpandMemo(&memo, options_);
  EXPECT_FALSE(stats.budget_exhausted);
  size_t exprs = memo.num_exprs();
  // A second expansion must be a no-op.
  ExpandStats again = ExpandMemo(&memo, options_);
  EXPECT_EQ(memo.num_exprs(), exprs);
  EXPECT_EQ(again.exprs_added, 0u);
}

TEST_F(RulesTest, BudgetRespected) {
  // Six distinct relations => the join-order space is genuinely large
  // (self-joins of one table would collapse into shared groups).
  core::Database db2;
  std::string ddl;
  for (int i = 0; i < 6; ++i) {
    ddl += "create table t" + std::to_string(i) +
           " (k int not null primary key, v int);";
  }
  ASSERT_TRUE(db2.ExecuteScript(ddl).ok());
  std::string sql = "select * from t0, t1, t2, t3, t4, t5 where ";
  for (int i = 0; i < 5; ++i) {
    if (i > 0) sql += " and ";
    sql += "t" + std::to_string(i) + ".k = t" + std::to_string(i + 1) + ".k";
  }
  auto stmt = sql::Parser::ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  algebra::Binder binder(db2.catalog(), {});
  auto plan = binder.BindSelect(*stmt.value());
  ASSERT_TRUE(plan.ok());
  Memo memo;
  memo.InsertPlan(plan.value());
  ExpandOptions tight = options_;
  tight.max_exprs = 50;
  ExpandStats stats = ExpandMemo(&memo, tight);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_LE(memo.num_exprs(), 2000u);  // bounded overshoot within one pass
}

TEST_F(RulesTest, DuplicateFreeAnalysis) {
  // Base table with PK.
  Memo memo;
  GroupId students = memo.InsertPlan(Bind("select * from students"));
  EXPECT_TRUE(GroupDuplicateFree(memo, students, options_));
  // Projection dropping the key is not duplicate-free.
  GroupId names = memo.InsertPlan(Bind("select name from students"));
  EXPECT_FALSE(GroupDuplicateFree(memo, names, options_));
  // Projection keeping the key is.
  GroupId keyed = memo.InsertPlan(Bind("select student-id, name from students"));
  EXPECT_TRUE(GroupDuplicateFree(memo, keyed, options_));
  // Distinct always is.
  GroupId distinct = memo.InsertPlan(Bind("select distinct name from students"));
  EXPECT_TRUE(GroupDuplicateFree(memo, distinct, options_));
  // Aggregates are keyed by their group-by columns.
  GroupId agg = memo.InsertPlan(
      Bind("select course-id, avg(grade) from grades group by course-id"));
  EXPECT_TRUE(GroupDuplicateFree(memo, agg, options_));
}

TEST_F(RulesTest, DistinctElimOverKeyedTable) {
  // select distinct * from students == select * from students (PK).
  Memo memo;
  GroupId a = memo.InsertPlan(Bind("select distinct * from students"));
  GroupId b = memo.InsertPlan(Bind("select * from students"));
  ASSERT_NE(memo.Find(a), memo.Find(b));
  ExpandMemo(&memo, options_);
  EXPECT_EQ(memo.Find(a), memo.Find(b));
}

TEST_F(RulesTest, SubsumptionConnectsStrongerSelection) {
  // σ_{a ∧ b}(t) should gain an alternative computed from σ_{a}(t).
  PlanPtr strong = Bind(
      "select * from grades where course-id = 'cs101' and grade >= 3.0");
  PlanPtr weak = Bind("select * from grades where course-id = 'cs101'");
  Memo memo;
  GroupId gs = memo.InsertPlan(strong);
  GroupId gw = memo.InsertPlan(weak);
  ExpandMemo(&memo, options_);
  bool derives_from_weak = false;
  for (ExprId eid : memo.GroupExprs(memo.Find(gs))) {
    const MemoExpr& e = memo.expr(eid);
    if (e.kind == algebra::PlanKind::kSelect &&
        memo.Find(e.children[0]) == memo.Find(gw)) {
      derives_from_weak = true;
    }
  }
  EXPECT_TRUE(derives_from_weak) << memo.ToString();
}

TEST_F(RulesTest, RangeSubsumption) {
  PlanPtr strong = Bind("select * from grades where grade > 3.5");
  PlanPtr weak = Bind("select * from grades where grade > 2.0");
  Memo memo;
  GroupId gs = memo.InsertPlan(strong);
  GroupId gw = memo.InsertPlan(weak);
  ExpandMemo(&memo, options_);
  bool derives_from_weak = false;
  for (ExprId eid : memo.GroupExprs(memo.Find(gs))) {
    const MemoExpr& e = memo.expr(eid);
    if (e.kind == algebra::PlanKind::kSelect &&
        memo.Find(e.children[0]) == memo.Find(gw)) {
      derives_from_weak = true;
    }
  }
  EXPECT_TRUE(derives_from_weak);
}

TEST_F(RulesTest, OptimizerPrefersFilteredJoinOverCross) {
  auto result = Optimize(
      Bind("select * from students s, grades g "
           "where s.student-id = g.student-id"),
      options_, [](const std::string&) { return 10000.0; });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The chosen plan must be a predicated join, not cross+filter.
  std::function<bool(const PlanPtr&)> has_pred_join =
      [&](const PlanPtr& p) -> bool {
    if (p->kind == algebra::PlanKind::kJoin && !p->predicates.empty()) {
      return true;
    }
    for (const PlanPtr& c : p->children) {
      if (has_pred_join(c)) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_pred_join(result.value().plan))
      << algebra::PlanToString(result.value().plan);
}

TEST_F(RulesTest, OptimizedPlanExecutesCorrectly) {
  PlanPtr plan = Bind(
      "select s.name from students s, grades g "
      "where s.student-id = g.student-id and g.grade = 4.0");
  auto result =
      Optimize(plan, options_, [](const std::string&) { return 100.0; });
  ASSERT_TRUE(result.ok());
  auto expected = algebra::ReferenceEval(plan, db_.state());
  auto got = algebra::ReferenceEval(result.value().plan, db_.state());
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().MultisetEquals(expected.value()));
}

}  // namespace
}  // namespace fgac::optimizer
