#include "exec/executor.h"

#include <gtest/gtest.h>

#include "algebra/binder.h"
#include "algebra/reference_eval.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::MustQueryAdmin;
using fgac::testing::SetupUniversity;
using fgac::testing::SortedRowsToString;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { SetupUniversity(&db_); }

  /// Runs `sql` through both the physical executor and the reference
  /// evaluator and checks multiset equality.
  void CheckAgainstReference(const std::string& sql) {
    auto stmt = sql::Parser::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    algebra::Binder binder(db_.catalog(), {});
    auto plan = binder.BindSelect(*stmt.value());
    ASSERT_TRUE(plan.ok()) << plan.status().ToString() << "\nsql: " << sql;
    auto physical = exec::ExecutePlan(plan.value(), db_.state());
    ASSERT_TRUE(physical.ok()) << physical.status().ToString();
    auto reference = algebra::ReferenceEval(plan.value(), db_.state());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_TRUE(physical.value().MultisetEquals(reference.value()))
        << "sql: " << sql << "\nphysical:\n"
        << SortedRowsToString(physical.value()) << "reference:\n"
        << SortedRowsToString(reference.value());
  }

  Database db_;
};

TEST_F(ExecutorTest, Scan) {
  auto rel = MustQueryAdmin(&db_, "select * from students");
  EXPECT_EQ(rel.num_rows(), 4u);
  EXPECT_EQ(rel.num_columns(), 3u);
  EXPECT_EQ(rel.column_names()[0], "student-id");
}

TEST_F(ExecutorTest, FilterAndProject) {
  auto rel = MustQueryAdmin(
      &db_, "select name from students where type = 'fulltime'");
  EXPECT_EQ(rel.num_rows(), 2u);
}

TEST_F(ExecutorTest, HashJoinMatchesReference) {
  CheckAgainstReference(
      "select students.name, grades.grade from students, grades "
      "where students.student-id = grades.student-id");
}

TEST_F(ExecutorTest, CrossJoinMatchesReference) {
  CheckAgainstReference("select * from students, courses");
}

TEST_F(ExecutorTest, NonEquiJoinMatchesReference) {
  CheckAgainstReference(
      "select a.student-id, b.student-id from grades a, grades b "
      "where a.grade < b.grade");
}

TEST_F(ExecutorTest, SelfJoin) {
  CheckAgainstReference(
      "select a.course-id from registered a, registered b "
      "where a.student-id = b.student-id and a.course-id <> b.course-id");
}

TEST_F(ExecutorTest, AggregateGroupBy) {
  auto rel = MustQueryAdmin(
      &db_,
      "select course-id, avg(grade), count(*) from grades group by course-id "
      "order by course-id");
  ASSERT_EQ(rel.num_rows(), 2u);
  EXPECT_EQ(rel.rows()[0][0], Value::String("cs101"));
  EXPECT_EQ(rel.rows()[0][1], Value::Double(3.5));
  EXPECT_EQ(rel.rows()[0][2], Value::Int(2));
}

TEST_F(ExecutorTest, ScalarAggregateOverEmptyInputYieldsOneRow) {
  auto rel = MustQueryAdmin(
      &db_, "select count(*), sum(grade), avg(grade) from grades "
            "where course-id = 'nosuch'");
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::Int(0));
  EXPECT_TRUE(rel.rows()[0][1].is_null());
  EXPECT_TRUE(rel.rows()[0][2].is_null());
}

TEST_F(ExecutorTest, GroupByOverEmptyInputYieldsNoRows) {
  auto rel = MustQueryAdmin(
      &db_, "select course-id, avg(grade) from grades "
            "where course-id = 'nosuch' group by course-id");
  EXPECT_EQ(rel.num_rows(), 0u);
}

TEST_F(ExecutorTest, AggregateDistinctArg) {
  auto rel = MustQueryAdmin(
      &db_, "select count(distinct student-id) from grades");
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::Int(3));
}

TEST_F(ExecutorTest, MinMaxSum) {
  auto rel = MustQueryAdmin(
      &db_, "select min(grade), max(grade), sum(grade) from grades");
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::Double(2.0));
  EXPECT_EQ(rel.rows()[0][1], Value::Double(4.0));
  EXPECT_EQ(rel.rows()[0][2], Value::Double(12.5));
}

TEST_F(ExecutorTest, Having) {
  auto rel = MustQueryAdmin(
      &db_, "select course-id from grades group by course-id "
            "having count(*) >= 2 order by course-id");
  ASSERT_EQ(rel.num_rows(), 2u);
}

TEST_F(ExecutorTest, DistinctRows) {
  auto rel = MustQueryAdmin(&db_, "select distinct type from students");
  EXPECT_EQ(rel.num_rows(), 2u);
}

TEST_F(ExecutorTest, OrderByDescAndLimit) {
  auto rel = MustQueryAdmin(
      &db_, "select grade from grades order by grade desc limit 2");
  ASSERT_EQ(rel.num_rows(), 2u);
  EXPECT_EQ(rel.rows()[0][0], Value::Double(4.0));
  EXPECT_EQ(rel.rows()[1][0], Value::Double(3.5));
}

TEST_F(ExecutorTest, OrderByPositional) {
  auto rel = MustQueryAdmin(
      &db_, "select student-id, grade from grades order by 2, 1");
  ASSERT_EQ(rel.num_rows(), 4u);
  EXPECT_EQ(rel.rows()[0][1], Value::Double(2.0));
}

TEST_F(ExecutorTest, InListBetweenLike) {
  CheckAgainstReference(
      "select * from grades where course-id in ('cs101', 'ee150')");
  CheckAgainstReference("select * from grades where grade between 3 and 4");
  CheckAgainstReference("select * from students where name like '%a%'");
}

TEST_F(ExecutorTest, ArithmeticInProjection) {
  auto rel = MustQueryAdmin(&db_, "select grade * 2 + 1 from grades "
                                  "where student-id = '13'");
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::Double(5.0));
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  auto rel = MustQueryAdmin(&db_, "select 1 + 2 as three, 'x'");
  ASSERT_EQ(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::Int(3));
  EXPECT_EQ(rel.column_names()[0], "three");
}

TEST_F(ExecutorTest, DivisionByZeroIsError) {
  core::SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  auto r = db_.Execute("select 1 / 0", admin);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecutorTest, ExplicitJoinEqualsCommaJoin) {
  auto a = MustQueryAdmin(
      &db_, "select g.grade from grades g join registered r "
            "on g.student-id = r.student-id");
  auto b = MustQueryAdmin(
      &db_, "select g.grade from grades g, registered r "
            "where g.student-id = r.student-id");
  EXPECT_TRUE(a.MultisetEquals(b));
}

TEST_F(ExecutorTest, ThreeWayJoinMatchesReference) {
  CheckAgainstReference(
      "select s.name, c.name, g.grade from students s, courses c, grades g "
      "where s.student-id = g.student-id and c.course-id = g.course-id");
}

}  // namespace
}  // namespace fgac
