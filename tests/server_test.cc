// Session lifecycle and PREPARE/EXECUTE/DEALLOCATE end-to-end through
// server::ConnectionManager: per-session prepared registries, interrupt
// semantics, close-drain, and the interleaved multi-threaded sweep that
// the TSan and fault-injection CI jobs lean on (FGAC_STRESS_REPEAT scales
// the iteration counts).
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/session_context.h"
#include "server/connection_manager.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::DatabaseOptions;
using core::EnforcementMode;
using core::ExecResult;
using core::SessionContext;
using server::ConnectionManager;
using server::Session;
using testing::CreateUniversityViews;
using testing::SetupUniversity;
using testing::SortedRowsToString;

int StressRepeat(int base) {
  if (const char* env = std::getenv("FGAC_STRESS_REPEAT")) {
    return std::max(1, std::atoi(env));
  }
  return base;
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : db_(WithArtifacts()) {}

  static core::DatabaseOptions WithArtifacts() {
    core::DatabaseOptions opts;
    testing::ApplyNightlyArtifactOptions(&opts, "server_test");
    return opts;
  }

  void TearDown() override {
    testing::DumpMetricsArtifact(&db_, "server_test");
  }

  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ASSERT_TRUE(db_.ExecuteScript("grant select on mygrades to 11;"
                                  "grant select on myregistrations to 11")
                    .ok());
    ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "mygrades").ok());
  }

  /// Reference answer via the plain ad-hoc path.
  std::string AdHoc(const std::string& sql, const std::string& user,
                    EnforcementMode mode) {
    SessionContext ctx(user);
    ctx.set_mode(mode);
    auto r = db_.Execute(sql, ctx);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r.ok() ? SortedRowsToString(r.value().relation) : "<error>";
  }

  Database db_;
};

TEST_F(ServerTest, OpenExecuteClose) {
  ConnectionManager cm(db_);
  auto s = cm.Open("admin");
  EXPECT_EQ(s->id(), "conn-1");
  EXPECT_EQ(cm.active_sessions(), 1u);
  auto r = s->Execute("select name from students where type = 'fulltime'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().relation.num_rows(), 2u);
  EXPECT_TRUE(cm.Close(s->id()));
  EXPECT_EQ(cm.active_sessions(), 0u);
  EXPECT_EQ(cm.sessions_opened(), 1u);
  EXPECT_EQ(cm.sessions_closed(), 1u);
  // Statements after close fail closed.
  auto after = s->Execute("select name from students");
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kCancelled);
}

TEST_F(ServerTest, PrepareExecuteDeallocateRoundTrip) {
  ConnectionManager cm(db_);
  auto s = cm.Open("admin");
  ASSERT_TRUE(s->Execute("prepare q as select grade from grades "
                         "where course-id = $1")
                  .ok());
  EXPECT_EQ(s->PreparedNames(), std::vector<std::string>{"q"});
  auto r = s->Execute("execute q ('cs101')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(SortedRowsToString(r.value().relation),
            AdHoc("select grade from grades where course-id = 'cs101'",
                  "admin", EnforcementMode::kNone));
  // Re-execution with a different argument binds fresh constants.
  auto r2 = s->Execute("execute q ('cs202')");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(SortedRowsToString(r2.value().relation),
            AdHoc("select grade from grades where course-id = 'cs202'",
                  "admin", EnforcementMode::kNone));
  ASSERT_TRUE(s->Execute("deallocate q").ok());
  EXPECT_TRUE(s->PreparedNames().empty());
  auto gone = s->Execute("execute q ('cs101')");
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerTest, ExecuteArgumentValidation) {
  ConnectionManager cm(db_);
  auto s = cm.Open("admin");
  ASSERT_TRUE(s->Execute("prepare q as select grade from grades "
                         "where course-id = $1")
                  .ok());
  EXPECT_FALSE(s->Execute("execute q").ok());              // too few
  EXPECT_FALSE(s->Execute("execute q ('a', 'b')").ok());   // too many
  EXPECT_FALSE(s->Execute("execute nosuch ('a')").ok());   // unknown name
  EXPECT_FALSE(s->Execute("deallocate nosuch").ok());
  // Placeholders must be $1..$n with no gaps.
  EXPECT_FALSE(s->Execute("prepare gap as select grade from grades "
                          "where course-id = $2")
                   .ok());
  // DEALLOCATE ALL clears the registry.
  ASSERT_TRUE(s->Execute("prepare q2 as select name from students").ok());
  ASSERT_TRUE(s->Execute("deallocate all").ok());
  EXPECT_TRUE(s->PreparedNames().empty());
}

TEST_F(ServerTest, PreparedStatementsArePerSession) {
  ConnectionManager cm(db_);
  auto a = cm.Open("admin");
  auto b = cm.Open("admin");
  ASSERT_TRUE(a->Execute("prepare q as select name from students").ok());
  // Session b never prepared q: the registry is a's, not the server's.
  auto r = b->Execute("execute q");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(a->Execute("execute q").ok());
}

TEST_F(ServerTest, PreparedTrumanMatchesAdHoc) {
  ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kTruman);
  ASSERT_TRUE(s->Execute("prepare q as select grade from grades "
                         "where course-id = $1")
                  .ok());
  std::string expect =
      AdHoc("select grade from grades where course-id = 'cs101'", "11",
            EnforcementMode::kTruman);
  uint64_t misses_before = db_.statement_cache().misses();
  for (int i = 0; i < 5; ++i) {
    auto r = s->Execute("execute q ('cs101')");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(SortedRowsToString(r.value().relation), expect);
  }
  // First execution rewrites and caches; the rest reuse the rewritten
  // parameterized plan.
  EXPECT_EQ(db_.statement_cache().misses(), misses_before + 1);
  EXPECT_GE(db_.statement_cache().hits(), 4u);
}

TEST_F(ServerTest, PreparedNonTrumanCachesVerdict) {
  ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kNonTruman);
  ASSERT_TRUE(s->Execute("prepare q as select grade from grades "
                         "where student-id = $user-id "
                         "and course-id = $1")
                  .ok());
  auto first = s->Execute("execute q ('cs101')");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first.value().validity_from_cache);
  auto second = s->Execute("execute q ('cs101')");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second.value().validity_from_cache);
  // A different argument is a different concrete query: fresh verdict.
  auto third = s->Execute("execute q ('cs202')");
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_FALSE(third.value().validity_from_cache);
}

TEST_F(ServerTest, InterruptTargetsInFlightOnly) {
  ConnectionManager cm(db_);
  auto s = cm.Open("admin");
  // No statement in flight: the interrupt trips the current token, but the
  // next statement gets a fresh one and runs normally.
  EXPECT_TRUE(cm.Interrupt(s->id()));
  auto r = s->Execute("select name from students");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(cm.interrupts(), 1u);
  EXPECT_FALSE(cm.Interrupt("conn-999"));
}

TEST_F(ServerTest, DeallocateDuringInFlightExecutionDrains) {
  ConnectionManager cm(db_);
  auto s = cm.Open("admin");
  ASSERT_TRUE(s->Execute("prepare q as select s.name, g.grade "
                         "from students s, grades g "
                         "where s.student-id = g.student-id "
                         "and g.course-id = $1")
                  .ok());
  std::string expect = AdHoc(
      "select s.name, g.grade from students s, grades g "
      "where s.student-id = g.student-id and g.course-id = 'cs101'",
      "admin", EnforcementMode::kNone);
  int iters = 50 * StressRepeat(1);
  std::atomic<bool> stop{false};
  std::atomic<int> oks{0}, unknowns{0};
  std::thread worker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto r = s->Execute("execute q ('cs101')");
      if (r.ok()) {
        // An execution that won the race must still be complete and right:
        // DEALLOCATE drops the registry entry, never in-flight state.
        if (SortedRowsToString(r.value().relation) != expect) {
          ADD_FAILURE() << "mid-deallocate execution returned wrong rows";
        }
        oks.fetch_add(1, std::memory_order_relaxed);
      } else if (r.status().code() == StatusCode::kInvalidArgument) {
        unknowns.fetch_add(1, std::memory_order_relaxed);
      } else {
        ADD_FAILURE() << r.status().ToString();
      }
    }
  });
  for (int i = 0; i < iters; ++i) {
    ASSERT_TRUE(s->Execute("prepare q as select s.name, g.grade "
                           "from students s, grades g "
                           "where s.student-id = g.student-id "
                           "and g.course-id = $1")
                    .ok());
    auto d = s->Execute("deallocate q");
    if (!d.ok()) {
      EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
    }
  }
  stop.store(true, std::memory_order_release);
  worker.join();
  EXPECT_EQ(s->in_flight(), 0u);
}

TEST_F(ServerTest, CloseDrainsInFlightStatements) {
  ConnectionManager cm(db_);
  auto s = cm.Open("admin");
  std::atomic<bool> done{false};
  std::thread worker([&] {
    for (int i = 0; i < 20; ++i) {
      auto r = s->Execute("select s.name, g.grade from students s, grades g "
                          "where s.student-id = g.student-id");
      if (!r.ok() && r.status().code() != StatusCode::kCancelled) {
        ADD_FAILURE() << r.status().ToString();
      }
      if (!r.ok()) break;  // closed under us — expected
    }
    done.store(true, std::memory_order_release);
  });
  // Close concurrently: it must block until the in-flight statement (if
  // any) drained, and the session must end with nothing running.
  ASSERT_TRUE(cm.Close(s->id()));
  EXPECT_EQ(s->in_flight(), 0u);
  EXPECT_TRUE(s->closed());
  worker.join();
  EXPECT_TRUE(done.load());
}

// The CI centerpiece: 8 threads interleaving open / prepare / execute /
// interrupt / close against one manager. Successful executions must be
// bit-for-bit right; failures must be fail-closed codes.
TEST_F(ServerTest, InterleavedLifecycleSweep) {
  ConnectionManager cm(db_);
  std::string expect_truman =
      AdHoc("select grade from grades where course-id = 'cs101'", "11",
            EnforcementMode::kTruman);
  std::string expect_plain =
      AdHoc("select name from students where type = 'fulltime'", "admin",
            EnforcementMode::kNone);
  int iters = 25 * StressRepeat(1);
  std::atomic<int> wrong{0};
  auto fail_closed = [](StatusCode code) {
    switch (code) {
      case StatusCode::kCancelled:
      case StatusCode::kTimeout:
      case StatusCode::kResourceExhausted:
      case StatusCode::kOverloaded:
      case StatusCode::kInvalidArgument:  // raced a deallocate/close
      case StatusCode::kInternal:
      case StatusCode::kExecutionError:
        return true;
      default:
        return false;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        bool truman = (t + i) % 2 == 0;
        auto s = truman ? cm.Open("11", EnforcementMode::kTruman)
                        : cm.Open("admin");
        auto p = s->Execute(truman
                                ? "prepare q as select grade from grades "
                                  "where course-id = $1"
                                : "prepare q as select name from students "
                                  "where type = $1");
        if (!p.ok() && !fail_closed(p.status().code())) {
          ADD_FAILURE() << p.status().ToString();
        }
        for (int j = 0; j < 3; ++j) {
          auto r = s->Execute(truman ? "execute q ('cs101')"
                                     : "execute q ('fulltime')");
          if (r.ok()) {
            const std::string& expect = truman ? expect_truman : expect_plain;
            if (SortedRowsToString(r.value().relation) != expect) {
              wrong.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (!fail_closed(r.status().code())) {
            ADD_FAILURE() << r.status().ToString();
          }
          if (j == 1 && i % 3 == 0) s->Interrupt();
        }
        if (i % 2 == 0) {
          cm.Close(s->id());
        }  // odd iterations leave the session for CloseAll
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  cm.CloseAll();
  EXPECT_EQ(cm.active_sessions(), 0u);
  EXPECT_EQ(cm.sessions_opened(), cm.sessions_closed());
}

}  // namespace
}  // namespace fgac
