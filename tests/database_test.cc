// Facade-level tests: DDL lifecycle, REVOKE, EXPLAIN, script handling and
// session-mode dispatch.

#include "core/database.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::MustQueryAdmin;
using fgac::testing::SetupUniversity;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
  }
  SessionContext Student(const std::string& id) {
    SessionContext ctx(id);
    ctx.set_mode(EnforcementMode::kNonTruman);
    return ctx;
  }
  Database db_;
};

TEST_F(DatabaseTest, RevokeRemovesAccess) {
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  const std::string q = "select grade from grades where student-id = '11'";
  EXPECT_TRUE(db_.Execute(q, Student("11")).ok());
  ASSERT_TRUE(db_.ExecuteAsAdmin("revoke select on mygrades from 11").ok());
  auto r = db_.Execute(q, Student("11"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);
}

TEST_F(DatabaseTest, RevokeInvalidatesCachedVerdicts) {
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  const std::string q = "select grade from grades where student-id = '11'";
  ASSERT_TRUE(db_.Execute(q, Student("11")).ok());
  ASSERT_TRUE(db_.Execute(q, Student("11")).ok());  // cached accept
  ASSERT_TRUE(db_.ExecuteAsAdmin("revoke select on mygrades from 11").ok());
  // The cached acceptance must NOT survive the revocation.
  EXPECT_FALSE(db_.Execute(q, Student("11")).ok());
}

TEST_F(DatabaseTest, RevokeWithoutGrantFails) {
  auto r = db_.ExecuteAsAdmin("revoke select on mygrades from 11");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCatalogError);
}

TEST_F(DatabaseTest, ExplainShowsPlans) {
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  auto r = db_.Execute(
      "explain select s.name from students s, grades g "
      "where s.student-id = g.student-id",
      admin);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text;
  for (const Row& row : r.value().relation.rows()) {
    text += row[0].string_value() + "\n";
  }
  EXPECT_NE(text.find("canonical plan:"), std::string::npos);
  EXPECT_NE(text.find("optimized plan"), std::string::npos);
  EXPECT_NE(text.find("Join"), std::string::npos);
}

TEST_F(DatabaseTest, ExplainShowsValidityAndWitness) {
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  auto r = db_.Execute("explain select grade from grades "
                       "where student-id = '11'",
                       Student("11"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string text;
  for (const Row& row : r.value().relation.rows()) {
    text += row[0].string_value() + "\n";
  }
  EXPECT_NE(text.find("unconditionally valid"), std::string::npos);
  EXPECT_NE(text.find("witness rewriting"), std::string::npos);
  EXPECT_NE(text.find("view:mygrades"), std::string::npos);
}

TEST_F(DatabaseTest, ExplainShowsRejection) {
  auto r = db_.Execute("explain select * from grades", Student("11"));
  ASSERT_TRUE(r.ok());
  std::string text;
  for (const Row& row : r.value().relation.rows()) {
    text += row[0].string_value() + "\n";
  }
  EXPECT_NE(text.find("REJECTED"), std::string::npos);
}

TEST_F(DatabaseTest, ExplainShowsTrumanRewrite) {
  ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "mygrades").ok());
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kTruman);
  auto r = db_.Execute("explain select * from grades", ctx);
  ASSERT_TRUE(r.ok());
  std::string text;
  for (const Row& row : r.value().relation.rows()) {
    text += row[0].string_value() + "\n";
  }
  EXPECT_NE(text.find("truman-rewritten plan:"), std::string::npos);
}

TEST_F(DatabaseTest, DropTableRemovesSchemaAndData) {
  ASSERT_TRUE(db_.ExecuteAsAdmin("create table tmp (x int)").ok());
  ASSERT_TRUE(db_.ExecuteAsAdmin("insert into tmp values (1)").ok());
  ASSERT_TRUE(db_.ExecuteAsAdmin("drop table tmp").ok());
  EXPECT_FALSE(db_.catalog().HasTable("tmp"));
  EXPECT_FALSE(db_.state().HasTable("tmp"));
  EXPECT_FALSE(db_.ExecuteAsAdmin("select * from tmp").ok());
}

TEST_F(DatabaseTest, DropView) {
  ASSERT_TRUE(db_.ExecuteAsAdmin("drop view avggrades").ok());
  EXPECT_FALSE(db_.catalog().HasView("avggrades"));
}

TEST_F(DatabaseTest, ScriptStopsAtFirstError) {
  Status s = db_.ExecuteScript(
      "create table ok1 (x int); create table ok1 (x int); "
      "create table never (x int)");
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(db_.catalog().HasTable("ok1"));
  EXPECT_FALSE(db_.catalog().HasTable("never"));
}

TEST_F(DatabaseTest, VersionsAdvance) {
  uint64_t cat = db_.catalog_version();
  uint64_t data = db_.data_version();
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  EXPECT_GT(db_.catalog_version(), cat);
  EXPECT_EQ(db_.data_version(), data);
  ASSERT_TRUE(
      db_.ExecuteAsAdmin("insert into courses values ('cs9', 'x')").ok());
  EXPECT_GT(db_.data_version(), data);
}

TEST_F(DatabaseTest, DdlMessagesAreInformative) {
  auto r = db_.ExecuteAsAdmin("create table msgs (x int)");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().message.find("msgs"), std::string::npos);
}

TEST_F(DatabaseTest, OptimizerlessExecutionPathWorks) {
  db_.options().optimize_execution = false;
  auto rel = MustQueryAdmin(
      &db_, "select s.name from students s, grades g "
            "where s.student-id = g.student-id and g.grade = 4.0");
  EXPECT_EQ(rel.num_rows(), 1u);
}

TEST_F(DatabaseTest, SessionParamsReachViews) {
  // A view keyed on a non-user parameter ($term).
  ASSERT_TRUE(db_.ExecuteScript(
                     "create authorization view term_regs as "
                     "select * from registered where course-id = $term;"
                     "grant select on term_regs to 11")
                  .ok());
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  ctx.SetParam("term", Value::String("cs101"));
  auto r = db_.Execute(
      "select * from registered where course-id = 'cs101'", ctx);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  // A different term parameter authorizes a different slice.
  SessionContext other("11");
  other.set_mode(EnforcementMode::kNonTruman);
  other.SetParam("term", Value::String("cs202"));
  EXPECT_FALSE(
      db_.Execute("select * from registered where course-id = 'cs101'", other)
          .ok());
}

TEST_F(DatabaseTest, NumericUserIdsWork) {
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 13").ok());
  auto rel = fgac::testing::MustQuery(
      &db_, "select grade from grades where student-id = '13'", Student("13"));
  EXPECT_EQ(rel.num_rows(), 1u);
}

}  // namespace
}  // namespace fgac
