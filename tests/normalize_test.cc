#include "algebra/normalize.h"

#include <gtest/gtest.h>

#include "algebra/plan_hash.h"

namespace fgac::algebra {
namespace {

ScalarPtr Col(int slot) { return MakeColumn(slot); }
ScalarPtr Lit(int64_t v) { return MakeLiteralScalar(Value::Int(v)); }
ScalarPtr Eq(ScalarPtr a, ScalarPtr b) {
  return MakeBinaryScalar(sql::BinOp::kEq, std::move(a), std::move(b));
}

TEST(NormalizeScalarTest, ConstantFolding) {
  ScalarPtr s = NormalizeScalar(
      MakeBinaryScalar(sql::BinOp::kAdd, Lit(1), Lit(2)));
  ASSERT_EQ(s->kind, ScalarKind::kLiteral);
  EXPECT_EQ(s->value, Value::Int(3));
}

TEST(NormalizeScalarTest, DivisionByZeroNotFolded) {
  // Must surface at execution, not vanish at normalization.
  ScalarPtr s = NormalizeScalar(
      MakeBinaryScalar(sql::BinOp::kDiv, Lit(1), Lit(0)));
  EXPECT_EQ(s->kind, ScalarKind::kBinary);
}

TEST(NormalizeScalarTest, CommutativeOperandOrdering) {
  ScalarPtr a = NormalizeScalar(Eq(Col(0), Col(5)));
  ScalarPtr b = NormalizeScalar(Eq(Col(5), Col(0)));
  EXPECT_TRUE(ScalarEquals(a, b));
  EXPECT_EQ(ScalarFingerprint(a), ScalarFingerprint(b));
}

TEST(NormalizeScalarTest, GtRewrittenToLt) {
  ScalarPtr a = NormalizeScalar(MakeBinaryScalar(sql::BinOp::kGt, Col(0), Lit(3)));
  ScalarPtr b = NormalizeScalar(MakeBinaryScalar(sql::BinOp::kLt, Lit(3), Col(0)));
  EXPECT_TRUE(ScalarEquals(a, b));
}

TEST(NormalizeScalarTest, DoubleNegation) {
  ScalarPtr s = NormalizeScalar(
      MakeUnaryScalar(sql::UnOp::kNot, MakeUnaryScalar(sql::UnOp::kNot, Col(0))));
  EXPECT_EQ(s->kind, ScalarKind::kColumn);
}

TEST(NormalizeScalarTest, NotPushedOverComparison) {
  ScalarPtr s = NormalizeScalar(MakeUnaryScalar(
      sql::UnOp::kNot, MakeBinaryScalar(sql::BinOp::kLt, Col(0), Lit(3))));
  ASSERT_EQ(s->kind, ScalarKind::kBinary);
  // NOT (a < 3) => a >= 3 => canonical (3 <= a).
  EXPECT_EQ(s->bin_op, sql::BinOp::kLe);
}

TEST(NormalizeScalarTest, NotOverIsNull) {
  ScalarPtr s = NormalizeScalar(MakeUnaryScalar(
      sql::UnOp::kNot, MakeUnaryScalar(sql::UnOp::kIsNull, Col(1))));
  ASSERT_EQ(s->kind, ScalarKind::kUnary);
  EXPECT_EQ(s->un_op, sql::UnOp::kIsNotNull);
}

TEST(NormalizeScalarTest, InListSortedDeduped) {
  ScalarPtr a = NormalizeScalar(
      MakeInListScalar(Col(0), {Lit(3), Lit(1), Lit(3)}, false));
  ScalarPtr b = NormalizeScalar(
      MakeInListScalar(Col(0), {Lit(1), Lit(3)}, false));
  EXPECT_TRUE(ScalarEquals(a, b));
}

TEST(NormalizeScalarTest, SingleElementInBecomesEquality) {
  ScalarPtr s = NormalizeScalar(MakeInListScalar(Col(0), {Lit(7)}, false));
  ASSERT_EQ(s->kind, ScalarKind::kBinary);
  EXPECT_EQ(s->bin_op, sql::BinOp::kEq);
}

TEST(SplitConjunctsTest, FlattensSortsDedups) {
  ScalarPtr p1 = Eq(Col(0), Lit(1));
  ScalarPtr p2 = Eq(Col(1), Lit(2));
  ScalarPtr tree = MakeBinaryScalar(
      sql::BinOp::kAnd, MakeBinaryScalar(sql::BinOp::kAnd, p1, p2), p1);
  auto conjuncts = SplitConjuncts(tree);
  EXPECT_EQ(conjuncts.size(), 2u);
}

TEST(SplitConjunctsTest, TrueDropped) {
  auto conjuncts = SplitConjuncts(MakeLiteralScalar(Value::Bool(true)));
  EXPECT_TRUE(conjuncts.empty());
}

TEST(NormalizePredicatesTest, EqualityTransitiveClosure) {
  // a=b and b=c => a=c is added.
  std::vector<ScalarPtr> preds = {Eq(Col(0), Col(1)), Eq(Col(1), Col(2))};
  auto out = NormalizePredicates(preds);
  bool has_ac = false;
  for (const ScalarPtr& p : out) {
    if (ScalarEquals(p, NormalizeScalar(Eq(Col(0), Col(2))))) has_ac = true;
  }
  EXPECT_TRUE(has_ac);
}

TEST(NormalizePredicatesTest, ConstantPropagatedAcrossClass) {
  std::vector<ScalarPtr> preds = {Eq(Col(0), Col(1)), Eq(Col(0), Lit(5))};
  auto out = NormalizePredicates(preds);
  bool has_b5 = false;
  for (const ScalarPtr& p : out) {
    if (ScalarEquals(p, NormalizeScalar(Eq(Col(1), Lit(5))))) has_b5 = true;
  }
  EXPECT_TRUE(has_b5);
}

TEST(NormalizePlanTest, SelectMergeAndIdentityProject) {
  PlanPtr get = MakeGet("t", {"a", "b"});
  PlanPtr inner = MakeSelect({Eq(Col(0), Lit(1))}, get);
  PlanPtr outer = MakeSelect({Eq(Col(1), Lit(2))}, inner);
  PlanPtr projected =
      MakeProject({Col(0), Col(1)}, {"a", "b"}, outer);
  PlanPtr norm = NormalizePlan(projected);
  // Identity project dropped, selects merged.
  ASSERT_EQ(norm->kind, PlanKind::kSelect);
  EXPECT_EQ(norm->predicates.size(), 2u);
  EXPECT_EQ(norm->children[0]->kind, PlanKind::kGet);
}

TEST(NormalizePlanTest, ProjectComposition) {
  PlanPtr get = MakeGet("t", {"a", "b", "c"});
  PlanPtr p1 = MakeProject({Col(2), Col(0)}, {"c", "a"}, get);
  PlanPtr p2 = MakeProject({Col(1)}, {"a"}, p1);
  PlanPtr norm = NormalizePlan(p2);
  ASSERT_EQ(norm->kind, PlanKind::kProject);
  EXPECT_EQ(norm->children[0]->kind, PlanKind::kGet);
  ASSERT_EQ(norm->exprs.size(), 1u);
  EXPECT_EQ(norm->exprs[0]->slot, 0);
}

TEST(NormalizePlanTest, DistinctOverDistinctCollapsed) {
  PlanPtr get = MakeGet("t", {"a"});
  PlanPtr norm = NormalizePlan(MakeDistinct(MakeDistinct(get)));
  EXPECT_EQ(norm->kind, PlanKind::kDistinct);
  EXPECT_EQ(norm->children[0]->kind, PlanKind::kGet);
}

TEST(NormalizePlanTest, EmptySelectDropped) {
  PlanPtr get = MakeGet("t", {"a"});
  PlanPtr sel = MakeSelect({MakeLiteralScalar(Value::Bool(true))}, get);
  PlanPtr norm = NormalizePlan(sel);
  EXPECT_EQ(norm->kind, PlanKind::kGet);
}

}  // namespace
}  // namespace fgac::algebra
