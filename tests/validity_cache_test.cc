// The prepared-statement validity cache (paper Section 5.6 optimizations).

#include "core/validity_cache.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using core::ValidityCache;
using core::ValidityReport;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

ValidityReport Accepted(bool unconditional) {
  ValidityReport r;
  r.valid = true;
  r.unconditional = unconditional;
  return r;
}

// Lookup helper for the (user, plan_fp, catalog_version, policy_epoch,
// data_version) signature; returns whether the lookup hit.
bool Hit(ValidityCache& cache, const std::string& user, uint64_t fp,
         uint64_t cv, uint64_t pe, uint64_t dv,
         ValidityReport* out = nullptr) {
  return cache.Lookup(user, fp, cv, pe, dv, out);
}

TEST(ValidityCacheTest, HitAfterInsert) {
  ValidityCache cache;
  EXPECT_FALSE(Hit(cache, "u", 1, 1, 1, 1));
  cache.Insert("u", 1, 1, 1, 1, Accepted(true));
  ValidityReport report;
  ASSERT_TRUE(Hit(cache, "u", 1, 1, 1, 1, &report));
  EXPECT_TRUE(report.valid);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ValidityCacheTest, KeyedByUserAndPlan) {
  ValidityCache cache;
  cache.Insert("u", 1, 1, 1, 1, Accepted(true));
  EXPECT_FALSE(Hit(cache, "v", 1, 1, 1, 1));
  EXPECT_FALSE(Hit(cache, "u", 2, 1, 1, 1));
}

TEST(ValidityCacheTest, CatalogVersionInvalidatesEverything) {
  ValidityCache cache;
  cache.Insert("u", 1, 1, 1, 1, Accepted(true));
  EXPECT_FALSE(Hit(cache, "u", 1, 2, 1, 1));
}

TEST(ValidityCacheTest, PolicyEpochInvalidatesEverything) {
  // Even an unconditional acceptance dies when the policy epoch advances:
  // the authorization views it was judged against may have narrowed.
  ValidityCache cache;
  cache.Insert("u", 1, 1, 1, 1, Accepted(true));
  EXPECT_FALSE(Hit(cache, "u", 1, 1, 2, 1));
  // The stale entry was erased, not just skipped.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ValidityCacheTest, DataVersionInvalidatesConditionalOnly) {
  ValidityCache cache;
  cache.Insert("u", 1, 1, 1, 1, Accepted(true));        // unconditional
  cache.Insert("u", 2, 1, 1, 1, Accepted(false));       // conditional
  ValidityReport rejected;
  rejected.valid = false;
  cache.Insert("u", 3, 1, 1, 1, rejected);              // rejection
  // Data changed: unconditional verdicts survive, conditional/rejections die.
  EXPECT_TRUE(Hit(cache, "u", 1, 1, 1, 2));
  EXPECT_FALSE(Hit(cache, "u", 2, 1, 1, 2));
  EXPECT_FALSE(Hit(cache, "u", 3, 1, 1, 2));
}

class DatabaseCacheTest : public ::testing::Test {
 protected:
  static void Setup(Database* db) {
    SetupUniversity(db);
    CreateUniversityViews(db);
    ASSERT_TRUE(db->ExecuteAsAdmin("grant select on mygrades to 11").ok());
    ASSERT_TRUE(
        db->ExecuteAsAdmin("grant select on costudentgrades to 11").ok());
    ASSERT_TRUE(
        db->ExecuteAsAdmin("grant select on myregistrations to 11").ok());
  }

  void SetUp() override { Setup(&db_); }

  SessionContext Student() {
    SessionContext ctx("11");
    ctx.set_mode(EnforcementMode::kNonTruman);
    return ctx;
  }

  Database db_;
};

TEST_F(DatabaseCacheTest, SecondExecutionHitsCache) {
  const std::string q = "select grade from grades where student-id = '11'";
  auto r1 = db_.Execute(q, Student());
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value().validity_from_cache);
  auto r2 = db_.Execute(q, Student());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().validity_from_cache);
}

TEST_F(DatabaseCacheTest, GrantRevokesCachedVerdicts) {
  const std::string q = "select grade from grades where student-id = '11'";
  ASSERT_TRUE(db_.Execute(q, Student()).ok());
  // Any catalog change (here: a new grant) bumps the catalog version.
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on avggrades to 11").ok());
  auto r = db_.Execute(q, Student());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().validity_from_cache);
}

TEST_F(DatabaseCacheTest, DataChangeInvalidatesConditionalVerdict) {
  // Conditionally valid via C3 (registered for cs101).
  const std::string q = "select * from grades where course-id = 'cs101'";
  auto r1 = db_.Execute(q, Student());
  ASSERT_TRUE(r1.ok());
  ASSERT_FALSE(r1.value().validity.unconditional);
  // DML bumps the data version; the conditional verdict must be re-derived.
  ASSERT_TRUE(
      db_.ExecuteAsAdmin("insert into courses values ('cs303', 'os')").ok());
  auto r2 = db_.Execute(q, Student());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().validity_from_cache);
}

TEST_F(DatabaseCacheTest, DirectStorageDeleteInvalidatesConditionalVerdict) {
  // Regression: a remainder-tuple delete that bypasses Database DML and
  // writes storage directly (bench/test seeding style) must still kill the
  // cached conditional verdict. Before the version counter moved into
  // TableData, data_version() only saw Execute()-routed DML, so the stale
  // verdict kept admitting a query whose C3 witness was gone.
  const std::string q = "select * from grades where course-id = 'cs101'";
  auto r1 = db_.Execute(q, Student());
  ASSERT_TRUE(r1.ok());
  ASSERT_FALSE(r1.value().validity.unconditional);

  // Delete student 11's cs101 registration straight out of TableData.
  storage::TableData* reg = db_.state().GetMutableTable("registered");
  ASSERT_NE(reg, nullptr);
  std::vector<size_t> doomed;
  for (size_t i = 0; i < reg->rows().size(); ++i) {
    const Row& row = reg->rows()[i];
    if (row[0] == Value::String("11") && row[1] == Value::String("cs101"))
      doomed.push_back(i);
  }
  ASSERT_FALSE(doomed.empty());
  reg->EraseIndices(doomed);

  // The verdict's supporting fact is gone: the cache entry must not be
  // served, and re-derivation must now reject the query.
  auto r2 = db_.Execute(q, Student());
  if (r2.ok()) {
    EXPECT_FALSE(r2.value().validity_from_cache)
        << "stale conditional verdict served from cache";
  }
  EXPECT_FALSE(r2.ok()) << "query admitted without its C3 witness";
}

TEST_F(DatabaseCacheTest, ConditionalVerdictFlipsWithState) {
  // Student 11 not registered for ee150 -> rejected; after registering
  // (and the data version bump), the same query becomes valid.
  const std::string q = "select * from grades where course-id = 'ee150'";
  SessionContext ctx = Student();
  EXPECT_FALSE(db_.Execute(q, ctx).ok());
  ASSERT_TRUE(
      db_.ExecuteAsAdmin("insert into registered values ('11', 'ee150')").ok());
  EXPECT_TRUE(db_.Execute(q, ctx).ok());
}

TEST_F(DatabaseCacheTest, CacheCanBeDisabled) {
  db_.options().enable_validity_cache = false;
  const std::string q = "select grade from grades where student-id = '11'";
  ASSERT_TRUE(db_.Execute(q, Student()).ok());
  auto r2 = db_.Execute(q, Student());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().validity_from_cache);
}

TEST_F(DatabaseCacheTest, BlownProbeBudgetVerdictIsNotCached) {
  // A verdict reached before the whole-check probe cap blew is sound to
  // act on once but must NEVER be cached: with budget the check could have
  // proved more, and the cache would keep serving the starved verdict.
  const std::string q = "select * from grades where course-id = 'cs101'";
  auto free_run = db_.Execute(q, Student());
  ASSERT_TRUE(free_run.ok());
  ASSERT_FALSE(free_run.value().validity.unconditional);
  EXPECT_FALSE(free_run.value().validity.probe_budget_exhausted);
  const size_t probes = free_run.value().validity.c3_probes;
  ASSERT_GT(probes, 0u);

  // The engine is deterministic, so scanning budgets downward from the
  // unconstrained demand finds the boundary case: enough probes ran to
  // reach the conditional verdict, then a later batch was refused.
  bool exercised = false;
  for (size_t budget = probes; budget >= 1 && !exercised; --budget) {
    Database db;
    Setup(&db);
    db.options().validity.max_total_probes = budget;
    auto r = db.Execute(q, Student());
    if (!r.ok() || !r.value().validity.probe_budget_exhausted) continue;
    exercised = true;
    EXPECT_TRUE(r.value().validity.valid);
    EXPECT_FALSE(r.value().validity_from_cache);
    // The starved verdict must not have entered the cache: a second
    // execution re-derives from scratch.
    EXPECT_EQ(db.validity_cache().size(), 0u);
    auto again = db.Execute(q, Student());
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again.value().validity_from_cache);
  }
  ASSERT_TRUE(exercised)
      << "no probe budget reached a verdict and then blew; fixture needs "
         "a query with more than one probe batch";
}

TEST_F(DatabaseCacheTest, DifferentConstantsKeySeparately) {
  // Plan fingerprints cover constants: '11' vs '12' are different entries.
  ASSERT_TRUE(
      db_.Execute("select grade from grades where student-id = '11'", Student())
          .ok());
  auto r = db_.Execute("select grade from grades where student-id = '12'",
                       Student());
  ASSERT_FALSE(r.ok());  // not authorized, and independently computed
  EXPECT_EQ(db_.validity_cache().size(), 2u);
}

}  // namespace
}  // namespace fgac
