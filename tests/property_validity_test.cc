// The soundness property behind conditional validity (Definition 4.3): if a
// query is declared valid in state D, its result must be identical in every
// database state PA-equivalent to D (same instantiated-view outputs, same
// integrity constraints). Violations would be exactly the information leak
// of Example 4.3. We test this by random mutation: perturb tuples, keep
// only perturbations invisible to every authorization view (and legal under
// the constraints), and check the accepted query's answer is unchanged.

#include <gtest/gtest.h>

#include "algebra/binder.h"
#include "algebra/reference_eval.h"
#include "core/auth_view.h"
#include "core/database.h"
#include "sql/parser.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::SessionContext;
using fgac::testing::QueryGenerator;

struct Scenario {
  const char* name;
  std::vector<const char*> grants;
  const char* extra_ddl;  // may be nullptr
};

const Scenario kScenarios[] = {
    {"own_grades", {"mygrades"}, nullptr},
    {"aggregates", {"mygrades", "avggrades"}, nullptr},
    {"co_students", {"costudentgrades", "myregistrations"}, nullptr},
    {"threshold_agg", {"lcavggrades", "myregistrations"}, nullptr},
    {"u3_constraint",
     {"regstudents", "mygrades"},
     "insert into registered values ('14', 'ee150');"
     "create inclusion dependency esr on students (student-id) "
     "references registered (student-id)"},
};

class PaEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, int>> {
 protected:
  void SetUp() override {
    fgac::testing::SetupUniversity(&db_);
    fgac::testing::CreateUniversityViews(&db_);
    const Scenario& scenario = kScenarios[std::get<1>(GetParam())];
    if (scenario.extra_ddl != nullptr) {
      ASSERT_TRUE(db_.ExecuteScript(scenario.extra_ddl).ok());
    }
    for (const char* view : scenario.grants) {
      ASSERT_TRUE(
          db_.ExecuteAsAdmin(std::string("grant select on ") + view + " to 11")
              .ok());
    }
  }

  /// Applies one random mutation to the live state. Returns false if the
  /// mutation could not be applied.
  bool Mutate(std::mt19937* rng) {
    static const char* kTables[] = {"students", "courses", "registered",
                                    "grades"};
    const char* table = kTables[(*rng)() % 4];
    storage::TableData* data = db_.state().GetMutableTable(table);
    if (data == nullptr) return false;
    int op = static_cast<int>((*rng)() % 3);
    auto rand_of = [&](std::initializer_list<const char*> pool) {
      auto it = pool.begin();
      std::advance(it, (*rng)() % pool.size());
      return Value::String(*it);
    };
    if (op == 0 && data->num_rows() > 0) {  // delete
      data->EraseIndices({(*rng)() % data->num_rows()});
      return true;
    }
    if (op == 1) {  // insert
      Row row;
      std::string t(table);
      if (t == "students") {
        row = {Value::String("s" + std::to_string((*rng)() % 1000)),
               rand_of({"zoe", "yan", "xu"}), rand_of({"fulltime", "parttime"})};
      } else if (t == "courses") {
        row = {Value::String("c" + std::to_string((*rng)() % 1000)),
               rand_of({"topics", "seminar"})};
      } else if (t == "registered") {
        row = {rand_of({"11", "12", "13", "14"}),
               rand_of({"cs101", "cs202", "ee150"})};
      } else {
        row = {rand_of({"11", "12", "13", "14"}),
               rand_of({"cs101", "cs202", "ee150"}),
               Value::Double(1.0 + static_cast<double>((*rng)() % 7) * 0.5)};
      }
      data->Insert(std::move(row));
      return true;
    }
    if (data->num_rows() == 0) return false;
    // update one cell (read-modify-write through the versioned API)
    size_t r = (*rng)() % data->num_rows();
    Row row = data->rows()[r];
    size_t c = (*rng)() % row.size();
    if (row[c].is_double()) {
      row[c] = Value::Double(1.0 + static_cast<double>((*rng)() % 7) * 0.5);
    } else {
      row[c] = Value::String("m" + std::to_string((*rng)() % 100));
    }
    data->UpdateRow(r, std::move(row));
    return true;
  }

  Database db_;
};

TEST_P(PaEquivalenceTest, AcceptedQueriesAreInvariantAcrossPaStates) {
  uint32_t seed = std::get<0>(GetParam());
  SessionContext ctx("11");
  ctx.set_mode(core::EnforcementMode::kNonTruman);

  // Instantiate the user's views once (plans are state-independent).
  auto views = core::InstantiateAvailableViews(db_.catalog(), ctx);
  ASSERT_TRUE(views.ok()) << views.status().ToString();

  auto eval_views = [&](const storage::DatabaseState& state)
      -> std::vector<storage::Relation> {
    std::vector<storage::Relation> out;
    for (const core::InstantiatedView& v : views.value()) {
      if (v.is_access_pattern()) continue;  // no finite output to compare
      auto rel = algebra::ReferenceEval(v.plan, state);
      EXPECT_TRUE(rel.ok()) << rel.status().ToString();
      out.push_back(rel.ok() ? rel.value() : storage::Relation());
    }
    return out;
  };

  QueryGenerator gen(seed);
  std::mt19937 rng(seed * 7919 + 13);
  int accepted_queries = 0;
  int checked_mutations = 0;

  for (int qi = 0; qi < 25; ++qi) {
    std::string sql = gen.NextQuery();
    auto verdict = db_.CheckQueryValidity(sql, ctx);
    if (!verdict.ok() || !verdict.value().valid) continue;

    auto stmt = sql::Parser::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok());
    auto plan = db_.BindQuery(*stmt.value(), ctx);
    ASSERT_TRUE(plan.ok());
    auto baseline = algebra::ReferenceEval(plan.value(), db_.state());
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    std::vector<storage::Relation> view_baseline = eval_views(db_.state());
    ++accepted_queries;

    for (int mi = 0; mi < 30; ++mi) {
      storage::DatabaseState saved = db_.state().Clone();
      int steps = 1 + static_cast<int>(rng() % 3);
      bool applied = false;
      for (int s = 0; s < steps; ++s) applied = Mutate(&rng) || applied;
      bool pa_equivalent = applied && db_.VerifyConstraints().ok();
      if (pa_equivalent) {
        std::vector<storage::Relation> mutated_views = eval_views(db_.state());
        for (size_t v = 0; v < mutated_views.size() && pa_equivalent; ++v) {
          pa_equivalent = mutated_views[v].MultisetEquals(view_baseline[v]);
        }
      }
      if (pa_equivalent) {
        auto mutated = algebra::ReferenceEval(plan.value(), db_.state());
        ASSERT_TRUE(mutated.ok());
        EXPECT_TRUE(mutated.value().MultisetEquals(baseline.value()))
            << "INFORMATION LEAK: accepted query changed across a "
               "PA-equivalent state\nscenario: "
            << kScenarios[std::get<1>(GetParam())].name << "\nsql: " << sql
            << "\njustification: " << verdict.value().justification;
        ++checked_mutations;
      }
      db_.state() = std::move(saved);
    }
  }
  // The harness must actually exercise the property.
  RecordProperty("accepted_queries", accepted_queries);
  RecordProperty("checked_mutations", checked_mutations);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaEquivalenceTest,
    ::testing::Combine(::testing::Range(1u, 7u),
                       ::testing::Range(0, static_cast<int>(std::size(
                                               kScenarios)))));

// Deterministic leak regressions: scenarios the paper calls out explicitly.
TEST(PaEquivalenceRegressionTest, Example43RejectionIsNecessary) {
  // With only Co-studentGrades and NO registration visibility, accepting
  // "select * from grades where course-id = 'ee150'" would leak: there are
  // PA-equivalent states (registered vs not registered for the ungraded
  // ee150) in which the would-be q' differs. Demonstrate the two states.
  Database db;
  fgac::testing::SetupUniversity(&db);
  fgac::testing::CreateUniversityViews(&db);
  ASSERT_TRUE(db.ExecuteAsAdmin("grant select on costudentgrades to 12").ok());
  SessionContext ctx("12");
  ctx.set_mode(core::EnforcementMode::kNonTruman);

  // Rejected, as required.
  auto verdict =
      db.CheckQueryValidity("select * from grades where course-id = 'ee150'", ctx);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict.value().valid);

  // The two PA-equivalent states: student 12 registered for ee150 (actual)
  // vs not registered. ee150 has no grades, so the instantiated view's
  // output is identical in both; but had the engine accepted the query,
  // an intelligent user could distinguish them via acceptance itself.
  auto view = core::InstantiateView(
      db.catalog(), *db.catalog().GetView("costudentgrades"), ctx);
  ASSERT_TRUE(view.ok());
  auto out1 = algebra::ReferenceEval(view.value().plan, db.state());
  ASSERT_TRUE(out1.ok());
  storage::DatabaseState alt = db.state().Clone();
  // Remove 12's ee150 registration in the alternative state.
  storage::TableData* reg = alt.GetMutableTable("registered");
  std::vector<Row> kept;
  for (const Row& r : reg->rows()) {
    if (!(r[0] == Value::String("12") && r[1] == Value::String("ee150"))) {
      kept.push_back(r);
    }
  }
  ASSERT_LT(kept.size(), reg->rows().size());
  reg->ReplaceAllRows(kept);
  auto out2 = algebra::ReferenceEval(view.value().plan, alt);
  ASSERT_TRUE(out2.ok());
  EXPECT_TRUE(out1.value().MultisetEquals(out2.value()))
      << "the two states must be PA-equivalent for the paper's argument";
}

}  // namespace
}  // namespace fgac
