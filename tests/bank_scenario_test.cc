// Integration test of the paper's Section 1 banking scenario (mirrors
// examples/bank_teller.cpp as assertions): cell-level authorization via
// projection, customer row-level isolation, and access-pattern tellers.

#include <gtest/gtest.h>

#include "core/database.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;

class BankScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      create table customers (
        customer-id varchar not null primary key,
        name varchar not null,
        address varchar not null);
      create table accounts (
        account-id varchar not null primary key,
        customer-id varchar not null references customers,
        balance double not null);
      insert into customers values
        ('c1', 'alice', '12 elm st'),
        ('c2', 'bob', '99 oak ave');
      insert into accounts values
        ('a10', 'c1', 1500.0), ('a11', 'c1', 20.5), ('a20', 'c2', 48000.0);

      create authorization view myaccounts as
        select accounts.* from accounts, customers
        where customers.customer-id = accounts.customer-id
          and customers.name = $user-id;
      create authorization view teller_balances as
        select account-id, customer-id, balance from accounts;
      create authorization view teller_names as
        select customer-id, name from customers;
      create authorization view account_by_id as
        select * from accounts where account-id = $$acct;

      grant select on myaccounts to alice;
      grant select on teller_balances to teller;
      grant select on teller_names to teller;
      grant select on account_by_id to clerk;

      authorize update on accounts (balance)
        where old(accounts.account-id) = new(accounts.account-id) to teller;
    )sql")
                    .ok());
  }

  SessionContext User(const std::string& name) {
    SessionContext ctx(name);
    ctx.set_mode(EnforcementMode::kNonTruman);
    return ctx;
  }

  bool Accepts(const std::string& sql, const std::string& user) {
    auto r = db_.CheckQueryValidity(sql, User(user));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r.value().valid;
  }

  Database db_;
};

TEST_F(BankScenarioTest, CustomerSeesOwnAccountsOnly) {
  EXPECT_TRUE(Accepts(
      "select accounts.account-id, accounts.balance from accounts, customers "
      "where customers.customer-id = accounts.customer-id "
      "and customers.name = 'alice'",
      "alice"));
  EXPECT_FALSE(Accepts("select * from accounts", "alice"));
  EXPECT_FALSE(Accepts(
      "select balance from accounts where account-id = 'a20'", "alice"));
}

TEST_F(BankScenarioTest, CustomerCanAggregateOwnBalance) {
  SessionContext alice = User("alice");
  auto r = db_.Execute(
      "select sum(accounts.balance) from accounts, customers "
      "where customers.customer-id = accounts.customer-id "
      "and customers.name = 'alice'",
      alice);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().relation.num_rows(), 1u);
  EXPECT_EQ(r.value().relation.rows()[0][0], Value::Double(1520.5));
}

TEST_F(BankScenarioTest, TellerSeesBalancesNotAddresses) {
  // "read access to balances of all accounts but not the addresses of
  // customers corresponding to these balances" (Section 1).
  EXPECT_TRUE(Accepts("select account-id, balance from accounts", "teller"));
  EXPECT_TRUE(Accepts("select sum(balance) from accounts", "teller"));
  EXPECT_TRUE(Accepts(
      "select c.name, a.balance from customers c, accounts a "
      "where c.customer-id = a.customer-id",
      "teller"));
  EXPECT_FALSE(Accepts("select address from customers", "teller"));
  EXPECT_FALSE(Accepts(
      "select c.address, a.balance from customers c, accounts a "
      "where c.customer-id = a.customer-id",
      "teller"));
  EXPECT_FALSE(Accepts("select * from customers", "teller"));
}

TEST_F(BankScenarioTest, ClerkOneAccountAtATime) {
  // "the balance of any account by providing the account-id but not the
  // balances of all accounts together" (Section 1).
  EXPECT_TRUE(
      Accepts("select * from accounts where account-id = 'a20'", "clerk"));
  EXPECT_TRUE(
      Accepts("select balance from accounts where account-id = 'a10'",
              "clerk"));
  EXPECT_FALSE(Accepts("select * from accounts", "clerk"));
  EXPECT_FALSE(Accepts("select sum(balance) from accounts", "clerk"));
  EXPECT_FALSE(
      Accepts("select * from accounts where balance > 100", "clerk"));
}

TEST_F(BankScenarioTest, TellerUpdatesBalanceButNotOwner) {
  SessionContext teller = User("teller");
  auto deposit = db_.Execute(
      "update accounts set balance = balance + 100 where account-id = 'a10'",
      teller);
  ASSERT_TRUE(deposit.ok()) << deposit.status().ToString();
  EXPECT_EQ(deposit.value().affected_rows, 1);
  // Re-pointing an account at another customer touches an uncovered column.
  auto steal = db_.Execute(
      "update accounts set customer-id = 'c2' where account-id = 'a10'",
      teller);
  ASSERT_FALSE(steal.ok());
  EXPECT_EQ(steal.status().code(), StatusCode::kNotAuthorized);
}

TEST_F(BankScenarioTest, CustomerCannotUpdateAnything) {
  SessionContext alice = User("alice");
  EXPECT_FALSE(db_.Execute("update accounts set balance = 0 "
                           "where account-id = 'a10'",
                           alice)
                   .ok());
}

TEST_F(BankScenarioTest, TrumanModeForComparison) {
  ASSERT_TRUE(db_.catalog().SetTrumanView("accounts", "myaccounts").ok());
  SessionContext alice("alice");
  alice.set_mode(EnforcementMode::kTruman);
  auto r = db_.Execute("select sum(balance) from accounts", alice);
  ASSERT_TRUE(r.ok());
  // Silently restricted to alice's accounts — the misleading answer.
  EXPECT_EQ(r.value().relation.rows()[0][0], Value::Double(1520.5));
}

}  // namespace
}  // namespace fgac
