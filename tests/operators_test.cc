// Unit tests for the physical operators: iterator protocol (Open/Next,
// re-open), NULL handling in join keys and aggregates, and operator
// composition built by hand (no SQL).

#include "exec/operators.h"

#include <gtest/gtest.h>

#include "exec/eval.h"

namespace fgac::exec {
namespace {

using algebra::MakeBinaryScalar;
using algebra::MakeColumn;
using algebra::MakeLiteralScalar;
using algebra::ScalarPtr;

Row R(std::initializer_list<int64_t> vals) {
  Row row;
  for (int64_t v : vals) row.push_back(Value::Int(v));
  return row;
}

std::vector<Row> Drain(Operator* op) {
  EXPECT_TRUE(op->Open().ok());
  std::vector<Row> out;
  DataChunk chunk;
  while (true) {
    Result<bool> more = op->Next(chunk);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !more.value()) break;
    // Contract: Next returning true implies a non-empty chunk.
    EXPECT_FALSE(chunk.empty());
    for (size_t i = 0; i < chunk.size(); ++i) out.push_back(chunk.GetRow(i));
  }
  return out;
}

ScalarPtr ColEq(int slot, int64_t v) {
  return MakeBinaryScalar(sql::BinOp::kEq, MakeColumn(slot),
                          MakeLiteralScalar(Value::Int(v)));
}

TEST(OperatorsTest, ScanBorrowsRows) {
  std::vector<Row> rows = {R({1}), R({2}), R({3})};
  ScanOp scan(&rows);
  EXPECT_EQ(Drain(&scan).size(), 3u);
  // Re-open rescans from the start.
  EXPECT_EQ(Drain(&scan).size(), 3u);
}

TEST(OperatorsTest, ValuesOwnsRows) {
  ValuesOp values({R({1, 2}), R({3, 4})});
  auto out = Drain(&values);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1][1], Value::Int(4));
}

TEST(OperatorsTest, FilterDropsUnknown) {
  // NULL = 1 is UNKNOWN and must filter out.
  std::vector<Row> rows = {R({1}), {Value::Null()}, R({2})};
  auto scan = std::make_unique<ScanOp>(&rows);
  FilterOp filter({ColEq(0, 1)}, std::move(scan));
  EXPECT_EQ(Drain(&filter).size(), 1u);
}

TEST(OperatorsTest, HashJoinNullKeysNeverMatch) {
  std::vector<Row> left = {R({1}), {Value::Null()}};
  std::vector<Row> right = {R({1}), {Value::Null()}};
  HashJoinOp join({MakeColumn(0)}, {MakeColumn(0)}, {},
                  std::make_unique<ScanOp>(&left),
                  std::make_unique<ScanOp>(&right));
  auto out = Drain(&join);
  // Only 1=1 matches; NULL keys match nothing (SQL equi-join semantics).
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], Value::Int(1));
}

TEST(OperatorsTest, HashJoinDuplicateKeysMultiply) {
  std::vector<Row> left = {R({7}), R({7})};
  std::vector<Row> right = {R({7}), R({7}), R({7})};
  HashJoinOp join({MakeColumn(0)}, {MakeColumn(0)}, {},
                  std::make_unique<ScanOp>(&left),
                  std::make_unique<ScanOp>(&right));
  EXPECT_EQ(Drain(&join).size(), 6u);
}

TEST(OperatorsTest, HashJoinResidualPredicate) {
  std::vector<Row> left = {R({1, 10}), R({1, 20})};
  std::vector<Row> right = {R({1, 15})};
  // Key on col0; residual: left.col1 < right.col1 (slot 3 in combined row).
  HashJoinOp join({MakeColumn(0)}, {MakeColumn(0)},
                  {MakeBinaryScalar(sql::BinOp::kLt, MakeColumn(1),
                                    MakeColumn(3))},
                  std::make_unique<ScanOp>(&left),
                  std::make_unique<ScanOp>(&right));
  auto out = Drain(&join);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][1], Value::Int(10));
}

TEST(OperatorsTest, NestedLoopJoinCross) {
  std::vector<Row> left = {R({1}), R({2})};
  std::vector<Row> right = {R({3}), R({4}), R({5})};
  NestedLoopJoinOp join({}, std::make_unique<ScanOp>(&left),
                        std::make_unique<ScanOp>(&right));
  EXPECT_EQ(Drain(&join).size(), 6u);
}

TEST(OperatorsTest, HashAggregateNullsIgnoredByAggs) {
  std::vector<Row> rows = {R({1, 10}), {Value::Int(1), Value::Null()},
                           R({2, 30})};
  std::vector<algebra::AggExpr> aggs = {
      {algebra::AggFunc::kCountStar, nullptr, false},
      {algebra::AggFunc::kCount, MakeColumn(1), false},
      {algebra::AggFunc::kSum, MakeColumn(1), false}};
  HashAggregateOp agg({MakeColumn(0)}, aggs, std::make_unique<ScanOp>(&rows));
  auto out = Drain(&agg);
  ASSERT_EQ(out.size(), 2u);
  // Group 1: count(*)=2, count(col)=1, sum=10.
  EXPECT_EQ(out[0][1], Value::Int(2));
  EXPECT_EQ(out[0][2], Value::Int(1));
  EXPECT_EQ(out[0][3], Value::Int(10));
}

TEST(OperatorsTest, GroupKeysMayBeNull) {
  std::vector<Row> rows = {{Value::Null(), Value::Int(1)},
                           {Value::Null(), Value::Int(2)},
                           {Value::Int(5), Value::Int(3)}};
  std::vector<algebra::AggExpr> aggs = {
      {algebra::AggFunc::kCountStar, nullptr, false}};
  HashAggregateOp agg({MakeColumn(0)}, aggs, std::make_unique<ScanOp>(&rows));
  auto out = Drain(&agg);
  // NULL forms its own group (SQL GROUP BY semantics).
  ASSERT_EQ(out.size(), 2u);
}

TEST(OperatorsTest, DistinctReopenResets) {
  std::vector<Row> rows = {R({1}), R({1}), R({2})};
  DistinctOp distinct(std::make_unique<ScanOp>(&rows));
  EXPECT_EQ(Drain(&distinct).size(), 2u);
  EXPECT_EQ(Drain(&distinct).size(), 2u);  // seen-set must reset on Open
}

TEST(OperatorsTest, SortStableAndDirectional) {
  std::vector<Row> rows = {R({2, 1}), R({1, 2}), R({2, 3}), R({1, 4})};
  SortOp sort({{MakeColumn(0), /*descending=*/true}},
              std::make_unique<ScanOp>(&rows));
  auto out = Drain(&sort);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0][0], Value::Int(2));
  // Stability: equal keys keep input order.
  EXPECT_EQ(out[0][1], Value::Int(1));
  EXPECT_EQ(out[1][1], Value::Int(3));
}

TEST(OperatorsTest, LimitStopsEarlyAndReopens) {
  std::vector<Row> rows = {R({1}), R({2}), R({3})};
  LimitOp limit(2, std::make_unique<ScanOp>(&rows));
  EXPECT_EQ(Drain(&limit).size(), 2u);
  EXPECT_EQ(Drain(&limit).size(), 2u);
}

// Re-Open after *partial* consumption: a blocking operator abandoned
// mid-stream (e.g. by a LIMIT above it, or by a validity probe that only
// needed one chunk) must rebuild its state on the next Open rather than
// resume from a half-drained cursor.
std::vector<Row> PartialThenReopenDrain(Operator* op) {
  EXPECT_TRUE(op->Open().ok());
  DataChunk chunk;
  Result<bool> first = op->Next(chunk);
  EXPECT_TRUE(first.ok());
  // Abandon the stream after at most one chunk and start over.
  return Drain(op);
}

TEST(OperatorsTest, SortReopenAfterPartialConsumption) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 3000; ++i) rows.push_back(R({3000 - i}));
  SortOp sort({{MakeColumn(0), /*descending=*/false}},
              std::make_unique<ScanOp>(&rows));
  auto out = PartialThenReopenDrain(&sort);
  ASSERT_EQ(out.size(), rows.size());
  EXPECT_EQ(out[0][0], Value::Int(1));
  EXPECT_EQ(out.back()[0], Value::Int(3000));
}

TEST(OperatorsTest, HashAggregateReopenAfterPartialConsumption) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 3000; ++i) rows.push_back(R({i % 1500, i}));
  std::vector<algebra::AggExpr> aggs = {
      {algebra::AggFunc::kCountStar, nullptr, false}};
  HashAggregateOp agg({MakeColumn(0)}, aggs, std::make_unique<ScanOp>(&rows));
  auto out = PartialThenReopenDrain(&agg);
  // Every group must reappear with a fresh (not doubled) count.
  ASSERT_EQ(out.size(), 1500u);
  for (const Row& row : out) EXPECT_EQ(row[1], Value::Int(2));
}

TEST(OperatorsTest, HashJoinReopenAfterPartialConsumption) {
  std::vector<Row> left, right;
  for (int64_t i = 0; i < 3000; ++i) left.push_back(R({i % 100}));
  for (int64_t i = 0; i < 100; ++i) right.push_back(R({i}));
  HashJoinOp join({MakeColumn(0)}, {MakeColumn(0)}, {},
                  std::make_unique<ScanOp>(&left),
                  std::make_unique<ScanOp>(&right));
  auto out = PartialThenReopenDrain(&join);
  // Each left row matches exactly one right row; the rebuilt hash table
  // must not retain stale or duplicated build-side entries.
  EXPECT_EQ(out.size(), 3000u);
}

TEST(OperatorsTest, DistinctReopenAfterPartialConsumption) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 3000; ++i) rows.push_back(R({i % 2000}));
  DistinctOp distinct(std::make_unique<ScanOp>(&rows));
  EXPECT_EQ(PartialThenReopenDrain(&distinct).size(), 2000u);
}

TEST(OperatorsTest, UnionAllConcatenates) {
  std::vector<Row> a = {R({1})}, b = {R({2}), R({3})};
  std::vector<OperatorPtr> children;
  children.push_back(std::make_unique<ScanOp>(&a));
  children.push_back(std::make_unique<ScanOp>(&b));
  UnionAllOp u(std::move(children));
  EXPECT_EQ(Drain(&u).size(), 3u);
}

TEST(SplitJoinKeysTest, ClassifiesConjuncts) {
  // Combined space: left arity 2, right arity 2 (slots 2..3).
  std::vector<ScalarPtr> preds = {
      MakeBinaryScalar(sql::BinOp::kEq, MakeColumn(0), MakeColumn(2)),
      MakeBinaryScalar(sql::BinOp::kLt, MakeColumn(1), MakeColumn(3)),
      ColEq(1, 5),
  };
  JoinKeys keys = SplitJoinKeys(preds, 2);
  EXPECT_EQ(keys.left_keys.size(), 1u);
  EXPECT_EQ(keys.right_keys.size(), 1u);
  EXPECT_EQ(keys.residual.size(), 2u);
  // The right key is shifted into right-local slots.
  EXPECT_EQ(keys.right_keys[0]->slot, 0);
}

TEST(SplitJoinKeysTest, ReversedEquiPair) {
  std::vector<ScalarPtr> preds = {
      MakeBinaryScalar(sql::BinOp::kEq, MakeColumn(3), MakeColumn(1))};
  JoinKeys keys = SplitJoinKeys(preds, 2);
  ASSERT_EQ(keys.left_keys.size(), 1u);
  EXPECT_EQ(keys.left_keys[0]->slot, 1);
  EXPECT_EQ(keys.right_keys[0]->slot, 1);
}

}  // namespace
}  // namespace fgac::exec
