#ifndef FGAC_TESTS_QUERY_GEN_H_
#define FGAC_TESTS_QUERY_GEN_H_

#include <random>
#include <string>
#include <vector>

namespace fgac::testing {

/// Deterministic random SQL generator over the university schema. Produces
/// select-project-join queries with optional aggregation, DISTINCT, ORDER
/// BY and LIMIT — the subset the binder/executor/optimizer support.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint32_t seed) : rng_(seed) {}

  /// A random executable query (no parameters).
  std::string NextQuery();

 private:
  struct TableInfo {
    const char* name;
    std::vector<const char*> columns;
  };

  int Pick(int n) { return static_cast<int>(rng_() % static_cast<uint32_t>(n)); }
  bool Coin(double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
  }

  std::string RandomLiteral(const std::string& column);
  std::string RandomPredicate(const std::vector<std::string>& qualified_cols);

  std::mt19937 rng_;
};

inline std::string QueryGenerator::RandomLiteral(const std::string& column) {
  static const char* kStudents[] = {"'11'", "'12'", "'13'", "'14'", "'99'"};
  static const char* kCourses[] = {"'cs101'", "'cs202'", "'ee150'", "'zz999'"};
  static const char* kTypes[] = {"'fulltime'", "'parttime'"};
  static const char* kGrades[] = {"2.0", "3.0", "3.5", "4.0", "1.0"};
  if (column.find("student-id") != std::string::npos) return kStudents[Pick(5)];
  if (column.find("course-id") != std::string::npos) return kCourses[Pick(4)];
  if (column.find("type") != std::string::npos) return kTypes[Pick(2)];
  if (column.find("grade") != std::string::npos) return kGrades[Pick(5)];
  return "'x'";
}

inline std::string QueryGenerator::RandomPredicate(
    const std::vector<std::string>& cols) {
  const std::string& col = cols[Pick(static_cast<int>(cols.size()))];
  switch (Pick(6)) {
    case 0:
      return col + " = " + RandomLiteral(col);
    case 1:
      return col + " <> " + RandomLiteral(col);
    case 2:
      return col + " < " + RandomLiteral(col);
    case 3:
      return col + " >= " + RandomLiteral(col);
    case 4:
      return col + " in (" + RandomLiteral(col) + ", " + RandomLiteral(col) +
             ")";
    default: {
      // Column-to-column comparison within the scope.
      const std::string& other = cols[Pick(static_cast<int>(cols.size()))];
      return col + " = " + other;
    }
  }
}

inline std::string QueryGenerator::NextQuery() {
  static const TableInfo kTables[] = {
      {"students", {"student-id", "name", "type"}},
      {"courses", {"course-id", "name"}},
      {"registered", {"student-id", "course-id"}},
      {"grades", {"student-id", "course-id", "grade"}},
  };

  // FROM: 1-3 tables with aliases t0, t1, ...
  int num_tables = 1 + Pick(3);
  std::vector<const TableInfo*> tables;
  std::vector<std::string> qualified;
  std::string from;
  for (int i = 0; i < num_tables; ++i) {
    const TableInfo& t = kTables[Pick(4)];
    tables.push_back(&t);
    std::string alias = "t" + std::to_string(i);
    if (i > 0) from += ", ";
    from += std::string(t.name) + " " + alias;
    for (const char* c : t.columns) qualified.push_back(alias + "." + c);
  }

  // WHERE: join-ish predicates + random filters.
  std::vector<std::string> where;
  for (int i = 1; i < num_tables; ++i) {
    // Connect consecutive tables on a shared column name when possible.
    for (const char* c0 : tables[i - 1]->columns) {
      for (const char* c1 : tables[i]->columns) {
        if (std::string(c0) == c1 && std::string(c0) != "name") {
          where.push_back("t" + std::to_string(i - 1) + "." + c0 + " = t" +
                          std::to_string(i) + "." + c1);
          goto connected;
        }
      }
    }
  connected:;
  }
  int extra = Pick(3);
  for (int i = 0; i < extra; ++i) where.push_back(RandomPredicate(qualified));

  // SELECT: aggregate or plain projection.
  bool aggregate = Coin(0.3);
  std::string select;
  std::string group;
  if (aggregate) {
    const std::string& g = qualified[Pick(static_cast<int>(qualified.size()))];
    static const char* kAggs[] = {"count(*)", "min", "max", "count"};
    int agg = Pick(4);
    std::string agg_expr;
    if (agg == 0) {
      agg_expr = "count(*)";
    } else {
      const std::string& a = qualified[Pick(static_cast<int>(qualified.size()))];
      agg_expr = std::string(kAggs[agg]) + "(" + a + ")";
    }
    if (Coin(0.5)) {
      select = g + ", " + agg_expr;
      group = " group by " + g;
      if (Coin(0.3)) group += " having count(*) >= 1";
    } else {
      select = agg_expr;
    }
  } else {
    int cols = 1 + Pick(3);
    for (int i = 0; i < cols; ++i) {
      if (i > 0) select += ", ";
      select += qualified[Pick(static_cast<int>(qualified.size()))];
    }
  }

  std::string sql = "select ";
  if (!aggregate && Coin(0.3)) sql += "distinct ";
  sql += select + " from " + from;
  if (!where.empty()) {
    sql += " where ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) sql += " and ";
      sql += where[i];
    }
  }
  sql += group;
  // ORDER BY is harmless for multiset comparison; LIMIT is deliberately
  // not generated (with ties, different-but-correct engines may keep
  // different rows, so LIMIT is covered by deterministic unit tests).
  if (Coin(0.2)) sql += " order by 1";
  return sql;
}

}  // namespace fgac::testing

#endif  // FGAC_TESTS_QUERY_GEN_H_
