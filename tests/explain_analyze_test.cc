// EXPLAIN ANALYZE and ValidityTrace coverage: the rule-application
// sequence recorded for unconditional (U-rule) and conditional (C3)
// acceptances, rejections and Truman degradations; per-operator row
// counts matching result cardinalities in serial and parallel execution;
// and the SQL-level EXPLAIN ANALYZE rendering.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "core/database.h"
#include "core/validity_trace.h"
#include "exec/exec_stats.h"
#include "server/connection_manager.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::ExecResult;
using core::SessionContext;
using core::ValidityTraceEvent;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
  }

  void Grant(const std::string& view, const std::string& user) {
    ASSERT_TRUE(
        db_.ExecuteAsAdmin("grant select on " + view + " to " + user).ok());
  }

  // Rows of an EXPLAIN [ANALYZE] result joined into one text blob.
  std::string ExplainText(const std::string& sql, const SessionContext& ctx) {
    auto r = db_.Execute(sql, ctx);
    EXPECT_TRUE(r.ok()) << r.status().message();
    if (!r.ok()) return "";
    std::string text;
    for (const auto& row : r.value().relation.rows()) {
      text += row[0].string_value() + "\n";
    }
    return text;
  }

  static bool HasEvent(const core::ValidityTrace& trace,
                       ValidityTraceEvent::Kind kind) {
    for (const auto& e : trace.events()) {
      if (e.kind == kind) return true;
    }
    return false;
  }

  Database db_;
};

TEST_F(ExplainAnalyzeTest, UnconditionalAcceptanceTracesURule) {
  Grant("mygrades", "11");
  SessionContext ctx("11");
  ctx.set_profile(true);
  auto r = db_.Execute("select grade from grades where student-id = '11'",
                       ctx);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const ExecResult& res = r.value();
  ASSERT_NE(res.trace, nullptr);
  ASSERT_NE(res.exec_stats, nullptr);

  // Cache miss, U1 instantiation of mygrades, unconditional verdict.
  EXPECT_TRUE(HasEvent(*res.trace, ValidityTraceEvent::Kind::kCacheMiss));
  EXPECT_TRUE(res.trace->FiredRule("U1"));
  const auto& last = res.trace->events().back();
  EXPECT_EQ(last.kind, ValidityTraceEvent::Kind::kVerdict);
  EXPECT_TRUE(last.valid);
  EXPECT_TRUE(last.unconditional);
  EXPECT_EQ(res.trace->TotalProbes(), 0u);  // U rules never touch the data

  // The executed plan is annotated and its root produced the result rows.
  ASSERT_NE(res.exec_stats->executed_plan(), nullptr);
  const exec::OpStats* root =
      res.exec_stats->Find(res.exec_stats->executed_plan().get());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->rows_out.load(), res.relation.num_rows());
}

TEST_F(ExplainAnalyzeTest, ConditionalAcceptanceTracesC3AndProbes) {
  Grant("costudentgrades", "11");
  Grant("myregistrations", "11");
  SessionContext ctx("11");
  ctx.set_profile(true);
  auto r = db_.Execute("select * from grades where course-id = 'cs101'", ctx);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const ExecResult& res = r.value();
  ASSERT_NE(res.trace, nullptr);
  EXPECT_FALSE(res.validity.unconditional);

  // C3 fired, backed by at least one recorded LIMIT-1 probe batch whose
  // probe SQL was captured for the audit trail.
  EXPECT_TRUE(res.trace->FiredRule("C3a/C3b"));
  EXPECT_GT(res.trace->TotalProbes(), 0u);
  bool saw_probe_sql = false;
  for (const auto& e : res.trace->events()) {
    if (e.kind == ValidityTraceEvent::Kind::kProbeBatch &&
        !e.probe_sql.empty()) {
      saw_probe_sql = true;
      EXPECT_GE(e.probes, e.probe_rows);  // non-empty probes are a subset
    }
  }
  EXPECT_TRUE(saw_probe_sql);
  const auto& last = res.trace->events().back();
  EXPECT_EQ(last.kind, ValidityTraceEvent::Kind::kVerdict);
  EXPECT_TRUE(last.valid);
  EXPECT_FALSE(last.unconditional);
}

TEST_F(ExplainAnalyzeTest, SecondRunTracesCacheHit) {
  Grant("mygrades", "11");
  SessionContext ctx("11");
  ctx.set_profile(true);
  const std::string q = "select grade from grades where student-id = '11'";
  ASSERT_TRUE(db_.Execute(q, ctx).ok());
  auto r = db_.Execute(q, ctx);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r.value().trace, nullptr);
  EXPECT_TRUE(r.value().validity_from_cache);
  EXPECT_TRUE(HasEvent(*r.value().trace, ValidityTraceEvent::Kind::kCacheHit));
  // A cached verdict replays no rules.
  EXPECT_TRUE(r.value().trace->RuleSequence().empty());
}

TEST_F(ExplainAnalyzeTest, DegradedRunTracesDegradationAndReason) {
  Grant("mygrades", "11");
  db_.options().validity.check_timeout = std::chrono::microseconds(1);
  SessionContext ctx("11");
  ctx.set_profile(true);
  common::QueryLimits limits;
  limits.degrade_policy = common::DegradePolicy::kTruman;
  ctx.set_query_limits(limits);
  auto r = db_.Execute("select grade from grades where student-id = '11'",
                       ctx);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(r.value().degraded_to_truman);
  ASSERT_NE(r.value().trace, nullptr);
  bool saw = false;
  for (const auto& e : r.value().trace->events()) {
    if (e.kind == ValidityTraceEvent::Kind::kDegraded) {
      saw = true;
      EXPECT_NE(e.detail.find("degraded to Truman"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw);
  std::string jsonl = r.value().trace->ToJsonLines();
  EXPECT_NE(jsonl.find("\"event\":\"degraded_to_truman\""),
            std::string::npos);
}

TEST_F(ExplainAnalyzeTest, PerOperatorRowsMatchSerialAndParallel) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SessionContext admin("admin");
    admin.set_mode(EnforcementMode::kNone);
    admin.set_profile(true);
    admin.set_exec_parallelism(threads);
    auto r = db_.Execute("select * from grades", admin);
    ASSERT_TRUE(r.ok()) << r.status().message();
    const ExecResult& res = r.value();
    ASSERT_NE(res.exec_stats, nullptr);
    ASSERT_NE(res.exec_stats->executed_plan(), nullptr);
    const exec::OpStats* root =
        res.exec_stats->Find(res.exec_stats->executed_plan().get());
    ASSERT_NE(root, nullptr) << "threads=" << threads;
    EXPECT_EQ(res.relation.num_rows(), 4u);
    EXPECT_EQ(root->rows_out.load(), 4u) << "threads=" << threads;
    if (threads > 1) {
      EXPECT_EQ(res.exec_stats->threads(), threads);
      uint64_t morsels = 0;
      for (uint64_t m : res.exec_stats->worker_morsels()) morsels += m;
      EXPECT_GE(morsels, 1u);
    }
  }
}

TEST_F(ExplainAnalyzeTest, AggregateRowsMatchGroupCount) {
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  admin.set_profile(true);
  admin.set_exec_parallelism(4);
  auto r = db_.Execute(
      "select course-id, avg(grade) from grades group by course-id", admin);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const ExecResult& res = r.value();
  ASSERT_NE(res.exec_stats, nullptr);
  const exec::OpStats* root =
      res.exec_stats->Find(res.exec_stats->executed_plan().get());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->rows_out.load(), res.relation.num_rows());
  EXPECT_EQ(res.relation.num_rows(), 2u);  // cs101, cs202
}

TEST_F(ExplainAnalyzeTest, SqlRenderingShowsPlanAndTrace) {
  Grant("mygrades", "11");
  SessionContext ctx("11");
  std::string text = ExplainText(
      "explain analyze select grade from grades where student-id = '11'",
      ctx);
  EXPECT_NE(text.find("canonical plan:"), std::string::npos);
  EXPECT_NE(text.find("validity: unconditionally valid via"),
            std::string::npos);
  EXPECT_NE(text.find("execution:"), std::string::npos);
  EXPECT_NE(text.find("[rows="), std::string::npos);
  EXPECT_NE(text.find("Scan(grades)"), std::string::npos);
  EXPECT_NE(text.find("validity trace:"), std::string::npos);
  EXPECT_NE(text.find("rule_fired U1"), std::string::npos);
  EXPECT_NE(text.find("result: 2 row(s)"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, SqlRenderingOfRejectionKeepsTrace) {
  // User 12 holds only mygrades; SELECT * over all grades must be
  // rejected — and EXPLAIN ANALYZE must say why instead of erroring.
  Grant("mygrades", "12");
  SessionContext ctx("12");
  std::string text =
      ExplainText("explain analyze select * from grades", ctx);
  EXPECT_NE(text.find("validity: REJECTED"), std::string::npos);
  EXPECT_NE(text.find("validity trace:"), std::string::npos);
  EXPECT_NE(text.find("verdict"), std::string::npos);
  // Nothing was executed, so no per-operator annotations appear.
  EXPECT_EQ(text.find("execution:"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, JsonLinesOneObjectPerEvent) {
  Grant("mygrades", "11");
  SessionContext ctx("11");
  ctx.set_profile(true);
  auto r = db_.Execute("select grade from grades where student-id = '11'",
                       ctx);
  ASSERT_TRUE(r.ok());
  const auto& trace = *r.value().trace;
  std::string jsonl = trace.ToJsonLines();
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, trace.events().size());
  EXPECT_NE(jsonl.find("\"event\":\"cache_miss\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"rule_fired\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"rule\":\"U1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"verdict\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"valid\":true"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, SqlRenderingShowsPipelineDecomposition) {
  // Parallel execution renders the pipeline DAG the plan decomposed into:
  // one line per pipeline with kind, task count and dependency edges.
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  admin.set_exec_parallelism(4);
  std::string text = ExplainText(
      "explain analyze select course-id, avg(grade) from grades "
      "group by course-id",
      admin);
  EXPECT_NE(text.find("pipelines:"), std::string::npos) << text;
  // Aggregate root: a 4-task scan pipeline feeding a single-task merge
  // that depends on it.
  EXPECT_NE(text.find("p0 scan"), std::string::npos) << text;
  EXPECT_NE(text.find("p1 merge"), std::string::npos) << text;
  EXPECT_NE(text.find("tasks=4"), std::string::npos) << text;
  EXPECT_NE(text.find("deps=p0"), std::string::npos) << text;

  // A hash join adds a build pipeline gating the scan.
  text = ExplainText(
      "explain analyze select g.grade, s.name from grades g, students s "
      "where g.student-id = s.student-id",
      admin);
  EXPECT_NE(text.find("pipelines:"), std::string::npos) << text;
  EXPECT_NE(text.find("p0 build"), std::string::npos) << text;
  EXPECT_NE(text.find("p1 scan"), std::string::npos) << text;
  EXPECT_NE(text.find("deps=p0"), std::string::npos) << text;

  // Serial execution has no pipeline DAG to show.
  admin.set_exec_parallelism(1);
  text = ExplainText("explain analyze select * from grades", admin);
  EXPECT_EQ(text.find("pipelines:"), std::string::npos) << text;
}

TEST_F(ExplainAnalyzeTest, ExplainWithoutAnalyzeIsUnchanged) {
  Grant("mygrades", "11");
  SessionContext ctx("11");
  std::string text = ExplainText(
      "explain select grade from grades where student-id = '11'", ctx);
  EXPECT_NE(text.find("canonical plan:"), std::string::npos);
  EXPECT_NE(text.find("witness rewriting"), std::string::npos);
  EXPECT_EQ(text.find("execution:"), std::string::npos);
  EXPECT_EQ(text.find("validity trace:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE EXECUTE: profiling a prepared execution
// ---------------------------------------------------------------------------

/// Rows of a Session-level EXPLAIN joined into one text blob.
std::string SessionExplainText(server::Session* session,
                               const std::string& sql) {
  auto r = session->Execute(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().message();
  if (!r.ok()) return "";
  std::string text;
  for (const auto& row : r.value().relation.rows()) {
    text += row[0].string_value() + "\n";
  }
  return text;
}

TEST_F(ExplainAnalyzeTest, ExplainAnalyzeExecuteShowsTrumanCacheProvenance) {
  Grant("mygrades", "11");
  ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "mygrades").ok());
  server::ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kTruman);
  ASSERT_TRUE(
      s->Execute("prepare g as select grade from grades "
                 "where course-id = $1")
          .ok());
  // First profiled execution: the Truman rewrite happens on this call and
  // the report says so.
  std::string first = SessionExplainText(s.get(),
                                         "explain analyze execute g ('cs101')");
  EXPECT_NE(first.find("prepared statement: g"), std::string::npos) << first;
  EXPECT_NE(first.find("parameterized plan:"), std::string::npos);
  EXPECT_NE(first.find("truman rewrite: rewritten this call"),
            std::string::npos)
      << first;
  EXPECT_NE(first.find("result: 1 row(s)"), std::string::npos) << first;
  // Second profiled execution reuses the cached parameterized plan — the
  // provenance line flips to a statement-cache hit, and the profile still
  // covers a real run.
  std::string second = SessionExplainText(
      s.get(), "explain analyze execute g ('cs101')");
  EXPECT_NE(second.find("truman rewrite: statement-cache hit"),
            std::string::npos)
      << second;
  EXPECT_NE(second.find("result: 1 row(s)"), std::string::npos);
  cm.CloseAll();
}

TEST_F(ExplainAnalyzeTest, ExplainAnalyzeExecuteShowsVerdictProvenance) {
  Grant("mygrades", "11");
  server::ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kNonTruman);
  ASSERT_TRUE(
      s->Execute("prepare g as select grade from grades "
                 "where student-id = $user-id and course-id = $1")
          .ok());
  std::string first = SessionExplainText(s.get(),
                                         "explain analyze execute g ('cs101')");
  EXPECT_NE(first.find("verdict source: validity checker"), std::string::npos)
      << first;
  std::string second = SessionExplainText(
      s.get(), "explain analyze execute g ('cs101')");
  EXPECT_NE(second.find("verdict source: statement-cache hit"),
            std::string::npos)
      << second;
  // The analyze report carries the per-operator stats of the profiled run.
  EXPECT_NE(second.find("result: 1 row(s)"), std::string::npos) << second;
  cm.CloseAll();
}

TEST_F(ExplainAnalyzeTest, ExplainExecuteWithoutAnalyzeShowsPlanOnly) {
  Grant("mygrades", "11");
  server::ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kNonTruman);
  ASSERT_TRUE(
      s->Execute("prepare g as select grade from grades "
                 "where student-id = $user-id")
          .ok());
  // Run once so the parameterized plan exists in the registry entry.
  ASSERT_TRUE(s->Execute("execute g").ok());
  std::string text = SessionExplainText(s.get(), "explain execute g");
  EXPECT_NE(text.find("prepared statement: g"), std::string::npos);
  EXPECT_NE(text.find("parameterized plan:"), std::string::npos);
  // No execution, no provenance, no profile.
  EXPECT_EQ(text.find("result:"), std::string::npos) << text;
  EXPECT_EQ(text.find("verdict source:"), std::string::npos);
  cm.CloseAll();
}

TEST_F(ExplainAnalyzeTest, ExplainExecuteErrors) {
  // Outside a connection session there is no prepared-statement registry.
  SessionContext ctx("11");
  auto adhoc = db_.Execute("explain analyze execute g ('cs101')", ctx);
  ASSERT_FALSE(adhoc.ok());
  EXPECT_EQ(adhoc.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(adhoc.status().ToString().find("connection session"),
            std::string::npos);
  // Through a session, an unknown name is reported as such.
  server::ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kNonTruman);
  auto unknown = s->Execute("explain analyze execute nosuch");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().ToString().find("unknown prepared statement"),
            std::string::npos);
  cm.CloseAll();
}

}  // namespace
}  // namespace fgac
