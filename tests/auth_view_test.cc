// Authorization-view instantiation (paper Section 4.2: "instantiated
// authorization views").

#include "core/auth_view.h"

#include <gtest/gtest.h>

#include "algebra/plan_hash.h"
#include "algebra/reference_eval.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::InstantiatedView;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

class AuthViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
  }
  Database db_;
};

TEST_F(AuthViewTest, InstantiationSubstitutesSessionParameters) {
  SessionContext a("11"), b("12");
  auto va = core::InstantiateView(db_.catalog(),
                                  *db_.catalog().GetView("mygrades"), a);
  auto vb = core::InstantiateView(db_.catalog(),
                                  *db_.catalog().GetView("mygrades"), b);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(vb.ok());
  // Same definition, different users => different instantiated plans.
  EXPECT_FALSE(algebra::PlanEquals(va.value().plan, vb.value().plan));
  auto ra = algebra::ReferenceEval(va.value().plan, db_.state());
  auto rb = algebra::ReferenceEval(vb.value().plan, db_.state());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().num_rows(), 2u);  // alice's grades
  EXPECT_EQ(rb.value().num_rows(), 1u);  // bob's
}

TEST_F(AuthViewTest, BaseTablesCollected) {
  SessionContext ctx("11");
  auto v = core::InstantiateView(db_.catalog(),
                                 *db_.catalog().GetView("costudentgrades"), ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().base_tables,
            (std::vector<std::string>{"grades", "registered"}));
  EXPECT_FALSE(v.value().is_access_pattern());
}

TEST_F(AuthViewTest, AccessPatternViewsKeepSymbolicParams) {
  SessionContext ctx("secretary");
  auto v = core::InstantiateView(db_.catalog(),
                                 *db_.catalog().GetView("singlegrade"), ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_access_pattern());
  ASSERT_EQ(v.value().access_parameters.size(), 1u);
  EXPECT_EQ(v.value().access_parameters[0], "1");
  EXPECT_TRUE(algebra::PlanHasAccessParam(v.value().plan));
}

TEST_F(AuthViewTest, AvailableViewsOnlyAuthorizationViews) {
  // Ordinary relational views never participate in validity inference.
  ASSERT_TRUE(db_.ExecuteScript("create view plain as select * from courses;"
                                "grant select on plain to 11;"
                                "grant select on mygrades to 11")
                  .ok());
  SessionContext ctx("11");
  auto views = core::InstantiateAvailableViews(db_.catalog(), ctx);
  ASSERT_TRUE(views.ok());
  // Besides the user's own grant, every session holds the public grants on
  // the system observability views (fgac_my_audit / fgac_my_spans).
  std::vector<std::string> user_views;
  for (const auto& v : views.value()) {
    if (v.name.rfind("fgac_", 0) != 0) user_views.push_back(v.name);
  }
  ASSERT_EQ(user_views.size(), 1u);
  EXPECT_EQ(user_views[0], "mygrades");
}

TEST_F(AuthViewTest, ViewsComposeOverViews) {
  // An authorization view defined over another (ordinary) view expands
  // through it during binding.
  ASSERT_TRUE(db_.ExecuteScript(
                     "create view cs101 as select * from grades "
                     "where course-id = 'cs101';"
                     "create authorization view mycs101 as "
                     "select * from cs101 where student-id = $user-id")
                  .ok());
  SessionContext ctx("11");
  auto v = core::InstantiateView(db_.catalog(),
                                 *db_.catalog().GetView("mycs101"), ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().base_tables, (std::vector<std::string>{"grades"}));
  auto rel = algebra::ReferenceEval(v.value().plan, db_.state());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().num_rows(), 1u);
}

TEST_F(AuthViewTest, RecursiveViewDefinitionFails) {
  // A view cycle must be rejected at instantiation, not loop forever.
  ASSERT_TRUE(db_.ExecuteScript("create view v1 as select * from courses")
                  .ok());
  // Rebind v1's meaning by dropping and re-creating a cycle is not
  // possible through the API (names are checked), so simulate depth abuse:
  std::string ddl;
  for (int i = 0; i < 20; ++i) {
    ddl += "create view chain" + std::to_string(i) + " as select * from " +
           (i == 0 ? std::string("courses") : "chain" + std::to_string(i - 1)) +
           ";";
  }
  ASSERT_TRUE(db_.ExecuteScript(ddl).ok());
  ASSERT_TRUE(db_.ExecuteScript("create authorization view deep as "
                                "select * from chain19")
                  .ok());
  SessionContext ctx("11");
  auto v = core::InstantiateView(db_.catalog(), *db_.catalog().GetView("deep"),
                                 ctx);
  // Depth 20 exceeds the binder's nesting cap (16): a clean error.
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kBindError);
}

TEST_F(AuthViewTest, TimeParameterizedPolicy) {
  // "it may be desired to restrict an authorization ... to only a
  // particular time of the day" (Section 2).
  ASSERT_TRUE(db_.ExecuteScript(
                     "create authorization view daytime_grades as "
                     "select * from grades where $hour >= 9 and $hour <= 17;"
                     "grant select on daytime_grades to 11")
                  .ok());
  SessionContext day("11");
  day.set_mode(core::EnforcementMode::kNonTruman);
  day.SetParam("hour", Value::Int(12));
  EXPECT_TRUE(db_.Execute("select * from grades", day).ok());
  SessionContext night("11");
  night.set_mode(core::EnforcementMode::kNonTruman);
  night.SetParam("hour", Value::Int(3));
  EXPECT_FALSE(db_.Execute("select * from grades", night).ok());
}

}  // namespace
}  // namespace fgac
