// Unit and concurrency tests for the observability subsystem: the
// lock-sharded MetricsRegistry (counters / gauges / power-of-two
// histograms), snapshot-during-update safety under the 4-thread morsel
// path (the TSan job runs this file), thread-pool queue statistics, and
// the Database-level query counters fed by ExecuteSelect.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/database.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using common::Counter;
using common::Gauge;
using common::Histogram;
using common::MetricsRegistry;
using common::MetricsSnapshot;
using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

// ---------------------------------------------------------------------------
// Primitive metrics
// ---------------------------------------------------------------------------

TEST(CounterTest, IncrementAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAddSetMax) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.SetMax(5);  // below current: no-op
  EXPECT_EQ(g.value(), 7);
  g.SetMax(100);
  EXPECT_EQ(g.value(), 100);
}

TEST(HistogramTest, PowerOfTwoBuckets) {
  Histogram h;
  h.Record(0);  // bucket 0
  h.Record(1);  // [1,2) -> bucket 1
  h.Record(3);  // [2,4) -> bucket 2
  h.Record(4);  // [4,8) -> bucket 3
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 8u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(HistogramTest, ApproxPercentileInterpolatesWithinBucket) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(10);  // bucket [8,16)
  h.Record(1000);                             // bucket [512,1024)
  // p50 is rank 50 of the 99-sample [8,16) bucket: linearly interpolated
  // to 8 + round(7 * 51/99) = 12, not snapped to the bucket bound 15.
  EXPECT_EQ(h.ApproxPercentile(50), 12u);
  // The top rank still maps to its bucket's upper bound.
  EXPECT_EQ(h.ApproxPercentile(100), 1023u);
  Histogram empty;
  EXPECT_EQ(empty.ApproxPercentile(50), 0u);
}

TEST(HistogramTest, ApproxPercentileTracksUniformRamp) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(v);
  // Under the uniform-within-bucket assumption the estimate stays close to
  // the true percentile instead of jumping between power-of-two edges.
  EXPECT_EQ(h.ApproxPercentile(50), 501u);
  uint64_t p25 = h.ApproxPercentile(25);
  EXPECT_GE(p25, 245u);
  EXPECT_LE(p25, 255u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndDistinct) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  Counter& b = reg.counter("b");
  EXPECT_NE(&a, &b);
  a.Increment();
  // Same name resolves to the same metric, across many lookups.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_EQ(reg.counter("a").value(), 1u);
  // The three kinds are independent namespaces.
  reg.gauge("a").Set(7);
  reg.histogram("a").Record(3);
  EXPECT_EQ(reg.counter("a").value(), 1u);
}

TEST(MetricsRegistryTest, SnapshotAndJson) {
  MetricsRegistry reg;
  reg.counter("queries").Increment(3);
  reg.gauge("depth").Set(-2);
  reg.histogram("lat_us").Record(100);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("queries"), 3u);
  EXPECT_EQ(snap.gauges.at("depth"), -2);
  EXPECT_EQ(snap.histograms.at("lat_us").count, 1u);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"queries\":3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
}

// The regression this guards: counters shared by the 4-thread morsel path
// must neither tear nor lose increments while another thread snapshots
// mid-update. Run under TSan in CI.
TEST(MetricsRegistryTest, SnapshotDuringConcurrentUpdatesIsExact) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  MetricsRegistry reg;
  // Pre-register so workers race only on the atomics, and one extra name
  // per worker so first-use registration races are exercised too.
  reg.counter("shared");
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      Counter& shared = reg.counter("shared");
      Counter& own = reg.counter("worker." + std::to_string(t));
      Histogram& h = reg.histogram("rows");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        shared.Increment();
        own.Increment();
        h.Record(i & 1023);
      }
    });
  }
  // Snapshot continuously while the workers hammer; every observed value
  // must be a whole count no larger than the final total (a torn read
  // would show up as a wild value).
  std::thread reader([&reg, &stop] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = reg.Snapshot();
      auto it = snap.counters.find("shared");
      if (it != snap.counters.end()) {
        EXPECT_LE(it->second, kThreads * kPerThread);
        EXPECT_GE(it->second, last);  // monotone across snapshots
        last = it->second;
      }
    }
  });
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.counters.at("shared"), kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(final_snap.counters.at("worker." + std::to_string(t)),
              kPerThread);
  }
  EXPECT_EQ(final_snap.histograms.at("rows").count, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Thread-pool statistics
// ---------------------------------------------------------------------------

TEST(ThreadPoolStatsTest, CountsTasksAndQueueHighWater) {
  common::ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_run(), 0u);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(pool.tasks_run(), 8u);
  // 8 sleeping tasks over 2 workers must have queued at some point.
  EXPECT_GE(pool.queue_depth_high_water(), 1u);
}

// ---------------------------------------------------------------------------
// Database-level query metrics
// ---------------------------------------------------------------------------

class DatabaseMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  }

  uint64_t Count(const std::string& name) {
    return db_.metrics().counter(name).value();
  }

  Database db_;
};

TEST_F(DatabaseMetricsTest, SelectCacheAndRejectionCounters) {
  SessionContext ctx("11");
  const std::string q = "select grade from grades where student-id = '11'";
  ASSERT_TRUE(db_.Execute(q, ctx).ok());
  EXPECT_EQ(Count("queries.select"), 1u);
  EXPECT_EQ(Count("validity.cache_misses"), 1u);
  EXPECT_EQ(Count("validity.cache_hits"), 0u);

  ASSERT_TRUE(db_.Execute(q, ctx).ok());
  EXPECT_EQ(Count("queries.select"), 2u);
  EXPECT_EQ(Count("validity.cache_hits"), 1u);

  auto rejected = db_.Execute("select * from grades", ctx);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kNotAuthorized);
  EXPECT_EQ(Count("queries.rejected"), 1u);
  EXPECT_EQ(Count("queries.select"), 3u);
}

TEST_F(DatabaseMetricsTest, GuardTripAndDegradationCounters) {
  SessionContext ctx("11");
  // Blow the validity budget with no degradation policy: a guard trip.
  db_.options().validity.check_timeout = std::chrono::microseconds(1);
  auto r = db_.Execute("select grade from grades where student-id = '11'",
                       ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(Count("guard.trips"), 1u);
  EXPECT_EQ(Count("queries.degraded_to_truman"), 0u);

  // Same budget with DegradePolicy::kTruman: counted as a degradation.
  common::QueryLimits limits;
  limits.degrade_policy = common::DegradePolicy::kTruman;
  ctx.set_query_limits(limits);
  auto degraded =
      db_.Execute("select grade from grades where student-id = '11'", ctx);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.value().degraded_to_truman);
  EXPECT_EQ(Count("queries.degraded_to_truman"), 1u);
}

TEST_F(DatabaseMetricsTest, ExportRefreshesSubsystemGauges) {
  SessionContext ctx("11");
  ASSERT_TRUE(
      db_.Execute("select grade from grades where student-id = '11'", ctx)
          .ok());
  std::string json = db_.ExportMetricsJson();
  EXPECT_NE(json.find("\"validity_cache.entries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"validity_cache.misses\":1"), std::string::npos);
  EXPECT_NE(json.find("\"thread_pool.tasks_run\""), std::string::npos);
  EXPECT_NE(json.find("\"queries.select\":1"), std::string::npos);
  EXPECT_NE(json.find("\"exec.run_us\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Windowed metrics: ring of 5-second epochs behind every counter/histogram
// ---------------------------------------------------------------------------

using common::MetricWindow;

TEST(CounterWindowTest, WindowsSumRecentEpochs) {
  Counter c;
  c.IncrementAtEpoch(5, 100);   // 5m only at epoch 160
  c.IncrementAtEpoch(7, 101);   // 5m window
  c.IncrementAtEpoch(11, 150);  // 1m + 5m windows
  c.IncrementAtEpoch(13, 159);  // all three windows
  auto w = c.WindowedAtEpoch(160);
  // 10s = epochs {159,160}; 1m = {149..160}; 5m = {101..160}.
  EXPECT_EQ(w[0], 13u);
  EXPECT_EQ(w[1], 24u);
  EXPECT_EQ(w[2], 31u);
  EXPECT_EQ(c.value(), 36u);
}

TEST(CounterWindowTest, WindowsAreMonotoneSubsetsOfCumulative) {
  Counter c;
  for (uint64_t e = 90; e <= 160; ++e) c.IncrementAtEpoch(e, e);
  auto w = c.WindowedAtEpoch(160);
  EXPECT_LE(w[0], w[1]);
  EXPECT_LE(w[1], w[2]);
  EXPECT_LE(w[2], c.value());
}

TEST(CounterWindowTest, RingWrapDropsStaleEpochsButKeepsCumulative) {
  Counter c;
  c.IncrementAtEpoch(42, 100);
  // Far enough ahead that epoch 100's slot is older than every window.
  auto w = c.WindowedAtEpoch(100 + MetricWindow::kRing + 1);
  EXPECT_EQ(w[0], 0u);
  EXPECT_EQ(w[1], 0u);
  EXPECT_EQ(w[2], 0u);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterWindowTest, SlotTakeoverZeroesTheStaleValue) {
  Counter c;
  c.IncrementAtEpoch(100, 10);
  // Epoch 10 + kRing maps to the same ring slot; the takeover must zero
  // the old epoch's count rather than fold it into the new window.
  c.IncrementAtEpoch(1, 10 + MetricWindow::kRing);
  auto w = c.WindowedAtEpoch(10 + MetricWindow::kRing);
  EXPECT_EQ(w[0], 1u);
  EXPECT_EQ(w[2], 1u);
  EXPECT_EQ(c.value(), 101u);
}

TEST(HistogramWindowTest, WindowedPercentilesTrackRecentSamples) {
  Histogram h;
  // Old epoch: large values that must NOT contaminate the 10s window.
  for (int i = 0; i < 100; ++i) h.RecordAtEpoch(100000, 100);
  // Current epoch: a uniform ramp.
  for (uint64_t v = 1; v <= 1000; ++v) h.RecordAtEpoch(v, 158);
  auto w = h.WindowedAtEpoch(159);
  // 10s window sees only the ramp.
  EXPECT_EQ(w[0].count, 1000u);
  EXPECT_EQ(w[0].sum, 500500u);
  EXPECT_EQ(w[0].p50, 501u);  // the ramp's own median, old epoch excluded
  EXPECT_LT(w[0].p99, 100000u);
  // 5m window merges both epochs, so its p99 lands in the old bucket.
  EXPECT_EQ(w[2].count, 1100u);
  EXPECT_GE(w[2].p99, 65536u);
  // Windowed counts never exceed the cumulative count.
  EXPECT_LE(w[0].count, w[1].count);
  EXPECT_LE(w[1].count, w[2].count);
  EXPECT_LE(w[2].count, h.count());
}

TEST(HistogramWindowTest, FreshSamplesMakeWindowedMatchCumulative) {
  // All samples in the current epoch: every window holds exactly the
  // cumulative distribution, so windowed p99 == cumulative p99.
  Histogram h;
  for (uint64_t v = 1; v <= 500; ++v) h.RecordAtEpoch(v, 42);
  auto w = h.WindowedAtEpoch(42);
  for (size_t i = 0; i < MetricWindow::kCount; ++i) {
    EXPECT_EQ(w[i].count, h.count());
    EXPECT_EQ(w[i].p50, h.ApproxPercentile(50));
    EXPECT_EQ(w[i].p95, h.ApproxPercentile(95));
    EXPECT_EQ(w[i].p99, h.ApproxPercentile(99));
  }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Minimal exposition-format check: every non-comment line must be
/// `name{labels} value` with a parseable float value and a sane name.
void AssertPrometheusParses(const std::string& text) {
  size_t start = 0;
  int lines = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated line";
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    ++lines;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    std::string value = line.substr(space + 1);
    EXPECT_EQ(name.rfind("fgac_", 0), 0u) << line;
    size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      EXPECT_NE(name.find('=', brace), std::string::npos) << line;
    }
    char* parse_end = nullptr;
    std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << "bad value in: " << line;
  }
  EXPECT_GT(lines, 0) << "no samples in exposition";
}

TEST(PrometheusTest, FormatsCountersGaugesAndHistogramSummaries) {
  MetricsRegistry reg;
  reg.counter("queries.select").Increment(3);
  reg.gauge("admission.queue-depth").Set(-2);
  for (uint64_t v = 1; v <= 100; ++v) reg.histogram("exec.run_us").Record(v);
  std::string text = reg.ToPrometheus();
  AssertPrometheusParses(text);
  // Dotted (and otherwise hostile) names map into one flat namespace.
  EXPECT_NE(text.find("# TYPE fgac_queries_select_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fgac_queries_select_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("fgac_admission_queue_depth -2\n"), std::string::npos);
  // Counters expose per-window rates...
  EXPECT_NE(text.find("fgac_queries_select_rate{window=\"10s\"} 0.3\n"),
            std::string::npos);
  EXPECT_NE(text.find("fgac_queries_select_rate{window=\"1m\"} 0.05\n"),
            std::string::npos);
  // ...histograms a summary plus windowed quantiles.
  EXPECT_NE(text.find("# TYPE fgac_exec_run_us summary"), std::string::npos);
  EXPECT_NE(text.find("fgac_exec_run_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("fgac_exec_run_us_count 100\n"), std::string::npos);
  EXPECT_NE(
      text.find("fgac_exec_run_us_windowed{window=\"1m\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("fgac_exec_run_us_windowed_count{window=\"5m\"} 100\n"),
            std::string::npos);
}

TEST(PrometheusTest, WindowedQuantilesMatchCumulativeForFreshSamples) {
  // End-to-end tolerance check for the acceptance criterion: a burst that
  // happened entirely inside the last minute exports a 1m-window p99 equal
  // to the cumulative summary's p99.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("exec.run_us");
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  MetricsSnapshot snap = reg.Snapshot();
  const auto& hv = snap.histograms.at("exec.run_us");
  EXPECT_EQ(hv.windows[1].count, hv.count);
  EXPECT_EQ(hv.windows[1].p99, hv.p99);
  std::string text = snap.ToPrometheus();
  std::string cumulative =
      "fgac_exec_run_us{quantile=\"0.99\"} " + std::to_string(hv.p99) + "\n";
  std::string windowed =
      "fgac_exec_run_us_windowed{window=\"1m\",quantile=\"0.99\"} " +
      std::to_string(hv.windows[1].p99) + "\n";
  EXPECT_NE(text.find(cumulative), std::string::npos) << text;
  EXPECT_NE(text.find(windowed), std::string::npos) << text;
}

TEST_F(DatabaseMetricsTest, PrometheusExportParsesAndCoversQueryMetrics) {
  SessionContext ctx("11");
  ASSERT_TRUE(
      db_.Execute("select grade from grades where student-id = '11'", ctx)
          .ok());
  std::string text = db_.ExportMetricsPrometheus();
  AssertPrometheusParses(text);
  EXPECT_NE(text.find("fgac_queries_select_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("fgac_validity_cache_entries"), std::string::npos);
  EXPECT_NE(text.find("fgac_watchdog_statements_in_flight"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The export gauge key set, pinned
// ---------------------------------------------------------------------------

// One export must mirror EVERY subsystem introduced through PR 9 into
// gauges. This is an exact pin (minus the dynamic fault.<site> gauges): a
// new subsystem gauge must be added here, and a renamed or dropped gauge
// fails loudly instead of silently vanishing from dashboards.
TEST_F(DatabaseMetricsTest, ExportGaugeKeySetIsPinned) {
  SessionContext ctx("11");
  ASSERT_TRUE(
      db_.Execute("select grade from grades where student-id = '11'", ctx)
          .ok());
  (void)db_.ExportMetricsJson();
  std::vector<std::string> got;
  for (const auto& [name, unused] : db_.metrics().Snapshot().gauges) {
    if (name.rfind("fault.", 0) == 0) continue;  // per-site, build-dependent
    got.push_back(name);
  }
  const std::vector<std::string> want = {
      "admission.admitted", "admission.cancelled", "admission.queue_depth",
      "admission.queue_depth_high_water", "admission.queue_wait_us",
      "admission.rejected_deadline", "admission.running",
      "admission.shed_memory", "admission.shed_queue_full",
      "audit.events_dropped", "audit.events_emitted",
      "audit.events_persisted", "memory.charges_denied", "memory.hard_limit",
      "memory.high_water", "memory.soft_limit", "memory.used",
      "scheduler.dags_executed", "scheduler.fair_queue_depth",
      "scheduler.fair_sessions_active", "scheduler.pipelines_cancelled",
      "scheduler.pipelines_completed", "scheduler.task_queue_wait_us",
      "scheduler.task_run_us", "scheduler.tasks_dispatched",
      "sessions.open", "sessions.statements_active",
      "sessions.statements_begun", "slow_query.captured",
      "statement_cache.collisions", "statement_cache.entries",
      "statement_cache.evictions", "statement_cache.hits",
      "statement_cache.invalidations", "statement_cache.misses",
      "thread_pool.queue_depth", "thread_pool.queue_depth_high_water",
      "thread_pool.tasks_run", "thread_pool.tasks_stolen",
      "trace.spans_dropped", "trace.spans_recorded",
      "validity_cache.entries", "validity_cache.evictions",
      "validity_cache.hits", "validity_cache.misses",
      "watchdog.admission_queue_depth", "watchdog.admission_running",
      "watchdog.max_statement_elapsed_us", "watchdog.scheduler_queue_depth",
      "watchdog.stalled_statements", "watchdog.statements_in_flight"};
  EXPECT_EQ(got, want);
}

TEST_F(DatabaseMetricsTest, ExportCoversSchedulerAndWorkStealingGauges) {
  // A parallel query guarantees at least one DAG went through the
  // scheduler before export.
  SessionContext admin("admin");
  admin.set_mode(core::EnforcementMode::kNone);
  admin.set_exec_parallelism(2);
  ASSERT_TRUE(db_.Execute("select * from grades", admin).ok());

  std::string json = db_.ExportMetricsJson();
  for (const char* gauge :
       {"\"thread_pool.tasks_stolen\"", "\"thread_pool.queue_depth\"",
        "\"scheduler.dags_executed\"", "\"scheduler.tasks_dispatched\"",
        "\"scheduler.pipelines_completed\"",
        "\"scheduler.pipelines_cancelled\""}) {
    EXPECT_NE(json.find(gauge), std::string::npos) << gauge;
  }
  // The scheduler is process-wide, so the gauges are lower-bounded by this
  // query's own DAG: one scan pipeline of two tasks.
  EXPECT_EQ(json.find("\"scheduler.dags_executed\":0"), std::string::npos);
  EXPECT_EQ(json.find("\"scheduler.tasks_dispatched\":0"), std::string::npos);
  EXPECT_EQ(json.find("\"scheduler.pipelines_completed\":0"),
            std::string::npos);
}

}  // namespace
}  // namespace fgac
