#include "tests/test_util.h"

#include <cstdlib>
#include <fstream>

#include <gtest/gtest.h>

namespace fgac::testing {

namespace {

void MustScript(core::Database* db, const std::string& sql) {
  Status s = db->ExecuteScript(sql);
  ASSERT_TRUE(s.ok()) << s.ToString() << "\nscript: " << sql;
}

}  // namespace

void CreateUniversitySchema(core::Database* db) {
  MustScript(db, R"sql(
    create table students (
      student-id varchar not null primary key,
      name varchar not null,
      type varchar not null
    );
    create table courses (
      course-id varchar not null primary key,
      name varchar not null
    );
    create table registered (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      primary key (student-id, course-id)
    );
    create table grades (
      student-id varchar not null references students,
      course-id varchar not null references courses,
      grade double not null,
      primary key (student-id, course-id)
    );
  )sql");
}

void LoadUniversityData(core::Database* db) {
  MustScript(db, R"sql(
    insert into students values
      ('11', 'alice', 'fulltime'),
      ('12', 'bob', 'fulltime'),
      ('13', 'carol', 'parttime'),
      ('14', 'dave', 'parttime');
    insert into courses values
      ('cs101', 'intro programming'),
      ('cs202', 'databases'),
      ('ee150', 'circuits');
    insert into registered values
      ('11', 'cs101'),
      ('11', 'cs202'),
      ('12', 'cs101'),
      ('12', 'ee150'),
      ('13', 'cs202');
    insert into grades values
      ('11', 'cs101', 4.0),
      ('12', 'cs101', 3.0),
      ('11', 'cs202', 3.5),
      ('13', 'cs202', 2.0);
  )sql");
}

void SetupUniversity(core::Database* db) {
  CreateUniversitySchema(db);
  LoadUniversityData(db);
}

void CreateUniversityViews(core::Database* db) {
  MustScript(db, R"sql(
    create authorization view mygrades as
      select * from grades where student-id = $user-id;
    create authorization view costudentgrades as
      select grades.* from grades, registered
      where registered.student-id = $user-id
        and grades.course-id = registered.course-id;
    create authorization view avggrades as
      select course-id, avg(grade) from grades group by course-id;
    create authorization view lcavggrades as
      select course-id, avg(grade) from grades
      group by course-id having count(*) >= 2;
    create authorization view regstudents as
      select registered.course-id, students.name, students.type
      from registered, students
      where students.student-id = registered.student-id;
    create authorization view myregistrations as
      select * from registered where student-id = $user-id;
    create authorization view singlegrade as
      select * from grades where student-id = $$1;
  )sql");
}

std::string SortedRowsToString(const storage::Relation& rel) {
  std::string out;
  for (const Row& row : rel.SortedRows()) {
    out += RowToString(row);
    out += "\n";
  }
  return out;
}

storage::Relation MustQuery(core::Database* db, const std::string& sql,
                            const core::SessionContext& ctx) {
  Result<core::ExecResult> r = db->Execute(sql, ctx);
  if (!r.ok()) {
    ADD_FAILURE() << "query failed: " << r.status().ToString()
                  << "\nsql: " << sql;
    return storage::Relation();
  }
  return std::move(r.value().relation);
}

storage::Relation MustQueryAdmin(core::Database* db, const std::string& sql) {
  core::SessionContext admin("admin");
  admin.set_mode(core::EnforcementMode::kNone);
  return MustQuery(db, sql, admin);
}

namespace {

const char* NightlyArtifactDir() {
  const char* dir = std::getenv("FGAC_NIGHTLY_ARTIFACT_DIR");
  return dir != nullptr && dir[0] != '\0' ? dir : nullptr;
}

}  // namespace

void ApplyNightlyArtifactOptions(core::DatabaseOptions* opts,
                                 const std::string& tag) {
  if (const char* dir = NightlyArtifactDir()) {
    opts->audit.sink_path = std::string(dir) + "/" + tag + "_audit.jsonl";
  }
}

void DumpMetricsArtifact(core::Database* db, const std::string& tag) {
  if (const char* dir = NightlyArtifactDir()) {
    db->audit_log().Flush();
    std::ofstream out(std::string(dir) + "/" + tag + "_metrics.json");
    out << db->ExportMetricsJson() << "\n";
  }
}

}  // namespace fgac::testing
