// Live workload introspection: the fgac_sessions / fgac_activity /
// fgac_slow_queries / fgac_statement_cache system tables, their $user-
// scoped governance, the slow-query log, the stall watchdog, and the
// 8-thread churn sweep (tear-free snapshots + Prometheus export) that the
// TSan CI job leans on. The live-observation tests park a statement
// mid-flight on a fault-site hook and watch it from another session, so
// they run wherever the fault layer is compiled in.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/activity.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "core/database.h"
#include "core/watchdog.h"
#include "server/connection_manager.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using common::FaultInjector;
using core::Database;
using core::DatabaseOptions;
using core::EnforcementMode;
using core::SessionContext;
using server::ConnectionManager;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;

int StressRepeat(int base) {
  if (const char* env = std::getenv("FGAC_STRESS_REPEAT")) {
    return std::max(1, std::atoi(env));
  }
  return base;
}

/// Blocks the thread that hits an armed fault site until Release(); the
/// test observes the parked statement from another session meanwhile.
class ParkingLot {
 public:
  /// The fault-site callback: flags "parked" and waits.
  std::function<void()> Hook() {
    return [this] {
      std::unique_lock<std::mutex> lock(mu_);
      parked_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    };
  }

  bool WaitParked(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return parked_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool parked_ = false;
  bool released_ = false;
};

class IntrospectionTest : public ::testing::Test {
 protected:
  IntrospectionTest() : db_(Options()) {}

  /// Deterministic fixture: the watchdog thread is off (tests that need it
  /// call SampleOnce), the slow-query log keeps its 1s default.
  static DatabaseOptions Options() {
    DatabaseOptions opts;
    opts.watchdog.enabled = false;
    testing::ApplyNightlyArtifactOptions(&opts, "introspection_test");
    return opts;
  }

  void SetUp() override {
    FaultInjector::Instance().Reset();
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ASSERT_TRUE(db_.ExecuteScript("grant select on mygrades to 11;"
                                  "grant select on mygrades to 12")
                    .ok());
    ASSERT_TRUE(db_.catalog().SetTrumanView("grades", "mygrades").ok());
  }

  void TearDown() override {
    FaultInjector::Instance().Reset();
    testing::DumpMetricsArtifact(&db_, "introspection_test");
  }

  storage::Relation Admin(const std::string& sql) {
    return testing::MustQueryAdmin(&db_, sql);
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// Bootstrap + governance
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, BootstrapCreatesIntrospectionCatalog) {
  for (const char* table : {"fgac_sessions", "fgac_activity",
                            "fgac_slow_queries", "fgac_statement_cache"}) {
    EXPECT_NE(db_.catalog().GetTable(table), nullptr) << table;
  }
  for (const char* view :
       {"fgac_my_sessions", "fgac_my_activity", "fgac_my_slow_queries",
        "fgac_sessions_all", "fgac_activity_all", "fgac_slow_queries_all",
        "fgac_statement_cache_all"}) {
    EXPECT_NE(db_.catalog().GetView(view), nullptr) << view;
  }
}

TEST_F(IntrospectionTest, ScopedViewsGovernIntrospectionTables) {
  // Leave one completed statement per user in the registry via explicit
  // server sessions.
  ConnectionManager cm(db_);
  auto s11 = cm.Open("11", EnforcementMode::kTruman);
  auto s12 = cm.Open("12", EnforcementMode::kTruman);
  ASSERT_TRUE(s11->Execute("select grade from grades").ok());
  ASSERT_TRUE(s12->Execute("select grade from grades").ok());

  // Truman: a bare select on fgac_sessions narrows to the session user's
  // own rows.
  SessionContext t11("11");
  t11.set_mode(EnforcementMode::kTruman);
  auto own = db_.Execute("select user_name from fgac_sessions", t11);
  ASSERT_TRUE(own.ok()) << own.status().ToString();
  ASSERT_GE(own.value().relation.num_rows(), 1u);
  for (const Row& row : own.value().relation.rows()) {
    EXPECT_EQ(row[0], Value::String("11"));
  }

  // Non-Truman: the self-scoped query is authorized, the cross-user probe
  // is rejected outright.
  SessionContext n11("11");
  n11.set_mode(EnforcementMode::kNonTruman);
  EXPECT_TRUE(
      db_.Execute("select session_id from fgac_sessions where user_name = '11'",
                  n11)
          .ok());
  auto peek = db_.Execute(
      "select session_id from fgac_sessions where user_name = '12'", n11);
  ASSERT_FALSE(peek.ok());
  EXPECT_EQ(peek.status().code(), StatusCode::kNotAuthorized);

  // fgac_statement_cache has no per-user view at all: admin/auditor only.
  auto cache_truman = db_.Execute("select * from fgac_statement_cache", t11);
  EXPECT_FALSE(cache_truman.ok());
  auto cache_admin = Admin("select * from fgac_statement_cache_all");
  EXPECT_GE(cache_admin.num_rows(), 1u);

  // The fgac_ namespace stays read-only.
  auto mut = db_.ExecuteAsAdmin("insert into fgac_sessions values (1)");
  ASSERT_FALSE(mut.ok());
  EXPECT_EQ(mut.status().code(), StatusCode::kInvalidArgument);
  cm.CloseAll();
}

// ---------------------------------------------------------------------------
// fgac_sessions: server sessions and their counters
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, SessionsTableTracksServerSessions) {
  ConnectionManager cm(db_);
  auto s11 = cm.Open("11", EnforcementMode::kTruman);
  auto s12 = cm.Open("12", EnforcementMode::kTruman);
  ASSERT_TRUE(s11->Execute("select grade from grades").ok());
  ASSERT_TRUE(s11->Execute("select grade from grades").ok());

  // The observing admin statement registers its own implicit session, so
  // every assertion filters to the server sessions under test.
  auto rel = Admin(
      "select session_id, user_name, statements_run from fgac_sessions "
      "where user_name <> 'admin'");
  ASSERT_EQ(rel.num_rows(), 2u);
  bool saw11 = false, saw12 = false;
  for (const Row& row : rel.rows()) {
    if (row[1] == Value::String("11")) {
      saw11 = true;
      EXPECT_EQ(row[0], Value::String(s11->id()));
      EXPECT_EQ(row[2], Value::Int(2));
    }
    if (row[1] == Value::String("12")) {
      saw12 = true;
      EXPECT_EQ(row[2], Value::Int(0));
    }
  }
  EXPECT_TRUE(saw11);
  EXPECT_TRUE(saw12);

  // Closing a server session removes its row; the registry gauge follows.
  cm.Close(s12->id());
  EXPECT_EQ(Admin("select session_id from fgac_sessions "
                  "where user_name <> 'admin'")
                .num_rows(),
            1u);
  EXPECT_EQ(db_.activity().sessions_open(), 1u);
  cm.CloseAll();
  EXPECT_EQ(db_.activity().sessions_open(), 0u);
}

// ---------------------------------------------------------------------------
// Live observation: a statement parked mid-flight is visible, with the
// right principal and phase, from another session
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, ParkedExecStatementIsVisibleLive) {
  if (!FaultInjector::compiled_in()) {
    GTEST_SKIP() << "fault sites not compiled in";
  }
  ParkingLot lot;
  FaultInjector::Instance().OnHit("pipeline.run", lot.Hook());

  ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kTruman);
  s->context().set_exec_parallelism(2);  // route through the scheduler
  const std::string q = "select grade from grades where course-id = 'cs101'";
  std::thread runner([&] {
    auto r = s->Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ASSERT_TRUE(lot.WaitParked(std::chrono::seconds(10)))
      << "statement never reached the scheduler fault site";

  // Observe from the admin side: correct principal, statement, and phase.
  // (The filter excludes the observing statement's own activity row.)
  auto act = Admin(
      "select user_name, session_id, statement, phase from fgac_activity "
      "where user_name = '11'");
  ASSERT_EQ(act.num_rows(), 1u);
  const Row& row = act.rows()[0];
  EXPECT_EQ(row[0], Value::String("11"));
  EXPECT_EQ(row[1], Value::String(s->id()));
  EXPECT_NE(row[2].string_value().find("select grade from grades"),
            std::string::npos);
  EXPECT_EQ(row[3], Value::String("exec"));

  // The session row says it is active and names the in-flight statement.
  auto ses = Admin(
      "select user_name, active, in_flight, current_statement "
      "from fgac_sessions where session_id = '" +
      s->id() + "'");
  ASSERT_EQ(ses.num_rows(), 1u);
  EXPECT_EQ(ses.rows()[0][1], Value::Bool(true));
  EXPECT_EQ(ses.rows()[0][2], Value::Int(1));
  EXPECT_NE(ses.rows()[0][3].string_value().find("select grade"),
            std::string::npos);

  // A different (non-admin) principal sees NONE of it through the
  // $user-scoped view — only their own observing statement comes back.
  SessionContext t12("12");
  t12.set_mode(EnforcementMode::kTruman);
  auto other = db_.Execute("select user_name from fgac_activity", t12);
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  for (const Row& r : other.value().relation.rows()) {
    EXPECT_EQ(r[0], Value::String("12"));
  }

  lot.Release();
  runner.join();
  // Drained: the statement is gone from fgac_activity and counted in
  // fgac_sessions.statements_run.
  EXPECT_EQ(
      Admin("select seq from fgac_activity where user_name = '11'")
          .num_rows(),
      0u);
  auto after = Admin("select statements_run from fgac_sessions "
                     "where session_id = '" +
                     s->id() + "'");
  ASSERT_EQ(after.num_rows(), 1u);
  EXPECT_EQ(after.rows()[0][0], Value::Int(1));
  cm.CloseAll();
}

TEST_F(IntrospectionTest, ParkedValidityProbeShowsValidityPhase) {
  if (!FaultInjector::compiled_in()) {
    GTEST_SKIP() << "fault sites not compiled in";
  }
  ParkingLot lot;
  FaultInjector::Instance().OnHit("validity.probe", lot.Hook());

  // The Example 4.4 query is only conditionally valid, so its validity
  // check runs C3 probes; the hook parks the statement inside one.
  ASSERT_TRUE(db_.ExecuteScript("grant select on costudentgrades to 11;"
                                "grant select on myregistrations to 11")
                  .ok());
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  std::thread runner([&] {
    auto r =
        db_.Execute("select * from grades where course-id = 'cs101'", ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ASSERT_TRUE(lot.WaitParked(std::chrono::seconds(10)))
      << "statement never reached a validity probe";

  auto act = Admin("select user_name, phase from fgac_activity "
                   "where user_name = '11'");
  ASSERT_EQ(act.num_rows(), 1u);
  EXPECT_EQ(act.rows()[0][0], Value::String("11"));
  EXPECT_EQ(act.rows()[0][1], Value::String("validity"));

  lot.Release();
  runner.join();
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

TEST(SlowQueryLogTest, CapturesOverThresholdWithTraceAndAuditsIt) {
  DatabaseOptions opts;
  opts.watchdog.enabled = false;
  // 1us latency threshold: every statement qualifies as "slow".
  opts.slow_query.latency_threshold_us = 1;
  Database db(opts);
  SetupUniversity(&db);
  CreateUniversityViews(&db);
  ASSERT_TRUE(db.ExecuteAsAdmin("grant select on mygrades to 11").ok());

  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  ctx.set_profile(true);  // the capture then carries trace + exec stats
  ASSERT_TRUE(
      db.Execute("select grade from grades where student-id = '11'", ctx)
          .ok());
  EXPECT_GE(db.slow_query_log().captured(), 1u);

  auto rel = testing::MustQueryAdmin(
      &db,
      "select user_name, statement, verdict, status, duration_us, trace "
      "from fgac_slow_queries");
  ASSERT_GE(rel.num_rows(), 1u);
  const Row& row = rel.rows()[rel.num_rows() - 1];
  EXPECT_EQ(row[0], Value::String("11"));
  EXPECT_NE(row[1].string_value().find("select grade"), std::string::npos);
  EXPECT_EQ(row[2], Value::String("unconditional"));
  EXPECT_EQ(row[3], Value::String("ok"));
  EXPECT_GE(row[4].int_value(), 1);
  // The captured validity trace travels with the row; every trace ends in
  // its verdict event.
  EXPECT_NE(row[5].string_value().find("verdict"), std::string::npos)
      << row[5].string_value();

  // The durable copy went to the audit sink with verdict "slow_query".
  db.audit_log().Flush();
  auto audited = testing::MustQueryAdmin(
      &db, "select verdict from fgac_audit where verdict = 'slow_query'");
  EXPECT_GE(audited.num_rows(), 1u);
}

TEST(SlowQueryLogTest, GuardRowThresholdAndRetentionBound) {
  DatabaseOptions opts;
  opts.watchdog.enabled = false;
  opts.slow_query.latency_threshold_us = 0;  // latency criterion off
  opts.slow_query.guard_rows_threshold = 1;  // any materialized row trips
  opts.slow_query.retain = 2;
  Database db(opts);
  SetupUniversity(&db);

  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Execute("select * from grades", admin).ok());
  }
  EXPECT_EQ(db.slow_query_log().captured(), 5u);
  // The ring keeps only the newest `retain` captures, newest seq last.
  auto snap = db.slow_query_log().Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_GT(snap[0].seq, 0u);
  EXPECT_EQ(snap[1].seq, snap[0].seq + 1);
  EXPECT_GE(snap[0].guard_rows, 1u);
}

// ---------------------------------------------------------------------------
// fgac_statement_cache: per-shard stats
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, StatementCacheTableMirrorsShardCounters) {
  ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kTruman);
  ASSERT_TRUE(
      s->Execute("prepare g as select grade from grades "
                 "where course-id = $1")
          .ok());
  ASSERT_TRUE(s->Execute("execute g ('cs101')").ok());
  ASSERT_TRUE(s->Execute("execute g ('cs101')").ok());
  ASSERT_TRUE(s->Execute("execute g ('cs202')").ok());

  auto rel = Admin(
      "select shard, entries, hits, misses from fgac_statement_cache");
  ASSERT_GE(rel.num_rows(), 1u);
  int64_t entries = 0, hits = 0, misses = 0;
  std::set<int64_t> shards;
  for (const Row& row : rel.rows()) {
    shards.insert(row[0].int_value());
    entries += row[1].int_value();
    hits += row[2].int_value();
    misses += row[3].int_value();
  }
  EXPECT_EQ(shards.size(), rel.num_rows());  // one row per shard
  // The per-shard rows sum to the cache's global counters.
  EXPECT_EQ(entries, static_cast<int64_t>(db_.statement_cache().size()));
  EXPECT_EQ(hits, static_cast<int64_t>(db_.statement_cache().hits()));
  EXPECT_EQ(misses, static_cast<int64_t>(db_.statement_cache().misses()));
  EXPECT_GE(hits, 2);  // the two repeat EXECUTEs
  cm.CloseAll();
}

// ---------------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, WatchdogFlagsParkedStatementOnceAndAuditsIt) {
  if (!FaultInjector::compiled_in()) {
    GTEST_SKIP() << "fault sites not compiled in";
  }
  ParkingLot lot;
  FaultInjector::Instance().OnHit("pipeline.run", lot.Hook());

  ConnectionManager cm(db_);
  auto s = cm.Open("11", EnforcementMode::kTruman);
  s->context().set_exec_parallelism(2);
  // No deadline on the statement: the no_deadline_stall rule applies. The
  // fixture watchdog thread is off; we sample manually.
  std::thread runner([&] {
    auto r = s->Execute("select grade from grades");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ASSERT_TRUE(lot.WaitParked(std::chrono::seconds(10)));

  // First sample establishes the progress mark; a second sample past the
  // stall threshold with an unchanged tuple reports the stall.
  core::Watchdog wd({.enabled = false,
                     .deadline_factor = 2.0,
                     .no_deadline_stall = std::chrono::milliseconds(1)},
                    &db_.activity(), &db_.metrics());
  std::atomic<int> stall_reports{0};
  wd.set_on_stall([&](const common::StatementActivitySnapshot& snap,
                      const std::string& reason) {
    stall_reports.fetch_add(1);
    EXPECT_EQ(snap.user, "11");
    EXPECT_NE(reason.find("no progress"), std::string::npos) << reason;
  });
  wd.SampleOnce();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  wd.SampleOnce();
  EXPECT_EQ(wd.stalls_detected(), 1u);
  EXPECT_EQ(stall_reports.load(), 1);
  EXPECT_GE(
      db_.metrics().gauge("watchdog.stalled_statements").value(), 1);
  // Stalls dedupe: more samples, still one report for this statement.
  wd.SampleOnce();
  EXPECT_EQ(wd.stalls_detected(), 1u);

  // The Database's own watchdog turns stalls into audit events with
  // verdict "stalled"; exercise that wiring via its stall callback path.
  lot.Release();
  runner.join();
  cm.CloseAll();
}

TEST_F(IntrospectionTest, DatabaseWatchdogAuditsStalledStatements) {
  if (!FaultInjector::compiled_in()) {
    GTEST_SKIP() << "fault sites not compiled in";
  }
  // This database runs its own (manual-sample) watchdog wiring: stalls
  // append audit events with verdict "stalled".
  DatabaseOptions opts;
  opts.watchdog.enabled = false;
  opts.watchdog.no_deadline_stall = std::chrono::milliseconds(1);
  Database db(opts);
  SetupUniversity(&db);
  CreateUniversityViews(&db);
  ASSERT_TRUE(db.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  ASSERT_TRUE(db.catalog().SetTrumanView("grades", "mygrades").ok());

  ParkingLot lot;
  FaultInjector::Instance().OnHit("pipeline.run", lot.Hook());
  ConnectionManager cm(db);
  auto s = cm.Open("11", EnforcementMode::kTruman);
  s->context().set_exec_parallelism(2);
  std::thread runner([&] { (void)s->Execute("select grade from grades"); });
  ASSERT_TRUE(lot.WaitParked(std::chrono::seconds(10)));

  db.watchdog().SampleOnce();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  db.watchdog().SampleOnce();
  EXPECT_EQ(db.watchdog().stalls_detected(), 1u);

  lot.Release();
  runner.join();
  db.audit_log().Flush();
  auto rel = testing::MustQueryAdmin(
      &db, "select user_name, status from fgac_audit "
           "where verdict = 'stalled'");
  ASSERT_GE(rel.num_rows(), 1u);
  EXPECT_EQ(rel.rows()[0][0], Value::String("11"));
  EXPECT_EQ(rel.rows()[0][1], Value::String("in_flight"));
  cm.CloseAll();
}

// ---------------------------------------------------------------------------
// introspect.snapshot fault site
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, SnapshotFaultFailsTheQueryingStatementOnly) {
  if (!FaultInjector::compiled_in()) {
    GTEST_SKIP() << "fault sites not compiled in";
  }
  FaultInjector::Instance().FailOnHit("introspect.snapshot");
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  auto r = db_.Execute("select * from fgac_sessions", admin);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  // The failure is confined to the refresh: the next statement refreshes
  // and reads normally, and non-system statements never hit the site.
  EXPECT_TRUE(db_.Execute("select * from students", admin).ok());
  EXPECT_TRUE(db_.Execute("select * from fgac_sessions", admin).ok());
}

// ---------------------------------------------------------------------------
// Churn: 8 threads of session open/statement/close vs a snapshot reader
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, ChurnSnapshotsAreTearFreeAndWindowsMonotone) {
  constexpr int kThreads = 8;
  const int iters = StressRepeat(6);
  ConnectionManager cm(db_);
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      const std::string user = (t % 2 == 0) ? "11" : "12";
      for (int i = 0; i < iters; ++i) {
        auto s = cm.Open(user, EnforcementMode::kTruman);
        ASSERT_TRUE(
            s->Execute("prepare q as select grade from grades "
                       "where course-id = $1")
                .ok());
        EXPECT_TRUE(s->Execute("execute q ('cs101')").ok());
        EXPECT_TRUE(s->Execute("select grade from grades").ok());
        cm.Close(s->id());
      }
    });
  }

  // The reader loops over registry snapshots, the governed system table,
  // and the Prometheus export while sessions churn underneath.
  std::thread reader([&] {
    uint64_t last_begun = 0;
    while (!done.load(std::memory_order_acquire)) {
      // Registry snapshots: whole rows, principals from the writer set.
      for (const auto& s : db_.activity().SnapshotSessions()) {
        EXPECT_TRUE(s.user == "11" || s.user == "12") << s.user;
        EXPECT_FALSE(s.session_id.empty());
      }
      for (const auto& a : db_.activity().SnapshotStatements()) {
        EXPECT_TRUE(a.user == "11" || a.user == "12") << a.user;
        EXPECT_FALSE(a.statement.empty());
        EXPECT_LE(a.pipelines_done, a.pipelines_total);
      }
      // statements_begun is monotone across snapshots.
      uint64_t begun = db_.activity().statements_begun();
      EXPECT_GE(begun, last_begun);
      last_begun = begun;
      // Windowed counters never exceed cumulative, and windows nest.
      common::MetricsSnapshot snap = db_.metrics().Snapshot();
      auto it = snap.counter_windows.find("queries.select");
      if (it != snap.counter_windows.end()) {
        const auto& w = it->second;
        EXPECT_LE(w[0], w[1]);
        EXPECT_LE(w[1], w[2]);
        EXPECT_LE(w[2], snap.counters.at("queries.select"));
      }
      // The Prometheus exposition stays well-formed mid-churn.
      std::string prom = db_.ExportMetricsPrometheus();
      EXPECT_NE(prom.find("fgac_queries_select_total"), std::string::npos);
      EXPECT_EQ(prom.find("nan"), std::string::npos);
      // And the governed table itself is queryable throughout.
      SessionContext admin("admin");
      admin.set_mode(EnforcementMode::kNone);
      EXPECT_TRUE(db_.Execute("select * from fgac_sessions", admin).ok());
    }
  });

  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Quiesced: no sessions, no in-flight statements, counters add up.
  cm.CloseAll();
  EXPECT_EQ(db_.activity().sessions_open(), 0u);
  EXPECT_EQ(db_.activity().statements_active(), 0u);
  EXPECT_GE(db_.activity().statements_begun(),
            static_cast<uint64_t>(kThreads * iters * 3));
}

}  // namespace
}  // namespace fgac
