// Error-path coverage: every user mistake should produce a typed Status
// with an actionable message, never a crash or a silent wrong answer.

#include <gtest/gtest.h>

#include "core/database.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::SetupUniversity;

class ErrorPathsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetupUniversity(&db_); }

  StatusCode CodeOf(const std::string& sql) {
    SessionContext admin("admin");
    admin.set_mode(EnforcementMode::kNone);
    auto r = db_.Execute(sql, admin);
    EXPECT_FALSE(r.ok()) << "expected failure: " << sql;
    return r.ok() ? StatusCode::kOk : r.status().code();
  }

  Database db_;
};

TEST_F(ErrorPathsTest, ParseErrors) {
  EXPECT_EQ(CodeOf("selec 1"), StatusCode::kParseError);
  EXPECT_EQ(CodeOf("select * from"), StatusCode::kParseError);
  EXPECT_EQ(CodeOf("insert into t values"), StatusCode::kParseError);
  EXPECT_EQ(CodeOf("create table t (x unknown_type)"), StatusCode::kParseError);
}

TEST_F(ErrorPathsTest, BindErrors) {
  EXPECT_EQ(CodeOf("select * from nosuch"), StatusCode::kBindError);
  EXPECT_EQ(CodeOf("select nosuch from students"), StatusCode::kBindError);
  EXPECT_EQ(CodeOf("select t.name from students"), StatusCode::kBindError);
  EXPECT_EQ(CodeOf("update students set nosuch = 1"), StatusCode::kBindError);
  EXPECT_EQ(CodeOf("insert into students (nosuch) values (1)"),
            StatusCode::kBindError);
  EXPECT_EQ(CodeOf("insert into students values (1)"), StatusCode::kBindError);
  EXPECT_EQ(CodeOf("select * from grades where student-id = $user"),
            StatusCode::kBindError);
}

TEST_F(ErrorPathsTest, CatalogErrors) {
  EXPECT_EQ(CodeOf("create table students (x int)"), StatusCode::kCatalogError);
  EXPECT_EQ(CodeOf("drop table nosuch"), StatusCode::kCatalogError);
  EXPECT_EQ(CodeOf("drop view nosuch"), StatusCode::kCatalogError);
  EXPECT_EQ(CodeOf("grant select on nosuch to alice"),
            StatusCode::kCatalogError);
  EXPECT_EQ(CodeOf("update nosuch set x = 1"), StatusCode::kCatalogError);
  EXPECT_EQ(CodeOf("delete from nosuch"), StatusCode::kCatalogError);
  EXPECT_EQ(CodeOf("authorize insert on nosuch"), StatusCode::kCatalogError);
  EXPECT_EQ(CodeOf("create inclusion dependency d on nosuch (x) "
                   "references students (student-id)"),
            StatusCode::kCatalogError);
}

TEST_F(ErrorPathsTest, NotImplementedSubset) {
  EXPECT_EQ(CodeOf("select * from (select * from students)"),
            StatusCode::kNotImplemented);
  EXPECT_EQ(CodeOf("select (select 1)"), StatusCode::kNotImplemented);
}

TEST_F(ErrorPathsTest, ExecutionErrors) {
  EXPECT_EQ(CodeOf("select grade / 0 from grades"),
            StatusCode::kExecutionError);
  EXPECT_EQ(CodeOf("select name + 1 from students"),
            StatusCode::kExecutionError);
  EXPECT_EQ(CodeOf("select name like 1 from students"),
            StatusCode::kExecutionError);
}

TEST_F(ErrorPathsTest, GrantOnTableRejected) {
  // Only views are grantable objects in this model.
  EXPECT_EQ(CodeOf("grant select on grades to alice"),
            StatusCode::kCatalogError);
}

TEST_F(ErrorPathsTest, MessagesCarryContext) {
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  auto r = db_.Execute("select nosuch_col from students", admin);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nosuch_col"), std::string::npos);
  auto r2 = db_.Execute("select 1 +", admin);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("line"), std::string::npos);
}

TEST_F(ErrorPathsTest, FailedUpdateLeavesTableUntouched) {
  // The second assignment divides by zero on some row: two-phase update
  // must not partially apply.
  auto before = fgac::testing::MustQueryAdmin(
      &db_, "select sum(grade) from grades");
  auto r = db_.ExecuteAsAdmin("update grades set grade = grade / (grade - 2.0)");
  ASSERT_FALSE(r.ok());  // carol's 2.0 divides by zero
  auto after = fgac::testing::MustQueryAdmin(
      &db_, "select sum(grade) from grades");
  EXPECT_EQ(before.rows()[0][0], after.rows()[0][0]);
}

TEST_F(ErrorPathsTest, RejectionsDoNotLeakThroughErrors) {
  // A user without views gets kNotAuthorized for syntactically fine
  // queries — never an execution-level error revealing table contents.
  SessionContext stranger("stranger");
  stranger.set_mode(EnforcementMode::kNonTruman);
  auto r = db_.Execute("select * from grades where grade / 0 > 1", stranger);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotAuthorized);
}

}  // namespace
}  // namespace fgac
