// Unit tests for bound scalars: evaluation semantics, slot utilities,
// access-parameter binding, and the aggregate accumulator.

#include "algebra/scalar.h"

#include <gtest/gtest.h>

namespace fgac::algebra {
namespace {

ScalarPtr Col(int s) { return MakeColumn(s); }
ScalarPtr I(int64_t v) { return MakeLiteralScalar(Value::Int(v)); }
ScalarPtr S(const std::string& v) {
  return MakeLiteralScalar(Value::String(v));
}

Value Eval(const ScalarPtr& s, const Row& row = {}) {
  auto r = EvalScalar(s, row);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : Value::Null();
}

TEST(ScalarEvalTest, Arithmetic) {
  EXPECT_EQ(Eval(MakeBinaryScalar(sql::BinOp::kAdd, I(2), I(3))), Value::Int(5));
  EXPECT_EQ(Eval(MakeBinaryScalar(sql::BinOp::kMul, I(4), I(5))), Value::Int(20));
  EXPECT_EQ(Eval(MakeBinaryScalar(sql::BinOp::kDiv, I(7), I(2))), Value::Int(3));
  EXPECT_EQ(Eval(MakeBinaryScalar(sql::BinOp::kMod, I(7), I(4))), Value::Int(3));
  // Mixed int/double promotes.
  EXPECT_EQ(Eval(MakeBinaryScalar(sql::BinOp::kDiv, I(7),
                                  MakeLiteralScalar(Value::Double(2.0)))),
            Value::Double(3.5));
}

TEST(ScalarEvalTest, DivisionByZeroErrors) {
  EXPECT_FALSE(EvalScalar(MakeBinaryScalar(sql::BinOp::kDiv, I(1), I(0)), {}).ok());
  EXPECT_FALSE(EvalScalar(MakeBinaryScalar(sql::BinOp::kMod, I(1), I(0)), {}).ok());
}

TEST(ScalarEvalTest, NullPropagatesThroughArithmetic) {
  ScalarPtr null = MakeLiteralScalar(Value::Null());
  EXPECT_TRUE(Eval(MakeBinaryScalar(sql::BinOp::kAdd, I(1), null)).is_null());
  EXPECT_TRUE(Eval(MakeUnaryScalar(sql::UnOp::kNeg, null)).is_null());
}

TEST(ScalarEvalTest, ShortCircuitAndOr) {
  // FALSE AND <error> must not evaluate the right side.
  ScalarPtr boom = MakeBinaryScalar(sql::BinOp::kDiv, I(1), I(0));
  ScalarPtr f = MakeLiteralScalar(Value::Bool(false));
  ScalarPtr t = MakeLiteralScalar(Value::Bool(true));
  EXPECT_EQ(Eval(MakeBinaryScalar(sql::BinOp::kAnd, f, boom)),
            Value::Bool(false));
  EXPECT_EQ(Eval(MakeBinaryScalar(sql::BinOp::kOr, t, boom)), Value::Bool(true));
}

TEST(ScalarEvalTest, ThreeValuedAndOr) {
  ScalarPtr null = MakeLiteralScalar(Value::Null());
  ScalarPtr t = MakeLiteralScalar(Value::Bool(true));
  ScalarPtr f = MakeLiteralScalar(Value::Bool(false));
  EXPECT_TRUE(Eval(MakeBinaryScalar(sql::BinOp::kAnd, t, null)).is_null());
  EXPECT_EQ(Eval(MakeBinaryScalar(sql::BinOp::kAnd, null, f)), Value::Bool(false));
  EXPECT_EQ(Eval(MakeBinaryScalar(sql::BinOp::kOr, null, t)), Value::Bool(true));
  EXPECT_TRUE(Eval(MakeBinaryScalar(sql::BinOp::kOr, null, f)).is_null());
}

TEST(ScalarEvalTest, IsNullOperators) {
  ScalarPtr null = MakeLiteralScalar(Value::Null());
  EXPECT_EQ(Eval(MakeUnaryScalar(sql::UnOp::kIsNull, null)), Value::Bool(true));
  EXPECT_EQ(Eval(MakeUnaryScalar(sql::UnOp::kIsNotNull, I(1))), Value::Bool(true));
}

TEST(ScalarEvalTest, LikePatterns) {
  auto like = [](const std::string& text, const std::string& pattern) {
    return Eval(MakeBinaryScalar(sql::BinOp::kLike, S(text), S(pattern)));
  };
  EXPECT_EQ(like("hello", "h%"), Value::Bool(true));
  EXPECT_EQ(like("hello", "%llo"), Value::Bool(true));
  EXPECT_EQ(like("hello", "h_llo"), Value::Bool(true));
  EXPECT_EQ(like("hello", "h_l"), Value::Bool(false));
  EXPECT_EQ(like("hello", "%%%"), Value::Bool(true));
  EXPECT_EQ(like("", "%"), Value::Bool(true));
  EXPECT_EQ(like("abc", "a%c%"), Value::Bool(true));
}

TEST(ScalarEvalTest, InListWithNulls) {
  ScalarPtr null = MakeLiteralScalar(Value::Null());
  // 2 IN (1, NULL) -> UNKNOWN; 1 IN (1, NULL) -> TRUE.
  EXPECT_TRUE(Eval(MakeInListScalar(I(2), {I(1), null}, false)).is_null());
  EXPECT_EQ(Eval(MakeInListScalar(I(1), {I(1), null}, false)), Value::Bool(true));
  // NOT IN with a NULL in the list is never TRUE.
  EXPECT_TRUE(Eval(MakeInListScalar(I(2), {I(1), null}, true)).is_null());
}

TEST(ScalarEvalTest, PredicateTreatsUnknownAsFalse) {
  ScalarPtr null = MakeLiteralScalar(Value::Null());
  auto pass = EvalPredicate(MakeBinaryScalar(sql::BinOp::kEq, null, I(1)), {});
  ASSERT_TRUE(pass.ok());
  EXPECT_FALSE(pass.value());
}

TEST(ScalarEvalTest, SlotOutOfRangeErrors) {
  EXPECT_FALSE(EvalScalar(Col(3), Row{Value::Int(1)}).ok());
}

TEST(ScalarEvalTest, UnboundAccessParamErrors) {
  EXPECT_FALSE(EvalScalar(MakeAccessParamScalar("k"), {}).ok());
}

TEST(ScalarUtilTest, CollectAndRemapSlots) {
  ScalarPtr s = MakeBinaryScalar(
      sql::BinOp::kAnd, MakeBinaryScalar(sql::BinOp::kEq, Col(0), Col(4)),
      MakeInListScalar(Col(2), {I(1)}, false));
  std::set<int> slots;
  CollectSlots(s, &slots);
  EXPECT_EQ(slots, (std::set<int>{0, 2, 4}));
  ScalarPtr shifted = RemapSlots(s, [](int slot) { return slot + 10; });
  slots.clear();
  CollectSlots(shifted, &slots);
  EXPECT_EQ(slots, (std::set<int>{10, 12, 14}));
}

TEST(ScalarUtilTest, SubstituteSlotsComposes) {
  // s = #0 + #1, substitution [#0 -> 5, #1 -> #2 * 2].
  ScalarPtr s = MakeBinaryScalar(sql::BinOp::kAdd, Col(0), Col(1));
  std::vector<ScalarPtr> sub = {
      I(5), MakeBinaryScalar(sql::BinOp::kMul, Col(2), I(2))};
  ScalarPtr composed = SubstituteSlots(s, sub);
  Row row = {Value::Int(0), Value::Int(0), Value::Int(7)};
  EXPECT_EQ(Eval(composed, row), Value::Int(19));
}

TEST(ScalarUtilTest, BindAccessParam) {
  ScalarPtr s = MakeBinaryScalar(sql::BinOp::kEq, Col(0),
                                 MakeAccessParamScalar("acct"));
  EXPECT_TRUE(HasAccessParam(s));
  ScalarPtr bound = BindAccessParam(s, "acct", Value::String("a1"));
  EXPECT_FALSE(HasAccessParam(bound));
  EXPECT_EQ(Eval(bound, Row{Value::String("a1")}), Value::Bool(true));
  // Unrelated names are untouched.
  EXPECT_TRUE(HasAccessParam(BindAccessParam(s, "other", Value::Int(1))));
}

TEST(ScalarUtilTest, FingerprintStableUnderSharing) {
  ScalarPtr a = MakeBinaryScalar(sql::BinOp::kEq, Col(1), I(5));
  ScalarPtr b = MakeBinaryScalar(sql::BinOp::kEq, Col(1), I(5));
  EXPECT_EQ(ScalarFingerprint(a), ScalarFingerprint(b));
  EXPECT_EQ(ScalarFingerprint(a), ScalarFingerprint(a));  // cached path
  EXPECT_TRUE(ScalarEquals(a, b));
  ScalarPtr c = MakeBinaryScalar(sql::BinOp::kEq, Col(2), I(5));
  EXPECT_FALSE(ScalarEquals(a, c));
}

TEST(AggAccumulatorTest, SumPromotesToDouble) {
  AggExpr agg{AggFunc::kSum, Col(0), false};
  AggAccumulator acc(agg);
  ASSERT_TRUE(acc.Add(Row{Value::Int(1)}).ok());
  ASSERT_TRUE(acc.Add(Row{Value::Double(0.5)}).ok());
  EXPECT_EQ(acc.Finish(), Value::Double(1.5));
}

TEST(AggAccumulatorTest, EmptyAggregates) {
  AggExpr sum{AggFunc::kSum, Col(0), false};
  AggAccumulator s(sum);
  EXPECT_TRUE(s.Finish().is_null());
  AggExpr cnt{AggFunc::kCount, Col(0), false};
  AggAccumulator c(cnt);
  EXPECT_EQ(c.Finish(), Value::Int(0));
  AggExpr mn{AggFunc::kMin, Col(0), false};
  AggAccumulator m(mn);
  EXPECT_TRUE(m.Finish().is_null());
}

TEST(AggAccumulatorTest, DistinctDedups) {
  AggExpr agg{AggFunc::kCount, Col(0), /*distinct=*/true};
  AggAccumulator acc(agg);
  for (int64_t v : {1, 2, 2, 3, 1}) {
    ASSERT_TRUE(acc.Add(Row{Value::Int(v)}).ok());
  }
  EXPECT_EQ(acc.Finish(), Value::Int(3));
}

TEST(AggAccumulatorTest, MinMaxOnStrings) {
  AggExpr mn{AggFunc::kMin, Col(0), false};
  AggExpr mx{AggFunc::kMax, Col(0), false};
  AggAccumulator amin(mn), amax(mx);
  for (const char* v : {"pear", "apple", "plum"}) {
    ASSERT_TRUE(amin.Add(Row{Value::String(v)}).ok());
    ASSERT_TRUE(amax.Add(Row{Value::String(v)}).ok());
  }
  EXPECT_EQ(amin.Finish(), Value::String("apple"));
  EXPECT_EQ(amax.Finish(), Value::String("plum"));
}

TEST(AggAccumulatorTest, AvgIsDouble) {
  AggExpr agg{AggFunc::kAvg, Col(0), false};
  AggAccumulator acc(agg);
  ASSERT_TRUE(acc.Add(Row{Value::Int(1)}).ok());
  ASSERT_TRUE(acc.Add(Row{Value::Int(2)}).ok());
  EXPECT_EQ(acc.Finish(), Value::Double(1.5));
}

}  // namespace
}  // namespace fgac::algebra
