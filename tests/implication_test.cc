#include "optimizer/implication.h"

#include <gtest/gtest.h>

#include "algebra/normalize.h"
#include "sql/parser.h"

namespace fgac::optimizer {
namespace {

using algebra::ScalarPtr;

/// Parses a conjunction over columns a (slot 0), b (slot 1) into normalized
/// conjuncts.
std::vector<ScalarPtr> Conjuncts(const std::string& text) {
  auto expr = sql::Parser::ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  std::function<ScalarPtr(const sql::ExprPtr&)> bind =
      [&](const sql::ExprPtr& e) -> ScalarPtr {
    switch (e->kind) {
      case sql::ExprKind::kLiteral:
        return algebra::MakeLiteralScalar(e->value);
      case sql::ExprKind::kColumnRef:
        return algebra::MakeColumn(e->column == "a" ? 0 : 1);
      case sql::ExprKind::kBinary:
        return algebra::MakeBinaryScalar(e->bin_op, bind(e->left),
                                         bind(e->right));
      case sql::ExprKind::kUnary:
        return algebra::MakeUnaryScalar(e->un_op, bind(e->operand));
      case sql::ExprKind::kInList: {
        std::vector<ScalarPtr> list;
        for (const auto& x : e->in_list) list.push_back(bind(x));
        return algebra::MakeInListScalar(bind(e->operand), std::move(list),
                                         e->negated);
      }
      case sql::ExprKind::kBetween: {
        ScalarPtr x = bind(e->operand);
        return algebra::MakeBinaryScalar(
            sql::BinOp::kAnd,
            algebra::MakeBinaryScalar(sql::BinOp::kLe, bind(e->left), x),
            algebra::MakeBinaryScalar(sql::BinOp::kLe, x, bind(e->right)));
      }
      default:
        ADD_FAILURE() << "unsupported";
        return algebra::MakeLiteralScalar(Value::Null());
    }
  };
  return algebra::SplitConjuncts(bind(expr.value()));
}

bool Implies(const std::string& premises, const std::string& conclusion) {
  return ImpliesAll(Conjuncts(premises), Conjuncts(conclusion));
}

TEST(ImplicationTest, StructuralEquality) {
  EXPECT_TRUE(Implies("a = 5", "a = 5"));
  EXPECT_TRUE(Implies("a = 5 and b = 2", "b = 2"));
  EXPECT_FALSE(Implies("a = 5", "b = 5"));
}

TEST(ImplicationTest, EqualityImpliesRanges) {
  EXPECT_TRUE(Implies("a = 5", "a < 10"));
  EXPECT_TRUE(Implies("a = 5", "a <= 5"));
  EXPECT_TRUE(Implies("a = 5", "a > 0"));
  EXPECT_TRUE(Implies("a = 5", "a >= 5"));
  EXPECT_TRUE(Implies("a = 5", "a <> 6"));
  EXPECT_FALSE(Implies("a = 5", "a < 5"));
  EXPECT_FALSE(Implies("a = 5", "a <> 5"));
}

TEST(ImplicationTest, RangeImpliesWeakerRange) {
  EXPECT_TRUE(Implies("a < 5", "a < 10"));
  EXPECT_TRUE(Implies("a < 5", "a <= 5"));
  EXPECT_TRUE(Implies("a <= 5", "a < 6"));
  EXPECT_FALSE(Implies("a < 10", "a < 5"));
  EXPECT_TRUE(Implies("a > 5", "a > 1"));
  EXPECT_TRUE(Implies("a >= 6", "a > 5"));
  EXPECT_FALSE(Implies("a >= 5", "a > 5"));
}

TEST(ImplicationTest, RangeImpliesNe) {
  EXPECT_TRUE(Implies("a < 5", "a <> 5"));
  EXPECT_TRUE(Implies("a < 5", "a <> 7"));
  EXPECT_FALSE(Implies("a < 5", "a <> 3"));
}

TEST(ImplicationTest, InListReasoning) {
  EXPECT_TRUE(Implies("a = 2", "a in (1, 2, 3)"));
  EXPECT_FALSE(Implies("a = 4", "a in (1, 2, 3)"));
  EXPECT_TRUE(Implies("a in (1, 2)", "a in (1, 2, 3)"));
  EXPECT_FALSE(Implies("a in (1, 4)", "a in (1, 2, 3)"));
  EXPECT_TRUE(Implies("a in (1, 2)", "a < 5"));
  EXPECT_FALSE(Implies("a in (1, 9)", "a < 5"));
}

TEST(ImplicationTest, StringComparisons) {
  EXPECT_TRUE(Implies("a = 'cs101'", "a = 'cs101'"));
  EXPECT_TRUE(Implies("a = 'abc'", "a < 'abd'"));
  EXPECT_FALSE(Implies("a = 'abc'", "a = 'abd'"));
}

TEST(ImplicationTest, BetweenDesugared) {
  EXPECT_TRUE(Implies("a between 2 and 4", "a <= 4"));
  EXPECT_TRUE(Implies("a between 2 and 4", "a < 5"));
  EXPECT_TRUE(Implies("a = 3", "a between 2 and 4"));
}

TEST(ImplicationTest, ConjunctionOnBothSides) {
  EXPECT_TRUE(Implies("a = 5 and b = 2", "a < 10 and b <> 3"));
  EXPECT_FALSE(Implies("a = 5", "a = 5 and b = 2"));
}

TEST(ImplicationTest, NonAtomConjunctsOnlyStructural) {
  EXPECT_TRUE(Implies("a like 'x%'", "a like 'x%'"));
  EXPECT_FALSE(Implies("a like 'x%'", "a like 'y%'"));
}

TEST(ImplicationTest, ExtractAtomShapes) {
  auto c = Conjuncts("5 > a");  // literal-on-left mirrored
  ASSERT_EQ(c.size(), 1u);
  auto atom = ExtractAtom(c[0]);
  ASSERT_TRUE(atom.has_value());
  EXPECT_EQ(atom->op, Atom::Op::kLt);
  EXPECT_EQ(atom->literal, Value::Int(5));
}

}  // namespace
}  // namespace fgac::optimizer
