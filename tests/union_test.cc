// UNION ALL: parsing, execution, and participation in validity inference
// (a union of valid queries is valid by rule U2's composition).

#include <gtest/gtest.h>

#include "core/database.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::EnforcementMode;
using core::SessionContext;
using fgac::testing::CreateUniversityViews;
using fgac::testing::MustQueryAdmin;
using fgac::testing::SetupUniversity;

class UnionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
  }
  core::Database db_;
};

TEST_F(UnionTest, ParsesAndPrints) {
  auto stmt = sql::Parser::ParseSelect(
      "select student-id from grades union all "
      "select student-id from registered order by 1 limit 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt.value()->union_all.size(), 1u);
  // ORDER BY/LIMIT attach to the whole union (head statement).
  EXPECT_EQ(stmt.value()->order_by.size(), 1u);
  EXPECT_EQ(stmt.value()->limit, 3);
  EXPECT_TRUE(stmt.value()->union_all[0]->order_by.empty());
  // Printer round-trips.
  std::string printed = sql::SelectToSql(*stmt.value());
  auto reparsed = sql::Parser::ParseSelect(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ(printed, sql::SelectToSql(*reparsed.value()));
}

TEST_F(UnionTest, BagSemantics) {
  auto rel = MustQueryAdmin(
      &db_, "select student-id from grades where course-id = 'cs101' "
            "union all "
            "select student-id from grades where course-id = 'cs202'");
  // 2 + 2 rows, duplicates preserved ('11' appears in both courses).
  EXPECT_EQ(rel.num_rows(), 4u);
}

TEST_F(UnionTest, ThreeBranches) {
  auto rel = MustQueryAdmin(&db_,
                            "select 1 union all select 2 union all select 3");
  EXPECT_EQ(rel.num_rows(), 3u);
}

TEST_F(UnionTest, OrderAndLimitApplyToWholeUnion) {
  auto rel = MustQueryAdmin(
      &db_, "select grade from grades where student-id = '11' union all "
            "select grade from grades where student-id = '13' "
            "order by 1 desc limit 2");
  ASSERT_EQ(rel.num_rows(), 2u);
  EXPECT_EQ(rel.rows()[0][0], Value::Double(4.0));
  EXPECT_EQ(rel.rows()[1][0], Value::Double(3.5));
}

TEST_F(UnionTest, ArityMismatchFails) {
  SessionContext admin("admin");
  admin.set_mode(EnforcementMode::kNone);
  auto r = db_.Execute(
      "select student-id, grade from grades union all "
      "select student-id from registered",
      admin);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(UnionTest, UnionOfValidBranchesIsValid) {
  ASSERT_TRUE(db_.ExecuteScript("grant select on mygrades to 11;"
                                "grant select on myregistrations to 11")
                  .ok());
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  auto report = db_.CheckQueryValidity(
      "select course-id from grades where student-id = '11' union all "
      "select course-id from registered where student-id = '11'",
      ctx);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().valid) << report.value().reason;
  EXPECT_TRUE(report.value().unconditional);
}

TEST_F(UnionTest, UnionWithInvalidBranchRejected) {
  ASSERT_TRUE(db_.ExecuteAsAdmin("grant select on mygrades to 11").ok());
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  auto report = db_.CheckQueryValidity(
      "select course-id from grades where student-id = '11' union all "
      "select course-id from grades where student-id = '12'",
      ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().valid);
}

TEST_F(UnionTest, ParameterizedUnionInView) {
  // Views may themselves contain UNION ALL with parameters.
  ASSERT_TRUE(db_.ExecuteScript(
                     "create authorization view mydata as "
                     "select course-id from grades where student-id = $user-id "
                     "union all "
                     "select course-id from registered "
                     "where student-id = $user-id;"
                     "grant select on mydata to 11")
                  .ok());
  SessionContext ctx("11");
  ctx.set_mode(EnforcementMode::kNonTruman);
  auto report = db_.CheckQueryValidity(
      "select course-id from grades where student-id = '11' union all "
      "select course-id from registered where student-id = '11'",
      ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().valid) << report.value().reason;
}

}  // namespace
}  // namespace fgac
