// Constructive soundness: for queries admitted through U1/U2, the engine
// can produce the witness rewriting q' over the views (Definition 4.1),
// and executing q' against the MATERIALIZED views yields exactly the
// original query's answer. This is the strongest possible check that an
// unconditional admission was correct: the answer really is computable
// from the authorized information alone.

#include <gtest/gtest.h>

#include "algebra/reference_eval.h"
#include "core/auth_view.h"
#include "core/database.h"
#include "sql/parser.h"
#include "tests/query_gen.h"
#include "tests/test_util.h"

namespace fgac {
namespace {

using core::Database;
using core::InstantiatedView;
using core::SessionContext;
using core::ValidityChecker;
using fgac::testing::CreateUniversityViews;
using fgac::testing::SetupUniversity;
using fgac::testing::SortedRowsToString;

class WitnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetupUniversity(&db_);
    CreateUniversityViews(&db_);
    ctx_ = SessionContext("11");
  }

  algebra::PlanPtr Bind(const std::string& sql) {
    auto stmt = sql::Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto plan = db_.BindQuery(*stmt.value(), ctx_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? plan.value() : nullptr;
  }

  std::vector<InstantiatedView> Views(std::initializer_list<const char*> names) {
    std::vector<InstantiatedView> out;
    for (const char* name : names) {
      auto view = core::InstantiateView(db_.catalog(),
                                        *db_.catalog().GetView(name), ctx_);
      EXPECT_TRUE(view.ok());
      if (view.ok()) out.push_back(std::move(view).value());
    }
    return out;
  }

  /// Checks validity; if unconditionally valid, extracts the witness and
  /// verifies q'(views) == q(database).
  void CheckWitness(const std::string& sql,
                    const std::vector<InstantiatedView>& views,
                    bool expect_witness = true) {
    algebra::PlanPtr plan = Bind(sql);
    ASSERT_NE(plan, nullptr);
    ValidityChecker checker(db_.catalog(), &db_.state(), {});
    auto report = checker.Check(plan, views);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report.value().valid) << sql << "\n" << report.value().reason;
    ASSERT_TRUE(report.value().unconditional) << sql;

    auto witness = checker.ExtractWitness();
    if (!expect_witness) {
      EXPECT_FALSE(witness.ok());
      return;
    }
    ASSERT_TRUE(witness.ok()) << witness.status().ToString() << "\nsql: " << sql;
    // The witness must only read view pseudo-tables.
    for (const std::string& t : core::CollectBaseTables(witness.value())) {
      EXPECT_EQ(t.rfind("view:", 0), 0u)
          << "witness reads base table '" << t << "'\nsql: " << sql;
    }
    auto from_views =
        ValidityChecker::ExecuteWitness(witness.value(), views, db_.state());
    ASSERT_TRUE(from_views.ok()) << from_views.status().ToString();
    auto direct = algebra::ReferenceEval(plan, db_.state());
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(from_views.value().MultisetEquals(direct.value()))
        << "witness disagrees with the query\nsql: " << sql << "\nwitness:\n"
        << algebra::PlanToString(witness.value()) << "q':\n"
        << SortedRowsToString(from_views.value()) << "q:\n"
        << SortedRowsToString(direct.value());
  }

  Database db_;
  SessionContext ctx_{"11"};
};

TEST_F(WitnessTest, ViewItself) {
  CheckWitness("select * from grades where student-id = '11'",
               Views({"mygrades"}));
}

TEST_F(WitnessTest, ProjectionOverView) {
  CheckWitness("select grade from grades where student-id = '11'",
               Views({"mygrades"}));
}

TEST_F(WitnessTest, SelectionRefinement) {
  CheckWitness(
      "select course-id from grades where student-id = '11' and grade >= 3.5",
      Views({"mygrades"}));
}

TEST_F(WitnessTest, AggregateOverView) {
  CheckWitness("select avg(grade), count(*) from grades "
               "where student-id = '11'",
               Views({"mygrades"}));
}

TEST_F(WitnessTest, AggregationViewLookup) {
  CheckWitness("select avg(grade) from grades where course-id = 'cs101'",
               Views({"avggrades"}));
}

TEST_F(WitnessTest, JoinOfTwoViews) {
  CheckWitness(
      "select g.grade, r.course-id from grades g, registered r "
      "where g.student-id = '11' and r.student-id = '11' "
      "and g.course-id = r.course-id",
      Views({"mygrades", "myregistrations"}));
}

TEST_F(WitnessTest, OrderByLimitComposition) {
  CheckWitness("select grade from grades where student-id = '11' "
               "order by grade desc limit 1",
               Views({"mygrades"}));
}

TEST_F(WitnessTest, DistinctComposition) {
  CheckWitness("select distinct course-id from registered "
               "where student-id = '11'",
               Views({"myregistrations"}));
}

TEST_F(WitnessTest, ConditionalAdmissionHasNoDirectWitness) {
  // Example 4.4's C3 admission is justified by state-dependent reasoning,
  // not a rewriting valid in all states; ExtractWitness reports so.
  algebra::PlanPtr plan = Bind("select * from grades where course-id = 'cs101'");
  auto views = Views({"costudentgrades", "myregistrations"});
  ValidityChecker checker(db_.catalog(), &db_.state(), {});
  auto report = checker.Check(plan, views);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().valid);
  ASSERT_FALSE(report.value().unconditional);
  EXPECT_FALSE(checker.ExtractWitness().ok());
}

TEST_F(WitnessTest, WitnessBeforeCheckFails) {
  ValidityChecker checker(db_.catalog(), &db_.state(), {});
  EXPECT_FALSE(checker.ExtractWitness().ok());
}

// Randomized constructive soundness: every unconditionally valid random
// query that yields a witness must agree with it.
class WitnessPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WitnessPropertyTest, RandomQueriesAgreeWithTheirWitnesses) {
  Database db;
  SetupUniversity(&db);
  CreateUniversityViews(&db);
  SessionContext ctx("11");
  auto views_or = core::InstantiateAvailableViews(db.catalog(), ctx);
  ASSERT_TRUE(views_or.ok());
  // Grant a broad slice so a good fraction of random queries are valid.
  ASSERT_TRUE(db.ExecuteScript("grant select on mygrades to 11;"
                               "grant select on myregistrations to 11;"
                               "grant select on avggrades to 11;"
                               "grant select on regstudents to 11")
                  .ok());
  auto views = core::InstantiateAvailableViews(db.catalog(), ctx);
  ASSERT_TRUE(views.ok());

  fgac::testing::QueryGenerator gen(GetParam());
  int witnessed = 0;
  for (int i = 0; i < 30; ++i) {
    std::string sql = gen.NextQuery();
    auto stmt = sql::Parser::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok());
    auto plan = db.BindQuery(*stmt.value(), ctx);
    if (!plan.ok()) continue;
    ValidityChecker checker(db.catalog(), &db.state(), {});
    auto report = checker.Check(plan.value(), views.value());
    ASSERT_TRUE(report.ok());
    if (!report.value().valid || !report.value().unconditional) continue;
    auto witness = checker.ExtractWitness();
    if (!witness.ok()) continue;  // admitted via U3; no direct rewriting
    auto from_views = ValidityChecker::ExecuteWitness(
        witness.value(), views.value(), db.state());
    ASSERT_TRUE(from_views.ok()) << from_views.status().ToString();
    auto direct = algebra::ReferenceEval(plan.value(), db.state());
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(from_views.value().MultisetEquals(direct.value()))
        << "sql: " << sql;
    ++witnessed;
  }
  RecordProperty("witnessed", witnessed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessPropertyTest, ::testing::Range(1u, 9u));

}  // namespace
}  // namespace fgac
