// StmtToSql round-trips for every statement kind.

#include "sql/printer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace fgac::sql {
namespace {

/// Parses, prints, reparses, reprints, and requires a fixed point.
void CheckRoundTrip(const std::string& text) {
  auto first = Parser::ParseStatement(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString() << "\nsql: " << text;
  std::string printed = StmtToSql(*first.value());
  auto second = Parser::ParseStatement(printed);
  ASSERT_TRUE(second.ok()) << "printed form does not reparse: " << printed;
  EXPECT_EQ(printed, StmtToSql(*second.value()));
}

TEST(PrinterTest, CreateTable) {
  CheckRoundTrip(
      "create table grades (student-id varchar not null, grade double, "
      "primary key (student-id), "
      "foreign key (student-id) references students (student-id))");
}

TEST(PrinterTest, CreateViews) {
  CheckRoundTrip("create view v as select a from t where b = 1");
  CheckRoundTrip(
      "create authorization view v as select * from t where u = $user-id");
  CheckRoundTrip(
      "create authorization view v as select * from t where k = $$1");
}

TEST(PrinterTest, CreateInclusionDependency) {
  CheckRoundTrip(
      "create inclusion dependency d on students (student-id) "
      "where type = 'fulltime' references registered (student-id)");
}

TEST(PrinterTest, Dml) {
  CheckRoundTrip("insert into t values (1, 'a''b'), (2, null)");
  CheckRoundTrip("insert into t (a, b) values (1, 2)");
  CheckRoundTrip("update t set a = a + 1, b = 'x' where c in (1, 2)");
  CheckRoundTrip("delete from t where a between 1 and 5");
}

TEST(PrinterTest, GrantsAndAuthorize) {
  CheckRoundTrip("grant select on v to alice");
  CheckRoundTrip("revoke select on v from alice");
  CheckRoundTrip(
      "authorize update on students (name) "
      "where old(students.student-id) = $user-id to alice");
  CheckRoundTrip("authorize insert on t where t.u = $user-id");
  CheckRoundTrip("authorize delete on t");
}

TEST(PrinterTest, DropAndExplain) {
  CheckRoundTrip("drop table t");
  CheckRoundTrip("drop view v");
  CheckRoundTrip("explain select a from t where b = 1 order by 1 limit 3");
}

TEST(PrinterTest, PreparedStatements) {
  CheckRoundTrip("prepare q as select grade from grades "
                 "where course-id = $1 and student-id = $user-id");
  CheckRoundTrip("execute q ('cs101', 2)");
  CheckRoundTrip("execute q");
  CheckRoundTrip("deallocate q");
  CheckRoundTrip("deallocate all");
}

TEST(PrinterTest, SelectWithEverything) {
  CheckRoundTrip(
      "select distinct t.a as x, count(*) from t join u on t.k = u.k "
      "where t.b like 'z%' and t.c is not null "
      "group by t.a having count(*) >= 2 "
      "union all select a, 0 from t order by 1 desc limit 7");
}

TEST(PrinterTest, ExprForms) {
  auto expr = Parser::ParseExpression(
      "not (a < 1 or b >= 2) and c not in (3, 4) and d is null "
      "and -e + f * 2 <> 0 and g not between 1 and 2");
  ASSERT_TRUE(expr.ok());
  std::string printed = ExprToSql(expr.value());
  auto reparsed = Parser::ParseExpression(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ(printed, ExprToSql(reparsed.value()));
}

}  // namespace
}  // namespace fgac::sql
