#ifndef FGAC_TESTS_TEST_UTIL_H_
#define FGAC_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "core/database.h"
#include "storage/relation.h"

namespace fgac::testing {

/// Creates the paper's running-example schema:
///   students(student-id, name, type)         PK(student-id)
///   courses(course-id, name)                 PK(course-id)
///   registered(student-id, course-id)        PK(both), FKs to both
///   grades(student-id, course-id, grade)     PK(student-id, course-id), FKs
/// `grade` is numeric (grade points) so the paper's AVG examples run.
void CreateUniversitySchema(core::Database* db);

/// Loads a small, deterministic dataset:
///   students: 11 alice fulltime, 12 bob fulltime, 13 carol parttime,
///             14 dave parttime (dave is registered for nothing)
///   courses:  cs101, cs202, ee150
///   registered: 11->cs101,cs202; 12->cs101; 13->cs202; 12->ee150
///   grades: (11,cs101,4.0) (12,cs101,3.0) (11,cs202,3.5) (13,cs202,2.0)
/// Note ee150 has a registration but no grades (Example 4.3's "no grades
/// entered yet" situation).
void LoadUniversityData(core::Database* db);

/// Both of the above.
void SetupUniversity(core::Database* db);

/// Creates the paper's authorization views (not yet granted to anyone):
///   mygrades          = own grades                      (Section 1)
///   costudentgrades   = grades of co-registered courses (Section 2)
///   avggrades         = per-course average              (Example 4.1)
///   lcavggrades       = per-course average, >= N students (Example 4.2;
///                       the enrollment threshold here is 2)
///   regstudents       = registered students' name/type  (Example 5.1)
///   myregistrations   = own rows of registered
///   singlegrade       = grades of one specified student (access pattern)
void CreateUniversityViews(core::Database* db);

/// Convenience: one sorted-row render for golden comparisons.
std::string SortedRowsToString(const storage::Relation& rel);

/// Fails the test (ADD_FAILURE) and returns an empty relation on error.
storage::Relation MustQuery(core::Database* db, const std::string& sql,
                            const core::SessionContext& ctx);

/// Admin-mode query helper.
storage::Relation MustQueryAdmin(core::Database* db, const std::string& sql);

/// Nightly-CI artifact hooks, both no-ops unless $FGAC_NIGHTLY_ARTIFACT_DIR
/// is set. ApplyNightlyArtifactOptions points the database's audit
/// JSON-lines sink at <dir>/<tag>_audit.jsonl; DumpMetricsArtifact writes
/// the database's metrics snapshot to <dir>/<tag>_metrics.json. The
/// nightly workflow uploads the directory when a stress suite fails, so
/// the per-statement audit trail and the final counters travel with the
/// failure.
void ApplyNightlyArtifactOptions(core::DatabaseOptions* opts,
                                 const std::string& tag);
void DumpMetricsArtifact(core::Database* db, const std::string& tag);

}  // namespace fgac::testing

#endif  // FGAC_TESTS_TEST_UTIL_H_
