// Unit and concurrency tests for the security audit log: the bounded
// lock-free MPSC ring between query threads and the background flusher,
// exact drop accounting when the ring overflows, the JSON-lines sink, and
// a multi-producer hammer that proves events are never torn. The TSan job
// runs this file.

#include "common/audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace fgac {
namespace {

using common::AuditEvent;
using common::AuditHashHex;
using common::AuditLog;
using common::AuditOptions;
using common::AuditStatementHash;

AuditEvent MakeEvent(const std::string& user, const std::string& statement) {
  AuditEvent ev;
  ev.user = user;
  ev.session = "s-test";
  ev.mode = "non_truman";
  ev.statement = statement;
  ev.statement_hash = AuditStatementHash(statement);
  ev.verdict = "unconditional";
  return ev;
}

// ---------------------------------------------------------------------------
// Event formatting
// ---------------------------------------------------------------------------

TEST(AuditEventTest, HashIsFnv1aAndHexIsFixedWidth) {
  // FNV-1a published test vector: "a" -> 0xaf63dc4c8601ec8c.
  EXPECT_EQ(AuditStatementHash("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(AuditStatementHash(""), 0xcbf29ce484222325ULL);  // offset basis
  EXPECT_EQ(AuditHashHex(0), "0000000000000000");
  EXPECT_EQ(AuditHashHex(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(AuditHashHex(0xaf63dc4c8601ec8cULL), "af63dc4c8601ec8c");
}

TEST(AuditEventTest, ToJsonEscapesHostileStatementText) {
  AuditEvent ev = MakeEvent("u\"1", "select '\n\t' from \"t\\x\"");
  ev.error = std::string("bad") + '\x01' + "byte";
  std::string json = ev.ToJson();
  // Raw control characters and quotes never reach the output unescaped.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\\"t\\\\x\\\""), std::string::npos);
  EXPECT_NE(json.find("\"user\":\"u\\\"1\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ---------------------------------------------------------------------------
// Ring behavior
// ---------------------------------------------------------------------------

TEST(AuditLogTest, AppendFlushPersistAssignsMonotonicSeq) {
  AuditOptions opts;
  opts.ring_capacity = 64;
  AuditLog log(opts);
  for (int i = 0; i < 10; ++i) {
    log.Append(MakeEvent("u1", "stmt-" + std::to_string(i)));
  }
  log.Flush();
  EXPECT_EQ(log.events_emitted(), 10u);
  EXPECT_EQ(log.events_persisted(), 10u);
  EXPECT_EQ(log.events_dropped(), 0u);
  std::vector<AuditEvent> tail = log.SnapshotRetained();
  ASSERT_EQ(tail.size(), 10u);
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, i + 1);  // gapless when nothing dropped
    EXPECT_EQ(tail[i].statement, "stmt-" + std::to_string(i));
    EXPECT_GT(tail[i].wall_ms, 0);  // stamped at emission
  }
}

TEST(AuditLogTest, RetainedTailIsBounded) {
  AuditOptions opts;
  opts.ring_capacity = 16;
  opts.retain_events = 8;
  AuditLog log(opts);
  for (int i = 0; i < 16; ++i) {
    log.Append(MakeEvent("u1", "stmt-" + std::to_string(i)));
    log.Flush();  // drain each one so none are dropped
  }
  EXPECT_EQ(log.events_persisted(), 16u);
  std::vector<AuditEvent> tail = log.SnapshotRetained();
  ASSERT_EQ(tail.size(), 8u);
  // Oldest evicted: the tail holds exactly the newest 8, in order.
  EXPECT_EQ(tail.front().statement, "stmt-8");
  EXPECT_EQ(tail.back().statement, "stmt-15");
}

TEST(AuditLogTest, OverflowDropsAreCountedExactly) {
  AuditOptions opts;
  opts.ring_capacity = 8;
  // Park the flusher so the ring genuinely overflows instead of racing the
  // drain; Flush() nudges it awake at the end.
  opts.flush_interval = std::chrono::milliseconds(3600 * 1000);
  opts.retain_events = 20000;
  AuditLog log(opts);
  constexpr uint64_t kAppends = 10000;
  for (uint64_t i = 0; i < kAppends; ++i) {
    log.Append(MakeEvent("u1", "stmt-" + std::to_string(i)));
  }
  log.Flush();
  EXPECT_EQ(log.events_emitted(), kAppends);
  EXPECT_GT(log.events_dropped(), 0u);
  // The audit counter contract: every emitted event is accounted for, as
  // either persisted or dropped — never both, never neither.
  EXPECT_EQ(log.events_persisted() + log.events_dropped(), kAppends);
  EXPECT_EQ(log.SnapshotRetained().size(), log.events_persisted());
}

TEST(AuditLogTest, StatementClippedButHashCoversFullText) {
  AuditOptions opts;
  opts.max_statement_bytes = 10;
  AuditLog log(opts);
  const std::string longstmt(100, 'x');
  log.Append(MakeEvent("u1", longstmt));
  log.Flush();
  std::vector<AuditEvent> tail = log.SnapshotRetained();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].statement, std::string(10, 'x') + "...");
  EXPECT_EQ(tail[0].statement_hash, AuditStatementHash(longstmt));
}

TEST(AuditLogTest, DisabledLogIsANoOp) {
  AuditOptions opts;
  opts.enabled = false;
  AuditLog log(opts);
  log.Append(MakeEvent("u1", "select 1"));
  log.Flush();  // must not hang waiting for a flusher that never started
  EXPECT_EQ(log.events_emitted(), 0u);
  EXPECT_EQ(log.events_persisted(), 0u);
  EXPECT_EQ(log.events_dropped(), 0u);
  EXPECT_TRUE(log.SnapshotRetained().empty());
}

// ---------------------------------------------------------------------------
// JSON-lines sink
// ---------------------------------------------------------------------------

TEST(AuditLogTest, SinkFileHoldsOneValidJsonObjectPerLine) {
  const std::string path =
      ::testing::TempDir() + "/fgac_audit_sink_test.jsonl";
  std::remove(path.c_str());
  {
    AuditOptions opts;
    opts.sink_path = path;
    opts.fsync_each_flush = true;
    AuditLog log(opts);
    log.Append(MakeEvent("u1", "select 'quote\" and \\ backslash'"));
    log.Append(MakeEvent("u2", "select 2"));
    log.Flush();
  }  // destructor drains + closes
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"user\":\"u1\""), std::string::npos);
  EXPECT_NE(lines[0].find("quote\\\" and \\\\ backslash"),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"user\":\"u2\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(AuditLogTest, SinkSurvivesReopenAcrossLogInstances) {
  const std::string path =
      ::testing::TempDir() + "/fgac_audit_sink_reopen.jsonl";
  std::remove(path.c_str());
  for (int round = 0; round < 2; ++round) {
    AuditOptions opts;
    opts.sink_path = path;
    AuditLog log(opts);
    log.Append(MakeEvent("u1", "round-" + std::to_string(round)));
    log.Flush();
  }
  std::ifstream in(path);
  size_t count = 0;
  for (std::string line; std::getline(in, line);) ++count;
  EXPECT_EQ(count, 2u);  // appended, not truncated
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Multi-producer hammer (run under TSan in CI)
// ---------------------------------------------------------------------------

// The regression this guards: four producers racing on the Vyukov ring
// must never tear an event (a cell read half-from-one-writer), and the
// emitted/persisted/dropped counters must balance exactly.
TEST(AuditLogTest, FourThreadHammerYieldsUntornEventsAndExactCounters) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  AuditOptions opts;
  opts.ring_capacity = 64;  // small enough to overflow under load
  opts.retain_events = kThreads * kPerThread;
  opts.flush_interval = std::chrono::milliseconds(1);
  AuditLog log(opts);
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&log, t] {
      const std::string user = "u" + std::to_string(t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        log.Append(MakeEvent(
            user, "stmt-" + std::to_string(t) + "-" + std::to_string(i)));
      }
    });
  }
  for (std::thread& p : producers) p.join();
  log.Flush();

  EXPECT_EQ(log.events_emitted(), kThreads * kPerThread);
  EXPECT_EQ(log.events_persisted() + log.events_dropped(),
            kThreads * kPerThread);

  // Torn-event check: a event mixing two producers would pair user "uA"
  // with statement "stmt-B-..." or carry a hash that does not match its
  // own statement text.
  for (const AuditEvent& ev : log.SnapshotRetained()) {
    ASSERT_GE(ev.user.size(), 2u);
    const std::string expected_prefix = "stmt-" + ev.user.substr(1) + "-";
    EXPECT_EQ(ev.statement.rfind(expected_prefix, 0), 0u)
        << "torn event: user=" << ev.user << " statement=" << ev.statement;
    EXPECT_EQ(ev.statement_hash, AuditStatementHash(ev.statement))
        << "torn event: hash mismatch for " << ev.statement;
  }
}

// Seq numbers stay unique (no double-assignment) even when every producer
// races the tiny ring: gaps are allowed — they are exactly the drops — but
// duplicates never.
TEST(AuditLogTest, SequenceNumbersAreUniqueUnderContention) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;
  AuditOptions opts;
  opts.ring_capacity = 16;
  opts.retain_events = kThreads * kPerThread;
  opts.flush_interval = std::chrono::milliseconds(1);
  AuditLog log(opts);
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&log, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        log.Append(MakeEvent("u" + std::to_string(t), "x"));
      }
    });
  }
  for (std::thread& p : producers) p.join();
  log.Flush();
  std::vector<AuditEvent> tail = log.SnapshotRetained();
  std::vector<uint64_t> seqs;
  seqs.reserve(tail.size());
  for (const AuditEvent& ev : tail) seqs.push_back(ev.seq);
  std::sort(seqs.begin(), seqs.end());
  EXPECT_TRUE(std::adjacent_find(seqs.begin(), seqs.end()) == seqs.end())
      << "duplicate audit seq observed";
  if (!seqs.empty()) {
    EXPECT_GE(seqs.front(), 1u);
    EXPECT_LE(seqs.back(), kThreads * kPerThread);
  }
}

}  // namespace
}  // namespace fgac
