#ifndef FGAC_CORE_SESSION_CONTEXT_H_
#define FGAC_CORE_SESSION_CONTEXT_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/query_guard.h"
#include "common/value.h"

namespace fgac::core {

/// How queries are access-controlled (paper Sections 3 and 4).
enum class EnforcementMode {
  /// No access control; queries run as written (baseline / DBA mode).
  kNone,
  /// Truman model: every base relation is transparently replaced by its
  /// (parameterized) Truman policy view — the Oracle VPD approach.
  kTruman,
  /// Non-Truman model: the query must pass the validity test; if it does,
  /// it runs unmodified, otherwise it is rejected.
  kNonTruman,
};

const char* EnforcementModeName(EnforcementMode mode);

/// Per-access execution context: the logged-in user and the values of the
/// `$` parameters used by parameterized authorization views ("when a user
/// logs in, a secure application context is created", Section 3.1).
/// `$user-id` is populated automatically from `user`.
class SessionContext {
 public:
  SessionContext() : session_id_(NextSessionId()) {}
  explicit SessionContext(std::string user)
      : user_(std::move(user)), session_id_(NextSessionId()) {
    params_["user-id"] = Value::String(user_);
    params_["user_id"] = Value::String(user_);
  }

  const std::string& user() const { return user_; }

  /// Stable identifier of this session for audit events: auto-assigned
  /// ("s1", "s2", ...) and overridable with an application-level id.
  const std::string& session_id() const { return session_id_; }
  void set_session_id(std::string id) { session_id_ = std::move(id); }

  /// Sets a `$` parameter (e.g. "time", "user-location").
  void SetParam(const std::string& name, Value v) { params_[name] = v; }

  const std::map<std::string, Value>& params() const { return params_; }

  EnforcementMode mode() const { return mode_; }
  void set_mode(EnforcementMode mode) { mode_ = mode; }

  /// Per-session override of the database's `parallelism` option for this
  /// session's SELECTs: the task count of each scan pipeline the query
  /// decomposes into (all sessions' pipelines share one worker pool).
  /// 0 = inherit the database default.
  size_t exec_parallelism() const { return exec_parallelism_; }
  void set_exec_parallelism(size_t n) { exec_parallelism_ = n; }

  /// Weight of this session in the scheduler's weighted round-robin over
  /// sessions' ready task sets: a weight-3 session is granted ~3x the
  /// worker bandwidth of a weight-1 session while both have work queued.
  /// Clamped to >= 1.
  uint32_t scheduler_weight() const { return scheduler_weight_; }
  void set_scheduler_weight(uint32_t w) {
    scheduler_weight_ = w == 0 ? 1 : w;
  }

  /// Per-session override of the database's default QueryLimits (deadline,
  /// row/memory budgets, degradation policy). Unset = inherit.
  const std::optional<common::QueryLimits>& query_limits() const {
    return query_limits_;
  }
  void set_query_limits(common::QueryLimits limits) {
    query_limits_ = limits;
  }
  void clear_query_limits() { query_limits_.reset(); }

  /// Cross-thread cancellation: when set, every statement this session
  /// executes observes the token — another thread storing `true` makes the
  /// in-flight query unwind with kCancelled at its next guard check.
  const std::shared_ptr<std::atomic<bool>>& cancel_token() const {
    return cancel_token_;
  }
  void set_cancel_token(std::shared_ptr<std::atomic<bool>> token) {
    cancel_token_ = std::move(token);
  }

  /// When true, every SELECT this session executes collects an ExecStats
  /// (per-operator rows/chunks/time) and a ValidityTrace, attached to the
  /// ExecResult — the programmatic equivalent of EXPLAIN ANALYZE.
  bool profile() const { return profile_; }
  void set_profile(bool on) { profile_ = on; }

  /// When true, every statement this session executes records spans in the
  /// database's Tracer (validity rules, probe batches, rewriting, per-worker
  /// execution), exportable as Chrome-trace JSON.
  bool trace() const { return trace_; }
  void set_trace(bool on) { trace_ = on; }

  /// Trace id used for the next traced statement. 0 (default) = assign a
  /// fresh id per statement; a nonzero value pins the id so a caller can
  /// correlate spans across statements it groups itself.
  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }

 private:
  static std::string NextSessionId() {
    static std::atomic<uint64_t> next{0};
    return "s" + std::to_string(next.fetch_add(1, std::memory_order_relaxed) +
                                1);
  }

  std::string user_;
  std::string session_id_;
  std::map<std::string, Value> params_;
  EnforcementMode mode_ = EnforcementMode::kNonTruman;
  size_t exec_parallelism_ = 0;
  uint32_t scheduler_weight_ = 1;
  std::optional<common::QueryLimits> query_limits_;
  std::shared_ptr<std::atomic<bool>> cancel_token_;
  bool profile_ = false;
  bool trace_ = false;
  uint64_t trace_id_ = 0;
};

}  // namespace fgac::core

#endif  // FGAC_CORE_SESSION_CONTEXT_H_
