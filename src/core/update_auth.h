#ifndef FGAC_CORE_UPDATE_AUTH_H_
#define FGAC_CORE_UPDATE_AUTH_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/session_context.h"

namespace fgac::core {

/// Update authorization (paper Section 4.4): updates are checked
/// tuple-by-tuple against parameterized predicates — "a simpler task than
/// validity checking for queries", requiring only evaluation of a fully
/// instantiated predicate per affected tuple.
class UpdateAuthorizer {
 public:
  UpdateAuthorizer(const catalog::Catalog& catalog, const SessionContext& ctx)
      : catalog_(catalog), ctx_(ctx) {}

  /// Authorized iff some applicable AUTHORIZE INSERT rule's predicate is
  /// TRUE on the new tuple.
  Result<bool> CheckInsert(const std::string& table, const Row& new_tuple) const;

  /// Authorized iff some applicable AUTHORIZE DELETE rule's predicate is
  /// TRUE on the old tuple.
  Result<bool> CheckDelete(const std::string& table, const Row& old_tuple) const;

  /// Authorized iff some applicable AUTHORIZE UPDATE rule (a) permits every
  /// column in `changed_columns` and (b) has a TRUE predicate on the
  /// combined (old, new) tuple images.
  Result<bool> CheckUpdate(const std::string& table, const Row& old_tuple,
                           const Row& new_tuple,
                           const std::vector<std::string>& changed_columns) const;

 private:
  const catalog::Catalog& catalog_;
  const SessionContext& ctx_;
};

}  // namespace fgac::core

#endif  // FGAC_CORE_UPDATE_AUTH_H_
