#ifndef FGAC_CORE_AUTH_VIEW_H_
#define FGAC_CORE_AUTH_VIEW_H_

#include <string>
#include <vector>

#include "algebra/plan.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "core/session_context.h"

namespace fgac::core {

/// An authorization view instantiated for one access: `$` parameters have
/// been replaced by the session's values and the definition bound to a
/// canonical plan. For access-pattern views the `$$` parameters remain
/// symbolic in the plan (kAccessParam scalars); the validity engine
/// instantiates them against the query (Section 6).
struct InstantiatedView {
  std::string name;
  /// Canonical bound plan of the instantiated definition.
  algebra::PlanPtr plan;
  /// Distinct `$$` parameter names (empty for ordinary views).
  std::vector<std::string> access_parameters;
  /// Base tables the view reads (lowercased, deduplicated) — used by view
  /// pruning (Section 5.6 optimizations).
  std::vector<std::string> base_tables;

  bool is_access_pattern() const { return !access_parameters.empty(); }
};

/// Instantiates every authorization view available (granted, directly or
/// via roles) to `ctx.user()`, per Section 4.2's "instantiated
/// authorization views". Views whose `$` parameters are missing from the
/// session context fail the whole call (a policy configuration error).
Result<std::vector<InstantiatedView>> InstantiateAvailableViews(
    const catalog::Catalog& catalog, const SessionContext& ctx);

/// Instantiates one view definition under `ctx` (exposed for tests and the
/// Truman rewriter).
Result<InstantiatedView> InstantiateView(const catalog::Catalog& catalog,
                                         const catalog::ViewDefinition& view,
                                         const SessionContext& ctx);

/// Collects the base tables referenced by a plan.
std::vector<std::string> CollectBaseTables(const algebra::PlanPtr& plan);

}  // namespace fgac::core

#endif  // FGAC_CORE_AUTH_VIEW_H_
