#ifndef FGAC_CORE_DATABASE_H_
#define FGAC_CORE_DATABASE_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/activity.h"
#include "common/audit.h"
#include "common/memory_tracker.h"
#include "common/metrics.h"
#include "common/query_guard.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/session_context.h"
#include "core/slow_query_log.h"
#include "core/statement_cache.h"
#include "core/update_auth.h"
#include "core/validity.h"
#include "core/validity_cache.h"
#include "core/validity_trace.h"
#include "core/watchdog.h"
#include "exec/admission.h"
#include "exec/exec_stats.h"
#include "sql/ast.h"
#include "storage/database_state.h"
#include "storage/relation.h"

namespace fgac::core {

/// Result of one statement execution.
struct ExecResult {
  /// Populated for SELECT.
  storage::Relation relation;
  /// Populated for DML.
  int64_t affected_rows = 0;
  /// Populated for Non-Truman SELECTs (the validity verdict that admitted
  /// the query).
  ValidityReport validity;
  /// True when the validity verdict came from the prepared-statement cache.
  bool validity_from_cache = false;
  /// True when the Truman-rewritten plan of a prepared execution came from
  /// the statement cache (the rewriter did not run for this call).
  bool truman_plan_from_cache = false;
  /// True when the Non-Truman validity test blew its budget and the answer
  /// was produced by the Truman rewriter instead (DegradePolicy::kTruman):
  /// the result is sound but FILTERED — it may reflect only the data the
  /// user's policy views expose, not the query's literal answer.
  bool degraded_to_truman = false;
  /// Informational message for DDL.
  std::string message;
  /// Audit trail of the validity decision (rule firings, probe batches,
  /// cache consultation, verdict). Null unless the session enabled
  /// profiling (SessionContext::set_profile) or EXPLAIN ANALYZE ran.
  std::shared_ptr<ValidityTrace> trace;
  /// Per-operator execution counters for the executed plan. Null unless
  /// profiling was enabled, like `trace`.
  std::shared_ptr<exec::ExecStats> exec_stats;
};

/// Profiling sinks for one SELECT. Callers that need the trace/stats even
/// when the statement FAILS (EXPLAIN ANALYZE of a rejected query) pass
/// their own instance; the sinks survive the error return.
struct QueryProfile {
  std::shared_ptr<ValidityTrace> trace;
  std::shared_ptr<exec::ExecStats> stats;
};

/// Execution tuning knobs.
struct DatabaseOptions {
  /// Run SELECTs through the Volcano optimizer (cheapest plan) instead of
  /// executing the canonical bound plan directly.
  bool optimize_execution = true;
  /// Use the prepared-statement validity cache (Section 5.6 optimization).
  bool enable_validity_cache = true;
  /// Threads for morsel-driven parallel execution of SELECT plans and for
  /// batched validity probes. 1 = serial (the default: results are
  /// identical either way, so parallelism is strictly an opt-in speedup).
  /// A session can override per-query via SessionContext::exec_parallelism.
  size_t parallelism = 1;
  /// Validity engine configuration.
  ValidityOptions validity;
  /// Expansion budget for cost-based optimization of the executed plan
  /// (kept smaller than the validity engine's, which also hosts views).
  optimizer::ExpandOptions exec_expand;
  /// Default per-query guardrails (deadline, row/memory budgets, Truman
  /// degradation policy). Unlimited by default; a session can override via
  /// SessionContext::set_query_limits.
  common::QueryLimits limits;
  /// Bound on the validity cache (LRU-evicted beyond this many verdicts).
  size_t validity_cache_capacity = ValidityCache::kDefaultMaxEntries;
  /// Bound on the prepared-statement enforcement cache (split across its
  /// shards; LRU-evicted per shard beyond this).
  size_t statement_cache_capacity = StatementCache::kDefaultMaxEntries;
  /// Security audit log configuration (ring size, sink file, fsync policy).
  /// Enabled by default: every statement executed through Execute /
  /// ExecuteAsAdmin / ExecuteScript emits one AuditEvent.
  common::AuditOptions audit;
  /// Bound on retained trace spans (oldest evicted beyond this).
  size_t trace_retain_spans = common::Tracer::kDefaultRetainSpans;
  /// Process-wide memory budget charged at the real allocation points
  /// (chunk materialization, hash-join builds, columnar snapshots, memo
  /// expansion). soft_limit trips admission-time shedding; hard_limit
  /// aborts the charging query with kResourceExhausted. 0 = unlimited.
  common::MemoryTracker::Limits memory;
  /// Admission control in front of the scheduler: bounded deadline-aware
  /// wait queue, load shedding with retry-after hints. Disabled by default
  /// (max_concurrent = 0 admits everything immediately).
  exec::AdmissionOptions admission;
  /// Size of the shared worker pool, applied once at first Database
  /// construction (the pool is process-wide). 0 = FGAC_THREADS env var,
  /// falling back to max(4, hardware_concurrency).
  size_t shared_pool_threads = 0;
  /// Slow-query log thresholds (OR-ed) and ring capacity; statements
  /// crossing any threshold are captured into fgac_slow_queries and
  /// re-emitted on the audit sink with verdict "slow_query".
  SlowQueryOptions slow_query;
  /// Stall watchdog: background sampler raising watchdog.* gauges and
  /// "stalled" audit events for statements that exceed N x their deadline
  /// without observable progress.
  WatchdogOptions watchdog;
};

/// The embedded database facade tying every subsystem together: SQL in,
/// relations out, with fine-grained access control enforced per session
/// (None / Truman / Non-Truman, paper Sections 3-4).
class Database {
 public:
  Database();
  explicit Database(DatabaseOptions options);
  /// Joins the watchdog thread before any subsystem it samples dies.
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Executes one statement under `ctx`'s enforcement mode.
  Result<ExecResult> Execute(std::string_view sql, const SessionContext& ctx);

  /// Executes a ';'-separated script as the administrator (no enforcement).
  /// Stops at the first error.
  Status ExecuteScript(std::string_view sql);

  /// Admin-mode single statement.
  Result<ExecResult> ExecuteAsAdmin(std::string_view sql);

  /// Runs only the Non-Truman validity test for a SELECT, without executing
  /// it. Bypasses the cache.
  Result<ValidityReport> CheckQueryValidity(std::string_view sql,
                                            const SessionContext& ctx);

  /// PREPARE: binds `stmt`'s body under `ctx` with positional placeholders
  /// ($1..$n) held open, validates that they are numbered contiguously
  /// from 1, and returns the handle. Registry ownership is the caller's —
  /// server sessions keep their own name -> statement maps, which is what
  /// scopes EXECUTE to the preparing session. Audited as one statement.
  Result<std::shared_ptr<PreparedStatement>> Prepare(
      const sql::PrepareStmt& stmt, const SessionContext& ctx);

  /// EXECUTE: evaluates the argument expressions (constants and session
  /// parameters only), substitutes them into the prepared plan, and runs
  /// the full enforcement pipeline with the statement-cache fast path: a
  /// steady-state re-execution skips the Truman rewriter / validity
  /// checker entirely. Audited as one statement.
  Result<ExecResult> ExecutePrepared(
      const std::shared_ptr<PreparedStatement>& prep,
      const std::vector<sql::ExprPtr>& args, const SessionContext& ctx);

  /// EXPLAIN [ANALYZE] EXECUTE <name>(args): renders the prepared
  /// statement's parameterized plan, and with ANALYZE actually runs the
  /// execution (full enforcement + statement-cache fast path) and
  /// annotates the output with cache provenance — whether the Truman plan
  /// or validity verdict came from the statement cache — plus per-operator
  /// stats and the validity trace. `prep` is the session's registered
  /// statement for stmt.execute->name; resolution is the caller's job
  /// because registries are per connection.
  Result<ExecResult> ExplainPrepared(
      const sql::ExplainStmt& stmt,
      const std::shared_ptr<PreparedStatement>& prep,
      const SessionContext& ctx);

  /// Appends an audit event for a statement resolved entirely in the
  /// server session layer (DEALLOCATE, EXECUTE of an unknown name): every
  /// statement a session accepts leaves exactly one audit record, whether
  /// or not it reached the engine.
  void AuditSessionStatement(const SessionContext& ctx,
                             const std::string& statement, const Status& st);

  /// Verifies that every declared inclusion dependency and foreign key
  /// holds on the current data (useful after bulk loads).
  Status VerifyConstraints() const;

  // Accessors for tests, benches and examples.
  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  storage::DatabaseState& state() { return state_; }
  const storage::DatabaseState& state() const { return state_; }
  DatabaseOptions& options() { return options_; }
  ValidityCache& validity_cache() { return cache_; }
  StatementCache& statement_cache() { return stmt_cache_; }
  uint64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }
  /// The catalog's policy epoch (see catalog::Catalog::policy_epoch):
  /// advances on any view / grant / role / Truman-binding / principal
  /// change and fail-closed-invalidates every cached enforcement decision.
  uint64_t policy_epoch() const { return catalog_.policy_epoch(); }
  /// Data version used for ValidityCache invalidation. Derived from the
  /// storage layer's per-table mutation counters, so direct TableData
  /// writers (bench/test seeding) are covered — not only DML routed
  /// through Execute().
  uint64_t data_version() const { return state_.DataVersion(); }

  /// Process metrics for this database: query/cache/guard counters and
  /// latency histograms, updated on every statement regardless of
  /// profiling (cheap relaxed atomics).
  common::MetricsRegistry& metrics() { return metrics_; }
  const common::MetricsRegistry& metrics() const { return metrics_; }

  /// The process-wide memory accountant behind DatabaseOptions::memory.
  /// Every QueryGuard created by Execute() charges into it.
  common::MemoryTracker& memory_tracker() { return tracker_; }
  const common::MemoryTracker& memory_tracker() const { return tracker_; }

  /// Admission controller gating SELECT execution (see
  /// DatabaseOptions::admission).
  exec::AdmissionController& admission() { return *admission_; }
  const exec::AdmissionController& admission() const { return *admission_; }

  /// Refreshes the export-time gauges (validity-cache occupancy, shared
  /// thread-pool stats, fault-injection hit counts, audit/trace counters)
  /// and returns the whole registry as one JSON object.
  std::string ExportMetricsJson();

  /// Same gauge refresh, rendered in Prometheus text exposition format
  /// (counters as _total + windowed _rate gauges, histograms as summaries
  /// with windowed quantiles).
  std::string ExportMetricsPrometheus();

  /// Live session / statement registry behind fgac_sessions and
  /// fgac_activity. The server's ConnectionManager opens and closes
  /// explicit session records; bare SessionContexts appear implicitly
  /// while they have statements in flight.
  common::ActivityRegistry& activity() { return activity_; }
  const common::ActivityRegistry& activity() const { return activity_; }

  /// Captures behind fgac_slow_queries (see DatabaseOptions::slow_query).
  SlowQueryLog& slow_query_log() { return slow_log_; }
  const SlowQueryLog& slow_query_log() const { return slow_log_; }

  /// The stall watchdog (see DatabaseOptions::watchdog). Tests that want
  /// deterministic sampling construct with watchdog.enabled = false and
  /// call watchdog().SampleOnce() directly.
  Watchdog& watchdog() { return *watchdog_; }
  const Watchdog& watchdog() const { return *watchdog_; }

  /// The security audit log: one event per executed statement, also served
  /// as the FGAC-governed `fgac_audit` system table.
  common::AuditLog& audit_log() { return *audit_; }
  const common::AuditLog& audit_log() const { return *audit_; }

  /// The span collector behind `fgac_spans`. Sessions opt in per session
  /// via SessionContext::set_trace(true).
  common::Tracer& tracer() { return tracer_; }
  const common::Tracer& tracer() const { return tracer_; }

  /// Every retained span as one Chrome-trace / Perfetto JSON document.
  std::string ExportTraceJson() const { return tracer_.ToChromeTraceJson(); }

  /// Binds a SELECT under `ctx` to a canonical logical plan (exposed for
  /// benches/tests that drive the optimizer directly).
  Result<algebra::PlanPtr> BindQuery(const sql::SelectStmt& stmt,
                                     const SessionContext& ctx) const;

 private:
  /// `audit` (may be null) is the in-flight statement's audit event; the
  /// SELECT path fills verdict / rules / probes / guard charges into it.
  Result<ExecResult> ExecuteStmt(const sql::Stmt& stmt,
                                 const SessionContext& ctx,
                                 common::AuditEvent* audit);
  Result<ExecResult> ExecuteSelect(const sql::SelectStmt& stmt,
                                   const SessionContext& ctx,
                                   common::AuditEvent* audit);
  /// `profile` may be null (no profiling). Non-null: trace/stats are
  /// allocated into it and also attached to the returned ExecResult.
  Result<ExecResult> ExecuteSelectImpl(const sql::SelectStmt& stmt,
                                       const SessionContext& ctx,
                                       QueryProfile* profile,
                                       common::AuditEvent* audit);

  /// Identity of one prepared execution inside RunSelect: the cache keys
  /// (statement fingerprint; session-parameter and parameter+argument
  /// fingerprints) plus the parameterized plan and the argument bindings,
  /// so the Truman branch can rewrite once per (principal, statement,
  /// session params) and specialize per call. Null for ad-hoc queries.
  struct PreparedRun {
    uint64_t stmt_fp = 0;
    uint64_t params_fp = 0;
    uint64_t exec_fp = 0;
    const std::string* text = nullptr;
    const algebra::PlanPtr* parameterized = nullptr;
    const std::map<std::string, Value>* bindings = nullptr;
  };

  /// The post-bind SELECT pipeline: guard + admission, then the
  /// enforcement switch (None / Truman / Non-Truman with caching), then
  /// optimized parallel execution. `plan` is fully concrete (no open
  /// placeholders). RunSelect wraps RunSelectImpl with wall-clock timing
  /// and the slow-query capture on every exit path.
  Result<ExecResult> RunSelect(const algebra::PlanPtr& plan,
                               const SessionContext& ctx,
                               QueryProfile* profile,
                               common::AuditEvent* audit,
                               const PreparedRun* prep);
  Result<ExecResult> RunSelectImpl(const algebra::PlanPtr& plan,
                                   const SessionContext& ctx,
                                   QueryProfile* profile,
                                   common::AuditEvent* audit,
                                   const PreparedRun* prep);

  /// Slow-query log admission for one finished statement (no-op unless a
  /// threshold tripped). Also re-emits the capture as an audit event with
  /// verdict "slow_query".
  void MaybeCaptureSlowQuery(const SessionContext& ctx, QueryProfile* profile,
                             const common::AuditEvent* audit,
                             const Result<ExecResult>& r,
                             uint64_t duration_us);

  Result<ExecResult> ExecutePreparedImpl(PreparedStatement& prep,
                                         const std::vector<sql::ExprPtr>& args,
                                         const SessionContext& ctx,
                                         QueryProfile* profile,
                                         common::AuditEvent* audit);
  Result<ExecResult> ExecuteInsert(const sql::InsertStmt& stmt,
                                   const SessionContext& ctx);
  Result<ExecResult> ExecuteUpdate(const sql::UpdateStmt& stmt,
                                   const SessionContext& ctx);
  Result<ExecResult> ExecuteDelete(const sql::DeleteStmt& stmt,
                                   const SessionContext& ctx);
  Result<ExecResult> ApplyCreateTable(const sql::CreateTableStmt& stmt);
  Result<ExecResult> ApplyCreateView(const sql::CreateViewStmt& stmt);
  Result<ExecResult> ApplyCreateInclusion(const sql::CreateInclusionStmt& stmt);
  Result<ExecResult> ApplyGrant(const sql::GrantStmt& stmt);
  Result<ExecResult> ExecuteExplain(const sql::ExplainStmt& stmt,
                                    const SessionContext& ctx,
                                    common::AuditEvent* audit);
  /// Appends the EXPLAIN ANALYZE report (validity verdict / rejection,
  /// row count, per-operator stats, validity trace) for a completed run.
  void AppendAnalyzeReport(std::string* text, const SessionContext& ctx,
                           const Result<ExecResult>& run,
                           const QueryProfile& profile) const;
  /// Splits the rendered EXPLAIN text into the single-column result shape.
  static ExecResult ExplainTextResult(const std::string& text);
  Result<ExecResult> ApplyAuthorize(const sql::AuthorizeStmt& stmt);
  Result<ExecResult> ApplyDrop(const sql::DropStmt& stmt);

  /// Optimizes (optionally) and executes a plan through the morsel-driven
  /// parallel executor (serial when the resolved parallelism is 1).
  /// `guard` (may be null) limits the execution.
  Result<storage::Relation> RunPlan(const algebra::PlanPtr& plan,
                                    const SessionContext& ctx,
                                    common::QueryGuard* guard,
                                    exec::ExecStats* stats = nullptr,
                                    const common::TraceContext* trace = nullptr);

  /// Stamps duration / status / error / rows_out / default verdict into
  /// `ev` and appends it to the audit log (no-op when auditing is off).
  void FinishAudit(common::AuditEvent* ev, const Status& st, int64_t rows_out,
                   std::chrono::steady_clock::time_point t0);

  /// Creates the fgac_ system tables (audit, spans, sessions, activity,
  /// slow queries, statement cache), their per-user and admin/auditor
  /// authorization views, grants and Truman views. Runs once in the
  /// constructor, before auditing starts.
  void BootstrapSystemTables();

  /// Re-materializes the fgac_ system tables from their live sources (the
  /// audit log's retained tail, the tracer's span buffer, the activity
  /// registry, the slow-query ring, the statement-cache shards). Caller
  /// holds system_tables_mu_. Fails only under fault injection
  /// ("introspect.snapshot").
  Status RefreshSystemTables();

  /// Mirrors pull-model subsystem stats into export-time gauges (shared by
  /// the JSON and Prometheus exports).
  void RefreshExportGauges();

  /// Validity options with the probe-parallelism default (0) resolved to
  /// this database's `parallelism` knob.
  ValidityOptions ResolvedValidityOptions() const;

  Status CheckRowConstraints(const catalog::TableSchema& schema,
                             const Row& row) const;
  Status CheckForeignKeys(const std::string& table, const Row& row) const;

  DatabaseOptions options_;
  /// Declared before state_: TableData destructors release their columnar
  /// snapshot charges into the tracker, so it must outlive the storage.
  common::MemoryTracker tracker_;
  std::unique_ptr<exec::AdmissionController> admission_;
  catalog::Catalog catalog_;
  storage::DatabaseState state_;
  ValidityCache cache_;
  StatementCache stmt_cache_;
  /// Atomic: advanced by DDL on one session while others read it for
  /// cache-freshness checks.
  std::atomic<uint64_t> catalog_version_{1};
  common::MetricsRegistry metrics_;
  common::Tracer tracer_;
  /// Sessions + in-flight statements (fgac_sessions / fgac_activity).
  common::ActivityRegistry activity_;
  /// Slow-statement ring (fgac_slow_queries).
  SlowQueryLog slow_log_{options_.slow_query};
  /// Constructed after BootstrapSystemTables so bootstrap DDL is not
  /// audited; null only during construction.
  std::unique_ptr<common::AuditLog> audit_;
  /// Serializes system-table refresh against scans of those tables: held
  /// across refresh AND execution for any statement reading an fgac_
  /// table, so a concurrent session's refresh cannot swap rows mid-scan.
  std::mutex system_tables_mu_;
  /// Flips on after bootstrap; from then on fgac_ objects are read-only.
  bool system_tables_ready_ = false;
  /// Declared last: the watchdog thread samples activity_ / metrics_ /
  /// admission_ and must be stopped (destroyed) before any of them.
  std::unique_ptr<Watchdog> watchdog_;
};

}  // namespace fgac::core

#endif  // FGAC_CORE_DATABASE_H_
