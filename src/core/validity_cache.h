#ifndef FGAC_CORE_VALIDITY_CACHE_H_
#define FGAC_CORE_VALIDITY_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/validity.h"

namespace fgac::core {

/// Prepared-statement validity cache (paper Section 5.6, "Optimizations of
/// Validity Checking"): applications re-issue the same query shapes, so a
/// verdict can be reused instead of re-running inference.
///
/// Key = (user, structural fingerprint of the bound plan). A plan
/// fingerprint covers the instantiated constants, so the same statement
/// with different parameters keys differently — matching the paper's
/// "cheap test used each time the query is executed".
///
/// Invalidation: every verdict depends on the authorization state and is
/// dropped when either `catalog_version` (relation DDL) or `policy_epoch`
/// (view / grant / role / Truman-binding changes, tracked by the catalog
/// itself) advances — fail-closed: a mismatch re-runs the full check.
/// Conditional verdicts additionally depend on the database state
/// ("assuming no underlying data on which it depends changes during the
/// session") and are dropped when `data_version` advances. Rejections are
/// cached like conditional verdicts (new data could make a query
/// conditionally valid).
///
/// Capacity is bounded: at most `max_entries` verdicts are kept, evicting
/// least-recently-used ones — unique-query traffic (the adversarial case)
/// cycles the cache instead of growing it without bound.
///
/// Thread safety: all operations lock an internal mutex — concurrent
/// sessions share one cache. Lookup therefore returns the report BY VALUE;
/// a pointer into the map would dangle the moment another session inserts.
class ValidityCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 4096;

  explicit ValidityCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// Looks up a cached verdict; false on miss or a stale entry (stale
  /// entries are erased). A hit refreshes the entry's recency and copies
  /// the report into `*out`.
  bool Lookup(const std::string& user, uint64_t plan_fp,
              uint64_t catalog_version, uint64_t policy_epoch,
              uint64_t data_version, ValidityReport* out);

  void Insert(const std::string& user, uint64_t plan_fp,
              uint64_t catalog_version, uint64_t policy_epoch,
              uint64_t data_version, ValidityReport report);

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  size_t max_entries() const { return max_entries_; }
  size_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  size_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  /// Entries dropped to respect max_entries (stale drops not counted).
  size_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  struct Entry {
    ValidityReport report;
    uint64_t catalog_version = 0;
    uint64_t policy_epoch = 0;
    uint64_t data_version = 0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_pos;
  };

  void Erase(std::unordered_map<std::string, Entry>::iterator it);

  size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace fgac::core

#endif  // FGAC_CORE_VALIDITY_CACHE_H_
