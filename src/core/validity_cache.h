#ifndef FGAC_CORE_VALIDITY_CACHE_H_
#define FGAC_CORE_VALIDITY_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/validity.h"

namespace fgac::core {

/// Prepared-statement validity cache (paper Section 5.6, "Optimizations of
/// Validity Checking"): applications re-issue the same query shapes, so a
/// verdict can be reused instead of re-running inference.
///
/// Key = (user, structural fingerprint of the bound plan). A plan
/// fingerprint covers the instantiated constants, so the same statement
/// with different parameters keys differently — matching the paper's
/// "cheap test used each time the query is executed".
///
/// Invalidation: unconditional verdicts depend only on the authorization
/// catalog (views, grants, constraints) and are dropped when
/// `catalog_version` advances. Conditional verdicts additionally depend on
/// the database state ("assuming no underlying data on which it depends
/// changes during the session") and are dropped when `data_version`
/// advances. Rejections are cached like conditional verdicts (new data
/// could make a query conditionally valid).
class ValidityCache {
 public:
  struct Entry {
    ValidityReport report;
    uint64_t catalog_version = 0;
    uint64_t data_version = 0;
  };

  /// Looks up a cached verdict; returns nullptr on miss or a stale entry.
  const ValidityReport* Lookup(const std::string& user, uint64_t plan_fp,
                               uint64_t catalog_version, uint64_t data_version);

  void Insert(const std::string& user, uint64_t plan_fp,
              uint64_t catalog_version, uint64_t data_version,
              ValidityReport report);

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  std::unordered_map<std::string, Entry> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace fgac::core

#endif  // FGAC_CORE_VALIDITY_CACHE_H_
