#ifndef FGAC_CORE_WATCHDOG_H_
#define FGAC_CORE_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/activity.h"
#include "common/metrics.h"

namespace fgac::core {

struct WatchdogOptions {
  bool enabled = true;
  /// Sampling cadence of the watchdog thread.
  std::chrono::milliseconds interval{250};
  /// A statement with a deadline is considered stalled once it has run
  /// for more than deadline_factor x its deadline AND made no observable
  /// progress (phase, pipeline sets, guard charges, admission wait) since
  /// the previous sample.
  double deadline_factor = 2.0;
  /// Stall threshold for statements without a deadline.
  std::chrono::milliseconds no_deadline_stall{10'000};
};

/// Background sampler behind the watchdog.* gauges: every interval it
/// walks the in-flight statements of the ActivityRegistry, runs the
/// registered depth probes (scheduler fair-queue depth, admission queue
/// depth, ...), and flags statements that exceeded N x their deadline
/// without progress. A stall is reported at most once per statement via
/// the on_stall callback (the Database turns it into an audit event).
///
/// The watchdog owns no engine state — it only reads atomics through the
/// registry handles and probe callbacks, so it can never block a
/// statement. Construction wires it; Start() spawns the thread; Stop()
/// joins it (idempotent, called from the destructor).
class Watchdog {
 public:
  using StallCallback = std::function<void(
      const common::StatementActivitySnapshot&, const std::string& reason)>;
  using DepthProbe = std::function<int64_t()>;

  Watchdog(const WatchdogOptions& options,
           common::ActivityRegistry* activity,
           common::MetricsRegistry* metrics)
      : options_(options), activity_(activity), metrics_(metrics) {}
  ~Watchdog() { Stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Wiring; call before Start().
  void set_on_stall(StallCallback cb) { on_stall_ = std::move(cb); }
  void AddProbe(std::string gauge_name, DepthProbe probe) {
    probes_.emplace_back(std::move(gauge_name), std::move(probe));
  }

  void Start();
  void Stop();

  /// One sampling pass — the thread body calls this every interval; tests
  /// and the metrics exports call it directly (serialized by sample_mu_,
  /// so a manual sample never races the thread's).
  void SampleOnce();

  uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }
  uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  /// Last observed progress tuple per in-flight statement seq.
  struct ProgressMark {
    uint32_t phase = 0;
    uint64_t sets_done = 0;
    uint64_t guard_rows = 0;
    uint64_t guard_bytes = 0;
    uint64_t admission_wait_us = 0;
    bool stalled = false;
  };

  void Main();

  const WatchdogOptions options_;
  common::ActivityRegistry* activity_;
  common::MetricsRegistry* metrics_;
  StallCallback on_stall_;
  std::vector<std::pair<std::string, DepthProbe>> probes_;

  std::mutex sample_mu_;                    // serializes SampleOnce
  std::map<uint64_t, ProgressMark> marks_;  // guarded by sample_mu_

  std::mutex mu_;
  std::condition_variable wake_;
  bool stop_ = false;
  std::thread thread_;
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> stalls_{0};
};

}  // namespace fgac::core

#endif  // FGAC_CORE_WATCHDOG_H_
