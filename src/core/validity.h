#ifndef FGAC_CORE_VALIDITY_H_
#define FGAC_CORE_VALIDITY_H_

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "catalog/catalog.h"
#include "common/query_guard.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/auth_view.h"
#include "core/validity_trace.h"
#include "exec/scheduler.h"
#include "optimizer/memo.h"
#include "optimizer/rules.h"
#include "storage/database_state.h"
#include "storage/relation.h"

namespace fgac::core {

/// Configuration of the Non-Truman validity test (paper Section 5).
struct ValidityOptions {
  /// U3a/U3b/U3c — inferring the validity of subexpressions from integrity
  /// constraints (Section 5.3). Requires applying equivalence rules to the
  /// authorization views as well as the query (Section 5.6.3), which is the
  /// expensive mode the paper's optimization discussion targets.
  bool enable_complex_rules = true;
  /// C3a/C3b — conditional validity (Section 5.4). Needs the current
  /// database state to test the visible non-emptiness of v_r.
  bool enable_conditional_rules = true;
  /// Access-pattern view instantiation and the dependent-join rule
  /// (Section 6).
  bool enable_access_patterns = true;
  /// The paper's Section 5.6.2 FUTURE-WORK case, implemented here:
  /// "Given the set of views V = {A⋈B, B⋈C}, a query A⋈B⋈C can be
  /// rewritten completely using the views only if we decompose the query
  /// as (A⋈B)⋈(B⋈C). Volcano does not generate such query plans ...
  /// Extending the algorithm to handle such cases is a topic of future
  /// work." When enabled, the engine adds the redundant decomposition
  /// (A⋈B) ⋈_{B.pk} (B⋈C) for keyed middle relations. Disable to match
  /// the paper's published behaviour exactly.
  bool enable_redundant_join_decomposition = true;
  /// Section 5.6 optimization: eliminate views that cannot possibly help.
  bool prune_views = true;
  /// Demand-driven complex-mode expansion: the proof frontier is seeded
  /// from the query root and the valid view roots, dominated (already
  /// valid) groups stop expanding, join associativity only materializes
  /// inner joins some view could cover, and expansion halts the moment the
  /// root is proved. Disable to get the exhaustive breadth-first sweep
  /// (the differential-test reference).
  bool goal_directed_search = true;
  /// Budgets for DAG expansion.
  optimizer::ExpandOptions expand;
  /// Cap on $$-instantiations tried per access-pattern view.
  size_t max_access_instantiations = 64;
  /// Cap on U3/C3 fixpoint iterations.
  size_t max_inference_rounds = 8;
  /// Threads for the C3a/C3b and C-aggregate visible-non-emptiness probes
  /// (the database probes of Section 5.4). Each inference round now
  /// collects its probe plans serially, runs them as a batch — concurrently
  /// when this is > 1 — and applies the markings serially afterwards.
  /// 0 = inherit the owning Database's `parallelism` option; standalone
  /// ValidityChecker users get serial probes at 0 or 1.
  size_t probe_parallelism = 0;
  /// Wall-clock budget for one whole validity test — inference rounds,
  /// expansion and probes together. 0 = unlimited. Exceeding it aborts
  /// Check() with kTimeout so the caller can degrade per policy.
  std::chrono::microseconds check_timeout{0};
  /// Whole-check cap on C3a/C3b/CAgg database probes. 0 = unlimited.
  /// Exceeding it aborts Check() with kResourceExhausted: these probes run
  /// extra queries before the user's query executes, so they are the
  /// validity test's unbounded-cost attack surface.
  size_t max_total_probes = 0;
  /// Execution limits applied to each individual probe (each probe is one
  /// LIMIT-1 query). A probe tripping its own limits merely counts as
  /// empty — sound, since fewer conditional markings only reject more.
  common::QueryLimits probe_limits;
  /// Byte budget for the check's memo expansion (each ExpandMemo call
  /// charges its new expressions at an approximate per-expression
  /// footprint against the whole-check guard — and through it the global
  /// MemoryTracker when one is attached). 0 = unlimited. Exceeding it
  /// aborts Check() with kResourceExhausted, which the Database degrades
  /// per DegradePolicy before giving up.
  uint64_t check_max_memory_bytes = 0;
};

/// Outcome of a validity test plus diagnostics for the benchmarks.
struct ValidityReport {
  bool valid = false;
  /// True when accepted by unconditional rules (U*); false when accepted
  /// only conditionally (C*), i.e. contingent on the current state.
  bool unconditional = false;
  /// Rule chain that justified acceptance (e.g. "U1/U2", "U3a", "C3a/C3b"),
  /// or empty on rejection.
  std::string justification;
  /// Human-readable explanation on rejection.
  std::string reason;

  // Diagnostics.
  size_t views_considered = 0;
  size_t views_pruned = 0;
  /// Total equivalence/operation nodes *created* during expansion — the
  /// work the search performed. Deliberately not the post-pruning live
  /// memo size: merged groups and deduplicated expressions still cost
  /// their insertion, and the bench gate's `expanded_exprs` column tracks
  /// that work, not the survivor count.
  size_t memo_groups = 0;
  size_t memo_exprs = 0;
  size_t expansion_passes = 0;
  /// Goal-directed search: dominated (already-valid) groups whose pending
  /// rule applications were dropped, expression visits skipped (dominance,
  /// frontier unreachability, gated joins), and the deepest level the
  /// proof frontier reached below its seeds.
  size_t groups_pruned = 0;
  size_t exprs_skipped = 0;
  size_t frontier_depth = 0;
  /// Number of v_r probes executed against the database (rule C3a cond. 3).
  size_t c3_probes = 0;
  /// True when the whole-check probe cap blew during inference. The
  /// verdict (if any) was reached with the probes that did run and is
  /// sound to act on once, but it must never be cached: with budget the
  /// check could have proved more (or, for rejections, the same query may
  /// be accepted later).
  bool probe_budget_exhausted = false;
};

/// The Non-Truman validity engine: builds a Volcano AND-OR DAG containing
/// the query and the instantiated authorization views, expands it with
/// equivalence rules, and runs the inference rules of Section 5 as marking
/// passes over the DAG (Section 5.6). Sound by construction; incomplete,
/// as any such procedure must be (Section 5.5).
class ValidityChecker {
 public:
  /// `state` may be null, in which case conditional rules are disabled
  /// (no database to probe).
  ValidityChecker(const catalog::Catalog& catalog,
                  const storage::DatabaseState* state, ValidityOptions options);

  /// Attaches the executing query's guardrail: the check inherits its
  /// cancellation and never outlives its deadline, while keeping separate
  /// probe/time budgets (ValidityOptions). Call before Check().
  void set_guard(const common::QueryGuard* parent) { parent_guard_ = parent; }

  /// Attaches an audit trace (may be null = no tracing): every rule firing,
  /// probe batch and the final verdict are appended in decision order.
  /// Borrowed; must outlive Check(). Single-threaded use only.
  void set_trace(ValidityTrace* trace) { trace_ = trace; }

  /// Attaches a span context (may be null = no spans): rule firings become
  /// instant "rule.<id>" spans and each probe batch a timed
  /// "validity.probe_batch" span in the context's tracer, parented under
  /// the caller's "validity.check" span. Borrowed; must outlive Check().
  void set_span_context(const common::TraceContext* ctx) { span_ctx_ = ctx; }

  /// Session identity for fair dispatch of probe batches on the shared
  /// scheduler (probes compete with executing queries for workers; the
  /// submitting session should pay for them). Default: anonymous bucket.
  void set_dag_options(const exec::DagOptions& opts) { dag_opts_ = opts; }

  /// Tests whether `query` (a bound, normalized plan) can be answered using
  /// only the information in `views` (already instantiated for the session).
  /// Fails with kTimeout / kResourceExhausted / kCancelled when a budget
  /// trips mid-inference (see ValidityOptions and set_guard).
  Result<ValidityReport> Check(const algebra::PlanPtr& query,
                               const std::vector<InstantiatedView>& views);

  /// After a successful Check of a query admitted through U1/U2 chains,
  /// reconstructs the witness rewriting q' (Definition 4.1): a plan whose
  /// leaves are scans of pseudo-tables "view:<name>" — the instantiated
  /// authorization views. Fails (NotImplemented) when the admission used
  /// U3/C3 derivations, whose justification is not a direct rewriting.
  Result<algebra::PlanPtr> ExtractWitness() const;

  /// Executes a witness plan: materializes each instantiated view into a
  /// pseudo-table "view:<name>" over a clone of `state` and evaluates the
  /// plan against only those pseudo-tables.
  static Result<storage::Relation> ExecuteWitness(
      const algebra::PlanPtr& witness,
      const std::vector<InstantiatedView>& views,
      const storage::DatabaseState& state);

  /// The memo after Check(); exposed for tests that pin the report's
  /// created-count semantics against the live (post-pruning) counts.
  const optimizer::Memo& memo_for_testing() const { return memo_; }

 private:
  struct JoinFacet {
    optimizer::ExprId join_expr = -1;
    /// Projection list over the join output at the valid node (identity
    /// when the valid group is the join group itself).
    std::vector<algebra::ScalarPtr> proj;
  };
  struct EquiPair {
    int core_slot = 0;   // bare column on the core (left) side
    int rem_slot = 0;    // bare column on the remainder side (local slots)
  };

  void SetupExpandOptions();
  void PropagateValidity(bool* changed_any);
  bool ApplyU3Rules();
  bool ApplyC3Rules();
  /// Conditional selection over a keyed aggregate view (Example 4.2,
  /// LCAvgGrades): a selection pinning the full group key of an aggregate
  /// is conditionally valid when the same selection over a valid restriction
  /// of that aggregate is visibly non-empty.
  bool ApplyCAggRules();
  /// Speculative join of a query subexpression with the destination table
  /// of an inclusion dependency (enables Example 5.4-style inferences: the
  /// introduced join may be derivable from views, and U3 then validates the
  /// original subexpression). Returns true if new expressions were added.
  bool ApplyJoinIntroduction();
  /// The Section 5.6.2 future-work extension: rewrites Join(L⋈T, R) as
  /// π(σ((L⋈T) ⋈_{T.key} (T⋈R))) when T is a keyed single-table group and
  /// R joins only against T's columns. The duplicated-T form can then
  /// unify with views like A⋈B and B⋈C. Returns true on new expressions.
  bool ApplyRedundantJoinDecomposition();
  Status InsertAccessPatternInstantiations(const InstantiatedView& view,
                                           const algebra::PlanPtr& query);
  bool ApplyDependentJoinRule(const std::vector<InstantiatedView>& views);

  /// Enumerates (projection, join) facets of a group's expressions.
  std::vector<JoinFacet> JoinFacetsOf(optimizer::GroupId g) const;

  /// Decomposes join predicates into pure equi column pairs; nullopt if any
  /// conjunct is not of that shape.
  std::optional<std::vector<EquiPair>> PureEquiPairs(
      const optimizer::MemoExpr& join) const;

  /// Provenance: base table and column index a group's output slot carries,
  /// when it is a pass-through of a base column.
  struct Origin {
    std::string table;
    int column = 0;
  };
  std::optional<Origin> SlotOrigin(optimizer::GroupId g, int slot,
                                   int depth = 0) const;

  /// Collects the filter conjuncts applied between `g` and the Get of its
  /// single underlying table, if `g` is a Select*-over-Get chain.
  std::optional<std::vector<algebra::ScalarPtr>> SingleTableFilters(
      optimizer::GroupId g, std::string* table) const;

  void MarkU(optimizer::GroupId g, const std::string& why);
  void MarkC(optimizer::GroupId g, const std::string& why);
  void TraceRule(const std::string& why);
  void TraceVerdict(const ValidityReport& report);

  /// Budgeted batch probe used by the C3/CAgg rules: refuses (all-empty)
  /// once the whole-check probe cap is hit, recording the failure in
  /// probe_status_ — the rules return bool, so Check() surfaces it at the
  /// end of the round.
  std::vector<char> RunProbeBatch(const std::vector<algebra::PlanPtr>& plans);

  const catalog::Catalog& catalog_;
  const storage::DatabaseState* state_;
  ValidityOptions options_;

  optimizer::Memo memo_;
  optimizer::GroupId root_ = -1;
  std::map<optimizer::GroupId, std::string> justification_;
  /// Witness bookkeeping: groups justified by a view root (U1) carry the
  /// instantiated view; groups justified by U2 composition carry the
  /// operation node whose children were already valid.
  struct ViewWitness {
    std::string name;
    size_t arity = 0;
  };
  std::map<optimizer::GroupId, ViewWitness> witness_view_;
  std::map<optimizer::GroupId, optimizer::ExprId> witness_expr_;
  size_t c3_probes_ = 0;
  size_t joins_introduced_ = 0;
  const common::QueryGuard* parent_guard_ = nullptr;
  std::unique_ptr<common::QueryGuard> check_guard_;
  Status probe_status_;
  ValidityTrace* trace_ = nullptr;
  const common::TraceContext* span_ctx_ = nullptr;
  exec::DagOptions dag_opts_;
};

}  // namespace fgac::core

#endif  // FGAC_CORE_VALIDITY_H_
