#include "core/validity.h"

#include <algorithm>
#include <functional>
#include <set>

#include "algebra/binder.h"
#include "algebra/normalize.h"
#include "common/fault_injection.h"
#include "core/view_pruning.h"
#include "exec/executor.h"
#include "exec/scheduler.h"
#include "optimizer/implication.h"

namespace fgac::core {

using algebra::MakeBinaryScalar;
using algebra::MakeColumn;
using algebra::MakeLiteralScalar;
using algebra::NormalizePredicates;
using algebra::PlanKind;
using algebra::PlanPtr;
using algebra::ScalarKind;
using algebra::ScalarPtr;
using optimizer::ExprId;
using optimizer::GroupId;
using optimizer::ImpliesAll;
using optimizer::MemoExpr;

namespace {

constexpr int kMaxOriginDepth = 24;
constexpr size_t kMaxQueryLiterals = 32;

MemoExpr SelectExpr(std::vector<ScalarPtr> preds, GroupId child) {
  MemoExpr e;
  e.kind = PlanKind::kSelect;
  e.predicates = NormalizePredicates(std::move(preds));
  e.children = {child};
  return e;
}

MemoExpr ProjectExpr(std::vector<ScalarPtr> exprs, GroupId child) {
  MemoExpr e;
  e.kind = PlanKind::kProject;
  e.exprs = std::move(exprs);
  e.children = {child};
  return e;
}

MemoExpr DistinctExpr(GroupId child) {
  MemoExpr e;
  e.kind = PlanKind::kDistinct;
  e.children = {child};
  return e;
}

/// Runs the LIMIT-1 visible-non-emptiness probes of one inference round as
/// a batch: nonempty[i] tells whether plans[i] produced at least one row.
/// With `parallelism` > 1 the batch runs as one single-pipeline DAG on the
/// shared PipelineScheduler — validity probes are first-class pipeline work
/// and interleave with executing queries on the same worker pool. Each
/// probe task uses the SERIAL executor because pool tasks must not
/// re-enter the pool (no nested waits). Safe because probes only read
/// `state` and immutable plan nodes — all memo mutation happens outside
/// this function. A probe that errors counts as empty, as in the serial
/// code — including a probe tripping its own `limits` (per-probe guard) or
/// an injected "validity.probe" fault; probe tasks therefore always return
/// OK to the scheduler, so one failing probe never cancels its batch
/// peers. Missing a conditional marking is sound: it can only reject more.
/// `parent` (the whole-check guard) propagates the check-wide deadline and
/// cancellation into every probe.
std::vector<char> RunNonEmptinessProbes(const std::vector<PlanPtr>& plans,
                                        const storage::DatabaseState& state,
                                        size_t parallelism,
                                        const common::QueryLimits& limits,
                                        const common::QueryGuard* parent,
                                        const exec::DagOptions& dag_opts) {
  std::vector<char> nonempty(plans.size(), 0);
  auto run_one = [&plans, &state, &nonempty, &limits, parent](size_t i) {
    Status injected = FGAC_FAULT_CHECK("validity.probe");
    if (!injected.ok()) return;
    common::QueryGuard probe_guard(limits, parent);
    Result<storage::Relation> r = exec::ExecutePlan(
        algebra::MakeLimit(1, plans[i]), state, &probe_guard);
    nonempty[i] = r.ok() && !r.value().empty() ? 1 : 0;
  };
  if (parallelism <= 1 || plans.size() <= 1) {
    for (size_t i = 0; i < plans.size(); ++i) run_one(i);
    return nonempty;
  }
  exec::PipelineTaskSet batch;
  batch.label = "probe_batch";
  batch.tasks.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    batch.tasks.push_back([&run_one, i](size_t) {
      run_one(i);
      return Status::OK();
    });
  }
  std::vector<exec::PipelineTaskSet> dag;
  dag.push_back(std::move(batch));
  // The returned status is always OK by construction (probe tasks swallow
  // their own errors); discard it rather than plumb an impossible failure.
  Status probe_status = exec::PipelineScheduler::Shared().RunDag(
      std::move(dag), /*guard=*/nullptr, /*trace=*/nullptr,
      /*started=*/nullptr, dag_opts);
  (void)probe_status;
  return nonempty;
}

/// Collects distinct literal values appearing in comparison atoms anywhere
/// in the plan (candidates for $$ instantiation, Section 6).
void CollectPlanLiterals(const PlanPtr& plan, std::vector<Value>* out) {
  if (plan == nullptr || out->size() >= kMaxQueryLiterals) return;
  auto add = [out](const Value& v) {
    if (out->size() >= kMaxQueryLiterals) return;
    for (const Value& seen : *out) {
      if (seen == v) return;
    }
    out->push_back(v);
  };
  auto scan_scalar = [&add](const ScalarPtr& s) {
    std::optional<optimizer::Atom> atom = optimizer::ExtractAtom(s);
    if (!atom.has_value()) return;
    if (atom->op == optimizer::Atom::Op::kIn) {
      for (const Value& v : atom->in_values) add(v);
    } else {
      add(atom->literal);
    }
  };
  for (const ScalarPtr& p : plan->predicates) scan_scalar(p);
  for (const PlanPtr& c : plan->children) CollectPlanLiterals(c, out);
}

}  // namespace

ValidityChecker::ValidityChecker(const catalog::Catalog& catalog,
                                 const storage::DatabaseState* state,
                                 ValidityOptions options)
    : catalog_(catalog), state_(state), options_(std::move(options)) {
  SetupExpandOptions();
}

void ValidityChecker::SetupExpandOptions() {
  const catalog::Catalog* catalog = &catalog_;
  options_.expand.table_pk_slots =
      [catalog](const std::string& table) -> std::vector<int> {
    const catalog::TableSchema* schema = catalog->GetTable(table);
    if (schema == nullptr) return {};
    std::vector<int> out;
    for (size_t idx : schema->primary_key()) {
      out.push_back(static_cast<int>(idx));
    }
    return out;
  };
}

namespace {

// One-line rendering of a probe batch for the audit trace, capped so a
// pathological plan cannot bloat the trail.
std::string ProbeBatchSql(const std::vector<PlanPtr>& plans) {
  constexpr size_t kCap = 512;
  std::string out;
  for (const PlanPtr& plan : plans) {
    if (!out.empty()) out += "; ";
    std::string one = algebra::PlanToString(plan, 0);
    for (char& c : one) {
      if (c == '\n') c = ' ';
    }
    while (!one.empty() && one.back() == ' ') one.pop_back();
    out += one;
    if (out.size() > kCap) {
      out.resize(kCap);
      out += "...";
      break;
    }
  }
  return out;
}

}  // namespace

std::vector<char> ValidityChecker::RunProbeBatch(
    const std::vector<PlanPtr>& plans) {
  if (plans.empty()) return {};
  // Once a budget failure is recorded, every later batch answers all-empty
  // without touching the database; Check() surfaces probe_status_ at the
  // end of the round.
  if (!probe_status_.ok()) return std::vector<char>(plans.size(), 0);
  if (options_.max_total_probes > 0 &&
      c3_probes_ + plans.size() > options_.max_total_probes) {
    probe_status_ = Status::ResourceExhausted(
        "validity test exceeded its probe budget of " +
        std::to_string(options_.max_total_probes) + " database probes (" +
        std::to_string(c3_probes_ + plans.size()) + " needed)");
    if (span_ctx_ != nullptr && span_ctx_->active()) {
      common::RecordInstantSpan(span_ctx_, "validity.probe_refused",
                                probe_status_.message());
    }
    if (trace_ != nullptr) {
      ValidityTraceEvent e;
      e.kind = ValidityTraceEvent::Kind::kProbeBatch;
      e.probes = plans.size();
      e.detail = "refused: " + std::string(probe_status_.message());
      trace_->Add(std::move(e));
    }
    return std::vector<char>(plans.size(), 0);
  }
  c3_probes_ += plans.size();
  common::ScopedSpan probe_span(span_ctx_, "validity.probe_batch");
  std::vector<char> nonempty =
      RunNonEmptinessProbes(plans, *state_, options_.probe_parallelism,
                            options_.probe_limits, check_guard_.get(),
                            dag_opts_);
  if (probe_span.active()) {
    size_t hits = 0;
    for (char hit : nonempty) hits += hit ? 1 : 0;
    probe_span.set_detail("probes=" + std::to_string(plans.size()) +
                          " nonempty=" + std::to_string(hits));
  }
  if (trace_ != nullptr) {
    ValidityTraceEvent e;
    e.kind = ValidityTraceEvent::Kind::kProbeBatch;
    e.probes = plans.size();
    for (char hit : nonempty) e.probe_rows += hit ? 1 : 0;
    e.probe_sql = ProbeBatchSql(plans);
    trace_->Add(std::move(e));
  }
  return nonempty;
}

void ValidityChecker::TraceRule(const std::string& why) {
  size_t space = why.find(' ');
  std::string rule = space == std::string::npos ? why : why.substr(0, space);
  if (span_ctx_ != nullptr && span_ctx_->active()) {
    common::RecordInstantSpan(span_ctx_, "rule." + rule, why);
  }
  if (trace_ == nullptr) return;
  ValidityTraceEvent e;
  e.kind = ValidityTraceEvent::Kind::kRuleFired;
  e.rule = std::move(rule);
  e.detail = why;
  trace_->Add(std::move(e));
}

void ValidityChecker::MarkU(GroupId g, const std::string& why) {
  g = memo_.Find(g);
  if (!memo_.IsValidU(g)) {
    memo_.MarkValidU(g);
    justification_.emplace(g, why);
    TraceRule(why);
  }
}

void ValidityChecker::MarkC(GroupId g, const std::string& why) {
  g = memo_.Find(g);
  if (!memo_.IsValidC(g)) {
    memo_.MarkValidC(g);
    justification_.emplace(g, why);
    TraceRule(why);
  }
}

void ValidityChecker::PropagateValidity(bool* changed_any) {
  // Bottom-up marking (Section 5.6.2): an operation node is valid if all
  // its children equivalence nodes are valid (a Get is never valid by
  // itself; a Values node has no relations and is vacuously valid); an
  // equivalence node is valid if any of its operation nodes is.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ExprId eid = 0; eid < static_cast<ExprId>(memo_.num_exprs()); ++eid) {
      const MemoExpr& e = memo_.expr(eid);
      if (e.dead || e.kind == PlanKind::kGet) continue;
      GroupId g = memo_.Find(e.group);
      if (!memo_.IsValidU(g)) {
        bool all_u = std::all_of(
            e.children.begin(), e.children.end(),
            [this](GroupId c) { return memo_.IsValidU(c); });
        if (all_u) {
          MarkU(g, "U2");
          witness_expr_.emplace(g, eid);
          changed = true;
          if (changed_any != nullptr) *changed_any = true;
        }
      }
      if (!memo_.IsValidC(g)) {
        bool all_c = std::all_of(
            e.children.begin(), e.children.end(),
            [this](GroupId c) { return memo_.IsValidC(c); });
        if (all_c) {
          MarkC(g, "C2");
          changed = true;
          if (changed_any != nullptr) *changed_any = true;
        }
      }
    }
  }
}

std::vector<ValidityChecker::JoinFacet> ValidityChecker::JoinFacetsOf(
    GroupId g) const {
  std::vector<JoinFacet> out;
  for (ExprId eid : memo_.GroupExprs(g)) {
    const MemoExpr& e = memo_.expr(eid);
    if (e.kind == PlanKind::kJoin) {
      JoinFacet facet;
      facet.join_expr = eid;
      size_t arity = memo_.group(g).arity;
      for (size_t i = 0; i < arity; ++i) {
        facet.proj.push_back(MakeColumn(static_cast<int>(i)));
      }
      out.push_back(std::move(facet));
    } else if (e.kind == PlanKind::kProject) {
      for (ExprId fid : memo_.GroupExprs(e.children[0])) {
        const MemoExpr& f = memo_.expr(fid);
        if (f.kind != PlanKind::kJoin) continue;
        JoinFacet facet;
        facet.join_expr = fid;
        facet.proj = e.exprs;
        out.push_back(std::move(facet));
      }
    }
  }
  return out;
}

std::optional<std::vector<ValidityChecker::EquiPair>>
ValidityChecker::PureEquiPairs(const MemoExpr& join) const {
  if (join.predicates.empty()) return std::nullopt;
  int la = static_cast<int>(memo_.group(join.children[0]).arity);
  std::vector<EquiPair> pairs;
  for (const ScalarPtr& p : join.predicates) {
    if (p->kind != ScalarKind::kBinary || p->bin_op != sql::BinOp::kEq ||
        p->left->kind != ScalarKind::kColumn ||
        p->right->kind != ScalarKind::kColumn) {
      return std::nullopt;
    }
    int a = p->left->slot, b = p->right->slot;
    if (a < la && b >= la) {
      pairs.push_back({a, b - la});
    } else if (b < la && a >= la) {
      pairs.push_back({b, a - la});
    } else {
      return std::nullopt;
    }
  }
  return pairs;
}

std::optional<ValidityChecker::Origin> ValidityChecker::SlotOrigin(
    GroupId g, int slot, int depth) const {
  if (depth > kMaxOriginDepth) return std::nullopt;
  g = memo_.Find(g);
  for (ExprId eid : memo_.GroupExprs(g)) {
    const MemoExpr& e = memo_.expr(eid);
    switch (e.kind) {
      case PlanKind::kGet:
        return Origin{e.table, slot};
      case PlanKind::kSelect:
      case PlanKind::kDistinct:
      case PlanKind::kSort:
      case PlanKind::kLimit: {
        auto o = SlotOrigin(e.children[0], slot, depth + 1);
        if (o.has_value()) return o;
        break;
      }
      case PlanKind::kProject: {
        if (slot < 0 || static_cast<size_t>(slot) >= e.exprs.size()) break;
        const ScalarPtr& x = e.exprs[slot];
        if (x->kind != ScalarKind::kColumn) break;
        auto o = SlotOrigin(e.children[0], x->slot, depth + 1);
        if (o.has_value()) return o;
        break;
      }
      case PlanKind::kJoin: {
        int la = static_cast<int>(memo_.group(e.children[0]).arity);
        auto o = slot < la ? SlotOrigin(e.children[0], slot, depth + 1)
                           : SlotOrigin(e.children[1], slot - la, depth + 1);
        if (o.has_value()) return o;
        break;
      }
      case PlanKind::kAggregate: {
        if (slot < 0 || static_cast<size_t>(slot) >= e.group_by.size()) break;
        const ScalarPtr& x = e.group_by[slot];
        if (x->kind != ScalarKind::kColumn) break;
        auto o = SlotOrigin(e.children[0], x->slot, depth + 1);
        if (o.has_value()) return o;
        break;
      }
      default:
        break;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<ScalarPtr>> ValidityChecker::SingleTableFilters(
    GroupId g, std::string* table) const {
  g = memo_.Find(g);
  std::vector<ScalarPtr> filters;
  for (int depth = 0; depth < kMaxOriginDepth; ++depth) {
    bool advanced = false;
    for (ExprId eid : memo_.GroupExprs(g)) {
      const MemoExpr& e = memo_.expr(eid);
      if (e.kind == PlanKind::kGet) {
        *table = e.table;
        return filters;
      }
      if (e.kind == PlanKind::kSelect) {
        filters.insert(filters.end(), e.predicates.begin(), e.predicates.end());
        g = memo_.Find(e.children[0]);
        advanced = true;
        break;
      }
    }
    if (!advanced) return std::nullopt;
  }
  return std::nullopt;
}

bool ValidityChecker::ApplyU3Rules() {
  bool changed = false;
  size_t group_snapshot = memo_.num_groups();
  for (GroupId g = 0; g < static_cast<GroupId>(group_snapshot); ++g) {
    if (memo_.Find(g) != g || !memo_.IsValidU(g)) continue;
    for (const JoinFacet& facet : JoinFacetsOf(g)) {
      const MemoExpr join = memo_.expr(facet.join_expr);  // copy
      auto pairs = PureEquiPairs(join);
      if (!pairs.has_value() || pairs->empty()) continue;
      GroupId core = memo_.Find(join.children[0]);
      GroupId rem = memo_.Find(join.children[1]);
      int la = static_cast<int>(memo_.group(core).arity);

      // The remainder must be a whole base table (the paper's "most natural
      // case": the remainder is a single relation).
      std::string rem_table;
      bool rem_is_table = false;
      for (ExprId fid : memo_.GroupExprs(rem)) {
        if (memo_.expr(fid).kind == PlanKind::kGet) {
          rem_table = memo_.expr(fid).table;
          rem_is_table = true;
          break;
        }
      }
      if (!rem_is_table) continue;
      const catalog::TableSchema* rem_schema = catalog_.GetTable(rem_table);
      if (rem_schema == nullptr) continue;

      // Provenance of the core-side join columns.
      std::string core_table;
      std::vector<std::pair<std::string, std::string>> join_col_names;
      bool origins_ok = true;
      for (const EquiPair& pair : *pairs) {
        auto origin = SlotOrigin(core, pair.core_slot);
        if (!origin.has_value() ||
            (!core_table.empty() && core_table != origin->table)) {
          origins_ok = false;
          break;
        }
        core_table = origin->table;
        const catalog::TableSchema* cs = catalog_.GetTable(core_table);
        if (cs == nullptr ||
            static_cast<size_t>(origin->column) >= cs->num_columns() ||
            static_cast<size_t>(pair.rem_slot) >= rem_schema->num_columns()) {
          origins_ok = false;
          break;
        }
        join_col_names.emplace_back(
            cs->column(origin->column).name,
            rem_schema->column(pair.rem_slot).name);
      }
      if (!origins_ok || core_table.empty()) continue;

      // Find visible inclusion dependencies whose column pairs cover the
      // join predicate.
      std::vector<const catalog::InclusionDependency*> deps;
      for (const catalog::InclusionDependency& candidate :
           catalog_.constraints()) {
        if (!candidate.visible_to_users || candidate.src_table != core_table ||
            candidate.dst_table != rem_table) {
          continue;
        }
        bool covers = true;
        for (const auto& [c_col, r_col] : join_col_names) {
          bool found = false;
          for (size_t i = 0; i < candidate.src_columns.size(); ++i) {
            if (candidate.src_columns[i] == c_col &&
                candidate.dst_columns[i] == r_col) {
              found = true;
              break;
            }
          }
          if (!found) {
            covers = false;
            break;
          }
        }
        if (covers) deps.push_back(&candidate);
      }
      if (deps.empty()) continue;

      // Candidate cores: the core group itself, plus every selection over
      // it (σ_P(q) is valid by U2, and pushing the selection into the core
      // keeps the join-partner guarantee when the filters still imply the
      // dependency's predicate — Example 5.3's full-time students).
      struct CoreCandidate {
        GroupId group;
        std::vector<ScalarPtr> filters;  // over the core's slots
      };
      std::string chain_table;
      std::vector<ScalarPtr> base_filters;
      bool single_table_core = false;
      if (auto f = SingleTableFilters(core, &chain_table);
          f.has_value() && chain_table == core_table) {
        base_filters = *f;
        single_table_core = true;
      }
      std::vector<CoreCandidate> candidates;
      candidates.push_back({core, base_filters});
      for (ExprId sid : memo_.ParentsOf(core)) {
        const MemoExpr& s = memo_.expr(sid);
        if (s.kind != PlanKind::kSelect || memo_.Find(s.children[0]) != core) {
          continue;
        }
        std::vector<ScalarPtr> filters = base_filters;
        filters.insert(filters.end(), s.predicates.begin(), s.predicates.end());
        candidates.push_back({memo_.Find(s.group), std::move(filters)});
      }

      for (const catalog::InclusionDependency* dep : deps) {
        std::vector<ScalarPtr> dep_conjuncts;
        if (dep->src_predicate != nullptr) {
          // Conditional dependency: only single-table cores, whose filters
          // can be compared against the dependency predicate.
          if (!single_table_core) continue;
          const catalog::TableSchema* cs = catalog_.GetTable(core_table);
          Result<ScalarPtr> bound =
              algebra::Binder::BindOverTable(dep->src_predicate, *cs);
          if (!bound.ok()) continue;
          dep_conjuncts = algebra::SplitConjuncts(bound.value());
        }

        // A_c: projection entries entirely on the core side.
        std::vector<ScalarPtr> a_core;
        for (const ScalarPtr& x : facet.proj) {
          std::set<int> slots;
          algebra::CollectSlots(x, &slots);
          if (!slots.empty() && *slots.rbegin() < la) a_core.push_back(x);
        }
        if (a_core.empty()) continue;

        // Do the remainder's join columns survive the projection (needed
        // for U3c's multiplicity reconstruction)?
        bool rem_cols_projected = true;
        for (const EquiPair& pair : *pairs) {
          bool present = std::any_of(
              facet.proj.begin(), facet.proj.end(), [&](const ScalarPtr& x) {
                return x->kind == ScalarKind::kColumn &&
                       x->slot == la + pair.rem_slot;
              });
          if (!present) {
            rem_cols_projected = false;
            break;
          }
        }

        for (const CoreCandidate& cand : candidates) {
          if (dep->src_predicate != nullptr &&
              !ImpliesAll(cand.filters, dep_conjuncts)) {
            continue;
          }
          // U3a/U3b: DISTINCT projection of the (filtered) core is valid.
          GroupId proj_g = memo_.InsertExpr(ProjectExpr(a_core, cand.group));
          GroupId dist_g = memo_.InsertExpr(DistinctExpr(proj_g));
          if (!memo_.IsValidU(dist_g)) {
            MarkU(dist_g, "U3a/U3b via constraint '" + dep->name + "'");
            changed = true;
          }
          // Project factoring: a query projection keeping a subset of A_c
          // factors through π_{A_c}: π_B(core) = π_{B'}(π_{A_c}(core)).
          // This connects narrower query projections (Example 5.3's
          // "select distinct name") to the derived valid node.
          for (ExprId pid : memo_.ParentsOf(cand.group)) {
            const MemoExpr p = memo_.expr(pid);  // copy
            if (p.kind != PlanKind::kProject ||
                memo_.Find(p.children[0]) != memo_.Find(cand.group)) {
              continue;
            }
            std::vector<ScalarPtr> remapped;
            bool all_in = true;
            for (const ScalarPtr& b : p.exprs) {
              int pos = -1;
              for (size_t i = 0; i < a_core.size(); ++i) {
                if (algebra::ScalarEquals(b, a_core[i])) {
                  pos = static_cast<int>(i);
                  break;
                }
              }
              if (pos < 0) {
                all_in = false;
                break;
              }
              remapped.push_back(MakeColumn(pos));
            }
            if (!all_in) continue;
            GroupId pg = memo_.Find(p.group);
            memo_.InsertExpr(ProjectExpr(std::move(remapped), proj_g), pg);
            changed = true;
          }
          // U3c: multiplicities recoverable when the remainder's join
          // columns are themselves unconditionally visible (q_rj valid).
          if (rem_cols_projected && !memo_.IsValidU(proj_g)) {
            std::vector<ScalarPtr> rj;
            for (const EquiPair& pair : *pairs) {
              rj.push_back(MakeColumn(pair.rem_slot));
            }
            GroupId qrj = memo_.InsertExpr(ProjectExpr(std::move(rj), rem));
            PropagateValidity(nullptr);
            if (memo_.IsValidU(qrj)) {
              MarkU(proj_g, "U3c via constraint '" + dep->name + "'");
              changed = true;
            }
          }
        }
      }
    }
  }
  memo_.Canonicalize();
  return changed;
}

bool ValidityChecker::ApplyCAggRules() {
  if (state_ == nullptr) return false;
  bool changed = false;

  // Returns the number of group-by keys if `x` is a keyed aggregate group.
  auto aggregate_keys = [this](GroupId x) -> size_t {
    for (ExprId aid : memo_.GroupExprs(x)) {
      if (memo_.expr(aid).kind == PlanKind::kAggregate) {
        return memo_.expr(aid).group_by.size();
      }
    }
    return 0;
  };

  // Probes are collected during the walk and executed as one batch at the
  // end (concurrently when configured) — the memo is not thread-safe, so
  // marking is also deferred until after the batch.
  struct AggProbe {
    PlanPtr plan;        // σ_{P1}(v), conditionally valid
    GroupId target = -1; // query selection group to promote when non-empty
  };
  std::vector<AggProbe> pending;

  // Shared tail: given that the restriction of the keyed aggregate `x` is
  // visible as the valid group `v` (same column layout as the query's
  // selection input `z`), and `key_slots` are z-slots carrying the whole
  // key of x, promote query selections σ_{P1}(z) that pin every key slot
  // whenever the probe σ_{P1}(v) is visibly non-empty.
  auto promote = [this, &pending](GroupId z, GroupId v,
                                  const std::vector<int>& key_slots) {
    for (ExprId sid : memo_.ParentsOf(z)) {
      const MemoExpr s = memo_.expr(sid);  // copy
      if (s.kind != PlanKind::kSelect || memo_.Find(s.children[0]) != z) {
        continue;
      }
      GroupId sg = memo_.Find(s.group);
      if (memo_.IsValidC(sg)) continue;
      bool all_pinned = true;
      for (int key_slot : key_slots) {
        bool pinned = false;
        for (const ScalarPtr& p : s.predicates) {
          std::optional<optimizer::Atom> atom = optimizer::ExtractAtom(p);
          if (atom.has_value() && atom->op == optimizer::Atom::Op::kEq &&
              atom->expr->kind == ScalarKind::kColumn &&
              atom->expr->slot == key_slot) {
            pinned = true;
            break;
          }
        }
        if (!pinned) {
          all_pinned = false;
          break;
        }
      }
      if (!all_pinned) continue;
      // Probe σ_{P1}(v): conditionally valid by C2; visibly non-empty?
      GroupId probe = memo_.InsertExpr(SelectExpr(s.predicates, v));
      PropagateValidity(nullptr);
      if (!memo_.IsValidC(probe)) continue;
      Result<PlanPtr> plan = memo_.AnyPlan(probe);
      if (!plan.ok()) continue;
      pending.push_back({plan.value(), sg});
    }
  };

  size_t group_snapshot = memo_.num_groups();
  for (GroupId v = 0; v < static_cast<GroupId>(group_snapshot); ++v) {
    if (memo_.Find(v) != v || !memo_.IsValidC(v)) continue;
    for (ExprId eid : memo_.GroupExprs(v)) {
      const MemoExpr e = memo_.expr(eid);  // copy
      if (e.kind == PlanKind::kSelect) {
        // v = σ_{P2}(x) with x a keyed aggregate; z = x directly.
        GroupId x = memo_.Find(e.children[0]);
        size_t num_keys = aggregate_keys(x);
        if (num_keys == 0) continue;
        std::vector<int> key_slots;
        for (size_t k = 0; k < num_keys; ++k) {
          key_slots.push_back(static_cast<int>(k));
        }
        promote(x, v, key_slots);
      } else if (e.kind == PlanKind::kProject) {
        // v = π_A(σ_{P2}(x)): the query sees π_A(x) (some group z holding
        // Project(A, x)); the keys of x must be exposed through A.
        GroupId wg = memo_.Find(e.children[0]);
        for (ExprId wid : memo_.GroupExprs(wg)) {
          const MemoExpr w = memo_.expr(wid);
          if (w.kind != PlanKind::kSelect) continue;
          GroupId x = memo_.Find(w.children[0]);
          size_t num_keys = aggregate_keys(x);
          if (num_keys == 0) continue;
          std::vector<int> key_slots;
          bool keys_exposed = true;
          for (size_t k = 0; k < num_keys; ++k) {
            int found = -1;
            for (size_t j = 0; j < e.exprs.size(); ++j) {
              if (e.exprs[j]->kind == ScalarKind::kColumn &&
                  e.exprs[j]->slot == static_cast<int>(k)) {
                found = static_cast<int>(j);
                break;
              }
            }
            if (found < 0) {
              keys_exposed = false;
              break;
            }
            key_slots.push_back(found);
          }
          if (!keys_exposed) continue;
          // Find query-side z groups computing π_A(x) with the same list.
          for (ExprId pid : memo_.ParentsOf(x)) {
            const MemoExpr p = memo_.expr(pid);
            if (p.kind != PlanKind::kProject ||
                memo_.Find(p.children[0]) != x ||
                p.exprs.size() != e.exprs.size()) {
              continue;
            }
            bool same = true;
            for (size_t j = 0; j < p.exprs.size(); ++j) {
              if (!algebra::ScalarEquals(p.exprs[j], e.exprs[j])) {
                same = false;
                break;
              }
            }
            if (!same) continue;
            promote(memo_.Find(p.group), v, key_slots);
          }
        }
      }
    }
  }

  // Batched probe + serial marking.
  std::vector<PlanPtr> plans;
  plans.reserve(pending.size());
  for (const AggProbe& p : pending) plans.push_back(p.plan);
  std::vector<char> nonempty = RunProbeBatch(plans);
  for (size_t i = 0; i < pending.size(); ++i) {
    if (!nonempty[i]) continue;
    GroupId target = memo_.Find(pending[i].target);
    if (memo_.IsValidC(target)) continue;
    MarkC(target, "C3 over keyed aggregate (visibly non-empty key)");
    changed = true;
  }
  memo_.Canonicalize();
  return changed;
}

bool ValidityChecker::ApplyJoinIntroduction() {
  constexpr size_t kMaxIntroducedJoins = 16;
  bool changed = false;
  // Targets: subexpressions under a Distinct (directly or through a
  // projection) — exactly the shape U3a can validate.
  std::set<GroupId> targets;
  size_t group_snapshot = memo_.num_groups();
  for (GroupId g = 0; g < static_cast<GroupId>(group_snapshot); ++g) {
    if (memo_.Find(g) != g) continue;
    for (ExprId eid : memo_.GroupExprs(g)) {
      const MemoExpr& e = memo_.expr(eid);
      if (e.kind != PlanKind::kDistinct) continue;
      GroupId qp = memo_.Find(e.children[0]);
      targets.insert(qp);
      for (ExprId pid : memo_.GroupExprs(qp)) {
        const MemoExpr& p = memo_.expr(pid);
        if (p.kind == PlanKind::kProject) {
          targets.insert(memo_.Find(p.children[0]));
        }
      }
    }
  }
  for (GroupId xg : targets) {
    if (joins_introduced_ >= kMaxIntroducedJoins) break;
    if (memo_.IsValidU(xg)) continue;
    size_t arity = memo_.group(xg).arity;
    for (const catalog::InclusionDependency& dep : catalog_.constraints()) {
      if (!dep.visible_to_users) continue;
      if (dep.src_predicate != nullptr) continue;  // keep it simple and sound
      const catalog::TableSchema* dst = catalog_.GetTable(dep.dst_table);
      if (dst == nullptr) continue;
      // Find one slot of xg per dependency source column.
      std::vector<int> src_slots;
      bool all_found = true;
      for (const std::string& col : dep.src_columns) {
        int found = -1;
        for (size_t slot = 0; slot < arity && found < 0; ++slot) {
          auto origin = SlotOrigin(xg, static_cast<int>(slot));
          if (origin.has_value() && origin->table == dep.src_table) {
            const catalog::TableSchema* src = catalog_.GetTable(dep.src_table);
            if (src != nullptr &&
                static_cast<size_t>(origin->column) < src->num_columns() &&
                src->column(origin->column).name == col) {
              found = static_cast<int>(slot);
            }
          }
        }
        if (found < 0) {
          all_found = false;
          break;
        }
        src_slots.push_back(found);
      }
      if (!all_found) continue;
      // Introduce Join(xg, Get(dst), xg.k_i = dst.col_i).
      std::vector<std::string> dst_cols;
      for (const catalog::Column& c : dst->columns()) dst_cols.push_back(c.name);
      GroupId rem = memo_.InsertPlan(algebra::MakeGet(dep.dst_table, dst_cols));
      std::vector<ScalarPtr> preds;
      for (size_t i = 0; i < dep.src_columns.size(); ++i) {
        std::optional<size_t> dst_idx = dst->FindColumn(dep.dst_columns[i]);
        if (!dst_idx.has_value()) break;
        preds.push_back(MakeBinaryScalar(
            sql::BinOp::kEq, MakeColumn(src_slots[i]),
            MakeColumn(static_cast<int>(arity + *dst_idx))));
      }
      if (preds.size() != dep.src_columns.size()) continue;
      MemoExpr join;
      join.kind = PlanKind::kJoin;
      join.predicates = NormalizePredicates(std::move(preds));
      join.children = {xg, rem};
      memo_.InsertExpr(std::move(join));
      ++joins_introduced_;
      changed = true;
      if (joins_introduced_ >= kMaxIntroducedJoins) break;
    }
  }
  memo_.Canonicalize();
  return changed;
}

bool ValidityChecker::ApplyC3Rules() {
  if (state_ == nullptr) return false;
  bool changed = false;

  // Phase 1 (serial): walk the memo and collect candidates. All memo
  // mutation — inserting the instantiated remainders v_r — happens here,
  // because the memo is not thread-safe. The q' insertion and marking is
  // deferred to phase 3 so the probe batch in between touches nothing but
  // the database state. A marking that would have enabled further
  // candidates within this round is picked up by the next fixpoint round.
  struct C3Candidate {
    PlanPtr probe_plan;             // v_r, conditionally valid
    GroupId core = -1;              // join core group
    std::vector<ScalarPtr> a_core;  // core-side projection at the valid node
    std::vector<ScalarPtr> p_ic;    // selection pinning the core join cols
  };
  std::vector<C3Candidate> candidates;

  size_t group_snapshot = memo_.num_groups();
  for (GroupId g = 0; g < static_cast<GroupId>(group_snapshot); ++g) {
    if (memo_.Find(g) != g || !memo_.IsValidC(g)) continue;
    for (const JoinFacet& facet : JoinFacetsOf(g)) {
      const MemoExpr join = memo_.expr(facet.join_expr);  // copy
      auto pairs = PureEquiPairs(join);
      if (!pairs.has_value() || pairs->empty()) continue;
      GroupId core = memo_.Find(join.children[0]);
      GroupId rem = memo_.Find(join.children[1]);
      int la = static_cast<int>(memo_.group(core).arity);

      // Condition 1(d): every core-side join column is visible at the
      // valid node.
      bool core_cols_projected = true;
      for (const EquiPair& pair : *pairs) {
        bool present = std::any_of(
            facet.proj.begin(), facet.proj.end(), [&](const ScalarPtr& x) {
              return x->kind == ScalarKind::kColumn && x->slot == pair.core_slot;
            });
        if (!present) {
          core_cols_projected = false;
          break;
        }
      }
      if (!core_cols_projected) continue;

      std::vector<ScalarPtr> a_core;
      for (const ScalarPtr& x : facet.proj) {
        std::set<int> slots;
        algebra::CollectSlots(x, &slots);
        if (!slots.empty() && *slots.rbegin() < la) a_core.push_back(x);
      }
      if (a_core.empty()) continue;

      // Candidate instantiations: selections over the core that pin every
      // core-side join column to a constant (condition 2 / Example 5.5).
      // Snapshot the parent list: the loop body inserts v_r expressions.
      const auto core_parents = memo_.ParentsOf(core);
      for (ExprId sid : core_parents) {
        const MemoExpr sel = memo_.expr(sid);  // copy
        if (sel.kind != PlanKind::kSelect || memo_.Find(sel.children[0]) != core)
          continue;
        std::vector<Value> pin_values;
        bool all_pinned = true;
        for (const EquiPair& pair : *pairs) {
          bool pinned = false;
          for (const ScalarPtr& p : sel.predicates) {
            std::optional<optimizer::Atom> atom = optimizer::ExtractAtom(p);
            if (atom.has_value() && atom->op == optimizer::Atom::Op::kEq &&
                atom->expr->kind == ScalarKind::kColumn &&
                atom->expr->slot == pair.core_slot) {
              pin_values.push_back(atom->literal);
              pinned = true;
              break;
            }
          }
          if (!pinned) {
            all_pinned = false;
            break;
          }
        }
        if (!all_pinned) continue;

        // v_r: the instantiated remainder must be conditionally valid and
        // visibly non-empty in the current state (condition 3).
        std::vector<ScalarPtr> p_ir;
        for (size_t i = 0; i < pairs->size(); ++i) {
          p_ir.push_back(MakeBinaryScalar(sql::BinOp::kEq,
                                          MakeColumn((*pairs)[i].rem_slot),
                                          MakeLiteralScalar(pin_values[i])));
        }
        GroupId vr = memo_.InsertExpr(SelectExpr(std::move(p_ir), rem));
        PropagateValidity(nullptr);
        if (!memo_.IsValidC(vr)) continue;

        Result<PlanPtr> vr_plan = memo_.AnyPlan(vr);
        if (!vr_plan.ok()) continue;

        // q': selection of the pinned core, projected to A_c. The join is
        // an equi-join, so P_ic determines P_ir and rule C3b lets us keep
        // multiplicities (no DISTINCT needed). Built (not yet inserted)
        // here; inserted and marked in phase 3 if the probe succeeds.
        std::vector<ScalarPtr> p_ic;
        for (size_t i = 0; i < pairs->size(); ++i) {
          p_ic.push_back(MakeBinaryScalar(sql::BinOp::kEq,
                                          MakeColumn((*pairs)[i].core_slot),
                                          MakeLiteralScalar(pin_values[i])));
        }
        candidates.push_back(
            {vr_plan.value(), core, a_core, std::move(p_ic)});
      }
    }
  }

  // Phase 2: probe every candidate remainder for visible non-emptiness,
  // concurrently when options_.probe_parallelism allows.
  std::vector<PlanPtr> plans;
  plans.reserve(candidates.size());
  for (const C3Candidate& c : candidates) plans.push_back(c.probe_plan);
  std::vector<char> nonempty = RunProbeBatch(plans);

  // Phase 3 (serial): admit q' for every non-empty remainder.
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!nonempty[i]) continue;
    C3Candidate& c = candidates[i];
    GroupId qsel =
        memo_.InsertExpr(SelectExpr(std::move(c.p_ic), memo_.Find(c.core)));
    GroupId qproj = memo_.InsertExpr(ProjectExpr(c.a_core, qsel));
    if (!memo_.IsValidC(qproj)) {
      MarkC(qproj, "C3a/C3b (visibly non-empty remainder)");
      changed = true;
    }
  }
  memo_.Canonicalize();
  return changed;
}

Status ValidityChecker::InsertAccessPatternInstantiations(
    const InstantiatedView& view, const PlanPtr& query) {
  std::vector<Value> literals;
  CollectPlanLiterals(query, &literals);
  if (literals.empty()) return Status::OK();

  // Enumerate assignments of literals to the view's $$ parameters
  // ("considering the set of all instantiated versions", Section 6),
  // bounded by max_access_instantiations.
  size_t k = view.access_parameters.size();
  std::vector<size_t> idx(k, 0);
  size_t tried = 0;
  while (tried < options_.max_access_instantiations) {
    std::map<std::string, Value> bindings;
    for (size_t i = 0; i < k; ++i) {
      bindings[view.access_parameters[i]] = literals[idx[i]];
    }
    PlanPtr bound =
        algebra::NormalizePlan(algebra::BindPlanParams(view.plan, bindings));
    if (!algebra::PlanHasAccessParam(bound)) {
      GroupId g = memo_.InsertPlan(bound);
      MarkU(g, "U1 ($$-instantiation of view '" + view.name + "')");
    }
    ++tried;
    // Advance the odometer.
    size_t pos = 0;
    while (pos < k) {
      if (++idx[pos] < literals.size()) break;
      idx[pos] = 0;
      ++pos;
    }
    if (pos == k) break;
  }
  return Status::OK();
}

bool ValidityChecker::ApplyDependentJoinRule(
    const std::vector<InstantiatedView>& views) {
  // Identify usable access-pattern view templates:
  //   Select(col = $$p, Get(T))  with no other predicates mentioning $$
  // (and no projection, so the whole tuple of T is retrievable).
  struct Template {
    std::string view_name;
    std::string table;
    int binding_column = 0;
  };
  std::vector<Template> templates;
  for (const InstantiatedView& v : views) {
    if (v.access_parameters.size() != 1) continue;
    const PlanPtr& p = v.plan;
    if (p->kind != PlanKind::kSelect || p->predicates.size() != 1 ||
        p->children[0]->kind != PlanKind::kGet) {
      continue;
    }
    const ScalarPtr& pred = p->predicates[0];
    if (pred->kind != ScalarKind::kBinary || pred->bin_op != sql::BinOp::kEq) {
      continue;
    }
    const ScalarPtr* col = nullptr;
    if (pred->left->kind == ScalarKind::kColumn &&
        pred->right->kind == ScalarKind::kAccessParam) {
      col = &pred->left;
    } else if (pred->right->kind == ScalarKind::kColumn &&
               pred->left->kind == ScalarKind::kAccessParam) {
      col = &pred->right;
    }
    if (col == nullptr) continue;
    templates.push_back({v.name, p->children[0]->table, (*col)->slot});
  }
  if (templates.empty()) return false;

  bool changed = false;
  for (ExprId eid = 0; eid < static_cast<ExprId>(memo_.num_exprs()); ++eid) {
    const MemoExpr e = memo_.expr(eid);  // copy
    if (e.dead || e.kind != PlanKind::kJoin) continue;
    GroupId g = memo_.Find(e.group);
    if (memo_.IsValidU(g)) continue;
    GroupId left = memo_.Find(e.children[0]);
    GroupId right = memo_.Find(e.children[1]);
    bool left_u = memo_.IsValidU(left);
    bool left_c = memo_.IsValidC(left);
    if (!left_c) continue;
    // Right side must be the whole table of some template.
    std::string rtable;
    for (ExprId fid : memo_.GroupExprs(right)) {
      if (memo_.expr(fid).kind == PlanKind::kGet) {
        rtable = memo_.expr(fid).table;
        break;
      }
    }
    if (rtable.empty()) continue;
    int la = static_cast<int>(memo_.group(left).arity);
    for (const Template& t : templates) {
      if (t.table != rtable) continue;
      // Need one equi conjunct left.x = right.binding_column.
      bool keyed = false;
      for (const ScalarPtr& p : e.predicates) {
        if (p->kind != ScalarKind::kBinary || p->bin_op != sql::BinOp::kEq)
          continue;
        const ScalarPtr &l = p->left, &r = p->right;
        auto is_bind = [&](const ScalarPtr& a, const ScalarPtr& b) {
          return a->kind == ScalarKind::kColumn && a->slot < la &&
                 b->kind == ScalarKind::kColumn &&
                 b->slot == la + t.binding_column;
        };
        if (is_bind(l, r) || is_bind(r, l)) {
          keyed = true;
          break;
        }
      }
      if (!keyed) continue;
      // The join is computable by a dependent join: step through the valid
      // left input, probing the access-pattern view per tuple (Section 6).
      if (left_u) {
        MarkU(g, "dependent join via access-pattern view '" + t.view_name + "'");
      } else {
        MarkC(g, "dependent join via access-pattern view '" + t.view_name + "'");
      }
      changed = true;
      break;
    }
  }
  return changed;
}

bool ValidityChecker::ApplyRedundantJoinDecomposition() {
  constexpr size_t kMaxApplications = 8;
  size_t applied = 0;
  bool changed = false;
  size_t group_snapshot = memo_.num_groups();
  for (GroupId q = 0; q < static_cast<GroupId>(group_snapshot); ++q) {
    if (memo_.Find(q) != q || memo_.IsValidU(q)) continue;
    if (applied >= kMaxApplications) break;
    std::vector<optimizer::ExprId> exprs = memo_.GroupExprs(q);
    for (optimizer::ExprId jid : exprs) {
      const MemoExpr j = memo_.expr(jid);  // copy
      if (j.kind != PlanKind::kJoin || j.predicates.empty()) continue;
      GroupId x = memo_.Find(j.children[0]);
      GroupId y = memo_.Find(j.children[1]);
      // Gate: the decomposition can only help when the L⋈T side is itself
      // derivable from the views; without that, the duplicated-T form can
      // never become valid and the speculation just bloats the memo.
      if (!memo_.IsValidC(x)) continue;
      int ax = static_cast<int>(memo_.group(x).arity);
      int ay = static_cast<int>(memo_.group(y).arity);
      for (optimizer::ExprId iid : memo_.GroupExprs(x)) {
        const MemoExpr inner = memo_.expr(iid);  // copy
        if (inner.kind != PlanKind::kJoin) continue;
        GroupId l = memo_.Find(inner.children[0]);
        GroupId t = memo_.Find(inner.children[1]);
        int al = static_cast<int>(memo_.group(l).arity);
        int at = static_cast<int>(memo_.group(t).arity);
        // The middle group must be a keyed single-table chain: rows that
        // agree on the key ARE the same row, which is what makes the
        // duplicated-T join collapse 1:1.
        std::string table;
        auto filters = SingleTableFilters(t, &table);
        if (!filters.has_value()) continue;
        const catalog::TableSchema* schema = catalog_.GetTable(table);
        if (schema == nullptr || !schema->has_primary_key()) continue;

        // Partition the outer predicates: conjuncts touching only T's slice
        // of x (and y) factor into the right join; conjuncts touching L are
        // admissible only when they are REDUNDANT — implied by the inner
        // join's predicates together with the T-only conjuncts (the
        // equality closure routinely materializes such derived conjuncts,
        // e.g. r.cid = c.cid from r.cid = g.cid ∧ g.cid = c.cid).
        std::vector<ScalarPtr> t_conjuncts, l_conjuncts;
        for (const ScalarPtr& p : j.predicates) {
          std::set<int> slots;
          algebra::CollectSlots(p, &slots);
          bool touches_l = std::any_of(slots.begin(), slots.end(), [&](int s) {
            return s < ax && s < al;
          });
          (touches_l ? l_conjuncts : t_conjuncts).push_back(p);
        }
        if (t_conjuncts.empty()) continue;
        if (!l_conjuncts.empty()) {
          // Known facts over the combined (l, t, y) space: the inner
          // join's predicates (already in x-space = a prefix of the
          // combined space) plus the T-only outer conjuncts. Closure makes
          // derived equalities explicit.
          std::vector<ScalarPtr> known = inner.predicates;
          known.insert(known.end(), t_conjuncts.begin(), t_conjuncts.end());
          known = NormalizePredicates(std::move(known));
          if (!ImpliesAll(known, l_conjuncts)) continue;
        }

        // right = Join(t, y, JP')   [t-local slots, then y].
        std::vector<ScalarPtr> jp_right;
        for (const ScalarPtr& p : t_conjuncts) {
          jp_right.push_back(algebra::RemapSlots(p, [&](int s) {
            return s < ax ? s - al : s - ax + at;
          }));
        }
        MemoExpr right;
        right.kind = PlanKind::kJoin;
        right.predicates = NormalizePredicates(std::move(jp_right));
        right.children = {t, y};
        GroupId right_g = memo_.InsertExpr(std::move(right));

        // combined = Join(x, right, T.key = T'.key).
        std::vector<ScalarPtr> key_preds;
        for (size_t idx : schema->primary_key()) {
          key_preds.push_back(MakeBinaryScalar(
              sql::BinOp::kEq, MakeColumn(al + static_cast<int>(idx)),
              MakeColumn(ax + static_cast<int>(idx))));
        }
        MemoExpr combined;
        combined.kind = PlanKind::kJoin;
        combined.predicates = NormalizePredicates(std::move(key_preds));
        combined.children = {x, right_g};
        GroupId comb_g = memo_.InsertExpr(std::move(combined));

        // q = π_{x cols, y cols}(combined): drop the duplicated T slice.
        // This equivalence is asserted by the engine (see header comment),
        // inserting the projection INTO the query group.
        std::vector<ScalarPtr> proj;
        for (int s = 0; s < ax; ++s) proj.push_back(MakeColumn(s));
        for (int s = 0; s < ay; ++s) proj.push_back(MakeColumn(ax + at + s));
        memo_.InsertExpr(ProjectExpr(std::move(proj), comb_g), q);
        changed = true;
        ++applied;
        if (applied >= kMaxApplications) break;
      }
      if (applied >= kMaxApplications) break;
    }
  }
  memo_.Canonicalize();
  return changed;
}

Result<PlanPtr> ValidityChecker::ExtractWitness() const {
  if (root_ < 0) {
    return Status::InvalidArgument("ExtractWitness requires a prior Check");
  }
  if (!memo_.IsValidU(memo_.Find(root_))) {
    return Status::NotImplemented(
        "witness rewritings exist only for unconditionally valid queries");
  }
  // Witness entries are keyed by the group ids current at marking time;
  // later merges may have re-rooted them, so match via Find.
  auto find_view = [this](GroupId g) -> const ViewWitness* {
    for (const auto& [key, w] : witness_view_) {
      if (memo_.Find(key) == g) return &w;
    }
    return nullptr;
  };
  auto find_expr = [this](GroupId g) -> const optimizer::ExprId* {
    for (const auto& [key, eid] : witness_expr_) {
      if (memo_.Find(key) == g) return &eid;
    }
    return nullptr;
  };

  std::set<GroupId> on_path;
  std::function<Result<PlanPtr>(GroupId)> build =
      [&](GroupId g) -> Result<PlanPtr> {
    g = memo_.Find(g);
    if (on_path.count(g) > 0) {
      return Status::InvalidArgument("cyclic witness derivation");
    }
    on_path.insert(g);
    Result<PlanPtr> out = [&]() -> Result<PlanPtr> {
      if (const ViewWitness* w = find_view(g)) {
        std::vector<std::string> cols;
        for (size_t i = 0; i < w->arity; ++i) {
          cols.push_back("col" + std::to_string(i));
        }
        return algebra::MakeGet("view:" + w->name, std::move(cols));
      }
      if (const optimizer::ExprId* eid = find_expr(g)) {
        const optimizer::MemoExpr& e = memo_.expr(*eid);
        auto p = std::make_shared<algebra::Plan>();
        p->kind = e.kind;
        for (GroupId c : e.children) {
          FGAC_ASSIGN_OR_RETURN(PlanPtr child, build(c));
          p->children.push_back(std::move(child));
        }
        p->table = e.table;
        p->get_columns = e.get_columns;
        p->rows = e.rows;
        p->values_arity = e.values_arity;
        p->predicates = e.predicates;
        p->exprs = e.exprs;
        p->group_by = e.group_by;
        p->aggs = e.aggs;
        p->sort_items = e.sort_items;
        p->limit = e.limit;
        return PlanPtr(p);
      }
      return Status::NotImplemented(
          "no constructive witness: the admission used U3/C3 derivations or "
          "access-pattern instantiations");
    }();
    on_path.erase(g);
    return out;
  };
  return build(memo_.Find(root_));
}

Result<storage::Relation> ValidityChecker::ExecuteWitness(
    const PlanPtr& witness, const std::vector<InstantiatedView>& views,
    const storage::DatabaseState& state) {
  storage::DatabaseState augmented = state.Clone();
  for (const InstantiatedView& v : views) {
    if (v.is_access_pattern()) continue;
    FGAC_ASSIGN_OR_RETURN(storage::Relation rel,
                          exec::ExecutePlan(v.plan, state));
    FGAC_RETURN_NOT_OK(
        augmented.CreateTable("view:" + v.name, rel.num_columns()));
    augmented.GetMutableTable("view:" + v.name)
        ->ReplaceAllRows(std::move(rel.mutable_rows()));
  }
  // The witness may reference only the pseudo-tables, but evaluating over
  // the augmented state is equivalent and simpler.
  return exec::ExecutePlan(witness, augmented);
}

Result<ValidityReport> ValidityChecker::Check(
    const PlanPtr& query, const std::vector<InstantiatedView>& views) {
  if (root_ != -1) {
    return Status::InvalidArgument(
        "ValidityChecker is single-use; construct a fresh one per query");
  }
  // The whole-check guard: own deadline from ValidityOptions, inheriting
  // the executing query's cancellation/deadline when set_guard was called.
  // Probes derive per-probe child guards from it.
  common::QueryLimits check_limits;
  check_limits.timeout = options_.check_timeout;
  check_limits.max_memory_bytes = options_.check_max_memory_bytes;
  check_guard_ =
      std::make_unique<common::QueryGuard>(check_limits, parent_guard_);
  probe_status_ = Status::OK();
  FGAC_RETURN_NOT_OK(check_guard_->Check());

  ValidityReport report;
  report.views_considered = views.size();

  std::vector<const InstantiatedView*> usable;
  if (options_.prune_views) {
    usable =
        PruneViews(views, query, options_.enable_complex_rules, &catalog_);
  } else {
    for (const InstantiatedView& v : views) usable.push_back(&v);
  }
  report.views_pruned = views.size() - usable.size();

  root_ = memo_.InsertPlan(query);

  auto insert_views = [&]() -> Status {
    for (const InstantiatedView* v : usable) {
      if (v->is_access_pattern()) {
        if (options_.enable_access_patterns) {
          FGAC_RETURN_NOT_OK(InsertAccessPatternInstantiations(*v, query));
        }
        continue;
      }
      GroupId g = memo_.InsertPlan(v->plan);
      MarkU(g, "U1 (view '" + v->name + "')");
      witness_view_.emplace(g,
                            ViewWitness{v->name, algebra::OutputArity(*v->plan)});
    }
    return Status::OK();
  };

  // Expansion diagnostics accumulate across every ExpandMemo call — the
  // initial expansion plus each round's re-expansion — so the report shows
  // the whole search, not just its first sweep.
  optimizer::ExpandOptions expand = options_.expand;
  bool stopped_early = false;
  // Every expansion charges its newly created expressions against the
  // whole-check guard (per-expression approximation of node + group-list
  // overhead) — and through it the global MemoryTracker when attached —
  // so a runaway memo surfaces as kResourceExhausted that the caller can
  // degrade per policy instead of silently eating the process.
  constexpr uint64_t kApproxMemoExprBytes = 160;
  auto run_expand = [&]() -> Status {
    size_t exprs_before = memo_.num_exprs();
    optimizer::ExpandStats stats = optimizer::ExpandMemo(&memo_, expand);
    report.expansion_passes += stats.passes;
    report.groups_pruned += stats.groups_pruned;
    report.exprs_skipped += stats.exprs_skipped;
    report.frontier_depth = std::max(report.frontier_depth, stats.frontier_depth);
    stopped_early = stopped_early || stats.stopped_early;
    uint64_t added = memo_.num_exprs() - exprs_before;
    if (added > 0) {
      FGAC_RETURN_NOT_OK(
          check_guard_->ChargeBytes(added * kApproxMemoExprBytes));
    }
    return Status::OK();
  };
  // True iff any (canonical) group carries a conditional mark. Every
  // inference rule derives new marks from existing ones (U1 seeds at view
  // roots, Values nodes are vacuously valid via propagation, and U2/U3/C2/
  // C3/CAgg/dependent-join all require an already-marked input), so a memo
  // with no mark anywhere can never produce one: expansion and inference
  // would both be wasted work.
  auto any_valid_c = [&]() {
    for (optimizer::GroupId g = 0;
         g < static_cast<optimizer::GroupId>(memo_.num_groups()); ++g) {
      if (memo_.Find(g) == g && memo_.IsValidC(g)) return true;
    }
    return false;
  };
  // Goal-directed mode decides up front that inference cannot change the
  // verdict (root already proved, or nothing to prove from).
  bool skip_inference = false;

  if (options_.enable_complex_rules) {
    // Complex rules need equivalence rules applied to the views too
    // (Section 5.6.3): insert everything, then expand the combined DAG.
    FGAC_RETURN_NOT_OK(insert_views());
    if (options_.goal_directed_search) {
      // Seed marks before expanding: U1 view roots plus vacuously valid
      // constant subtrees, spread by hash-cons unification. The root may
      // already be proved with zero expansion (the query IS a view), and
      // an entirely unmarked memo is a certain rejection.
      PropagateValidity(nullptr);
      expand.root_goal = memo_.Find(root_);
      for (const InstantiatedView* v : usable) {
        if (!v->base_tables.empty()) {
          expand.goal_table_sets.push_back(v->base_tables);
        }
      }
      expand.should_stop = [this]() {
        // Abort expansion batches early on cancel/deadline; the blown
        // budget itself is re-raised by the Check() after expansion.
        if (!check_guard_->Check().ok()) return true;
        PropagateValidity(nullptr);
        return memo_.IsValidU(memo_.Find(root_));
      };
      if (memo_.IsValidU(memo_.Find(root_)) || !any_valid_c()) {
        skip_inference = true;
      } else {
        FGAC_RETURN_NOT_OK(run_expand());
      }
    } else {
      FGAC_RETURN_NOT_OK(run_expand());
    }
  } else {
    // Basic rules: only the query is expanded; view DAGs are unified
    // unexpanded (Section 5.6.2). A final subsumption-only pass adds the
    // σ-from-weaker-σ derivations of Section 5.6.1 (these extend the query
    // DAG with references to the view nodes, not the view DAGs themselves).
    FGAC_RETURN_NOT_OK(run_expand());
    FGAC_RETURN_NOT_OK(insert_views());
    optimizer::ExpandOptions subsumption_only;
    subsumption_only.enable_select_merge = false;
    subsumption_only.enable_select_pushdown = false;
    subsumption_only.enable_select_through_project = false;
    subsumption_only.enable_join_commute = false;
    subsumption_only.enable_join_assoc = false;
    subsumption_only.enable_aggregate_rules = false;
    subsumption_only.enable_distinct_elim = false;
    subsumption_only.max_passes = 2;
    subsumption_only.table_pk_slots = options_.expand.table_pk_slots;
    optimizer::ExpandMemo(&memo_, subsumption_only);
  }

  FGAC_RETURN_NOT_OK(check_guard_->Check());
  PropagateValidity(nullptr);
  if (options_.enable_access_patterns) {
    if (ApplyDependentJoinRule(views)) PropagateValidity(nullptr);
  }

  if (options_.enable_complex_rules && !skip_inference) {
    for (size_t round = 0; round < options_.max_inference_rounds; ++round) {
      FGAC_RETURN_NOT_OK(check_guard_->Check());
      bool changed = ApplyU3Rules();
      if (options_.enable_conditional_rules) {
        changed = ApplyC3Rules() || changed;
        changed = ApplyCAggRules() || changed;
      }
      if (options_.enable_access_patterns) {
        changed = ApplyDependentJoinRule(views) || changed;
      }
      // Speculative joins against inclusion-dependency targets: new
      // expressions need another expansion pass to connect with the views.
      if (ApplyJoinIntroduction()) changed = true;
      if (options_.enable_redundant_join_decomposition &&
          ApplyRedundantJoinDecomposition()) {
        changed = true;
      }
      // A blown probe budget fails the whole check — unless the query is
      // already admitted (U or C), in which case the verdict in hand is
      // sound and further probing could only refine it; stop burning
      // budget and report it.
      if (!probe_status_.ok()) {
        GroupId r = memo_.Find(root_);
        if (memo_.IsValidU(r) || memo_.IsValidC(r)) break;
        return probe_status_;
      }
      // Newly derived expressions (U3 cores, factored projections,
      // introduced joins) may enable further equivalence rules.
      if (changed) FGAC_RETURN_NOT_OK(run_expand());
      PropagateValidity(&changed);
      GroupId root = memo_.Find(root_);
      if (!changed || memo_.IsValidU(root)) break;
    }
  }
  FGAC_RETURN_NOT_OK(check_guard_->Check());

  GroupId root = memo_.Find(root_);
  // Created counts, not live counts: merged groups and deduplicated
  // expressions still cost their insertion, and the bench gate tracks the
  // work performed, not the survivor count (see ValidityReport).
  report.memo_groups = memo_.num_groups();
  report.memo_exprs = memo_.num_exprs();
  report.c3_probes = c3_probes_;
  report.probe_budget_exhausted = !probe_status_.ok();
  if (trace_ != nullptr) {
    ValidityTraceEvent e;
    e.kind = ValidityTraceEvent::Kind::kExpansion;
    e.detail = "passes=" + std::to_string(report.expansion_passes) +
               " groups_pruned=" + std::to_string(report.groups_pruned) +
               " exprs_skipped=" + std::to_string(report.exprs_skipped) +
               " frontier_depth=" + std::to_string(report.frontier_depth);
    if (skip_inference) e.detail += " skipped_inference=1";
    if (stopped_early) e.detail += " stopped_early=1";
    if (report.probe_budget_exhausted) e.detail += " probe_budget_exhausted=1";
    trace_->Add(std::move(e));
  }

  if (memo_.IsValidU(root)) {
    report.valid = true;
    report.unconditional = true;
  } else if (memo_.IsValidC(root)) {
    report.valid = true;
    report.unconditional = false;
  } else {
    report.valid = false;
    report.reason =
        "query cannot be inferred valid from the " +
        std::to_string(usable.size()) +
        " authorization view(s) available (rules U1-U3c, C1-C3b)";
    TraceVerdict(report);
    return report;
  }
  auto it = justification_.find(root);
  report.justification = it != justification_.end()
                             ? it->second
                             : (report.unconditional ? "U2" : "C2");
  TraceVerdict(report);
  return report;
}

void ValidityChecker::TraceVerdict(const ValidityReport& report) {
  if (trace_ == nullptr) return;
  ValidityTraceEvent e;
  e.kind = ValidityTraceEvent::Kind::kVerdict;
  e.valid = report.valid;
  e.unconditional = report.unconditional;
  e.detail = report.valid ? report.justification : report.reason;
  if (check_guard_ != nullptr) {
    e.guard_rows = check_guard_->rows_charged();
    e.guard_bytes = check_guard_->bytes_charged();
  }
  trace_->Add(std::move(e));
}

}  // namespace fgac::core
