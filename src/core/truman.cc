#include "core/truman.h"

#include "algebra/plan_hash.h"
#include "core/auth_view.h"

namespace fgac::core {

using algebra::Plan;
using algebra::PlanKind;
using algebra::PlanPtr;

Result<PlanPtr> TrumanRewrite(const PlanPtr& plan,
                              const catalog::Catalog& catalog,
                              const SessionContext& ctx) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");

  if (plan->kind == PlanKind::kGet) {
    const std::string& view_name = catalog.TrumanViewFor(plan->table);
    if (view_name.empty()) {
      // User tables without a policy view run as written (Truman narrowing
      // is opt-in per table). Engine-owned fgac_ tables are the exception:
      // one without a policy view has no per-user projection at all (e.g.
      // fgac_statement_cache), so Truman access fails instead of leaking
      // cross-principal state; admin and auditor read the _all views
      // outside Truman mode.
      if (plan->table.rfind("fgac_", 0) == 0) {
        return Status::NotAuthorized("system table '" + plan->table +
                                     "' has no Truman policy view");
      }
      return plan;
    }
    const catalog::ViewDefinition* view = catalog.GetView(view_name);
    if (view == nullptr) {
      return Status::CatalogError("Truman view '" + view_name +
                                  "' missing for table '" + plan->table + "'");
    }
    if (view->is_access_pattern()) {
      return Status::CatalogError(
          "access-pattern views cannot serve as Truman policy views");
    }
    FGAC_ASSIGN_OR_RETURN(InstantiatedView iv,
                          InstantiateView(catalog, *view, ctx));
    if (algebra::OutputArity(*iv.plan) != plan->get_columns.size()) {
      return Status::CatalogError(
          "Truman view '" + view_name + "' is not union-compatible with '" +
          plan->table + "'");
    }
    return iv.plan;
  }

  std::vector<PlanPtr> children;
  children.reserve(plan->children.size());
  bool changed = false;
  for (const PlanPtr& c : plan->children) {
    FGAC_ASSIGN_OR_RETURN(PlanPtr nc, TrumanRewrite(c, catalog, ctx));
    changed = changed || nc != c;
    children.push_back(std::move(nc));
  }
  if (!changed) return plan;

  auto copy = std::make_shared<Plan>(*plan);
  copy->children = std::move(children);
  return PlanPtr(copy);
}

}  // namespace fgac::core
