#ifndef FGAC_CORE_TRUMAN_H_
#define FGAC_CORE_TRUMAN_H_

#include "algebra/plan.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "core/session_context.h"

namespace fgac::core {

/// The Truman model / Oracle VPD baseline (paper Section 3): transparently
/// rewrites a bound query plan by substituting each base-table scan with
/// the table's Truman policy view, instantiated for the session. Tables
/// without a registered Truman view are left unrestricted (matching VPD,
/// where a table without a policy function is fully visible).
///
/// The substituted plan is executed verbatim — including any redundant
/// joins the substitution introduced — reproducing the execution-overhead
/// drawback of Section 3.3.
Result<algebra::PlanPtr> TrumanRewrite(const algebra::PlanPtr& plan,
                                       const catalog::Catalog& catalog,
                                       const SessionContext& ctx);

}  // namespace fgac::core

#endif  // FGAC_CORE_TRUMAN_H_
