#include "core/slow_query_log.h"

#include <chrono>
#include <utility>

namespace fgac::core {

void SlowQueryLog::Add(SlowQueryRecord record) {
  record.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = ++next_seq_;
  ring_.push_back(std::move(record));
  while (ring_.size() > options_.retain) ring_.pop_front();
  captured_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryRecord>(ring_.begin(), ring_.end());
}

}  // namespace fgac::core
