#include "core/acl_baseline.h"

namespace fgac::core {

void TupleAclStore::Grant(const std::string& table, const Value& key,
                          const std::string& user) {
  auto& users = acl_[{table, key}];
  if (users.insert(user).second) ++num_entries_;
}

bool TupleAclStore::Check(const std::string& table, const Value& key,
                          const std::string& user) const {
  auto it = acl_.find({table, key});
  if (it == acl_.end()) return false;
  return it->second.count(user) > 0;
}

size_t TupleAclStore::ApproxMemoryBytes() const {
  // Rough accounting: bucket overhead + key strings + per-user strings.
  size_t bytes = acl_.bucket_count() * sizeof(void*);
  for (const auto& [key, users] : acl_) {
    bytes += sizeof(key) + key.first.size() + 32;
    bytes += users.bucket_count() * sizeof(void*);
    for (const std::string& u : users) bytes += sizeof(u) + u.size() + 16;
  }
  return bytes;
}

}  // namespace fgac::core
