#ifndef FGAC_CORE_VIEW_PRUNING_H_
#define FGAC_CORE_VIEW_PRUNING_H_

#include <vector>

#include "algebra/plan.h"
#include "core/auth_view.h"

namespace fgac::core {

/// The Section 5.6 optimization "given a query, we can eliminate
/// authorization views that cannot possibly be of use in validating the
/// query". Sound filters:
///  * basic rules only: a view can testify only by unifying with a
///    subexpression of the query, so its base tables must be a subset of
///    the query's;
///  * complex rules: U3/C3 reason through joins introduced by views and by
///    inclusion dependencies, so a view is kept when it touches the closure
///    of tables reachable from the query through kept views and visible
///    constraints (e.g. a registration view still matters for a query on
///    grades when a grades view joins registered).
std::vector<const InstantiatedView*> PruneViews(
    const std::vector<InstantiatedView>& views, const algebra::PlanPtr& query,
    bool complex_rules_enabled, const catalog::Catalog* catalog = nullptr);

}  // namespace fgac::core

#endif  // FGAC_CORE_VIEW_PRUNING_H_
