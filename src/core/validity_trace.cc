#include "core/validity_trace.h"

#include "common/strings.h"

namespace fgac::core {

namespace {

/// All JSON string emission funnels through the shared escaper so probe
/// SQL containing arbitrary literal bytes cannot break the JSON-lines
/// audit format.
void AppendJsonString(std::string* out, const std::string& s) {
  out->append(JsonQuote(s));
}

}  // namespace

const char* ValidityTraceEvent::KindName(Kind kind) {
  switch (kind) {
    case Kind::kCacheHit:
      return "cache_hit";
    case Kind::kCacheMiss:
      return "cache_miss";
    case Kind::kRuleFired:
      return "rule_fired";
    case Kind::kProbeBatch:
      return "probe_batch";
    case Kind::kExpansion:
      return "expansion";
    case Kind::kVerdict:
      return "verdict";
    case Kind::kDegraded:
      return "degraded_to_truman";
  }
  return "?";
}

std::vector<std::string> ValidityTrace::RuleSequence() const {
  std::vector<std::string> out;
  for (const ValidityTraceEvent& e : events_) {
    if (e.kind == ValidityTraceEvent::Kind::kRuleFired) out.push_back(e.rule);
  }
  return out;
}

bool ValidityTrace::FiredRule(const std::string& rule) const {
  for (const ValidityTraceEvent& e : events_) {
    if (e.kind == ValidityTraceEvent::Kind::kRuleFired && e.rule == rule) {
      return true;
    }
  }
  return false;
}

uint64_t ValidityTrace::TotalProbes() const {
  uint64_t total = 0;
  for (const ValidityTraceEvent& e : events_) {
    if (e.kind == ValidityTraceEvent::Kind::kProbeBatch) total += e.probes;
  }
  return total;
}

std::string ValidityTrace::ToJsonLines() const {
  std::string out;
  for (const ValidityTraceEvent& e : events_) {
    out += "{\"event\":";
    AppendJsonString(&out, ValidityTraceEvent::KindName(e.kind));
    out += ",\"at_us\":" + std::to_string(e.at_us);
    if (!e.rule.empty()) {
      out += ",\"rule\":";
      AppendJsonString(&out, e.rule);
    }
    if (!e.detail.empty()) {
      out += ",\"detail\":";
      AppendJsonString(&out, e.detail);
    }
    if (e.kind == ValidityTraceEvent::Kind::kProbeBatch) {
      out += ",\"probes\":" + std::to_string(e.probes) +
             ",\"nonempty\":" + std::to_string(e.probe_rows);
      if (!e.probe_sql.empty()) {
        out += ",\"probe_sql\":";
        AppendJsonString(&out, e.probe_sql);
      }
    }
    if (e.kind == ValidityTraceEvent::Kind::kVerdict ||
        e.kind == ValidityTraceEvent::Kind::kDegraded) {
      out += ",\"valid\":" + std::string(e.valid ? "true" : "false") +
             ",\"unconditional\":" +
             std::string(e.unconditional ? "true" : "false") +
             ",\"guard_rows\":" + std::to_string(e.guard_rows) +
             ",\"guard_bytes\":" + std::to_string(e.guard_bytes);
    }
    out += "}\n";
  }
  return out;
}

std::string ValidityTrace::ToText() const {
  std::string out;
  for (const ValidityTraceEvent& e : events_) {
    out += "  ";
    out += ValidityTraceEvent::KindName(e.kind);
    if (!e.rule.empty()) out += " " + e.rule;
    if (e.kind == ValidityTraceEvent::Kind::kProbeBatch) {
      out += " probes=" + std::to_string(e.probes) +
             " nonempty=" + std::to_string(e.probe_rows);
    }
    if (!e.detail.empty()) out += " (" + e.detail + ")";
    out += "\n";
  }
  return out;
}

}  // namespace fgac::core
