#include "core/database.h"

#include <algorithm>
#include <cstdio>
#include <cctype>
#include <optional>
#include <set>

#include <chrono>

#include "algebra/binder.h"
#include "algebra/normalize.h"
#include "algebra/plan_hash.h"
#include "catalog/type.h"
#include "core/auth_view.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/truman.h"
#include "exec/executor.h"
#include "exec/parallel.h"
#include "exec/scheduler.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace fgac::core {

using algebra::PlanPtr;
using catalog::TableSchema;
using storage::Relation;

namespace {

DatabaseOptions DefaultOptions() {
  DatabaseOptions o;
  o.exec_expand.max_passes = 8;
  o.exec_expand.max_exprs = 20000;
  return o;
}

SessionContext AdminContext() {
  SessionContext ctx("admin");
  ctx.set_mode(EnforcementMode::kNone);
  return ctx;
}

/// All fgac_-prefixed catalog objects (the audit/span tables and their
/// authorization views) are engine-owned and read-only to SQL.
bool IsSystemObject(const std::string& name) {
  return name.rfind("fgac_", 0) == 0;
}

bool TouchesSystemTables(const PlanPtr& plan) {
  for (const std::string& t : CollectBaseTables(plan)) {
    if (IsSystemObject(t)) return true;
  }
  return false;
}

/// StatusCode rendered the way audit consumers grep it: "not_authorized",
/// "resource_exhausted", ... ("ok" for success).
std::string AuditStatusName(StatusCode code) {
  const std::string name = StatusCodeName(code);
  std::string out;
  for (size_t i = 0; i < name.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(name[i]);
    if (std::isupper(c)) {
      // Word boundary only after a lowercase letter ("NotAuthorized" ->
      // "not_authorized") — never inside an acronym ("OK" -> "ok").
      if (i > 0 && std::islower(static_cast<unsigned char>(name[i - 1]))) {
        out.push_back('_');
      }
      out.push_back(static_cast<char>(std::tolower(c)));
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

/// Seeds the audit event fields known before execution starts.
common::AuditEvent StartAudit(const SessionContext& ctx,
                              std::string statement) {
  common::AuditEvent ev;
  ev.user = ctx.user();
  ev.session = ctx.session_id();
  ev.mode = EnforcementModeName(ctx.mode());
  ev.statement_hash = common::AuditStatementHash(statement);
  ev.statement = std::move(statement);
  return ev;
}

/// The statement currently executing on this thread, for the enforcement
/// pipeline to stamp phases / progress into without threading a handle
/// through every signature. Set by ActivityScope; a nested statement
/// (EXPLAIN ANALYZE running its subject) shares the outer record.
thread_local common::StatementActivity* g_current_activity = nullptr;

/// RAII registration of one statement in the activity registry.
class ActivityScope {
 public:
  ActivityScope(common::ActivityRegistry& registry, const SessionContext& ctx,
                const std::string& statement)
      : registry_(registry) {
    if (g_current_activity == nullptr) {
      activity_ =
          registry_.BeginStatement(ctx.session_id(), ctx.user(), statement);
      g_current_activity = activity_.get();
    }
  }
  ~ActivityScope() {
    if (activity_ != nullptr) {
      registry_.EndStatement(activity_);
      g_current_activity = nullptr;
    }
  }
  ActivityScope(const ActivityScope&) = delete;
  ActivityScope& operator=(const ActivityScope&) = delete;

 private:
  common::ActivityRegistry& registry_;
  std::shared_ptr<common::StatementActivity> activity_;
};

}  // namespace

Database::Database() : Database(DefaultOptions()) {}

Database::Database(DatabaseOptions options)
    : options_(std::move(options)),
      tracker_(options_.memory),
      cache_(options_.validity_cache_capacity),
      stmt_cache_(options_.statement_cache_capacity),
      tracer_(options_.trace_retain_spans) {
  // Applies only on first use process-wide (the pool is shared); later
  // databases inherit whatever size the first one resolved.
  common::ThreadPool::ConfigureShared(options_.shared_pool_threads);
  // Attach the global memory account before any table exists so every
  // columnar snapshot — system tables included — is charged.
  state_.SetMemoryTracker(&tracker_);
  admission_ = std::make_unique<exec::AdmissionController>(
      options_.admission.Resolved(), &tracker_);
  // Let execution-time distinct elimination see primary keys.
  options_.exec_expand.table_pk_slots =
      [this](const std::string& table) -> std::vector<int> {
    const TableSchema* schema = catalog_.GetTable(table);
    if (schema == nullptr) return {};
    std::vector<int> out;
    for (size_t i : schema->primary_key()) out.push_back(static_cast<int>(i));
    return out;
  };
  // Bootstrap before the audit log exists so the system DDL itself does
  // not generate audit events (and before system_tables_ready_ flips the
  // fgac_ namespace read-only).
  BootstrapSystemTables();
  audit_ = std::make_unique<common::AuditLog>(options_.audit);
  system_tables_ready_ = true;
  // The stall watchdog starts last: its probes and stall callback touch the
  // audit log and admission controller, which now both exist.
  watchdog_ =
      std::make_unique<Watchdog>(options_.watchdog, &activity_, &metrics_);
  watchdog_->AddProbe("watchdog.scheduler_queue_depth", [] {
    return static_cast<int64_t>(
        exec::PipelineScheduler::Shared().fair_queue_depth());
  });
  watchdog_->AddProbe("watchdog.admission_queue_depth", [this] {
    return static_cast<int64_t>(admission_->queue_depth());
  });
  watchdog_->AddProbe("watchdog.admission_running", [this] {
    return static_cast<int64_t>(admission_->running());
  });
  watchdog_->set_on_stall([this](
                              const common::StatementActivitySnapshot& snap,
                              const std::string& reason) {
    if (audit_ == nullptr || !audit_->enabled()) return;
    common::AuditEvent ev;
    ev.user = snap.user;
    ev.session = snap.session_id;
    ev.mode = "watchdog";
    ev.statement = snap.statement;
    ev.statement_hash = common::AuditStatementHash(snap.statement);
    ev.verdict = "stalled";
    ev.rules = reason;
    ev.duration_us = static_cast<int64_t>(snap.elapsed_us);
    ev.guard_rows = snap.guard_rows;
    ev.guard_bytes = snap.guard_bytes;
    ev.status = "in_flight";
    audit_->Append(std::move(ev));
  });
  watchdog_->Start();
}

Database::~Database() {
  // Join the sampler before any member it reads is torn down.
  if (watchdog_ != nullptr) watchdog_->Stop();
}

Result<ExecResult> Database::Execute(std::string_view sql,
                                     const SessionContext& ctx) {
  auto t0 = std::chrono::steady_clock::now();
  common::AuditEvent ev = StartAudit(ctx, std::string(sql));
  ActivityScope activity_scope(activity_, ctx, ev.statement);
  Result<sql::StmtPtr> stmt = sql::Parser::ParseStatement(sql);
  if (!stmt.ok()) {
    FinishAudit(&ev, stmt.status(), 0, t0);
    return stmt.status();
  }
  Result<ExecResult> r = ExecuteStmt(*stmt.value(), ctx, &ev);
  if (r.ok()) {
    FinishAudit(&ev, Status::OK(),
                static_cast<int64_t>(r.value().relation.num_rows()) +
                    r.value().affected_rows,
                t0);
  } else {
    FinishAudit(&ev, r.status(), 0, t0);
  }
  return r;
}

Result<ExecResult> Database::ExecuteAsAdmin(std::string_view sql) {
  return Execute(sql, AdminContext());
}

Status Database::ExecuteScript(std::string_view sql) {
  FGAC_ASSIGN_OR_RETURN(std::vector<sql::StmtPtr> stmts,
                        sql::Parser::ParseScript(sql));
  SessionContext admin = AdminContext();
  for (const sql::StmtPtr& stmt : stmts) {
    // Each script statement is audited individually (the statement text is
    // re-rendered from the AST — the script's raw slicing is not kept).
    auto t0 = std::chrono::steady_clock::now();
    common::AuditEvent ev = StartAudit(admin, sql::StmtToSql(*stmt));
    Result<ExecResult> r = ExecuteStmt(*stmt, admin, &ev);
    if (!r.ok()) {
      FinishAudit(&ev, r.status(), 0, t0);
      return r.status();
    }
    FinishAudit(&ev, Status::OK(),
                static_cast<int64_t>(r.value().relation.num_rows()) +
                    r.value().affected_rows,
                t0);
  }
  return Status::OK();
}

void Database::FinishAudit(common::AuditEvent* ev, const Status& st,
                           int64_t rows_out,
                           std::chrono::steady_clock::time_point t0) {
  if (audit_ == nullptr || !audit_->enabled()) return;
  ev->duration_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  ev->status = AuditStatusName(st.code());
  if (!st.ok()) ev->error = st.message();
  if (st.ok()) ev->rows_out = rows_out;
  if (ev->verdict.empty()) {
    // Paths that fill a verdict (the SELECT pipeline) already did; default
    // the rest from the outcome.
    if (st.ok()) {
      ev->verdict = "ok";
    } else if (st.code() == StatusCode::kNotAuthorized) {
      ev->verdict = "rejected";
    } else if (st.code() == StatusCode::kOverloaded) {
      // Load shedding is not an error in the query: the audit trail must
      // distinguish "we refused under load" from "it failed".
      ev->verdict = "shed";
    } else {
      ev->verdict = "error";
    }
  }
  audit_->Append(std::move(*ev));
}

Result<ExecResult> Database::ExecuteStmt(const sql::Stmt& stmt,
                                         const SessionContext& ctx,
                                         common::AuditEvent* audit) {
  switch (stmt.kind()) {
    case sql::StmtKind::kSelect:
      return ExecuteSelect(static_cast<const sql::SelectStmt&>(stmt), ctx,
                           audit);
    case sql::StmtKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStmt&>(stmt), ctx);
    case sql::StmtKind::kUpdate:
      return ExecuteUpdate(static_cast<const sql::UpdateStmt&>(stmt), ctx);
    case sql::StmtKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStmt&>(stmt), ctx);
    case sql::StmtKind::kCreateTable:
      return ApplyCreateTable(static_cast<const sql::CreateTableStmt&>(stmt));
    case sql::StmtKind::kCreateView:
      return ApplyCreateView(static_cast<const sql::CreateViewStmt&>(stmt));
    case sql::StmtKind::kCreateInclusion:
      return ApplyCreateInclusion(
          static_cast<const sql::CreateInclusionStmt&>(stmt));
    case sql::StmtKind::kGrant:
      return ApplyGrant(static_cast<const sql::GrantStmt&>(stmt));
    case sql::StmtKind::kRevoke: {
      const auto& s = static_cast<const sql::RevokeStmt&>(stmt);
      FGAC_RETURN_NOT_OK(catalog_.RevokeView(s.object, s.grantee));
      ++catalog_version_;
      ExecResult out;
      out.message = "revoked " + s.object + " from " + s.grantee;
      return out;
    }
    case sql::StmtKind::kExplain:
      return ExecuteExplain(static_cast<const sql::ExplainStmt&>(stmt), ctx,
                            audit);
    case sql::StmtKind::kAuthorize:
      return ApplyAuthorize(static_cast<const sql::AuthorizeStmt&>(stmt));
    case sql::StmtKind::kDrop:
      return ApplyDrop(static_cast<const sql::DropStmt&>(stmt));
    case sql::StmtKind::kPrepare:
    case sql::StmtKind::kExecute:
    case sql::StmtKind::kDeallocate:
      // Prepared-statement state is per connection; the embedded facade has
      // none. Sessions from server::ConnectionManager route these to
      // Prepare() / ExecutePrepared() / their own registries.
      return Status::InvalidArgument(
          "prepared statements require a connection session "
          "(server::ConnectionManager)");
  }
  return Status::NotImplemented("unsupported statement kind");
}

Result<PlanPtr> Database::BindQuery(const sql::SelectStmt& stmt,
                                    const SessionContext& ctx) const {
  algebra::Binder::Options options;
  options.params = ctx.params();
  options.allow_access_params = false;
  algebra::Binder binder(catalog_, options);
  return binder.BindSelect(stmt);
}

Result<Relation> Database::RunPlan(const PlanPtr& plan,
                                   const SessionContext& ctx,
                                   common::QueryGuard* guard,
                                   exec::ExecStats* stats,
                                   const common::TraceContext* trace) {
  FGAC_RETURN_NOT_OK(common::GuardCheck(guard));
  size_t threads = ctx.exec_parallelism() != 0 ? ctx.exec_parallelism()
                                               : options_.parallelism;
  // Session identity keys the scheduler's weighted round-robin: every DAG
  // this query fans out shares the session's fair-dispatch bucket.
  exec::DagOptions dag_opts;
  dag_opts.session_key = std::hash<std::string>{}(ctx.session_id());
  dag_opts.weight = ctx.scheduler_weight();
  if (g_current_activity != nullptr) {
    dag_opts.progress = &g_current_activity->progress();
  }
  if (!options_.optimize_execution) {
    if (stats != nullptr) stats->SetExecutedPlan(plan);
    return exec::ParallelExecutePlan(plan, state_, threads, guard, stats,
                                     trace, dag_opts);
  }
  auto row_count = [this](const std::string& table) -> double {
    const storage::TableData* t = state_.GetTable(table);
    return t == nullptr ? 1000.0 : static_cast<double>(t->num_rows());
  };
  FGAC_ASSIGN_OR_RETURN(
      optimizer::OptimizeResult best,
      optimizer::Optimize(plan, options_.exec_expand, row_count));
  if (stats != nullptr) stats->SetExecutedPlan(best.plan);
  return exec::ParallelExecutePlan(best.plan, state_, threads, guard, stats,
                                   trace, dag_opts);
}

void Database::RefreshExportGauges() {
  // Pull-model stats live in their owning subsystems; mirror them into
  // gauges at export time so one document covers everything.
  if (audit_ != nullptr) {
    metrics_.gauge("audit.events_emitted")
        .Set(static_cast<int64_t>(audit_->events_emitted()));
    metrics_.gauge("audit.events_persisted")
        .Set(static_cast<int64_t>(audit_->events_persisted()));
    metrics_.gauge("audit.events_dropped")
        .Set(static_cast<int64_t>(audit_->events_dropped()));
  }
  metrics_.gauge("trace.spans_recorded")
      .Set(static_cast<int64_t>(tracer_.spans_recorded()));
  metrics_.gauge("trace.spans_dropped")
      .Set(static_cast<int64_t>(tracer_.spans_dropped()));
  metrics_.gauge("validity_cache.hits").Set(cache_.hits());
  metrics_.gauge("validity_cache.misses").Set(cache_.misses());
  metrics_.gauge("validity_cache.evictions").Set(cache_.evictions());
  metrics_.gauge("validity_cache.entries").Set(cache_.size());
  metrics_.gauge("statement_cache.hits")
      .Set(static_cast<int64_t>(stmt_cache_.hits()));
  metrics_.gauge("statement_cache.misses")
      .Set(static_cast<int64_t>(stmt_cache_.misses()));
  metrics_.gauge("statement_cache.evictions")
      .Set(static_cast<int64_t>(stmt_cache_.evictions()));
  metrics_.gauge("statement_cache.invalidations")
      .Set(static_cast<int64_t>(stmt_cache_.invalidations()));
  metrics_.gauge("statement_cache.collisions")
      .Set(static_cast<int64_t>(stmt_cache_.collisions()));
  metrics_.gauge("statement_cache.entries")
      .Set(static_cast<int64_t>(stmt_cache_.size()));
  common::ThreadPool& pool = common::ThreadPool::Shared();
  metrics_.gauge("thread_pool.tasks_run").Set(pool.tasks_run());
  metrics_.gauge("thread_pool.queue_depth_high_water")
      .Set(pool.queue_depth_high_water());
  metrics_.gauge("thread_pool.tasks_stolen")
      .Set(static_cast<int64_t>(pool.tasks_stolen()));
  metrics_.gauge("thread_pool.queue_depth")
      .Set(static_cast<int64_t>(pool.queue_depth()));
  exec::PipelineScheduler& sched = exec::PipelineScheduler::Shared();
  metrics_.gauge("scheduler.dags_executed")
      .Set(static_cast<int64_t>(sched.dags_executed()));
  metrics_.gauge("scheduler.tasks_dispatched")
      .Set(static_cast<int64_t>(sched.tasks_dispatched()));
  metrics_.gauge("scheduler.pipelines_completed")
      .Set(static_cast<int64_t>(sched.pipelines_completed()));
  metrics_.gauge("scheduler.pipelines_cancelled")
      .Set(static_cast<int64_t>(sched.pipelines_cancelled()));
  metrics_.gauge("scheduler.fair_queue_depth")
      .Set(static_cast<int64_t>(sched.fair_queue_depth()));
  metrics_.gauge("scheduler.fair_sessions_active")
      .Set(static_cast<int64_t>(sched.fair_sessions_active()));
  metrics_.gauge("memory.used").Set(static_cast<int64_t>(tracker_.used()));
  metrics_.gauge("memory.high_water")
      .Set(static_cast<int64_t>(tracker_.high_water()));
  metrics_.gauge("memory.charges_denied")
      .Set(static_cast<int64_t>(tracker_.charges_denied()));
  metrics_.gauge("admission.admitted")
      .Set(static_cast<int64_t>(admission_->admitted()));
  metrics_.gauge("admission.shed_queue_full")
      .Set(static_cast<int64_t>(admission_->shed_queue_full()));
  metrics_.gauge("admission.shed_memory")
      .Set(static_cast<int64_t>(admission_->shed_memory()));
  metrics_.gauge("admission.rejected_deadline")
      .Set(static_cast<int64_t>(admission_->rejected_deadline()));
  metrics_.gauge("admission.cancelled")
      .Set(static_cast<int64_t>(admission_->cancelled()));
  metrics_.gauge("admission.queue_depth")
      .Set(static_cast<int64_t>(admission_->queue_depth()));
  metrics_.gauge("admission.queue_depth_high_water")
      .Set(static_cast<int64_t>(admission_->queue_depth_high_water()));
  metrics_.gauge("admission.running")
      .Set(static_cast<int64_t>(admission_->running()));
  metrics_.gauge("memory.soft_limit")
      .Set(static_cast<int64_t>(tracker_.limits().soft_limit_bytes));
  metrics_.gauge("memory.hard_limit")
      .Set(static_cast<int64_t>(tracker_.limits().hard_limit_bytes));
  metrics_.gauge("admission.queue_wait_us")
      .Set(static_cast<int64_t>(admission_->total_queue_wait_us()));
  metrics_.gauge("scheduler.task_queue_wait_us")
      .Set(static_cast<int64_t>(sched.total_task_queue_wait_us()));
  metrics_.gauge("scheduler.task_run_us")
      .Set(static_cast<int64_t>(sched.total_task_run_us()));
  metrics_.gauge("sessions.open")
      .Set(static_cast<int64_t>(activity_.sessions_open()));
  metrics_.gauge("sessions.statements_active")
      .Set(static_cast<int64_t>(activity_.statements_active()));
  metrics_.gauge("sessions.statements_begun")
      .Set(static_cast<int64_t>(activity_.statements_begun()));
  metrics_.gauge("slow_query.captured")
      .Set(static_cast<int64_t>(slow_log_.captured()));
  for (const auto& [site, hits] :
       common::FaultInjector::Instance().AllHitCounts()) {
    metrics_.gauge("fault." + site).Set(hits);
  }
  // One watchdog pass guarantees the watchdog.* family (samples, stall
  // counters, depth probes, in-flight gauges) is present and current in
  // every export, even before the background thread's first tick.
  if (watchdog_ != nullptr) watchdog_->SampleOnce();
}

std::string Database::ExportMetricsJson() {
  RefreshExportGauges();
  return metrics_.ToJson();
}

std::string Database::ExportMetricsPrometheus() {
  RefreshExportGauges();
  return metrics_.ToPrometheus();
}

ValidityOptions Database::ResolvedValidityOptions() const {
  ValidityOptions v = options_.validity;
  if (v.probe_parallelism == 0) v.probe_parallelism = options_.parallelism;
  return v;
}

Result<ExecResult> Database::ExecuteSelect(const sql::SelectStmt& stmt,
                                           const SessionContext& ctx,
                                           common::AuditEvent* audit) {
  if (!ctx.profile()) return ExecuteSelectImpl(stmt, ctx, nullptr, audit);
  QueryProfile profile;
  return ExecuteSelectImpl(stmt, ctx, &profile, audit);
}

Result<ExecResult> Database::ExecuteSelectImpl(const sql::SelectStmt& stmt,
                                               const SessionContext& ctx,
                                               QueryProfile* profile,
                                               common::AuditEvent* audit) {
  FGAC_ASSIGN_OR_RETURN(PlanPtr plan, BindQuery(stmt, ctx));
  return RunSelect(plan, ctx, profile, audit, /*prep=*/nullptr);
}

Result<ExecResult> Database::RunSelect(const PlanPtr& plan,
                                       const SessionContext& ctx,
                                       QueryProfile* profile,
                                       common::AuditEvent* audit,
                                       const PreparedRun* prep) {
  auto t0 = std::chrono::steady_clock::now();
  Result<ExecResult> r = RunSelectImpl(plan, ctx, profile, audit, prep);
  uint64_t duration_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  // Capture runs on every exit path — rejections and guard trips are often
  // exactly the statements worth a postmortem.
  MaybeCaptureSlowQuery(ctx, profile, audit, r, duration_us);
  return r;
}

Result<ExecResult> Database::RunSelectImpl(const PlanPtr& plan,
                                           const SessionContext& ctx,
                                           QueryProfile* profile,
                                           common::AuditEvent* audit,
                                           const PreparedRun* prep) {
  using Clock = std::chrono::steady_clock;
  auto elapsed_ns = [](Clock::time_point t0) -> uint64_t {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
  };
  metrics_.counter("queries.select").Increment();
  common::StatementActivity* act = g_current_activity;
  ValidityTrace* trace = nullptr;
  exec::ExecStats* stats = nullptr;
  if (profile != nullptr) {
    profile->trace = std::make_shared<ValidityTrace>();
    profile->stats = std::make_shared<exec::ExecStats>();
    trace = profile->trace.get();
    stats = profile->stats.get();
  }
  // Counts a guard trip (deadline / budget / cancel) exactly once per
  // query, whether it fired during the validity test or during execution.
  auto note_guard_trip = [this](const Status& st) {
    StatusCode code = st.code();
    if (code == StatusCode::kTimeout ||
        code == StatusCode::kResourceExhausted ||
        code == StatusCode::kCancelled) {
      metrics_.counter("guard.trips").Increment();
    }
  };

  // Per-query span tree: a "query" root span with validity / rewrite /
  // execution children. Off (all helpers no-op) unless the session opted
  // in via set_trace(true).
  common::TraceContext root_ctx;
  std::optional<common::ScopedSpan> query_span;
  common::TraceContext query_ctx;
  const common::TraceContext* tctx = nullptr;
  if (ctx.trace()) {
    root_ctx.tracer = &tracer_;
    root_ctx.trace_id =
        ctx.trace_id() != 0 ? ctx.trace_id() : tracer_.NewTraceId();
    root_ctx.user = ctx.user();
    query_span.emplace(&root_ctx, "query");
    query_span->set_detail(std::string("mode=") +
                           EnforcementModeName(ctx.mode()));
    query_ctx = query_span->ChildContext();
    tctx = &query_ctx;
    if (audit != nullptr) audit->trace_id = root_ctx.trace_id;
  }

  // One guard spans validity checking and execution: database-default
  // limits, optionally overridden per session, observing the session's
  // cancel token when one is attached, charging materialized state into
  // the process-wide memory account.
  common::QueryLimits limits =
      ctx.query_limits().has_value() ? *ctx.query_limits() : options_.limits;
  if (act != nullptr && limits.has_timeout()) {
    act->set_deadline_us(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(limits.timeout)
            .count()));
  }
  common::QueryGuard guard(limits);
  if (ctx.cancel_token() != nullptr) {
    guard.AttachExternalCancel(ctx.cancel_token());
  }
  guard.set_memory_tracker(&tracker_);

  // Guard charges land in the audit event on EVERY exit path — rejection,
  // timeout, degradation, success — capturing what the statement cost.
  struct GuardChargeCapture {
    const common::QueryGuard& guard;
    common::AuditEvent* ev;
    common::StatementActivity* act;
    ~GuardChargeCapture() {
      if (ev != nullptr) {
        ev->guard_rows = guard.rows_charged();
        ev->guard_bytes = guard.bytes_charged();
      }
      if (act != nullptr) {
        act->StampGuard(guard.rows_charged(), guard.bytes_charged());
      }
    }
  } charge_capture{guard, audit, act};

  // Admission control happens after binding (the cost estimate needs the
  // plan's base tables) but BEFORE any heavy work and before the system-
  // table lock: a queued query holding system_tables_mu_ while admitted
  // queries block on it would deadlock the slot/lock pair. The ticket's
  // scope spans validity checking and execution.
  exec::AdmissionTicket admission_ticket;
  {
    exec::AdmissionRequest req;
    if (limits.has_timeout()) req.deadline = Clock::now() + limits.timeout;
    double cost = 0.0;
    for (const std::string& t : CollectBaseTables(plan)) {
      const storage::TableData* td = state_.GetTable(t);
      if (td != nullptr) cost += static_cast<double>(td->num_rows());
    }
    req.cost = std::max(1.0, cost);
    req.guard = &guard;
    auto admit_t0 = Clock::now();
    Status admitted = admission_->Admit(req, &admission_ticket);
    if (act != nullptr) {
      act->set_admission_wait_us(elapsed_ns(admit_t0) / 1000);
    }
    if (!admitted.ok()) {
      if (admitted.code() == StatusCode::kOverloaded) {
        metrics_.counter("queries.shed").Increment();
      }
      return admitted;
    }
  }

  // Statements reading the fgac_ system tables re-materialize them first
  // and hold the refresh mutex through execution, so a concurrent
  // session's refresh cannot swap the rows out from under this scan (the
  // whole statement — probes included — runs on this thread).
  std::unique_lock<std::mutex> system_lock;
  if (TouchesSystemTables(plan)) {
    system_lock = std::unique_lock<std::mutex>(system_tables_mu_);
    FGAC_RETURN_NOT_OK(RefreshSystemTables());
  }

  ExecResult out;
  if (profile != nullptr) {
    out.trace = profile->trace;
    out.exec_stats = profile->stats;
  }

  PlanPtr to_run = plan;
  switch (ctx.mode()) {
    case EnforcementMode::kNone:
      if (audit != nullptr) audit->verdict = "none";
      break;
    case EnforcementMode::kTruman: {
      if (act != nullptr) act->set_phase(common::StatementPhase::kRewrite);
      if (prep != nullptr) {
        // Prepared fast path: the rewrite replaces base tables with
        // session-instantiated policy views and is independent of the
        // EXECUTE arguments, so the PARAMETERIZED rewritten plan is cached
        // per (principal, statement, session params) and only the cheap
        // placeholder substitution runs per call.
        StatementCache::Key key{ctx.user(), prep->stmt_fp, *prep->text,
                                catalog_version(), policy_epoch()};
        PlanPtr rewritten = stmt_cache_.LookupTrumanPlan(key, prep->params_fp);
        out.truman_plan_from_cache = rewritten != nullptr;
        if (out.truman_plan_from_cache && act != nullptr) act->NoteCacheHit();
        if (rewritten == nullptr) {
          common::ScopedSpan rewrite_span(tctx, "truman.rewrite");
          FGAC_ASSIGN_OR_RETURN(
              PlanPtr raw, TrumanRewrite(*prep->parameterized, catalog_, ctx));
          rewritten = algebra::NormalizePlan(raw);
          stmt_cache_.InsertTrumanPlan(key, prep->params_fp, rewritten);
        }
        to_run = prep->bindings->empty()
                     ? rewritten
                     : algebra::NormalizePlan(
                           algebra::BindPlanParams(rewritten, *prep->bindings));
      } else {
        common::ScopedSpan rewrite_span(tctx, "truman.rewrite");
        FGAC_ASSIGN_OR_RETURN(PlanPtr rewritten,
                              TrumanRewrite(plan, catalog_, ctx));
        to_run = algebra::NormalizePlan(rewritten);
      }
      if (audit != nullptr) audit->verdict = "truman";
      break;
    }
    case EnforcementMode::kNonTruman: {
      if (act != nullptr) act->set_phase(common::StatementPhase::kValidity);
      auto validity_t0 = Clock::now();
      // The cache key must cover everything the verdict depends on: the
      // bound plan AND the full session parameterization (a $term or
      // $user-location change re-instantiates the views). Ad-hoc queries
      // consult the ValidityCache under a fingerprint of the concrete
      // plan; prepared executions consult the sharded StatementCache
      // under (parameterized-statement fingerprint, params+arguments
      // fingerprint) so the per-call key computation is a few multiplies
      // instead of a plan-tree walk. Both carry catalog version + policy
      // epoch and fail closed on either changing.
      uint64_t fp = 0;
      if (prep == nullptr) {
        fp = algebra::PlanFingerprint(plan);
        for (const auto& [name, value] : ctx.params()) {
          fp = fp * 1099511628211ULL ^ std::hash<std::string>()(name);
          fp = fp * 1099511628211ULL ^ value.Hash();
        }
      }
      auto stmt_key = [&]() -> StatementCache::Key {
        return StatementCache::Key{ctx.user(), prep->stmt_fp, *prep->text,
                                   catalog_version(), policy_epoch()};
      };
      ValidityReport cached_report;
      bool cached = false;
      if (options_.enable_validity_cache) {
        cached = prep != nullptr
                     ? stmt_cache_.LookupVerdict(stmt_key(), prep->exec_fp,
                                                 data_version(),
                                                 &cached_report)
                     : cache_.Lookup(ctx.user(), fp, catalog_version(),
                                     policy_epoch(), data_version(),
                                     &cached_report);
      }
      if (cached) {
        out.validity = std::move(cached_report);
        out.validity_from_cache = true;
        if (prep != nullptr && act != nullptr) act->NoteCacheHit();
        metrics_.counter("validity.cache_hits").Increment();
        if (trace != nullptr) {
          ValidityTraceEvent e;
          e.kind = ValidityTraceEvent::Kind::kCacheHit;
          e.valid = out.validity.valid;
          e.unconditional = out.validity.unconditional;
          e.detail = out.validity.valid ? out.validity.justification
                                        : out.validity.reason;
          trace->Add(std::move(e));
        }
      } else {
        metrics_.counter("validity.cache_misses").Increment();
        if (trace != nullptr) {
          ValidityTraceEvent e;
          e.kind = ValidityTraceEvent::Kind::kCacheMiss;
          trace->Add(std::move(e));
        }
        FGAC_ASSIGN_OR_RETURN(std::vector<InstantiatedView> views,
                              InstantiateAvailableViews(catalog_, ctx));
        ValidityChecker checker(catalog_, &state_, ResolvedValidityOptions());
        checker.set_guard(&guard);
        checker.set_trace(trace);
        checker.set_dag_options(exec::DagOptions{
            std::hash<std::string>{}(ctx.session_id()),
            ctx.scheduler_weight(),
            act != nullptr ? &act->progress() : nullptr});
        Result<ValidityReport> verdict = [&] {
          // The span covers exactly the inference work; rule firings and
          // probe batches nest under it.
          common::ScopedSpan validity_span(tctx, "validity.check");
          common::TraceContext validity_ctx = validity_span.ChildContext();
          if (tctx != nullptr) checker.set_span_context(&validity_ctx);
          return checker.Check(plan, views);
        }();
        if (!verdict.ok()) {
          StatusCode code = verdict.status().code();
          // kCancelled always propagates — the user asked to stop, not to
          // get a cheaper answer. Only blown budgets are degradable.
          bool budget_blown = code == StatusCode::kTimeout ||
                              code == StatusCode::kResourceExhausted;
          note_guard_trip(verdict.status());
          if (budget_blown &&
              limits.degrade_policy == common::DegradePolicy::kTruman) {
            // Principled degradation (paper Section 3 vs 4): the validity
            // test could not finish within budget, so fall back to the
            // Truman rewriter — answer against the user's policy views and
            // flag the result as filtered. Sound (never reveals more than
            // the views), though possibly misleading; never cached as a
            // verdict.
            common::ScopedSpan rewrite_span(tctx, "truman.rewrite");
            rewrite_span.set_detail("degraded: " + verdict.status().message());
            FGAC_ASSIGN_OR_RETURN(PlanPtr rewritten,
                                  TrumanRewrite(plan, catalog_, ctx));
            to_run = algebra::NormalizePlan(rewritten);
            out.degraded_to_truman = true;
            out.validity = ValidityReport{};
            out.validity.reason =
                "degraded to Truman rewriting: " + verdict.status().message();
            metrics_.counter("queries.degraded_to_truman").Increment();
            if (audit != nullptr) {
              audit->verdict = "degraded_to_truman";
              audit->rules = verdict.status().message();
            }
            if (trace != nullptr) {
              ValidityTraceEvent e;
              e.kind = ValidityTraceEvent::Kind::kDegraded;
              e.detail = out.validity.reason;
              e.guard_rows = guard.rows_charged();
              e.guard_bytes = guard.bytes_charged();
              trace->Add(std::move(e));
            }
            break;
          }
          return verdict.status();
        }
        out.validity = std::move(verdict).value();
        metrics_.counter("validity.groups_pruned")
            .Increment(out.validity.groups_pruned);
        metrics_.counter("validity.exprs_skipped")
            .Increment(out.validity.exprs_skipped);
        // A verdict reached after the probe budget blew is sound to act on
        // once but must never be cached: with budget the check could have
        // proved more, and a cached entry would outlive the exhaustion.
        if (out.validity.probe_budget_exhausted) {
          metrics_.counter("validity.probe_budget_exhausted").Increment();
        } else if (options_.enable_validity_cache) {
          if (prep != nullptr) {
            stmt_cache_.InsertVerdict(stmt_key(), prep->exec_fp,
                                      data_version(), out.validity);
          } else {
            cache_.Insert(ctx.user(), fp, catalog_version(), policy_epoch(),
                          data_version(), out.validity);
          }
        }
      }
      uint64_t validity_ns = elapsed_ns(validity_t0);
      metrics_.histogram("validity.check_us").Record(validity_ns / 1000);
      if (stats != nullptr) stats->set_validity_nanos(validity_ns);
      if (audit != nullptr) {
        audit->from_cache = out.validity_from_cache;
        audit->rules = out.validity.justification;
        audit->probes = out.validity.c3_probes;
        audit->verdict = !out.validity.valid        ? "rejected"
                         : out.validity.unconditional ? "unconditional"
                                                      : "conditional";
      }
      if (!out.validity.valid) {
        // The Non-Truman model rejects outright rather than silently
        // restricting the answer (Section 4).
        metrics_.counter("queries.rejected").Increment();
        return Status::NotAuthorized(out.validity.reason);
      }
      break;
    }
  }

  if (act != nullptr) {
    // Stamp the charges accumulated so far (validity probes) before the
    // phase flips — the watchdog's progress tuple sees both move together.
    act->StampGuard(guard.rows_charged(), guard.bytes_charged());
    act->set_phase(common::StatementPhase::kExec);
  }
  auto exec_t0 = Clock::now();
  Result<Relation> ran = [&] {
    common::ScopedSpan exec_span(tctx, "exec");
    common::TraceContext exec_ctx = exec_span.ChildContext();
    return RunPlan(to_run, ctx, &guard, stats,
                   tctx != nullptr ? &exec_ctx : nullptr);
  }();
  uint64_t exec_ns = elapsed_ns(exec_t0);
  metrics_.histogram("exec.run_us").Record(exec_ns / 1000);
  if (stats != nullptr) stats->set_exec_nanos(exec_ns);
  if (!ran.ok()) {
    note_guard_trip(ran.status());
    return ran.status();
  }
  out.relation = std::move(ran).value();
  // The optimizer strips display names; restore the user-visible ones.
  Relation named(algebra::OutputNames(*plan));
  named.mutable_rows() = std::move(out.relation.mutable_rows());
  out.relation = std::move(named);
  return out;
}

void Database::MaybeCaptureSlowQuery(const SessionContext& ctx,
                                     QueryProfile* profile,
                                     const common::AuditEvent* audit,
                                     const Result<ExecResult>& r,
                                     uint64_t duration_us) {
  if (!slow_log_.enabled()) return;
  common::StatementActivity* act = g_current_activity;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  if (act != nullptr) {
    // GuardChargeCapture stamped the final charges on RunSelectImpl exit.
    rows = act->guard_rows();
    bytes = act->guard_bytes();
  } else if (audit != nullptr) {
    rows = audit->guard_rows;
    bytes = audit->guard_bytes;
  }
  if (!slow_log_.ShouldCapture(duration_us, rows, bytes)) return;
  metrics_.counter("slow_query.captures").Increment();
  SlowQueryRecord rec;
  rec.user = ctx.user();
  rec.session = ctx.session_id();
  if (act != nullptr) {
    rec.statement = act->statement();
  } else if (audit != nullptr) {
    rec.statement = audit->statement;
  }
  if (audit != nullptr) rec.verdict = audit->verdict;
  rec.status = r.ok() ? "ok" : AuditStatusName(r.status().code());
  rec.duration_us = duration_us;
  if (profile != nullptr && profile->stats != nullptr) {
    rec.validity_us = profile->stats->validity_nanos() / 1000;
    rec.exec_us = profile->stats->exec_nanos() / 1000;
  }
  if (act != nullptr) {
    const common::DagProgress& p = act->progress();
    rec.queue_wait_us = p.queue_wait_us.load(std::memory_order_relaxed);
    rec.run_us = p.run_us.load(std::memory_order_relaxed);
    rec.admission_wait_us = act->admission_wait_us();
  }
  rec.guard_rows = rows;
  rec.guard_bytes = bytes;
  if (profile != nullptr && profile->trace != nullptr &&
      !profile->trace->events().empty()) {
    rec.trace_text = profile->trace->ToText();
  }
  if (profile != nullptr && profile->stats != nullptr &&
      profile->stats->executed_plan() != nullptr) {
    rec.stats_text = profile->stats->Render();
  }
  if (audit_ != nullptr && audit_->enabled()) {
    // The durable copy: the JSON-lines audit sink carries the capture even
    // after the in-memory ring rolls over.
    common::AuditEvent ev;
    ev.user = rec.user;
    ev.session = rec.session;
    ev.mode = EnforcementModeName(ctx.mode());
    ev.statement = rec.statement;
    ev.statement_hash = common::AuditStatementHash(rec.statement);
    ev.verdict = "slow_query";
    ev.rules = "slow query: " + std::to_string(duration_us) +
               "us, guard rows " + std::to_string(rows) + ", guard bytes " +
               std::to_string(bytes);
    ev.duration_us = static_cast<int64_t>(duration_us);
    ev.guard_rows = rows;
    ev.guard_bytes = bytes;
    ev.status = rec.status;
    audit_->Append(std::move(ev));
  }
  slow_log_.Add(std::move(rec));
}

namespace {

/// FNV fingerprint of the session parameterization (name -> value, in the
/// map's sorted order) — the cache dimension that captures $user-id-style
/// session parameters feeding view instantiation.
uint64_t SessionParamsFingerprint(const SessionContext& ctx) {
  uint64_t fp = 1469598103934665603ULL;
  for (const auto& [name, value] : ctx.params()) {
    fp = fp * 1099511628211ULL ^ std::hash<std::string>()(name);
    fp = fp * 1099511628211ULL ^ value.Hash();
  }
  return fp;
}

}  // namespace

Result<std::shared_ptr<PreparedStatement>> Database::Prepare(
    const sql::PrepareStmt& stmt, const SessionContext& ctx) {
  auto t0 = std::chrono::steady_clock::now();
  common::AuditEvent ev = StartAudit(ctx, sql::StmtToSql(stmt));
  ActivityScope activity_scope(activity_, ctx, ev.statement);
  auto run = [&]() -> Result<std::shared_ptr<PreparedStatement>> {
    auto prep = std::make_shared<PreparedStatement>();
    prep->name = stmt.name;
    prep->select = stmt.select;
    prep->text = sql::SelectToSql(*stmt.select);
    algebra::Binder::Options options;
    options.params = ctx.params();
    options.defer_unbound_params = true;
    algebra::Binder binder(catalog_, options);
    FGAC_ASSIGN_OR_RETURN(PlanPtr plan, binder.BindSelect(*stmt.select));
    // Placeholders must be exactly $1..$n: positional EXECUTE arguments
    // have no way to address a gap, and a non-numeric leftover is an
    // ordinary unbound parameter the ad-hoc path would also reject.
    std::vector<std::string> open = algebra::CollectPlanParams(plan);
    std::set<unsigned long> numbers;
    for (const std::string& name : open) {
      if (name.empty() ||
          name.find_first_not_of("0123456789") != std::string::npos) {
        return Status::BindError("unbound parameter $" + name +
                                 " in PREPARE (placeholders are $1..$n)");
      }
      numbers.insert(std::stoul(name));
    }
    unsigned long expect = 1;
    for (unsigned long n : numbers) {
      if (n != expect) {
        return Status::InvalidArgument(
            "PREPARE placeholders must be numbered contiguously from $1; "
            "missing $" + std::to_string(expect));
      }
      ++expect;
    }
    prep->placeholders.reserve(numbers.size());
    for (unsigned long n = 1; n <= numbers.size(); ++n) {
      prep->placeholders.push_back(std::to_string(n));
    }
    prep->plan = plan;
    prep->plan_fp = algebra::PlanFingerprint(plan);
    prep->catalog_version = catalog_version();
    prep->policy_epoch = policy_epoch();
    prep->session_params_fp = SessionParamsFingerprint(ctx);
    metrics_.counter("prepared.prepares").Increment();
    return prep;
  };
  Result<std::shared_ptr<PreparedStatement>> r = run();
  FinishAudit(&ev, r.ok() ? Status::OK() : r.status(), 0, t0);
  return r;
}

Result<ExecResult> Database::ExecutePrepared(
    const std::shared_ptr<PreparedStatement>& prep,
    const std::vector<sql::ExprPtr>& args, const SessionContext& ctx) {
  if (prep == nullptr) {
    return Status::InvalidArgument("null prepared statement");
  }
  auto t0 = std::chrono::steady_clock::now();
  std::string text = "EXECUTE " + prep->name;
  if (!args.empty()) {
    text += " (";
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) text += ", ";
      text += sql::ExprToSql(args[i]);
    }
    text += ")";
  }
  common::AuditEvent ev = StartAudit(ctx, text);
  ActivityScope activity_scope(activity_, ctx, text);
  Result<ExecResult> r = [&] {
    if (!ctx.profile()) {
      return ExecutePreparedImpl(*prep, args, ctx, nullptr, &ev);
    }
    QueryProfile profile;
    return ExecutePreparedImpl(*prep, args, ctx, &profile, &ev);
  }();
  uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  metrics_.histogram("prepared.execute_us").Record(us);
  if (r.ok()) {
    FinishAudit(&ev, Status::OK(),
                static_cast<int64_t>(r.value().relation.num_rows()), t0);
  } else {
    FinishAudit(&ev, r.status(), 0, t0);
  }
  return r;
}

Result<ExecResult> Database::ExecutePreparedImpl(
    PreparedStatement& prep, const std::vector<sql::ExprPtr>& args,
    const SessionContext& ctx, QueryProfile* profile,
    common::AuditEvent* audit) {
  metrics_.counter("prepared.executes").Increment();
  if (args.size() != prep.placeholders.size()) {
    return Status::InvalidArgument(
        "prepared statement '" + prep.name + "' takes " +
        std::to_string(prep.placeholders.size()) + " argument(s), got " +
        std::to_string(args.size()));
  }
  // Arguments are constant expressions (literals, session $parameters,
  // arithmetic over them): bind them against an empty scope and fold.
  static const TableSchema kEmptySchema("", {});
  std::map<std::string, Value> bindings;
  uint64_t params_fp = SessionParamsFingerprint(ctx);
  uint64_t exec_fp = params_fp;
  for (size_t i = 0; i < args.size(); ++i) {
    FGAC_ASSIGN_OR_RETURN(
        algebra::ScalarPtr scalar,
        algebra::Binder::BindOverTable(args[i], kEmptySchema, ctx.params()));
    Row empty;
    FGAC_ASSIGN_OR_RETURN(Value v, algebra::EvalScalar(scalar, empty));
    exec_fp = exec_fp * 1099511628211ULL ^ v.Hash();
    bindings[prep.placeholders[i]] = std::move(v);
  }

  // Revalidate the bind-state cache: any catalog / policy / session-param
  // change since the last execution forces a rebind (fail-closed; the
  // verdict and rewrite caches key on the versions too, so their stale
  // entries die with it).
  PlanPtr parameterized;
  uint64_t stmt_fp = 0;
  {
    std::lock_guard<std::mutex> lock(prep.mu);
    uint64_t cv = catalog_version();
    uint64_t pe = policy_epoch();
    if (prep.plan == nullptr || prep.catalog_version != cv ||
        prep.policy_epoch != pe || prep.session_params_fp != params_fp) {
      algebra::Binder::Options options;
      options.params = ctx.params();
      options.defer_unbound_params = true;
      algebra::Binder binder(catalog_, options);
      FGAC_ASSIGN_OR_RETURN(PlanPtr plan, binder.BindSelect(*prep.select));
      prep.plan = std::move(plan);
      prep.plan_fp = algebra::PlanFingerprint(prep.plan);
      prep.catalog_version = cv;
      prep.policy_epoch = pe;
      prep.session_params_fp = params_fp;
      metrics_.counter("prepared.rebinds").Increment();
    }
    parameterized = prep.plan;
    stmt_fp = prep.plan_fp;
  }

  PlanPtr concrete =
      bindings.empty()
          ? parameterized
          : algebra::NormalizePlan(
                algebra::BindPlanParams(parameterized, bindings));

  PreparedRun run;
  run.stmt_fp = stmt_fp;
  run.params_fp = params_fp;
  run.exec_fp = exec_fp;
  run.text = &prep.text;
  run.parameterized = &parameterized;
  run.bindings = &bindings;
  return RunSelect(concrete, ctx, profile, audit, &run);
}

void Database::AuditSessionStatement(const SessionContext& ctx,
                                     const std::string& statement,
                                     const Status& st) {
  auto t0 = std::chrono::steady_clock::now();
  common::AuditEvent ev = StartAudit(ctx, statement);
  FinishAudit(&ev, st, 0, t0);
}

void Database::AppendAnalyzeReport(std::string* text,
                                   const SessionContext& ctx,
                                   const Result<ExecResult>& run,
                                   const QueryProfile& profile) const {
  if (run.ok()) {
    const ExecResult& res = run.value();
    if (ctx.mode() == EnforcementMode::kNonTruman) {
      if (res.degraded_to_truman) {
        *text += "validity: DEGRADED (" + res.validity.reason + ")\n";
      } else {
        *text += std::string("validity: ") +
                 (res.validity.unconditional ? "unconditionally"
                                             : "conditionally") +
                 " valid via " + res.validity.justification +
                 (res.validity_from_cache ? " [cached verdict]" : "") +
                 (res.validity.probe_budget_exhausted
                      ? " [probe budget exhausted]"
                      : "") +
                 "\n";
      }
    }
    *text += "result: " + std::to_string(res.relation.num_rows()) +
             " row(s)\n";
  } else {
    *text += "validity: REJECTED (" + std::string(run.status().message()) +
             ")\n";
  }
  if (profile.stats != nullptr && profile.stats->executed_plan() != nullptr) {
    *text += profile.stats->Render();
  }
  if (profile.trace != nullptr && !profile.trace->events().empty()) {
    *text += "validity trace:\n" + profile.trace->ToText();
  }
}

ExecResult Database::ExplainTextResult(const std::string& text) {
  ExecResult out;
  out.relation = storage::Relation({"explain"});
  std::string line;
  for (char c : text) {
    if (c == '\n') {
      out.relation.AddRow({Value::String(line)});
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty()) out.relation.AddRow({Value::String(line)});
  return out;
}

Result<ExecResult> Database::ExplainPrepared(
    const sql::ExplainStmt& stmt,
    const std::shared_ptr<PreparedStatement>& prep,
    const SessionContext& ctx) {
  if (stmt.execute == nullptr) {
    return Status::InvalidArgument("not an EXPLAIN EXECUTE statement");
  }
  if (prep == nullptr) {
    return Status::InvalidArgument("unknown prepared statement '" +
                                   stmt.execute->name + "'");
  }
  auto t0 = std::chrono::steady_clock::now();
  common::AuditEvent ev = StartAudit(ctx, sql::StmtToSql(stmt));
  ActivityScope activity_scope(activity_, ctx, ev.statement);
  auto run_all = [&]() -> Result<ExecResult> {
    std::string text = "prepared statement: " + prep->name + "\n";
    Result<ExecResult> run = ExecResult{};
    QueryProfile profile;
    if (stmt.analyze) {
      // Run first so the report reflects this call's bind state (a catalog
      // or policy change rebinds inside ExecutePreparedImpl).
      run = ExecutePreparedImpl(*prep, stmt.execute->args, ctx, &profile, &ev);
      if (!run.ok() && run.status().code() != StatusCode::kNotAuthorized) {
        return run.status();
      }
    }
    {
      std::lock_guard<std::mutex> lock(prep->mu);
      if (prep->plan != nullptr) {
        text += "parameterized plan:\n" + algebra::PlanToString(prep->plan);
      }
    }
    if (stmt.analyze) {
      // Cache provenance: which enforcement work the statement cache
      // skipped for THIS call.
      if (run.ok()) {
        if (ctx.mode() == EnforcementMode::kTruman) {
          text += std::string("truman rewrite: ") +
                  (run.value().truman_plan_from_cache
                       ? "statement-cache hit"
                       : "rewritten this call") +
                  "\n";
        } else if (ctx.mode() == EnforcementMode::kNonTruman &&
                   !run.value().degraded_to_truman) {
          text += std::string("verdict source: ") +
                  (run.value().validity_from_cache ? "statement-cache hit"
                                                   : "validity checker") +
                  "\n";
        }
      }
      AppendAnalyzeReport(&text, ctx, run, profile);
    }
    return ExplainTextResult(text);
  };
  Result<ExecResult> r = run_all();
  if (r.ok()) {
    FinishAudit(&ev, Status::OK(),
                static_cast<int64_t>(r.value().relation.num_rows()), t0);
  } else {
    FinishAudit(&ev, r.status(), 0, t0);
  }
  return r;
}

Result<ExecResult> Database::ExecuteExplain(const sql::ExplainStmt& stmt,
                                            const SessionContext& ctx,
                                            common::AuditEvent* audit) {
  if (stmt.execute != nullptr) {
    // EXPLAIN EXECUTE names a prepared statement, and registries are per
    // connection — only a server session can resolve the name.
    return Status::InvalidArgument(
        "EXPLAIN EXECUTE requires a connection session "
        "(server::ConnectionManager)");
  }
  FGAC_ASSIGN_OR_RETURN(PlanPtr plan, BindQuery(*stmt.select, ctx));
  std::string text = "canonical plan:\n" + algebra::PlanToString(plan);

  auto row_count = [this](const std::string& table) -> double {
    const storage::TableData* t = state_.GetTable(table);
    return t == nullptr ? 1000.0 : static_cast<double>(t->num_rows());
  };
  FGAC_ASSIGN_OR_RETURN(
      optimizer::OptimizeResult best,
      optimizer::Optimize(plan, options_.exec_expand, row_count));
  text += "optimized plan (est. cost " + std::to_string(best.estimated_cost) +
          ", est. rows " + std::to_string(best.estimated_rows) + "):\n" +
          algebra::PlanToString(best.plan);

  if (stmt.analyze) {
    // EXPLAIN ANALYZE: actually run the statement with profiling and
    // annotate. A rejected query is a successful EXPLAIN — the trace of
    // WHY it was rejected is the whole point — so kNotAuthorized is
    // rendered, not propagated; real failures still propagate.
    QueryProfile profile;
    // The inner run shares the EXPLAIN's audit event: the audit row shows
    // the verdict/probes of the analyzed statement under the EXPLAIN text.
    Result<ExecResult> run =
        ExecuteSelectImpl(*stmt.select, ctx, &profile, audit);
    if (!run.ok() && run.status().code() != StatusCode::kNotAuthorized) {
      return run.status();
    }
    AppendAnalyzeReport(&text, ctx, run, profile);
  } else if (ctx.mode() == EnforcementMode::kNonTruman) {
    FGAC_ASSIGN_OR_RETURN(std::vector<InstantiatedView> views,
                          InstantiateAvailableViews(catalog_, ctx));
    ValidityChecker checker(catalog_, &state_, ResolvedValidityOptions());
    FGAC_ASSIGN_OR_RETURN(ValidityReport report, checker.Check(plan, views));
    if (report.valid) {
      text += std::string("validity: ") +
              (report.unconditional ? "unconditionally" : "conditionally") +
              " valid via " + report.justification + "\n";
      Result<PlanPtr> witness = checker.ExtractWitness();
      if (witness.ok()) {
        text += "witness rewriting q' over the authorization views:\n" +
                algebra::PlanToString(witness.value());
      }
    } else {
      text += "validity: REJECTED (" + report.reason + ")\n";
    }
  } else if (ctx.mode() == EnforcementMode::kTruman) {
    FGAC_ASSIGN_OR_RETURN(PlanPtr rewritten, TrumanRewrite(plan, catalog_, ctx));
    text += "truman-rewritten plan:\n" +
            algebra::PlanToString(algebra::NormalizePlan(rewritten));
  }

  return ExplainTextResult(text);
}

Status Database::CheckRowConstraints(const TableSchema& schema,
                                     const Row& row) const {
  if (row.size() != schema.num_columns()) {
    return Status::ConstraintViolation(
        "row arity does not match table '" + schema.name() + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const catalog::Column& col = schema.column(i);
    if (row[i].is_null()) {
      if (col.not_null) {
        return Status::ConstraintViolation("column '" + col.name +
                                           "' is NOT NULL");
      }
      continue;
    }
    if (!catalog::ValueFitsType(row[i], col.type)) {
      return Status::ConstraintViolation(
          "value " + row[i].ToString() + " does not fit column '" + col.name +
          "' of type " + catalog::TypeIdName(col.type));
    }
  }
  // Primary-key uniqueness.
  if (schema.has_primary_key()) {
    const storage::TableData* data = state_.GetTable(schema.name());
    if (data != nullptr) {
      for (const Row& existing : data->rows()) {
        bool same = true;
        for (size_t idx : schema.primary_key()) {
          if (!(existing[idx] == row[idx])) {
            same = false;
            break;
          }
        }
        if (same) {
          return Status::ConstraintViolation("duplicate primary key in '" +
                                             schema.name() + "'");
        }
      }
    }
  }
  return Status::OK();
}

Status Database::CheckForeignKeys(const std::string& table,
                                  const Row& row) const {
  const TableSchema* schema = catalog_.GetTable(table);
  for (const catalog::InclusionDependency& dep : catalog_.constraints()) {
    if (dep.kind != catalog::InclusionDependency::Kind::kForeignKey ||
        dep.src_table != table) {
      continue;
    }
    const TableSchema* dst = catalog_.GetTable(dep.dst_table);
    const storage::TableData* dst_data = state_.GetTable(dep.dst_table);
    if (dst == nullptr || dst_data == nullptr) continue;
    std::vector<size_t> src_idx, dst_idx;
    for (size_t i = 0; i < dep.src_columns.size(); ++i) {
      src_idx.push_back(*schema->FindColumn(dep.src_columns[i]));
      dst_idx.push_back(*dst->FindColumn(dep.dst_columns[i]));
    }
    // NULL foreign keys are exempt (SQL MATCH SIMPLE).
    bool has_null = std::any_of(src_idx.begin(), src_idx.end(),
                                [&](size_t i) { return row[i].is_null(); });
    if (has_null) continue;
    bool found = false;
    for (const Row& candidate : dst_data->rows()) {
      bool match = true;
      for (size_t i = 0; i < src_idx.size(); ++i) {
        if (!(candidate[dst_idx[i]] == row[src_idx[i]])) {
          match = false;
          break;
        }
      }
      if (match) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::ConstraintViolation(
          "foreign key '" + dep.name + "' violated: no matching row in '" +
          dep.dst_table + "'");
    }
  }
  return Status::OK();
}

Result<ExecResult> Database::ExecuteInsert(const sql::InsertStmt& stmt,
                                           const SessionContext& ctx) {
  if (system_tables_ready_ && IsSystemObject(stmt.table)) {
    return Status::InvalidArgument("system table '" + stmt.table +
                                   "' is read-only");
  }
  const TableSchema* schema = catalog_.GetTable(stmt.table);
  if (schema == nullptr) {
    return Status::CatalogError("unknown table '" + stmt.table + "'");
  }
  // Column mapping.
  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema->num_columns(); ++i) targets.push_back(i);
  } else {
    for (const std::string& c : stmt.columns) {
      std::optional<size_t> idx = schema->FindColumn(c);
      if (!idx.has_value()) {
        return Status::BindError("unknown column '" + c + "'");
      }
      targets.push_back(*idx);
    }
  }

  UpdateAuthorizer authorizer(catalog_, ctx);
  std::vector<Row> pending;
  for (const std::vector<sql::ExprPtr>& value_row : stmt.rows) {
    if (value_row.size() != targets.size()) {
      return Status::BindError("INSERT value count mismatch");
    }
    Row row(schema->num_columns(), Value::Null());
    Row empty;
    for (size_t i = 0; i < value_row.size(); ++i) {
      FGAC_ASSIGN_OR_RETURN(
          algebra::ScalarPtr scalar,
          algebra::Binder::BindOverTable(value_row[i], *schema, ctx.params()));
      FGAC_ASSIGN_OR_RETURN(Value v, algebra::EvalScalar(scalar, empty));
      row[targets[i]] =
          catalog::CoerceToType(v, schema->column(targets[i]).type);
    }
    // Authorization precedes integrity checking so a denied user cannot
    // probe constraint state (e.g. learn which keys exist).
    if (ctx.mode() != EnforcementMode::kNone) {
      FGAC_ASSIGN_OR_RETURN(bool ok, authorizer.CheckInsert(stmt.table, row));
      if (!ok) {
        return Status::NotAuthorized("INSERT into '" + stmt.table +
                                     "' not authorized for user '" +
                                     ctx.user() + "'");
      }
    }
    FGAC_RETURN_NOT_OK(CheckRowConstraints(*schema, row));
    FGAC_RETURN_NOT_OK(CheckForeignKeys(stmt.table, row));
    pending.push_back(std::move(row));
  }

  storage::TableData* data = state_.GetMutableTable(stmt.table);
  ExecResult out;
  out.affected_rows = static_cast<int64_t>(pending.size());
  data->InsertRows(std::move(pending));
  return out;
}

Result<ExecResult> Database::ExecuteUpdate(const sql::UpdateStmt& stmt,
                                           const SessionContext& ctx) {
  if (system_tables_ready_ && IsSystemObject(stmt.table)) {
    return Status::InvalidArgument("system table '" + stmt.table +
                                   "' is read-only");
  }
  const TableSchema* schema = catalog_.GetTable(stmt.table);
  if (schema == nullptr) {
    return Status::CatalogError("unknown table '" + stmt.table + "'");
  }
  algebra::ScalarPtr where;
  if (stmt.where != nullptr) {
    FGAC_ASSIGN_OR_RETURN(where, algebra::Binder::BindOverTable(
                                     stmt.where, *schema, ctx.params()));
  }
  struct BoundAssign {
    size_t column;
    algebra::ScalarPtr value;
  };
  std::vector<BoundAssign> assigns;
  std::vector<std::string> changed_columns;
  for (const auto& [col, expr] : stmt.assignments) {
    std::optional<size_t> idx = schema->FindColumn(col);
    if (!idx.has_value()) return Status::BindError("unknown column '" + col + "'");
    FGAC_ASSIGN_OR_RETURN(
        algebra::ScalarPtr value,
        algebra::Binder::BindOverTable(expr, *schema, ctx.params()));
    assigns.push_back({*idx, std::move(value)});
    changed_columns.push_back(col);
  }

  storage::TableData* data = state_.GetMutableTable(stmt.table);
  UpdateAuthorizer authorizer(catalog_, ctx);
  int64_t affected = 0;

  // Two phases: compute all new images (with checks), then apply, so a
  // failed check mid-way leaves the table untouched.
  std::vector<std::pair<size_t, Row>> updates;
  for (size_t i = 0; i < data->rows().size(); ++i) {
    const Row& old_row = data->rows()[i];
    if (where != nullptr) {
      FGAC_ASSIGN_OR_RETURN(bool pass, algebra::EvalPredicate(where, old_row));
      if (!pass) continue;
    }
    Row new_row = old_row;
    for (const BoundAssign& a : assigns) {
      FGAC_ASSIGN_OR_RETURN(Value v, algebra::EvalScalar(a.value, old_row));
      new_row[a.column] =
          catalog::CoerceToType(v, schema->column(a.column).type);
    }
    if (ctx.mode() != EnforcementMode::kNone) {
      FGAC_ASSIGN_OR_RETURN(bool ok, authorizer.CheckUpdate(stmt.table, old_row,
                                                            new_row,
                                                            changed_columns));
      if (!ok) {
        return Status::NotAuthorized("UPDATE on '" + stmt.table +
                                     "' not authorized for user '" +
                                     ctx.user() + "'");
      }
    }
    for (size_t c = 0; c < new_row.size(); ++c) {
      const catalog::Column& col = schema->column(c);
      if (new_row[c].is_null() && col.not_null) {
        return Status::ConstraintViolation("column '" + col.name +
                                           "' is NOT NULL");
      }
      if (!new_row[c].is_null() &&
          !catalog::ValueFitsType(new_row[c], col.type)) {
        return Status::ConstraintViolation("type mismatch for column '" +
                                           col.name + "'");
      }
    }
    FGAC_RETURN_NOT_OK(CheckForeignKeys(stmt.table, new_row));
    updates.emplace_back(i, std::move(new_row));
  }
  for (auto& [idx, new_row] : updates) {
    data->UpdateRow(idx, std::move(new_row));
    ++affected;
  }
  ExecResult out;
  out.affected_rows = affected;
  return out;
}

Result<ExecResult> Database::ExecuteDelete(const sql::DeleteStmt& stmt,
                                           const SessionContext& ctx) {
  if (system_tables_ready_ && IsSystemObject(stmt.table)) {
    return Status::InvalidArgument("system table '" + stmt.table +
                                   "' is read-only");
  }
  const TableSchema* schema = catalog_.GetTable(stmt.table);
  if (schema == nullptr) {
    return Status::CatalogError("unknown table '" + stmt.table + "'");
  }
  algebra::ScalarPtr where;
  if (stmt.where != nullptr) {
    FGAC_ASSIGN_OR_RETURN(where, algebra::Binder::BindOverTable(
                                     stmt.where, *schema, ctx.params()));
  }
  storage::TableData* data = state_.GetMutableTable(stmt.table);
  UpdateAuthorizer authorizer(catalog_, ctx);
  std::vector<size_t> to_delete;
  for (size_t i = 0; i < data->rows().size(); ++i) {
    const Row& row = data->rows()[i];
    if (where != nullptr) {
      FGAC_ASSIGN_OR_RETURN(bool pass, algebra::EvalPredicate(where, row));
      if (!pass) continue;
    }
    if (ctx.mode() != EnforcementMode::kNone) {
      FGAC_ASSIGN_OR_RETURN(bool ok, authorizer.CheckDelete(stmt.table, row));
      if (!ok) {
        return Status::NotAuthorized("DELETE from '" + stmt.table +
                                     "' not authorized for user '" +
                                     ctx.user() + "'");
      }
    }
    to_delete.push_back(i);
  }
  data->EraseIndices(to_delete);
  ExecResult out;
  out.affected_rows = static_cast<int64_t>(to_delete.size());
  return out;
}

Result<ExecResult> Database::ApplyCreateTable(const sql::CreateTableStmt& stmt) {
  if (system_tables_ready_ && IsSystemObject(stmt.name)) {
    return Status::InvalidArgument("the fgac_ namespace is reserved for "
                                   "system tables");
  }
  std::vector<catalog::Column> columns;
  for (const sql::ColumnDef& def : stmt.columns) {
    columns.push_back(
        {def.name, catalog::TypeFromSql(def.type), def.not_null});
  }
  TableSchema schema(stmt.name, std::move(columns));
  std::vector<size_t> pk;
  for (const std::string& c : stmt.primary_key) {
    std::optional<size_t> idx = schema.FindColumn(c);
    if (!idx.has_value()) {
      return Status::CatalogError("PRIMARY KEY column '" + c + "' not found");
    }
    pk.push_back(*idx);
  }
  schema.set_primary_key(std::move(pk));
  FGAC_RETURN_NOT_OK(catalog_.AddTable(schema));
  FGAC_RETURN_NOT_OK(state_.CreateTable(stmt.name, schema.num_columns()));

  for (size_t i = 0; i < stmt.foreign_keys.size(); ++i) {
    const sql::ForeignKeyClause& fk = stmt.foreign_keys[i];
    catalog::InclusionDependency dep;
    dep.kind = catalog::InclusionDependency::Kind::kForeignKey;
    dep.name = "fk_" + stmt.name + "_" + std::to_string(i);
    dep.src_table = stmt.name;
    dep.src_columns = fk.columns;
    dep.dst_table = fk.ref_table;
    if (!fk.ref_columns.empty()) {
      dep.dst_columns = fk.ref_columns;
    } else {
      const TableSchema* ref = catalog_.GetTable(fk.ref_table);
      if (ref == nullptr) {
        return Status::CatalogError("referenced table '" + fk.ref_table +
                                    "' does not exist");
      }
      for (size_t idx : ref->primary_key()) {
        dep.dst_columns.push_back(ref->column(idx).name);
      }
      if (dep.dst_columns.empty()) {
        return Status::CatalogError("referenced table '" + fk.ref_table +
                                    "' has no primary key");
      }
    }
    FGAC_RETURN_NOT_OK(catalog_.AddConstraint(std::move(dep)));
  }
  ++catalog_version_;
  ExecResult out;
  out.message = "created table " + stmt.name;
  return out;
}

Result<ExecResult> Database::ApplyCreateView(const sql::CreateViewStmt& stmt) {
  if (system_tables_ready_ && IsSystemObject(stmt.name)) {
    return Status::InvalidArgument("the fgac_ namespace is reserved for "
                                   "system views");
  }
  catalog::ViewDefinition view;
  view.name = stmt.name;
  view.is_authorization = stmt.authorization;
  view.select = stmt.select;
  std::vector<std::string> params, access;
  stmt.select->CollectAllParams(&params, &access);
  std::sort(params.begin(), params.end());
  params.erase(std::unique(params.begin(), params.end()), params.end());
  std::sort(access.begin(), access.end());
  access.erase(std::unique(access.begin(), access.end()), access.end());
  view.parameters = std::move(params);
  view.access_parameters = std::move(access);
  FGAC_RETURN_NOT_OK(catalog_.AddView(std::move(view)));
  ++catalog_version_;
  ExecResult out;
  out.message = std::string("created ") +
                (stmt.authorization ? "authorization view " : "view ") +
                stmt.name;
  return out;
}

Result<ExecResult> Database::ApplyCreateInclusion(
    const sql::CreateInclusionStmt& stmt) {
  catalog::InclusionDependency dep;
  dep.kind = catalog::InclusionDependency::Kind::kDeclared;
  dep.name = stmt.name;
  dep.src_table = stmt.src_table;
  dep.src_columns = stmt.src_columns;
  dep.src_predicate = stmt.src_where;
  dep.dst_table = stmt.dst_table;
  dep.dst_columns = stmt.dst_columns;
  FGAC_RETURN_NOT_OK(catalog_.AddConstraint(std::move(dep)));
  ++catalog_version_;
  ExecResult out;
  out.message = "created inclusion dependency " + stmt.name;
  return out;
}

Result<ExecResult> Database::ApplyGrant(const sql::GrantStmt& stmt) {
  FGAC_RETURN_NOT_OK(catalog_.GrantView(stmt.object, stmt.grantee));
  ++catalog_version_;
  ExecResult out;
  out.message = "granted " + stmt.object + " to " + stmt.grantee;
  return out;
}

Result<ExecResult> Database::ApplyAuthorize(const sql::AuthorizeStmt& stmt) {
  if (!catalog_.HasTable(stmt.table)) {
    return Status::CatalogError("unknown table '" + stmt.table + "'");
  }
  catalog::UpdateAuthorization rule;
  switch (stmt.op) {
    case sql::AuthorizeStmt::Op::kInsert:
      rule.op = catalog::UpdateAuthorization::Op::kInsert;
      break;
    case sql::AuthorizeStmt::Op::kUpdate:
      rule.op = catalog::UpdateAuthorization::Op::kUpdate;
      break;
    case sql::AuthorizeStmt::Op::kDelete:
      rule.op = catalog::UpdateAuthorization::Op::kDelete;
      break;
  }
  rule.table = stmt.table;
  rule.columns = stmt.columns;
  rule.predicate = stmt.where;
  std::string grantee = stmt.grantee.empty() ? "public" : stmt.grantee;
  catalog_.GetOrCreatePrincipal(grantee)->update_authorizations.push_back(
      std::move(rule));
  // The principal mutation happened outside the catalog's own setters;
  // record it so cached update-authorization decisions cannot go stale.
  catalog_.BumpPolicyEpoch();
  ++catalog_version_;
  ExecResult out;
  out.message = "authorization rule added on " + stmt.table;
  return out;
}

Result<ExecResult> Database::ApplyDrop(const sql::DropStmt& stmt) {
  if (system_tables_ready_ && IsSystemObject(stmt.name)) {
    return Status::InvalidArgument("system object '" + stmt.name +
                                   "' cannot be dropped");
  }
  if (stmt.what == sql::DropStmt::What::kTable) {
    FGAC_RETURN_NOT_OK(catalog_.DropTable(stmt.name));
    FGAC_RETURN_NOT_OK(state_.DropTable(stmt.name));
  } else {
    FGAC_RETURN_NOT_OK(catalog_.DropView(stmt.name));
  }
  ++catalog_version_;
  ExecResult out;
  out.message = "dropped " + stmt.name;
  return out;
}

void Database::BootstrapSystemTables() {
  // The observability catalog, self-governed by FGAC: every user can read
  // their OWN audit rows / spans (parameterized per-user views, granted to
  // public and installed as the Truman policy views), while admin and a
  // dedicated auditor principal see everything.
  static constexpr std::string_view kBootstrap = R"sql(
    create table fgac_audit (
      seq bigint, at_ms bigint, user_name varchar, session_id varchar,
      mode varchar, statement varchar, statement_hash varchar,
      verdict varchar, rules varchar, probes bigint, guard_rows bigint,
      guard_bytes bigint, duration_us bigint, status varchar, error varchar,
      trace_id bigint, from_cache boolean, rows_out bigint);
    create table fgac_spans (
      trace_id bigint, span_id bigint, parent_id bigint, span_name varchar,
      user_name varchar, detail varchar, start_us bigint, duration_us bigint,
      thread_id bigint);
    create table fgac_sessions (
      session_id varchar, user_name varchar, active boolean,
      in_flight bigint, statements_run bigint, cache_hits bigint,
      current_statement varchar, current_elapsed_us bigint);
    create table fgac_activity (
      seq bigint, session_id varchar, user_name varchar, statement varchar,
      phase varchar, elapsed_us bigint, admission_wait_us bigint,
      guard_rows bigint, guard_bytes bigint, pipelines_total bigint,
      pipelines_done bigint, queue_wait_us bigint, run_us bigint);
    create table fgac_slow_queries (
      seq bigint, at_ms bigint, user_name varchar, session_id varchar,
      statement varchar, verdict varchar, status varchar,
      duration_us bigint, validity_us bigint, exec_us bigint,
      queue_wait_us bigint, run_us bigint, admission_wait_us bigint,
      guard_rows bigint, guard_bytes bigint, trace varchar, stats varchar);
    create table fgac_statement_cache (
      shard bigint, entries bigint, hits bigint, misses bigint,
      evictions bigint, invalidations bigint, collisions bigint);
    create authorization view fgac_my_audit as
      select * from fgac_audit where user_name = $user-id;
    create authorization view fgac_my_spans as
      select * from fgac_spans where user_name = $user-id;
    create authorization view fgac_my_sessions as
      select * from fgac_sessions where user_name = $user-id;
    create authorization view fgac_my_activity as
      select * from fgac_activity where user_name = $user-id;
    create authorization view fgac_my_slow_queries as
      select * from fgac_slow_queries where user_name = $user-id;
    create authorization view fgac_audit_all as select * from fgac_audit;
    create authorization view fgac_spans_all as select * from fgac_spans;
    create authorization view fgac_sessions_all as
      select * from fgac_sessions;
    create authorization view fgac_activity_all as
      select * from fgac_activity;
    create authorization view fgac_slow_queries_all as
      select * from fgac_slow_queries;
    create authorization view fgac_statement_cache_all as
      select * from fgac_statement_cache;
    grant select on fgac_my_audit to public;
    grant select on fgac_my_spans to public;
    grant select on fgac_my_sessions to public;
    grant select on fgac_my_activity to public;
    grant select on fgac_my_slow_queries to public;
    grant select on fgac_audit_all to admin;
    grant select on fgac_spans_all to admin;
    grant select on fgac_sessions_all to admin;
    grant select on fgac_activity_all to admin;
    grant select on fgac_slow_queries_all to admin;
    grant select on fgac_statement_cache_all to admin;
    grant select on fgac_audit_all to auditor;
    grant select on fgac_spans_all to auditor;
    grant select on fgac_sessions_all to auditor;
    grant select on fgac_activity_all to auditor;
    grant select on fgac_slow_queries_all to auditor;
    grant select on fgac_statement_cache_all to auditor;
  )sql";
  Result<std::vector<sql::StmtPtr>> stmts =
      sql::Parser::ParseScript(kBootstrap);
  if (!stmts.ok()) return;  // unreachable: the script is a compile-time fixture
  SessionContext admin = AdminContext();
  for (const sql::StmtPtr& stmt : stmts.value()) {
    Result<ExecResult> r = ExecuteStmt(*stmt, admin, nullptr);
    if (!r.ok()) {
      std::fprintf(stderr, "FGAC bootstrap failed on %s: %s\n",
                   sql::StmtToSql(*stmt).c_str(),
                   r.status().ToString().c_str());
      return;
    }
  }
  // Truman mode transparently narrows bare `select * from fgac_audit` to
  // the session user's own rows. fgac_statement_cache deliberately has NO
  // Truman view: its rows carry no user dimension, so non-admin access
  // fails rather than leaking cross-principal cache behavior.
  (void)catalog_.SetTrumanView("fgac_audit", "fgac_my_audit");
  (void)catalog_.SetTrumanView("fgac_spans", "fgac_my_spans");
  (void)catalog_.SetTrumanView("fgac_sessions", "fgac_my_sessions");
  (void)catalog_.SetTrumanView("fgac_activity", "fgac_my_activity");
  (void)catalog_.SetTrumanView("fgac_slow_queries", "fgac_my_slow_queries");
}

Status Database::RefreshSystemTables() {
  // Fault site for introspection tests: a statement reading an fgac_ table
  // sees the refresh fail cleanly instead of scanning stale rows.
  FGAC_FAULT_POINT("introspect.snapshot");
  if (audit_ != nullptr) {
    // Drain the ring first so the table reflects everything emitted before
    // this statement started.
    audit_->Flush();
    storage::TableData* audit_table = state_.GetMutableTable("fgac_audit");
    if (audit_table != nullptr) {
      std::vector<Row> rows;
      for (const common::AuditEvent& e : audit_->SnapshotRetained()) {
        Row r;
        r.reserve(18);
        r.push_back(Value::Int(static_cast<int64_t>(e.seq)));
        r.push_back(Value::Int(e.wall_ms));
        r.push_back(Value::String(e.user));
        r.push_back(Value::String(e.session));
        r.push_back(Value::String(e.mode));
        r.push_back(Value::String(e.statement));
        r.push_back(Value::String(common::AuditHashHex(e.statement_hash)));
        r.push_back(Value::String(e.verdict));
        r.push_back(Value::String(e.rules));
        r.push_back(Value::Int(static_cast<int64_t>(e.probes)));
        r.push_back(Value::Int(static_cast<int64_t>(e.guard_rows)));
        r.push_back(Value::Int(static_cast<int64_t>(e.guard_bytes)));
        r.push_back(Value::Int(e.duration_us));
        r.push_back(Value::String(e.status));
        r.push_back(Value::String(e.error));
        r.push_back(Value::Int(static_cast<int64_t>(e.trace_id)));
        r.push_back(Value::Bool(e.from_cache));
        r.push_back(Value::Int(e.rows_out));
        rows.push_back(std::move(r));
      }
      audit_table->ReplaceAllRows(std::move(rows));
    }
  }
  storage::TableData* spans_table = state_.GetMutableTable("fgac_spans");
  if (spans_table != nullptr) {
    std::vector<Row> rows;
    for (const common::TraceSpan& s : tracer_.Snapshot()) {
      Row r;
      r.reserve(9);
      r.push_back(Value::Int(static_cast<int64_t>(s.trace_id)));
      r.push_back(Value::Int(static_cast<int64_t>(s.span_id)));
      r.push_back(Value::Int(static_cast<int64_t>(s.parent_id)));
      r.push_back(Value::String(s.name));
      r.push_back(Value::String(s.user));
      r.push_back(Value::String(s.detail));
      r.push_back(Value::Int(s.start_us));
      r.push_back(Value::Int(s.dur_us));
      r.push_back(Value::Int(static_cast<int64_t>(s.thread_id)));
      rows.push_back(std::move(r));
    }
    spans_table->ReplaceAllRows(std::move(rows));
  }
  storage::TableData* sessions_table =
      state_.GetMutableTable("fgac_sessions");
  if (sessions_table != nullptr) {
    std::vector<Row> rows;
    for (const common::SessionActivitySnapshot& s :
         activity_.SnapshotSessions()) {
      Row r;
      r.reserve(8);
      r.push_back(Value::String(s.session_id));
      r.push_back(Value::String(s.user));
      r.push_back(Value::Bool(s.active));
      r.push_back(Value::Int(static_cast<int64_t>(s.in_flight)));
      r.push_back(Value::Int(static_cast<int64_t>(s.statements_run)));
      r.push_back(Value::Int(static_cast<int64_t>(s.cache_hits)));
      r.push_back(Value::String(s.current_statement));
      r.push_back(Value::Int(static_cast<int64_t>(s.current_elapsed_us)));
      rows.push_back(std::move(r));
    }
    sessions_table->ReplaceAllRows(std::move(rows));
  }
  storage::TableData* activity_table =
      state_.GetMutableTable("fgac_activity");
  if (activity_table != nullptr) {
    std::vector<Row> rows;
    for (const common::StatementActivitySnapshot& s :
         activity_.SnapshotStatements()) {
      Row r;
      r.reserve(13);
      r.push_back(Value::Int(static_cast<int64_t>(s.seq)));
      r.push_back(Value::String(s.session_id));
      r.push_back(Value::String(s.user));
      r.push_back(Value::String(s.statement));
      r.push_back(Value::String(common::StatementPhaseName(s.phase)));
      r.push_back(Value::Int(static_cast<int64_t>(s.elapsed_us)));
      r.push_back(Value::Int(static_cast<int64_t>(s.admission_wait_us)));
      r.push_back(Value::Int(static_cast<int64_t>(s.guard_rows)));
      r.push_back(Value::Int(static_cast<int64_t>(s.guard_bytes)));
      r.push_back(Value::Int(static_cast<int64_t>(s.pipelines_total)));
      r.push_back(Value::Int(static_cast<int64_t>(s.pipelines_done)));
      r.push_back(Value::Int(static_cast<int64_t>(s.queue_wait_us)));
      r.push_back(Value::Int(static_cast<int64_t>(s.run_us)));
      rows.push_back(std::move(r));
    }
    activity_table->ReplaceAllRows(std::move(rows));
  }
  storage::TableData* slow_table =
      state_.GetMutableTable("fgac_slow_queries");
  if (slow_table != nullptr) {
    std::vector<Row> rows;
    for (const SlowQueryRecord& s : slow_log_.Snapshot()) {
      Row r;
      r.reserve(17);
      r.push_back(Value::Int(static_cast<int64_t>(s.seq)));
      r.push_back(Value::Int(s.wall_ms));
      r.push_back(Value::String(s.user));
      r.push_back(Value::String(s.session));
      r.push_back(Value::String(s.statement));
      r.push_back(Value::String(s.verdict));
      r.push_back(Value::String(s.status));
      r.push_back(Value::Int(static_cast<int64_t>(s.duration_us)));
      r.push_back(Value::Int(static_cast<int64_t>(s.validity_us)));
      r.push_back(Value::Int(static_cast<int64_t>(s.exec_us)));
      r.push_back(Value::Int(static_cast<int64_t>(s.queue_wait_us)));
      r.push_back(Value::Int(static_cast<int64_t>(s.run_us)));
      r.push_back(Value::Int(static_cast<int64_t>(s.admission_wait_us)));
      r.push_back(Value::Int(static_cast<int64_t>(s.guard_rows)));
      r.push_back(Value::Int(static_cast<int64_t>(s.guard_bytes)));
      r.push_back(Value::String(s.trace_text));
      r.push_back(Value::String(s.stats_text));
      rows.push_back(std::move(r));
    }
    slow_table->ReplaceAllRows(std::move(rows));
  }
  storage::TableData* cache_table =
      state_.GetMutableTable("fgac_statement_cache");
  if (cache_table != nullptr) {
    std::vector<Row> rows;
    for (const StatementCache::ShardStats& s : stmt_cache_.SnapshotShards()) {
      Row r;
      r.reserve(7);
      r.push_back(Value::Int(static_cast<int64_t>(s.shard)));
      r.push_back(Value::Int(static_cast<int64_t>(s.entries)));
      r.push_back(Value::Int(static_cast<int64_t>(s.hits)));
      r.push_back(Value::Int(static_cast<int64_t>(s.misses)));
      r.push_back(Value::Int(static_cast<int64_t>(s.evictions)));
      r.push_back(Value::Int(static_cast<int64_t>(s.invalidations)));
      r.push_back(Value::Int(static_cast<int64_t>(s.collisions)));
      rows.push_back(std::move(r));
    }
    cache_table->ReplaceAllRows(std::move(rows));
  }
  return Status::OK();
}

Result<ValidityReport> Database::CheckQueryValidity(std::string_view sql,
                                                    const SessionContext& ctx) {
  FGAC_ASSIGN_OR_RETURN(std::shared_ptr<const sql::SelectStmt> stmt,
                        sql::Parser::ParseSelect(sql));
  FGAC_ASSIGN_OR_RETURN(PlanPtr plan, BindQuery(*stmt, ctx));
  FGAC_ASSIGN_OR_RETURN(std::vector<InstantiatedView> views,
                        InstantiateAvailableViews(catalog_, ctx));
  ValidityChecker checker(catalog_, &state_, ResolvedValidityOptions());
  return checker.Check(plan, views);
}

Status Database::VerifyConstraints() const {
  for (const catalog::InclusionDependency& dep : catalog_.constraints()) {
    const TableSchema* src = catalog_.GetTable(dep.src_table);
    const TableSchema* dst = catalog_.GetTable(dep.dst_table);
    const storage::TableData* src_data = state_.GetTable(dep.src_table);
    const storage::TableData* dst_data = state_.GetTable(dep.dst_table);
    if (src == nullptr || dst == nullptr || src_data == nullptr ||
        dst_data == nullptr) {
      return Status::CatalogError("constraint '" + dep.name +
                                  "' references missing table");
    }
    algebra::ScalarPtr pred;
    if (dep.src_predicate != nullptr) {
      FGAC_ASSIGN_OR_RETURN(
          pred, algebra::Binder::BindOverTable(dep.src_predicate, *src));
    }
    std::vector<size_t> src_idx, dst_idx;
    for (size_t i = 0; i < dep.src_columns.size(); ++i) {
      src_idx.push_back(*src->FindColumn(dep.src_columns[i]));
      dst_idx.push_back(*dst->FindColumn(dep.dst_columns[i]));
    }
    // Build the set of destination keys.
    std::set<Row> dst_keys;
    for (const Row& r : dst_data->rows()) {
      Row key;
      for (size_t i : dst_idx) key.push_back(r[i]);
      dst_keys.insert(std::move(key));
    }
    for (const Row& r : src_data->rows()) {
      if (pred != nullptr) {
        FGAC_ASSIGN_OR_RETURN(bool pass, algebra::EvalPredicate(pred, r));
        if (!pass) continue;
      }
      Row key;
      for (size_t i : src_idx) key.push_back(r[i]);
      bool has_null = std::any_of(key.begin(), key.end(),
                                  [](const Value& v) { return v.is_null(); });
      if (has_null) continue;
      if (dst_keys.count(key) == 0) {
        return Status::ConstraintViolation(
            "inclusion dependency '" + dep.name + "' violated by row " +
            RowToString(r) + " of '" + dep.src_table + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace fgac::core
