#include "core/update_auth.h"

#include <algorithm>

#include "algebra/binder.h"

namespace fgac::core {

using catalog::UpdateAuthorization;

namespace {

Result<bool> EvalRule(const UpdateAuthorization& rule,
                      const catalog::TableSchema& schema,
                      algebra::Binder::UpdateImage image, const Row& row,
                      const SessionContext& ctx) {
  if (rule.predicate == nullptr) return true;
  FGAC_ASSIGN_OR_RETURN(
      algebra::ScalarPtr pred,
      algebra::Binder::BindUpdatePredicate(rule.predicate, schema, image,
                                           ctx.params()));
  return algebra::EvalPredicate(pred, row);
}

}  // namespace

Result<bool> UpdateAuthorizer::CheckInsert(const std::string& table,
                                           const Row& new_tuple) const {
  const catalog::TableSchema* schema = catalog_.GetTable(table);
  if (schema == nullptr) {
    return Status::CatalogError("unknown table '" + table + "'");
  }
  for (const UpdateAuthorization* rule :
       catalog_.AvailableUpdateAuthorizations(ctx_.user())) {
    if (rule->op != UpdateAuthorization::Op::kInsert || rule->table != table) {
      continue;
    }
    FGAC_ASSIGN_OR_RETURN(
        bool ok, EvalRule(*rule, *schema, algebra::Binder::UpdateImage::kInsert,
                          new_tuple, ctx_));
    if (ok) return true;
  }
  return false;
}

Result<bool> UpdateAuthorizer::CheckDelete(const std::string& table,
                                           const Row& old_tuple) const {
  const catalog::TableSchema* schema = catalog_.GetTable(table);
  if (schema == nullptr) {
    return Status::CatalogError("unknown table '" + table + "'");
  }
  for (const UpdateAuthorization* rule :
       catalog_.AvailableUpdateAuthorizations(ctx_.user())) {
    if (rule->op != UpdateAuthorization::Op::kDelete || rule->table != table) {
      continue;
    }
    FGAC_ASSIGN_OR_RETURN(
        bool ok, EvalRule(*rule, *schema, algebra::Binder::UpdateImage::kDelete,
                          old_tuple, ctx_));
    if (ok) return true;
  }
  return false;
}

Result<bool> UpdateAuthorizer::CheckUpdate(
    const std::string& table, const Row& old_tuple, const Row& new_tuple,
    const std::vector<std::string>& changed_columns) const {
  const catalog::TableSchema* schema = catalog_.GetTable(table);
  if (schema == nullptr) {
    return Status::CatalogError("unknown table '" + table + "'");
  }
  Row combined = old_tuple;
  combined.insert(combined.end(), new_tuple.begin(), new_tuple.end());
  for (const UpdateAuthorization* rule :
       catalog_.AvailableUpdateAuthorizations(ctx_.user())) {
    if (rule->op != UpdateAuthorization::Op::kUpdate || rule->table != table) {
      continue;
    }
    // Column coverage: an empty rule column list permits all columns.
    if (!rule->columns.empty()) {
      bool covers = std::all_of(
          changed_columns.begin(), changed_columns.end(),
          [&](const std::string& col) {
            return std::find(rule->columns.begin(), rule->columns.end(), col) !=
                   rule->columns.end();
          });
      if (!covers) continue;
    }
    FGAC_ASSIGN_OR_RETURN(
        bool ok, EvalRule(*rule, *schema, algebra::Binder::UpdateImage::kUpdate,
                          combined, ctx_));
    if (ok) return true;
  }
  return false;
}

}  // namespace fgac::core
