#include "core/session_context.h"

namespace fgac::core {

const char* EnforcementModeName(EnforcementMode mode) {
  switch (mode) {
    case EnforcementMode::kNone: return "none";
    case EnforcementMode::kTruman: return "truman";
    case EnforcementMode::kNonTruman: return "non-truman";
  }
  return "?";
}

}  // namespace fgac::core
