#ifndef FGAC_CORE_SLOW_QUERY_LOG_H_
#define FGAC_CORE_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace fgac::core {

/// When a finished statement is captured by the slow-query log. Thresholds
/// are OR-ed: crossing any enabled one captures the statement. A zero
/// threshold disables that criterion; all-zero disables the log.
struct SlowQueryOptions {
  /// Wall time from enforcement start to completion, microseconds.
  uint64_t latency_threshold_us = 1'000'000;
  /// Guard charges at completion (rows / bytes); 0 = disabled.
  uint64_t guard_rows_threshold = 0;
  uint64_t guard_bytes_threshold = 0;
  /// Ring capacity; the oldest capture is dropped when full.
  size_t retain = 256;
};

/// One captured slow statement — the row shape of fgac_slow_queries.
struct SlowQueryRecord {
  uint64_t seq = 0;
  int64_t wall_ms = 0;  // capture time, unix epoch milliseconds
  std::string user;
  std::string session;
  std::string statement;
  std::string verdict;  // enforcement verdict of the run, if any
  std::string status;   // "ok" or the failure code
  uint64_t duration_us = 0;
  uint64_t validity_us = 0;
  uint64_t exec_us = 0;
  uint64_t queue_wait_us = 0;  // pipeline fair-queue wait (attributed)
  uint64_t run_us = 0;         // pipeline task run time (attributed)
  uint64_t admission_wait_us = 0;
  uint64_t guard_rows = 0;
  uint64_t guard_bytes = 0;
  std::string trace_text;  // ValidityTrace::ToText(), when traced
  std::string stats_text;  // ExecStats::Render(), when profiled
};

/// Bounded in-memory ring of slow-statement captures behind the
/// fgac_slow_queries system table. Capture happens on the statement
/// completion path under one mutex — cheap relative to a statement that
/// was, by definition, slow. The same capture is also emitted as an audit
/// event (verdict "slow_query") by the Database, so the JSON-lines audit
/// sink carries the durable copy.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(const SlowQueryOptions& options)
      : options_(options) {}
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  const SlowQueryOptions& options() const { return options_; }

  bool enabled() const {
    return options_.latency_threshold_us > 0 ||
           options_.guard_rows_threshold > 0 ||
           options_.guard_bytes_threshold > 0;
  }

  /// True when a statement with these completion stats crosses any enabled
  /// threshold.
  bool ShouldCapture(uint64_t duration_us, uint64_t guard_rows,
                     uint64_t guard_bytes) const {
    if (options_.latency_threshold_us > 0 &&
        duration_us >= options_.latency_threshold_us) {
      return true;
    }
    if (options_.guard_rows_threshold > 0 &&
        guard_rows >= options_.guard_rows_threshold) {
      return true;
    }
    return options_.guard_bytes_threshold > 0 &&
           guard_bytes >= options_.guard_bytes_threshold;
  }

  /// Stamps seq + wall_ms and appends, dropping the oldest entry beyond
  /// the retain bound.
  void Add(SlowQueryRecord record);

  std::vector<SlowQueryRecord> Snapshot() const;

  uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }

 private:
  const SlowQueryOptions options_;
  mutable std::mutex mu_;
  std::deque<SlowQueryRecord> ring_;
  std::atomic<uint64_t> captured_{0};
  uint64_t next_seq_ = 0;
};

}  // namespace fgac::core

#endif  // FGAC_CORE_SLOW_QUERY_LOG_H_
