#include "core/view_pruning.h"

#include <algorithm>
#include <set>

namespace fgac::core {

std::vector<const InstantiatedView*> PruneViews(
    const std::vector<InstantiatedView>& views, const algebra::PlanPtr& query,
    bool complex_rules_enabled, const catalog::Catalog* catalog) {
  std::vector<std::string> query_tables = CollectBaseTables(query);
  std::set<std::string> reachable(query_tables.begin(), query_tables.end());

  std::vector<const InstantiatedView*> kept;
  if (!complex_rules_enabled) {
    // Basic rules: a view testifies only by unifying with a query
    // subexpression, so its tables must all appear in the query.
    for (const InstantiatedView& v : views) {
      bool keep = !v.base_tables.empty() &&
                  std::all_of(v.base_tables.begin(), v.base_tables.end(),
                              [&](const std::string& t) {
                                return reachable.count(t) > 0;
                              });
      if (keep) kept.push_back(&v);
    }
    return kept;
  }

  // Complex rules: U3/C3 reason through joins the views and the inclusion
  // dependencies introduce, so compute the closure of tables reachable from
  // the query through (a) views sharing a table and (b) constraints whose
  // source table is reachable. A view is kept iff it touches the closure.
  std::vector<bool> in(views.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    if (catalog != nullptr) {
      for (const catalog::InclusionDependency& dep : catalog->constraints()) {
        if (!dep.visible_to_users) continue;
        // Follow the dependency in BOTH directions: join introduction walks
        // src→dst (S ⊆ D lets σ(S) join D), but U3 reasoning also uses a
        // view over the source side to validate a query over the
        // destination (the foreign-key cores of Section 5.3) — pruning
        // dst→src-only views loses sound proofs.
        if (reachable.count(dep.src_table) > 0 &&
            reachable.insert(dep.dst_table).second) {
          changed = true;
        }
        if (reachable.count(dep.dst_table) > 0 &&
            reachable.insert(dep.src_table).second) {
          changed = true;
        }
      }
    }
    for (size_t i = 0; i < views.size(); ++i) {
      if (in[i]) continue;
      bool touches = std::any_of(
          views[i].base_tables.begin(), views[i].base_tables.end(),
          [&](const std::string& t) { return reachable.count(t) > 0; });
      if (!touches) continue;
      in[i] = true;
      changed = true;
      for (const std::string& t : views[i].base_tables) reachable.insert(t);
    }
  }
  for (size_t i = 0; i < views.size(); ++i) {
    if (in[i]) kept.push_back(&views[i]);
  }
  return kept;
}

}  // namespace fgac::core
