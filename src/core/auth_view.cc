#include "core/auth_view.h"

#include <algorithm>
#include <set>

#include "algebra/binder.h"

namespace fgac::core {

std::vector<std::string> CollectBaseTables(const algebra::PlanPtr& plan) {
  std::set<std::string> tables;
  std::function<void(const algebra::PlanPtr&)> walk =
      [&](const algebra::PlanPtr& p) {
        if (p == nullptr) return;
        if (p->kind == algebra::PlanKind::kGet) tables.insert(p->table);
        for (const algebra::PlanPtr& c : p->children) walk(c);
      };
  walk(plan);
  return {tables.begin(), tables.end()};
}

Result<InstantiatedView> InstantiateView(const catalog::Catalog& catalog,
                                         const catalog::ViewDefinition& view,
                                         const SessionContext& ctx) {
  // Check all $ parameters are available.
  for (const std::string& p : view.parameters) {
    if (ctx.params().count(p) == 0) {
      return Status::InvalidArgument(
          "authorization view '" + view.name + "' requires parameter $" + p +
          " which is not set in the session context");
    }
  }
  algebra::Binder::Options options;
  options.params = ctx.params();
  options.allow_access_params = true;
  algebra::Binder binder(catalog, options);
  FGAC_ASSIGN_OR_RETURN(algebra::PlanPtr plan, binder.BindSelect(*view.select));

  InstantiatedView out;
  out.name = view.name;
  out.plan = std::move(plan);
  out.access_parameters = view.access_parameters;
  out.base_tables = CollectBaseTables(out.plan);
  return out;
}

Result<std::vector<InstantiatedView>> InstantiateAvailableViews(
    const catalog::Catalog& catalog, const SessionContext& ctx) {
  std::vector<InstantiatedView> out;
  for (const catalog::ViewDefinition* view :
       catalog.AvailableViews(ctx.user())) {
    if (!view->is_authorization) continue;
    FGAC_ASSIGN_OR_RETURN(InstantiatedView iv,
                          InstantiateView(catalog, *view, ctx));
    out.push_back(std::move(iv));
  }
  return out;
}

}  // namespace fgac::core
