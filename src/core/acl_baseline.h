#ifndef FGAC_CORE_ACL_BASELINE_H_
#define FGAC_CORE_ACL_BASELINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/value.h"

namespace fgac::core {

/// Tuple-level access-control-list baseline (paper Section 7): the
/// access-matrix approach the paper argues against, implemented so the E7
/// experiment can reproduce the claim that an ACL "would be extremely
/// large, and constructing it will be a tedious task" — its size grows
/// with #tuples x #authorized-users, while one parameterized authorization
/// view stays O(1).
///
/// Tuples are identified by (table, primary-key value).
class TupleAclStore {
 public:
  /// Grants `user` read access to the tuple keyed by `key` in `table`.
  void Grant(const std::string& table, const Value& key,
             const std::string& user);

  /// Checks read access.
  bool Check(const std::string& table, const Value& key,
             const std::string& user) const;

  /// Number of individual (tuple, user) grant entries — the administration
  /// burden the paper highlights.
  size_t num_entries() const { return num_entries_; }

  /// Approximate resident memory of the store, in bytes.
  size_t ApproxMemoryBytes() const;

 private:
  struct KeyHash {
    size_t operator()(const std::pair<std::string, Value>& k) const {
      return std::hash<std::string>()(k.first) * 31 ^ k.second.Hash();
    }
  };
  struct KeyEq {
    bool operator()(const std::pair<std::string, Value>& a,
                    const std::pair<std::string, Value>& b) const {
      return a.first == b.first && a.second == b.second;
    }
  };
  std::unordered_map<std::pair<std::string, Value>,
                     std::unordered_set<std::string>, KeyHash, KeyEq>
      acl_;
  size_t num_entries_ = 0;
};

}  // namespace fgac::core

#endif  // FGAC_CORE_ACL_BASELINE_H_
