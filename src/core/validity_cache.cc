#include "core/validity_cache.h"

namespace fgac::core {

namespace {

std::string MakeKey(const std::string& user, uint64_t plan_fp) {
  return user + "#" + std::to_string(plan_fp);
}

}  // namespace

const ValidityReport* ValidityCache::Lookup(const std::string& user,
                                            uint64_t plan_fp,
                                            uint64_t catalog_version,
                                            uint64_t data_version) {
  auto it = entries_.find(MakeKey(user, plan_fp));
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  const Entry& entry = it->second;
  if (entry.catalog_version != catalog_version) {
    entries_.erase(it);
    ++misses_;
    return nullptr;
  }
  bool data_sensitive =
      !entry.report.valid || !entry.report.unconditional;
  if (data_sensitive && entry.data_version != data_version) {
    entries_.erase(it);
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &entry.report;
}

void ValidityCache::Insert(const std::string& user, uint64_t plan_fp,
                           uint64_t catalog_version, uint64_t data_version,
                           ValidityReport report) {
  Entry entry;
  entry.report = std::move(report);
  entry.catalog_version = catalog_version;
  entry.data_version = data_version;
  entries_[MakeKey(user, plan_fp)] = std::move(entry);
}

}  // namespace fgac::core
