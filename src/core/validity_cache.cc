#include "core/validity_cache.h"

namespace fgac::core {

namespace {

std::string MakeKey(const std::string& user, uint64_t plan_fp) {
  return user + "#" + std::to_string(plan_fp);
}

}  // namespace

void ValidityCache::Erase(
    std::unordered_map<std::string, Entry>::iterator it) {
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

bool ValidityCache::Lookup(const std::string& user, uint64_t plan_fp,
                           uint64_t catalog_version, uint64_t policy_epoch,
                           uint64_t data_version, ValidityReport* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(MakeKey(user, plan_fp));
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  Entry& entry = it->second;
  if (entry.catalog_version != catalog_version ||
      entry.policy_epoch != policy_epoch) {
    Erase(it);
    ++misses_;
    return false;
  }
  bool data_sensitive =
      !entry.report.valid || !entry.report.unconditional;
  if (data_sensitive && entry.data_version != data_version) {
    Erase(it);
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  ++hits_;
  if (out != nullptr) *out = entry.report;
  return true;
}

void ValidityCache::Insert(const std::string& user, uint64_t plan_fp,
                           uint64_t catalog_version, uint64_t policy_epoch,
                           uint64_t data_version, ValidityReport report) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = MakeKey(user, plan_fp);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.report = std::move(report);
    it->second.catalog_version = catalog_version;
    it->second.policy_epoch = policy_epoch;
    it->second.data_version = data_version;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (entries_.size() >= max_entries_) {
    auto victim = entries_.find(lru_.back());
    Erase(victim);
    ++evictions_;
  }
  lru_.push_front(key);
  Entry entry;
  entry.report = std::move(report);
  entry.catalog_version = catalog_version;
  entry.policy_epoch = policy_epoch;
  entry.data_version = data_version;
  entry.lru_pos = lru_.begin();
  entries_[std::move(key)] = std::move(entry);
}

}  // namespace fgac::core
