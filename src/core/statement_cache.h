#ifndef FGAC_CORE_STATEMENT_CACHE_H_
#define FGAC_CORE_STATEMENT_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "core/validity.h"
#include "sql/ast.h"

namespace fgac::core {

/// One server-side prepared statement: the parsed body plus the lazily
/// (re)bound parameterized plan. Owned by the preparing session via
/// shared_ptr, so DEALLOCATE can drop the registry entry while an in-flight
/// EXECUTE keeps the object alive and drains cleanly.
///
/// The bind state under `mu` is a cache: ExecutePrepared revalidates it
/// against the current catalog version / policy epoch / session-parameter
/// fingerprint and rebinds on any mismatch (fail-closed — a stale plan is
/// never executed).
struct PreparedStatement {
  std::string name;
  /// Canonical SQL of the body (printer-rendered), the full-text tiebreak
  /// behind the plan-fingerprint cache key.
  std::string text;
  std::shared_ptr<const sql::SelectStmt> select;
  /// Placeholder names in positional order ("1".."n"); EXECUTE argument i
  /// binds placeholder i+1.
  std::vector<std::string> placeholders;

  std::mutex mu;
  algebra::PlanPtr plan;  // parameterized: placeholders still unbound
  uint64_t plan_fp = 0;
  uint64_t catalog_version = 0;
  uint64_t policy_epoch = 0;
  uint64_t session_params_fp = 0;
};

/// Sharded per-principal enforcement cache for prepared statements (paper
/// Section 5.6 taken to steady state): once a (principal, statement) pair
/// has been through the Truman rewriter or the Non-Truman validity
/// checker, re-executions skip that work entirely.
///
/// Key = (principal, structural fingerprint of the PARAMETERIZED bound
/// plan), with the canonical statement text stored alongside and compared
/// on every hit — a fingerprint collision between distinct statements
/// degrades to a miss, never to a cross-statement reuse. Each entry
/// carries:
///   * Truman-rewritten parameterized plans, keyed by the session-parameter
///     fingerprint (the rewrite instantiates policy views with session
///     parameters, but is independent of EXECUTE arguments);
///   * Non-Truman validity verdicts, keyed by the (session params +
///     EXECUTE arguments) fingerprint, since the verdict may hinge on the
///     concrete constants.
///
/// Invalidation is fail-closed and two-level. The entry records the
/// catalog version and the catalog's policy epoch it was built under; a
/// lookup under any newer version/epoch erases the whole entry and
/// re-runs enforcement. Data-sensitive verdicts (conditional or rejected)
/// additionally record the data version and are dropped when it advances,
/// mirroring ValidityCache. Verdicts reached with the probe budget
/// exhausted are never inserted.
///
/// Shard layout: kShards fixed shards, each a mutex + hash map + LRU list.
/// The shard index is the key hash's low bits, so concurrent sessions
/// executing different statements contend on different mutexes; the inner
/// variant maps are bounded (kMaxVariants) so one statement executed with
/// endless distinct arguments cannot grow an entry without bound.
class StatementCache {
 public:
  static constexpr size_t kShards = 16;
  static constexpr size_t kDefaultMaxEntries = 4096;
  /// Bound on cached per-entry variants (Truman plans / verdicts).
  static constexpr size_t kMaxVariants = 64;

  explicit StatementCache(size_t max_entries = kDefaultMaxEntries);

  /// Identity + freshness of one cache consultation.
  struct Key {
    const std::string& user;
    uint64_t stmt_fp;
    const std::string& text;
    uint64_t catalog_version;
    uint64_t policy_epoch;
  };

  /// Returns the cached Truman-rewritten parameterized plan for the
  /// session-parameter fingerprint, or nullptr.
  algebra::PlanPtr LookupTrumanPlan(const Key& key, uint64_t params_fp);
  void InsertTrumanPlan(const Key& key, uint64_t params_fp,
                        algebra::PlanPtr plan);

  /// Copies the cached verdict for the (params+args) fingerprint into
  /// `*out`; false on miss / staleness.
  bool LookupVerdict(const Key& key, uint64_t exec_fp, uint64_t data_version,
                     ValidityReport* out);
  void InsertVerdict(const Key& key, uint64_t exec_fp, uint64_t data_version,
                     ValidityReport report);

  void Clear();
  size_t size() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Entries discarded because their catalog version or policy epoch was
  /// stale (the fail-closed path).
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  /// Lookups that matched a fingerprint but not the statement text.
  uint64_t collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }

  /// Per-shard counters behind the fgac_statement_cache system table: the
  /// same events as the global counters, attributed to the shard whose
  /// mutex was held when they happened.
  struct ShardStats {
    size_t shard = 0;
    size_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
    uint64_t collisions = 0;
  };
  std::vector<ShardStats> SnapshotShards() const;

 private:
  struct CachedVerdict {
    ValidityReport report;
    uint64_t data_version = 0;
  };

  struct Entry {
    std::string text;
    uint64_t catalog_version = 0;
    uint64_t policy_epoch = 0;
    std::map<uint64_t, algebra::PlanPtr> truman_plans;
    std::map<uint64_t, CachedVerdict> verdicts;
    std::list<uint64_t>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> entries;
    std::list<uint64_t> lru;  // front = most recently used
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> invalidations{0};
    std::atomic<uint64_t> collisions{0};
  };

  /// Shard + entry-map key for (user, stmt_fp).
  uint64_t EntryKey(const std::string& user, uint64_t stmt_fp) const;
  Shard& ShardFor(uint64_t entry_key);

  /// Finds a fresh, text-matching entry; erases stale ones. Returns
  /// nullptr on miss. Caller holds the shard mutex.
  Entry* FindFresh(Shard& shard, uint64_t entry_key, const Key& key);

  /// Finds-or-creates a fresh entry for inserts (a stale or colliding
  /// entry is replaced). Caller holds the shard mutex.
  Entry& UpsertEntry(Shard& shard, uint64_t entry_key, const Key& key);

  size_t max_per_shard_;
  std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> collisions_{0};
};

}  // namespace fgac::core

#endif  // FGAC_CORE_STATEMENT_CACHE_H_
