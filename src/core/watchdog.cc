#include "core/watchdog.h"

#include <algorithm>
#include <memory>

namespace fgac::core {

void Watchdog::Start() {
  if (!options_.enabled || thread_.joinable()) return;
  thread_ = std::thread([this] { Main(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    wake_.wait_for(lock, options_.interval, [this] { return stop_; });
  }
}

void Watchdog::SampleOnce() {
  std::lock_guard<std::mutex> sample_lock(sample_mu_);
  samples_.fetch_add(1, std::memory_order_relaxed);
  metrics_->counter("watchdog.samples").Increment();

  for (const auto& [gauge, probe] : probes_) {
    metrics_->gauge(gauge).Set(probe());
  }

  std::vector<std::shared_ptr<common::StatementActivity>> handles =
      activity_->SnapshotHandles();
  metrics_->gauge("watchdog.statements_in_flight")
      .Set(static_cast<int64_t>(handles.size()));

  uint64_t max_elapsed_us = 0;
  uint64_t stalled_now = 0;
  std::map<uint64_t, ProgressMark> next_marks;
  for (const auto& stmt : handles) {
    uint64_t elapsed_us = stmt->elapsed_us();
    max_elapsed_us = std::max(max_elapsed_us, elapsed_us);

    ProgressMark mark;
    mark.phase = static_cast<uint32_t>(stmt->phase());
    const common::DagProgress& p = stmt->progress();
    mark.sets_done = p.sets_done.load(std::memory_order_relaxed);
    mark.guard_rows = stmt->guard_rows();
    mark.guard_bytes = stmt->guard_bytes();
    mark.admission_wait_us = stmt->admission_wait_us();

    uint64_t deadline_us = stmt->deadline_us();
    uint64_t threshold_us =
        deadline_us > 0
            ? static_cast<uint64_t>(options_.deadline_factor *
                                    static_cast<double>(deadline_us))
            : static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      options_.no_deadline_stall)
                      .count());

    auto prev = marks_.find(stmt->seq());
    bool no_progress =
        prev != marks_.end() && prev->second.phase == mark.phase &&
        prev->second.sets_done == mark.sets_done &&
        prev->second.guard_rows == mark.guard_rows &&
        prev->second.guard_bytes == mark.guard_bytes &&
        prev->second.admission_wait_us == mark.admission_wait_us;
    mark.stalled = threshold_us > 0 && elapsed_us > threshold_us &&
                   no_progress;
    if (mark.stalled) {
      ++stalled_now;
      if (stmt->TryMarkStalled()) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        metrics_->counter("watchdog.stalls_detected").Increment();
        if (on_stall_) {
          common::StatementActivitySnapshot snap;
          snap.seq = stmt->seq();
          snap.session_id = stmt->session_id();
          snap.user = stmt->user();
          snap.statement = stmt->statement();
          snap.phase = stmt->phase();
          snap.elapsed_us = elapsed_us;
          snap.admission_wait_us = mark.admission_wait_us;
          snap.guard_rows = mark.guard_rows;
          snap.guard_bytes = mark.guard_bytes;
          snap.pipelines_total =
              p.sets_total.load(std::memory_order_relaxed);
          snap.pipelines_done = mark.sets_done;
          snap.queue_wait_us =
              p.queue_wait_us.load(std::memory_order_relaxed);
          snap.run_us = p.run_us.load(std::memory_order_relaxed);
          on_stall_(snap,
                    "no progress after " + std::to_string(elapsed_us) +
                        "us (stall threshold " +
                        std::to_string(threshold_us) + "us, phase " +
                        common::StatementPhaseName(stmt->phase()) + ")");
        }
      }
    }
    next_marks[stmt->seq()] = mark;
  }
  marks_ = std::move(next_marks);  // finished statements drop out

  metrics_->gauge("watchdog.max_statement_elapsed_us")
      .Set(static_cast<int64_t>(max_elapsed_us));
  metrics_->gauge("watchdog.stalled_statements")
      .Set(static_cast<int64_t>(stalled_now));
}

}  // namespace fgac::core
