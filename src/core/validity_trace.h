#ifndef FGAC_CORE_VALIDITY_TRACE_H_
#define FGAC_CORE_VALIDITY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace fgac::core {

/// One step of the Non-Truman enforcement decision: an inference rule
/// firing, a batch of C3 database probes, a cache consultation, or the
/// final verdict / degradation. Collected in order, so the event list IS
/// the audit trail of why a query was admitted, rejected or degraded.
struct ValidityTraceEvent {
  enum class Kind {
    kCacheHit,    // verdict served from the prepared-statement cache
    kCacheMiss,   // cache consulted, inference had to run
    kRuleFired,   // an inference rule marked a DAG group valid
    kProbeBatch,  // C3a/C3b/CAgg visible-non-emptiness probes executed
    kExpansion,   // DAG expansion summary (passes, pruning, frontier)
    kVerdict,     // final accept/reject of the validity test
    kDegraded,    // budget blown; answer produced by the Truman rewriter
  };

  Kind kind = Kind::kRuleFired;
  /// Rule identifier for kRuleFired ("U1", "U2", "U3a/U3b", "C3a/C3b", ...):
  /// the justification's leading token, so tests can assert sequences.
  std::string rule;
  /// Free-form context: matched view / constraint for rules, reject or
  /// degradation reason for verdicts.
  std::string detail;
  /// kProbeBatch: the probe plans, rendered one-line, '; '-separated.
  std::string probe_sql;
  /// kProbeBatch: probes in the batch / how many were visibly non-empty
  /// (each probe is a LIMIT-1 query, so rows returned == non-empty count).
  uint64_t probes = 0;
  uint64_t probe_rows = 0;
  /// kVerdict / kDegraded: guard budget consumed when the event fired.
  uint64_t guard_rows = 0;
  uint64_t guard_bytes = 0;
  /// kVerdict: the outcome.
  bool valid = false;
  bool unconditional = false;
  /// Microseconds since the trace began.
  int64_t at_us = 0;

  static const char* KindName(Kind kind);
};

/// Append-only recording of one validity decision. Owned by the query that
/// requested tracing (EXPLAIN ANALYZE or a profiling session); the
/// ValidityChecker writes into it through a borrowed pointer, single
/// threaded — probe batches are recorded by the coordinating thread, never
/// from inside the probe workers.
class ValidityTrace {
 public:
  ValidityTrace() : start_(std::chrono::steady_clock::now()) {}

  void Add(ValidityTraceEvent event) {
    event.at_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    events_.push_back(std::move(event));
  }

  const std::vector<ValidityTraceEvent>& events() const { return events_; }

  /// Rule ids of the kRuleFired events, in firing order.
  std::vector<std::string> RuleSequence() const;

  /// True if some kRuleFired event carries `rule` as its identifier.
  bool FiredRule(const std::string& rule) const;

  /// Total probes across every kProbeBatch event.
  uint64_t TotalProbes() const;

  /// One JSON object per line, one line per event (audit-log format).
  std::string ToJsonLines() const;

  /// Human-readable one-line-per-event rendering for EXPLAIN ANALYZE.
  std::string ToText() const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::vector<ValidityTraceEvent> events_;
};

}  // namespace fgac::core

#endif  // FGAC_CORE_VALIDITY_TRACE_H_
