#include "core/statement_cache.h"

#include <algorithm>
#include <functional>

namespace fgac::core {

StatementCache::StatementCache(size_t max_entries) {
  size_t total = max_entries == 0 ? 1 : max_entries;
  max_per_shard_ = std::max<size_t>(1, total / kShards);
}

uint64_t StatementCache::EntryKey(const std::string& user,
                                  uint64_t stmt_fp) const {
  // FNV-mix the principal into the plan fingerprint; the text tiebreak
  // makes residual collisions harmless (a miss, never a wrong reuse).
  uint64_t h = std::hash<std::string>()(user);
  return (h * 1099511628211ULL) ^ stmt_fp;
}

StatementCache::Shard& StatementCache::ShardFor(uint64_t entry_key) {
  // The low bits of the FNV product are well mixed; kShards is a power of
  // two.
  return shards_[entry_key & (kShards - 1)];
}

StatementCache::Entry* StatementCache::FindFresh(Shard& shard,
                                                 uint64_t entry_key,
                                                 const Key& key) {
  auto it = shard.entries.find(entry_key);
  if (it == shard.entries.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.catalog_version != key.catalog_version ||
      entry.policy_epoch != key.policy_epoch) {
    // Fail-closed: anything cached under an older policy state is
    // discarded wholesale and enforcement re-runs from scratch.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    shard.invalidations.fetch_add(1, std::memory_order_relaxed);
    shard.lru.erase(entry.lru_pos);
    shard.entries.erase(it);
    return nullptr;
  }
  if (entry.text != key.text) {
    collisions_.fetch_add(1, std::memory_order_relaxed);
    shard.collisions.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_pos);
  return &entry;
}

StatementCache::Entry& StatementCache::UpsertEntry(Shard& shard,
                                                   uint64_t entry_key,
                                                   const Key& key) {
  auto it = shard.entries.find(entry_key);
  if (it != shard.entries.end()) {
    Entry& entry = it->second;
    if (entry.catalog_version != key.catalog_version ||
        entry.policy_epoch != key.policy_epoch || entry.text != key.text) {
      // Stale epoch or a fingerprint collision: start the entry over
      // rather than mixing variants computed under different premises.
      entry.truman_plans.clear();
      entry.verdicts.clear();
      entry.text = key.text;
      entry.catalog_version = key.catalog_version;
      entry.policy_epoch = key.policy_epoch;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_pos);
    return entry;
  }
  while (shard.entries.size() >= max_per_shard_) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(entry_key);
  Entry& entry = shard.entries[entry_key];
  entry.text = key.text;
  entry.catalog_version = key.catalog_version;
  entry.policy_epoch = key.policy_epoch;
  entry.lru_pos = shard.lru.begin();
  return entry;
}

algebra::PlanPtr StatementCache::LookupTrumanPlan(const Key& key,
                                                 uint64_t params_fp) {
  uint64_t ek = EntryKey(key.user, key.stmt_fp);
  Shard& shard = ShardFor(ek);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* entry = FindFresh(shard, ek, key);
  if (entry != nullptr) {
    auto it = entry->truman_plans.find(params_fp);
    if (it != entry->truman_plans.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void StatementCache::InsertTrumanPlan(const Key& key, uint64_t params_fp,
                                      algebra::PlanPtr plan) {
  uint64_t ek = EntryKey(key.user, key.stmt_fp);
  Shard& shard = ShardFor(ek);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& entry = UpsertEntry(shard, ek, key);
  if (entry.truman_plans.size() >= kMaxVariants &&
      entry.truman_plans.find(params_fp) == entry.truman_plans.end()) {
    entry.truman_plans.erase(entry.truman_plans.begin());
  }
  entry.truman_plans[params_fp] = std::move(plan);
}

bool StatementCache::LookupVerdict(const Key& key, uint64_t exec_fp,
                                   uint64_t data_version,
                                   ValidityReport* out) {
  uint64_t ek = EntryKey(key.user, key.stmt_fp);
  Shard& shard = ShardFor(ek);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* entry = FindFresh(shard, ek, key);
  if (entry != nullptr) {
    auto it = entry->verdicts.find(exec_fp);
    if (it != entry->verdicts.end()) {
      const CachedVerdict& v = it->second;
      // Same rule as ValidityCache: only unconditionally-valid verdicts
      // survive data changes; conditional verdicts and rejections hinge on
      // the rows present when they were computed.
      bool data_sensitive = !v.report.valid || !v.report.unconditional;
      if (data_sensitive && v.data_version != data_version) {
        entry->verdicts.erase(it);
      } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        if (out != nullptr) *out = v.report;
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void StatementCache::InsertVerdict(const Key& key, uint64_t exec_fp,
                                   uint64_t data_version,
                                   ValidityReport report) {
  if (report.probe_budget_exhausted) return;  // sound once, never cached
  uint64_t ek = EntryKey(key.user, key.stmt_fp);
  Shard& shard = ShardFor(ek);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& entry = UpsertEntry(shard, ek, key);
  if (entry.verdicts.size() >= kMaxVariants &&
      entry.verdicts.find(exec_fp) == entry.verdicts.end()) {
    entry.verdicts.erase(entry.verdicts.begin());
  }
  CachedVerdict v;
  v.report = std::move(report);
  v.data_version = data_version;
  entry.verdicts[exec_fp] = std::move(v);
}

void StatementCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.lru.clear();
  }
}

std::vector<StatementCache::ShardStats> StatementCache::SnapshotShards()
    const {
  std::vector<ShardStats> out;
  out.reserve(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    ShardStats s;
    s.shard = i;
    s.entries = shard.entries.size();
    s.hits = shard.hits.load(std::memory_order_relaxed);
    s.misses = shard.misses.load(std::memory_order_relaxed);
    s.evictions = shard.evictions.load(std::memory_order_relaxed);
    s.invalidations = shard.invalidations.load(std::memory_order_relaxed);
    s.collisions = shard.collisions.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

size_t StatementCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace fgac::core
