#include "exec/eval.h"

namespace fgac::exec {

using algebra::ScalarPtr;

Result<bool> PassesAll(const std::vector<ScalarPtr>& predicates,
                       const Row& row) {
  for (const ScalarPtr& p : predicates) {
    FGAC_ASSIGN_OR_RETURN(bool pass, algebra::EvalPredicate(p, row));
    if (!pass) return false;
  }
  return true;
}

Result<Row> ProjectRow(const std::vector<ScalarPtr>& exprs, const Row& row) {
  Row out;
  out.reserve(exprs.size());
  for (const ScalarPtr& e : exprs) {
    FGAC_ASSIGN_OR_RETURN(Value v, algebra::EvalScalar(e, row));
    out.push_back(std::move(v));
  }
  return out;
}

JoinKeys SplitJoinKeys(const std::vector<ScalarPtr>& predicates,
                       size_t left_arity) {
  JoinKeys out;
  for (const ScalarPtr& p : predicates) {
    if (p->kind == algebra::ScalarKind::kBinary &&
        p->bin_op == sql::BinOp::kEq) {
      std::set<int> lslots, rslots;
      algebra::CollectSlots(p->left, &lslots);
      algebra::CollectSlots(p->right, &rslots);
      auto all_left = [&](const std::set<int>& s) {
        return !s.empty() &&
               *s.rbegin() < static_cast<int>(left_arity);
      };
      auto all_right = [&](const std::set<int>& s) {
        return !s.empty() && *s.begin() >= static_cast<int>(left_arity);
      };
      auto shift = [&](const ScalarPtr& s) {
        return algebra::RemapSlots(s, [&](int slot) {
          return slot - static_cast<int>(left_arity);
        });
      };
      if (all_left(lslots) && all_right(rslots)) {
        out.left_keys.push_back(p->left);
        out.right_keys.push_back(shift(p->right));
        continue;
      }
      if (all_left(rslots) && all_right(lslots)) {
        out.left_keys.push_back(p->right);
        out.right_keys.push_back(shift(p->left));
        continue;
      }
    }
    out.residual.push_back(p);
  }
  return out;
}

}  // namespace fgac::exec
