#include "exec/eval.h"

#include <numeric>

namespace fgac::exec {

using algebra::ScalarKind;
using algebra::ScalarPtr;

std::optional<bool> TruthAt(const ColumnVector& c, size_t i) {
  if (c.IsNull(i)) return std::nullopt;
  switch (c.tag()) {
    case ColumnVector::Tag::kBool:
      return c.BoolAt(i);
    case ColumnVector::Tag::kInt:
      return c.IntAt(i) != 0;
    case ColumnVector::Tag::kDouble:
      return c.DoubleAt(i) != 0.0;
    case ColumnVector::Tag::kString:
      return !c.StringAt(i).empty();
    case ColumnVector::Tag::kGeneric:
      return algebra::SqlTruth(c.GenericAt(i));
    case ColumnVector::Tag::kUntyped:
      return std::nullopt;  // unreachable: untyped elements are NULL
  }
  return std::nullopt;
}

void IdentitySelection(size_t n, Selection* sel) {
  sel->resize(n);
  std::iota(sel->begin(), sel->end(), 0u);
}

namespace {

bool PassesCompare(sql::BinOp op, int c) {
  switch (op) {
    case sql::BinOp::kEq:
      return c == 0;
    case sql::BinOp::kNe:
      return c != 0;
    case sql::BinOp::kLt:
      return c < 0;
    case sql::BinOp::kLe:
      return c <= 0;
    case sql::BinOp::kGt:
      return c > 0;
    case sql::BinOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

/// result[k] = l[k] <op> r[k] with SQL NULL propagation.
Status CompareBatch(sql::BinOp op, const ColumnVector& l, const ColumnVector& r,
                    ColumnVector* out) {
  size_t n = l.size();
  out->Reserve(n);
  using Tag = ColumnVector::Tag;
  // Fully-valid typed pairs take a mask-free loop.
  if (l.AllValid() && r.AllValid() && l.tag() == Tag::kInt &&
      r.tag() == Tag::kInt) {
    for (size_t i = 0; i < n; ++i) {
      int64_t x = l.IntAt(i), y = r.IntAt(i);
      out->AppendBool(PassesCompare(op, x == y ? 0 : (x < y ? -1 : 1)));
    }
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    out->AppendBool(PassesCompare(op, CompareAt(l, i, r, i)));
  }
  return Status::OK();
}

Status LikeBatch(const ColumnVector& l, const ColumnVector& r,
                 ColumnVector* out) {
  size_t n = l.size();
  out->Reserve(n);
  using Tag = ColumnVector::Tag;
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    if (l.KindAt(i) != Value::Kind::kString ||
        r.KindAt(i) != Value::Kind::kString) {
      return Status::ExecutionError("LIKE requires string operands");
    }
    const std::string& text =
        l.tag() == Tag::kString ? l.StringAt(i) : l.GenericAt(i).string_value();
    const std::string& pattern =
        r.tag() == Tag::kString ? r.StringAt(i) : r.GenericAt(i).string_value();
    out->AppendBool(algebra::SqlLike(text, pattern));
  }
  return Status::OK();
}

Status ArithBatch(sql::BinOp op, const ColumnVector& l, const ColumnVector& r,
                  ColumnVector* out) {
  size_t n = l.size();
  out->Reserve(n);
  using Tag = ColumnVector::Tag;
  // Overflow-free int ops on fully-valid int columns take a tight loop
  // (division and modulo keep the general path for the by-zero check).
  if (l.AllValid() && r.AllValid() && l.tag() == Tag::kInt &&
      r.tag() == Tag::kInt &&
      (op == sql::BinOp::kAdd || op == sql::BinOp::kSub ||
       op == sql::BinOp::kMul)) {
    for (size_t i = 0; i < n; ++i) {
      int64_t x = l.IntAt(i), y = r.IntAt(i);
      switch (op) {
        case sql::BinOp::kAdd:
          out->AppendInt(x + y);
          break;
        case sql::BinOp::kSub:
          out->AppendInt(x - y);
          break;
        default:
          out->AppendInt(x * y);
          break;
      }
    }
    return Status::OK();
  }
  if (l.AllValid() && r.AllValid() && l.tag() == Tag::kDouble &&
      r.tag() == Tag::kDouble &&
      (op == sql::BinOp::kAdd || op == sql::BinOp::kSub ||
       op == sql::BinOp::kMul)) {
    for (size_t i = 0; i < n; ++i) {
      double x = l.DoubleAt(i), y = r.DoubleAt(i);
      switch (op) {
        case sql::BinOp::kAdd:
          out->AppendDouble(x + y);
          break;
        case sql::BinOp::kSub:
          out->AppendDouble(x - y);
          break;
        default:
          out->AppendDouble(x * y);
          break;
      }
    }
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    FGAC_ASSIGN_OR_RETURN(
        Value v, algebra::EvalBinaryValues(op, l.GetValue(i), r.GetValue(i)));
    out->Append(v);
  }
  return Status::OK();
}

/// AND/OR with the same short-circuit structure as the row engine: the
/// right operand is evaluated only on rows the left operand left undecided,
/// so side effects (errors) match row-at-a-time execution row-for-row.
Status LogicalBatch(const ScalarPtr& s, const DataChunk& chunk,
                    const Selection& sel, ColumnVector* out) {
  bool is_and = s->bin_op == sql::BinOp::kAnd;
  ColumnVector l;
  FGAC_RETURN_NOT_OK(EvalScalarBatch(s->left, chunk, sel, &l));
  size_t n = sel.size();
  // A row is decided by the left operand when it is FALSE (AND) / TRUE (OR).
  Selection rest;
  rest.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::optional<bool> t = TruthAt(l, i);
    if (t.has_value() && *t != is_and) continue;
    rest.push_back(sel[i]);
  }
  ColumnVector r;
  if (!rest.empty()) {
    FGAC_RETURN_NOT_OK(EvalScalarBatch(s->right, chunk, rest, &r));
  }
  out->Reserve(n);
  size_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    std::optional<bool> ta = TruthAt(l, i);
    if (ta.has_value() && *ta != is_and) {
      out->AppendBool(*ta);
      continue;
    }
    std::optional<bool> tb = TruthAt(r, m);
    ++m;
    std::optional<bool> res = is_and ? SqlAnd(ta, tb) : SqlOr(ta, tb);
    if (res.has_value()) {
      out->AppendBool(*res);
    } else {
      out->AppendNull();
    }
  }
  return Status::OK();
}

Status NegBatch(const ColumnVector& v, ColumnVector* out) {
  size_t n = v.size();
  out->Reserve(n);
  using Tag = ColumnVector::Tag;
  if (v.tag() == Tag::kInt) {
    for (size_t i = 0; i < n; ++i) {
      if (v.IsNull(i)) {
        out->AppendNull();
      } else {
        out->AppendInt(-v.IntAt(i));
      }
    }
    return Status::OK();
  }
  if (v.tag() == Tag::kDouble) {
    for (size_t i = 0; i < n; ++i) {
      if (v.IsNull(i)) {
        out->AppendNull();
      } else {
        out->AppendDouble(-v.DoubleAt(i));
      }
    }
    return Status::OK();
  }
  for (size_t i = 0; i < n; ++i) {
    FGAC_ASSIGN_OR_RETURN(
        Value r, algebra::EvalUnaryValue(sql::UnOp::kNeg, v.GetValue(i)));
    out->Append(r);
  }
  return Status::OK();
}

Status InListBatch(const ScalarPtr& s, const DataChunk& chunk,
                   const Selection& sel, ColumnVector* out) {
  ColumnVector operand;
  FGAC_RETURN_NOT_OK(EvalScalarBatch(s->operand, chunk, sel, &operand));
  std::vector<ColumnVector> elems(s->in_list.size());
  for (size_t k = 0; k < s->in_list.size(); ++k) {
    FGAC_RETURN_NOT_OK(EvalScalarBatch(s->in_list[k], chunk, sel, &elems[k]));
  }
  size_t n = sel.size();
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (operand.IsNull(i)) {
      out->AppendNull();
      continue;
    }
    bool saw_null = false, found = false;
    for (const ColumnVector& e : elems) {
      if (e.IsNull(i)) {
        saw_null = true;
        continue;
      }
      if (CompareAt(operand, i, e, i) == 0) {
        found = true;
        break;
      }
    }
    if (found) {
      out->AppendBool(!s->negated);
    } else if (saw_null) {
      out->AppendNull();
    } else {
      out->AppendBool(s->negated);
    }
  }
  return Status::OK();
}

}  // namespace

Status EvalScalarBatch(const ScalarPtr& s, const DataChunk& chunk,
                       const Selection& sel, ColumnVector* out) {
  out->Clear();
  if (s == nullptr) return Status::InvalidArgument("null scalar");
  size_t n = sel.size();
  switch (s->kind) {
    case ScalarKind::kColumn: {
      if (s->slot < 0 ||
          static_cast<size_t>(s->slot) >= chunk.num_columns()) {
        return Status::ExecutionError("slot " + std::to_string(s->slot) +
                                      " out of range");
      }
      out->AppendSelected(chunk.column(s->slot), sel);
      return Status::OK();
    }
    case ScalarKind::kLiteral: {
      out->Reserve(n);
      for (size_t i = 0; i < n; ++i) out->Append(s->value);
      return Status::OK();
    }
    case ScalarKind::kAccessParam:
      return Status::InvalidArgument("unbound access parameter $$" + s->param);
    case ScalarKind::kBinary: {
      if (s->bin_op == sql::BinOp::kAnd || s->bin_op == sql::BinOp::kOr) {
        return LogicalBatch(s, chunk, sel, out);
      }
      ColumnVector l, r;
      FGAC_RETURN_NOT_OK(EvalScalarBatch(s->left, chunk, sel, &l));
      FGAC_RETURN_NOT_OK(EvalScalarBatch(s->right, chunk, sel, &r));
      switch (s->bin_op) {
        case sql::BinOp::kEq:
        case sql::BinOp::kNe:
        case sql::BinOp::kLt:
        case sql::BinOp::kLe:
        case sql::BinOp::kGt:
        case sql::BinOp::kGe:
          return CompareBatch(s->bin_op, l, r, out);
        case sql::BinOp::kLike:
          return LikeBatch(l, r, out);
        default:
          return ArithBatch(s->bin_op, l, r, out);
      }
    }
    case ScalarKind::kUnary: {
      ColumnVector v;
      FGAC_RETURN_NOT_OK(EvalScalarBatch(s->operand, chunk, sel, &v));
      switch (s->un_op) {
        case sql::UnOp::kNot: {
          out->Reserve(n);
          for (size_t i = 0; i < n; ++i) {
            std::optional<bool> t = SqlNot(TruthAt(v, i));
            if (t.has_value()) {
              out->AppendBool(*t);
            } else {
              out->AppendNull();
            }
          }
          return Status::OK();
        }
        case sql::UnOp::kNeg:
          return NegBatch(v, out);
        case sql::UnOp::kIsNull: {
          out->Reserve(n);
          for (size_t i = 0; i < n; ++i) out->AppendBool(v.IsNull(i));
          return Status::OK();
        }
        case sql::UnOp::kIsNotNull: {
          out->Reserve(n);
          for (size_t i = 0; i < n; ++i) out->AppendBool(!v.IsNull(i));
          return Status::OK();
        }
      }
      return Status::ExecutionError("unsupported unary operator");
    }
    case ScalarKind::kInList:
      return InListBatch(s, chunk, sel, out);
  }
  return Status::ExecutionError("unsupported scalar kind");
}

Status FilterSelection(const std::vector<ScalarPtr>& predicates,
                       const DataChunk& chunk, Selection* sel) {
  ColumnVector result;
  for (const ScalarPtr& p : predicates) {
    if (sel->empty()) return Status::OK();
    FGAC_RETURN_NOT_OK(EvalScalarBatch(p, chunk, *sel, &result));
    Selection next;
    next.reserve(sel->size());
    for (size_t i = 0; i < sel->size(); ++i) {
      std::optional<bool> t = TruthAt(result, i);
      if (t.has_value() && *t) next.push_back((*sel)[i]);
    }
    *sel = std::move(next);
  }
  return Status::OK();
}

Status ProjectChunk(const std::vector<ScalarPtr>& exprs, const DataChunk& in,
                    DataChunk* out) {
  Selection sel;
  IdentitySelection(in.size(), &sel);
  std::vector<ColumnVector> cols(exprs.size());
  for (size_t j = 0; j < exprs.size(); ++j) {
    FGAC_RETURN_NOT_OK(EvalScalarBatch(exprs[j], in, sel, &cols[j]));
  }
  out->AdoptColumns(std::move(cols), in.size());
  return Status::OK();
}

Result<bool> PassesAll(const std::vector<ScalarPtr>& predicates,
                       const Row& row) {
  for (const ScalarPtr& p : predicates) {
    FGAC_ASSIGN_OR_RETURN(bool pass, algebra::EvalPredicate(p, row));
    if (!pass) return false;
  }
  return true;
}

Result<Row> ProjectRow(const std::vector<ScalarPtr>& exprs, const Row& row) {
  Row out;
  out.reserve(exprs.size());
  for (const ScalarPtr& e : exprs) {
    FGAC_ASSIGN_OR_RETURN(Value v, algebra::EvalScalar(e, row));
    out.push_back(std::move(v));
  }
  return out;
}

JoinKeys SplitJoinKeys(const std::vector<ScalarPtr>& predicates,
                       size_t left_arity) {
  JoinKeys out;
  for (const ScalarPtr& p : predicates) {
    if (p->kind == algebra::ScalarKind::kBinary &&
        p->bin_op == sql::BinOp::kEq) {
      std::set<int> lslots, rslots;
      algebra::CollectSlots(p->left, &lslots);
      algebra::CollectSlots(p->right, &rslots);
      auto all_left = [&](const std::set<int>& s) {
        return !s.empty() &&
               *s.rbegin() < static_cast<int>(left_arity);
      };
      auto all_right = [&](const std::set<int>& s) {
        return !s.empty() && *s.begin() >= static_cast<int>(left_arity);
      };
      auto shift = [&](const ScalarPtr& s) {
        return algebra::RemapSlots(s, [&](int slot) {
          return slot - static_cast<int>(left_arity);
        });
      };
      if (all_left(lslots) && all_right(rslots)) {
        out.left_keys.push_back(p->left);
        out.right_keys.push_back(shift(p->right));
        continue;
      }
      if (all_left(rslots) && all_right(lslots)) {
        out.left_keys.push_back(p->right);
        out.right_keys.push_back(shift(p->left));
        continue;
      }
    }
    out.residual.push_back(p);
  }
  return out;
}

}  // namespace fgac::exec
