#include "exec/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "exec/eval.h"
#include "exec/exec_stats.h"
#include "exec/executor.h"
#include "exec/operators.h"
#include "exec/parallel.h"
#include "exec/scheduler.h"
#include "storage/table_data.h"

namespace fgac::exec {

using algebra::PlanKind;
using algebra::PlanPtr;

namespace {

// ---------------------------------------------------------------------------
// Shared pipeline state (prepared serially, then read-only across tasks)
// ---------------------------------------------------------------------------

/// Shared morsel cursor over one base table: every scan task claims
/// [next, next + kMorselSize) ranges until the table is exhausted. This is
/// where intra-pipeline load balancing comes from; inter-pipeline balancing
/// is the scheduler's job.
struct MorselSource {
  const storage::TableData* table = nullptr;
  std::atomic<size_t> next{0};
  /// Shared guardrail for the whole query (may be null). One instance
  /// serves every task: its counters are atomic and Check() is read-only.
  common::QueryGuard* guard = nullptr;
  /// First-error-wins abort: a failing task raises it; the others see it
  /// at their next morsel claim and end their streams cleanly. The
  /// scheduler keeps its own DAG-level abort for tasks not yet started;
  /// this flag additionally stops tasks already mid-drain.
  std::atomic<bool> abort{false};
};

/// One hash-join stage on the fragment's left spine: the build side runs
/// exactly once as its own pipeline, then is probed read-only by every
/// scan task.
struct JoinStage {
  JoinKeys keys;
  HashJoinTable table;
};

/// Everything the per-task pipelines of one fragment share. Joins are
/// stored in left-spine bottom-up order; BuildThreadPipeline consumes them
/// in the same order.
struct SharedPipeline {
  MorselSource source;
  std::vector<std::unique_ptr<JoinStage>> joins;
};

// ---------------------------------------------------------------------------
// Per-task operators
// ---------------------------------------------------------------------------

/// Base-table scan over the shared morsel cursor. Unlike ScanOp, Open()
/// does NOT rewind (the cursor is shared); pipeline task trees are built,
/// drained once, and discarded inside one scheduler task.
class MorselScanOp final : public Operator {
 public:
  /// `morsel_count` (may be null) is the owning task's private counter;
  /// the task folds it into ExecStats when it finishes.
  explicit MorselScanOp(MorselSource* source, uint64_t* morsel_count = nullptr)
      : source_(source), morsel_count_(morsel_count) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(DataChunk& out) override {
    FGAC_FAULT_POINT("parallel.morsel");
    // Another task already failed: end this stream cleanly (the scheduler
    // discards partial output once it sees the failing task's status).
    if (source_->abort.load(std::memory_order_acquire)) {
      out.Reset(0);
      return false;
    }
    FGAC_RETURN_NOT_OK(common::GuardCheck(source_->guard));
    size_t total = source_->table->num_rows();
    while (true) {
      size_t start =
          source_->next.fetch_add(kMorselSize, std::memory_order_relaxed);
      if (start >= total) {
        out.Reset(0);
        return false;
      }
      FGAC_ASSIGN_OR_RETURN(
          size_t n, source_->table->ScanChunk(
                        start, std::min(kMorselSize, total - start), &out));
      if (n > 0) {
        if (morsel_count_ != nullptr) ++*morsel_count_;
        FGAC_RETURN_NOT_OK(common::GuardChargeRows(source_->guard, n));
        return true;
      }
    }
  }

 private:
  MorselSource* source_;
  uint64_t* morsel_count_ = nullptr;
};

/// Probe side of a shared hash join: owns its probe cursor (per-task
/// state), borrows the build table from the JoinStage.
class SharedProbeOp final : public Operator {
 public:
  SharedProbeOp(const JoinStage* stage, OperatorPtr left)
      : stage_(stage), left_(std::move(left)) {}
  Status Open() override {
    cursor_.Reset();
    return left_->Open();
  }
  Result<bool> Next(DataChunk& out) override {
    FGAC_ASSIGN_OR_RETURN(
        bool more, cursor_.Next(*left_, stage_->keys.left_keys,
                                stage_->keys.residual, stage_->table, out));
    // Same work-bound accounting as the serial HashJoinOp: duplicate build
    // keys can fan probe rows out well past what the scan charged.
    if (more) FGAC_RETURN_NOT_OK(common::GuardChargeRows(guard_, out.size()));
    return more;
  }

 private:
  const JoinStage* stage_;
  OperatorPtr left_;
  HashProbeCursor cursor_;
};

/// Builds one task's private operator tree over the shared state. Shape
/// has already been validated by PipelineSourceNode; joins are consumed in
/// the same bottom-up order PrepareFragment produced them.
OperatorPtr BuildThreadPipeline(const PlanPtr& plan, SharedPipeline* shared,
                                size_t* next_join, ExecStats* stats,
                                uint64_t* morsel_count) {
  // Every task's operator for a given logical node charges the same shared
  // OpStats (atomic counters), so the rendered numbers are totals across
  // the fan-out.
  auto wrap = [stats, &plan](OperatorPtr op) {
    if (stats == nullptr) return op;
    return OperatorPtr(new StatsOp(stats->NodeFor(plan.get()), std::move(op)));
  };
  switch (plan->kind) {
    case PlanKind::kGet:
      return wrap(OperatorPtr(new MorselScanOp(&shared->source, morsel_count)));
    case PlanKind::kSelect:
      return wrap(OperatorPtr(new FilterOp(
          plan->predicates, BuildThreadPipeline(plan->children[0], shared,
                                                next_join, stats,
                                                morsel_count))));
    case PlanKind::kProject:
      return wrap(OperatorPtr(new ProjectOp(
          plan->exprs, BuildThreadPipeline(plan->children[0], shared,
                                           next_join, stats, morsel_count))));
    case PlanKind::kJoin: {
      OperatorPtr left = BuildThreadPipeline(plan->children[0], shared,
                                             next_join, stats, morsel_count);
      const JoinStage* stage = shared->joins[(*next_join)++].get();
      OperatorPtr probe(new SharedProbeOp(stage, std::move(left)));
      probe->set_guard(shared->source.guard);
      return wrap(std::move(probe));
    }
    default:
      return nullptr;  // unreachable: shape checked before decomposition
  }
}

Status DrainRows(Operator& root, std::vector<Row>* rows) {
  DataChunk chunk;
  while (true) {
    Result<bool> more = root.Next(chunk);
    if (!more.ok()) return more.status();
    if (!more.value()) return Status::OK();
    for (size_t i = 0; i < chunk.size(); ++i) rows->push_back(chunk.GetRow(i));
  }
}

// ---------------------------------------------------------------------------
// Decomposition: plan -> fragments -> pipeline DAG
// ---------------------------------------------------------------------------

/// How a fragment's pipelines combine into its result relation.
enum class FragMode { kGather, kAggregate, kDistinct, kSort, kSerial };

/// One non-UNION subtree of the plan: its shared morsel/join state, the
/// per-task outputs its scan pipeline produces, and the merged result once
/// its breaker pipeline (if any) has run. Fragments live in a std::deque so
/// task closures can hold stable pointers while later fragments append.
struct Fragment {
  PlanPtr root;
  PlanPtr child;  // the morsel pipeline subtree (== root unless a breaker)
  FragMode mode = FragMode::kGather;
  SharedPipeline shared;
  std::vector<PlanPtr> build_plans;  // per join stage, spine order
  std::vector<std::vector<Row>> per_task;
  std::vector<AggGroups> partials;
  std::optional<storage::Relation> result;
};

/// Wall-time + row meters for one pipeline, filled by its tasks and read
/// after the DAG settles. Lives in a std::deque for pointer stability.
struct SetMeter {
  std::atomic<uint64_t> rows{0};
  std::atomic<uint64_t> nanos{0};
};

/// Accumulates the DAG plus the bookkeeping ExecStats wants per pipeline.
struct DagBuilder {
  std::vector<PipelineTaskSet> sets;
  struct Seed {
    std::string kind;
    std::string label;
    std::vector<size_t> deps;
    size_t tasks = 0;
    SetMeter* meter = nullptr;
  };
  std::vector<Seed> seeds;
  std::deque<SetMeter> meters;
  bool any_scan = false;

  /// Meters are created before their set so task closures can capture the
  /// stable pointer by value.
  SetMeter* NewMeter() {
    meters.emplace_back();
    return &meters.back();
  }

  size_t AddSet(std::string kind, std::string label, std::vector<size_t> deps,
                std::string task_span,
                std::vector<std::function<Status(size_t)>> tasks,
                SetMeter* meter) {
    PipelineTaskSet set;
    set.tasks = std::move(tasks);
    set.deps = deps;
    set.task_span = std::move(task_span);
    set.label = kind + "(" + label + ")";
    seeds.push_back(Seed{kind, std::move(label), std::move(deps),
                         set.tasks.size(), meter});
    sets.push_back(std::move(set));
    return sets.size() - 1;
  }
};

uint64_t ElapsedNanos(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Resolves the fragment's source table and creates (but does not build)
/// its join stages, in left-spine bottom-up order.
Status PrepareFragment(const PlanPtr& plan, const storage::DatabaseState& state,
                       Fragment* frag, common::QueryGuard* guard) {
  switch (plan->kind) {
    case PlanKind::kGet: {
      const storage::TableData* data = state.GetTable(plan->table);
      if (data == nullptr) {
        return Status::ExecutionError("no data for table '" + plan->table +
                                      "'");
      }
      frag->shared.source.table = data;
      frag->shared.source.guard = guard;
      return Status::OK();
    }
    case PlanKind::kSelect:
    case PlanKind::kProject:
      return PrepareFragment(plan->children[0], state, frag, guard);
    case PlanKind::kJoin: {
      FGAC_RETURN_NOT_OK(
          PrepareFragment(plan->children[0], state, frag, guard));
      auto stage = std::make_unique<JoinStage>();
      stage->keys = SplitJoinKeys(plan->predicates,
                                  algebra::OutputArity(*plan->children[0]));
      frag->shared.joins.push_back(std::move(stage));
      frag->build_plans.push_back(plan->children[1]);
      return Status::OK();
    }
    default:
      return Status::ExecutionError("plan shape is not a parallel pipeline");
  }
}

void RecordRows(ExecStats* stats, const algebra::Plan* node, uint64_t rows) {
  if (stats != nullptr) {
    stats->NodeFor(node)->rows_out.fetch_add(rows, std::memory_order_relaxed);
  }
}

/// Appends one fragment's pipelines (builds -> scan -> optional merge) to
/// the DAG, or recurses over UNION ALL branches. Fragment order is the
/// depth-first plan order, which AssembleResult later consumes in lockstep.
Status AddFragments(const PlanPtr& plan, const storage::DatabaseState& state,
                    size_t num_threads, common::QueryGuard* guard,
                    ExecStats* stats, std::deque<Fragment>* frags,
                    DagBuilder* dag) {
  if (plan->kind == PlanKind::kUnionAll) {
    for (const PlanPtr& child : plan->children) {
      FGAC_RETURN_NOT_OK(
          AddFragments(child, state, num_threads, guard, stats, frags, dag));
    }
    return Status::OK();
  }

  const bool breaker_root = plan->kind == PlanKind::kAggregate ||
                            plan->kind == PlanKind::kDistinct ||
                            plan->kind == PlanKind::kSort;
  bool morsel_shape;
  switch (plan->kind) {
    case PlanKind::kGet:
    case PlanKind::kSelect:
    case PlanKind::kProject:
    case PlanKind::kJoin:
      morsel_shape = PipelineSourceNode(plan) != nullptr;
      break;
    case PlanKind::kAggregate:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
      morsel_shape = PipelineSourceNode(plan->children[0]) != nullptr;
      break;
    default:
      morsel_shape = false;
      break;
  }

  frags->emplace_back();
  Fragment* frag = &frags->back();
  frag->root = plan;
  const storage::DatabaseState* st = &state;

  if (!morsel_shape) {
    // Not a morsel shape (kValues/kLimit branch, non-equi join, ...): one
    // single-task pipeline running the serial engine, so a UNION ALL over
    // mixed branches still executes everything through one DAG.
    frag->mode = FragMode::kSerial;
    SetMeter* meter = dag->NewMeter();
    dag->AddSet("serial", PlanNodeLabel(*plan), {}, "exec.serial",
                {[frag, st, guard, stats, meter](size_t) -> Status {
                  auto t0 = std::chrono::steady_clock::now();
                  Result<storage::Relation> r =
                      ExecutePlan(frag->root, *st, guard, stats);
                  meter->nanos.fetch_add(ElapsedNanos(t0),
                                         std::memory_order_relaxed);
                  if (!r.ok()) return r.status();
                  meter->rows.fetch_add(r.value().num_rows(),
                                        std::memory_order_relaxed);
                  frag->result = std::move(r).value();
                  return Status::OK();
                }},
                meter);
    return Status::OK();
  }

  frag->child = breaker_root ? plan->children[0] : plan;
  switch (plan->kind) {
    case PlanKind::kAggregate:
      frag->mode = FragMode::kAggregate;
      break;
    case PlanKind::kDistinct:
      frag->mode = FragMode::kDistinct;
      break;
    case PlanKind::kSort:
      frag->mode = FragMode::kSort;
      break;
    default:
      frag->mode = FragMode::kGather;
      break;
  }
  FGAC_RETURN_NOT_OK(PrepareFragment(frag->child, state, frag, guard));

  // Build pipelines: one single-task set per join stage, no dependencies —
  // independent build sides of one query now run concurrently (the old
  // engine built them serially), and build sides of *different* queries
  // interleave on the same pool.
  std::vector<size_t> build_ids;
  for (size_t j = 0; j < frag->shared.joins.size(); ++j) {
    SetMeter* meter = dag->NewMeter();
    build_ids.push_back(dag->AddSet(
        "build", PlanNodeLabel(*frag->build_plans[j]), {}, "exec.build",
        {[frag, j, st, guard, stats, meter](size_t) -> Status {
          auto t0 = std::chrono::steady_clock::now();
          JoinStage* stage = frag->shared.joins[j].get();
          FGAC_ASSIGN_OR_RETURN(
              OperatorPtr build,
              BuildPhysicalPlan(frag->build_plans[j], *st, guard, stats));
          FGAC_RETURN_NOT_OK(build->Open());
          FGAC_RETURN_NOT_OK(
              stage->table.BuildFrom(*build, stage->keys.right_keys, guard));
          uint64_t built = 0;
          for (const auto& [key, rows] : stage->table.map) {
            built += rows.size();
          }
          meter->rows.fetch_add(built, std::memory_order_relaxed);
          meter->nanos.fetch_add(ElapsedNanos(t0), std::memory_order_relaxed);
          return Status::OK();
        }},
        meter));
  }

  // Scan pipeline: num_threads tasks over the shared morsel cursor, gated
  // on every build of this fragment.
  dag->any_scan = true;
  const FragMode mode = frag->mode;
  frag->per_task.resize(num_threads);
  if (mode == FragMode::kAggregate) frag->partials.resize(num_threads);
  SetMeter* scan_meter = dag->NewMeter();
  std::vector<std::function<Status(size_t)>> scan_tasks;
  scan_tasks.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    scan_tasks.push_back([frag, guard, stats, mode,
                          scan_meter](size_t task) -> Status {
      auto t0 = std::chrono::steady_clock::now();
      size_t next_join = 0;
      uint64_t morsels = 0;
      OperatorPtr root = BuildThreadPipeline(frag->child, &frag->shared,
                                             &next_join, stats, &morsels);
      if (mode == FragMode::kDistinct) {
        // Per-task pre-dedup shrinks what crosses the merge; the merge
        // pipeline eliminates duplicates that appeared on different tasks.
        OperatorPtr op(new DistinctOp(std::move(root)));
        op->set_guard(guard);
        root = std::move(op);
      }
      Status status = root->Open();
      if (status.ok()) {
        if (mode == FragMode::kAggregate) {
          status = AccumulateGroups(*root, frag->root->group_by,
                                    frag->root->aggs, &frag->partials[task],
                                    guard);
        } else {
          status = DrainRows(*root, &frag->per_task[task]);
        }
      }
      if (!status.ok()) {
        // Make peers of this scan drain at their next morsel claim even
        // before the scheduler's DAG-level abort propagates.
        frag->shared.source.abort.store(true, std::memory_order_release);
      }
      // Morsel counts go through the locked adder: scan sets of different
      // UNION ALL branches may run concurrently and share slot indices.
      if (stats != nullptr) stats->AddWorkerMorsels(task, morsels);
      uint64_t rows = mode == FragMode::kAggregate
                          ? frag->partials[task].size()
                          : frag->per_task[task].size();
      scan_meter->rows.fetch_add(rows, std::memory_order_relaxed);
      scan_meter->nanos.fetch_add(ElapsedNanos(t0), std::memory_order_relaxed);
      return status;
    });
  }
  const algebra::Plan* source = PipelineSourceNode(frag->child);
  size_t scan_id = dag->AddSet("scan", PlanNodeLabel(*source), build_ids,
                               "exec.worker", std::move(scan_tasks),
                               scan_meter);

  if (!breaker_root) return Status::OK();

  // Merge pipeline: the breaker at the fragment root, single task, gated
  // on the scan.
  SetMeter* merge_meter = dag->NewMeter();
  dag->AddSet(
      "merge", PlanNodeLabel(*plan), {scan_id}, "exec.merge",
      {[frag, guard, stats, merge_meter, num_threads](size_t) -> Status {
        auto t0 = std::chrono::steady_clock::now();
        storage::Relation out(algebra::OutputNames(*frag->root));
        switch (frag->mode) {
          case FragMode::kAggregate: {
            AggGroups merged = std::move(frag->partials[0]);
            for (size_t t = 1; t < num_threads; ++t) {
              for (auto& [key, accs] : frag->partials[t]) {
                auto it = merged.find(key);
                if (it == merged.end()) {
                  merged.emplace(key, std::move(accs));
                } else {
                  for (size_t a = 0; a < accs.size(); ++a) {
                    FGAC_RETURN_NOT_OK(it->second[a].Merge(accs[a]));
                  }
                }
              }
            }
            out.mutable_rows() =
                FinishGroups(std::move(merged), frag->root->aggs,
                             frag->root->group_by.empty());
            break;
          }
          case FragMode::kDistinct: {
            std::unordered_set<Row, RowHash, RowEq> seen;
            for (std::vector<Row>& rows : frag->per_task) {
              for (Row& r : rows) {
                if (seen.insert(r).second) {
                  out.mutable_rows().push_back(std::move(r));
                }
              }
            }
            break;
          }
          case FragMode::kSort: {
            // Parallel gather, single-task sort: sorting is a full-input
            // barrier anyway, so only the work below it fans out.
            storage::Relation gathered(algebra::OutputNames(*frag->child));
            size_t total = 0;
            for (const std::vector<Row>& rows : frag->per_task) {
              total += rows.size();
            }
            gathered.mutable_rows().reserve(total);
            for (std::vector<Row>& rows : frag->per_task) {
              for (Row& r : rows) {
                gathered.mutable_rows().push_back(std::move(r));
              }
            }
            SortOp sorter(frag->root->sort_items,
                          OperatorPtr(new ScanOp(&gathered.rows())));
            sorter.set_guard(guard);
            FGAC_RETURN_NOT_OK(sorter.Open());
            DataChunk chunk;
            while (true) {
              FGAC_ASSIGN_OR_RETURN(bool more, sorter.Next(chunk));
              if (!more) break;
              out.AppendChunk(chunk);
            }
            break;
          }
          default:
            return Status::ExecutionError(
                "merge pipeline on non-breaker root");
        }
        // The merge runs outside any operator; attribute the final row
        // count to the breaker node so the printout matches the serial
        // plan shape.
        RecordRows(stats, frag->root.get(), out.num_rows());
        merge_meter->rows.fetch_add(out.num_rows(), std::memory_order_relaxed);
        merge_meter->nanos.fetch_add(ElapsedNanos(t0),
                                     std::memory_order_relaxed);
        frag->result = std::move(out);
        return Status::OK();
      }},
      merge_meter);
  return Status::OK();
}

storage::Relation GatherToRelation(const PlanPtr& plan,
                                   std::vector<std::vector<Row>> per_task) {
  storage::Relation out(algebra::OutputNames(*plan));
  size_t total = 0;
  for (const std::vector<Row>& rows : per_task) total += rows.size();
  out.mutable_rows().reserve(total);
  for (std::vector<Row>& rows : per_task) {
    for (Row& r : rows) out.mutable_rows().push_back(std::move(r));
  }
  return out;
}

/// Consumes fragments in the same depth-first order AddFragments appended
/// them, concatenating UNION ALL branches.
storage::Relation AssembleResult(const PlanPtr& plan, ExecStats* stats,
                                 std::deque<Fragment>* frags, size_t* cursor) {
  if (plan->kind == PlanKind::kUnionAll) {
    storage::Relation out(algebra::OutputNames(*plan));
    for (const PlanPtr& child : plan->children) {
      storage::Relation r = AssembleResult(child, stats, frags, cursor);
      for (Row& row : r.mutable_rows()) {
        out.mutable_rows().push_back(std::move(row));
      }
    }
    RecordRows(stats, plan.get(), out.num_rows());
    return out;
  }
  Fragment& frag = (*frags)[(*cursor)++];
  if (frag.result.has_value()) return std::move(*frag.result);
  return GatherToRelation(frag.root, std::move(frag.per_task));
}

}  // namespace

const algebra::Plan* PipelineSourceNode(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kGet:
      return plan.get();
    case PlanKind::kSelect:
    case PlanKind::kProject:
      return PipelineSourceNode(plan->children[0]);
    case PlanKind::kJoin: {
      size_t left_arity = algebra::OutputArity(*plan->children[0]);
      JoinKeys keys = SplitJoinKeys(plan->predicates, left_arity);
      if (keys.left_keys.empty()) return nullptr;
      return PipelineSourceNode(plan->children[0]);
    }
    default:
      return nullptr;
  }
}

Result<storage::Relation> ExecutePlanPipelined(
    const PlanPtr& plan, const storage::DatabaseState& state,
    size_t num_threads, common::QueryGuard* guard, ExecStats* stats,
    const common::TraceContext* trace, const DagOptions& dag_opts) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  num_threads = std::max<size_t>(1, num_threads);

  std::deque<Fragment> frags;
  DagBuilder dag;
  FGAC_RETURN_NOT_OK(
      AddFragments(plan, state, num_threads, guard, stats, &frags, &dag));
  if (stats != nullptr && dag.any_scan &&
      stats->worker_morsels().size() != num_threads) {
    stats->SetThreads(num_threads);
  }

  std::vector<char> started;
  Status dag_status = PipelineScheduler::Shared().RunDag(
      std::move(dag.sets), guard, trace, &started, dag_opts);

  if (stats != nullptr) {
    for (size_t i = 0; i < dag.seeds.size(); ++i) {
      const DagBuilder::Seed& seed = dag.seeds[i];
      PipelineStat p;
      p.kind = seed.kind;
      p.label = seed.label;
      p.deps = seed.deps;
      p.tasks = seed.tasks;
      p.rows = seed.meter->rows.load(std::memory_order_relaxed);
      p.nanos = seed.meter->nanos.load(std::memory_order_relaxed);
      p.cancelled = i < started.size() && started[i] == 0;
      stats->AddPipelineStat(std::move(p));
    }
  }
  FGAC_RETURN_NOT_OK(dag_status);

  size_t cursor = 0;
  return AssembleResult(plan, stats, &frags, &cursor);
}

}  // namespace fgac::exec
