#include "exec/executor.h"

#include "exec/eval.h"
#include "exec/exec_stats.h"

namespace fgac::exec {

using algebra::OutputArity;
using algebra::PlanKind;
using algebra::PlanPtr;

namespace {

/// Plan shapes arrive from the binder/optimizer, but a malformed tree must
/// degrade to a Status in Release builds instead of indexing past
/// `children` — plans are ultimately derived from user input.
Status ValidatePlanShape(const algebra::Plan& plan) {
  size_t have = plan.children.size();
  switch (plan.kind) {
    case PlanKind::kGet:
    case PlanKind::kValues:
      return Status::OK();
    case PlanKind::kSelect:
    case PlanKind::kProject:
    case PlanKind::kAggregate:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      if (have != 1) {
        return Status::Internal("plan node expects 1 child, has " +
                                std::to_string(have));
      }
      return Status::OK();
    case PlanKind::kJoin:
      if (have != 2) {
        return Status::Internal("join node expects 2 children, has " +
                                std::to_string(have));
      }
      return Status::OK();
    case PlanKind::kUnionAll:
      if (have == 0) {
        return Status::Internal("union-all node has no children");
      }
      return Status::OK();
  }
  return Status::Internal("unknown plan kind");
}

Result<OperatorPtr> BuildNode(const PlanPtr& plan,
                              const storage::DatabaseState& state,
                              common::QueryGuard* guard, ExecStats* stats) {
  switch (plan->kind) {
    case PlanKind::kGet: {
      const storage::TableData* data = state.GetTable(plan->table);
      if (data == nullptr) {
        return Status::ExecutionError("no data for table '" + plan->table +
                                      "'");
      }
      // ScanOp BORROWS the table storage: the operator tree is only valid
      // for the lifetime of `state`, and callers must not mutate the table
      // while the tree is live. ExecutePlan satisfies both by building,
      // draining, and discarding the tree within one call; longer-lived
      // trees (prepared plans) must be rebuilt after any write.
      return OperatorPtr(new ScanOp(data));
    }
    case PlanKind::kValues:
      return OperatorPtr(new ValuesOp(plan->rows));
    case PlanKind::kSelect: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state, guard, stats));
      return OperatorPtr(new FilterOp(plan->predicates, std::move(child)));
    }
    case PlanKind::kProject: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state, guard, stats));
      return OperatorPtr(new ProjectOp(plan->exprs, std::move(child)));
    }
    case PlanKind::kJoin: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr left,
                            BuildPhysicalPlan(plan->children[0], state, guard, stats));
      FGAC_ASSIGN_OR_RETURN(OperatorPtr right,
                            BuildPhysicalPlan(plan->children[1], state, guard, stats));
      size_t left_arity = OutputArity(*plan->children[0]);
      JoinKeys keys = SplitJoinKeys(plan->predicates, left_arity);
      if (!keys.left_keys.empty()) {
        return OperatorPtr(new HashJoinOp(
            std::move(keys.left_keys), std::move(keys.right_keys),
            std::move(keys.residual), std::move(left), std::move(right)));
      }
      return OperatorPtr(new NestedLoopJoinOp(plan->predicates, std::move(left),
                                              std::move(right)));
    }
    case PlanKind::kAggregate: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state, guard, stats));
      return OperatorPtr(
          new HashAggregateOp(plan->group_by, plan->aggs, std::move(child)));
    }
    case PlanKind::kDistinct: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state, guard, stats));
      return OperatorPtr(new DistinctOp(std::move(child)));
    }
    case PlanKind::kSort: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state, guard, stats));
      return OperatorPtr(new SortOp(plan->sort_items, std::move(child)));
    }
    case PlanKind::kLimit: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state, guard, stats));
      return OperatorPtr(new LimitOp(plan->limit, std::move(child)));
    }
    case PlanKind::kUnionAll: {
      std::vector<OperatorPtr> children;
      children.reserve(plan->children.size());
      for (const PlanPtr& c : plan->children) {
        FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildPhysicalPlan(c, state, guard, stats));
        children.push_back(std::move(child));
      }
      return OperatorPtr(new UnionAllOp(std::move(children)));
    }
  }
  return Status::ExecutionError("unsupported plan kind");
}

}  // namespace

Result<OperatorPtr> BuildPhysicalPlan(const PlanPtr& plan,
                                      const storage::DatabaseState& state,
                                      common::QueryGuard* guard,
                                      ExecStats* stats) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  FGAC_RETURN_NOT_OK(ValidatePlanShape(*plan));
  FGAC_ASSIGN_OR_RETURN(OperatorPtr op, BuildNode(plan, state, guard, stats));
  op->set_guard(guard);
  if (stats != nullptr) {
    // Wrap after set_guard: the inner operator keeps its guard, the
    // transparent wrapper only charges counters.
    op = OperatorPtr(new StatsOp(stats->NodeFor(plan.get()), std::move(op)));
  }
  return op;
}

Result<storage::Relation> ExecutePlan(const PlanPtr& plan,
                                      const storage::DatabaseState& state,
                                      common::QueryGuard* guard,
                                      ExecStats* stats) {
  FGAC_ASSIGN_OR_RETURN(OperatorPtr root,
                        BuildPhysicalPlan(plan, state, guard, stats));
  FGAC_RETURN_NOT_OK(root->Open());
  storage::Relation out(algebra::OutputNames(*plan));
  DataChunk chunk;
  while (true) {
    FGAC_ASSIGN_OR_RETURN(bool more, root->Next(chunk));
    if (!more) break;
    out.AppendChunk(chunk);
  }
  return out;
}

}  // namespace fgac::exec
