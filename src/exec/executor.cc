#include "exec/executor.h"

#include "exec/eval.h"

namespace fgac::exec {

using algebra::OutputArity;
using algebra::PlanKind;
using algebra::PlanPtr;

Result<OperatorPtr> BuildPhysicalPlan(const PlanPtr& plan,
                                      const storage::DatabaseState& state) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  switch (plan->kind) {
    case PlanKind::kGet: {
      const storage::TableData* data = state.GetTable(plan->table);
      if (data == nullptr) {
        return Status::ExecutionError("no data for table '" + plan->table + "'");
      }
      // ScanOp BORROWS the table storage: the operator tree is only valid
      // for the lifetime of `state`, and callers must not mutate the table
      // while the tree is live. ExecutePlan satisfies both by building,
      // draining, and discarding the tree within one call; longer-lived
      // trees (prepared plans) must be rebuilt after any write.
      return OperatorPtr(new ScanOp(data));
    }
    case PlanKind::kValues:
      return OperatorPtr(new ValuesOp(plan->rows));
    case PlanKind::kSelect: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state));
      return OperatorPtr(new FilterOp(plan->predicates, std::move(child)));
    }
    case PlanKind::kProject: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state));
      return OperatorPtr(new ProjectOp(plan->exprs, std::move(child)));
    }
    case PlanKind::kJoin: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr left,
                            BuildPhysicalPlan(plan->children[0], state));
      FGAC_ASSIGN_OR_RETURN(OperatorPtr right,
                            BuildPhysicalPlan(plan->children[1], state));
      size_t left_arity = OutputArity(*plan->children[0]);
      JoinKeys keys = SplitJoinKeys(plan->predicates, left_arity);
      if (!keys.left_keys.empty()) {
        return OperatorPtr(new HashJoinOp(
            std::move(keys.left_keys), std::move(keys.right_keys),
            std::move(keys.residual), std::move(left), std::move(right)));
      }
      return OperatorPtr(new NestedLoopJoinOp(plan->predicates, std::move(left),
                                              std::move(right)));
    }
    case PlanKind::kAggregate: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state));
      return OperatorPtr(
          new HashAggregateOp(plan->group_by, plan->aggs, std::move(child)));
    }
    case PlanKind::kDistinct: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state));
      return OperatorPtr(new DistinctOp(std::move(child)));
    }
    case PlanKind::kSort: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state));
      return OperatorPtr(new SortOp(plan->sort_items, std::move(child)));
    }
    case PlanKind::kLimit: {
      FGAC_ASSIGN_OR_RETURN(OperatorPtr child,
                            BuildPhysicalPlan(plan->children[0], state));
      return OperatorPtr(new LimitOp(plan->limit, std::move(child)));
    }
    case PlanKind::kUnionAll: {
      std::vector<OperatorPtr> children;
      children.reserve(plan->children.size());
      for (const PlanPtr& c : plan->children) {
        FGAC_ASSIGN_OR_RETURN(OperatorPtr child, BuildPhysicalPlan(c, state));
        children.push_back(std::move(child));
      }
      return OperatorPtr(new UnionAllOp(std::move(children)));
    }
  }
  return Status::ExecutionError("unsupported plan kind");
}

Result<storage::Relation> ExecutePlan(const PlanPtr& plan,
                                      const storage::DatabaseState& state) {
  FGAC_ASSIGN_OR_RETURN(OperatorPtr root, BuildPhysicalPlan(plan, state));
  FGAC_RETURN_NOT_OK(root->Open());
  storage::Relation out(algebra::OutputNames(*plan));
  DataChunk chunk;
  while (true) {
    FGAC_ASSIGN_OR_RETURN(bool more, root->Next(chunk));
    if (!more) break;
    out.AppendChunk(chunk);
  }
  return out;
}

}  // namespace fgac::exec
