#ifndef FGAC_EXEC_PARALLEL_H_
#define FGAC_EXEC_PARALLEL_H_

#include <cstddef>

#include "algebra/plan.h"
#include "common/query_guard.h"
#include "common/result.h"
#include "common/trace.h"
#include "exec/scheduler.h"
#include "storage/database_state.h"
#include "storage/relation.h"

namespace fgac::exec {

class ExecStats;

/// Rows claimed per fetch from the shared morsel cursor. One morsel is one
/// output chunk, so load balancing granularity equals the vector size: small
/// enough that a thread stuck on an expensive filter does not hold up the
/// others, large enough that the atomic increment is amortized over ~1k rows.
inline constexpr size_t kMorselSize = 1024;

/// True when ParallelExecutePlan(plan, state, n>1) would actually fan the
/// plan out over multiple pipelines rather than falling back to the serial
/// executor. Exposed so tests and benchmarks can assert coverage.
bool IsParallelizable(const algebra::PlanPtr& plan,
                      const storage::DatabaseState& state);

/// Pipeline-parallel variant of ExecutePlan. Semantics are identical to
/// the serial executor (same rows as a multiset, same error statuses); only
/// scheduling differs. This is the thin entry point: it owns the serial
/// fallback, and delegates decomposable plans to ExecutePlanPipelined
/// (exec/pipeline.h), which breaks them into a DAG of pipelines run on the
/// shared PipelineScheduler / work-stealing pool.
///
/// Parallelized shapes: any left-spine pipeline of kGet / kSelect /
/// kProject / equi-key kJoin rooted at a base-table scan, optionally topped
/// by one kAggregate (partial per-task aggregation + merge pipeline),
/// kDistinct (per-task pre-dedup + merge dedup), or kSort (parallel gather
/// + single-task sort); kUnionAll branches decompose independently and
/// share one DAG. Everything else — kValues sources, non-equi joins,
/// kLimit (inherently serial early-out) — falls back to ExecutePlan.
///
/// Join build sides run as their own single-task pipelines (independent
/// builds proceed concurrently) and are shared read-only across all probe
/// tasks; base-table scans share a single atomic morsel cursor.
/// `num_threads` is the scan pipeline's task count; `num_threads <= 1` is
/// the serial executor. Callers must not mutate `state` while the call is
/// in flight (same contract as ExecutePlan, now enforced across threads by
/// TableData's columnar snapshot synchronization).
///
/// All tasks share `guard` (may be null): a cancel/deadline/budget trip
/// observed by any task aborts the DAG — running scans drain at their next
/// morsel claim, queued tasks no-op, dependent pipelines never start — and
/// the first failure (lowest pipeline/task index) is returned.
///
/// `stats` (may be null) collects per-operator counters — one shared
/// atomic OpStats per logical node charged by every task — plus per-worker
/// morsel counts and per-pipeline DAG stats for EXPLAIN ANALYZE.
///
/// `trace` (may be null/inactive) records one "exec.pipeline" span per
/// pipeline, per-task "exec.worker" / "exec.build" / "exec.merge" spans
/// (detail "worker=<t>"), and one "exec.serial" span when the plan falls
/// back to the serial executor, all parented under the caller's span — so
/// a Perfetto view of a query shows exactly which part of the plan ran
/// where.
///
/// `dag_opts` names the submitting session for the scheduler's weighted
/// round-robin (see DagOptions); the default is the shared anonymous
/// bucket.
Result<storage::Relation> ParallelExecutePlan(
    const algebra::PlanPtr& plan, const storage::DatabaseState& state,
    size_t num_threads, common::QueryGuard* guard = nullptr,
    ExecStats* stats = nullptr, const common::TraceContext* trace = nullptr,
    const DagOptions& dag_opts = DagOptions{});

}  // namespace fgac::exec

#endif  // FGAC_EXEC_PARALLEL_H_
