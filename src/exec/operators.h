#ifndef FGAC_EXEC_OPERATORS_H_
#define FGAC_EXEC_OPERATORS_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "algebra/scalar.h"
#include "common/result.h"
#include "common/value.h"

namespace fgac::exec {

/// Pull-based physical operator (the Volcano iterator model the paper's
/// optimizer context assumes). Next() returns one row, or nullopt at end.
class Operator {
 public:
  virtual ~Operator() = default;
  Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Resets state and prepares for iteration. May be called again after
  /// exhaustion to re-scan.
  virtual Status Open() = 0;

  /// Produces the next row or std::nullopt when exhausted.
  virtual Result<std::optional<Row>> Next() = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Scans a borrowed row vector (base table data or materialized input).
/// The rows must outlive the operator.
class ScanOp final : public Operator {
 public:
  explicit ScanOp(const std::vector<Row>* rows) : rows_(rows) {}
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<std::optional<Row>> Next() override;

 private:
  const std::vector<Row>* rows_;
  size_t pos_ = 0;
};

/// Emits an owned row vector (VALUES).
class ValuesOp final : public Operator {
 public:
  explicit ValuesOp(std::vector<Row> rows) : rows_(std::move(rows)) {}
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<std::optional<Row>> Next() override;

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class FilterOp final : public Operator {
 public:
  FilterOp(std::vector<algebra::ScalarPtr> predicates, OperatorPtr child)
      : predicates_(std::move(predicates)), child_(std::move(child)) {}
  Status Open() override { return child_->Open(); }
  Result<std::optional<Row>> Next() override;

 private:
  std::vector<algebra::ScalarPtr> predicates_;
  OperatorPtr child_;
};

class ProjectOp final : public Operator {
 public:
  ProjectOp(std::vector<algebra::ScalarPtr> exprs, OperatorPtr child)
      : exprs_(std::move(exprs)), child_(std::move(child)) {}
  Status Open() override { return child_->Open(); }
  Result<std::optional<Row>> Next() override;

 private:
  std::vector<algebra::ScalarPtr> exprs_;
  OperatorPtr child_;
};

/// Block nested-loop join: materializes the right input once, then streams
/// the left input against it, applying all predicates.
class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(std::vector<algebra::ScalarPtr> predicates,
                   OperatorPtr left, OperatorPtr right)
      : predicates_(std::move(predicates)),
        left_(std::move(left)),
        right_(std::move(right)) {}
  Status Open() override;
  Result<std::optional<Row>> Next() override;

 private:
  std::vector<algebra::ScalarPtr> predicates_;
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Row> right_rows_;
  std::optional<Row> current_left_;
  size_t right_pos_ = 0;
};

/// Hash join on equi-key expressions; residual predicates applied to the
/// combined row. Builds on the right input.
class HashJoinOp final : public Operator {
 public:
  HashJoinOp(std::vector<algebra::ScalarPtr> left_keys,
             std::vector<algebra::ScalarPtr> right_keys,
             std::vector<algebra::ScalarPtr> residual, OperatorPtr left,
             OperatorPtr right)
      : left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)),
        left_(std::move(left)),
        right_(std::move(right)) {}
  Status Open() override;
  Result<std::optional<Row>> Next() override;

 private:
  std::vector<algebra::ScalarPtr> left_keys_;
  std::vector<algebra::ScalarPtr> right_keys_;
  std::vector<algebra::ScalarPtr> residual_;
  OperatorPtr left_;
  OperatorPtr right_;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> build_;
  std::optional<Row> current_left_;
  const std::vector<Row>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
};

/// Hash aggregation; materializes all groups on Open.
class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(std::vector<algebra::ScalarPtr> group_by,
                  std::vector<algebra::AggExpr> aggs, OperatorPtr child)
      : group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        child_(std::move(child)) {}
  Status Open() override;
  Result<std::optional<Row>> Next() override;

 private:
  std::vector<algebra::ScalarPtr> group_by_;
  std::vector<algebra::AggExpr> aggs_;
  OperatorPtr child_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

class DistinctOp final : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child) : child_(std::move(child)) {}
  Status Open() override;
  Result<std::optional<Row>> Next() override;

 private:
  OperatorPtr child_;
  std::unordered_map<Row, bool, RowHash, RowEq> seen_;
};

class SortOp final : public Operator {
 public:
  SortOp(std::vector<algebra::SortItem> items, OperatorPtr child)
      : items_(std::move(items)), child_(std::move(child)) {}
  Status Open() override;
  Result<std::optional<Row>> Next() override;

 private:
  std::vector<algebra::SortItem> items_;
  OperatorPtr child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class LimitOp final : public Operator {
 public:
  LimitOp(int64_t limit, OperatorPtr child)
      : limit_(limit), child_(std::move(child)) {}
  Status Open() override {
    produced_ = 0;
    return child_->Open();
  }
  Result<std::optional<Row>> Next() override;

 private:
  int64_t limit_;
  OperatorPtr child_;
  int64_t produced_ = 0;
};

class UnionAllOp final : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> children)
      : children_(std::move(children)) {}
  Status Open() override;
  Result<std::optional<Row>> Next() override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

}  // namespace fgac::exec

#endif  // FGAC_EXEC_OPERATORS_H_
