#ifndef FGAC_EXEC_OPERATORS_H_
#define FGAC_EXEC_OPERATORS_H_

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/plan.h"
#include "algebra/scalar.h"
#include "common/query_guard.h"
#include "common/result.h"
#include "common/value.h"
#include "exec/chunk.h"

namespace fgac::storage {
class TableData;
}  // namespace fgac::storage

namespace fgac::exec {

/// Pull-based physical operator, vectorized: each Next() call fills a
/// DataChunk with up to ~DataChunk::kDefaultCapacity rows instead of
/// producing one tuple (the classic Volcano model this engine started from).
///
/// Contract:
///  - Open() resets state and prepares for iteration; it may be called again
///    after exhaustion to re-scan.
///  - Next(out) reshapes `out` and fills it with the next batch. It returns
///    true when `out` holds at least one row and false exactly at end of
///    stream (with `out` empty). Operators never return true with an empty
///    chunk, so callers can drive pipelines with `while (Next(chunk)) ...`.
class Operator {
 public:
  virtual ~Operator() = default;
  Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  virtual Status Open() = 0;

  /// Fills `out` with the next batch; false = exhausted.
  virtual Result<bool> Next(DataChunk& out) = 0;

  /// Attaches a query guardrail (may be null = no limits). Pipeline
  /// sources check it per chunk; materializing operators also charge
  /// rows/bytes. BuildPhysicalPlan sets it on every node, so manual
  /// operator assembly (tests, benches) may skip it entirely.
  void set_guard(common::QueryGuard* guard) { guard_ = guard; }
  common::QueryGuard* guard() const { return guard_; }

 protected:
  common::QueryGuard* guard_ = nullptr;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Scans a base table through TableData's chunked access path, or a borrowed
/// row vector (materialized input). Either source is BORROWED and must
/// outlive the operator — see BuildPhysicalPlan for the lifetime argument.
class ScanOp final : public Operator {
 public:
  explicit ScanOp(const storage::TableData* table) : table_(table) {}
  explicit ScanOp(const std::vector<Row>* rows) : rows_(rows) {}
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(DataChunk& out) override;

 private:
  const storage::TableData* table_ = nullptr;  // exactly one of table_/rows_
  const std::vector<Row>* rows_ = nullptr;     // is non-null
  size_t pos_ = 0;
};

/// Emits an owned row vector (VALUES). Rows may have arity zero
/// (`SELECT 1` scans a one-row, zero-column VALUES).
class ValuesOp final : public Operator {
 public:
  explicit ValuesOp(std::vector<Row> rows) : rows_(std::move(rows)) {}
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(DataChunk& out) override;

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class FilterOp final : public Operator {
 public:
  FilterOp(std::vector<algebra::ScalarPtr> predicates, OperatorPtr child)
      : predicates_(std::move(predicates)), child_(std::move(child)) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(DataChunk& out) override;

 private:
  std::vector<algebra::ScalarPtr> predicates_;
  OperatorPtr child_;
  DataChunk input_;
  Selection sel_;
};

class ProjectOp final : public Operator {
 public:
  ProjectOp(std::vector<algebra::ScalarPtr> exprs, OperatorPtr child)
      : exprs_(std::move(exprs)), child_(std::move(child)) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(DataChunk& out) override;

 private:
  std::vector<algebra::ScalarPtr> exprs_;
  OperatorPtr child_;
  DataChunk input_;
};

/// Block nested-loop join: materializes the right input once, then streams
/// left chunks against it, applying all predicates to the cross product.
class NestedLoopJoinOp final : public Operator {
 public:
  NestedLoopJoinOp(std::vector<algebra::ScalarPtr> predicates,
                   OperatorPtr left, OperatorPtr right)
      : predicates_(std::move(predicates)),
        left_(std::move(left)),
        right_(std::move(right)) {}
  Status Open() override;
  Result<bool> Next(DataChunk& out) override;

 private:
  std::vector<algebra::ScalarPtr> predicates_;
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<Row> right_rows_;
  size_t right_width_ = 0;
  DataChunk left_chunk_;
  size_t left_pos_ = 0;  // next left row to expand
  DataChunk scratch_;
  Selection sel_;
};

/// Materialized build side of a hash join: equi-key image -> matching build
/// rows. Built once by draining the build input, then probed read-only —
/// which is what lets the parallel executor share one build across several
/// concurrent probe pipelines.
struct HashJoinTable {
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> map;
  size_t build_width = 0;

  /// Drains `build` (already Open) into the table, evaluating `keys`
  /// against each build chunk. Rows with a NULL key are skipped (NULL keys
  /// never match in an equi-join). `guard` (may be null) is charged for
  /// the materialized build rows.
  Status BuildFrom(Operator& build, const std::vector<algebra::ScalarPtr>& keys,
                   common::QueryGuard* guard = nullptr);
};

/// Streaming probe state over a HashJoinTable. Owned per pipeline (each
/// probing thread has its own cursor) while the table itself is shared.
class HashProbeCursor {
 public:
  void Reset();
  /// Pulls probe chunks from `left`, joins them against `table`, applies
  /// `residual` to the concatenated rows, and fills `out` with the next
  /// batch of matches. Same contract as Operator::Next.
  Result<bool> Next(Operator& left,
                    const std::vector<algebra::ScalarPtr>& left_keys,
                    const std::vector<algebra::ScalarPtr>& residual,
                    const HashJoinTable& table, DataChunk& out);

 private:
  DataChunk left_chunk_;
  std::vector<ColumnVector> left_key_cols_;  // keys of left_chunk_, batched
  size_t left_pos_ = 0;  // next probe row
  DataChunk scratch_;
  Selection sel_;
};

/// Hash join on equi-key expressions; residual predicates applied to the
/// combined row. Builds on the right input, probes with left chunks.
class HashJoinOp final : public Operator {
 public:
  HashJoinOp(std::vector<algebra::ScalarPtr> left_keys,
             std::vector<algebra::ScalarPtr> right_keys,
             std::vector<algebra::ScalarPtr> residual, OperatorPtr left,
             OperatorPtr right)
      : left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)),
        left_(std::move(left)),
        right_(std::move(right)) {}
  Status Open() override;
  Result<bool> Next(DataChunk& out) override;

 private:
  std::vector<algebra::ScalarPtr> left_keys_;
  std::vector<algebra::ScalarPtr> right_keys_;
  std::vector<algebra::ScalarPtr> residual_;
  OperatorPtr left_;
  OperatorPtr right_;
  HashJoinTable table_;
  HashProbeCursor probe_;
};

/// Aggregation groups keyed by the group-by value image. An ordered map
/// keeps output deterministic across runs and thread counts.
using AggGroups = std::map<Row, std::vector<algebra::AggAccumulator>>;

/// Drains `child` (already Open), accumulating every row into `groups`.
/// Shared by HashAggregateOp and the parallel executor's per-thread partial
/// aggregation. `guard` (may be null) is charged for group-state growth.
Status AccumulateGroups(Operator& child,
                        const std::vector<algebra::ScalarPtr>& group_by,
                        const std::vector<algebra::AggExpr>& aggs,
                        AggGroups* groups,
                        common::QueryGuard* guard = nullptr);

/// Renders accumulated groups to output rows (group key columns, then one
/// column per aggregate). Adds the global empty group for scalar aggregates
/// over empty input.
std::vector<Row> FinishGroups(AggGroups groups,
                              const std::vector<algebra::AggExpr>& aggs,
                              bool scalar_aggregate);

/// Hash aggregation; materializes all groups on Open.
class HashAggregateOp final : public Operator {
 public:
  HashAggregateOp(std::vector<algebra::ScalarPtr> group_by,
                  std::vector<algebra::AggExpr> aggs, OperatorPtr child)
      : group_by_(std::move(group_by)),
        aggs_(std::move(aggs)),
        child_(std::move(child)) {}
  Status Open() override;
  Result<bool> Next(DataChunk& out) override;

 private:
  std::vector<algebra::ScalarPtr> group_by_;
  std::vector<algebra::AggExpr> aggs_;
  OperatorPtr child_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

class DistinctOp final : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child) : child_(std::move(child)) {}
  Status Open() override;
  Result<bool> Next(DataChunk& out) override;

 private:
  OperatorPtr child_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
  DataChunk input_;
  Selection sel_;
};

class SortOp final : public Operator {
 public:
  SortOp(std::vector<algebra::SortItem> items, OperatorPtr child)
      : items_(std::move(items)), child_(std::move(child)) {}
  Status Open() override;
  Result<bool> Next(DataChunk& out) override;

 private:
  std::vector<algebra::SortItem> items_;
  OperatorPtr child_;
  std::vector<Row> rows_;
  size_t width_ = 0;
  size_t pos_ = 0;
};

class LimitOp final : public Operator {
 public:
  LimitOp(int64_t limit, OperatorPtr child)
      : limit_(limit), child_(std::move(child)) {}
  Status Open() override {
    produced_ = 0;
    return child_->Open();
  }
  Result<bool> Next(DataChunk& out) override;

 private:
  int64_t limit_;
  OperatorPtr child_;
  int64_t produced_ = 0;
};

class UnionAllOp final : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> children)
      : children_(std::move(children)) {}
  Status Open() override;
  Result<bool> Next(DataChunk& out) override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

}  // namespace fgac::exec

#endif  // FGAC_EXEC_OPERATORS_H_
