#include "exec/exec_stats.h"

#include <chrono>

namespace fgac::exec {

using algebra::Plan;
using algebra::PlanKind;
using algebra::PlanPtr;

namespace {

std::string FormatMillis(uint64_t nanos) {
  // Fixed two-decimal milliseconds without pulling in <sstream>.
  uint64_t hundredths = nanos / 10000;  // 1e-5 s units
  return std::to_string(hundredths / 100) + "." +
         std::to_string((hundredths / 10) % 10) +
         std::to_string(hundredths % 10) + "ms";
}

void RenderNode(const PlanPtr& node, const ExecStats& stats, int indent,
                std::string* out) {
  if (node == nullptr) return;
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(PlanNodeLabel(*node));
  const OpStats* op = stats.Find(node.get());
  if (op != nullptr) {
    out->append("  [rows=" +
                std::to_string(op->rows_out.load(std::memory_order_relaxed)) +
                " chunks=" +
                std::to_string(op->chunks.load(std::memory_order_relaxed)) +
                " time=" +
                FormatMillis(op->nanos.load(std::memory_order_relaxed)) + "]");
  } else {
    out->append("  [not instrumented]");
  }
  out->push_back('\n');
  for (const PlanPtr& child : node->children) {
    RenderNode(child, stats, indent + 1, out);
  }
}

}  // namespace

std::string PlanNodeLabel(const Plan& node) {
  switch (node.kind) {
    case PlanKind::kGet:
      return "Scan(" + node.table + ")";
    case PlanKind::kValues:
      return "Values(" + std::to_string(node.rows.size()) + " rows)";
    case PlanKind::kSelect:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return node.predicates.empty() ? "CrossJoin" : "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit(" + std::to_string(node.limit) + ")";
    case PlanKind::kUnionAll:
      return "UnionAll";
  }
  return "?";
}

OpStats* ExecStats::NodeFor(const Plan* node) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<OpStats>& slot = nodes_[node];
  if (slot == nullptr) {
    slot = std::make_unique<OpStats>();
    slot->label = PlanNodeLabel(*node);
  }
  return slot.get();
}

const OpStats* ExecStats::Find(const Plan* node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : it->second.get();
}

void ExecStats::SetThreads(size_t n) {
  threads_ = n == 0 ? 1 : n;
  worker_morsels_.assign(threads_, 0);
}

void ExecStats::AddWorkerMorsels(size_t t, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (t < worker_morsels_.size()) worker_morsels_[t] += n;
}

void ExecStats::AddPipelineStat(PipelineStat stat) {
  std::lock_guard<std::mutex> lock(mu_);
  pipelines_.push_back(std::move(stat));
}

std::vector<PipelineStat> ExecStats::pipeline_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pipelines_;
}

std::string ExecStats::Render() const {
  std::string out;
  out += "execution: " + FormatMillis(exec_nanos_) + " on " +
         std::to_string(threads_) +
         (threads_ == 1 ? " worker" : " workers");
  if (validity_nanos_ > 0) {
    out += " (validity check: " + FormatMillis(validity_nanos_) + ")";
  }
  out.push_back('\n');
  if (threads_ > 1 && !worker_morsels_.empty()) {
    out += "morsels per worker:";
    for (uint64_t m : worker_morsels_) out += " " + std::to_string(m);
    out.push_back('\n');
  }
  std::vector<PipelineStat> pipelines = pipeline_stats();
  if (!pipelines.empty()) {
    out += "pipelines:\n";
    for (size_t i = 0; i < pipelines.size(); ++i) {
      const PipelineStat& p = pipelines[i];
      out += "  p" + std::to_string(i) + " " + p.kind + " " + p.label;
      if (p.cancelled) {
        out += "  [cancelled";
      } else {
        out += "  [tasks=" + std::to_string(p.tasks) +
               " rows=" + std::to_string(p.rows) +
               " time=" + FormatMillis(p.nanos);
      }
      if (!p.deps.empty()) {
        out += " deps=";
        for (size_t d = 0; d < p.deps.size(); ++d) {
          if (d > 0) out.push_back(',');
          out += "p" + std::to_string(p.deps[d]);
        }
      }
      out += "]\n";
    }
  }
  if (plan_ != nullptr) RenderNode(plan_, *this, 0, &out);
  return out;
}

Status StatsOp::Open() {
  stats_->opens.fetch_add(1, std::memory_order_relaxed);
  auto t0 = std::chrono::steady_clock::now();
  Status s = child_->Open();
  stats_->nanos.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
  return s;
}

Result<bool> StatsOp::Next(DataChunk& out) {
  auto t0 = std::chrono::steady_clock::now();
  Result<bool> r = child_->Next(out);
  stats_->nanos.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
  if (r.ok() && r.value()) {
    stats_->rows_out.fetch_add(out.size(), std::memory_order_relaxed);
    stats_->chunks.fetch_add(1, std::memory_order_relaxed);
  }
  return r;
}

}  // namespace fgac::exec
