#ifndef FGAC_EXEC_CHUNK_H_
#define FGAC_EXEC_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace fgac::exec {

/// Row positions into a DataChunk, produced by batched predicate evaluation
/// and consumed by gather operations (a DuckDB-style selection vector).
using Selection = std::vector<uint32_t>;

/// One column of a DataChunk.
///
/// Storage is typed while every non-NULL value appended so far shares one
/// Value kind — the overwhelmingly common case for relational data — so the
/// hot evaluation kernels loop over flat int64/double/string arrays instead
/// of variant Values. The first time kinds mix the column silently degrades
/// to generic Value storage and every accessor keeps working. NULLs live in
/// a separate validity mask; the typed arrays hold placeholder entries at
/// NULL positions so indices stay aligned.
class ColumnVector {
 public:
  enum class Tag : uint8_t {
    kUntyped,  // no non-NULL value appended yet
    kBool,
    kInt,
    kDouble,
    kString,
    kGeneric,  // mixed kinds; values stored as Value
  };

  size_t size() const { return valid_.size(); }
  Tag tag() const { return tag_; }
  /// False at NULL positions.
  bool IsValid(size_t i) const { return valid_[i] != 0; }
  bool IsNull(size_t i) const { return valid_[i] == 0; }
  /// True when the column contains no NULLs (enables mask-free kernels).
  bool AllValid() const { return null_count_ == 0; }

  /// Drops all elements but keeps allocated storage for reuse.
  void Clear();
  void Reserve(size_t n);

  void AppendNull();
  void Append(const Value& v);
  /// Typed fast-path appends; they promote an untyped column and degrade a
  /// mismatched one, so they are always safe to call.
  void AppendBool(bool v);
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  /// Appends element i of src (typed copy when the tags line up).
  void AppendFrom(const ColumnVector& src, size_t i);
  /// Gather: appends src[sel[0]], src[sel[1]], ... column-at-a-time.
  void AppendSelected(const ColumnVector& src, const Selection& sel);
  /// Appends the contiguous range src[start, start + n) (bulk typed copy;
  /// the chunked table-scan hot path).
  void AppendRange(const ColumnVector& src, size_t start, size_t n);
  /// Drops all elements past the first n.
  void Truncate(size_t n);

  /// Materializes element i as a Value (copies string payloads).
  Value GetValue(size_t i) const;
  /// Value kind of element i (kNull at NULL positions).
  Value::Kind KindAt(size_t i) const;

  // Unchecked typed accessors: valid only when IsValid(i) and tag() matches.
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }
  const Value& GenericAt(size_t i) const { return generic_[i]; }

 private:
  /// Adjusts tag_/storage so a value of `kind` can be appended; converts to
  /// generic storage when `kind` conflicts with the current tag.
  void PrepareAppend(Value::Kind kind);
  /// Converts typed storage to generic Value storage (kind mix detected).
  void Degenerify();

  Tag tag_ = Tag::kUntyped;
  size_t null_count_ = 0;
  std::vector<uint8_t> valid_;
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<Value> generic_;
};

/// Value-total-order comparison of a[i] vs b[j]; both elements must be
/// non-NULL. Same-tag typed columns compare without materializing Values.
int CompareAt(const ColumnVector& a, size_t i, const ColumnVector& b,
              size_t j);

/// A batch of rows in columnar layout — the unit of data flow between
/// physical operators. Operators fill up to ~kDefaultCapacity rows per
/// Next() call; the capacity is a fill target, not a hard limit (join match
/// buffers may briefly overshoot).
class DataChunk {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  DataChunk() = default;
  explicit DataChunk(size_t num_columns) { Reset(num_columns); }

  /// Drops all rows and re-shapes to num_columns (storage is reused).
  void Reset(size_t num_columns);

  size_t num_columns() const { return cols_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= kDefaultCapacity; }

  ColumnVector& column(size_t i) { return cols_[i]; }
  const ColumnVector& column(size_t i) const { return cols_[i]; }

  void Reserve(size_t rows);
  void AppendRow(const Row& row);
  /// Appends row i of src (all columns, typed copies).
  void AppendRowFrom(const DataChunk& src, size_t i);
  /// Gather: appends the selected rows of src column-at-a-time.
  void AppendSelected(const DataChunk& src, const Selection& sel);
  /// Appends row `li` of `left` concatenated with the row-major `right`
  /// (join output: probe-side chunk + materialized build-side row).
  void AppendConcat(const DataChunk& left, size_t li, const Row& right);
  /// Keeps only the first n rows.
  void Truncate(size_t n);

  /// Replaces the columns wholesale (projection output). Every column must
  /// contain `rows` elements.
  void AdoptColumns(std::vector<ColumnVector> cols, size_t rows);
  /// Explicit row count for zero-column chunks (e.g. `SELECT 1` feeds a
  /// one-row, zero-column VALUES).
  void SetCardinality(size_t rows) { size_ = rows; }

  /// Materializes row i (copies string payloads).
  Row GetRow(size_t i) const;

 private:
  size_t size_ = 0;
  std::vector<ColumnVector> cols_;
};

/// Bulk-appends rows [start, start + max_rows) of `rows` into `out`
/// column-at-a-time (out must already have the right shape). Returns the
/// number of rows appended. Shared by table scans and VALUES.
size_t AppendRowsToChunk(const std::vector<Row>& rows, size_t start,
                         size_t max_rows, DataChunk* out);

}  // namespace fgac::exec

#endif  // FGAC_EXEC_CHUNK_H_
