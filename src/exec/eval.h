#ifndef FGAC_EXEC_EVAL_H_
#define FGAC_EXEC_EVAL_H_

#include <vector>

#include "algebra/scalar.h"
#include "common/result.h"
#include "common/value.h"

namespace fgac::exec {

/// True iff every conjunct evaluates to TRUE on `row` (SQL WHERE semantics:
/// UNKNOWN filters out).
Result<bool> PassesAll(const std::vector<algebra::ScalarPtr>& predicates,
                       const Row& row);

/// Evaluates a projection list over `row`.
Result<Row> ProjectRow(const std::vector<algebra::ScalarPtr>& exprs,
                       const Row& row);

/// Splits join predicates (over the concatenated left+right slot space)
/// into hash-joinable equi-pairs and a residual list. An equi-pair is a
/// conjunct of the form <left-side scalar> = <right-side scalar> where each
/// side's slots fall entirely on one input.
struct JoinKeys {
  /// Key expressions evaluated against the LEFT row (left slot space).
  std::vector<algebra::ScalarPtr> left_keys;
  /// Key expressions evaluated against the RIGHT row (right slot space,
  /// i.e. already shifted down by the left arity).
  std::vector<algebra::ScalarPtr> right_keys;
  /// Conjuncts that are not equi-pairs (over the combined slot space).
  std::vector<algebra::ScalarPtr> residual;
};
JoinKeys SplitJoinKeys(const std::vector<algebra::ScalarPtr>& predicates,
                       size_t left_arity);

}  // namespace fgac::exec

#endif  // FGAC_EXEC_EVAL_H_
