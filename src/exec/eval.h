#ifndef FGAC_EXEC_EVAL_H_
#define FGAC_EXEC_EVAL_H_

#include <optional>
#include <vector>

#include "algebra/scalar.h"
#include "common/result.h"
#include "common/value.h"
#include "exec/chunk.h"

namespace fgac::exec {

// ---------------------------------------------------------------------------
// Batched (column-at-a-time) expression evaluation
// ---------------------------------------------------------------------------
// The batched evaluator walks the expression tree once per chunk instead of
// once per row: each node produces a ColumnVector for all selected rows, so
// the per-tuple cost collapses to a tight loop over typed arrays. Semantics
// mirror algebra::EvalScalar exactly, including AND/OR short-circuiting:
// the right operand is only evaluated on rows the left operand did not
// decide, so errors (e.g. division by zero) surface for precisely the same
// rows as in the row-at-a-time engine.

/// Truth of element i in boolean context (nullopt = UNKNOWN), mirroring
/// algebra::SqlTruth without materializing a Value.
std::optional<bool> TruthAt(const ColumnVector& c, size_t i);

/// Evaluates `s` over the chunk rows listed in `sel`: out element k is the
/// value of `s` on row sel[k]. `out` is cleared first.
Status EvalScalarBatch(const algebra::ScalarPtr& s, const DataChunk& chunk,
                       const Selection& sel, ColumnVector* out);

/// Narrows `sel` to the rows passing every conjunct (SQL WHERE semantics:
/// UNKNOWN filters out). Conjuncts are applied left-to-right, each evaluated
/// only on rows that survived the previous ones.
Status FilterSelection(const std::vector<algebra::ScalarPtr>& predicates,
                       const DataChunk& chunk, Selection* sel);

/// Evaluates a projection list over every row of `in`, producing `out` with
/// exprs.size() columns and in.size() rows.
Status ProjectChunk(const std::vector<algebra::ScalarPtr>& exprs,
                    const DataChunk& in, DataChunk* out);

/// sel = [0, 1, ..., n-1].
void IdentitySelection(size_t n, Selection* sel);

// ---------------------------------------------------------------------------
// Row-at-a-time helpers (reference evaluator parity, small probes)
// ---------------------------------------------------------------------------

/// True iff every conjunct evaluates to TRUE on `row` (SQL WHERE semantics:
/// UNKNOWN filters out).
Result<bool> PassesAll(const std::vector<algebra::ScalarPtr>& predicates,
                       const Row& row);

/// Evaluates a projection list over `row`.
Result<Row> ProjectRow(const std::vector<algebra::ScalarPtr>& exprs,
                       const Row& row);

/// Splits join predicates (over the concatenated left+right slot space)
/// into hash-joinable equi-pairs and a residual list. An equi-pair is a
/// conjunct of the form <left-side scalar> = <right-side scalar> where each
/// side's slots fall entirely on one input.
struct JoinKeys {
  /// Key expressions evaluated against the LEFT row (left slot space).
  std::vector<algebra::ScalarPtr> left_keys;
  /// Key expressions evaluated against the RIGHT row (right slot space,
  /// i.e. already shifted down by the left arity).
  std::vector<algebra::ScalarPtr> right_keys;
  /// Conjuncts that are not equi-pairs (over the combined slot space).
  std::vector<algebra::ScalarPtr> residual;
};
JoinKeys SplitJoinKeys(const std::vector<algebra::ScalarPtr>& predicates,
                       size_t left_arity);

}  // namespace fgac::exec

#endif  // FGAC_EXEC_EVAL_H_
