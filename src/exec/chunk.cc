#include "exec/chunk.h"

#include <algorithm>
#include <cassert>

namespace fgac::exec {

// ---------------------------------------------------------------------------
// ColumnVector
// ---------------------------------------------------------------------------

namespace {

ColumnVector::Tag TagForKind(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kBool:
      return ColumnVector::Tag::kBool;
    case Value::Kind::kInt:
      return ColumnVector::Tag::kInt;
    case Value::Kind::kDouble:
      return ColumnVector::Tag::kDouble;
    case Value::Kind::kString:
      return ColumnVector::Tag::kString;
    case Value::Kind::kNull:
      break;
  }
  return ColumnVector::Tag::kUntyped;
}

}  // namespace

void ColumnVector::Clear() {
  tag_ = Tag::kUntyped;
  null_count_ = 0;
  valid_.clear();
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  generic_.clear();
}

void ColumnVector::Reserve(size_t n) {
  valid_.reserve(n);
  switch (tag_) {
    case Tag::kUntyped:
      break;
    case Tag::kBool:
      bools_.reserve(n);
      break;
    case Tag::kInt:
      ints_.reserve(n);
      break;
    case Tag::kDouble:
      doubles_.reserve(n);
      break;
    case Tag::kString:
      strings_.reserve(n);
      break;
    case Tag::kGeneric:
      generic_.reserve(n);
      break;
  }
}

void ColumnVector::Degenerify() {
  size_t n = size();
  std::vector<Value> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (IsNull(i)) {
      values.push_back(Value::Null());
      continue;
    }
    switch (tag_) {
      case Tag::kBool:
        values.push_back(Value::Bool(BoolAt(i)));
        break;
      case Tag::kInt:
        values.push_back(Value::Int(IntAt(i)));
        break;
      case Tag::kDouble:
        values.push_back(Value::Double(DoubleAt(i)));
        break;
      case Tag::kString:
        values.push_back(Value::String(std::move(strings_[i])));
        break;
      case Tag::kUntyped:
      case Tag::kGeneric:
        values.push_back(Value::Null());  // unreachable: all-null or generic
        break;
    }
  }
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  generic_ = std::move(values);
  tag_ = Tag::kGeneric;
}

void ColumnVector::PrepareAppend(Value::Kind kind) {
  Tag wanted = TagForKind(kind);
  if (tag_ == wanted || tag_ == Tag::kGeneric) return;
  if (tag_ == Tag::kUntyped) {
    // First non-NULL value fixes the type; backfill placeholders for any
    // leading NULLs so indices stay aligned.
    tag_ = wanted;
    switch (tag_) {
      case Tag::kBool:
        bools_.assign(size(), 0);
        break;
      case Tag::kInt:
        ints_.assign(size(), 0);
        break;
      case Tag::kDouble:
        doubles_.assign(size(), 0.0);
        break;
      case Tag::kString:
        strings_.assign(size(), std::string());
        break;
      case Tag::kUntyped:
      case Tag::kGeneric:
        break;
    }
    return;
  }
  Degenerify();
}

void ColumnVector::AppendNull() {
  valid_.push_back(0);
  ++null_count_;
  switch (tag_) {
    case Tag::kUntyped:
      break;
    case Tag::kBool:
      bools_.push_back(0);
      break;
    case Tag::kInt:
      ints_.push_back(0);
      break;
    case Tag::kDouble:
      doubles_.push_back(0.0);
      break;
    case Tag::kString:
      strings_.emplace_back();
      break;
    case Tag::kGeneric:
      generic_.push_back(Value::Null());
      break;
  }
}

void ColumnVector::Append(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      AppendNull();
      return;
    case Value::Kind::kBool:
      AppendBool(v.bool_value());
      return;
    case Value::Kind::kInt:
      AppendInt(v.int_value());
      return;
    case Value::Kind::kDouble:
      AppendDouble(v.double_value());
      return;
    case Value::Kind::kString:
      AppendString(v.string_value());
      return;
  }
}

void ColumnVector::AppendBool(bool v) {
  PrepareAppend(Value::Kind::kBool);
  if (tag_ == Tag::kGeneric) {
    generic_.push_back(Value::Bool(v));
  } else {
    bools_.push_back(v ? 1 : 0);
  }
  valid_.push_back(1);
}

void ColumnVector::AppendInt(int64_t v) {
  PrepareAppend(Value::Kind::kInt);
  if (tag_ == Tag::kGeneric) {
    generic_.push_back(Value::Int(v));
  } else {
    ints_.push_back(v);
  }
  valid_.push_back(1);
}

void ColumnVector::AppendDouble(double v) {
  PrepareAppend(Value::Kind::kDouble);
  if (tag_ == Tag::kGeneric) {
    generic_.push_back(Value::Double(v));
  } else {
    doubles_.push_back(v);
  }
  valid_.push_back(1);
}

void ColumnVector::AppendString(std::string v) {
  PrepareAppend(Value::Kind::kString);
  if (tag_ == Tag::kGeneric) {
    generic_.push_back(Value::String(std::move(v)));
  } else {
    strings_.push_back(std::move(v));
  }
  valid_.push_back(1);
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (src.tag_) {
    case Tag::kUntyped:
      AppendNull();  // unreachable: untyped columns hold only NULLs
      return;
    case Tag::kBool:
      AppendBool(src.BoolAt(i));
      return;
    case Tag::kInt:
      AppendInt(src.IntAt(i));
      return;
    case Tag::kDouble:
      AppendDouble(src.DoubleAt(i));
      return;
    case Tag::kString:
      AppendString(src.StringAt(i));
      return;
    case Tag::kGeneric:
      Append(src.GenericAt(i));
      return;
  }
}

void ColumnVector::AppendSelected(const ColumnVector& src,
                                  const Selection& sel) {
  Reserve(size() + sel.size());
  // Tight typed loops for the common fully-valid case; the generic path
  // handles NULLs and mixed columns.
  if (src.null_count_ == 0 &&
      (tag_ == Tag::kUntyped || tag_ == src.tag_)) {
    switch (src.tag_) {
      case Tag::kInt:
        PrepareAppend(Value::Kind::kInt);
        for (uint32_t i : sel) ints_.push_back(src.ints_[i]);
        valid_.insert(valid_.end(), sel.size(), 1);
        return;
      case Tag::kDouble:
        PrepareAppend(Value::Kind::kDouble);
        for (uint32_t i : sel) doubles_.push_back(src.doubles_[i]);
        valid_.insert(valid_.end(), sel.size(), 1);
        return;
      case Tag::kBool:
        PrepareAppend(Value::Kind::kBool);
        for (uint32_t i : sel) bools_.push_back(src.bools_[i]);
        valid_.insert(valid_.end(), sel.size(), 1);
        return;
      case Tag::kString:
        PrepareAppend(Value::Kind::kString);
        for (uint32_t i : sel) strings_.push_back(src.strings_[i]);
        valid_.insert(valid_.end(), sel.size(), 1);
        return;
      default:
        break;
    }
  }
  for (uint32_t i : sel) AppendFrom(src, i);
}

void ColumnVector::AppendRange(const ColumnVector& src, size_t start,
                               size_t n) {
  if (n == 0) return;
  Reserve(size() + n);
  // Bulk typed copy when the tags line up; placeholder entries keep NULL
  // positions aligned, so the validity range copies verbatim.
  if (src.tag_ != Tag::kUntyped && src.tag_ != Tag::kGeneric &&
      (tag_ == Tag::kUntyped || tag_ == src.tag_)) {
    switch (src.tag_) {
      case Tag::kBool:
        PrepareAppend(Value::Kind::kBool);
        bools_.insert(bools_.end(), src.bools_.begin() + start,
                      src.bools_.begin() + start + n);
        break;
      case Tag::kInt:
        PrepareAppend(Value::Kind::kInt);
        ints_.insert(ints_.end(), src.ints_.begin() + start,
                     src.ints_.begin() + start + n);
        break;
      case Tag::kDouble:
        PrepareAppend(Value::Kind::kDouble);
        doubles_.insert(doubles_.end(), src.doubles_.begin() + start,
                        src.doubles_.begin() + start + n);
        break;
      case Tag::kString:
        PrepareAppend(Value::Kind::kString);
        strings_.insert(strings_.end(), src.strings_.begin() + start,
                        src.strings_.begin() + start + n);
        break;
      default:
        break;
    }
    valid_.insert(valid_.end(), src.valid_.begin() + start,
                  src.valid_.begin() + start + n);
    for (size_t i = start; i < start + n; ++i) {
      if (src.valid_[i] == 0) ++null_count_;
    }
    return;
  }
  for (size_t i = start; i < start + n; ++i) AppendFrom(src, i);
}

void ColumnVector::Truncate(size_t n) {
  if (n >= size()) return;
  for (size_t i = n; i < valid_.size(); ++i) {
    if (valid_[i] == 0) --null_count_;
  }
  valid_.resize(n);
  switch (tag_) {
    case Tag::kUntyped:
      break;
    case Tag::kBool:
      bools_.resize(n);
      break;
    case Tag::kInt:
      ints_.resize(n);
      break;
    case Tag::kDouble:
      doubles_.resize(n);
      break;
    case Tag::kString:
      strings_.resize(n);
      break;
    case Tag::kGeneric:
      generic_.resize(n);
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (tag_) {
    case Tag::kUntyped:
      return Value::Null();
    case Tag::kBool:
      return Value::Bool(BoolAt(i));
    case Tag::kInt:
      return Value::Int(IntAt(i));
    case Tag::kDouble:
      return Value::Double(DoubleAt(i));
    case Tag::kString:
      return Value::String(StringAt(i));
    case Tag::kGeneric:
      return GenericAt(i);
  }
  return Value::Null();
}

Value::Kind ColumnVector::KindAt(size_t i) const {
  if (IsNull(i)) return Value::Kind::kNull;
  switch (tag_) {
    case Tag::kUntyped:
      return Value::Kind::kNull;
    case Tag::kBool:
      return Value::Kind::kBool;
    case Tag::kInt:
      return Value::Kind::kInt;
    case Tag::kDouble:
      return Value::Kind::kDouble;
    case Tag::kString:
      return Value::Kind::kString;
    case Tag::kGeneric:
      return GenericAt(i).kind();
  }
  return Value::Kind::kNull;
}

int CompareAt(const ColumnVector& a, size_t i, const ColumnVector& b,
              size_t j) {
  using Tag = ColumnVector::Tag;
  Tag ta = a.tag(), tb = b.tag();
  if (ta == Tag::kInt && tb == Tag::kInt) {
    int64_t x = a.IntAt(i), y = b.IntAt(j);
    return x == y ? 0 : (x < y ? -1 : 1);
  }
  if ((ta == Tag::kInt || ta == Tag::kDouble) &&
      (tb == Tag::kInt || tb == Tag::kDouble)) {
    // Mirrors Value::Compare numeric promotion.
    double x = ta == Tag::kInt ? static_cast<double>(a.IntAt(i)) : a.DoubleAt(i);
    double y = tb == Tag::kInt ? static_cast<double>(b.IntAt(j)) : b.DoubleAt(j);
    return x == y ? 0 : (x < y ? -1 : 1);
  }
  if (ta == Tag::kString && tb == Tag::kString) {
    int c = a.StringAt(i).compare(b.StringAt(j));
    return c == 0 ? 0 : (c < 0 ? -1 : 1);
  }
  if (ta == Tag::kBool && tb == Tag::kBool) {
    bool x = a.BoolAt(i), y = b.BoolAt(j);
    return x == y ? 0 : (x < y ? -1 : 1);
  }
  // Mixed-kind or generic columns: rare enough to materialize.
  return a.GetValue(i).Compare(b.GetValue(j));
}

// ---------------------------------------------------------------------------
// DataChunk
// ---------------------------------------------------------------------------

void DataChunk::Reset(size_t num_columns) {
  cols_.resize(num_columns);
  for (ColumnVector& c : cols_) c.Clear();
  size_ = 0;
}

void DataChunk::Reserve(size_t rows) {
  for (ColumnVector& c : cols_) c.Reserve(rows);
}

// Arity mismatches below indicate an operator bug. Debug builds still
// assert; release builds degrade by truncating extra source columns and
// NULL-padding missing ones instead of reading out of bounds.

void DataChunk::AppendRow(const Row& row) {
  assert(row.size() == cols_.size());
  size_t shared = std::min(row.size(), cols_.size());
  for (size_t c = 0; c < shared; ++c) cols_[c].Append(row[c]);
  for (size_t c = shared; c < cols_.size(); ++c) cols_[c].AppendNull();
  ++size_;
}

void DataChunk::AppendRowFrom(const DataChunk& src, size_t i) {
  assert(src.num_columns() == num_columns());
  size_t shared = std::min(src.num_columns(), num_columns());
  for (size_t c = 0; c < shared; ++c) cols_[c].AppendFrom(src.cols_[c], i);
  for (size_t c = shared; c < cols_.size(); ++c) cols_[c].AppendNull();
  ++size_;
}

void DataChunk::AppendSelected(const DataChunk& src, const Selection& sel) {
  assert(src.num_columns() == num_columns());
  size_t shared = std::min(src.num_columns(), num_columns());
  for (size_t c = 0; c < shared; ++c) {
    cols_[c].AppendSelected(src.cols_[c], sel);
  }
  for (size_t c = shared; c < cols_.size(); ++c) {
    for (size_t k = 0; k < sel.size(); ++k) cols_[c].AppendNull();
  }
  size_ += sel.size();
}

void DataChunk::AppendConcat(const DataChunk& left, size_t li,
                             const Row& right) {
  size_t ln = left.num_columns();
  assert(ln + right.size() == cols_.size());
  size_t shared_left = std::min(ln, cols_.size());
  for (size_t c = 0; c < shared_left; ++c) {
    cols_[c].AppendFrom(left.cols_[c], li);
  }
  for (size_t c = 0; c < right.size() && shared_left + c < cols_.size(); ++c) {
    cols_[shared_left + c].Append(right[c]);
  }
  for (ColumnVector& col : cols_) {
    if (col.size() <= size_) col.AppendNull();
  }
  ++size_;
}

void DataChunk::Truncate(size_t n) {
  if (n >= size_) return;
  for (ColumnVector& c : cols_) c.Truncate(n);
  size_ = n;
}

void DataChunk::AdoptColumns(std::vector<ColumnVector> cols, size_t rows) {
  cols_ = std::move(cols);
  size_ = rows;
}

Row DataChunk::GetRow(size_t i) const {
  Row row;
  row.reserve(cols_.size());
  for (const ColumnVector& c : cols_) row.push_back(c.GetValue(i));
  return row;
}

size_t AppendRowsToChunk(const std::vector<Row>& rows, size_t start,
                         size_t max_rows, DataChunk* out) {
  if (start >= rows.size()) return 0;
  size_t n = std::min(max_rows, rows.size() - start);
  if (out->num_columns() == 0) {
    out->SetCardinality(out->size() + n);
    return n;
  }
  out->Reserve(out->size() + n);
  for (size_t c = 0; c < out->num_columns(); ++c) {
    ColumnVector& col = out->column(c);
    for (size_t i = start; i < start + n; ++i) col.Append(rows[i][c]);
  }
  out->SetCardinality(out->size() + n);
  return n;
}

}  // namespace fgac::exec
