#ifndef FGAC_EXEC_EXEC_STATS_H_
#define FGAC_EXEC_EXEC_STATS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "exec/operators.h"

namespace fgac::exec {

/// Per-plan-node execution counters. One OpStats instance is shared by
/// every physical operator instantiated for the same logical node — in a
/// parallel plan each worker's pipeline operator charges the same node —
/// so all fields are relaxed atomics and never tear.
struct OpStats {
  std::string label;
  std::atomic<uint64_t> rows_out{0};
  std::atomic<uint64_t> chunks{0};
  /// Inclusive wall time (operator + its inputs), summed across workers.
  std::atomic<uint64_t> nanos{0};
  std::atomic<uint64_t> opens{0};
};

/// One pipeline of the executed DAG, as surfaced by EXPLAIN ANALYZE: what
/// kind of pipeline it was, how many scheduler tasks (workers) it fanned
/// out to, what it produced, how much summed wall time its tasks took, and
/// which pipelines it waited on.
struct PipelineStat {
  /// "build" / "scan" / "merge" / "serial".
  std::string kind;
  /// Anchor operator label ("Scan(grades)", "Join", "Aggregate").
  std::string label;
  /// Indices of the pipelines this one depended on.
  std::vector<size_t> deps;
  size_t tasks = 0;
  uint64_t rows = 0;
  /// Summed task wall time (a 4-task pipeline busy for 1ms reports 4ms).
  uint64_t nanos = 0;
  /// True when the scheduler released the pipeline after a DAG abort
  /// without ever starting its tasks.
  bool cancelled = false;
};

/// Profile of one query execution: a stats node per logical plan node plus
/// pipeline-level data (worker morsel counts, pipeline DAG stats, phase
/// timings). Allocated only when profiling is requested (EXPLAIN ANALYZE
/// or SessionContext::set_profile), so the metrics-off hot path never
/// touches any of this.
class ExecStats {
 public:
  /// Returns the stats node for `node`, creating it on first use. Safe to
  /// call concurrently from parallel pipeline builders.
  OpStats* NodeFor(const algebra::Plan* node);

  /// Returns the node's stats or nullptr if it never executed.
  const OpStats* Find(const algebra::Plan* node) const;

  /// Pre-sizes the per-worker morsel counters and records the fan-out.
  void SetThreads(size_t n);
  size_t threads() const { return threads_; }

  /// Exclusive slot for worker `t`'s morsel count (single writer; read
  /// after the fan-out joins). SetThreads must have been called first.
  uint64_t* worker_morsel_slot(size_t t) { return &worker_morsels_[t]; }
  const std::vector<uint64_t>& worker_morsels() const {
    return worker_morsels_;
  }

  /// Adds `n` morsels to worker slot `t` under the lock — the safe variant
  /// for pipeline tasks, where scan sets of different fragments (UNION ALL
  /// branches) may run concurrently and share slot indices.
  void AddWorkerMorsels(size_t t, uint64_t n);

  /// Appends one pipeline's stats (called as the DAG settles, in pipeline
  /// id order). Safe against a concurrent reader.
  void AddPipelineStat(PipelineStat stat);
  /// Copy of the executed pipeline DAG's stats, index == pipeline id.
  std::vector<PipelineStat> pipeline_stats() const;

  /// The plan that actually ran (post-optimizer / post-rewrite); keeps the
  /// nodes the stats map points at alive for rendering.
  void SetExecutedPlan(algebra::PlanPtr plan) { plan_ = std::move(plan); }
  const algebra::PlanPtr& executed_plan() const { return plan_; }

  // Phase wall times, recorded by the Database facade.
  void set_validity_nanos(uint64_t n) { validity_nanos_ = n; }
  void set_exec_nanos(uint64_t n) { exec_nanos_ = n; }
  uint64_t validity_nanos() const { return validity_nanos_; }
  uint64_t exec_nanos() const { return exec_nanos_; }

  /// EXPLAIN ANALYZE rendering: the executed plan annotated per operator
  /// with rows / chunks / inclusive time, preceded by phase, worker and
  /// pipeline summary lines.
  std::string Render() const;

 private:
  mutable std::mutex mu_;  // guards the map shape; values are atomic
  std::unordered_map<const algebra::Plan*, std::unique_ptr<OpStats>> nodes_;
  algebra::PlanPtr plan_;
  size_t threads_ = 1;
  std::vector<uint64_t> worker_morsels_;
  std::vector<PipelineStat> pipelines_;
  uint64_t validity_nanos_ = 0;
  uint64_t exec_nanos_ = 0;
};

/// Short operator label for a plan node ("Scan(grades)", "HashAggregate").
std::string PlanNodeLabel(const algebra::Plan& node);

/// Transparent instrumentation decorator: forwards Open/Next to `child`,
/// charging wall time, chunk and row counts to the shared `stats` node.
/// Only instantiated when an ExecStats is attached to the build, so
/// un-profiled execution pays nothing.
class StatsOp final : public Operator {
 public:
  StatsOp(OpStats* stats, OperatorPtr child)
      : stats_(stats), child_(std::move(child)) {}
  Status Open() override;
  Result<bool> Next(DataChunk& out) override;

 private:
  OpStats* stats_;
  OperatorPtr child_;
};

}  // namespace fgac::exec

#endif  // FGAC_EXEC_EXEC_STATS_H_
