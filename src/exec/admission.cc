#include "exec/admission.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>

#include "common/fault_injection.h"

namespace fgac::exec {

namespace {

using Clock = std::chrono::steady_clock;

/// Waiters poll cancellation at this granularity while queued; shorter
/// deadlines are honored exactly via wait_until.
constexpr std::chrono::milliseconds kCancelPoll{20};

}  // namespace

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kShedNewest:
      return "ShedNewest";
    case ShedPolicy::kShedByCost:
      return "ShedByCost";
  }
  return "Unknown";
}

AdmissionOptions AdmissionOptions::Resolved() const {
  AdmissionOptions out = *this;
  if (const char* env = std::getenv("FGAC_ADMISSION_QUEUE")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') out.max_queue = static_cast<size_t>(v);
  }
  return out;
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         const common::MemoryTracker* tracker)
    : options_(options.Resolved()), tracker_(tracker) {}

AdmissionController::~AdmissionController() { Shutdown(); }

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& w : queue_) {
    if (w->state == WaitState::kWaiting) ++n;
  }
  return n;
}

uint64_t AdmissionController::RetryAfterMsLocked() const {
  // Expected time until a slot frees for a NEW arrival: the backlog ahead
  // of it (running + queued), served at EWMA pace by max_concurrent lanes.
  size_t waiting = 0;
  for (const auto& w : queue_) {
    if (w->state == WaitState::kWaiting) ++waiting;
  }
  size_t lanes = std::max<size_t>(1, options_.max_concurrent);
  uint64_t backlog = running_.load(std::memory_order_relaxed) + waiting + 1;
  uint64_t us = ewma_service_us_ * backlog / lanes;
  return std::clamp<uint64_t>(us / 1000, 1, 60000);
}

Status AdmissionController::ShedStatus(const char* reason,
                                       uint64_t retry_ms) const {
  return Status::Overloaded(std::string("server overloaded (") + reason +
                            "); retry after " + std::to_string(retry_ms) +
                            "ms");
}

Status AdmissionController::Admit(const AdmissionRequest& request,
                                  AdmissionTicket* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    return Status::Cancelled("admission controller shut down");
  }
  // Reject before doing work: a query already past its deadline can only
  // waste the capacity the live ones are queuing for.
  if (request.deadline.has_value() && Clock::now() >= *request.deadline) {
    rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
    return Status::Timeout("query deadline expired before admission");
  }
  // Global memory pressure sheds ARRIVALS: in-flight queries keep their
  // slots (and their charges drain the pressure); new work is turned away
  // until usage falls below the soft limit.
  if (tracker_ != nullptr && tracker_->overloaded()) {
    shed_memory_.fetch_add(1, std::memory_order_relaxed);
    return ShedStatus("global memory pressure", RetryAfterMsLocked());
  }
  bool queue_empty = true;
  for (const auto& w : queue_) {
    if (w->state == WaitState::kWaiting) {
      queue_empty = false;
      break;
    }
  }
  if (options_.max_concurrent == 0 ||
      (queue_empty &&
       running_.load(std::memory_order_relaxed) < options_.max_concurrent)) {
    running_.fetch_add(1, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_relaxed);
    *out = AdmissionTicket(this, Clock::now());
    return Status::OK();
  }

  // Slot unavailable: join the bounded wait queue (or shed).
  Status injected = FGAC_FAULT_CHECK("admission.enqueue");
  if (!injected.ok()) return injected;
  size_t waiting = 0;
  for (const auto& w : queue_) {
    if (w->state == WaitState::kWaiting) ++waiting;
  }
  if (waiting >= options_.max_queue) {
    if (options_.shed_policy == ShedPolicy::kShedByCost) {
      // Evict the priciest waiter if the arrival is cheaper than it.
      std::shared_ptr<Waiter> priciest;
      for (const auto& w : queue_) {
        if (w->state != WaitState::kWaiting) continue;
        if (priciest == nullptr || w->cost > priciest->cost) priciest = w;
      }
      if (priciest != nullptr && request.cost < priciest->cost) {
        priciest->state = WaitState::kShed;
        shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
        wake_.notify_all();
        // Fall through: the arrival takes the evicted slot in the queue.
      } else {
        shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
        return ShedStatus("admission queue full", RetryAfterMsLocked());
      }
    } else {
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return ShedStatus("admission queue full", RetryAfterMsLocked());
    }
  }

  auto self = std::make_shared<Waiter>();
  self->cost = request.cost;
  queue_.push_back(self);
  Clock::time_point enqueued_at = Clock::now();
  // Every exit from the wait loop below accounts the time spent queued.
  struct WaitAccounting {
    AdmissionController* c;
    Clock::time_point t0;
    ~WaitAccounting() {
      uint64_t us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - t0)
              .count());
      c->queue_wait_us_.fetch_add(us, std::memory_order_relaxed);
    }
  } wait_accounting{this, enqueued_at};
  uint64_t depth = 0;
  for (const auto& w : queue_) {
    if (w->state == WaitState::kWaiting) ++depth;
  }
  uint64_t seen = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_high_water_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }

  for (;;) {
    Clock::time_point wake_at = Clock::now() + kCancelPoll;
    if (request.deadline.has_value()) {
      wake_at = std::min(wake_at, *request.deadline);
    }
    wake_.wait_until(lock, wake_at,
                     [&] { return self->state != WaitState::kWaiting; });
    switch (self->state) {
      case WaitState::kAdmitted:
        *out = AdmissionTicket(this, Clock::now());
        return Status::OK();
      case WaitState::kShed:
        return ShedStatus("admission queue full", RetryAfterMsLocked());
      case WaitState::kShutdown:
        return Status::Cancelled(
            "query cancelled: admission controller shut down");
      case WaitState::kWaiting:
        break;
    }
    if (request.deadline.has_value() && Clock::now() >= *request.deadline) {
      self->state = WaitState::kShed;  // tombstone; no slot was granted
      rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
      return Status::Timeout("query deadline expired while queued");
    }
    if (request.guard != nullptr && request.guard->cancelled()) {
      self->state = WaitState::kShed;
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      return Status::Cancelled("query cancelled while queued for admission");
    }
  }
}

void AdmissionController::DispatchLocked() {
  while (!queue_.empty()) {
    if (queue_.front()->state != WaitState::kWaiting) {
      queue_.pop_front();  // tombstone left by a shed/expired waiter
      continue;
    }
    if (options_.max_concurrent != 0 &&
        running_.load(std::memory_order_relaxed) >= options_.max_concurrent) {
      return;
    }
    std::shared_ptr<Waiter> next = queue_.front();
    queue_.pop_front();
    next->state = WaitState::kAdmitted;
    running_.fetch_add(1, std::memory_order_relaxed);
    admitted_.fetch_add(1, std::memory_order_relaxed);
    wake_.notify_all();
  }
}

void AdmissionController::ReleaseSlot(Clock::time_point admitted_at) {
  std::lock_guard<std::mutex> lock(mu_);
  running_.fetch_sub(1, std::memory_order_relaxed);
  uint64_t service_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            admitted_at)
          .count());
  ewma_service_us_ = (7 * ewma_service_us_ + std::max<uint64_t>(1, service_us)) / 8;
  DispatchLocked();
}

void AdmissionController::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  shutdown_ = true;
  for (const auto& w : queue_) {
    if (w->state == WaitState::kWaiting) {
      w->state = WaitState::kShutdown;
      cancelled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  queue_.clear();
  wake_.notify_all();
}

void AdmissionTicket::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseSlot(admitted_at_);
  controller_ = nullptr;
}

int64_t RetryAfterHintMs(const Status& status) {
  const std::string& msg = status.message();
  const std::string key = "retry after ";
  size_t pos = msg.rfind(key);
  if (pos == std::string::npos) return -1;
  pos += key.size();
  size_t end = pos;
  while (end < msg.size() && std::isdigit(static_cast<unsigned char>(msg[end]))) {
    ++end;
  }
  if (end == pos || msg.compare(end, 2, "ms") != 0) return -1;
  return std::stoll(msg.substr(pos, end - pos));
}

}  // namespace fgac::exec
