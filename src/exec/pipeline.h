#ifndef FGAC_EXEC_PIPELINE_H_
#define FGAC_EXEC_PIPELINE_H_

#include <cstddef>

#include "algebra/plan.h"
#include "common/query_guard.h"
#include "common/result.h"
#include "common/trace.h"
#include "exec/scheduler.h"
#include "storage/database_state.h"
#include "storage/relation.h"

namespace fgac::exec {

class ExecStats;

/// Walks the left spine down to the pipeline's source. Returns the kGet
/// node feeding the pipeline, or nullptr when the shape cannot be
/// decomposed into a morsel pipeline (non-table source, or a join without
/// equi-keys, which would need a nested-loop join).
const algebra::Plan* PipelineSourceNode(const algebra::PlanPtr& plan);

/// Decomposes `plan` into a DAG of pipelines and runs it on the shared
/// PipelineScheduler. This is the engine under ParallelExecutePlan; callers
/// normally go through that entry point, which also owns the serial
/// fallback for shapes that do not decompose.
///
/// Breaker rules: a pipeline ends where its output must be fully
/// materialized before a consumer can start —
///   - each equi-join BUILD side is its own single-task pipeline
///     (independent builds of one query run concurrently);
///   - the probe-side SCAN pipeline (one task per worker over the shared
///     morsel cursor) depends on every build pipeline of its fragment;
///   - aggregation / DISTINCT / SORT add a single-task MERGE pipeline
///     depending on the scan (partial-state merge, final dedup, gathered
///     sort);
///   - UNION ALL branches decompose independently — their pipelines share
///     the DAG with no cross-branch edges, so branches genuinely overlap —
///     and a branch that cannot be decomposed runs as a single-task SERIAL
///     pipeline executing the serial engine.
///
/// Guard/trace/stats threading: all tasks share `guard` (first-error-wins
/// abort drains the DAG; dependents of a failed pipeline never start);
/// `trace` gets one "exec.pipeline" span per pipeline plus per-task
/// "exec.worker" / "exec.build" / "exec.merge" / "exec.serial" spans;
/// `stats` additionally collects one PipelineStat per pipeline for
/// EXPLAIN ANALYZE.
///
/// Must not be called from a pool worker thread (the caller blocks on DAG
/// completion).
Result<storage::Relation> ExecutePlanPipelined(
    const algebra::PlanPtr& plan, const storage::DatabaseState& state,
    size_t num_threads, common::QueryGuard* guard = nullptr,
    ExecStats* stats = nullptr, const common::TraceContext* trace = nullptr,
    const DagOptions& dag_opts = DagOptions{});

}  // namespace fgac::exec

#endif  // FGAC_EXEC_PIPELINE_H_
