#ifndef FGAC_EXEC_SCHEDULER_H_
#define FGAC_EXEC_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/activity.h"
#include "common/query_guard.h"
#include "common/status.h"
#include "common/trace.h"

namespace fgac::exec {

/// One schedulable pipeline of a query DAG: a set of tasks that may run
/// concurrently, gated on other pipelines of the same DAG. Scan pipelines
/// have one task per worker over a shared morsel cursor; pipeline breakers
/// (hash-join build, aggregate/distinct/sort merge) have exactly one.
struct PipelineTaskSet {
  /// The pipeline's tasks; each receives its own index. All tasks of a set
  /// are dispatched together once the set's dependencies have completed.
  /// Tasks must not block on other tasks — they run on the shared pool.
  std::vector<std::function<Status(size_t)>> tasks;
  /// Indices into the same DAG vector of pipelines that must complete
  /// before this one starts. Must all be smaller than this set's own index
  /// (i.e. the DAG is given in topological order), which makes cycles
  /// unrepresentable.
  std::vector<size_t> deps;
  /// Span name recorded around each task ("exec.worker" for scan tasks —
  /// the pre-pipeline trace contract — "exec.build", "exec.merge", ...).
  /// Empty records no per-task span.
  std::string task_span;
  /// Human label for the pipeline-level "exec.pipeline" span detail
  /// ("scan(grades)", "build(Join)", "probe_batch").
  std::string label;
};

/// Submitting-session identity for fair dispatch. DAGs carrying the same
/// session_key share one weighted-round-robin bucket; weight is the number
/// of ready tasks the bucket may release per rotation visit (so a weight-3
/// session gets ~3x the dispatch bandwidth of a weight-1 session while
/// both have work queued).
struct DagOptions {
  /// 0 = anonymous: all anonymous DAGs share one bucket.
  uint64_t session_key = 0;
  uint32_t weight = 1;
  /// When non-null, the scheduler publishes live progress here: pipeline
  /// sets dispatched/settled plus per-task wall-time attributed to fair
  /// queue wait vs run. Must outlive RunDag (the statement's
  /// StatementActivity owns it in practice).
  common::DagProgress* progress = nullptr;
};

/// Weighted-round-robin multiplexer of ready tasks across sessions — the
/// fairness core of the PipelineScheduler, standalone so its dispatch
/// order is unit-testable without a thread pool. Push enqueues a ready
/// task under its session; Pop releases tasks in WRR order: each rotation
/// visit grants a session up to `weight` consecutive tasks, then moves to
/// the next session with work. One session flooding the queue therefore
/// delays its own tasks, not other sessions'.
///
/// Thread-safe; Pop returns false only when empty.
class FairTaskQueue {
 public:
  void Push(uint64_t session, uint32_t weight, std::function<void()> task);
  bool Pop(std::function<void()>* out);
  size_t size() const;
  /// Sessions currently holding ready tasks.
  size_t sessions_active() const;

 private:
  struct SessionQueue {
    std::deque<std::function<void()>> tasks;
    uint32_t weight = 1;
    /// Tasks still grantable in the current rotation visit.
    uint32_t credits = 0;
    bool in_rotation = false;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, SessionQueue> sessions_;
  /// Visit order; the front session is the current grantee.
  std::deque<uint64_t> rotation_;
  size_t size_ = 0;
};

/// Schedules pipeline DAGs from any number of concurrent queries onto the
/// shared work-stealing pool. Replaces the per-query morsel fan-out: every
/// query decomposes into PipelineTaskSets (exec/pipeline.cc), validity
/// probe batches submit here too (core/validity.cc), and all of it
/// interleaves on one pool.
///
/// Execution model: all dependency-free sets are dispatched immediately;
/// when the last task of a set finishes, its dependents' counters are
/// decremented and newly-runnable sets are dispatched from the completion
/// handler (no dedicated scheduler thread, no task ever waits on another).
/// The calling thread blocks until the whole DAG settles — so RunDag must
/// not be called from a pool worker.
///
/// Failure: the first task error aborts the DAG. Already-queued tasks of
/// the same generation drain as no-ops; sets whose dependencies complete
/// after the abort are *cancelled* — their tasks never start (counted in
/// pipelines_cancelled()). Every dispatched task is joined before RunDag
/// returns, and the reported error is deterministic: the failure with the
/// lowest (set index, task index), matching the old fan-out's
/// lowest-worker-index rule.
class PipelineScheduler {
 public:
  PipelineScheduler() = default;
  PipelineScheduler(const PipelineScheduler&) = delete;
  PipelineScheduler& operator=(const PipelineScheduler&) = delete;

  /// Runs one query's pipeline DAG to completion. `guard` (may be null) is
  /// checked before each task body so a tripped deadline/cancel stops
  /// pipelines that have not yet done work. `trace` (may be null/inactive)
  /// gets one "exec.pipeline" span per set plus the per-task spans named
  /// by the sets. `started`, when non-null, is resized to the DAG and
  /// records which sets actually ran (0 = cancelled before start).
  ///
  /// Fault sites: "scheduler.dispatch" fires once per set at dispatch
  /// time; "pipeline.run" (and the legacy "threadpool.dispatch") fire in
  /// each task before its body.
  ///
  /// `opts` names the submitting session for fair dispatch: ready tasks
  /// enter a per-session weighted-round-robin queue and the pool drains
  /// them in WRR order, so concurrent sessions share workers by weight
  /// instead of pool-level FIFO arrival order.
  Status RunDag(std::vector<PipelineTaskSet> sets, common::QueryGuard* guard,
                const common::TraceContext* trace,
                std::vector<char>* started = nullptr,
                const DagOptions& opts = DagOptions{});

  uint64_t dags_executed() const {
    return dags_executed_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_dispatched() const {
    return tasks_dispatched_.load(std::memory_order_relaxed);
  }
  /// Sets whose tasks all executed (successfully or not).
  uint64_t pipelines_completed() const {
    return pipelines_completed_.load(std::memory_order_relaxed);
  }
  /// Sets released after a DAG abort: their tasks never started.
  uint64_t pipelines_cancelled() const {
    return pipelines_cancelled_.load(std::memory_order_relaxed);
  }

  /// Cumulative per-task wall-time split: fair-queue wait (Push to Pop)
  /// vs task-body run time, across every DAG this scheduler executed.
  uint64_t total_task_queue_wait_us() const {
    return task_queue_wait_us_.load(std::memory_order_relaxed);
  }
  uint64_t total_task_run_us() const {
    return task_run_us_.load(std::memory_order_relaxed);
  }

  /// Ready tasks currently parked in the fair queue (claimed by a pool
  /// worker but not yet run ≙ 0 when quiesced).
  size_t fair_queue_depth() const { return fair_queue_.size(); }
  /// Sessions with ready tasks queued right now.
  size_t fair_sessions_active() const { return fair_queue_.sessions_active(); }

  /// Process-wide scheduler over ThreadPool::Shared().
  static PipelineScheduler& Shared();

 private:
  struct DagRun;

  void DispatchSet(const std::shared_ptr<DagRun>& run, size_t s);
  void RunTask(const std::shared_ptr<DagRun>& run, size_t s, size_t t);
  void FinishSet(const std::shared_ptr<DagRun>& run, size_t s, bool ran);
  void NoteTaskWait(DagRun& run, uint64_t us);
  void NoteTaskRun(DagRun& run, uint64_t us);

  std::atomic<uint64_t> dags_executed_{0};
  std::atomic<uint64_t> tasks_dispatched_{0};
  std::atomic<uint64_t> pipelines_completed_{0};
  std::atomic<uint64_t> pipelines_cancelled_{0};
  std::atomic<uint64_t> task_queue_wait_us_{0};
  std::atomic<uint64_t> task_run_us_{0};
  FairTaskQueue fair_queue_;
};

}  // namespace fgac::exec

#endif  // FGAC_EXEC_SCHEDULER_H_
