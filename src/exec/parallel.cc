#include "exec/parallel.h"

#include <algorithm>

#include "exec/exec_stats.h"
#include "exec/executor.h"
#include "exec/pipeline.h"

namespace fgac::exec {

using algebra::PlanKind;
using algebra::PlanPtr;

namespace {

/// True when the plan decomposes into at least one morsel pipeline, i.e.
/// ExecutePlanPipelined would do better than the serial engine. UNION ALL
/// always qualifies: even a union of serial-only branches benefits from
/// running the branches as concurrent pipelines of one DAG.
bool ShouldPipeline(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kGet:
    case PlanKind::kSelect:
    case PlanKind::kProject:
    case PlanKind::kJoin:
      return PipelineSourceNode(plan) != nullptr;
    case PlanKind::kAggregate:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
      return PipelineSourceNode(plan->children[0]) != nullptr;
    case PlanKind::kUnionAll:
      return true;
    default:
      // kValues, kLimit: nothing to fan out (LIMIT's early-out is
      // inherently serial).
      return false;
  }
}

}  // namespace

bool IsParallelizable(const PlanPtr& plan,
                      const storage::DatabaseState& state) {
  if (plan == nullptr) return false;
  auto pipeline_ok = [&state](const PlanPtr& p) {
    const algebra::Plan* src = PipelineSourceNode(p);
    return src != nullptr && state.GetTable(src->table) != nullptr;
  };
  switch (plan->kind) {
    case PlanKind::kGet:
    case PlanKind::kSelect:
    case PlanKind::kProject:
    case PlanKind::kJoin:
      return pipeline_ok(plan);
    case PlanKind::kAggregate:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
      return pipeline_ok(plan->children[0]);
    case PlanKind::kUnionAll:
      return std::any_of(
          plan->children.begin(), plan->children.end(),
          [&](const PlanPtr& c) { return IsParallelizable(c, state); });
    default:
      return false;
  }
}

Result<storage::Relation> ParallelExecutePlan(
    const PlanPtr& plan, const storage::DatabaseState& state,
    size_t num_threads, common::QueryGuard* guard, ExecStats* stats,
    const common::TraceContext* trace, const DagOptions& dag_opts) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  // Both serial paths (explicit n<=1 and the not-decomposable fallback)
  // funnel through here so the trace always shows where the plan actually
  // ran: a top-level "exec.serial" span on the calling thread means the
  // pipeline engine was bypassed entirely.
  auto run_serial = [&]() -> Result<storage::Relation> {
    common::ScopedSpan span(trace, "exec.serial");
    return ExecutePlan(plan, state, guard, stats);
  };
  if (num_threads <= 1 || !ShouldPipeline(plan)) return run_serial();
  return ExecutePlanPipelined(plan, state, num_threads, guard, stats, trace,
                              dag_opts);
}

}  // namespace fgac::exec
