#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "exec/eval.h"
#include "exec/exec_stats.h"
#include "exec/executor.h"
#include "exec/operators.h"
#include "storage/table_data.h"

namespace fgac::exec {

using algebra::PlanKind;
using algebra::PlanPtr;
using common::ThreadPool;

namespace {

// ---------------------------------------------------------------------------
// Shared pipeline state (prepared serially, then read-only across threads)
// ---------------------------------------------------------------------------

/// Shared morsel cursor over one base table: every pipeline thread claims
/// [next, next + kMorselSize) ranges until the table is exhausted. This is
/// where the load balancing comes from — no work stealing needed.
struct MorselSource {
  const storage::TableData* table = nullptr;
  std::atomic<size_t> next{0};
  /// Shared guardrail for the whole parallel query (may be null). One
  /// instance serves every worker: its counters are atomic and Check() is
  /// read-only, so no extra synchronization is needed.
  common::QueryGuard* guard = nullptr;
  /// First-error-wins abort: a failing worker raises it; the others see it
  /// at their next morsel claim and end their streams cleanly, so the
  /// fan-out joins all workers fast without burning through the rest of
  /// the table.
  std::atomic<bool> abort{false};
};

/// One hash-join stage on the pipeline's left spine: the build side is
/// executed serially exactly once, then probed read-only by every thread.
struct JoinStage {
  JoinKeys keys;
  HashJoinTable table;
};

/// Everything the per-thread pipelines share. Joins are stored in left-spine
/// bottom-up order; BuildThreadPipeline consumes them in the same order.
struct SharedPipeline {
  MorselSource source;
  std::vector<std::unique_ptr<JoinStage>> joins;
};

/// Walks the left spine down to the pipeline's source. Returns the kGet node
/// feeding the pipeline, or nullptr when the shape cannot be parallelized
/// (non-table source, or a join without equi-keys, which would need a
/// nested-loop join).
const algebra::Plan* PipelineSourceNode(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kGet:
      return plan.get();
    case PlanKind::kSelect:
    case PlanKind::kProject:
      return PipelineSourceNode(plan->children[0]);
    case PlanKind::kJoin: {
      size_t left_arity = algebra::OutputArity(*plan->children[0]);
      JoinKeys keys = SplitJoinKeys(plan->predicates, left_arity);
      if (keys.left_keys.empty()) return nullptr;
      return PipelineSourceNode(plan->children[0]);
    }
    default:
      return nullptr;
  }
}

/// Resolves the source table and executes every join build side serially.
Status PrepareShared(const PlanPtr& plan, const storage::DatabaseState& state,
                     SharedPipeline* shared, common::QueryGuard* guard,
                     ExecStats* stats) {
  switch (plan->kind) {
    case PlanKind::kGet: {
      const storage::TableData* data = state.GetTable(plan->table);
      if (data == nullptr) {
        return Status::ExecutionError("no data for table '" + plan->table +
                                      "'");
      }
      shared->source.table = data;
      shared->source.guard = guard;
      return Status::OK();
    }
    case PlanKind::kSelect:
    case PlanKind::kProject:
      return PrepareShared(plan->children[0], state, shared, guard, stats);
    case PlanKind::kJoin: {
      FGAC_RETURN_NOT_OK(
          PrepareShared(plan->children[0], state, shared, guard, stats));
      auto stage = std::make_unique<JoinStage>();
      stage->keys = SplitJoinKeys(plan->predicates,
                                  algebra::OutputArity(*plan->children[0]));
      FGAC_ASSIGN_OR_RETURN(
          OperatorPtr build,
          BuildPhysicalPlan(plan->children[1], state, guard, stats));
      FGAC_RETURN_NOT_OK(build->Open());
      FGAC_RETURN_NOT_OK(
          stage->table.BuildFrom(*build, stage->keys.right_keys, guard));
      shared->joins.push_back(std::move(stage));
      return Status::OK();
    }
    default:
      return Status::ExecutionError("plan shape is not a parallel pipeline");
  }
}

// ---------------------------------------------------------------------------
// Per-thread operators
// ---------------------------------------------------------------------------

/// Base-table scan over the shared morsel cursor. Unlike ScanOp, Open() does
/// NOT rewind (the cursor is shared); parallel pipelines are built, drained
/// once, and discarded inside ParallelExecutePlan, so re-Open never happens.
class MorselScanOp final : public Operator {
 public:
  /// `morsel_count` (may be null) is the owning worker's exclusive slot in
  /// the ExecStats profile; only this worker writes it.
  explicit MorselScanOp(MorselSource* source, uint64_t* morsel_count = nullptr)
      : source_(source), morsel_count_(morsel_count) {}
  Status Open() override { return Status::OK(); }
  Result<bool> Next(DataChunk& out) override {
    FGAC_FAULT_POINT("parallel.morsel");
    // Another worker already failed: end this stream cleanly (the fan-out
    // discards partial output once it sees the failing worker's status).
    if (source_->abort.load(std::memory_order_acquire)) {
      out.Reset(0);
      return false;
    }
    FGAC_RETURN_NOT_OK(common::GuardCheck(source_->guard));
    size_t total = source_->table->num_rows();
    while (true) {
      size_t start =
          source_->next.fetch_add(kMorselSize, std::memory_order_relaxed);
      if (start >= total) {
        out.Reset(0);
        return false;
      }
      FGAC_ASSIGN_OR_RETURN(
          size_t n, source_->table->ScanChunk(
                        start, std::min(kMorselSize, total - start), &out));
      if (n > 0) {
        if (morsel_count_ != nullptr) ++*morsel_count_;
        FGAC_RETURN_NOT_OK(common::GuardChargeRows(source_->guard, n));
        return true;
      }
    }
  }

 private:
  MorselSource* source_;
  uint64_t* morsel_count_ = nullptr;
};

/// Probe side of a shared hash join: owns its probe cursor (per-thread
/// state), borrows the build table from the JoinStage.
class SharedProbeOp final : public Operator {
 public:
  SharedProbeOp(const JoinStage* stage, OperatorPtr left)
      : stage_(stage), left_(std::move(left)) {}
  Status Open() override {
    cursor_.Reset();
    return left_->Open();
  }
  Result<bool> Next(DataChunk& out) override {
    FGAC_ASSIGN_OR_RETURN(
        bool more, cursor_.Next(*left_, stage_->keys.left_keys,
                                stage_->keys.residual, stage_->table, out));
    // Same work-bound accounting as the serial HashJoinOp: duplicate build
    // keys can fan probe rows out well past what the scan charged.
    if (more) FGAC_RETURN_NOT_OK(common::GuardChargeRows(guard_, out.size()));
    return more;
  }

 private:
  const JoinStage* stage_;
  OperatorPtr left_;
  HashProbeCursor cursor_;
};

/// Builds one thread's private operator tree over the shared state. Shape
/// has already been validated by PipelineSourceNode; joins are consumed in
/// the same bottom-up order PrepareShared produced them.
OperatorPtr BuildThreadPipeline(const PlanPtr& plan, SharedPipeline* shared,
                                size_t* next_join, ExecStats* stats,
                                uint64_t* morsel_count) {
  // Every worker's operator for a given logical node charges the same
  // shared OpStats (atomic counters), so the rendered numbers are totals
  // across the fan-out.
  auto wrap = [stats, &plan](OperatorPtr op) {
    if (stats == nullptr) return op;
    return OperatorPtr(new StatsOp(stats->NodeFor(plan.get()), std::move(op)));
  };
  switch (plan->kind) {
    case PlanKind::kGet:
      return wrap(OperatorPtr(new MorselScanOp(&shared->source, morsel_count)));
    case PlanKind::kSelect:
      return wrap(OperatorPtr(new FilterOp(
          plan->predicates, BuildThreadPipeline(plan->children[0], shared,
                                                next_join, stats,
                                                morsel_count))));
    case PlanKind::kProject:
      return wrap(OperatorPtr(new ProjectOp(
          plan->exprs, BuildThreadPipeline(plan->children[0], shared,
                                           next_join, stats, morsel_count))));
    case PlanKind::kJoin: {
      OperatorPtr left = BuildThreadPipeline(plan->children[0], shared,
                                             next_join, stats, morsel_count);
      const JoinStage* stage = shared->joins[(*next_join)++].get();
      OperatorPtr probe(new SharedProbeOp(stage, std::move(left)));
      probe->set_guard(shared->source.guard);
      return wrap(std::move(probe));
    }
    default:
      return nullptr;  // unreachable: shape checked before fan-out
  }
}

// ---------------------------------------------------------------------------
// Fan-out harness
// ---------------------------------------------------------------------------

/// Runs fn(0..n-1) on the shared pool and returns the lowest-indexed
/// failure (deterministic regardless of completion order). RunAll joins
/// every worker before returning, so no task can outlive the shared state.
/// A failing worker raises `abort` (when given) so its peers drain early
/// instead of finishing their share of the table. When `trace` is active
/// each worker runs under its own "exec.worker" child span, recorded on the
/// worker's thread so tid in the trace export is the real pool thread.
Status FanOut(size_t n, const std::function<Status(size_t)>& fn,
              std::atomic<bool>* abort = nullptr,
              const common::TraceContext* trace = nullptr) {
  std::vector<Status> statuses(n, Status::OK());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    tasks.push_back([t, &fn, &statuses, abort, trace] {
      common::ScopedSpan span(trace, "exec.worker");
      span.set_detail("worker=" + std::to_string(t));
      Status injected = FGAC_FAULT_CHECK("threadpool.dispatch");
      if (injected.ok()) statuses[t] = fn(t);
      else statuses[t] = std::move(injected);
      if (!statuses[t].ok() && abort != nullptr) {
        abort->store(true, std::memory_order_release);
        span.set_detail("worker=" + std::to_string(t) + " error=" +
                        statuses[t].message());
      }
    });
  }
  ThreadPool::Shared().RunAll(std::move(tasks));
  for (Status& s : statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

Status DrainRows(Operator& root, std::vector<Row>* rows) {
  DataChunk chunk;
  while (true) {
    Result<bool> more = root.Next(chunk);
    if (!more.ok()) return more.status();
    if (!more.value()) return Status::OK();
    for (size_t i = 0; i < chunk.size(); ++i) rows->push_back(chunk.GetRow(i));
  }
}

/// Runs the pipeline `plan` on `n` threads, gathering each thread's output
/// rows separately. `wrap` may decorate the per-thread tree (e.g. with a
/// per-thread DistinctOp).
Result<std::vector<std::vector<Row>>> RunPipelineGather(
    const PlanPtr& plan, const storage::DatabaseState& state, size_t n,
    common::QueryGuard* guard, ExecStats* stats,
    const common::TraceContext* trace,
    const std::function<OperatorPtr(OperatorPtr)>& wrap = nullptr) {
  auto shared = std::make_unique<SharedPipeline>();
  FGAC_RETURN_NOT_OK(PrepareShared(plan, state, shared.get(), guard, stats));
  if (stats != nullptr && stats->worker_morsels().size() != n) {
    stats->SetThreads(n);
  }
  std::vector<std::vector<Row>> per_thread(n);
  FGAC_RETURN_NOT_OK(FanOut(
      n,
      [&](size_t t) -> Status {
        size_t next_join = 0;
        uint64_t* morsels =
            stats != nullptr ? stats->worker_morsel_slot(t) : nullptr;
        OperatorPtr root =
            BuildThreadPipeline(plan, shared.get(), &next_join, stats, morsels);
        if (wrap) root = wrap(std::move(root));
        FGAC_RETURN_NOT_OK(root->Open());
        return DrainRows(*root, &per_thread[t]);
      },
      &shared->source.abort, trace));
  return per_thread;
}

/// Partial per-thread aggregation + serial merge via AggAccumulator::Merge.
Result<storage::Relation> ParallelAggregate(const PlanPtr& plan,
                                            const storage::DatabaseState& state,
                                            size_t n, common::QueryGuard* guard,
                                            ExecStats* stats,
                                            const common::TraceContext* trace) {
  const PlanPtr& child = plan->children[0];
  auto shared = std::make_unique<SharedPipeline>();
  FGAC_RETURN_NOT_OK(PrepareShared(child, state, shared.get(), guard, stats));
  if (stats != nullptr && stats->worker_morsels().size() != n) {
    stats->SetThreads(n);
  }
  std::vector<AggGroups> partials(n);
  FGAC_RETURN_NOT_OK(FanOut(
      n,
      [&](size_t t) -> Status {
        size_t next_join = 0;
        uint64_t* morsels =
            stats != nullptr ? stats->worker_morsel_slot(t) : nullptr;
        OperatorPtr root = BuildThreadPipeline(child, shared.get(), &next_join,
                                               stats, morsels);
        FGAC_RETURN_NOT_OK(root->Open());
        return AccumulateGroups(*root, plan->group_by, plan->aggs, &partials[t],
                                guard);
      },
      &shared->source.abort, trace));
  AggGroups merged = std::move(partials[0]);
  for (size_t t = 1; t < n; ++t) {
    for (auto& [key, accs] : partials[t]) {
      auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, std::move(accs));
      } else {
        for (size_t a = 0; a < accs.size(); ++a) {
          FGAC_RETURN_NOT_OK(it->second[a].Merge(accs[a]));
        }
      }
    }
  }
  storage::Relation out(algebra::OutputNames(*plan));
  out.mutable_rows() =
      FinishGroups(std::move(merged), plan->aggs, plan->group_by.empty());
  if (stats != nullptr) {
    // The merge runs outside any operator; attribute the final group count
    // to the aggregate node so the printout matches the serial plan shape.
    stats->NodeFor(plan.get())
        ->rows_out.fetch_add(out.num_rows(), std::memory_order_relaxed);
  }
  return out;
}

storage::Relation GatherToRelation(const PlanPtr& plan,
                                   std::vector<std::vector<Row>> per_thread) {
  storage::Relation out(algebra::OutputNames(*plan));
  size_t total = 0;
  for (const std::vector<Row>& rows : per_thread) total += rows.size();
  out.mutable_rows().reserve(total);
  for (std::vector<Row>& rows : per_thread) {
    for (Row& r : rows) out.mutable_rows().push_back(std::move(r));
  }
  return out;
}

}  // namespace

bool IsParallelizable(const PlanPtr& plan,
                      const storage::DatabaseState& state) {
  if (plan == nullptr) return false;
  auto pipeline_ok = [&state](const PlanPtr& p) {
    const algebra::Plan* src = PipelineSourceNode(p);
    return src != nullptr && state.GetTable(src->table) != nullptr;
  };
  switch (plan->kind) {
    case PlanKind::kGet:
    case PlanKind::kSelect:
    case PlanKind::kProject:
    case PlanKind::kJoin:
      return pipeline_ok(plan);
    case PlanKind::kAggregate:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
      return pipeline_ok(plan->children[0]);
    case PlanKind::kUnionAll:
      return std::any_of(
          plan->children.begin(), plan->children.end(),
          [&](const PlanPtr& c) { return IsParallelizable(c, state); });
    default:
      return false;
  }
}

Result<storage::Relation> ParallelExecutePlan(
    const PlanPtr& plan, const storage::DatabaseState& state,
    size_t num_threads, common::QueryGuard* guard, ExecStats* stats,
    const common::TraceContext* trace) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  // Every serial path (explicit n<=1 and the not-parallelizable fallbacks
  // below) funnels through here so the trace always shows where the plan
  // actually ran.
  auto run_serial = [&]() -> Result<storage::Relation> {
    common::ScopedSpan span(trace, "exec.serial");
    return ExecutePlan(plan, state, guard, stats);
  };
  if (num_threads <= 1) return run_serial();
  // Top nodes executed outside any operator tree (parallel aggregate merge,
  // final dedup, gathered sort, union glue) charge their plan node here.
  auto record_rows = [stats](const PlanPtr& node, uint64_t rows) {
    if (stats != nullptr) {
      stats->NodeFor(node.get())
          ->rows_out.fetch_add(rows, std::memory_order_relaxed);
    }
  };
  switch (plan->kind) {
    case PlanKind::kGet:
    case PlanKind::kSelect:
    case PlanKind::kProject:
    case PlanKind::kJoin: {
      if (PipelineSourceNode(plan) == nullptr) {
        return run_serial();
      }
      FGAC_ASSIGN_OR_RETURN(
          auto per_thread,
          RunPipelineGather(plan, state, num_threads, guard, stats, trace));
      return GatherToRelation(plan, std::move(per_thread));
    }
    case PlanKind::kAggregate: {
      if (PipelineSourceNode(plan->children[0]) == nullptr) {
        return run_serial();
      }
      return ParallelAggregate(plan, state, num_threads, guard, stats, trace);
    }
    case PlanKind::kDistinct: {
      if (PipelineSourceNode(plan->children[0]) == nullptr) {
        return run_serial();
      }
      // Per-thread pre-dedup shrinks what crosses the merge; the final pass
      // eliminates duplicates that appeared on different threads.
      FGAC_ASSIGN_OR_RETURN(
          auto per_thread,
          RunPipelineGather(plan->children[0], state, num_threads, guard,
                            stats, trace, [guard](OperatorPtr child) {
                              OperatorPtr op(new DistinctOp(std::move(child)));
                              op->set_guard(guard);
                              return op;
                            }));
      storage::Relation out(algebra::OutputNames(*plan));
      std::unordered_set<Row, RowHash, RowEq> seen;
      for (std::vector<Row>& rows : per_thread) {
        for (Row& r : rows) {
          if (seen.insert(r).second) out.mutable_rows().push_back(std::move(r));
        }
      }
      record_rows(plan, out.num_rows());
      return out;
    }
    case PlanKind::kSort: {
      if (PipelineSourceNode(plan->children[0]) == nullptr) {
        return run_serial();
      }
      // Parallel gather, serial sort: sorting is a full-input barrier anyway,
      // so only the scan/filter/join work below it is worth fanning out.
      FGAC_ASSIGN_OR_RETURN(
          auto per_thread,
          RunPipelineGather(plan->children[0], state, num_threads, guard,
                            stats, trace));
      storage::Relation gathered =
          GatherToRelation(plan->children[0], std::move(per_thread));
      SortOp sorter(plan->sort_items,
                    OperatorPtr(new ScanOp(&gathered.rows())));
      sorter.set_guard(guard);
      FGAC_RETURN_NOT_OK(sorter.Open());
      storage::Relation out(algebra::OutputNames(*plan));
      DataChunk chunk;
      while (true) {
        FGAC_ASSIGN_OR_RETURN(bool more, sorter.Next(chunk));
        if (!more) break;
        out.AppendChunk(chunk);
      }
      record_rows(plan, out.num_rows());
      return out;
    }
    case PlanKind::kUnionAll: {
      storage::Relation out(algebra::OutputNames(*plan));
      for (const PlanPtr& child : plan->children) {
        FGAC_ASSIGN_OR_RETURN(
            storage::Relation r,
            ParallelExecutePlan(child, state, num_threads, guard, stats,
                                trace));
        for (Row& row : r.mutable_rows()) {
          out.mutable_rows().push_back(std::move(row));
        }
      }
      record_rows(plan, out.num_rows());
      return out;
    }
    default:
      // kValues, kLimit: nothing to fan out (LIMIT's early-out is
      // inherently serial).
      return run_serial();
  }
}

}  // namespace fgac::exec
