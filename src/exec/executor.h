#ifndef FGAC_EXEC_EXECUTOR_H_
#define FGAC_EXEC_EXECUTOR_H_

#include "algebra/plan.h"
#include "common/result.h"
#include "exec/operators.h"
#include "storage/database_state.h"
#include "storage/relation.h"

namespace fgac::exec {

class ExecStats;

/// Lowers a logical plan to a physical operator tree over `state` (borrowed
/// for the lifetime of the returned operator). Joins with equi-predicates
/// become hash joins; others become block nested-loop joins. `guard` (may
/// be null = no limits) is attached to every operator and must outlive the
/// tree. When `stats` is non-null every node is wrapped in a StatsOp
/// charging per-operator rows/chunks/time into it (EXPLAIN ANALYZE); a
/// null `stats` builds the exact tree it always did, at zero cost.
Result<OperatorPtr> BuildPhysicalPlan(const algebra::PlanPtr& plan,
                                      const storage::DatabaseState& state,
                                      common::QueryGuard* guard = nullptr,
                                      ExecStats* stats = nullptr);

/// Builds, opens, and drains a physical plan into a Relation (column names
/// from the logical plan).
Result<storage::Relation> ExecutePlan(const algebra::PlanPtr& plan,
                                      const storage::DatabaseState& state,
                                      common::QueryGuard* guard = nullptr,
                                      ExecStats* stats = nullptr);

}  // namespace fgac::exec

#endif  // FGAC_EXEC_EXECUTOR_H_
