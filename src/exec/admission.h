#ifndef FGAC_EXEC_ADMISSION_H_
#define FGAC_EXEC_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "common/memory_tracker.h"
#include "common/query_guard.h"
#include "common/status.h"

namespace fgac::exec {

/// Which waiting query loses when the admission queue overflows.
enum class ShedPolicy {
  /// The arriving query is rejected (the queue's FIFO order is preserved:
  /// work already waiting is older and closer to running).
  kShedNewest,
  /// The most expensive query loses: if a queued query's cost estimate
  /// exceeds the arrival's, that queued query is woken with kOverloaded
  /// and the arrival takes its place; otherwise the arrival is rejected.
  kShedByCost,
};

const char* ShedPolicyName(ShedPolicy policy);

struct AdmissionOptions {
  /// Queries allowed past admission concurrently. 0 = unlimited (the
  /// controller still counts, still sheds on memory pressure, but never
  /// queues).
  size_t max_concurrent = 0;
  /// Bounded wait queue in front of the scheduler; an arrival finding it
  /// full is shed per `shed_policy`. Overridable with FGAC_ADMISSION_QUEUE
  /// (see Resolved()).
  size_t max_queue = 64;
  ShedPolicy shed_policy = ShedPolicy::kShedNewest;

  /// Copy with the FGAC_ADMISSION_QUEUE environment override applied.
  AdmissionOptions Resolved() const;
};

/// Everything the controller needs to know about one arriving query.
struct AdmissionRequest {
  /// The query's wall-clock deadline, when it has one: a query that would
  /// start past it is rejected with kTimeout before doing any work.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Relative cost estimate (e.g. total base-table rows the plan touches)
  /// consulted by ShedPolicy::kShedByCost. Scale-free: only comparisons
  /// between concurrently queued queries matter.
  double cost = 1.0;
  /// Observed while queued (may be null): a cancelled session's query
  /// leaves the queue with kCancelled instead of occupying a slot.
  const common::QueryGuard* guard = nullptr;
};

class AdmissionController;

/// RAII admission slot: releasing it (destruction) frees the slot and
/// dispatches the next queued query. Move-only; a default-constructed
/// ticket holds nothing (queries that bypass admission).
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept { MoveFrom(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() { Release(); }

  bool held() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller,
                  std::chrono::steady_clock::time_point admitted_at)
      : controller_(controller), admitted_at_(admitted_at) {}
  void MoveFrom(AdmissionTicket& other) {
    controller_ = other.controller_;
    admitted_at_ = other.admitted_at_;
    other.controller_ = nullptr;
  }

  AdmissionController* controller_ = nullptr;
  std::chrono::steady_clock::time_point admitted_at_{};
};

/// Bounded, deadline-aware admission control in front of the scheduler:
/// the overload-shedding layer of the limit hierarchy (global MemoryTracker
/// soft limit -> shed admissions; hard limit / per-query QueryLimits ->
/// fail the charging query).
///
/// Admit() either grants a slot immediately, queues the caller (FIFO,
/// bounded), or sheds it:
///  - global memory pressure (tracker soft limit) sheds arrivals with
///    kOverloaded + a retry-after hint;
///  - a full queue sheds per ShedPolicy, also kOverloaded + retry-after;
///  - a query whose deadline expires before it would start is rejected
///    with kTimeout, before doing any work;
///  - a cancelled session's queued query leaves with kCancelled;
///  - Shutdown() drains every queued-but-unadmitted query with kCancelled
///    (nothing leaks: each waiter's Admit() frame returns).
///
/// The retry-after hint is derived from an EWMA of admitted-query service
/// times and the current backlog — "how long until a slot likely frees".
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options,
                               const common::MemoryTracker* tracker = nullptr);
  ~AdmissionController();
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  const AdmissionOptions& options() const { return options_; }

  /// Blocks until a slot is granted (ticket stored in `*out`) or the
  /// request is shed/rejected per the class contract. Fault site
  /// "admission.enqueue" fires when a request is about to join the wait
  /// queue. Must not be called from a pool worker thread.
  Status Admit(const AdmissionRequest& request, AdmissionTicket* out);

  /// Wakes every queued waiter with kCancelled and makes every later
  /// Admit() fail the same way. Idempotent.
  void Shutdown();

  // Counters (relaxed; exact when quiesced).
  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  uint64_t shed_queue_full() const {
    return shed_queue_full_.load(std::memory_order_relaxed);
  }
  uint64_t shed_memory() const {
    return shed_memory_.load(std::memory_order_relaxed);
  }
  uint64_t rejected_deadline() const {
    return rejected_deadline_.load(std::memory_order_relaxed);
  }
  uint64_t cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  uint64_t queue_depth_high_water() const {
    return queue_high_water_.load(std::memory_order_relaxed);
  }
  /// Total wall-time requests spent in the wait queue (all exits: admitted,
  /// shed, expired, cancelled) — the admission side of the queue-wait vs
  /// run attribution surfaced by fgac_activity and the watchdog.
  uint64_t total_queue_wait_us() const {
    return queue_wait_us_.load(std::memory_order_relaxed);
  }
  size_t queue_depth() const;
  size_t running() const { return running_.load(std::memory_order_relaxed); }

 private:
  friend class AdmissionTicket;

  enum class WaitState { kWaiting, kAdmitted, kShed, kShutdown };
  struct Waiter {
    WaitState state = WaitState::kWaiting;
    double cost = 1.0;
  };

  /// Caller holds mu_. Grants slots to FIFO waiters while capacity allows.
  void DispatchLocked();
  /// Caller holds mu_. Computes the retry-after hint in milliseconds from
  /// the EWMA service time and the backlog ahead of a new arrival.
  uint64_t RetryAfterMsLocked() const;
  Status ShedStatus(const char* reason, uint64_t retry_ms) const;
  void ReleaseSlot(std::chrono::steady_clock::time_point admitted_at);

  const AdmissionOptions options_;
  const common::MemoryTracker* tracker_;

  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::shared_ptr<Waiter>> queue_;
  bool shutdown_ = false;
  /// EWMA of admitted-query service time in microseconds (alpha 1/8);
  /// seeded pessimistically so the first hints are not zero.
  uint64_t ewma_service_us_ = 1000;

  std::atomic<size_t> running_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_memory_{0};
  std::atomic<uint64_t> rejected_deadline_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> queue_high_water_{0};
  std::atomic<uint64_t> queue_wait_us_{0};
};

/// Parses the "retry after <n>ms" hint out of a kOverloaded status message.
/// Returns -1 when the status carries no hint.
int64_t RetryAfterHintMs(const Status& status);

}  // namespace fgac::exec

#endif  // FGAC_EXEC_ADMISSION_H_
