#include "exec/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/fault_injection.h"
#include "common/thread_pool.h"

namespace fgac::exec {

void FairTaskQueue::Push(uint64_t session, uint32_t weight,
                         std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mu_);
  SessionQueue& q = sessions_[session];
  q.weight = std::max<uint32_t>(1, weight);
  q.tasks.push_back(std::move(task));
  ++size_;
  if (!q.in_rotation) {
    q.in_rotation = true;
    q.credits = 0;  // fresh visit starts with a full grant
    rotation_.push_back(session);
  }
}

bool FairTaskQueue::Pop(std::function<void()>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!rotation_.empty()) {
    uint64_t key = rotation_.front();
    auto it = sessions_.find(key);
    if (it == sessions_.end() || it->second.tasks.empty()) {
      // Visit exhausted between Pops (tasks drained without re-Push).
      rotation_.pop_front();
      if (it != sessions_.end()) sessions_.erase(it);
      continue;
    }
    SessionQueue& q = it->second;
    if (q.credits == 0) q.credits = q.weight;
    *out = std::move(q.tasks.front());
    q.tasks.pop_front();
    --size_;
    if (--q.credits == 0 || q.tasks.empty()) {
      // Grant spent (or nothing left): rotate to the next session.
      rotation_.pop_front();
      q.credits = 0;
      if (q.tasks.empty()) {
        sessions_.erase(it);
      } else {
        rotation_.push_back(key);
      }
    }
    return true;
  }
  return false;
}

size_t FairTaskQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

size_t FairTaskQueue::sessions_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

/// Shared state of one in-flight DAG. Heap-allocated and shared_ptr-held by
/// every dispatched task so nothing dangles regardless of completion order;
/// the caller's RunDag frame is the last owner standing.
struct PipelineScheduler::DagRun {
  std::vector<PipelineTaskSet> sets;
  /// Per set: dependencies not yet completed / tasks not yet finished.
  std::unique_ptr<std::atomic<size_t>[]> deps_left;
  std::unique_ptr<std::atomic<size_t>[]> tasks_left;
  /// Per set: sets gated on it (reverse edges of `deps`).
  std::vector<std::vector<size_t>> dependents;
  /// Per set, per task: first failure wins in (set, task) order.
  std::vector<std::vector<Status>> statuses;
  /// Per set: tracer timestamp at dispatch, for the "exec.pipeline" span.
  std::vector<int64_t> start_us;
  /// Per set: 1 once its tasks actually ran (0 = cancelled before start).
  std::vector<char> started;
  /// First-error-wins: raised by any failing task; later sets observe it at
  /// dispatch and are cancelled without starting.
  std::atomic<bool> abort{false};
  common::QueryGuard* guard = nullptr;
  /// Fair-dispatch identity of the submitting session.
  DagOptions opts;
  common::TraceContext trace;  // copied: valid for the workers' lifetime
  std::mutex mu;
  std::condition_variable done;
  size_t sets_remaining = 0;
};

Status PipelineScheduler::RunDag(std::vector<PipelineTaskSet> sets,
                                 common::QueryGuard* guard,
                                 const common::TraceContext* trace,
                                 std::vector<char>* started,
                                 const DagOptions& opts) {
  if (sets.empty()) return Status::OK();
  const size_t n = sets.size();
  for (size_t s = 0; s < n; ++s) {
    for (size_t d : sets[s].deps) {
      if (d >= s) {
        return Status::ExecutionError(
            "pipeline DAG must be in topological order");
      }
    }
  }
  auto run = std::make_shared<DagRun>();
  run->sets = std::move(sets);
  run->deps_left = std::make_unique<std::atomic<size_t>[]>(n);
  run->tasks_left = std::make_unique<std::atomic<size_t>[]>(n);
  run->dependents.resize(n);
  run->statuses.resize(n);
  run->start_us.assign(n, 0);
  run->started.assign(n, 0);
  for (size_t s = 0; s < n; ++s) {
    const PipelineTaskSet& set = run->sets[s];
    run->deps_left[s].store(set.deps.size(), std::memory_order_relaxed);
    run->tasks_left[s].store(set.tasks.size(), std::memory_order_relaxed);
    run->statuses[s].assign(std::max<size_t>(1, set.tasks.size()),
                            Status::OK());
    for (size_t d : set.deps) run->dependents[d].push_back(s);
  }
  run->guard = guard;
  run->opts = opts;
  if (trace != nullptr) run->trace = *trace;
  run->sets_remaining = n;
  dags_executed_.fetch_add(1, std::memory_order_relaxed);
  if (opts.progress != nullptr) {
    opts.progress->sets_total.fetch_add(n, std::memory_order_relaxed);
  }

  for (size_t s = 0; s < n; ++s) {
    if (run->sets[s].deps.empty()) DispatchSet(run, s);
  }
  {
    std::unique_lock<std::mutex> lock(run->mu);
    run->done.wait(lock, [&] { return run->sets_remaining == 0; });
  }
  if (started != nullptr) *started = run->started;
  for (size_t s = 0; s < n; ++s) {
    for (Status& st : run->statuses[s]) {
      if (!st.ok()) return std::move(st);
    }
  }
  return Status::OK();
}

void PipelineScheduler::DispatchSet(const std::shared_ptr<DagRun>& run,
                                    size_t s) {
  DagRun& r = *run;
  if (r.trace.active()) r.start_us[s] = r.trace.tracer->NowUs();
  if (r.abort.load(std::memory_order_acquire)) {
    // The DAG already failed: dependents of the failing pipeline must
    // never start (their inputs are garbage).
    pipelines_cancelled_.fetch_add(1, std::memory_order_relaxed);
    FinishSet(run, s, /*ran=*/false);
    return;
  }
  Status injected = FGAC_FAULT_CHECK("scheduler.dispatch");
  if (!injected.ok()) {
    r.statuses[s][0] = std::move(injected);
    r.abort.store(true, std::memory_order_release);
    pipelines_cancelled_.fetch_add(1, std::memory_order_relaxed);
    FinishSet(run, s, /*ran=*/false);
    return;
  }
  const size_t tasks = r.sets[s].tasks.size();
  if (tasks == 0) {
    pipelines_completed_.fetch_add(1, std::memory_order_relaxed);
    FinishSet(run, s, /*ran=*/true);
    return;
  }
  tasks_dispatched_.fetch_add(tasks, std::memory_order_relaxed);
  // Ready tasks are parked in the per-session WRR queue; what goes to the
  // pool is an equal number of interchangeable drain tokens. Each token
  // runs whichever task the fair queue releases next, so sessions share
  // worker bandwidth by weight no matter whose DAG enqueued first.
  for (size_t t = 0; t < tasks; ++t) {
    // Push-to-Pop delta is the task's fair-queue wait; attributed to the
    // DAG's progress record (fgac_activity) and the scheduler totals.
    auto pushed = std::chrono::steady_clock::now();
    fair_queue_.Push(r.opts.session_key, r.opts.weight,
                     [this, run, s, t, pushed] {
                       auto waited =
                           std::chrono::steady_clock::now() - pushed;
                       NoteTaskWait(
                           *run,
                           static_cast<uint64_t>(
                               std::chrono::duration_cast<
                                   std::chrono::microseconds>(waited)
                                   .count()));
                       RunTask(run, s, t);
                     });
  }
  for (size_t t = 0; t < tasks; ++t) {
    common::ThreadPool::Shared().Submit([this] {
      std::function<void()> task;
      if (fair_queue_.Pop(&task)) task();
    });
  }
}

void PipelineScheduler::RunTask(const std::shared_ptr<DagRun>& run, size_t s,
                                size_t t) {
  DagRun& r = *run;
  const PipelineTaskSet& set = r.sets[s];
  Status status = Status::OK();
  {
    const common::TraceContext* tctx =
        (r.trace.active() && !set.task_span.empty()) ? &r.trace : nullptr;
    common::ScopedSpan span(tctx, set.task_span);
    span.set_detail("worker=" + std::to_string(t));
    if (!r.abort.load(std::memory_order_acquire)) {
      auto t0 = std::chrono::steady_clock::now();
      Status injected = FGAC_FAULT_CHECK("threadpool.dispatch");
      if (injected.ok()) injected = FGAC_FAULT_CHECK("pipeline.run");
      if (injected.ok()) injected = common::GuardCheck(r.guard);
      status = injected.ok() ? set.tasks[t](t) : std::move(injected);
      auto ran_for = std::chrono::steady_clock::now() - t0;
      NoteTaskRun(r, static_cast<uint64_t>(
                         std::chrono::duration_cast<std::chrono::microseconds>(
                             ran_for)
                             .count()));
    }
    // else: a peer already failed while this task sat queued; drain as a
    // clean no-op (the DAG's status comes from the actual failure).
    if (!status.ok()) {
      r.abort.store(true, std::memory_order_release);
      span.set_detail("worker=" + std::to_string(t) +
                      " error=" + status.message());
    }
  }
  if (!status.ok()) r.statuses[s][t] = std::move(status);
  if (r.tasks_left[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pipelines_completed_.fetch_add(1, std::memory_order_relaxed);
    FinishSet(run, s, /*ran=*/true);
  }
}

void PipelineScheduler::FinishSet(const std::shared_ptr<DagRun>& run, size_t s,
                                  bool ran) {
  DagRun& r = *run;
  if (r.trace.active()) {
    common::TraceSpan span;
    span.trace_id = r.trace.trace_id;
    span.span_id = r.trace.tracer->NewSpanId();
    span.parent_id = r.trace.parent_span;
    span.name = "exec.pipeline";
    span.detail = "pipeline=" + std::to_string(s) + " " + r.sets[s].label +
                  " tasks=" + std::to_string(r.sets[s].tasks.size()) +
                  (ran ? "" : " cancelled");
    span.user = r.trace.user;
    span.start_us = r.start_us[s];
    span.dur_us = r.trace.tracer->NowUs() - r.start_us[s];
    span.thread_id = common::CurrentThreadId();
    r.trace.tracer->Record(std::move(span));
  }
  r.started[s] = ran ? 1 : 0;
  if (r.opts.progress != nullptr) {
    // Settled (ran or cancelled) — fgac_activity's pipelines_done reaches
    // pipelines_total exactly when the DAG has drained.
    r.opts.progress->sets_done.fetch_add(1, std::memory_order_relaxed);
  }
  for (size_t d : r.dependents[s]) {
    if (r.deps_left[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      DispatchSet(run, d);
    }
  }
  std::lock_guard<std::mutex> lock(r.mu);
  if (--r.sets_remaining == 0) r.done.notify_all();
}

void PipelineScheduler::NoteTaskWait(DagRun& run, uint64_t us) {
  task_queue_wait_us_.fetch_add(us, std::memory_order_relaxed);
  if (run.opts.progress != nullptr) {
    run.opts.progress->queue_wait_us.fetch_add(us, std::memory_order_relaxed);
  }
}

void PipelineScheduler::NoteTaskRun(DagRun& run, uint64_t us) {
  task_run_us_.fetch_add(us, std::memory_order_relaxed);
  if (run.opts.progress != nullptr) {
    run.opts.progress->run_us.fetch_add(us, std::memory_order_relaxed);
  }
}

PipelineScheduler& PipelineScheduler::Shared() {
  static PipelineScheduler* scheduler = new PipelineScheduler();
  return *scheduler;
}

}  // namespace fgac::exec
