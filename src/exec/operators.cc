#include "exec/operators.h"

#include <algorithm>
#include <map>

#include "exec/eval.h"

namespace fgac::exec {

using algebra::AggAccumulator;
using algebra::EvalScalar;
using algebra::ScalarPtr;

Result<std::optional<Row>> ScanOp::Next() {
  if (pos_ >= rows_->size()) return std::optional<Row>();
  return std::optional<Row>((*rows_)[pos_++]);
}

Result<std::optional<Row>> ValuesOp::Next() {
  if (pos_ >= rows_.size()) return std::optional<Row>();
  return std::optional<Row>(rows_[pos_++]);
}

Result<std::optional<Row>> FilterOp::Next() {
  while (true) {
    FGAC_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
    if (!row.has_value()) return std::optional<Row>();
    FGAC_ASSIGN_OR_RETURN(bool pass, PassesAll(predicates_, *row));
    if (pass) return row;
  }
}

Result<std::optional<Row>> ProjectOp::Next() {
  FGAC_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
  if (!row.has_value()) return std::optional<Row>();
  FGAC_ASSIGN_OR_RETURN(Row out, ProjectRow(exprs_, *row));
  return std::optional<Row>(std::move(out));
}

Status NestedLoopJoinOp::Open() {
  FGAC_RETURN_NOT_OK(left_->Open());
  FGAC_RETURN_NOT_OK(right_->Open());
  right_rows_.clear();
  while (true) {
    Result<std::optional<Row>> row = right_->Next();
    if (!row.ok()) return row.status();
    if (!row.value().has_value()) break;
    right_rows_.push_back(std::move(*row.value()));
  }
  current_left_.reset();
  right_pos_ = 0;
  return Status::OK();
}

Result<std::optional<Row>> NestedLoopJoinOp::Next() {
  while (true) {
    if (!current_left_.has_value()) {
      FGAC_ASSIGN_OR_RETURN(current_left_, left_->Next());
      if (!current_left_.has_value()) return std::optional<Row>();
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      Row combined = *current_left_;
      const Row& r = right_rows_[right_pos_++];
      combined.insert(combined.end(), r.begin(), r.end());
      FGAC_ASSIGN_OR_RETURN(bool pass, PassesAll(predicates_, combined));
      if (pass) return std::optional<Row>(std::move(combined));
    }
    current_left_.reset();
  }
}

Status HashJoinOp::Open() {
  FGAC_RETURN_NOT_OK(left_->Open());
  FGAC_RETURN_NOT_OK(right_->Open());
  build_.clear();
  while (true) {
    Result<std::optional<Row>> row = right_->Next();
    if (!row.ok()) return row.status();
    if (!row.value().has_value()) break;
    const Row& r = *row.value();
    Row key;
    key.reserve(right_keys_.size());
    bool has_null = false;
    for (const ScalarPtr& k : right_keys_) {
      Result<Value> v = EvalScalar(k, r);
      if (!v.ok()) return v.status();
      if (v.value().is_null()) has_null = true;
      key.push_back(std::move(v).value());
    }
    if (has_null) continue;  // NULL keys never match in an equi-join.
    build_[std::move(key)].push_back(r);
  }
  current_left_.reset();
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  return Status::OK();
}

Result<std::optional<Row>> HashJoinOp::Next() {
  while (true) {
    if (current_bucket_ != nullptr && bucket_pos_ < current_bucket_->size()) {
      Row combined = *current_left_;
      const Row& r = (*current_bucket_)[bucket_pos_++];
      combined.insert(combined.end(), r.begin(), r.end());
      FGAC_ASSIGN_OR_RETURN(bool pass, PassesAll(residual_, combined));
      if (pass) return std::optional<Row>(std::move(combined));
      continue;
    }
    FGAC_ASSIGN_OR_RETURN(current_left_, left_->Next());
    if (!current_left_.has_value()) return std::optional<Row>();
    Row key;
    key.reserve(left_keys_.size());
    bool has_null = false;
    for (const ScalarPtr& k : left_keys_) {
      FGAC_ASSIGN_OR_RETURN(Value v, EvalScalar(k, *current_left_));
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    current_bucket_ = nullptr;
    bucket_pos_ = 0;
    if (has_null) continue;
    auto it = build_.find(key);
    if (it != build_.end()) current_bucket_ = &it->second;
  }
}

Status HashAggregateOp::Open() {
  FGAC_RETURN_NOT_OK(child_->Open());
  results_.clear();
  pos_ = 0;

  // Ordered map keeps output deterministic.
  std::map<Row, std::vector<AggAccumulator>> groups;
  auto make_accumulators = [this]() {
    std::vector<AggAccumulator> accs;
    accs.reserve(aggs_.size());
    for (const algebra::AggExpr& a : aggs_) accs.emplace_back(a);
    return accs;
  };

  while (true) {
    Result<std::optional<Row>> row = child_->Next();
    if (!row.ok()) return row.status();
    if (!row.value().has_value()) break;
    const Row& r = *row.value();
    Row key;
    key.reserve(group_by_.size());
    for (const ScalarPtr& g : group_by_) {
      Result<Value> v = EvalScalar(g, r);
      if (!v.ok()) return v.status();
      key.push_back(std::move(v).value());
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(std::move(key), make_accumulators()).first;
    }
    for (AggAccumulator& acc : it->second) {
      FGAC_RETURN_NOT_OK(acc.Add(r));
    }
  }
  if (groups.empty() && group_by_.empty()) {
    groups.emplace(Row{}, make_accumulators());
  }
  for (const auto& [key, accs] : groups) {
    Row out = key;
    for (const AggAccumulator& acc : accs) out.push_back(acc.Finish());
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<std::optional<Row>> HashAggregateOp::Next() {
  if (pos_ >= results_.size()) return std::optional<Row>();
  return std::optional<Row>(results_[pos_++]);
}

Status DistinctOp::Open() {
  seen_.clear();
  return child_->Open();
}

Result<std::optional<Row>> DistinctOp::Next() {
  while (true) {
    FGAC_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
    if (!row.has_value()) return std::optional<Row>();
    if (seen_.emplace(*row, true).second) return row;
  }
}

Status SortOp::Open() {
  FGAC_RETURN_NOT_OK(child_->Open());
  rows_.clear();
  pos_ = 0;
  std::vector<std::pair<Row, Row>> keyed;
  while (true) {
    Result<std::optional<Row>> row = child_->Next();
    if (!row.ok()) return row.status();
    if (!row.value().has_value()) break;
    Row key;
    key.reserve(items_.size());
    for (const algebra::SortItem& it : items_) {
      Result<Value> v = EvalScalar(it.expr, *row.value());
      if (!v.ok()) return v.status();
      key.push_back(std::move(v).value());
    }
    keyed.emplace_back(std::move(key), std::move(*row.value()));
  }
  const auto& items = items_;
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&items](const auto& a, const auto& b) {
                     for (size_t i = 0; i < items.size(); ++i) {
                       int c = a.first[i].Compare(b.first[i]);
                       if (c != 0) return items[i].descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  rows_.reserve(keyed.size());
  for (auto& [key, row] : keyed) rows_.push_back(std::move(row));
  return Status::OK();
}

Result<std::optional<Row>> SortOp::Next() {
  if (pos_ >= rows_.size()) return std::optional<Row>();
  return std::optional<Row>(rows_[pos_++]);
}

Result<std::optional<Row>> LimitOp::Next() {
  if (produced_ >= limit_) return std::optional<Row>();
  FGAC_ASSIGN_OR_RETURN(std::optional<Row> row, child_->Next());
  if (!row.has_value()) return std::optional<Row>();
  ++produced_;
  return row;
}

Status UnionAllOp::Open() {
  current_ = 0;
  for (OperatorPtr& child : children_) {
    FGAC_RETURN_NOT_OK(child->Open());
  }
  return Status::OK();
}

Result<std::optional<Row>> UnionAllOp::Next() {
  while (current_ < children_.size()) {
    FGAC_ASSIGN_OR_RETURN(std::optional<Row> row, children_[current_]->Next());
    if (row.has_value()) return row;
    ++current_;
  }
  return std::optional<Row>();
}

}  // namespace fgac::exec
