#include "exec/operators.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/fault_injection.h"
#include "exec/eval.h"
#include "storage/table_data.h"

namespace fgac::exec {

using algebra::AggAccumulator;
using algebra::ScalarPtr;

namespace {

/// Shared end-of-stream epilogue: leaves `out` empty per the Next contract.
Result<bool> Exhausted(DataChunk& out) {
  out.Reset(0);
  return false;
}

/// Emits the filtered rows of `src` into `out`, stealing the whole chunk
/// when the selection kept everything (the common all-pass case).
bool EmitSelected(DataChunk& src, const Selection& sel, DataChunk& out) {
  if (sel.empty()) return false;
  if (sel.size() == src.size()) {
    std::swap(out, src);
    return true;
  }
  out.Reset(src.num_columns());
  out.Reserve(sel.size());
  out.AppendSelected(src, sel);
  return true;
}

}  // namespace

Result<bool> ScanOp::Next(DataChunk& out) {
  // Pipeline sources are where per-chunk guard checks live: every chunk a
  // pipeline processes was pulled through a source, so a deadline/cancel
  // trips within one chunk of work.
  FGAC_RETURN_NOT_OK(common::GuardCheck(guard_));
  if (table_ != nullptr) {
    FGAC_ASSIGN_OR_RETURN(
        size_t n, table_->ScanChunk(pos_, DataChunk::kDefaultCapacity, &out));
    pos_ += n;
    FGAC_RETURN_NOT_OK(common::GuardChargeRows(guard_, n));
    return n > 0;
  }
  out.Reset(rows_->empty() ? 0 : (*rows_)[0].size());
  size_t n = AppendRowsToChunk(*rows_, pos_, DataChunk::kDefaultCapacity, &out);
  pos_ += n;
  FGAC_RETURN_NOT_OK(common::GuardChargeRows(guard_, n));
  return n > 0;
}

Result<bool> ValuesOp::Next(DataChunk& out) {
  FGAC_RETURN_NOT_OK(common::GuardCheck(guard_));
  out.Reset(rows_.empty() ? 0 : rows_[0].size());
  size_t n = AppendRowsToChunk(rows_, pos_, DataChunk::kDefaultCapacity, &out);
  pos_ += n;
  FGAC_RETURN_NOT_OK(common::GuardChargeRows(guard_, n));
  return n > 0;
}

Result<bool> FilterOp::Next(DataChunk& out) {
  while (true) {
    FGAC_ASSIGN_OR_RETURN(bool more, child_->Next(input_));
    if (!more) return Exhausted(out);
    IdentitySelection(input_.size(), &sel_);
    FGAC_RETURN_NOT_OK(FilterSelection(predicates_, input_, &sel_));
    if (EmitSelected(input_, sel_, out)) return true;
  }
}

Result<bool> ProjectOp::Next(DataChunk& out) {
  FGAC_ASSIGN_OR_RETURN(bool more, child_->Next(input_));
  if (!more) return Exhausted(out);
  FGAC_RETURN_NOT_OK(ProjectChunk(exprs_, input_, &out));
  return true;
}

namespace {

/// Drains `op` into a row vector (build sides, sorts).
Status DrainToRows(Operator* op, std::vector<Row>* rows) {
  DataChunk chunk;
  while (true) {
    Result<bool> more = op->Next(chunk);
    if (!more.ok()) return more.status();
    if (!more.value()) return Status::OK();
    for (size_t i = 0; i < chunk.size(); ++i) {
      rows->push_back(chunk.GetRow(i));
    }
  }
}

}  // namespace

Status NestedLoopJoinOp::Open() {
  FGAC_RETURN_NOT_OK(left_->Open());
  FGAC_RETURN_NOT_OK(right_->Open());
  right_rows_.clear();
  FGAC_RETURN_NOT_OK(DrainToRows(right_.get(), &right_rows_));
  right_width_ = right_rows_.empty() ? 0 : right_rows_[0].size();
  FGAC_RETURN_NOT_OK(common::GuardChargeBytes(
      guard_, right_rows_.size() * common::ApproxRowBytes(right_width_)));
  left_chunk_.Reset(0);
  left_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopJoinOp::Next(DataChunk& out) {
  while (true) {
    // The cross product can dwarf the inputs, so the join itself checks
    // and charges per scratch block in addition to the source's checks.
    FGAC_RETURN_NOT_OK(common::GuardCheck(guard_));
    if (left_pos_ >= left_chunk_.size()) {
      FGAC_ASSIGN_OR_RETURN(bool more, left_->Next(left_chunk_));
      if (!more) return Exhausted(out);
      left_pos_ = 0;
    }
    // Expand left rows against the materialized right side until the
    // scratch chunk reaches capacity, then filter the block in one pass.
    scratch_.Reset(left_chunk_.num_columns() + right_width_);
    while (left_pos_ < left_chunk_.size() && !scratch_.full()) {
      for (const Row& r : right_rows_) {
        scratch_.AppendConcat(left_chunk_, left_pos_, r);
      }
      ++left_pos_;
    }
    if (scratch_.empty()) continue;
    FGAC_RETURN_NOT_OK(common::GuardChargeRows(guard_, scratch_.size()));
    IdentitySelection(scratch_.size(), &sel_);
    FGAC_RETURN_NOT_OK(FilterSelection(predicates_, scratch_, &sel_));
    if (EmitSelected(scratch_, sel_, out)) return true;
  }
}

Status HashJoinTable::BuildFrom(Operator& build,
                                const std::vector<ScalarPtr>& keys,
                                common::QueryGuard* guard) {
  map.clear();
  build_width = 0;
  DataChunk chunk;
  Selection id;
  std::vector<ColumnVector> key_cols(keys.size());
  while (true) {
    FGAC_FAULT_POINT("exec.hash_join.build");
    FGAC_RETURN_NOT_OK(common::GuardCheck(guard));
    Result<bool> more = build.Next(chunk);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    build_width = chunk.num_columns();
    FGAC_RETURN_NOT_OK(common::GuardChargeBytes(
        guard, chunk.size() * common::ApproxRowBytes(build_width)));
    IdentitySelection(chunk.size(), &id);
    for (size_t k = 0; k < keys.size(); ++k) {
      FGAC_RETURN_NOT_OK(EvalScalarBatch(keys[k], chunk, id, &key_cols[k]));
    }
    for (size_t i = 0; i < chunk.size(); ++i) {
      bool has_null = false;
      for (const ColumnVector& c : key_cols) {
        if (c.IsNull(i)) has_null = true;
      }
      if (has_null) continue;  // NULL keys never match in an equi-join.
      Row key;
      key.reserve(key_cols.size());
      for (const ColumnVector& c : key_cols) key.push_back(c.GetValue(i));
      map[std::move(key)].push_back(chunk.GetRow(i));
    }
  }
  return Status::OK();
}

void HashProbeCursor::Reset() {
  left_chunk_.Reset(0);
  left_key_cols_.clear();
  left_pos_ = 0;
}

Result<bool> HashProbeCursor::Next(Operator& left,
                                   const std::vector<ScalarPtr>& left_keys,
                                   const std::vector<ScalarPtr>& residual,
                                   const HashJoinTable& table, DataChunk& out) {
  Row key;
  while (true) {
    if (left_pos_ >= left_chunk_.size()) {
      FGAC_ASSIGN_OR_RETURN(bool more, left.Next(left_chunk_));
      if (!more) return Exhausted(out);
      left_pos_ = 0;
      IdentitySelection(left_chunk_.size(), &sel_);
      left_key_cols_.resize(left_keys.size());
      for (size_t k = 0; k < left_keys.size(); ++k) {
        FGAC_RETURN_NOT_OK(EvalScalarBatch(left_keys[k], left_chunk_, sel_,
                                           &left_key_cols_[k]));
      }
    }
    scratch_.Reset(left_chunk_.num_columns() + table.build_width);
    while (left_pos_ < left_chunk_.size() && !scratch_.full()) {
      size_t i = left_pos_++;
      bool has_null = false;
      for (const ColumnVector& c : left_key_cols_) {
        if (c.IsNull(i)) has_null = true;
      }
      if (has_null) continue;
      key.clear();
      for (const ColumnVector& c : left_key_cols_) key.push_back(c.GetValue(i));
      auto it = table.map.find(key);
      if (it == table.map.end()) continue;
      for (const Row& r : it->second) scratch_.AppendConcat(left_chunk_, i, r);
    }
    if (scratch_.empty()) continue;
    if (residual.empty()) {
      std::swap(out, scratch_);
      return true;
    }
    IdentitySelection(scratch_.size(), &sel_);
    FGAC_RETURN_NOT_OK(FilterSelection(residual, scratch_, &sel_));
    if (EmitSelected(scratch_, sel_, out)) return true;
  }
}

Status HashJoinOp::Open() {
  FGAC_RETURN_NOT_OK(left_->Open());
  FGAC_RETURN_NOT_OK(right_->Open());
  FGAC_RETURN_NOT_OK(table_.BuildFrom(*right_, right_keys_, guard_));
  probe_.Reset();
  return Status::OK();
}

Result<bool> HashJoinOp::Next(DataChunk& out) {
  FGAC_ASSIGN_OR_RETURN(
      bool more, probe_.Next(*left_, left_keys_, residual_, table_, out));
  // Duplicate keys can fan one probe row out into many matches, so join
  // output is charged as work on top of what the sources charged.
  if (more) FGAC_RETURN_NOT_OK(common::GuardChargeRows(guard_, out.size()));
  return more;
}

Status AccumulateGroups(Operator& child,
                        const std::vector<ScalarPtr>& group_by,
                        const std::vector<algebra::AggExpr>& aggs,
                        AggGroups* groups, common::QueryGuard* guard) {
  auto make_accumulators = [&aggs]() {
    std::vector<AggAccumulator> accs;
    accs.reserve(aggs.size());
    for (const algebra::AggExpr& a : aggs) accs.emplace_back(a);
    return accs;
  };

  DataChunk chunk;
  Selection id;
  std::vector<ColumnVector> group_cols(group_by.size());
  std::vector<ColumnVector> arg_cols(aggs.size());
  while (true) {
    Result<bool> more = child.Next(chunk);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    IdentitySelection(chunk.size(), &id);
    for (size_t g = 0; g < group_by.size(); ++g) {
      FGAC_RETURN_NOT_OK(EvalScalarBatch(group_by[g], chunk, id,
                                         &group_cols[g]));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].arg == nullptr) continue;  // COUNT(*): no argument
      FGAC_RETURN_NOT_OK(EvalScalarBatch(aggs[a].arg, chunk, id,
                                         &arg_cols[a]));
    }
    FGAC_RETURN_NOT_OK(common::GuardCheck(guard));
    size_t new_groups = 0;
    for (size_t i = 0; i < chunk.size(); ++i) {
      Row key;
      key.reserve(group_by.size());
      for (const ColumnVector& g : group_cols) key.push_back(g.GetValue(i));
      auto it = groups->find(key);
      if (it == groups->end()) {
        it = groups->emplace(std::move(key), make_accumulators()).first;
        ++new_groups;
      }
      for (size_t a = 0; a < aggs.size(); ++a) {
        Value v = aggs[a].arg == nullptr ? Value::Null()
                                         : arg_cols[a].GetValue(i);
        FGAC_RETURN_NOT_OK(it->second[a].AddValue(v));
      }
    }
    FGAC_RETURN_NOT_OK(common::GuardChargeBytes(
        guard,
        new_groups * common::ApproxRowBytes(group_by.size() + aggs.size())));
  }
  return Status::OK();
}

std::vector<Row> FinishGroups(AggGroups groups,
                              const std::vector<algebra::AggExpr>& aggs,
                              bool scalar_aggregate) {
  if (groups.empty() && scalar_aggregate) {
    std::vector<AggAccumulator> accs;
    accs.reserve(aggs.size());
    for (const algebra::AggExpr& a : aggs) accs.emplace_back(a);
    groups.emplace(Row{}, std::move(accs));
  }
  std::vector<Row> results;
  results.reserve(groups.size());
  for (const auto& [key, accs] : groups) {
    Row out = key;
    for (const AggAccumulator& acc : accs) out.push_back(acc.Finish());
    results.push_back(std::move(out));
  }
  return results;
}

Status HashAggregateOp::Open() {
  FGAC_RETURN_NOT_OK(child_->Open());
  results_.clear();
  pos_ = 0;
  AggGroups groups;
  FGAC_RETURN_NOT_OK(
      AccumulateGroups(*child_, group_by_, aggs_, &groups, guard_));
  results_ = FinishGroups(std::move(groups), aggs_, group_by_.empty());
  return Status::OK();
}

Result<bool> HashAggregateOp::Next(DataChunk& out) {
  out.Reset(group_by_.size() + aggs_.size());
  size_t n =
      AppendRowsToChunk(results_, pos_, DataChunk::kDefaultCapacity, &out);
  pos_ += n;
  return n > 0;
}

Status DistinctOp::Open() {
  seen_.clear();
  return child_->Open();
}

Result<bool> DistinctOp::Next(DataChunk& out) {
  while (true) {
    FGAC_ASSIGN_OR_RETURN(bool more, child_->Next(input_));
    if (!more) return Exhausted(out);
    sel_.clear();
    for (size_t i = 0; i < input_.size(); ++i) {
      if (seen_.insert(input_.GetRow(i)).second) {
        sel_.push_back(static_cast<uint32_t>(i));
      }
    }
    // The seen-set grows by one materialized row per kept input row.
    FGAC_RETURN_NOT_OK(common::GuardChargeBytes(
        guard_, sel_.size() * common::ApproxRowBytes(input_.num_columns())));
    if (EmitSelected(input_, sel_, out)) return true;
  }
}

Status SortOp::Open() {
  FGAC_RETURN_NOT_OK(child_->Open());
  rows_.clear();
  width_ = 0;
  pos_ = 0;
  std::vector<std::pair<Row, Row>> keyed;
  DataChunk chunk;
  Selection id;
  std::vector<ColumnVector> key_cols(items_.size());
  while (true) {
    Result<bool> more = child_->Next(chunk);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    width_ = chunk.num_columns();
    // Sort materializes its whole input (plus sort keys).
    FGAC_RETURN_NOT_OK(common::GuardChargeBytes(
        guard_,
        chunk.size() * common::ApproxRowBytes(width_ + items_.size())));
    IdentitySelection(chunk.size(), &id);
    for (size_t k = 0; k < items_.size(); ++k) {
      FGAC_RETURN_NOT_OK(EvalScalarBatch(items_[k].expr, chunk, id,
                                         &key_cols[k]));
    }
    for (size_t i = 0; i < chunk.size(); ++i) {
      Row key;
      key.reserve(items_.size());
      for (const ColumnVector& c : key_cols) key.push_back(c.GetValue(i));
      keyed.emplace_back(std::move(key), chunk.GetRow(i));
    }
  }
  const auto& items = items_;
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&items](const auto& a, const auto& b) {
                     for (size_t i = 0; i < items.size(); ++i) {
                       int c = a.first[i].Compare(b.first[i]);
                       if (c != 0) return items[i].descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  rows_.reserve(keyed.size());
  for (auto& [key, row] : keyed) rows_.push_back(std::move(row));
  return Status::OK();
}

Result<bool> SortOp::Next(DataChunk& out) {
  out.Reset(width_);
  size_t n = AppendRowsToChunk(rows_, pos_, DataChunk::kDefaultCapacity, &out);
  pos_ += n;
  return n > 0;
}

Result<bool> LimitOp::Next(DataChunk& out) {
  if (produced_ >= limit_) return Exhausted(out);
  FGAC_ASSIGN_OR_RETURN(bool more, child_->Next(out));
  if (!more) return false;
  int64_t remaining = limit_ - produced_;
  if (static_cast<int64_t>(out.size()) > remaining) {
    out.Truncate(static_cast<size_t>(remaining));
  }
  produced_ += static_cast<int64_t>(out.size());
  return !out.empty();
}

Status UnionAllOp::Open() {
  current_ = 0;
  for (OperatorPtr& child : children_) {
    FGAC_RETURN_NOT_OK(child->Open());
  }
  return Status::OK();
}

Result<bool> UnionAllOp::Next(DataChunk& out) {
  while (current_ < children_.size()) {
    FGAC_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(out));
    if (more) return true;
    ++current_;
  }
  return Exhausted(out);
}

}  // namespace fgac::exec
