#ifndef FGAC_OPTIMIZER_COST_H_
#define FGAC_OPTIMIZER_COST_H_

#include <functional>
#include <string>

#include "optimizer/memo.h"

namespace fgac::optimizer {

/// Table statistics provider: rows in a base table. Defaults to 1000 when
/// unset or unknown.
using TableRowCount = std::function<double(const std::string& table)>;

struct CostEstimate {
  double rows = 0.0;
  double cost = 0.0;
};

/// Simple textbook cost model: linear scan/filter/project costs, hash join
/// for equi-predicates (build + probe), nested loop otherwise, selectivity
/// heuristics (0.1 per equality conjunct, 0.33 per range conjunct).
CostEstimate EstimateExprCost(const Memo& memo, ExprId eid,
                              const std::function<CostEstimate(GroupId)>& child);

/// Row-count/selectivity helpers shared with the executor-facing benches.
double PredicateSelectivity(const std::vector<algebra::ScalarPtr>& predicates);

}  // namespace fgac::optimizer

#endif  // FGAC_OPTIMIZER_COST_H_
