#include "optimizer/optimizer.h"

#include <cmath>
#include <limits>
#include <map>

namespace fgac::optimizer {

using algebra::PlanKind;
using algebra::PlanPtr;

namespace {

struct Best {
  ExprId expr = -1;
  CostEstimate estimate;
};

class Extractor {
 public:
  Extractor(const Memo& memo, const TableRowCount& row_count)
      : memo_(memo), row_count_(row_count) {}

  Result<Best> BestOf(GroupId g) {
    g = memo_.Find(g);
    auto it = best_.find(g);
    if (it != best_.end()) return it->second;
    if (on_path_.count(g) > 0) {
      // Cycle: no finite plan through this path.
      return Status::InvalidArgument("cyclic memo group");
    }
    on_path_.insert(g);
    Best best;
    best.estimate.cost = std::numeric_limits<double>::infinity();
    for (ExprId eid : memo_.GroupExprs(g)) {
      const MemoExpr& e = memo_.expr(eid);
      bool feasible = true;
      auto child_cost = [&](GroupId c) -> CostEstimate {
        Result<Best> b = BestOf(c);
        if (!b.ok()) {
          feasible = false;
          return CostEstimate{0.0, std::numeric_limits<double>::infinity()};
        }
        return b.value().estimate;
      };
      CostEstimate est;
      if (e.kind == PlanKind::kGet) {
        est.rows = row_count_ != nullptr ? row_count_(e.table) : 1000.0;
        est.cost = est.rows;
      } else {
        est = EstimateExprCost(memo_, eid, child_cost);
      }
      if (!feasible || std::isinf(est.cost)) continue;
      if (est.cost < best.estimate.cost) {
        best.expr = eid;
        best.estimate = est;
      }
    }
    on_path_.erase(g);
    if (best.expr < 0) {
      return Status::InvalidArgument("no feasible plan for memo group " +
                                     std::to_string(g));
    }
    best_.emplace(g, best);
    return best;
  }

  Result<PlanPtr> BuildPlan(GroupId g) {
    FGAC_ASSIGN_OR_RETURN(Best best, BestOf(g));
    const MemoExpr& e = memo_.expr(best.expr);
    auto p = std::make_shared<algebra::Plan>();
    p->kind = e.kind;
    for (GroupId c : e.children) {
      FGAC_ASSIGN_OR_RETURN(PlanPtr child, BuildPlan(c));
      p->children.push_back(std::move(child));
    }
    p->table = e.table;
    p->get_columns = e.get_columns;
    p->rows = e.rows;
    p->values_arity = e.values_arity;
    p->predicates = e.predicates;
    p->exprs = e.exprs;
    p->group_by = e.group_by;
    p->aggs = e.aggs;
    p->sort_items = e.sort_items;
    p->limit = e.limit;
    return PlanPtr(p);
  }

 private:
  const Memo& memo_;
  const TableRowCount& row_count_;
  std::map<GroupId, Best> best_;
  std::set<GroupId> on_path_;
};

}  // namespace

Result<OptimizeResult> ExtractBestPlan(const Memo& memo, GroupId root,
                                       const TableRowCount& row_count) {
  Extractor extractor(memo, row_count);
  FGAC_ASSIGN_OR_RETURN(Best best, extractor.BestOf(root));
  OptimizeResult out;
  FGAC_ASSIGN_OR_RETURN(out.plan, extractor.BuildPlan(root));
  out.estimated_rows = best.estimate.rows;
  out.estimated_cost = best.estimate.cost;
  out.memo_groups = memo.num_live_groups();
  out.memo_exprs = memo.num_live_exprs();
  return out;
}

Result<OptimizeResult> Optimize(const algebra::PlanPtr& plan,
                                const ExpandOptions& options,
                                const TableRowCount& row_count) {
  Memo memo;
  GroupId root = memo.InsertPlan(plan);
  ExpandStats stats = ExpandMemo(&memo, options);
  FGAC_ASSIGN_OR_RETURN(OptimizeResult out,
                        ExtractBestPlan(memo, memo.Find(root), row_count));
  out.expand_stats = stats;
  return out;
}

}  // namespace fgac::optimizer
