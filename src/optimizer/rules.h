#ifndef FGAC_OPTIMIZER_RULES_H_
#define FGAC_OPTIMIZER_RULES_H_

#include <functional>
#include <string>
#include <vector>

#include "optimizer/memo.h"

namespace fgac::optimizer {

/// Configuration for the rule-based expansion of the AND-OR DAG ("applying
/// equivalence rules repeatedly till no new expression can be generated",
/// Section 5.6.1), with budgets to keep worst-case exponential join spaces
/// bounded.
struct ExpandOptions {
  size_t max_exprs = 200000;
  size_t max_passes = 16;

  bool enable_select_merge = true;
  bool enable_select_pushdown = true;
  bool enable_select_through_project = true;
  bool enable_join_commute = true;
  bool enable_join_assoc = true;
  /// Subsumption derivations (Section 5.6.1): evaluate a stronger selection
  /// from a weaker one over the same input.
  bool enable_subsumption = true;
  /// Aggregate roll-through of selections pinning group keys plus selection
  /// pushdown through GROUP BY (supports Examples 4.1/4.2). Note: treats a
  /// scalar aggregate over an empty input as producing no row (the
  /// group-per-key semantics standard in aggregate rewriting literature);
  /// see DESIGN.md.
  bool enable_aggregate_rules = true;
  /// Distinct elimination over duplicate-free inputs (Example 5.5: "since
  /// the Grades table has a primary key, the distinct keyword can be
  /// dropped").
  bool enable_distinct_elim = true;

  /// Catalog callbacks for distinct elimination. `table_pk_slots` returns
  /// the primary-key column indices of a base table (empty = no PK).
  std::function<std::vector<int>(const std::string&)> table_pk_slots;

  // --- Goal-directed search (demand-driven validity proofs) ---------------
  //
  // When `root_goal` is a valid group id, expansion stops being a full-DAG
  // sweep and becomes demand-driven:
  //  * each pass only visits expressions in groups reachable top-down from
  //    the goal or from an already-valid group (the proof frontier — a
  //    worklist recomputed per pass, since new expressions splice groups
  //    into the frontier);
  //  * groups already marked `valid_u` are dominated — the proof cannot
  //    improve by adding alternatives to them, so their pending
  //    join-reorder applications are dropped (`prune_dominated`; the
  //    structural and subsumption families still run on them, because
  //    those rewrites are what let unproven groups unify with or derive
  //    from a proven one);
  //  * join associativity only materializes a *new* inner join group when
  //    its base-table set fits inside one of `goal_table_sets` (a join no
  //    authorization view could cover cannot appear in a proof; inner
  //    shapes that hash-cons into an existing group are always allowed);
  //  * rules run in batched families — cheap structural rewrites, then
  //    join reordering, then subsumption/aggregate inference — so the
  //    memo is normalized before the expensive matchers scan it;
  //  * `should_stop` is polled between batches: the caller can propagate
  //    validity marks and end the search the moment the goal is proved.

  /// Root group of the proof obligation; -1 = exhaustive expansion.
  GroupId root_goal = -1;
  /// Skip join-reorder applications inside groups already marked valid_u.
  bool prune_dominated = true;
  /// Base-table sets (lowercased) that a newly created inner join group
  /// must fit inside. Empty = no gating.
  std::vector<std::vector<std::string>> goal_table_sets;
  /// Polled between rule batches; return true to stop expanding.
  std::function<bool()> should_stop;
};

struct ExpandStats {
  size_t passes = 0;
  size_t exprs_added = 0;
  bool budget_exhausted = false;
  /// Goal-directed mode only: dominated (already-valid) groups whose
  /// pending rule applications were dropped, expression visits skipped
  /// because of dominance or frontier unreachability, and the depth of the
  /// deepest group the proof frontier reached.
  size_t groups_pruned = 0;
  size_t exprs_skipped = 0;
  size_t frontier_depth = 0;
  /// True when `should_stop` ended the search before the fixpoint.
  bool stopped_early = false;
};

/// Expands the memo to a fixpoint (or budget) under the enabled rules.
ExpandStats ExpandMemo(Memo* memo, const ExpandOptions& options);

/// True if every plan in group `g` is duplicate-free (proved via one
/// witness expression; sound, incomplete). Exposed for the validity engine
/// (U3c multiplicity reasoning) and tests.
bool GroupDuplicateFree(const Memo& memo, GroupId g,
                        const ExpandOptions& options);

}  // namespace fgac::optimizer

#endif  // FGAC_OPTIMIZER_RULES_H_
