#ifndef FGAC_OPTIMIZER_RULES_H_
#define FGAC_OPTIMIZER_RULES_H_

#include <functional>
#include <string>
#include <vector>

#include "optimizer/memo.h"

namespace fgac::optimizer {

/// Configuration for the rule-based expansion of the AND-OR DAG ("applying
/// equivalence rules repeatedly till no new expression can be generated",
/// Section 5.6.1), with budgets to keep worst-case exponential join spaces
/// bounded.
struct ExpandOptions {
  size_t max_exprs = 200000;
  size_t max_passes = 16;

  bool enable_select_merge = true;
  bool enable_select_pushdown = true;
  bool enable_select_through_project = true;
  bool enable_join_commute = true;
  bool enable_join_assoc = true;
  /// Subsumption derivations (Section 5.6.1): evaluate a stronger selection
  /// from a weaker one over the same input.
  bool enable_subsumption = true;
  /// Aggregate roll-through of selections pinning group keys plus selection
  /// pushdown through GROUP BY (supports Examples 4.1/4.2). Note: treats a
  /// scalar aggregate over an empty input as producing no row (the
  /// group-per-key semantics standard in aggregate rewriting literature);
  /// see DESIGN.md.
  bool enable_aggregate_rules = true;
  /// Distinct elimination over duplicate-free inputs (Example 5.5: "since
  /// the Grades table has a primary key, the distinct keyword can be
  /// dropped").
  bool enable_distinct_elim = true;

  /// Catalog callbacks for distinct elimination. `table_pk_slots` returns
  /// the primary-key column indices of a base table (empty = no PK).
  std::function<std::vector<int>(const std::string&)> table_pk_slots;
};

struct ExpandStats {
  size_t passes = 0;
  size_t exprs_added = 0;
  bool budget_exhausted = false;
};

/// Expands the memo to a fixpoint (or budget) under the enabled rules.
ExpandStats ExpandMemo(Memo* memo, const ExpandOptions& options);

/// True if every plan in group `g` is duplicate-free (proved via one
/// witness expression; sound, incomplete). Exposed for the validity engine
/// (U3c multiplicity reasoning) and tests.
bool GroupDuplicateFree(const Memo& memo, GroupId g,
                        const ExpandOptions& options);

}  // namespace fgac::optimizer

#endif  // FGAC_OPTIMIZER_RULES_H_
