#ifndef FGAC_OPTIMIZER_OPTIMIZER_H_
#define FGAC_OPTIMIZER_OPTIMIZER_H_

#include "common/result.h"
#include "optimizer/cost.h"
#include "optimizer/memo.h"
#include "optimizer/rules.h"

namespace fgac::optimizer {

struct OptimizeResult {
  algebra::PlanPtr plan;
  double estimated_rows = 0.0;
  double estimated_cost = 0.0;
  ExpandStats expand_stats;
  size_t memo_groups = 0;
  size_t memo_exprs = 0;
};

/// Volcano-style optimization: insert the plan into a fresh AND-OR DAG,
/// expand with equivalence rules, and extract the cheapest plan by
/// dynamic programming over equivalence nodes.
Result<OptimizeResult> Optimize(const algebra::PlanPtr& plan,
                                const ExpandOptions& options,
                                const TableRowCount& row_count);

/// DP extraction only (for a memo the caller already built/expanded).
Result<OptimizeResult> ExtractBestPlan(const Memo& memo, GroupId root,
                                       const TableRowCount& row_count);

}  // namespace fgac::optimizer

#endif  // FGAC_OPTIMIZER_OPTIMIZER_H_
