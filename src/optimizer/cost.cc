#include "optimizer/cost.h"

#include <algorithm>
#include <cmath>

namespace fgac::optimizer {

using algebra::PlanKind;
using algebra::ScalarKind;
using algebra::ScalarPtr;

namespace {

double ConjunctSelectivity(const ScalarPtr& p) {
  if (p->kind == ScalarKind::kBinary) {
    switch (p->bin_op) {
      case sql::BinOp::kEq:
        return 0.1;
      case sql::BinOp::kNe:
        return 0.9;
      case sql::BinOp::kLt:
      case sql::BinOp::kLe:
        return 0.33;
      case sql::BinOp::kOr:
        return 0.5;
      default:
        return 0.5;
    }
  }
  if (p->kind == ScalarKind::kInList) {
    return std::min(1.0, 0.1 * static_cast<double>(p->in_list.size()));
  }
  return 0.5;
}

bool HasEquiJoinPair(const std::vector<ScalarPtr>& preds, size_t left_arity) {
  for (const ScalarPtr& p : preds) {
    if (p->kind != ScalarKind::kBinary || p->bin_op != sql::BinOp::kEq) continue;
    std::set<int> l, r;
    algebra::CollectSlots(p->left, &l);
    algebra::CollectSlots(p->right, &r);
    auto side = [&](const std::set<int>& s) {
      if (s.empty()) return 0;  // constant
      if (*s.rbegin() < static_cast<int>(left_arity)) return 1;
      if (*s.begin() >= static_cast<int>(left_arity)) return 2;
      return 3;  // mixed
    };
    int sl = side(l), sr = side(r);
    if ((sl == 1 && sr == 2) || (sl == 2 && sr == 1)) return true;
  }
  return false;
}

}  // namespace

double PredicateSelectivity(const std::vector<ScalarPtr>& predicates) {
  double sel = 1.0;
  for (const ScalarPtr& p : predicates) sel *= ConjunctSelectivity(p);
  return std::max(sel, 1e-9);
}

CostEstimate EstimateExprCost(
    const Memo& memo, ExprId eid,
    const std::function<CostEstimate(GroupId)>& child) {
  const MemoExpr& e = memo.expr(eid);
  CostEstimate out;
  switch (e.kind) {
    case PlanKind::kGet: {
      // Row count is injected through the Get's child callback convention:
      // Gets have no children, so the caller special-cases them; here we
      // only provide the fallback.
      out.rows = 1000.0;
      out.cost = out.rows;
      return out;
    }
    case PlanKind::kValues:
      out.rows = static_cast<double>(e.rows.size());
      out.cost = out.rows;
      return out;
    case PlanKind::kSelect: {
      CostEstimate c = child(e.children[0]);
      out.rows = std::max(1.0, c.rows * PredicateSelectivity(e.predicates));
      out.cost = c.cost + c.rows;
      return out;
    }
    case PlanKind::kProject: {
      CostEstimate c = child(e.children[0]);
      out.rows = c.rows;
      out.cost = c.cost + c.rows;
      return out;
    }
    case PlanKind::kJoin: {
      CostEstimate l = child(e.children[0]);
      CostEstimate r = child(e.children[1]);
      size_t la = memo.group(e.children[0]).arity;
      bool equi = HasEquiJoinPair(e.predicates, la);
      double sel = e.predicates.empty()
                       ? 1.0
                       : (equi ? 1.0 / std::max({l.rows, r.rows, 1.0})
                               : PredicateSelectivity(e.predicates));
      out.rows = std::max(1.0, l.rows * r.rows * sel);
      if (equi) {
        out.cost = l.cost + r.cost + l.rows + 2.0 * r.rows + out.rows;
      } else {
        out.cost = l.cost + r.cost + l.rows * r.rows + out.rows;
      }
      return out;
    }
    case PlanKind::kAggregate: {
      CostEstimate c = child(e.children[0]);
      out.rows = e.group_by.empty()
                     ? 1.0
                     : std::max(1.0, c.rows * 0.1);
      out.cost = c.cost + 2.0 * c.rows;
      return out;
    }
    case PlanKind::kDistinct: {
      CostEstimate c = child(e.children[0]);
      out.rows = std::max(1.0, c.rows * 0.5);
      out.cost = c.cost + 2.0 * c.rows;
      return out;
    }
    case PlanKind::kSort: {
      CostEstimate c = child(e.children[0]);
      out.rows = c.rows;
      out.cost = c.cost + c.rows * std::log2(c.rows + 2.0);
      return out;
    }
    case PlanKind::kLimit: {
      CostEstimate c = child(e.children[0]);
      out.rows = std::min(c.rows, static_cast<double>(e.limit));
      out.cost = c.cost;
      return out;
    }
    case PlanKind::kUnionAll: {
      out.rows = 0.0;
      out.cost = 0.0;
      for (GroupId g : e.children) {
        CostEstimate c = child(g);
        out.rows += c.rows;
        out.cost += c.cost + c.rows;
      }
      return out;
    }
  }
  return out;
}

}  // namespace fgac::optimizer
