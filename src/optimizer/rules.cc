#include "optimizer/rules.h"

#include <algorithm>
#include <map>
#include <set>

#include "algebra/normalize.h"
#include "optimizer/implication.h"

namespace fgac::optimizer {

using algebra::CollectSlots;
using algebra::MakeBinaryScalar;
using algebra::MakeColumn;
using algebra::MakeLiteralScalar;
using algebra::NormalizePredicates;
using algebra::PlanKind;
using algebra::RemapSlots;
using algebra::ScalarEquals;
using algebra::ScalarPtr;
using algebra::SubstituteSlots;

namespace {

/// Max slot strictly below `limit` and min slot at or above, for
/// partitioning conjuncts across join inputs.
struct SlotSpan {
  bool empty = true;
  int min_slot = 0;
  int max_slot = 0;
};

SlotSpan SpanOf(const ScalarPtr& s) {
  std::set<int> slots;
  CollectSlots(s, &slots);
  SlotSpan span;
  if (!slots.empty()) {
    span.empty = false;
    span.min_slot = *slots.begin();
    span.max_slot = *slots.rbegin();
  }
  return span;
}

MemoExpr MakeSelectExpr(std::vector<ScalarPtr> preds, GroupId child) {
  MemoExpr e;
  e.kind = PlanKind::kSelect;
  e.predicates = NormalizePredicates(std::move(preds));
  e.children = {child};
  return e;
}

MemoExpr MakeJoinExpr(std::vector<ScalarPtr> preds, GroupId left,
                      GroupId right) {
  MemoExpr e;
  e.kind = PlanKind::kJoin;
  e.predicates = NormalizePredicates(std::move(preds));
  e.children = {left, right};
  return e;
}

MemoExpr MakeProjectExpr(std::vector<ScalarPtr> exprs, GroupId child) {
  MemoExpr e;
  e.kind = PlanKind::kProject;
  e.exprs = std::move(exprs);
  e.children = {child};
  return e;
}

MemoExpr MakeAggregateExpr(std::vector<ScalarPtr> group_by,
                           std::vector<algebra::AggExpr> aggs, GroupId child) {
  MemoExpr e;
  e.kind = PlanKind::kAggregate;
  e.group_by = std::move(group_by);
  e.aggs = std::move(aggs);
  e.children = {child};
  return e;
}

/// Inserts a Select or, when the predicate list is empty, returns the child
/// group unchanged.
GroupId InsertSelectOrChild(Memo* memo, std::vector<ScalarPtr> preds,
                            GroupId child) {
  preds = NormalizePredicates(std::move(preds));
  if (preds.empty()) return memo->Find(child);
  return memo->InsertExpr(MakeSelectExpr(std::move(preds), child));
}

class RuleContext {
 public:
  RuleContext(Memo* memo, const ExpandOptions& options)
      : memo_(memo),
        options_(options),
        goal_directed_(options.root_goal >= 0) {
    goal_sets_.reserve(options_.goal_table_sets.size());
    for (const auto& s : options_.goal_table_sets) {
      std::vector<std::string> sorted = s;
      std::sort(sorted.begin(), sorted.end());
      goal_sets_.push_back(std::move(sorted));
    }
  }

  size_t Run() {
    size_t total_added = 0;
    for (size_t pass = 0; pass < options_.max_passes; ++pass) {
      if (goal_directed_ && ShouldStop()) break;
      size_t before = memo_->num_exprs();
      if (goal_directed_) ComputeFrontier();
      // Goal-directed mode runs the rules in batched families (cheap
      // structural rewrites, then join reordering, then subsumption and
      // aggregate inference) so the expensive matchers always scan a
      // normalized memo; the exhaustive path keeps the single
      // all-rules-per-expression sweep.
      const int num_batches = goal_directed_ ? kNumBatches : 1;
      for (int batch = 0; batch < num_batches; ++batch) {
        RunBatch(batch);
        memo_->Canonicalize();
        if (budget_exhausted_) break;
        if (goal_directed_ && batch + 1 < num_batches && ShouldStop()) break;
      }
      size_t after = memo_->num_exprs();
      total_added += after - before;
      ++passes_;
      if (after == before || budget_exhausted_ || stopped_early_) break;
    }
    return total_added;
  }

  size_t passes() const { return passes_; }
  bool budget_exhausted() const { return budget_exhausted_; }
  size_t groups_pruned() const { return pruned_groups_.size(); }
  size_t exprs_skipped() const { return exprs_skipped_; }
  size_t frontier_depth() const { return frontier_depth_; }
  bool stopped_early() const { return stopped_early_; }

 private:
  static constexpr int kNumBatches = 3;

  bool ShouldStop() {
    if (!options_.should_stop) return false;
    // The callback typically runs a full validity propagation — only worth
    // re-polling after the memo changed. Within expansion, marks move only
    // through inserts and merges, and merges always retire a group, so
    // (created exprs, live groups) is a sound change signal.
    uint64_t state = (static_cast<uint64_t>(memo_->num_exprs()) << 32) ^
                     static_cast<uint64_t>(memo_->num_live_groups());
    if (stop_polled_ && state == last_stop_state_) return stopped_early_;
    stop_polled_ = true;
    last_stop_state_ = state;
    if (options_.should_stop()) {
      stopped_early_ = true;
      return true;
    }
    return false;
  }

  /// The proof frontier: groups reachable top-down from the root goal or
  /// from an already-(conditionally-)valid group. Expressions outside it
  /// cannot participate in any derivation that changes the verdict, so
  /// their pending rule applications are dropped. Recomputed per pass —
  /// new expressions splice new groups into the frontier.
  void ComputeFrontier() {
    frontier_.assign(memo_->num_groups(), 0);
    std::vector<std::pair<GroupId, size_t>> queue;
    auto seed = [&](GroupId g) {
      g = memo_->Find(g);
      if (!frontier_[g]) {
        frontier_[g] = 1;
        queue.emplace_back(g, 0);
      }
    };
    seed(options_.root_goal);
    // DAG sources are goals in their own right: inference rules (join
    // introduction, C3 remainders) insert standalone proof obligations
    // that no expression references from above, and they only make
    // progress if the frontier reaches them.
    std::vector<char> has_parent(memo_->num_groups(), 0);
    for (ExprId eid = 0; eid < static_cast<ExprId>(memo_->num_exprs());
         ++eid) {
      const MemoExpr& e = memo_->expr(eid);
      if (e.dead) continue;
      for (GroupId c : e.children) has_parent[memo_->Find(c)] = 1;
    }
    for (GroupId g = 0; g < static_cast<GroupId>(memo_->num_groups()); ++g) {
      if (memo_->Find(g) != g) continue;
      if (memo_->group(g).valid_c || !has_parent[g]) seed(g);
    }
    for (size_t i = 0; i < queue.size(); ++i) {
      GroupId g = queue[i].first;
      size_t depth = queue[i].second;
      frontier_depth_ = std::max(frontier_depth_, depth);
      for (ExprId eid : memo_->GroupExprs(g)) {
        for (GroupId c : memo_->expr(eid).children) {
          c = memo_->Find(c);
          if (!frontier_[c]) {
            frontier_[c] = 1;
            queue.emplace_back(c, depth + 1);
          }
        }
      }
    }
  }

  /// Groups created after the frontier snapshot are products of frontier
  /// rules and count as reachable.
  bool InFrontier(GroupId g) const {
    g = memo_->Find(g);
    return g >= static_cast<GroupId>(frontier_.size()) || frontier_[g] != 0;
  }

  void RunBatch(int batch) {
    const size_t snapshot = memo_->num_exprs();
    std::vector<uint64_t>& sig = sigs_[batch];
    for (ExprId eid = 0; eid < static_cast<ExprId>(snapshot); ++eid) {
      if (memo_->num_exprs() >= options_.max_exprs) {
        budget_exhausted_ = true;
        break;
      }
      const MemoExpr& e = memo_->expr(eid);
      if (e.dead) continue;
      if (goal_directed_) {
        GroupId g = memo_->Find(e.group);
        // Dominance pruning: a group already proved unconditionally valid
        // cannot improve — drop its pending join-reorder applications
        // (batch 1), the generative family whose only payoff is proving
        // the group it rewrites. Batches 0 and 2 stay exempt: structural
        // normalization (collapse identity projections, push selections
        // into joins) and the subsumption matchers are *connective* — they
        // let unproven groups unify with or derive from the proven one,
        // and skipping them loses exactly those proofs.
        if (batch == 1 && options_.prune_dominated && memo_->IsValidU(g)) {
          pruned_groups_.insert(g);
          ++exprs_skipped_;
          continue;
        }
        if (!InFrontier(g)) {
          ++exprs_skipped_;
          continue;
        }
      }
      // Incremental pass: skip expressions whose inputs have not changed
      // since they were last processed. Distinct nodes are exempt (their
      // elimination rule depends on transitive duplicate-freeness proofs).
      uint64_t s = ExprSignature(e);
      if (e.kind != PlanKind::kDistinct &&
          eid < static_cast<ExprId>(sig.size()) && sig[eid] == s) {
        continue;
      }
      if (eid >= static_cast<ExprId>(sig.size())) sig.resize(eid + 1, 0);
      sig[eid] = s;
      if (goal_directed_) {
        ApplyBatch(eid, batch);
      } else {
        ApplyAll(eid);
      }
    }
  }
  /// Combines the canonical ids and versions of an expression's child
  /// groups; a changed signature means new alternatives appeared below.
  uint64_t ExprSignature(const MemoExpr& e) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL + e.children.size();
    for (GroupId c : e.children) {
      GroupId root = memo_->Find(c);
      h = h * 1315423911ULL + static_cast<uint64_t>(root) * 2654435761ULL +
          memo_->group(root).version;
    }
    // The owning group matters too (subsumption scans sibling parents).
    GroupId g = memo_->Find(e.group);
    h = h * 1315423911ULL + memo_->group(g).version;
    return h | 1;  // never 0
  }

  void ApplyAll(ExprId eid) {
    const MemoExpr& e = memo_->expr(eid);
    switch (e.kind) {
      case PlanKind::kSelect:
        if (options_.enable_select_merge) SelectMerge(eid);
        if (options_.enable_select_pushdown) SelectPushdown(eid);
        if (options_.enable_select_through_project) SelectThroughProject(eid);
        if (options_.enable_subsumption) SelectSubsumption(eid);
        if (options_.enable_aggregate_rules) SelectThroughAggregate(eid);
        break;
      case PlanKind::kJoin:
        if (options_.enable_join_commute) JoinCommute(eid);
        if (options_.enable_join_assoc) JoinAssoc(eid);
        break;
      case PlanKind::kProject:
        ProjectCollapse(eid);
        if (options_.enable_subsumption) ProjectSubsumption(eid);
        if (options_.enable_select_pushdown) ProjectPushIntoJoin(eid);
        break;
      case PlanKind::kAggregate:
        if (options_.enable_aggregate_rules) {
          AggPinnedKeyRollup(eid);
          AggListSubsumption(eid);
          AggThroughProject(eid);
        }
        break;
      case PlanKind::kDistinct:
        if (options_.enable_distinct_elim) DistinctElim(eid);
        DistinctPullThroughProject(eid);
        break;
      default:
        break;
    }
  }

  // Batched families (hyrise-style): 0 = cheap structural normalization,
  // 1 = join reordering, 2 = subsumption and aggregate/distinct inference.
  void ApplyBatch(ExprId eid, int batch) {
    const MemoExpr& e = memo_->expr(eid);
    switch (e.kind) {
      case PlanKind::kSelect:
        if (batch == 0) {
          if (options_.enable_select_merge) SelectMerge(eid);
          if (options_.enable_select_pushdown) SelectPushdown(eid);
          if (options_.enable_select_through_project) SelectThroughProject(eid);
        } else if (batch == 2) {
          if (options_.enable_subsumption) SelectSubsumption(eid);
          if (options_.enable_aggregate_rules) SelectThroughAggregate(eid);
        }
        break;
      case PlanKind::kJoin:
        if (batch == 1) {
          if (options_.enable_join_commute) JoinCommute(eid);
          if (options_.enable_join_assoc) JoinAssoc(eid);
        }
        break;
      case PlanKind::kProject:
        if (batch == 0) {
          ProjectCollapse(eid);
          if (options_.enable_select_pushdown) ProjectPushIntoJoin(eid);
        } else if (batch == 2) {
          if (options_.enable_subsumption) ProjectSubsumption(eid);
        }
        break;
      case PlanKind::kAggregate:
        if (batch == 2 && options_.enable_aggregate_rules) {
          AggPinnedKeyRollup(eid);
          AggListSubsumption(eid);
          AggThroughProject(eid);
        }
        break;
      case PlanKind::kDistinct:
        if (batch == 2) {
          if (options_.enable_distinct_elim) DistinctElim(eid);
          DistinctPullThroughProject(eid);
        }
        break;
      default:
        break;
    }
  }

  /// Sorted base tables of a group, cached per canonical id (a group's
  /// table set never changes: merges only join equivalent relations).
  const std::vector<std::string>& GroupTables(GroupId g) {
    g = memo_->Find(g);
    auto it = tables_cache_.find(g);
    if (it != tables_cache_.end()) return it->second;
    return tables_cache_.emplace(g, memo_->BaseTables(g)).first->second;
  }

  /// Goal gate for join associativity: a brand-new inner join group is only
  /// worth materializing when some authorization view (goal table set)
  /// could cover it.
  bool InnerCoveredByGoal(GroupId b, GroupId c) {
    const std::vector<std::string>& tb = GroupTables(b);
    const std::vector<std::string>& tc = GroupTables(c);
    std::vector<std::string> tables;
    tables.reserve(tb.size() + tc.size());
    std::set_union(tb.begin(), tb.end(), tc.begin(), tc.end(),
                   std::back_inserter(tables));
    for (const std::vector<std::string>& goal : goal_sets_) {
      if (std::includes(goal.begin(), goal.end(), tables.begin(),
                        tables.end())) {
        return true;
      }
    }
    return false;
  }

  // Select(P1, Select(P2, x)) => Select(P1 ∧ P2, x).
  void SelectMerge(ExprId eid) {
    MemoExpr e = memo_->expr(eid);  // copy: inserts may reallocate
    GroupId g = memo_->Find(e.group);
    for (ExprId fid : memo_->GroupExprs(e.children[0])) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kSelect) continue;
      std::vector<ScalarPtr> merged = e.predicates;
      merged.insert(merged.end(), f.predicates.begin(), f.predicates.end());
      memo_->InsertExpr(MakeSelectExpr(std::move(merged), f.children[0]), g);
    }
  }

  // Select(P, Join(a, b, JP)) => pushes single-side conjuncts below the
  // join and folds cross-side conjuncts into the join predicate.
  void SelectPushdown(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    for (ExprId fid : memo_->GroupExprs(e.children[0])) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kJoin) continue;
      int la = static_cast<int>(memo_->group(f.children[0]).arity);
      std::vector<ScalarPtr> left_preds, right_preds, join_preds;
      for (const ScalarPtr& p : e.predicates) {
        SlotSpan span = SpanOf(p);
        if (!span.empty && span.max_slot < la) {
          left_preds.push_back(p);
        } else if (!span.empty && span.min_slot >= la) {
          right_preds.push_back(
              RemapSlots(p, [la](int s) { return s - la; }));
        } else {
          join_preds.push_back(p);
        }
      }
      std::vector<ScalarPtr> jp = f.predicates;
      jp.insert(jp.end(), join_preds.begin(), join_preds.end());
      jp = NormalizePredicates(std::move(jp));
      if (left_preds.empty() && right_preds.empty()) {
        // Nothing moves below the join; only fire if the join predicate
        // actually absorbs new conjuncts (cross-side predicates).
        if (jp.size() == f.predicates.size()) continue;
      }
      GroupId new_left = InsertSelectOrChild(memo_, left_preds, f.children[0]);
      GroupId new_right =
          InsertSelectOrChild(memo_, right_preds, f.children[1]);
      memo_->InsertExpr(MakeJoinExpr(std::move(jp), new_left, new_right), g);
    }
  }

  // Select(P, Project(X, d)) => Project(X, Select(P∘X, d)).
  void SelectThroughProject(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    for (ExprId fid : memo_->GroupExprs(e.children[0])) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kProject) continue;
      std::vector<ScalarPtr> pushed;
      pushed.reserve(e.predicates.size());
      for (const ScalarPtr& p : e.predicates) {
        pushed.push_back(SubstituteSlots(p, f.exprs));
      }
      GroupId inner = InsertSelectOrChild(memo_, std::move(pushed),
                                          f.children[0]);
      memo_->InsertExpr(MakeProjectExpr(f.exprs, inner), g);
    }
  }

  // Join(a, b, P) => Project(swap, Join(b, a, P')) — commutativity. The
  // memo is positional, so the commuted join has a different column order
  // and must be wrapped in a column-permuting projection to stay in the
  // same equivalence node.
  void JoinCommute(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    int la = static_cast<int>(memo_->group(e.children[0]).arity);
    int lb = static_cast<int>(memo_->group(e.children[1]).arity);
    std::vector<ScalarPtr> preds;
    preds.reserve(e.predicates.size());
    for (const ScalarPtr& p : e.predicates) {
      preds.push_back(RemapSlots(
          p, [la, lb](int s) { return s < la ? s + lb : s - la; }));
    }
    GroupId commuted = memo_->InsertExpr(
        MakeJoinExpr(std::move(preds), e.children[1], e.children[0]));
    if (memo_->Find(commuted) == g) return;  // self-commute degenerated
    std::vector<ScalarPtr> swap;
    swap.reserve(static_cast<size_t>(la + lb));
    for (int i = 0; i < la; ++i) swap.push_back(MakeColumn(lb + i));
    for (int i = 0; i < lb; ++i) swap.push_back(MakeColumn(i));
    memo_->InsertExpr(MakeProjectExpr(std::move(swap), commuted), g);
  }

  // Project(X, Project(Y, h)) => Project(X∘Y, h).
  void ProjectCollapse(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    for (ExprId fid : memo_->GroupExprs(e.children[0])) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kProject) continue;
      std::vector<ScalarPtr> composed;
      composed.reserve(e.exprs.size());
      for (const ScalarPtr& x : e.exprs) {
        composed.push_back(
            algebra::NormalizeScalar(SubstituteSlots(x, f.exprs)));
      }
      memo_->InsertExpr(MakeProjectExpr(std::move(composed), f.children[0]), g);
    }
  }

  // Projection-list subsumption: π_B(x) = π_{B'}(π_A(x)) when every element
  // of B appears in A. Lets a narrow query projection be computed from a
  // wider (possibly valid) projection over the same input. Applied in both
  // directions relative to the triggering expression.
  void ProjectSubsumption(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    GroupId child = memo_->Find(e.children[0]);
    auto derive = [this](const MemoExpr& narrow, GroupId narrow_group,
                         const MemoExpr& wide, GroupId wide_group) {
      std::vector<ScalarPtr> remapped;
      for (const ScalarPtr& b : narrow.exprs) {
        int pos = -1;
        for (size_t i = 0; i < wide.exprs.size(); ++i) {
          if (ScalarEquals(b, wide.exprs[i])) {
            pos = static_cast<int>(i);
            break;
          }
        }
        if (pos < 0) return;
        remapped.push_back(MakeColumn(pos));
      }
      memo_->InsertExpr(MakeProjectExpr(std::move(remapped), wide_group),
                        narrow_group);
    };
    for (ExprId fid : memo_->ParentsOf(child)) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kProject || memo_->Find(f.children[0]) != child) {
        continue;
      }
      GroupId fg = memo_->Find(f.group);
      if (fg == g) continue;
      if (f.exprs.size() >= e.exprs.size()) derive(e, g, f, fg);
      if (e.exprs.size() >= f.exprs.size()) derive(f, fg, e, g);
    }
  }

  // Projection pushdown into a join: columns of either input that feed
  // neither the projection nor the join predicate can be projected away
  // below the join. Connects queries to views that expose only some
  // columns of a joined table (cell-level authorization).
  void ProjectPushIntoJoin(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    for (ExprId fid : memo_->GroupExprs(e.children[0])) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kJoin) continue;
      int la = static_cast<int>(memo_->group(f.children[0]).arity);
      int lb = static_cast<int>(memo_->group(f.children[1]).arity);
      std::set<int> used;
      for (const ScalarPtr& x : e.exprs) CollectSlots(x, &used);
      for (const ScalarPtr& p : f.predicates) CollectSlots(p, &used);
      std::vector<int> keep_l, keep_r;
      for (int s = 0; s < la; ++s) {
        if (used.count(s)) keep_l.push_back(s);
      }
      for (int s = 0; s < lb; ++s) {
        if (used.count(la + s)) keep_r.push_back(la + s);
      }
      bool trim_l = static_cast<int>(keep_l.size()) < la && !keep_l.empty();
      bool trim_r = static_cast<int>(keep_r.size()) < lb && !keep_r.empty();
      if (!trim_l && !trim_r) continue;
      // Old combined slot -> new combined slot.
      std::map<int, int> remap;
      GroupId new_l = f.children[0];
      if (trim_l) {
        std::vector<ScalarPtr> proj;
        for (size_t i = 0; i < keep_l.size(); ++i) {
          proj.push_back(MakeColumn(keep_l[i]));
          remap[keep_l[i]] = static_cast<int>(i);
        }
        new_l = memo_->InsertExpr(MakeProjectExpr(std::move(proj), new_l));
      } else {
        for (int s = 0; s < la; ++s) remap[s] = s;
      }
      int new_la = trim_l ? static_cast<int>(keep_l.size()) : la;
      GroupId new_r = f.children[1];
      if (trim_r) {
        std::vector<ScalarPtr> proj;
        for (size_t i = 0; i < keep_r.size(); ++i) {
          proj.push_back(MakeColumn(keep_r[i] - la));
          remap[keep_r[i]] = new_la + static_cast<int>(i);
        }
        new_r = memo_->InsertExpr(MakeProjectExpr(std::move(proj), new_r));
      } else {
        for (int s = 0; s < lb; ++s) remap[la + s] = new_la + s;
      }
      auto do_remap = [&remap](const ScalarPtr& s) {
        return RemapSlots(s, [&remap](int slot) {
          auto it = remap.find(slot);
          return it == remap.end() ? -1 : it->second;
        });
      };
      std::vector<ScalarPtr> new_preds;
      for (const ScalarPtr& p : f.predicates) new_preds.push_back(do_remap(p));
      GroupId new_join = memo_->InsertExpr(
          MakeJoinExpr(std::move(new_preds), new_l, new_r));
      std::vector<ScalarPtr> new_exprs;
      for (const ScalarPtr& x : e.exprs) new_exprs.push_back(do_remap(x));
      memo_->InsertExpr(MakeProjectExpr(std::move(new_exprs), new_join), g);
    }
  }

  // Aggregate over a projection: Agg(G, aggs, x) = Agg(G', aggs', π_A(x))
  // when every slot consumed by the grouping and aggregate arguments
  // survives A as a bare column — projections are one-to-one on rows, so
  // multiplicities (and hence every aggregate) are unchanged. Connects
  // query aggregates over joins to views that project the join.
  void AggThroughProject(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    GroupId child = memo_->Find(e.children[0]);
    for (ExprId pid : memo_->ParentsOf(child)) {
      const MemoExpr p = memo_->expr(pid);
      if (p.kind != PlanKind::kProject || memo_->Find(p.children[0]) != child) {
        continue;
      }
      // Old child slot -> position in the projection (bare columns only).
      std::map<int, int> pos;
      for (size_t i = 0; i < p.exprs.size(); ++i) {
        if (p.exprs[i]->kind == algebra::ScalarKind::kColumn) {
          pos.emplace(p.exprs[i]->slot, static_cast<int>(i));
        }
      }
      std::set<int> used;
      for (const ScalarPtr& x : e.group_by) CollectSlots(x, &used);
      for (const algebra::AggExpr& a : e.aggs) CollectSlots(a.arg, &used);
      bool covered = std::all_of(used.begin(), used.end(), [&](int s) {
        return pos.count(s) > 0;
      });
      if (!covered) continue;
      auto remap = [&pos](const ScalarPtr& s) {
        return RemapSlots(s, [&pos](int slot) { return pos.at(slot); });
      };
      std::vector<ScalarPtr> group_by;
      for (const ScalarPtr& x : e.group_by) group_by.push_back(remap(x));
      std::vector<algebra::AggExpr> aggs;
      for (const algebra::AggExpr& a : e.aggs) {
        aggs.push_back({a.func, a.arg == nullptr ? nullptr : remap(a.arg),
                        a.distinct});
      }
      memo_->InsertExpr(
          MakeAggregateExpr(std::move(group_by), std::move(aggs),
                            memo_->Find(p.group)),
          g);
    }
  }

  // Aggregate-list subsumption: Agg(G, A1, x) = Project(Agg(G, A2, x)) when
  // A1 ⊆ A2 (same grouping, same input). Lets a query needing one aggregate
  // be answered from a view computing more aggregates over the same groups
  // (e.g. Example 4.2's avg answered from an avg+count view).
  void AggListSubsumption(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    GroupId child = memo_->Find(e.children[0]);
    auto derive = [this](const MemoExpr& narrow, GroupId narrow_group,
                         const MemoExpr& wide, GroupId wide_group) {
      std::vector<ScalarPtr> proj;
      for (size_t i = 0; i < narrow.group_by.size(); ++i) {
        proj.push_back(MakeColumn(static_cast<int>(i)));
      }
      for (const algebra::AggExpr& a1 : narrow.aggs) {
        int found = -1;
        for (size_t j = 0; j < wide.aggs.size(); ++j) {
          if (algebra::AggExprEquals(a1, wide.aggs[j])) {
            found = static_cast<int>(j);
            break;
          }
        }
        if (found < 0) return;
        proj.push_back(
            MakeColumn(static_cast<int>(narrow.group_by.size()) + found));
      }
      memo_->InsertExpr(MakeProjectExpr(std::move(proj), wide_group),
                        narrow_group);
    };
    for (ExprId fid : memo_->ParentsOf(child)) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kAggregate ||
          memo_->Find(f.children[0]) != child ||
          f.group_by.size() != e.group_by.size()) {
        continue;
      }
      GroupId fg = memo_->Find(f.group);
      if (fg == g) continue;
      bool same_groups = true;
      for (size_t i = 0; i < e.group_by.size(); ++i) {
        if (!ScalarEquals(e.group_by[i], f.group_by[i])) {
          same_groups = false;
          break;
        }
      }
      if (!same_groups) continue;
      if (f.aggs.size() > e.aggs.size()) derive(e, g, f, fg);
      if (e.aggs.size() > f.aggs.size()) derive(f, fg, e, g);
    }
  }

  // Distinct(Project(X, h)) => Distinct(Project(X, Distinct(h))): the set of
  // projected tuples is unchanged by pre-deduplication. Lets a valid
  // DISTINCT core (from U3) feed narrower DISTINCT projections.
  void DistinctPullThroughProject(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    for (ExprId fid : memo_->GroupExprs(e.children[0])) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kProject) continue;
      MemoExpr inner_distinct;
      inner_distinct.kind = PlanKind::kDistinct;
      inner_distinct.children = {f.children[0]};
      GroupId dh = memo_->InsertExpr(std::move(inner_distinct));
      GroupId p2 = memo_->InsertExpr(MakeProjectExpr(f.exprs, dh));
      MemoExpr outer;
      outer.kind = PlanKind::kDistinct;
      outer.children = {p2};
      memo_->InsertExpr(std::move(outer), g);
    }
  }

  // Join(Join(a, b, P1), c, P2) => Join(a, Join(b, c, inner), outer).
  void JoinAssoc(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    for (ExprId fid : memo_->GroupExprs(e.children[0])) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kJoin) continue;
      int la = static_cast<int>(memo_->group(f.children[0]).arity);
      // Combined slot space: a [0,la), b [la,la+lb), c [la+lb, ...).
      // P1 (over a,b) already uses it; so does P2 (over (ab),c).
      std::vector<ScalarPtr> all = f.predicates;
      all.insert(all.end(), e.predicates.begin(), e.predicates.end());
      std::vector<ScalarPtr> inner, outer;
      for (const ScalarPtr& p : all) {
        SlotSpan span = SpanOf(p);
        if (!span.empty && span.min_slot >= la) {
          inner.push_back(RemapSlots(p, [la](int s) { return s - la; }));
        } else {
          outer.push_back(p);
        }
      }
      MemoExpr inner_join =
          MakeJoinExpr(std::move(inner), f.children[1], e.children[1]);
      // Goal-directed gate: only materialize a *new* inner join group when
      // its base tables fit inside some goal (view) table set — a join no
      // view could cover cannot appear in a validity proof. Inner shapes
      // that hash-cons into an existing group are always free.
      if (goal_directed_ && !goal_sets_.empty() &&
          memo_->FindExisting(inner_join) < 0 &&
          !InnerCoveredByGoal(f.children[1], e.children[1])) {
        ++exprs_skipped_;
        continue;
      }
      GroupId gi = memo_->InsertExpr(std::move(inner_join));
      // New layout a then (b,c) keeps the same global slots; no remap.
      memo_->InsertExpr(MakeJoinExpr(std::move(outer), f.children[0], gi), g);
    }
  }

  // Subsumption derivation: Select(P1, x) can be computed from Select(P2, x)
  // when P1 => P2 (Section 5.6.1). Applied in both directions so that a
  // newly inserted selection connects to previously processed siblings.
  void SelectSubsumption(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    GroupId child = memo_->Find(e.children[0]);
    for (ExprId fid : memo_->ParentsOf(child)) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kSelect || memo_->Find(f.children[0]) != child) {
        continue;
      }
      GroupId fg = memo_->Find(f.group);
      if (fg == g) continue;
      if (ImpliesAll(e.predicates, f.predicates)) {
        DeriveStrongFromWeak(e.predicates, g, f.predicates, fg);
        if (memo_->Find(g) == memo_->Find(fg)) return;  // unified
      }
      if (ImpliesAll(f.predicates, e.predicates)) {
        DeriveStrongFromWeak(f.predicates, fg, e.predicates, g);
        if (memo_->Find(g) == memo_->Find(fg)) return;
      }
    }
  }

  /// Adds σ_{strong}(x) = σ_{residual}(σ_{weak}(x)) to the strong group.
  /// When weak ⊆ strong structurally the residual is the set difference;
  /// otherwise re-applying all of `strong` is correct since strong => weak.
  void DeriveStrongFromWeak(const std::vector<ScalarPtr>& strong,
                            GroupId strong_group,
                            const std::vector<ScalarPtr>& weak,
                            GroupId weak_group) {
    std::vector<ScalarPtr> residual;
    bool syntactic_subset = true;
    for (const ScalarPtr& pw : weak) {
      bool found = std::any_of(
          strong.begin(), strong.end(),
          [&](const ScalarPtr& ps) { return ScalarEquals(ps, pw); });
      if (!found) {
        syntactic_subset = false;
        break;
      }
    }
    if (syntactic_subset) {
      for (const ScalarPtr& ps : strong) {
        bool in_weak = std::any_of(
            weak.begin(), weak.end(),
            [&](const ScalarPtr& pw) { return ScalarEquals(ps, pw); });
        if (!in_weak) residual.push_back(ps);
      }
    } else {
      residual = strong;
    }
    if (residual.empty()) {
      // strong == weak semantically; unify the groups.
      memo_->Unify(strong_group, weak_group);
      return;
    }
    memo_->InsertExpr(MakeSelectExpr(std::move(residual), weak_group),
                      strong_group);
  }

  // Select(P, Aggregate(G, aggs, d)): conjuncts over group columns push
  // below the aggregation.
  void SelectThroughAggregate(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    for (ExprId fid : memo_->GroupExprs(e.children[0])) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kAggregate) continue;
      int n = static_cast<int>(f.group_by.size());
      std::vector<ScalarPtr> pushable, rest;
      for (const ScalarPtr& p : e.predicates) {
        SlotSpan span = SpanOf(p);
        if (!span.empty && span.max_slot < n) {
          pushable.push_back(SubstituteSlots(p, f.group_by));
        } else {
          rest.push_back(p);
        }
      }
      if (pushable.empty()) continue;
      GroupId inner =
          InsertSelectOrChild(memo_, std::move(pushable), f.children[0]);
      GroupId agg = memo_->InsertExpr(
          MakeAggregateExpr(f.group_by, f.aggs, inner));
      if (rest.empty()) {
        memo_->Unify(g, agg);
      } else {
        memo_->InsertExpr(MakeSelectExpr(std::move(rest), agg), g);
      }
    }
  }

  // Aggregate(G1, aggs, Select(pins ∧ rest, x)) =>
  //   Project(σ_{keycols = lits}(Aggregate(G1 ∪ pins, aggs, Select(rest,x))))
  // — the pinned-group-key roll-through enabling aggregation views
  // (Examples 4.1/4.2). See ExpandOptions::enable_aggregate_rules for the
  // empty-input caveat.
  void AggPinnedKeyRollup(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    for (ExprId fid : memo_->GroupExprs(e.children[0])) {
      const MemoExpr f = memo_->expr(fid);
      if (f.kind != PlanKind::kSelect) continue;
      std::vector<ScalarPtr> pin_exprs, rest;
      std::vector<Value> pin_values;
      for (const ScalarPtr& p : f.predicates) {
        std::optional<Atom> atom = ExtractAtom(p);
        bool is_new_pin = false;
        if (atom.has_value() && atom->op == Atom::Op::kEq) {
          bool already_grouped = std::any_of(
              e.group_by.begin(), e.group_by.end(),
              [&](const ScalarPtr& gx) { return ScalarEquals(gx, atom->expr); });
          bool duplicate_pin = std::any_of(
              pin_exprs.begin(), pin_exprs.end(),
              [&](const ScalarPtr& px) { return ScalarEquals(px, atom->expr); });
          if (!already_grouped && !duplicate_pin) {
            pin_exprs.push_back(atom->expr);
            pin_values.push_back(atom->literal);
            is_new_pin = true;
          }
        }
        if (!is_new_pin) rest.push_back(p);
      }
      if (pin_exprs.empty()) continue;
      GroupId inner = InsertSelectOrChild(memo_, rest, f.children[0]);
      std::vector<ScalarPtr> g2 = e.group_by;
      g2.insert(g2.end(), pin_exprs.begin(), pin_exprs.end());
      GroupId agg = memo_->InsertExpr(MakeAggregateExpr(g2, e.aggs, inner));
      int n1 = static_cast<int>(e.group_by.size());
      int npins = static_cast<int>(pin_exprs.size());
      std::vector<ScalarPtr> sel_preds;
      for (int i = 0; i < npins; ++i) {
        sel_preds.push_back(MakeBinaryScalar(
            sql::BinOp::kEq, MakeColumn(n1 + i),
            MakeLiteralScalar(pin_values[i])));
      }
      GroupId sel = memo_->InsertExpr(MakeSelectExpr(std::move(sel_preds), agg));
      std::vector<ScalarPtr> proj;
      for (int i = 0; i < n1; ++i) proj.push_back(MakeColumn(i));
      for (size_t i = 0; i < e.aggs.size(); ++i) {
        proj.push_back(MakeColumn(n1 + npins + static_cast<int>(i)));
      }
      memo_->InsertExpr(MakeProjectExpr(std::move(proj), sel), g);
    }
  }

  // Distinct(x) where x is duplicate-free is x itself.
  void DistinctElim(ExprId eid) {
    MemoExpr e = memo_->expr(eid);
    GroupId g = memo_->Find(e.group);
    GroupId child = memo_->Find(e.children[0]);
    if (g == child) return;
    if (GroupDuplicateFree(*memo_, child, options_)) {
      memo_->Unify(g, child);
    }
  }

  Memo* memo_;
  const ExpandOptions& options_;
  const bool goal_directed_;
  size_t passes_ = 0;
  bool budget_exhausted_ = false;
  bool stopped_early_ = false;
  bool stop_polled_ = false;
  uint64_t last_stop_state_ = 0;
  size_t exprs_skipped_ = 0;
  size_t frontier_depth_ = 0;
  std::set<GroupId> pruned_groups_;
  std::vector<char> frontier_;
  std::vector<std::vector<std::string>> goal_sets_;
  std::map<GroupId, std::vector<std::string>> tables_cache_;
  std::vector<uint64_t> sigs_[kNumBatches];
};

}  // namespace

ExpandStats ExpandMemo(Memo* memo, const ExpandOptions& options) {
  RuleContext ctx(memo, options);
  ExpandStats stats;
  stats.exprs_added = ctx.Run();
  stats.passes = ctx.passes();
  stats.budget_exhausted = ctx.budget_exhausted();
  stats.groups_pruned = ctx.groups_pruned();
  stats.exprs_skipped = ctx.exprs_skipped();
  stats.frontier_depth = ctx.frontier_depth();
  stats.stopped_early = ctx.stopped_early();
  return stats;
}

namespace {

bool DuplicateFreeRec(const Memo& memo, GroupId g, const ExpandOptions& options,
                      std::map<GroupId, int>* state);

/// Finds the base table reachable from `g` through Select nodes only, and
/// reports which of its PK slots survive (identity-mapped).
bool PkSlotsPreservedByProject(const Memo& memo, const MemoExpr& project,
                               const ExpandOptions& options) {
  if (options.table_pk_slots == nullptr) return false;
  GroupId g = memo.Find(project.children[0]);
  for (int depth = 0; depth < 8; ++depth) {
    for (ExprId eid : memo.GroupExprs(g)) {
      const MemoExpr& e = memo.expr(eid);
      if (e.kind == PlanKind::kGet) {
        std::vector<int> pk = options.table_pk_slots(e.table);
        if (pk.empty()) return false;
        for (int slot : pk) {
          bool present = std::any_of(
              project.exprs.begin(), project.exprs.end(),
              [slot](const ScalarPtr& x) {
                return x->kind == algebra::ScalarKind::kColumn &&
                       x->slot == slot;
              });
          if (!present) return false;
        }
        return true;
      }
      if (e.kind == PlanKind::kSelect) {
        g = memo.Find(e.children[0]);
        goto next_level;
      }
    }
    return false;
  next_level:;
  }
  return false;
}

bool ExprDuplicateFree(const Memo& memo, const MemoExpr& e,
                       const ExpandOptions& options,
                       std::map<GroupId, int>* state) {
  switch (e.kind) {
    case PlanKind::kGet: {
      if (options.table_pk_slots == nullptr) return false;
      return !options.table_pk_slots(e.table).empty();
    }
    case PlanKind::kValues: {
      for (size_t i = 0; i < e.rows.size(); ++i) {
        for (size_t j = i + 1; j < e.rows.size(); ++j) {
          if (RowEq()(e.rows[i], e.rows[j])) return false;
        }
      }
      return true;
    }
    case PlanKind::kSelect:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return DuplicateFreeRec(memo, e.children[0], options, state);
    case PlanKind::kJoin:
      return DuplicateFreeRec(memo, e.children[0], options, state) &&
             DuplicateFreeRec(memo, e.children[1], options, state);
    case PlanKind::kDistinct:
    case PlanKind::kAggregate:
      return true;
    case PlanKind::kProject: {
      if (!DuplicateFreeRec(memo, e.children[0], options, state)) {
        // A projection can still be duplicate-free if it keeps a key.
        return PkSlotsPreservedByProject(memo, e, options);
      }
      // Child duplicate-free and projection keeps every child slot?
      size_t child_arity = memo.group(e.children[0]).arity;
      std::set<int> kept;
      for (const ScalarPtr& x : e.exprs) {
        if (x->kind == algebra::ScalarKind::kColumn) kept.insert(x->slot);
      }
      if (kept.size() == child_arity) return true;
      return PkSlotsPreservedByProject(memo, e, options);
    }
    case PlanKind::kUnionAll:
      return false;
  }
  return false;
}

bool DuplicateFreeRec(const Memo& memo, GroupId g, const ExpandOptions& options,
                      std::map<GroupId, int>* state) {
  g = memo.Find(g);
  auto it = state->find(g);
  if (it != state->end()) {
    if (it->second == 2) return true;   // proven
    return false;                       // in-progress or disproven
  }
  (*state)[g] = 1;  // in progress
  for (ExprId eid : memo.GroupExprs(g)) {
    if (ExprDuplicateFree(memo, memo.expr(eid), options, state)) {
      (*state)[g] = 2;
      return true;
    }
  }
  (*state)[g] = 0;
  return false;
}

}  // namespace

bool GroupDuplicateFree(const Memo& memo, GroupId g,
                        const ExpandOptions& options) {
  std::map<GroupId, int> state;
  return DuplicateFreeRec(memo, g, options, &state);
}

}  // namespace fgac::optimizer
