#ifndef FGAC_OPTIMIZER_MEMO_H_
#define FGAC_OPTIMIZER_MEMO_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/plan.h"
#include "common/result.h"

namespace fgac::optimizer {

using GroupId = int32_t;
using ExprId = int32_t;

/// An operation node ("AND node") of the Volcano AND-OR DAG (paper
/// Figure 1): a logical operator plus child equivalence-node ids. Payload
/// fields mirror algebra::Plan minus children.
struct MemoExpr {
  algebra::PlanKind kind = algebra::PlanKind::kGet;
  std::vector<GroupId> children;

  // Payload (see algebra::Plan for field semantics).
  std::string table;
  std::vector<std::string> get_columns;
  std::vector<Row> rows;
  size_t values_arity = 0;
  std::vector<algebra::ScalarPtr> predicates;
  std::vector<algebra::ScalarPtr> exprs;
  std::vector<algebra::ScalarPtr> group_by;
  std::vector<algebra::AggExpr> aggs;
  std::vector<algebra::SortItem> sort_items;
  int64_t limit = 0;

  /// Owning group (kept canonical by Canonicalize()).
  GroupId group = -1;
  /// Dead after being deduplicated during a group merge.
  bool dead = false;
};

/// An equivalence node ("OR node"): a set of operation nodes computing the
/// same logical expression, plus the validity marks used by the Non-Truman
/// inference (Section 5.6.2: "The root equivalence nodes for all views are
/// marked as valid", then marks propagate bottom-up).
struct MemoGroup {
  std::vector<ExprId> exprs;
  size_t arity = 0;
  /// Bumped whenever the group's expression set changes (insert or merge);
  /// lets the rule engine skip expressions whose inputs are unchanged.
  uint64_t version = 0;
  /// Inference rule marks: unconditionally valid (U1/U2/U3*) and
  /// conditionally valid (C1/C2/C3*). valid_u implies valid_c (rule C1).
  bool valid_u = false;
  bool valid_c = false;
  /// True once merged into another group (see Find()).
  bool merged = false;
};

/// The AND-OR DAG with hash-consed unification: inserting a structurally
/// identical operation node returns the existing one; inserting an existing
/// node into a different group merges the two groups (the multi-query
/// unification of [25] that Section 5.6 builds on), with congruence closure
/// re-run to a fixpoint.
class Memo {
 public:
  Memo() = default;
  Memo(const Memo&) = delete;
  Memo& operator=(const Memo&) = delete;

  /// Recursively inserts a plan tree; returns the (canonical) group of its
  /// root. Equal subtrees unify with existing nodes.
  GroupId InsertPlan(const algebra::PlanPtr& plan);

  /// Inserts one operation node. If an identical node exists:
  ///  * target < 0: returns its group;
  ///  * target >= 0 and different group: merges the groups (unification).
  /// Otherwise adds the node to `target` (or a fresh group).
  GroupId InsertExpr(MemoExpr expr, GroupId target = -1);

  /// Canonical group id (union-find).
  GroupId Find(GroupId g) const;

  /// Group holding a live, structurally identical node, or -1. Probes the
  /// hash-cons index without inserting (used by the goal-directed join
  /// gate: an inner join that unifies with an existing node is free).
  GroupId FindExisting(const MemoExpr& expr) const;

  /// Declares two groups equivalent and merges them (caller asserts the
  /// semantic equivalence, e.g. distinct-elimination over duplicate-free
  /// input). Runs congruence closure.
  void Unify(GroupId a, GroupId b);

  size_t num_groups() const { return groups_.size(); }
  size_t num_live_groups() const;
  size_t num_exprs() const { return exprs_.size(); }
  size_t num_live_exprs() const;

  const MemoGroup& group(GroupId g) const { return groups_[Find(g)]; }
  MemoGroup& mutable_group(GroupId g) { return groups_[Find(g)]; }
  const MemoExpr& expr(ExprId e) const { return exprs_[e]; }

  /// Live operation nodes of a group (children canonicalized).
  std::vector<ExprId> GroupExprs(GroupId g) const;

  /// All live operation nodes (any group) having `g` among their children.
  std::vector<ExprId> ParentsOf(GroupId g) const;

  /// Marks for validity propagation.
  void MarkValidU(GroupId g);
  void MarkValidC(GroupId g);
  bool IsValidU(GroupId g) const { return group(g).valid_u; }
  bool IsValidC(GroupId g) const { return group(g).valid_c; }

  /// Extracts one arbitrary plan computing group `g` (first live expr,
  /// recursively). Used to execute v_r in rule C3a and for debugging.
  Result<algebra::PlanPtr> AnyPlan(GroupId g) const;

  /// Sorted, deduplicated base tables reachable from group `g` (via the
  /// first live expression at each level — alternatives of a group compute
  /// the same relation, so any witness yields the same table set). Used by
  /// the goal-directed join-associativity gate.
  std::vector<std::string> BaseTables(GroupId g) const;

  /// Re-canonicalizes all nodes after merges until no further merges occur
  /// (congruence closure). Called internally; cheap when nothing changed.
  void Canonicalize();

  /// Multi-line dump (group ids, validity marks, operation nodes).
  std::string ToString() const;

  /// Total number of distinct plan trees represented for group `g`
  /// (the "much larger number of query plans" of Figure 1; saturates at
  /// `cap`). Used by the E1 experiment.
  double CountPlans(GroupId g, double cap = 1e18) const;

 private:
  uint64_t ExprKey(const MemoExpr& e) const;
  bool ExprPayloadEquals(const MemoExpr& a, const MemoExpr& b) const;
  size_t ExprArity(const MemoExpr& e) const;
  void MergeGroups(GroupId a, GroupId b);

  std::vector<MemoExpr> exprs_;
  std::vector<MemoGroup> groups_;
  mutable std::vector<GroupId> uf_;
  std::unordered_map<uint64_t, std::vector<ExprId>> dedup_;
  /// Index: canonical group -> expressions that reference it as a child
  /// (may contain stale/dead entries; readers filter). Merged groups'
  /// lists are spliced into the winner.
  std::unordered_map<GroupId, std::vector<ExprId>> parents_;
  bool needs_canonicalize_ = false;
};

}  // namespace fgac::optimizer

#endif  // FGAC_OPTIMIZER_MEMO_H_
