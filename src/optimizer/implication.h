#ifndef FGAC_OPTIMIZER_IMPLICATION_H_
#define FGAC_OPTIMIZER_IMPLICATION_H_

#include <optional>
#include <vector>

#include "algebra/scalar.h"

namespace fgac::optimizer {

/// A single comparison atom `expr OP literal` extracted from a normalized
/// conjunct (the literal may have appeared on either side).
struct Atom {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kIn };
  algebra::ScalarPtr expr;
  Op op = Op::kEq;
  Value literal;                 // for all but kIn
  std::vector<Value> in_values;  // for kIn
};

/// Extracts an atom from a conjunct, or nullopt if it is not of atom shape.
std::optional<Atom> ExtractAtom(const algebra::ScalarPtr& conjunct);

/// Conservative implication test: does conjunct set `premises` imply
/// `conclusion`? Sound but incomplete: structural equality, plus
/// range/equality/IN reasoning over atoms sharing the same expression.
bool ImpliesConjunct(const std::vector<algebra::ScalarPtr>& premises,
                     const algebra::ScalarPtr& conclusion);

/// True if `premises` implies every conjunct of `conclusions`.
bool ImpliesAll(const std::vector<algebra::ScalarPtr>& premises,
                const std::vector<algebra::ScalarPtr>& conclusions);

}  // namespace fgac::optimizer

#endif  // FGAC_OPTIMIZER_IMPLICATION_H_
