#include "optimizer/memo.h"

#include <algorithm>
#include <cassert>

#include "algebra/plan_hash.h"

namespace fgac::optimizer {

using algebra::AggExprEquals;
using algebra::AggExprFingerprint;
using algebra::PlanKind;
using algebra::ScalarEquals;
using algebra::ScalarFingerprint;

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

}  // namespace

GroupId Memo::Find(GroupId g) const {
  while (uf_[g] != g) {
    uf_[g] = uf_[uf_[g]];  // path halving
    g = uf_[g];
  }
  return g;
}

size_t Memo::num_live_groups() const {
  size_t n = 0;
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (!groups_[g].merged) ++n;
  }
  return n;
}

size_t Memo::num_live_exprs() const {
  size_t n = 0;
  for (const MemoExpr& e : exprs_) {
    if (!e.dead) ++n;
  }
  return n;
}

size_t Memo::ExprArity(const MemoExpr& e) const {
  switch (e.kind) {
    case PlanKind::kGet:
      return e.get_columns.size();
    case PlanKind::kValues:
      return e.values_arity;
    case PlanKind::kSelect:
    case PlanKind::kDistinct:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kUnionAll:
      return groups_[Find(e.children[0])].arity;
    case PlanKind::kProject:
      return e.exprs.size();
    case PlanKind::kJoin:
      return groups_[Find(e.children[0])].arity +
             groups_[Find(e.children[1])].arity;
    case PlanKind::kAggregate:
      return e.group_by.size() + e.aggs.size();
  }
  return 0;
}

uint64_t Memo::ExprKey(const MemoExpr& e) const {
  uint64_t h = static_cast<uint64_t>(e.kind) * 0x100000001b3ULL + 0x9747b28c;
  switch (e.kind) {
    case PlanKind::kGet:
      h = HashCombine(h, std::hash<std::string>()(e.table));
      break;
    case PlanKind::kValues:
      h = HashCombine(h, e.values_arity);
      for (const Row& r : e.rows) h = HashCombine(h, RowHash()(r));
      break;
    case PlanKind::kSelect:
    case PlanKind::kJoin:
      for (const auto& p : e.predicates) {
        h = HashCombine(h, ScalarFingerprint(p));
      }
      break;
    case PlanKind::kProject:
      for (const auto& x : e.exprs) h = HashCombine(h, ScalarFingerprint(x));
      break;
    case PlanKind::kAggregate:
      for (const auto& g : e.group_by) h = HashCombine(h, ScalarFingerprint(g));
      h = HashCombine(h, 0x5151);
      for (const auto& a : e.aggs) h = HashCombine(h, AggExprFingerprint(a));
      break;
    case PlanKind::kDistinct:
    case PlanKind::kUnionAll:
      break;
    case PlanKind::kSort:
      for (const auto& s : e.sort_items) {
        h = HashCombine(h, ScalarFingerprint(s.expr) * (s.descending ? 3 : 1));
      }
      break;
    case PlanKind::kLimit:
      h = HashCombine(h, static_cast<uint64_t>(e.limit));
      break;
  }
  for (GroupId c : e.children) {
    h = HashCombine(h, static_cast<uint64_t>(Find(c)) + 0x51f1);
  }
  return h;
}

bool Memo::ExprPayloadEquals(const MemoExpr& a, const MemoExpr& b) const {
  if (a.kind != b.kind || a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (Find(a.children[i]) != Find(b.children[i])) return false;
  }
  switch (a.kind) {
    case PlanKind::kGet:
      return a.table == b.table;
    case PlanKind::kValues: {
      if (a.values_arity != b.values_arity || a.rows.size() != b.rows.size()) {
        return false;
      }
      RowEq eq;
      for (size_t i = 0; i < a.rows.size(); ++i) {
        if (!eq(a.rows[i], b.rows[i])) return false;
      }
      return true;
    }
    case PlanKind::kSelect:
    case PlanKind::kJoin: {
      if (a.predicates.size() != b.predicates.size()) return false;
      for (size_t i = 0; i < a.predicates.size(); ++i) {
        if (!ScalarEquals(a.predicates[i], b.predicates[i])) return false;
      }
      return true;
    }
    case PlanKind::kProject: {
      if (a.exprs.size() != b.exprs.size()) return false;
      for (size_t i = 0; i < a.exprs.size(); ++i) {
        if (!ScalarEquals(a.exprs[i], b.exprs[i])) return false;
      }
      return true;
    }
    case PlanKind::kAggregate: {
      if (a.group_by.size() != b.group_by.size() ||
          a.aggs.size() != b.aggs.size()) {
        return false;
      }
      for (size_t i = 0; i < a.group_by.size(); ++i) {
        if (!ScalarEquals(a.group_by[i], b.group_by[i])) return false;
      }
      for (size_t i = 0; i < a.aggs.size(); ++i) {
        if (!AggExprEquals(a.aggs[i], b.aggs[i])) return false;
      }
      return true;
    }
    case PlanKind::kDistinct:
    case PlanKind::kUnionAll:
      return true;
    case PlanKind::kSort: {
      if (a.sort_items.size() != b.sort_items.size()) return false;
      for (size_t i = 0; i < a.sort_items.size(); ++i) {
        if (a.sort_items[i].descending != b.sort_items[i].descending ||
            !ScalarEquals(a.sort_items[i].expr, b.sort_items[i].expr)) {
          return false;
        }
      }
      return true;
    }
    case PlanKind::kLimit:
      return a.limit == b.limit;
  }
  return false;
}

GroupId Memo::FindExisting(const MemoExpr& expr) const {
  auto it = dedup_.find(ExprKey(expr));
  if (it == dedup_.end()) return -1;
  for (ExprId eid : it->second) {
    const MemoExpr& existing = exprs_[eid];
    if (!existing.dead && ExprPayloadEquals(existing, expr)) {
      return Find(existing.group);
    }
  }
  return -1;
}

GroupId Memo::InsertExpr(MemoExpr expr, GroupId target) {
  // Canonicalize child references.
  for (GroupId& c : expr.children) c = Find(c);
  if (target >= 0) target = Find(target);

  // Trivial nodes collapse into their child so that derived expressions
  // unify with existing groups: an empty Select and an identity Project
  // are the child itself.
  if (expr.kind == PlanKind::kSelect && expr.predicates.empty()) {
    GroupId child = Find(expr.children[0]);
    if (target >= 0 && target != child) {
      MergeGroups(target, child);
      return Find(child);
    }
    return child;
  }
  if (expr.kind == PlanKind::kProject &&
      expr.exprs.size() == groups_[Find(expr.children[0])].arity) {
    bool identity = true;
    for (size_t i = 0; i < expr.exprs.size(); ++i) {
      if (expr.exprs[i]->kind != algebra::ScalarKind::kColumn ||
          expr.exprs[i]->slot != static_cast<int>(i)) {
        identity = false;
        break;
      }
    }
    if (identity) {
      GroupId child = Find(expr.children[0]);
      if (target >= 0 && target != child) {
        MergeGroups(target, child);
        return Find(child);
      }
      return child;
    }
  }

  uint64_t key = ExprKey(expr);
  auto it = dedup_.find(key);
  if (it != dedup_.end()) {
    for (ExprId eid : it->second) {
      const MemoExpr& existing = exprs_[eid];
      if (existing.dead || !ExprPayloadEquals(existing, expr)) continue;
      GroupId found = Find(existing.group);
      if (target < 0 || target == found) return found;
      // Unification: the same operation node appears in two equivalence
      // nodes -> the nodes represent the same expression; merge them.
      // Congruence closure is deferred to the next Canonicalize() batch.
      MergeGroups(target, found);
      return Find(target);
    }
  }

  ExprId eid = static_cast<ExprId>(exprs_.size());
  if (target < 0) {
    target = static_cast<GroupId>(groups_.size());
    MemoGroup g;
    g.arity = ExprArity(expr);
    groups_.push_back(std::move(g));
    uf_.push_back(target);
  }
  assert(groups_[target].arity == ExprArity(expr));
  if (groups_[target].arity != ExprArity(expr)) {
    // Arity clash means the caller routed the expression to the wrong
    // equivalence node (a rule bug). Isolate it in a fresh node rather
    // than corrupting an existing one's invariants.
    target = static_cast<GroupId>(groups_.size());
    MemoGroup g;
    g.arity = ExprArity(expr);
    groups_.push_back(std::move(g));
    uf_.push_back(target);
  }
  expr.group = target;
  for (GroupId c : expr.children) parents_[Find(c)].push_back(eid);
  exprs_.push_back(std::move(expr));
  groups_[target].exprs.push_back(eid);
  ++groups_[target].version;
  dedup_[key].push_back(eid);
  return target;
}

GroupId Memo::InsertPlan(const algebra::PlanPtr& plan) {
  assert(plan != nullptr);
  if (plan == nullptr) {
    // Treat a missing subtree as the empty relation so exploration can
    // proceed; the planner will simply find no rows on this branch.
    MemoExpr empty;
    empty.kind = algebra::PlanKind::kValues;
    empty.values_arity = 0;
    return InsertExpr(std::move(empty));
  }
  MemoExpr e;
  e.kind = plan->kind;
  for (const algebra::PlanPtr& c : plan->children) {
    e.children.push_back(InsertPlan(c));
  }
  e.table = plan->table;
  e.get_columns = plan->get_columns;
  e.rows = plan->rows;
  e.values_arity = plan->values_arity;
  e.predicates = plan->predicates;
  e.exprs = plan->exprs;
  e.group_by = plan->group_by;
  e.aggs = plan->aggs;
  e.sort_items = plan->sort_items;
  e.limit = plan->limit;
  return InsertExpr(std::move(e));
}

void Memo::Unify(GroupId a, GroupId b) {
  MergeGroups(a, b);
  Canonicalize();
}

void Memo::MergeGroups(GroupId a, GroupId b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  GroupId winner = std::min(a, b);
  GroupId loser = std::max(a, b);
  MemoGroup& w = groups_[winner];
  MemoGroup& l = groups_[loser];
  assert(w.arity == l.arity);
  if (w.arity != l.arity) {
    // Merging nodes of different arity would make every expression in one
    // of them ill-typed. Refuse the merge: keeping the nodes separate only
    // costs duplicate exploration, never a wrong plan.
    return;
  }
  for (ExprId eid : l.exprs) {
    exprs_[eid].group = winner;
    w.exprs.push_back(eid);
  }
  l.exprs.clear();
  l.merged = true;
  w.version += l.version + 1;
  w.valid_u = w.valid_u || l.valid_u;
  w.valid_c = w.valid_c || l.valid_c;
  // Splice the loser's parent index into the winner's.
  auto lit = parents_.find(loser);
  if (lit != parents_.end()) {
    auto& wlist = parents_[winner];
    wlist.insert(wlist.end(), lit->second.begin(), lit->second.end());
    parents_.erase(lit);
  }
  uf_[loser] = winner;
  needs_canonicalize_ = true;
}

void Memo::Canonicalize() {
  if (!needs_canonicalize_) return;
  bool changed = true;
  while (changed) {
    changed = false;
    needs_canonicalize_ = false;
    dedup_.clear();
    for (ExprId eid = 0; eid < static_cast<ExprId>(exprs_.size()); ++eid) {
      MemoExpr& e = exprs_[eid];
      if (e.dead) continue;
      e.group = Find(e.group);
      for (GroupId& c : e.children) c = Find(c);
      // Drop degenerate self-loops created by unification of an operator
      // with its own input (e.g. Distinct over a duplicate-free group).
      if ((e.kind == PlanKind::kDistinct || e.kind == PlanKind::kSort) &&
          !e.children.empty() && Find(e.children[0]) == e.group) {
        e.dead = true;
        continue;
      }
      uint64_t key = ExprKey(e);
      auto& bucket = dedup_[key];
      bool duplicate = false;
      for (ExprId other : bucket) {
        if (exprs_[other].dead || !ExprPayloadEquals(exprs_[other], e)) continue;
        GroupId go = Find(exprs_[other].group);
        if (go == e.group) {
          e.dead = true;  // same node twice in one group
        } else {
          MergeGroups(go, e.group);
          changed = true;
        }
        duplicate = true;
        break;
      }
      if (!duplicate) bucket.push_back(eid);
    }
  }
  // Compact group expr lists (drop dead entries and stale ids).
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].merged) continue;
    auto& list = groups_[g].exprs;
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](ExprId eid) {
                                return exprs_[eid].dead ||
                                       exprs_[eid].group !=
                                           static_cast<GroupId>(g);
                              }),
               list.end());
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

std::vector<ExprId> Memo::GroupExprs(GroupId g) const {
  g = Find(g);
  std::vector<ExprId> out;
  for (ExprId eid : groups_[g].exprs) {
    if (!exprs_[eid].dead) out.push_back(eid);
  }
  return out;
}

std::vector<ExprId> Memo::ParentsOf(GroupId g) const {
  g = Find(g);
  std::vector<ExprId> out;
  auto it = parents_.find(g);
  if (it == parents_.end()) return out;
  for (ExprId eid : it->second) {
    const MemoExpr& e = exprs_[eid];
    if (e.dead) continue;
    bool references = false;
    for (GroupId c : e.children) {
      if (Find(c) == g) {
        references = true;
        break;
      }
    }
    if (references) out.push_back(eid);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Memo::MarkValidU(GroupId g) {
  MemoGroup& grp = mutable_group(g);
  grp.valid_u = true;
  grp.valid_c = true;  // rule C1
}

void Memo::MarkValidC(GroupId g) { mutable_group(g).valid_c = true; }

namespace {

algebra::PlanPtr PlanFromExprPayload(const MemoExpr& e,
                                     std::vector<algebra::PlanPtr> children) {
  auto p = std::make_shared<algebra::Plan>();
  p->kind = e.kind;
  p->children = std::move(children);
  p->table = e.table;
  p->get_columns = e.get_columns;
  p->rows = e.rows;
  p->values_arity = e.values_arity;
  p->predicates = e.predicates;
  p->exprs = e.exprs;
  p->group_by = e.group_by;
  p->aggs = e.aggs;
  p->sort_items = e.sort_items;
  p->limit = e.limit;
  return p;
}

}  // namespace

Result<algebra::PlanPtr> Memo::AnyPlan(GroupId g) const {
  g = Find(g);
  // Iterative-deepening-free approach: DFS with an on-path guard; try each
  // expression until one closes without a cycle.
  std::vector<bool> on_path(groups_.size(), false);
  std::function<Result<algebra::PlanPtr>(GroupId)> build =
      [&](GroupId gid) -> Result<algebra::PlanPtr> {
    gid = Find(gid);
    if (on_path[gid]) {
      return Status::InvalidArgument("cycle in memo group " +
                                     std::to_string(gid));
    }
    on_path[gid] = true;
    Status last = Status::InvalidArgument("group has no live expressions");
    for (ExprId eid : GroupExprs(gid)) {
      const MemoExpr& e = exprs_[eid];
      std::vector<algebra::PlanPtr> children;
      bool ok = true;
      for (GroupId c : e.children) {
        Result<algebra::PlanPtr> child = build(c);
        if (!child.ok()) {
          last = child.status();
          ok = false;
          break;
        }
        children.push_back(std::move(child).value());
      }
      if (!ok) continue;
      on_path[gid] = false;
      return PlanFromExprPayload(e, std::move(children));
    }
    on_path[gid] = false;
    return last;
  };
  return build(g);
}

std::vector<std::string> Memo::BaseTables(GroupId g) const {
  std::vector<std::string> out;
  std::vector<bool> on_path(groups_.size(), false);
  std::function<void(GroupId)> walk = [&](GroupId gid) {
    gid = Find(gid);
    if (on_path[gid]) return;
    on_path[gid] = true;
    for (ExprId eid : groups_[gid].exprs) {
      const MemoExpr& e = exprs_[eid];
      if (e.dead) continue;
      if (e.kind == PlanKind::kGet) {
        out.push_back(e.table);
      } else {
        for (GroupId c : e.children) walk(c);
      }
      break;  // one witness expression suffices; alternatives agree
    }
    on_path[gid] = false;
  };
  walk(g);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double Memo::CountPlans(GroupId g, double cap) const {
  std::vector<double> memo(groups_.size(), -1.0);
  std::vector<bool> on_path(groups_.size(), false);
  std::function<double(GroupId)> count = [&](GroupId gid) -> double {
    gid = Find(gid);
    if (memo[gid] >= 0) return memo[gid];
    if (on_path[gid]) return 0.0;  // break cycles conservatively
    on_path[gid] = true;
    double total = 0.0;
    for (ExprId eid : GroupExprs(gid)) {
      const MemoExpr& e = exprs_[eid];
      double prod = 1.0;
      for (GroupId c : e.children) prod *= count(c);
      total += prod;
      if (total > cap) {
        total = cap;
        break;
      }
    }
    on_path[gid] = false;
    memo[gid] = total;
    return total;
  };
  return count(g);
}

std::string Memo::ToString() const {
  std::string out;
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].merged) continue;
    out += "group " + std::to_string(g);
    if (groups_[g].valid_u) out += " [valid-U]";
    else if (groups_[g].valid_c) out += " [valid-C]";
    out += " (arity " + std::to_string(groups_[g].arity) + ")\n";
    for (ExprId eid : groups_[g].exprs) {
      const MemoExpr& e = exprs_[eid];
      if (e.dead) continue;
      out += "  #" + std::to_string(eid) + " ";
      switch (e.kind) {
        case PlanKind::kGet: out += "Get(" + e.table + ")"; break;
        case PlanKind::kValues:
          out += "Values(" + std::to_string(e.rows.size()) + ")";
          break;
        case PlanKind::kSelect: {
          out += "Select[";
          for (size_t i = 0; i < e.predicates.size(); ++i) {
            if (i > 0) out += " AND ";
            out += algebra::ScalarToString(e.predicates[i]);
          }
          out += "]";
          break;
        }
        case PlanKind::kProject: {
          out += "Project[";
          for (size_t i = 0; i < e.exprs.size(); ++i) {
            if (i > 0) out += ", ";
            out += algebra::ScalarToString(e.exprs[i]);
          }
          out += "]";
          break;
        }
        case PlanKind::kJoin: {
          out += e.predicates.empty() ? "CrossJoin" : "Join[";
          for (size_t i = 0; i < e.predicates.size(); ++i) {
            if (i > 0) out += " AND ";
            out += algebra::ScalarToString(e.predicates[i]);
          }
          if (!e.predicates.empty()) out += "]";
          break;
        }
        case PlanKind::kAggregate: {
          out += "Aggregate[by ";
          for (size_t i = 0; i < e.group_by.size(); ++i) {
            if (i > 0) out += ",";
            out += algebra::ScalarToString(e.group_by[i]);
          }
          out += "; ";
          for (size_t i = 0; i < e.aggs.size(); ++i) {
            if (i > 0) out += ",";
            out += algebra::AggFuncName(e.aggs[i].func);
          }
          out += "]";
          break;
        }
        case PlanKind::kDistinct: out += "Distinct"; break;
        case PlanKind::kSort: out += "Sort"; break;
        case PlanKind::kLimit:
          out += "Limit[" + std::to_string(e.limit) + "]";
          break;
        case PlanKind::kUnionAll: out += "UnionAll"; break;
      }
      out += " (";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(Find(e.children[i]));
      }
      out += ")\n";
    }
  }
  return out;
}

}  // namespace fgac::optimizer
