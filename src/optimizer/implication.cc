#include "optimizer/implication.h"

#include <algorithm>

namespace fgac::optimizer {

using algebra::ScalarEquals;
using algebra::ScalarKind;
using algebra::ScalarPtr;

std::optional<Atom> ExtractAtom(const ScalarPtr& conjunct) {
  if (conjunct == nullptr) return std::nullopt;
  if (conjunct->kind == ScalarKind::kInList && !conjunct->negated) {
    Atom atom;
    atom.op = Atom::Op::kIn;
    atom.expr = conjunct->operand;
    for (const ScalarPtr& e : conjunct->in_list) {
      if (e->kind != ScalarKind::kLiteral) return std::nullopt;
      atom.in_values.push_back(e->value);
    }
    return atom;
  }
  if (conjunct->kind != ScalarKind::kBinary) return std::nullopt;
  Atom::Op op;
  switch (conjunct->bin_op) {
    case sql::BinOp::kEq: op = Atom::Op::kEq; break;
    case sql::BinOp::kNe: op = Atom::Op::kNe; break;
    case sql::BinOp::kLt: op = Atom::Op::kLt; break;
    case sql::BinOp::kLe: op = Atom::Op::kLe; break;
    case sql::BinOp::kGt: op = Atom::Op::kGt; break;
    case sql::BinOp::kGe: op = Atom::Op::kGe; break;
    default:
      return std::nullopt;
  }
  const ScalarPtr& l = conjunct->left;
  const ScalarPtr& r = conjunct->right;
  Atom atom;
  if (r->kind == ScalarKind::kLiteral && l->kind != ScalarKind::kLiteral) {
    atom.expr = l;
    atom.op = op;
    atom.literal = r->value;
    return atom;
  }
  if (l->kind == ScalarKind::kLiteral && r->kind != ScalarKind::kLiteral) {
    // lit OP expr  ->  expr MIRROR(OP) lit.
    atom.expr = r;
    switch (op) {
      case Atom::Op::kLt: atom.op = Atom::Op::kGt; break;
      case Atom::Op::kLe: atom.op = Atom::Op::kGe; break;
      case Atom::Op::kGt: atom.op = Atom::Op::kLt; break;
      case Atom::Op::kGe: atom.op = Atom::Op::kLe; break;
      default: atom.op = op; break;
    }
    atom.literal = l->value;
    return atom;
  }
  return std::nullopt;
}

namespace {

/// Does atom `a` (premise) imply atom `b` (conclusion), both over the same
/// expression? NULL semantics: all atoms are satisfied only by non-NULL
/// values of the expression, so value-level reasoning is sound.
bool AtomImplies(const Atom& a, const Atom& b) {
  auto lt = [](const Value& x, const Value& y) { return x.Compare(y) < 0; };
  auto le = [](const Value& x, const Value& y) { return x.Compare(y) <= 0; };
  auto eq = [](const Value& x, const Value& y) { return x.Compare(y) == 0; };

  // Premise set S_a must be a subset of conclusion set S_b.
  switch (a.op) {
    case Atom::Op::kEq: {
      const Value& v = a.literal;
      switch (b.op) {
        case Atom::Op::kEq: return eq(v, b.literal);
        case Atom::Op::kNe: return !eq(v, b.literal);
        case Atom::Op::kLt: return lt(v, b.literal);
        case Atom::Op::kLe: return le(v, b.literal);
        case Atom::Op::kGt: return lt(b.literal, v);
        case Atom::Op::kGe: return le(b.literal, v);
        case Atom::Op::kIn:
          return std::any_of(b.in_values.begin(), b.in_values.end(),
                             [&](const Value& w) { return eq(v, w); });
      }
      return false;
    }
    case Atom::Op::kIn: {
      // Every member of a's set must satisfy b.
      for (const Value& v : a.in_values) {
        Atom single;
        single.op = Atom::Op::kEq;
        single.expr = a.expr;
        single.literal = v;
        if (!AtomImplies(single, b)) return false;
      }
      return !a.in_values.empty();
    }
    case Atom::Op::kLt:
      switch (b.op) {
        case Atom::Op::kLt: return le(a.literal, b.literal);
        case Atom::Op::kLe: return le(a.literal, b.literal);
        case Atom::Op::kNe: return le(a.literal, b.literal);
        default: return false;
      }
    case Atom::Op::kLe:
      switch (b.op) {
        case Atom::Op::kLt: return lt(a.literal, b.literal);
        case Atom::Op::kLe: return le(a.literal, b.literal);
        case Atom::Op::kNe: return lt(a.literal, b.literal);
        default: return false;
      }
    case Atom::Op::kGt:
      switch (b.op) {
        case Atom::Op::kGt: return le(b.literal, a.literal);
        case Atom::Op::kGe: return le(b.literal, a.literal);
        case Atom::Op::kNe: return le(b.literal, a.literal);
        default: return false;
      }
    case Atom::Op::kGe:
      switch (b.op) {
        case Atom::Op::kGt: return lt(b.literal, a.literal);
        case Atom::Op::kGe: return le(b.literal, a.literal);
        case Atom::Op::kNe: return lt(b.literal, a.literal);
        default: return false;
      }
    case Atom::Op::kNe:
      switch (b.op) {
        case Atom::Op::kNe: return a.literal.Compare(b.literal) == 0;
        default: return false;
      }
  }
  return false;
}

}  // namespace

bool ImpliesConjunct(const std::vector<ScalarPtr>& premises,
                     const ScalarPtr& conclusion) {
  // 1. Structural match.
  for (const ScalarPtr& p : premises) {
    if (ScalarEquals(p, conclusion)) return true;
  }
  // 2. Atom-level reasoning.
  std::optional<Atom> b = ExtractAtom(conclusion);
  if (!b.has_value()) return false;
  for (const ScalarPtr& p : premises) {
    std::optional<Atom> a = ExtractAtom(p);
    if (!a.has_value()) continue;
    if (!ScalarEquals(a->expr, b->expr)) continue;
    if (AtomImplies(*a, *b)) return true;
  }
  return false;
}

bool ImpliesAll(const std::vector<ScalarPtr>& premises,
                const std::vector<ScalarPtr>& conclusions) {
  for (const ScalarPtr& c : conclusions) {
    if (!ImpliesConjunct(premises, c)) return false;
  }
  return true;
}

}  // namespace fgac::optimizer
