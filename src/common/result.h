#ifndef FGAC_COMMON_RESULT_H_
#define FGAC_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace fgac {

/// A value-or-error type in the style of arrow::Result / absl::StatusOr.
///
/// Invariant: holds either a non-OK Status or a T. Constructing from an OK
/// Status is a programming error (asserted in debug builds and converted to
/// an InvalidArgument error otherwise).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::InvalidArgument("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace fgac

/// Evaluates `rexpr` (a Result<T>), propagates error, else assigns to lhs.
#define FGAC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define FGAC_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define FGAC_ASSIGN_OR_RETURN_NAME(x, y) FGAC_ASSIGN_OR_RETURN_CONCAT(x, y)

#define FGAC_ASSIGN_OR_RETURN(lhs, rexpr) \
  FGAC_ASSIGN_OR_RETURN_IMPL(             \
      FGAC_ASSIGN_OR_RETURN_NAME(_result_, __COUNTER__), lhs, rexpr)

#endif  // FGAC_COMMON_RESULT_H_
