#ifndef FGAC_COMMON_AUDIT_H_
#define FGAC_COMMON_AUDIT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fgac::common {

/// One security-audit record: who asked what, which enforcement decision
/// was made, what it cost, and how it ended. Emitted once per executed
/// statement — including rejected, degraded and failed ones, which are the
/// rows an auditor cares about most.
struct AuditEvent {
  /// Monotonic per-log sequence number, assigned at emission (gaps in the
  /// persisted stream therefore reveal exactly which events overflowed).
  uint64_t seq = 0;
  /// Wall-clock milliseconds since the Unix epoch.
  int64_t wall_ms = 0;
  /// Trace id of the statement's span tree (0 when tracing was off).
  uint64_t trace_id = 0;
  std::string user;
  std::string session;
  /// Enforcement mode the statement ran under: none/truman/non-truman.
  std::string mode;
  /// Statement text, possibly truncated to AuditOptions::max_statement_bytes.
  std::string statement;
  /// FNV-1a of the FULL statement text (untruncated), so identical
  /// statements correlate even when the stored text is clipped.
  uint64_t statement_hash = 0;
  /// Enforcement verdict: "unconditional" / "conditional" (Non-Truman
  /// acceptance), "rejected", "degraded_to_truman", "truman" (rewritten),
  /// "none" (unenforced), or "error" for non-authorization failures.
  std::string verdict;
  /// Rule-firing summary: the justification chain ("U1/U2", "C3a/C3b").
  std::string rules;
  /// C3/CAgg database probes the validity test executed.
  uint64_t probes = 0;
  /// Guard budget charged over the statement's lifetime.
  uint64_t guard_rows = 0;
  uint64_t guard_bytes = 0;
  int64_t duration_us = 0;
  /// Status code name: "ok", "not_authorized", "timeout", ...
  std::string status = "ok";
  /// Error message when the statement failed.
  std::string error;
  /// True when the Non-Truman verdict came from the validity cache.
  bool from_cache = false;
  /// SELECT result rows / DML affected rows.
  int64_t rows_out = 0;

  /// One JSON object (no trailing newline); every text field goes through
  /// the shared escaper, so arbitrary statement bytes yield valid JSON.
  std::string ToJson() const;
};

/// FNV-1a over the statement text — the hash stored in AuditEvent.
uint64_t AuditStatementHash(std::string_view statement);

/// Fixed-width (16 char) lowercase hex rendering of a statement hash —
/// used by both the JSON sink and the fgac_audit system table, so the two
/// grep the same.
std::string AuditHashHex(uint64_t hash);

/// Audit subsystem knobs (DatabaseOptions::audit).
struct AuditOptions {
  /// Master switch. Off = Append() is a no-op and no flusher thread runs.
  bool enabled = true;
  /// Ring-buffer slots between producers and the flusher; rounded up to a
  /// power of two. When the ring is full, new events are DROPPED (counted),
  /// never blocking the query path.
  size_t ring_capacity = 1024;
  /// Bounded in-memory tail of persisted events backing the `fgac_audit`
  /// system table; oldest evicted beyond this.
  size_t retain_events = 4096;
  /// JSON-lines sink file (appended). Empty = in-memory retention only.
  std::string sink_path;
  /// Durability policy for the sink: when true the flusher fsyncs after
  /// every drain cycle; when false the OS decides (fast, may lose the tail
  /// on power failure — not on process crash, the write() already landed).
  bool fsync_each_flush = false;
  /// Flusher wake-up cadence when no one nudges it.
  std::chrono::milliseconds flush_interval{20};
  /// Statement text stored per event; longer statements are clipped (the
  /// hash still covers the full text).
  size_t max_statement_bytes = 4096;
};

/// Durable, queryable record of enforcement decisions.
///
/// Producers (query threads) append through a bounded lock-free MPSC ring
/// (Vyukov bounded-queue protocol): an Append is two atomic ops plus the
/// event move, never takes a lock and never blocks — when the ring is full
/// the event is counted in events_dropped() and discarded, because an
/// audit stall must not become a query stall. A background flusher drains
/// the ring into (a) the bounded in-memory tail served to `fgac_audit` and
/// (b) the JSON-lines sink file, if configured.
///
/// Counter contract, relied on by tests and the metrics exporter: after
/// Flush() returns with no concurrent producers,
///     events_emitted() == events_persisted() + events_dropped().
class AuditLog {
 public:
  explicit AuditLog(AuditOptions options);
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;
  ~AuditLog();

  bool enabled() const { return options_.enabled; }
  const AuditOptions& options() const { return options_; }

  /// Emits one event. Lock-free, wait-free on the fast path; drops (and
  /// counts) when the ring is full. Safe from any number of threads.
  void Append(AuditEvent event);

  /// Blocks until every event emitted before this call is persisted or
  /// accounted as dropped. Safe from any thread (the draining itself stays
  /// on the flusher thread — single-consumer discipline).
  void Flush();

  uint64_t events_emitted() const {
    return emitted_.load(std::memory_order_acquire);
  }
  uint64_t events_persisted() const {
    return persisted_.load(std::memory_order_acquire);
  }
  uint64_t events_dropped() const {
    return dropped_.load(std::memory_order_acquire);
  }

  /// Copies the retained tail, oldest first (the `fgac_audit` backing).
  std::vector<AuditEvent> SnapshotRetained() const;

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    AuditEvent event;
  };

  void FlusherMain();
  /// Drains every ready cell; returns how many events were consumed.
  /// Flusher thread only (single consumer).
  size_t DrainOnce();

  AuditOptions options_;
  size_t capacity_ = 0;  // power of two
  size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  std::atomic<uint64_t> enqueue_pos_{0};
  uint64_t dequeue_pos_ = 0;  // flusher-private

  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> persisted_{0};
  std::atomic<uint64_t> dropped_{0};

  mutable std::mutex retained_mu_;
  std::deque<AuditEvent> retained_;

  std::FILE* sink_ = nullptr;

  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  std::condition_variable flush_done_cv_;
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace fgac::common

#endif  // FGAC_COMMON_AUDIT_H_
